package viprof

import (
	"strings"
	"testing"

	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/fleet"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
)

// TestFleetBenchConserves pins the bench harness's own verification:
// both cells (clean and crash) run conserved at a small host count.
func TestFleetBenchConserves(t *testing.T) {
	for _, crash := range []bool{false, true} {
		r, err := FleetBenchRun(4, crash)
		if err != nil {
			t.Fatalf("crash=%v: %v", crash, err)
		}
		if r.Samples == 0 || r.JournalFrames == 0 {
			t.Fatalf("crash=%v: empty run: %+v", crash, r)
		}
		if crash && r.Restarts == 0 {
			t.Fatalf("crash cell did not restart: %+v", r)
		}
	}
}

// TestFleetArchiveRoundTrip dumps a fleet run (with network dups, so
// the journal holds real duplicate absorption evidence) to a real
// directory and re-queries it through the offline archive path used by
// vipreport -fleet / vipdiff -fleet.
func TestFleetArchiveRoundTrip(t *testing.T) {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	m := kernel.NewMachine(core, 11)
	res, err := fleet.RunFleet(m, fleet.FleetConfig{
		Hosts: 3, DeltasPerHost: 8, Seed: 11,
		Net: fleet.NetFaultPlan{Seed: 12, PDup: 0.3},
	})
	if err != nil || res.RunErr != nil {
		t.Fatalf("run: %v / %v", err, res.RunErr)
	}
	dir := t.TempDir()
	if err := m.Kern.Disk().DumpTo(dir); err != nil {
		t.Fatal(err)
	}
	v, err := LoadFleetArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.Aggregate.Total(), res.Collector.Aggregate().Total(); got != want {
		t.Fatalf("archived replay total %d, live %d", got, want)
	}
	cons := fleet.CheckConservation(res.Senders, v.Aggregate)
	if !cons.Balanced() {
		t.Fatalf("archived aggregate unbalanced: %v", cons.Mismatches)
	}
	out := v.Render(10)
	if !strings.Contains(out, "status: clean") || !strings.Contains(out, "per-host:") {
		t.Fatalf("render missing sections:\n%s", out)
	}
	diff, err := DiffFleetArchives(dir, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "+0.00%") && !strings.Contains(diff, "0.00%") {
		t.Fatalf("self-diff should be all zeros:\n%s", diff)
	}
}

// BenchmarkFleetIngest is the bench-smoke entry: one full fleet
// ingestion (8 hosts) per iteration, conservation-checked.
func BenchmarkFleetIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := FleetBenchRun(8, false)
		if err != nil {
			b.Fatal(err)
		}
		if r.Samples == 0 {
			b.Fatal("empty run")
		}
	}
}
