package viprof

import (
	"strings"
	"testing"

	"viprof/internal/fleet"
	"viprof/internal/harness"
	"viprof/internal/oprofile"
)

// TestFleetBenchConserves pins the bench harness's own verification:
// both cells (clean and crash) run conserved at a small host count, on
// one core and on four (the new SMP axis — shards pinned across
// cores).
func TestFleetBenchConserves(t *testing.T) {
	for _, cores := range []int{1, 4} {
		for _, crash := range []bool{false, true} {
			r, err := FleetBenchRun(4, cores, crash)
			if err != nil {
				t.Fatalf("cores=%d crash=%v: %v", cores, crash, err)
			}
			if r.Samples == 0 || r.JournalFrames == 0 {
				t.Fatalf("cores=%d crash=%v: empty run: %+v", cores, crash, r)
			}
			if crash && r.Restarts == 0 {
				t.Fatalf("cores=%d: crash cell did not restart: %+v", cores, r)
			}
		}
	}
}

// TestFleetArchiveRoundTrip dumps a fleet run (with network dups, so
// the journal holds real duplicate absorption evidence, and a running
// compactor, so the archive holds a committed generation too) to a
// real directory and re-queries it through the offline archive path
// used by vipreport -fleet / vipdiff -fleet — including a windowed
// query, the vipreport -window path.
func TestFleetArchiveRoundTrip(t *testing.T) {
	m := harness.BuildMachine(2, 11)
	cfg := fleet.FleetConfig{
		Hosts: 3, DeltasPerHost: 8, Seed: 11,
		Net: fleet.NetFaultPlan{Seed: 12, PDup: 0.3},
	}
	cfg.Collector.CompactEveryCycles = 300_000
	res, err := fleet.RunFleet(m, cfg)
	if err != nil || res.RunErr != nil {
		t.Fatalf("run: %v / %v", err, res.RunErr)
	}
	dir := t.TempDir()
	if err := m.Kern.Disk().DumpTo(dir); err != nil {
		t.Fatal(err)
	}
	v, err := LoadFleetArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := v.Aggregate.Total(), res.Collector.Aggregate().Total(); got != want {
		t.Fatalf("archived replay total %d, live %d", got, want)
	}
	cons := fleet.CheckConservation(res.Senders, v.Aggregate)
	if !cons.Balanced() {
		t.Fatalf("archived aggregate unbalanced: %v", cons.Mismatches)
	}
	out := v.Render(10)
	if !strings.Contains(out, "status: clean") || !strings.Contains(out, "per-host:") {
		t.Fatalf("render missing sections:\n%s", out)
	}
	// The senders shipped epoch code maps before any samples, so every
	// JIT row must come out symbolized — method signatures, not the
	// anonymous JIT bucket, and nothing left unresolved.
	if strings.Contains(out, "unresolved by the replicated maps") {
		t.Fatalf("JIT samples left unsymbolized:\n%s", out)
	}
	if !strings.Contains(out, "LFleet;") {
		t.Fatalf("no symbolized JIT method rows in render:\n%s", out)
	}
	// Windowed render: an interior window must show fewer samples than
	// the full render and carry the window banner.
	min, max, ok := v.Aggregate.TimeBounds()
	if !ok || max <= min {
		t.Fatalf("no time bounds in archive: %d..%d ok=%v", min, max, ok)
	}
	mid := min + (max-min)/2
	win := v.RenderWindow(10, min, mid)
	if !strings.Contains(win, "window: [") {
		t.Fatalf("windowed render missing banner:\n%s", win)
	}
	sum := func(counts map[oprofile.Key]uint64) (n uint64) {
		for _, c := range counts {
			n += c
		}
		return n
	}
	full := v.Aggregate.Total()
	lo := sum(v.Aggregate.QueryWindow(0, mid))
	hi := sum(v.Aggregate.QueryWindow(mid, ^uint64(0)))
	if lo+hi != full {
		t.Fatalf("window partition broken: %d + %d != %d", lo, hi, full)
	}
	diff, err := DiffFleetArchives(dir, dir, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diff, "+0.00%") && !strings.Contains(diff, "0.00%") {
		t.Fatalf("self-diff should be all zeros:\n%s", diff)
	}
}

// BenchmarkFleetIngest is the bench-smoke entry: one full fleet
// ingestion (8 hosts on 2 cores) per iteration, conservation-checked.
func BenchmarkFleetIngest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := FleetBenchRun(8, 2, false)
		if err != nil {
			b.Fatal(err)
		}
		if r.Samples == 0 {
			b.Fatal("empty run")
		}
	}
}
