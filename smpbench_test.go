package viprof

import "testing"

// The SMP bench must show real scaling, not just run: 4 cores on the
// 4-VM workload has to clear the 2x aggregate samples-per-simulated-
// second floor (the acceptance criterion BENCH_smp.json commits).
// SMPBenchRun itself re-proves the per-CPU conservation invariants on
// every run, so this doubles as an end-to-end sharded-pipeline check.
func TestSMPBenchScaling(t *testing.T) {
	one, err := SMPBenchRun(1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := SMPBenchRun(4)
	if err != nil {
		t.Fatal(err)
	}
	if one.Cores != 1 || four.Cores != 4 {
		t.Fatalf("core counts %d/%d", one.Cores, four.Cores)
	}
	speedup := four.SamplesPerSimSec() / one.SamplesPerSimSec()
	if speedup < 2.0 {
		t.Errorf("4-core samples/s speedup %.2fx below the 2x floor (1 core %.0f/s, 4 cores %.0f/s)",
			speedup, one.SamplesPerSimSec(), four.SamplesPerSimSec())
	}
	// The work is fixed: the sample population may shift a little with
	// scheduling but not wholesale.
	lo, hi := one.Samples*8/10, one.Samples*12/10
	if four.Samples < lo || four.Samples > hi {
		t.Errorf("4-core sample count %d far from single-core %d: the cells are not measuring the same work",
			four.Samples, one.Samples)
	}
}

// BenchmarkSMPScaling is the bench-smoke entry: one full 4-core run of
// the 4-VM workload per iteration, conservation-checked, exercising
// the concurrent shard drain under whatever detector the sweep runs
// with.
func BenchmarkSMPScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := SMPBenchRun(4)
		if err != nil {
			b.Fatal(err)
		}
		if r.Samples == 0 {
			b.Fatal("empty run")
		}
	}
}
