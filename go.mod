module viprof

go 1.22

// No requirements — the module builds offline from the standard
// library alone. In particular golang.org/x/tools is deliberately NOT
// required: internal/lint vendors a minimal API-compatible subset of
// go/analysis (internal/lint/analysis) plus its own source loader, so
// cmd/viplint runs without network access to a module proxy. If x/tools
// ever lands in the build environment, internal/lint/analysis can be
// deleted and the passes pointed at the real package unchanged.
