module viprof

go 1.22
