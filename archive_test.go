package viprof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestArchiveRoundTrip(t *testing.T) {
	out, err := ProfileBenchmark("fop", Options{Scale: 0.2, MissPeriod: 12_000})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := out.DumpProfile(dir); err != nil {
		t.Fatal(err)
	}
	// The archive must contain the pieces a standalone post-processor
	// needs.
	for _, want := range []string{
		"var/lib/oprofile/samples.log",
		"RVM.map",
		"viprof-manifest.txt",
		filepath.Join("images", "vmlinux.map"),
	} {
		if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(want))); err != nil {
			t.Errorf("archive missing %s: %v", want, err)
		}
	}

	rep, err := LoadArchivedReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded report must agree with the in-process one row for
	// row.
	if len(rep.Rows) != len(out.Report.Rows) {
		t.Fatalf("reloaded %d rows, original %d", len(rep.Rows), len(out.Report.Rows))
	}
	orig := map[string]uint64{}
	for _, r := range out.Report.Rows {
		orig[r.Image+"|"+r.Symbol] = r.Counts[EventCycles]
	}
	for _, r := range rep.Rows {
		if orig[r.Image+"|"+r.Symbol] != r.Counts[EventCycles] {
			t.Errorf("row %s/%s: reloaded %d, original %d",
				r.Image, r.Symbol, r.Counts[EventCycles], orig[r.Image+"|"+r.Symbol])
		}
	}
}

func TestLoadArchivedReportErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadArchivedReport(dir); err == nil {
		t.Error("empty archive accepted")
	}
	// A manifest alone is not enough: the sample file must exist.
	if err := os.WriteFile(filepath.Join(dir, "viprof-manifest.txt"),
		[]byte("event 0\nvm 3 jikesrvm\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadArchivedReport(dir); err == nil {
		t.Error("archive without sample data accepted")
	}
}
