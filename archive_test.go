package viprof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestArchiveRoundTrip(t *testing.T) {
	out, err := ProfileBenchmark("fop", Options{Scale: 0.2, MissPeriod: 12_000})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := out.DumpProfile(dir); err != nil {
		t.Fatal(err)
	}
	// The archive must contain the pieces a standalone post-processor
	// needs.
	for _, want := range []string{
		"var/lib/oprofile/samples.log",
		"RVM.map",
		"viprof-manifest.txt",
		filepath.Join("images", "vmlinux.map"),
	} {
		if _, err := os.Stat(filepath.Join(dir, filepath.FromSlash(want))); err != nil {
			t.Errorf("archive missing %s: %v", want, err)
		}
	}

	rep, err := LoadArchivedReport(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded report must agree with the in-process one row for
	// row.
	if len(rep.Rows) != len(out.Report.Rows) {
		t.Fatalf("reloaded %d rows, original %d", len(rep.Rows), len(out.Report.Rows))
	}
	orig := map[string]uint64{}
	for _, r := range out.Report.Rows {
		orig[r.Image+"|"+r.Symbol] = r.Counts[EventCycles]
	}
	for _, r := range rep.Rows {
		if orig[r.Image+"|"+r.Symbol] != r.Counts[EventCycles] {
			t.Errorf("row %s/%s: reloaded %d, original %d",
				r.Image, r.Symbol, r.Counts[EventCycles], orig[r.Image+"|"+r.Symbol])
		}
	}
}

func TestLoadArchivedReportErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadArchivedReport(dir); err == nil {
		t.Error("empty archive accepted")
	}
	// A manifest without sample data loads — a daemon that crashed
	// before its first flush leaves exactly this shape — but the loss is
	// surfaced, never papered over.
	if err := os.WriteFile(filepath.Join(dir, "viprof-manifest.txt"),
		[]byte("event 0\nvm 3 jikesrvm\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := LoadArchivedReport(dir)
	if err != nil {
		t.Fatalf("archive without sample data: %v", err)
	}
	if rep.Integrity == nil || !rep.Integrity.SampleFileMissing {
		t.Error("missing sample file not flagged in Integrity")
	}
	if !rep.Integrity.Degraded() {
		t.Error("missing sample file did not degrade the report")
	}
	if len(rep.Rows) != 0 {
		t.Errorf("%d rows conjured from no sample data", len(rep.Rows))
	}
}
