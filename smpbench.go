package viprof

// The SMP scaling workload behind `vipbench -fig smp`: the same
// dispatch-heavy program as the trace bench, run as several concurrent
// VM processes under one VIProf session on machines with 1, 2, 4 and 8
// cores. The simulated work is fixed, so the figure of merit is
// aggregate profiling throughput per *simulated* second — samples/s
// and retired work cycles/s — which should scale with the core count
// until the VM count caps it. Every run verifies the per-CPU
// conservation invariants end to end: per-CPU driver stats must sum to
// the aggregate, and each CPU's daemon-aggregated count plus its shard
// residue must equal what the driver logged on that CPU.

import (
	"fmt"

	"viprof/internal/core"
	"viprof/internal/cpu"
	"viprof/internal/harness"
	"viprof/internal/hpc"
	"viprof/internal/jvm"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// SMPBenchVMs is the concurrent VM-process count: enough runnable
// processes that 4 cores can all stay busy (the headline scaling cell),
// while the 8-core cell exposes the steal path running out of work.
const SMPBenchVMs = 4

// SMPBenchOuter and SMPBenchInner size each VM's run: outer worker
// calls of inner loop iterations each, ~2.5M bytecodes per VM — long
// enough that steady-state sampling dominates startup, short enough
// that the 8-core cell times three repetitions stay quick.
const (
	SMPBenchOuter = 60
	SMPBenchInner = 1200
)

// SMPBenchResult carries one SMP bench cell's verified outcome.
type SMPBenchResult struct {
	Cores int
	VMs   int
	// Samples is the aggregate driver-logged sample count across all
	// per-CPU shards.
	Samples uint64
	// WallCycles is the simulated wall clock: the furthest-ahead core.
	WallCycles uint64
	// WorkCycles is the total CPU time the VM processes consumed across
	// all cores (the fixed amount of simulated work).
	WorkCycles uint64
	// SimSeconds is WallCycles on the simulated clock.
	SimSeconds float64
	// Migrations counts pull-based steals the scheduler performed.
	Migrations uint64
	// CohTransfers counts cross-core cache-line transfers billed by the
	// coherency directory.
	CohTransfers uint64
}

// SamplesPerSimSec is the headline metric: aggregate profiling
// throughput per simulated second.
func (r SMPBenchResult) SamplesPerSimSec() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.Samples) / r.SimSeconds
}

// WorkCyclesPerSimSec measures machine utilization: retired work per
// simulated second, which approaches Cores x ClockHz under perfect
// scaling.
func (r SMPBenchResult) WorkCyclesPerSimSec() float64 {
	if r.SimSeconds == 0 {
		return 0
	}
	return float64(r.WorkCycles) / r.SimSeconds
}

// SMPBenchRun executes the fixed SMP workload on a machine with the
// given core count, with both paper events armed, and returns the
// verified outcome.
func SMPBenchRun(cores int) (SMPBenchResult, error) {
	var res SMPBenchResult
	if cores < 1 {
		cores = 1
	}
	m := harness.BuildMachine(cores, int64(cores)*271+9)
	// Count coherency traffic without sampling it: a huge period never
	// overflows, so the counter is a pure event meter.
	for _, c := range m.Cores {
		if _, err := c.Bank.Program(hpc.CoherencyTransfers, 1<<62); err != nil {
			return res, err
		}
	}
	session, err := core.Start(m, core.Config{Events: []oprofile.EventConfig{
		{Event: hpc.GlobalPowerEvents, Period: 45_000},
		{Event: hpc.BSQCacheReference, Period: 90_000},
	}})
	if err != nil {
		return res, err
	}
	vms := make([]*jvm.VM, SMPBenchVMs)
	procs := make([]*kernel.Process, SMPBenchVMs)
	for i := range vms {
		prog := dispatchProgram(fmt.Sprintf("smpbench%d", i), SMPBenchOuter, SMPBenchInner)
		vm, proc, err := session.LaunchJVM(prog, jvm.Config{HeapBytes: 256 << 10, AOSThreshold: 120})
		if err != nil {
			return res, err
		}
		vms[i] = vm
		procs[i] = proc
	}
	if err := m.Kern.Run(200_000_000_000); err != nil {
		return res, err
	}
	for i, vm := range vms {
		if !vm.Finished() {
			return res, fmt.Errorf("smpbench: vm %d: %v", i, vm.Err())
		}
	}
	session.Shutdown()

	res.Cores = len(m.Cores)
	res.VMs = SMPBenchVMs
	res.Samples = session.Prof.Driver.Stats().Logged
	for _, c := range m.Cores {
		if c.Cycles() > res.WallCycles {
			res.WallCycles = c.Cycles()
		}
		if ctr, ok := c.Bank.Counter(hpc.CoherencyTransfers); ok {
			res.CohTransfers += ctr.Total()
		}
	}
	res.SimSeconds = cpu.Seconds(res.WallCycles)
	res.Migrations = m.Kern.Migrations()
	for _, p := range procs {
		res.WorkCycles += p.CPUTime()
	}

	// Per-CPU conservation: the sharded pipeline must account for every
	// sample on the core it fired on.
	drv := session.Prof.Driver
	loggedCPU := session.Prof.Daemon.SamplesLoggedCPU()
	var sumNMI, sumLogged, sumDropped uint64
	for ci := 0; ci < drv.NumCPU(); ci++ {
		cs := drv.StatsCPU(ci)
		sumNMI += cs.NMIs
		sumLogged += cs.Logged
		sumDropped += cs.Dropped
		if cs.Logged+cs.Dropped != cs.NMIs {
			return res, fmt.Errorf("smpbench: cpu%d driver unbalanced: logged %d + dropped %d != NMIs %d",
				ci, cs.Logged, cs.Dropped, cs.NMIs)
		}
		var agg uint64
		if ci < len(loggedCPU) {
			agg = loggedCPU[ci]
		}
		if agg+uint64(drv.ShardLen(ci)) != cs.Logged {
			return res, fmt.Errorf("smpbench: cpu%d daemon unbalanced: aggregated %d + buffered %d != logged %d",
				ci, agg, drv.ShardLen(ci), cs.Logged)
		}
	}
	ds := drv.Stats()
	if sumNMI != ds.NMIs || sumLogged != ds.Logged || sumDropped != ds.Dropped {
		return res, fmt.Errorf("smpbench: per-CPU stats (%d/%d/%d) do not sum to aggregate (%d/%d/%d)",
			sumNMI, sumLogged, sumDropped, ds.NMIs, ds.Logged, ds.Dropped)
	}
	if res.Samples == 0 {
		return res, fmt.Errorf("smpbench: %d cores sampled nothing", cores)
	}
	return res, nil
}
