package viprof_test

import (
	"fmt"

	"viprof"
)

// Profile one of the paper's benchmarks and inspect the vertically
// integrated report programmatically.
func ExampleProfileBenchmark() {
	out, err := viprof.ProfileBenchmark("fop", viprof.Options{
		Scale: 0.3, // reduced run; 1.0 reproduces the paper's 3.2 s
		Seed:  7,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The hottest application method resolves to its Java signature,
	// which plain OProfile cannot do for JIT code.
	hot := out.Report.Rows[0]
	fmt.Println(hot.Image)
	fmt.Println(hot.Symbol != "(no symbols)")
	// Output:
	// JIT.App
	// true
}

// Build a custom program with the bytecode assembler and run it under a
// VIProf session on a fresh simulated machine.
func ExampleStartSession() {
	prog := viprof.NewProgram("demo", 1)
	a := viprof.NewAsm()
	a.Const(100_000).Store(0)
	a.Label("loop")
	a.Load(0).Const(1).Emit(viprof.OpSub).Store(0)
	a.Load(0)
	a.Branch(viprof.OpJmpNZ, "loop")
	a.Emit(viprof.OpRetVoid)
	main := prog.Add(&viprof.Method{
		Class: "demo.Main", Name: "main", MaxLocals: 1, Code: a.MustFinish(),
	})
	prog.SetMain(main)

	m := viprof.NewMachine(1)
	s, err := viprof.StartSession(m, viprof.SessionConfig{
		Events: []viprof.EventConfig{{Event: viprof.EventCycles, Period: 45_000}},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	vm, proc, err := s.LaunchJVM(prog, viprof.VMConfig{HeapBytes: 1 << 20})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := m.Kern.Run(0); err != nil {
		fmt.Println("error:", err)
		return
	}
	s.Shutdown()
	rep, _, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	_, found := rep.Find("demo.Main.main")
	fmt.Println(vm.Finished(), found)
	// Output:
	// true true
}
