package viprof

import (
	"math/rand"
	"testing"

	"viprof/internal/harness"
	"viprof/internal/hpc"
	"viprof/internal/workload"
)

// TestRandomizedPipeline is the whole-system fuzz: random workload
// shapes, heap sizes, sampling periods and seeds, each run end to end
// through the full VIProf pipeline, with the invariants that must hold
// for every one of them:
//
//  1. the run completes;
//  2. sample conservation: logged == aggregated == reported;
//  3. nearly all JIT samples resolve to method signatures;
//  4. profiling never changes the program's own computation
//     (bytecodes executed match an unprofiled run).
func TestRandomizedPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 8; trial++ {
		spec := workload.Spec{
			Name:        "fuzz",
			Suite:       "fuzz",
			MainClass:   "fuzz.Main",
			BaseSeconds: 1,
			Classes:     rng.Intn(30) + 2,
			ColdPerHot:  rng.Intn(4) + 1,
			HotMethods:  rng.Intn(4) + 1,
			OuterIters:  int32(rng.Intn(20) + 3),
			InnerIters:  int32(rng.Intn(1500) + 200),
			ArrayLen:    int32(rng.Intn(4096) + 16),
			AllocEvery:  int32(rng.Intn(12) + 2),
			SurviveRing: int32(rng.Intn(400) + 8),
			MemsetBytes: int32(rng.Intn(2048)),
			WriteEvery:  int32(rng.Intn(6)),
			HeapBytes:   uint64(rng.Intn(900)+80) << 10,
			Seed:        rng.Int63(),
			Threaded:    rng.Intn(3) == 0,
		}
		period := uint64(rng.Intn(80_000) + 10_000)
		seed := rng.Int63()

		base, err := harness.RunOnce(spec, harness.RunConfig{Kind: harness.ProfNone},
			harness.Options{Scale: 1, Seed: seed})
		if err != nil {
			t.Fatalf("trial %d base: %v (spec %+v)", trial, err, spec)
		}
		res, err := harness.RunOnce(spec, harness.RunConfig{
			Kind: harness.ProfVIProf, Period: period, MissPeriod: 10_000,
		}, harness.Options{Scale: 1, Seed: seed, KeepSession: true})
		if err != nil {
			t.Fatalf("trial %d viprof: %v (spec %+v)", trial, err, spec)
		}

		// (4) determinism under profiling.
		if base.VMStats.BytecodesRun != res.VMStats.BytecodesRun {
			t.Errorf("trial %d: profiling changed execution: %d vs %d bytecodes",
				trial, base.VMStats.BytecodesRun, res.VMStats.BytecodesRun)
		}

		st := res.DriverStats
		if st.Logged+st.Dropped != st.NMIs {
			t.Errorf("trial %d: accounting: logged %d + dropped %d != NMIs %d",
				trial, st.Logged, st.Dropped, st.NMIs)
		}
		s := res.Session
		rep, resolver, err := s.Report(s.Images(res.VM),
			map[string]int{res.Proc.Name: res.Proc.PID})
		if err != nil {
			t.Fatalf("trial %d report: %v", trial, err)
		}
		var total uint64
		for _, ev := range s.Events() {
			total += rep.Totals[hpc.Event(ev)]
		}
		if total != st.Logged {
			t.Errorf("trial %d: report total %d != logged %d", trial, total, st.Logged)
		}
		// (3) resolution quality: <10% of JIT samples unresolved.
		var jitResolved uint64
		for _, n := range resolver.SearchDepths {
			jitResolved += n
		}
		if un := resolver.Unresolved(); un > 0 && un*10 > jitResolved+un {
			t.Errorf("trial %d: %d of %d JIT samples unresolved (period %d, spec %+v)",
				trial, un, jitResolved+un, period, spec)
		}
	}
}
