package viprof

import (
	"strings"
	"testing"

	"viprof/internal/jvm/bytecode"
)

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 9 {
		t.Fatalf("suite has %d benchmarks, want 9", len(names))
	}
	for _, want := range []string{"pseudojbb", "JVM98", "antlr", "ps"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("benchmark %q missing from suite", want)
		}
	}
	if _, err := BenchmarkSpec("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestProfileBenchmarkVIProf(t *testing.T) {
	out, err := ProfileBenchmark("fop", Options{Scale: 0.3, MissPeriod: 12_000})
	if err != nil {
		t.Fatal(err)
	}
	if out.Seconds <= 0 {
		t.Error("no simulated time elapsed")
	}
	if out.Report == nil || len(out.Report.Rows) == 0 {
		t.Fatal("no report")
	}
	if out.VMStats.BaselineCompiles == 0 {
		t.Error("VM stats empty")
	}
	text := out.RenderReport(15)
	if !strings.Contains(text, "Time %") {
		t.Errorf("report rendering:\n%s", text)
	}
	// The facade must surface VIProf's defining capability: Java method
	// names for JIT samples.
	foundJIT := false
	for _, r := range out.Report.Rows {
		if r.Image == "JIT.App" && strings.Contains(r.Symbol, ".Worker") {
			foundJIT = true
		}
	}
	if !foundJIT {
		t.Error("no resolved JIT.App method rows in report")
	}
	if out.RawSession() == nil || out.RawVM() == nil || out.RawMachine() == nil || out.RawProcess() == nil {
		t.Error("raw accessors returned nil")
	}
	if len(out.Images()) == 0 {
		t.Error("no images")
	}
}

func TestProfileBenchmarkBaselineAndNone(t *testing.T) {
	base, err := ProfileBenchmark("fop", Options{Profiler: ProfilerNone, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if base.Report != nil {
		t.Error("unprofiled run produced a report")
	}
	if !strings.Contains(base.RenderReport(5), "no profiler") {
		t.Error("RenderReport for unprofiled run should say so")
	}
	op, err := ProfileBenchmark("fop", Options{Profiler: ProfilerOProfile, Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if op.Report == nil {
		t.Fatal("baseline run produced no report")
	}
	for _, r := range op.Report.Rows {
		if r.Image == "JIT.App" && r.Symbol != "(no symbols)" {
			t.Errorf("baseline resolved a JIT symbol: %+v", r)
		}
	}
}

func TestCustomProgramUnderSession(t *testing.T) {
	// Exercise the assembler-level public API end to end.
	prog := NewProgram("demo", 2)
	a := NewAsm()
	a.Const(50_000).Store(0)
	a.Label("loop")
	a.Load(0).Const(1).Emit(bytecode.Sub).Store(0)
	a.Load(0)
	a.Branch(bytecode.JmpNZ, "loop")
	a.Emit(bytecode.RetVoid)
	main := prog.Add(&Method{Class: "demo.Main", Name: "main", MaxLocals: 1, Code: a.MustFinish()})
	prog.SetMain(main)

	m := NewMachine(7)
	s, err := StartSession(m, SessionConfig{
		Events: []EventConfig{{Event: EventCycles, Period: 45_000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, proc, err := s.LaunchJVM(prog, VMConfig{HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("program failed: %v", vm.Err())
	}
	s.Shutdown()
	rep, _, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Find("demo.Main.main"); !ok {
		t.Error("custom program's main not in report")
	}
}
