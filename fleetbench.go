package viprof

// The deterministic fleet-ingestion workload behind
// BenchmarkFleetIngest and `vipbench -fig fleet`: N hosts ship their
// full delta runs through the simulated network into the collector's
// write-ahead journal, and the journal is then replayed offline — the
// recovery path a supervisor restart takes. Every configuration must
// come out conserved: the in-memory per-host oracles, the live
// aggregate, and the replayed aggregate all agree key by key. The
// benchmark reports two costs per host count: the ingest run itself
// (host wall time for the whole simulated fleet) and the offline
// journal replay (the dominant term in collector crash recovery).

import (
	"fmt"

	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/fleet"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
)

// FleetBenchDeltas is each host's delta count in the benchmark
// workload: large enough that journal replay is measurably more than
// constant overhead, small enough that the 16-host cell stays quick.
const FleetBenchDeltas = 40

// FleetBenchResult carries one fleet bench cell's verified outcome.
type FleetBenchResult struct {
	Hosts   int
	Deltas  int // per host
	Samples uint64
	// JournalFrames is what the offline replay walked (== successful
	// journal writes; the recovery cost scales with it).
	JournalFrames int
	// Restarts counts injected collector crashes survived (crash cell
	// only).
	Restarts uint64
}

// FleetBenchRun runs one fleet ingestion at the given host count and
// verifies conservation end to end. With crash set, a scripted fault
// plan kills the collector mid-run so the measured path includes a
// supervisor restart and an under-fire journal replay.
func FleetBenchRun(hosts int, crash bool) (FleetBenchResult, error) {
	var res FleetBenchResult
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	m := kernel.NewMachine(core, int64(hosts)*1000+7)
	if crash {
		m.Kern.SetFaultInjectors(kernel.FaultPlan{
			Seed:       int64(hosts),
			PathPrefix: fleet.JournalFile,
			Script: []kernel.FaultPoint{
				{Write: 5, Kind: kernel.FaultCrash},
				{Write: 5 + 4*hosts, Kind: kernel.FaultCrash},
			},
		})
	}
	cfg := fleet.FleetConfig{
		Hosts:         hosts,
		DeltasPerHost: FleetBenchDeltas,
		Seed:          int64(hosts)*101 + 3,
	}
	r, err := fleet.RunFleet(m, cfg)
	if err != nil {
		return res, err
	}
	if r.RunErr != nil {
		return res, r.RunErr
	}
	cons := fleet.CheckConservation(r.Senders, r.Collector.Aggregate())
	if !cons.Balanced() {
		return res, fmt.Errorf("fleetbench: live aggregate unbalanced: %v", cons.Mismatches)
	}
	if r.Replayed != nil {
		rcons := fleet.CheckConservation(r.Senders, r.Replayed)
		if !rcons.Balanced() {
			return res, fmt.Errorf("fleetbench: replayed aggregate unbalanced: %v", rcons.Mismatches)
		}
	}
	if !crash && r.Integrity.Degraded() {
		return res, fmt.Errorf("fleetbench: fault-free run degraded")
	}
	res = FleetBenchResult{
		Hosts:         hosts,
		Deltas:        FleetBenchDeltas,
		Samples:       r.Collector.Aggregate().Total(),
		JournalFrames: r.Replay.Deltas + r.Replay.Duplicates,
		Restarts:      r.Collector.Stats().Restarts,
	}
	if crash && res.Restarts == 0 {
		return res, fmt.Errorf("fleetbench: crash cell survived without a restart")
	}
	return res, nil
}
