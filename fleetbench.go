package viprof

// The deterministic fleet-ingestion workload behind
// BenchmarkFleetIngest and `vipbench -fig fleet`: N hosts ship their
// full runs (epoch code maps first, then sample deltas) through the
// simulated network into the collector shards' write-ahead journals,
// and the store is then replayed offline — the recovery path a
// supervisor restart takes. Every configuration must come out
// conserved: the in-memory per-host oracles, the live aggregate, and
// the replayed aggregate all agree key by key. The benchmark reports
// the ingest run itself (host wall time for the whole simulated fleet)
// per (hosts, cores) cell: with one core every shard serializes on one
// clock and host-scaling looks super-linear; with shards pinned across
// real cores the per-shard pipelines overlap and the curve flattens.

import (
	"fmt"

	"viprof/internal/fleet"
	"viprof/internal/harness"
	"viprof/internal/kernel"
)

// FleetBenchDeltas is each host's delta count in the benchmark
// workload: large enough that store replay is measurably more than
// constant overhead, small enough that the 16-host cell stays quick.
const FleetBenchDeltas = 40

// FleetBenchResult carries one fleet bench cell's verified outcome.
type FleetBenchResult struct {
	Hosts   int
	Cores   int
	Deltas  int // per host
	Samples uint64
	// JournalFrames is what the offline replay walked (== successful
	// journal writes plus compacted frames; the recovery cost scales
	// with it).
	JournalFrames int
	// Restarts counts injected shard crashes survived (crash cell
	// only).
	Restarts uint64
}

// FleetBenchRun runs one fleet ingestion at the given host and core
// count and verifies conservation end to end. With crash set, a
// scripted fault plan kills collector shards mid-append so the
// measured path includes failover, supervisor restarts, and an
// under-fire store replay.
func FleetBenchRun(hosts, cores int, crash bool) (FleetBenchResult, error) {
	var res FleetBenchResult
	m := harness.BuildMachine(cores, int64(hosts)*1000+int64(cores)*17+7)
	if crash {
		m.Kern.SetFaultInjectors(kernel.FaultPlan{
			Seed:       int64(hosts),
			PathPrefix: fleet.JournalPrefix,
			Script: []kernel.FaultPoint{
				{Write: 5, Kind: kernel.FaultCrash},
				{Write: 5 + 4*hosts, Kind: kernel.FaultCrash},
			},
		})
	}
	cfg := fleet.FleetConfig{
		Hosts:         hosts,
		DeltasPerHost: FleetBenchDeltas,
		Seed:          int64(hosts)*101 + 3,
	}
	r, err := fleet.RunFleet(m, cfg)
	if err != nil {
		return res, err
	}
	if r.RunErr != nil {
		return res, r.RunErr
	}
	cons := fleet.CheckConservation(r.Senders, r.Collector.Aggregate())
	if !cons.Balanced() {
		return res, fmt.Errorf("fleetbench: live aggregate unbalanced: %v", cons.Mismatches)
	}
	if r.Replayed != nil {
		rcons := fleet.CheckConservation(r.Senders, r.Replayed)
		if !rcons.Balanced() {
			return res, fmt.Errorf("fleetbench: replayed aggregate unbalanced: %v", rcons.Mismatches)
		}
		if bad := fleet.CheckMapReplication(r.Senders, r.Replayed); len(bad) > 0 {
			return res, fmt.Errorf("fleetbench: map replication violated: %v", bad)
		}
	}
	if !crash && r.Integrity.Degraded() {
		return res, fmt.Errorf("fleetbench: fault-free run degraded")
	}
	res = FleetBenchResult{
		Hosts:         hosts,
		Cores:         cores,
		Deltas:        FleetBenchDeltas,
		Samples:       r.Collector.Aggregate().Total(),
		JournalFrames: r.Replay.Deltas + r.Replay.Maps + r.Replay.Duplicates,
		Restarts:      r.Collector.Stats().Restarts,
	}
	if crash && res.Restarts == 0 {
		return res, fmt.Errorf("fleetbench: crash cell survived without a restart")
	}
	return res, nil
}
