package viprof

// The deterministic dispatch-heavy VM workload behind
// BenchmarkTraceBatch and `vipbench -fig tracebatch`. The program is
// shaped like the interpreter phases the trace cache exists for: a hot
// single-backedge loop whose body mixes arithmetic chains, array and
// field read-modify-writes, a static accumulator, and a data-dependent
// branch (a recurring deopt point), plus a periodic allocation so the
// collector moves the traced body mid-run. All benchmark sides run
// the identical program on identically configured machines and must
// agree on the final simulated cycle count bit for bit. The headline
// ablation mirrors membench: the fused side (trace cache + batching)
// against the per-op oracle (SetBatching(false), every bytecode through
// core.Exec) — the same configuration pair the trace quickcheck suite
// proves equivalent. The intermediate side (batching on, trace off)
// isolates the trace layer's own contribution.

import (
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/jvm"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/kernel"
)

// TraceBenchOuter and TraceBenchInner size the run: outer worker calls
// of inner loop iterations each, ~26M bytecodes — enough for the
// adaptive system to promote the worker and for tens of collections to
// move its body while traces are live.
const (
	TraceBenchOuter = 200
	TraceBenchInner = 1500
)

// TraceBenchProgram builds the benchmark workload.
func TraceBenchProgram() *classes.Program {
	return dispatchProgram("tracebench", TraceBenchOuter, TraceBenchInner)
}

// dispatchProgram builds the dispatch-heavy loop workload shared by the
// trace-batch and SMP benches: outer worker calls of inner iterations
// each, over the hash-mix/array/field/static body described above.
//
// Worker locals: 0=iterations 1=i 2=arr 3=obj 4=acc 5=tmp.
// Statics: 0,1 allocation rings (refs), 2=acc 3=arr probe 4=field
// probe 5=static accumulator.
func dispatchProgram(name string, outer, inner int) *classes.Program {
	p := classes.NewProgram(name, 8)
	const arrLen = 48

	w := bytecode.NewAsm()
	w.Const(arrLen).Emit(bytecode.NewArray, 8, 0).Store(2)
	w.Emit(bytecode.New, 1, 4).Store(3)
	w.Const(7).Store(4)
	w.Const(0).Store(1)
	w.Label("loop")
	// A hash-mix round over acc and i: the straight dispatch chains an
	// interpreter inner loop is made of (the bulk of any bytecode
	// histogram is loads, constants, and ALU ops — this is that bulk).
	w.Load(4).Load(1).Emit(bytecode.Add)
	w.Const(1021).Emit(bytecode.Xor)
	w.Load(1).Const(63).Emit(bytecode.And).Emit(bytecode.Sub)
	w.Store(4)
	// tmp = ((acc << 3) ^ (acc >> 5)) + (i * 31)
	w.Load(4).Const(3).Emit(bytecode.Shl)
	w.Load(4).Const(5).Emit(bytecode.Shr)
	w.Emit(bytecode.Xor)
	w.Load(1).Const(31).Emit(bytecode.Mul)
	w.Emit(bytecode.Add).Store(5)
	// acc = (acc | (tmp & 255)) - ((tmp >> 4) ^ (i << 1))
	w.Load(4).Load(5).Const(255).Emit(bytecode.And).Emit(bytecode.Or)
	w.Load(5).Const(4).Emit(bytecode.Shr)
	w.Load(1).Const(1).Emit(bytecode.Shl)
	w.Emit(bytecode.Xor)
	w.Emit(bytecode.Sub)
	w.Store(4)
	// acc = ((acc * 17) ^ (tmp + 99)) & ((i | 7) + acc)
	w.Load(4).Const(17).Emit(bytecode.Mul)
	w.Load(5).Const(99).Emit(bytecode.Add)
	w.Emit(bytecode.Xor)
	w.Load(1).Const(7).Emit(bytecode.Or)
	w.Load(4).Emit(bytecode.Add)
	w.Emit(bytecode.And)
	w.Store(4)
	// arr[i%48] += i
	w.Load(2).Load(1).Const(arrLen).Emit(bytecode.Mod).Emit(bytecode.ALoad)
	w.Load(1).Emit(bytecode.Add)
	w.Store(5)
	w.Load(2).Load(1).Const(arrLen).Emit(bytecode.Mod)
	w.Load(5)
	w.Emit(bytecode.AStore)
	// obj.f1 += 5
	w.Load(3)
	w.Load(3).Emit(bytecode.GetField, 1)
	w.Const(5).Emit(bytecode.Add)
	w.Emit(bytecode.PutField, 1)
	// static5 += acc
	w.Emit(bytecode.GetStatic, 5)
	w.Load(4).Emit(bytecode.Add)
	w.Emit(bytecode.PutStatic, 5)
	// Data-dependent skip: every 7th iteration takes the other arm, so
	// an installed trace deopts there on a fixed cadence.
	w.Load(1).Const(7).Emit(bytecode.Mod)
	w.Branch(bytecode.JmpNZ, "noboost")
	w.Load(4).Const(13).Emit(bytecode.Add).Store(4)
	w.Label("noboost")
	// Every 13th iteration allocates and roots an object, so the
	// collector runs — and moves the traced body — at known points.
	w.Load(1).Const(13).Emit(bytecode.Mod)
	w.Branch(bytecode.JmpNZ, "skipalloc")
	w.Emit(bytecode.New, 1, 2)
	w.Emit(bytecode.PutStatic, 0)
	w.Label("skipalloc")
	// i++; loop while i < iterations
	w.Load(1).Const(1).Emit(bytecode.Add).Store(1)
	w.Load(1).Load(0).Emit(bytecode.CmpLT)
	w.Branch(bytecode.JmpNZ, "loop")
	// Publish the observable results into scalar statics.
	w.Load(4).Emit(bytecode.PutStatic, 2)
	w.Load(2).Const(arrLen/2).Emit(bytecode.ALoad).Emit(bytecode.PutStatic, 3)
	w.Load(3).Emit(bytecode.GetField, 1).Emit(bytecode.PutStatic, 4)
	w.Emit(bytecode.RetVoid)
	worker := p.Add(&classes.Method{
		Class: name + ".Worker", Name: "run", NArgs: 1, MaxLocals: 6,
		Code: w.MustFinish(),
	})

	mn := bytecode.NewAsm()
	mn.Const(0).Store(0)
	mn.Label("loop")
	mn.Const(int32(inner)).Call(int32(worker.Index))
	mn.Load(0).Const(1).Emit(bytecode.Add).Store(0)
	mn.Load(0).Const(int32(outer)).Emit(bytecode.CmpLT)
	mn.Branch(bytecode.JmpNZ, "loop")
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{
		Class: name + ".Main", Name: "main", MaxLocals: 1,
		Code: mn.MustFinish(),
	})
	p.SetMain(main)
	return p
}

// TraceBenchResult is one side's outcome: everything the two sides
// must agree on, plus the trace-cache counters (which legitimately
// differ — the per-op side must show zero).
type TraceBenchResult struct {
	Cycles    uint64
	Bytecodes uint64
	NMIs      int
	Trace     jvm.TraceStats
}

// TraceBenchRun executes the benchmark program on a fresh machine with
// both paper events armed at aggressive periods (so mid-trace
// overflows and sample attribution are part of what is timed) and
// returns the outcome. disableTrace switches off the trace cache;
// disableBatch additionally switches the core to the per-op oracle
// (which implies no tracing — recording refuses to start when batching
// is off).
func TraceBenchRun(disableTrace, disableBatch bool) (TraceBenchResult, error) {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	core.Bank.Program(hpc.GlobalPowerEvents, 7_003)
	core.Bank.Program(hpc.BSQCacheReference, 1_201)
	if disableBatch {
		core.SetBatching(false)
	}
	m := kernel.NewMachine(core, 1)
	var res TraceBenchResult
	m.Kern.SetNMIHandler(func(*kernel.Machine, cpu.Snapshot, hpc.Event) {
		res.NMIs++
	})
	vm, _, err := jvm.Launch(m, TraceBenchProgram(), jvm.Config{
		HeapBytes: 256 << 10, AOSThreshold: 120, DisableTrace: disableTrace,
	})
	if err != nil {
		return res, err
	}
	if err := m.Kern.Run(30_000_000_000); err != nil {
		return res, err
	}
	if !vm.Finished() {
		return res, vm.Err()
	}
	res.Cycles = core.Cycles()
	res.Bytecodes = vm.Stats().BytecodesRun
	res.Trace = vm.TraceStats()
	return res, nil
}
