# Developer smoke gate. `make check` is what a PR must keep green:
# the viplint invariant passes (determinism, durability, attribution —
# see DESIGN.md §11), static vetting, a full build, the race-enabled
# short test suite, a bounded chaos sweep (seeded fault schedules
# against the persistence layer, conservation invariants checked end to
# end), and one iteration of the engine microbenchmarks (which
# self-verify that the batched and per-op paths agree, and that the
# flattened epoch index matches the backward scan).

GO ?= go

.PHONY: check lint vet build test chaos-smoke bench-smoke bench

check: lint vet build test chaos-smoke bench-smoke

# viplint: the repo's own go/analysis-style pass suite (cmd/viplint).
# Exits nonzero on any unsuppressed finding; suppressions require
# `//viplint:allow <pass> <reason>`.
lint:
	$(GO) run ./cmd/viplint ./...

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -short ./...

# Bounded seed sweep of the chaos harness: 25 seeds cycling all five
# fault scenarios, plus the scripted crash/latency schedules.
chaos-smoke:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/core/

bench-smoke:
	$(GO) test -race -run '^$$' -bench 'BenchmarkExecBatch|BenchmarkExecMemBatch|BenchmarkEpochResolveIndexed' -benchtime 1x .

# Full reduced-scale benchmark sweep (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .
