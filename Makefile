# Developer smoke gate. `make check` is what a PR must keep green:
# static vetting, a full build, the race-enabled short test suite, and
# one iteration of the engine microbenchmarks (which self-verify that
# the batched and per-op paths agree, and that the flattened epoch
# index matches the backward scan).

GO ?= go

.PHONY: check vet build test bench-smoke bench

check: vet build test bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -short ./...

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkExecBatch|BenchmarkEpochResolveIndexed' -benchtime 1x .

# Full reduced-scale benchmark sweep (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .
