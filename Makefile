# Developer smoke gate. `make check` is what a PR must keep green:
# the viplint invariant passes (determinism, durability, attribution —
# see DESIGN.md §11), static vetting, a full build, the race-enabled
# short test suite, a bounded chaos sweep (seeded fault schedules
# against the persistence layer, conservation invariants checked end to
# end), and one iteration of the engine microbenchmarks (which
# self-verify that the batched, fused-trace, and per-op paths agree,
# and that the flattened epoch index matches the backward scan).

GO ?= go

.PHONY: check lint vet build test race-smoke chaos-smoke fleet-smoke chaos-nightly bench-smoke bench

check: lint vet build test race-smoke chaos-smoke fleet-smoke bench-smoke

# viplint: the repo's own go/analysis-style pass suite (cmd/viplint).
# Exits nonzero on any unsuppressed finding; suppressions require
# `//viplint:allow <pass> <reason>`. -stats appends the per-pass
# finding-count/wall-time table so slow passes surface in CI logs.
lint:
	$(GO) run ./cmd/viplint -stats ./...

# Focused race gate on the concurrency-bearing subsystems: the fleet
# collector (networked delta ingestion, supervisor restarts), the chaos
# harness, the daemon's concurrent per-CPU shard drain (internal/core
# drives it end to end; internal/cpu holds the cores whose banks the
# shards are fed from), re-run under the race detector with caching
# defeated, so `make check` exercises them fresh even when the cached
# `test` target is a no-op.
race-smoke:
	$(GO) test -race -short -count=1 ./internal/fleet/ ./internal/harness/ ./internal/core/ ./internal/cpu/

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -race -short ./...

# Bounded seed sweep of the chaos harness: 25 seeds — the first eight
# run each scenario in isolation (daemon crash, ENOSPC, torn map, torn
# samples, VM kill, rename fault, dir damage, read fault), the rest
# draw composed schedules of 1-3 scenarios — plus the scripted
# crash/latency/rename/listing-damage schedules. Every seeded run ends
# with the recovery pass and re-checks conservation and visibility
# after it.
chaos-smoke:
	$(GO) test -race -run 'TestChaos' -count=1 ./internal/core/

# Bounded seed sweep of the fleet chaos harness (internal/harness):
# 25+ seeds of 8-10 hosts each on 1/2/4-core collector machines — the
# early seeds run each network or disk scenario in isolation (drop,
# dup, reorder, latency, partition, collector crash, ENOSPC, torn
# journal, torn spill, sender kill, snapshot rename, dir damage, read
# fault, shard kill, kill-mid-compaction, partition-mid-map-replication),
# the rest draw composed schedules. Every seed asserts fleet-level
# conservation (per-host oracles vs live and replayed aggregates, key
# by key), zero misattribution, complete code-map replication on clean
# runs, windowed-query partition, and destructive-faults <=>
# degraded-verdict. The second leg is the compaction-crash gate: the
# fault-point sweep kills a compaction pass at every single mutation
# and proves the store rereads identically, plus the windowed-query
# oracle over compacted generations.
fleet-smoke:
	$(GO) test -race -run 'TestFleetChaos$$' -count=1 ./internal/harness/
	$(GO) test -race -run 'TestCompactionFaultPointSweep|TestWindowedQueryOracle|TestFleetMapReplication' -count=1 ./internal/fleet/

# Wide composed-schedule sweep (hundreds of seeds, minutes). Out of
# `make check` by design: run it nightly or before cutting a release.
# Covers both the per-host persistence chaos suite and the fleet
# network-fault suite.
chaos-nightly:
	VIPROF_CHAOS_SEEDS=500 $(GO) test -race -run 'TestChaosNightly' -count=1 -timeout 30m ./internal/core/
	VIPROF_FLEET_SEEDS=300 $(GO) test -race -run 'TestFleetChaosNightly' -count=1 -timeout 30m ./internal/harness/

bench-smoke:
	$(GO) test -race -run '^$$' -bench 'BenchmarkExecBatch|BenchmarkExecMemBatch|BenchmarkTraceBatch|BenchmarkEpochResolveIndexed|BenchmarkFleetIngest|BenchmarkSMPScaling' -benchtime 1x .

# Full reduced-scale benchmark sweep (minutes).
bench:
	$(GO) test -run '^$$' -bench . -benchtime 3x .
