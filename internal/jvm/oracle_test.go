package jvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
)

// The interpreter-vs-oracle property: generate random straight-line
// arithmetic programs, evaluate them with a direct Go stack evaluator,
// and require the VM (through compilation, scheduling, sampling-free
// execution) to produce the identical result.

// genProgram emits a random sequence of stack-safe arithmetic ops and
// returns both the bytecode and the oracle's expected result.
func genProgram(rng *rand.Rand) ([]bytecode.Instr, int64) {
	var code []bytecode.Instr
	var stack []int64
	push := func(v int64, in bytecode.Instr) {
		stack = append(stack, v)
		code = append(code, in)
	}
	// Seed with two constants.
	for i := 0; i < 2; i++ {
		c := int32(rng.Intn(2000) - 1000)
		push(int64(c), bytecode.Instr{Op: bytecode.Const, A: c})
	}
	steps := rng.Intn(40) + 5
	for i := 0; i < steps; i++ {
		switch r := rng.Intn(10); {
		case r < 3 || len(stack) < 2: // push a constant
			c := int32(rng.Intn(200) - 100)
			push(int64(c), bytecode.Instr{Op: bytecode.Const, A: c})
		case r < 9: // binary op
			b := stack[len(stack)-1]
			a := stack[len(stack)-2]
			stack = stack[:len(stack)-2]
			ops := []bytecode.Opcode{
				bytecode.Add, bytecode.Sub, bytecode.Mul, bytecode.And,
				bytecode.Or, bytecode.Xor, bytecode.CmpLT, bytecode.CmpGE,
			}
			// Division only with a safe divisor.
			if b != 0 && rng.Intn(4) == 0 {
				ops = append(ops, bytecode.Div, bytecode.Mod)
			}
			op := ops[rng.Intn(len(ops))]
			var v int64
			switch op {
			case bytecode.Add:
				v = a + b
			case bytecode.Sub:
				v = a - b
			case bytecode.Mul:
				v = a * b
			case bytecode.And:
				v = a & b
			case bytecode.Or:
				v = a | b
			case bytecode.Xor:
				v = a ^ b
			case bytecode.Div:
				v = a / b
			case bytecode.Mod:
				v = a % b
			case bytecode.CmpLT:
				if a < b {
					v = 1
				}
			case bytecode.CmpGE:
				if a >= b {
					v = 1
				}
			}
			stack = append(stack, v)
			code = append(code, bytecode.Instr{Op: op})
		default: // unary neg
			stack[len(stack)-1] = -stack[len(stack)-1]
			code = append(code, bytecode.Instr{Op: bytecode.Neg})
		}
	}
	// Collapse the stack to one value with adds.
	for len(stack) > 1 {
		b := stack[len(stack)-1]
		a := stack[len(stack)-2]
		stack = stack[:len(stack)-2]
		stack = append(stack, a+b)
		code = append(code, bytecode.Instr{Op: bytecode.Add})
	}
	code = append(code,
		bytecode.Instr{Op: bytecode.PutStatic, A: 0},
		bytecode.Instr{Op: bytecode.RetVoid})
	return code, stack[0]
}

func TestInterpreterMatchesOracleQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		code, want := genProgram(rng)
		p := classes.NewProgram("oracle", 1)
		main := p.Add(&classes.Method{Class: "o.Main", Name: "main", MaxLocals: 1, Code: code})
		p.SetMain(main)
		if err := p.Verify(); err != nil {
			t.Logf("seed %d: generated invalid program: %v", seed, err)
			return false
		}
		m := newMachine(seed)
		vm, _, err := Launch(m, p, Config{HeapBytes: 128 << 10})
		if err != nil {
			t.Logf("seed %d: launch: %v", seed, err)
			return false
		}
		if err := m.Kern.Run(1_000_000_000); err != nil {
			t.Logf("seed %d: run: %v", seed, err)
			return false
		}
		if !vm.Finished() {
			t.Logf("seed %d: vm error: %v", seed, vm.Err())
			return false
		}
		if got := vm.statics[0].I; got != want {
			t.Logf("seed %d: VM computed %d, oracle says %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
