package jvm

import "viprof/internal/image"

// Personality parameterizes the simulated virtual machine as a concrete
// product. The paper claims VIProf's "implementation is simple and
// general enough to support a wide range of virtual execution
// environments (multiple Java virtual machines as well as Microsoft
// .Net common language runtimes)" (§2); personalities make that claim
// testable: the same VM engine runs as Jikes RVM or as a CLR-style
// runtime, with its own process name, boot image, symbol map and
// service symbols — and the unchanged VIProf pipeline profiles both.
type Personality struct {
	// Name identifies the personality ("JikesRVM", "CLR").
	Name string
	// ProcName is the OS process name VM instances run under.
	ProcName string
	// BootImageName is the mapped runtime image (symbol-less to ELF
	// tools).
	BootImageName string
	// MapFileName is the build-produced symbol map on disk.
	MapFileName string
	// MapDisplay is the image column shown for symbolized boot-image
	// rows (the paper's Figure 1 uses "RVM.map").
	MapDisplay string
	// BootstrapName is the native loader binary.
	BootstrapName string

	bootSyms []bootSym
	services map[ServiceID][]svcSym
}

type svcSym struct {
	name   string
	weight int
}

// Jikes returns the default personality: Jikes RVM 2.4.4, the paper's
// prototype target.
func Jikes() *Personality {
	return &Personality{
		Name:          "JikesRVM",
		ProcName:      "jikesrvm",
		BootImageName: "RVM.code.image",
		MapFileName:   "RVM.map",
		MapDisplay:    "RVM.map",
		BootstrapName: "JikesRVM",
		bootSyms:      jikesBootSymbols,
		services:      jikesServiceSymbols,
	}
}

// CLR returns a Microsoft-.NET-style personality: same engine, CLR
// runtime symbols. Its map file plays the role RVM.map plays for Jikes.
func CLR() *Personality {
	return &Personality{
		Name:          "CLR",
		ProcName:      "clrhost",
		BootImageName: "mscorwks.image",
		MapFileName:   "CLR.map",
		MapDisplay:    "CLR.map",
		BootstrapName: "clrboot",
		bootSyms:      clrBootSymbols,
		services:      clrServiceSymbols,
	}
}

// Personalities lists every personality whose map files post-processing
// should look for.
func Personalities() []*Personality {
	return []*Personality{Jikes(), CLR()}
}

// buildBootImage constructs the personality's runtime image.
func (p *Personality) buildBootImage() (*image.Image, error) {
	b := image.NewBuilder(p.BootImageName)
	for _, s := range p.bootSyms {
		b.Add(s.name, s.size)
	}
	return b.Image()
}

// buildBootstrap constructs the native loader.
func (p *Personality) buildBootstrap() (*image.Image, error) {
	b := image.NewBuilder(p.BootstrapName)
	for _, s := range []bootSym{
		{"main", 400},
		{"loadBootImage", 900},
		{"sysCall", 300},
	} {
		b.Add(s.name, s.size)
	}
	return b.Image()
}

// clrBootSymbols models the CLR runtime's method table (mscorwks-style
// names).
var clrBootSymbols = []bootSym{
	// Loader / type system.
	{"System.Reflection.Assembly.Load", 1800},
	{"MethodTable::DoFullyLoad", 1400},
	{"MethodDesc::DoPrestub", 900},
	{"ClassLoader::LoadTypeHandle", 1100},
	// JIT (one tier in CLR 2.0; re-JIT modelled through the same path).
	{"CILJit::compileMethod", 4000},
	{"Compiler::compCompile", 2200},
	{"Compiler::optOptimizeLayout", 1200},
	{"CEEJitInfo::allocMem", 600},
	// GC.
	{"WKS::gc_heap::garbage_collect", 1600},
	{"WKS::gc_heap::mark_object_simple", 1200},
	{"WKS::gc_heap::relocate_phase", 1100},
	{"WKS::gc_heap::allocate", 500},
	// Threads / startup / runtime services.
	{"Thread::intermediateThreadProc", 900},
	{"ThreadpoolMgr::WorkerThreadStart", 1000},
	{"SystemDomain::Init", 2200},
	{"JIT_New", 600},
	{"JIT_MonEnterWorker", 500},
	{"System.String.Concat", 500},
	{"System.Collections.ArrayList.Add", 500},
}

var clrServiceSymbols = map[ServiceID][]svcSym{
	SvcClassload: {
		{"System.Reflection.Assembly.Load", 4},
		{"MethodTable::DoFullyLoad", 3},
		{"ClassLoader::LoadTypeHandle", 3},
	},
	SvcBaseCompile: {
		{"MethodDesc::DoPrestub", 3},
		{"CILJit::compileMethod", 6},
		{"CEEJitInfo::allocMem", 1},
	},
	SvcOptCompile: {
		{"CILJit::compileMethod", 6},
		{"Compiler::compCompile", 5},
		{"Compiler::optOptimizeLayout", 4},
	},
	SvcGCTrace: {
		{"WKS::gc_heap::garbage_collect", 3},
		{"WKS::gc_heap::mark_object_simple", 5},
	},
	SvcGCCopy: {
		{"WKS::gc_heap::relocate_phase", 4},
		{"WKS::gc_heap::allocate", 2},
	},
	SvcScheduler: {
		{"Thread::intermediateThreadProc", 3},
		{"ThreadpoolMgr::WorkerThreadStart", 2},
	},
	SvcRuntime: {
		{"JIT_New", 3},
		{"JIT_MonEnterWorker", 1},
		{"System.String.Concat", 1},
		{"System.Collections.ArrayList.Add", 1},
	},
	SvcStartup: {
		{"SystemDomain::Init", 5},
		{"Thread::intermediateThreadProc", 2},
	},
}
