package jvm

import (
	"strings"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
)

// buildLoopProgram returns a program whose main calls a hot worker
// method `outer` times; the worker loops over an array doing loads,
// stores and arithmetic, allocates a small object per call, and keeps
// every `keepEvery`-th allocation live in a static ring.
func buildLoopProgram(outer, inner int32) *classes.Program {
	p := classes.NewProgram("test.loop", 8)

	// worker(iterations): arr = new long[64]; for i in 0..iterations:
	// arr[i%64] = arr[i%64] + i; obj = new(1 ref,2 scalars); statics[0]=obj (sometimes)
	w := bytecode.NewAsm()
	// locals: 0=iterations 1=i 2=arr 3=obj
	w.Const(64).Emit(bytecode.NewArray, 8, 0).Store(2)
	w.Const(0).Store(1)
	w.Label("loop")
	// arr[i%64] = arr[i%64] + i
	w.Load(2).Load(1).Const(64).Emit(bytecode.Mod) // arr, i%64
	w.Emit(bytecode.ALoad)
	w.Load(1).Emit(bytecode.Add) // value + i
	// need (ref, idx, val) for AStore: rebuild
	w.Store(3)                                     // tmp value in 3
	w.Load(2).Load(1).Const(64).Emit(bytecode.Mod) // arr, idx
	w.Load(3)
	w.Emit(bytecode.AStore)
	// every 16th: allocate object and root it
	w.Load(1).Const(16).Emit(bytecode.Mod)
	w.Branch(bytecode.JmpNZ, "skipalloc")
	w.Emit(bytecode.New, 1, 2)
	w.Emit(bytecode.PutStatic, 0)
	w.Label("skipalloc")
	// i++
	w.Load(1).Const(1).Emit(bytecode.Add).Store(1)
	w.Load(1).Load(0).Emit(bytecode.CmpLT)
	w.Branch(bytecode.JmpNZ, "loop")
	// native + kernel activity per call: memset scratch, write a record
	w.Const(2048).Emit(bytecode.Intrinsic, int32(bytecode.IntrMemset), 1)
	w.Const(64).Emit(bytecode.Intrinsic, int32(bytecode.IntrWrite), 1)
	w.Emit(bytecode.RetVoid)
	worker := p.Add(&classes.Method{
		Class: "test.app.Worker", Name: "run", NArgs: 1, MaxLocals: 4,
		Code: w.MustFinish(),
	})

	// main: for j in 0..outer: worker(inner)
	mn := bytecode.NewAsm()
	mn.Const(0).Store(0)
	mn.Label("loop")
	mn.Const(inner).Call(int32(worker.Index))
	mn.Load(0).Const(1).Emit(bytecode.Add).Store(0)
	mn.Load(0).Const(outer).Emit(bytecode.CmpLT)
	mn.Branch(bytecode.JmpNZ, "loop")
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{
		Class: "test.app.Main", Name: "main", MaxLocals: 1,
		Code: mn.MustFinish(),
	})
	p.SetMain(main)
	return p
}

func newMachine(seed int64) *kernel.Machine {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	return kernel.NewMachine(core, seed)
}

func TestVMRunsProgramToCompletion(t *testing.T) {
	m := newMachine(1)
	prog := buildLoopProgram(50, 200)
	vm, proc, err := Launch(m, prog, Config{HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !proc.Done() {
		t.Fatal("VM process did not exit")
	}
	if !vm.Finished() {
		t.Fatalf("VM did not finish cleanly: %v", vm.Err())
	}
	st := vm.Stats()
	if st.BaselineCompiles < 2 {
		t.Errorf("baseline compiles = %d, want >= 2 (main + worker)", st.BaselineCompiles)
	}
	if st.BytecodesRun == 0 {
		t.Error("no bytecodes executed")
	}
	if st.ClassesLoaded < 2 {
		t.Errorf("classes loaded = %d", st.ClassesLoaded)
	}
}

func TestHotMethodGetsPromoted(t *testing.T) {
	m := newMachine(1)
	prog := buildLoopProgram(300, 400)
	vm, _, err := Launch(m, prog, Config{HeapBytes: 1 << 20, AOSThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if vm.Stats().OptCompiles == 0 {
		t.Error("hot worker never promoted to opt")
	}
	worker := prog.Methods[0]
	body, ok := vm.Body(worker)
	if !ok || body.Level != jit.Opt {
		t.Errorf("worker body level = %v (ok=%v), want opt", body, ok)
	}
}

func TestAllocationsTriggerGC(t *testing.T) {
	m := newMachine(1)
	prog := buildLoopProgram(200, 400)
	vm, _, err := Launch(m, prog, Config{HeapBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	if vm.Stats().Collections == 0 {
		t.Error("no collections despite small heap")
	}
	if vm.Heap().Epoch() != vm.Stats().Collections {
		t.Errorf("epoch %d != collections %d", vm.Heap().Epoch(), vm.Stats().Collections)
	}
}

// recordingAgent captures VM-agent events for inspection.
type recordingAgent struct {
	compiles []string // "sig level epoch"
	moves    int
	preGCs   []int
	exits    int
	moveSigs map[string]bool
}

func (a *recordingAgent) OnCompile(b *jit.CodeBody, epoch int) {
	a.compiles = append(a.compiles, b.Method.Signature()+" "+b.Level.String())
}
func (a *recordingAgent) OnMove(b *jit.CodeBody, old addr.Address) {
	a.moves++
	if a.moveSigs == nil {
		a.moveSigs = map[string]bool{}
	}
	a.moveSigs[b.Method.Signature()] = true
	if b.Obj.Addr == old {
		panic("OnMove with unchanged address")
	}
}
func (a *recordingAgent) PreGC(epoch int)  { a.preGCs = append(a.preGCs, epoch) }
func (a *recordingAgent) OnExit(epoch int) { a.exits++ }

func TestAgentObservesLifecycle(t *testing.T) {
	m := newMachine(1)
	prog := buildLoopProgram(200, 300)
	agent := &recordingAgent{}
	vm, _, err := Launch(m, prog, Config{
		HeapBytes: 64 << 10, AOSThreshold: 50, Agent: agent,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	if len(agent.compiles) < 3 {
		t.Errorf("agent saw %d compiles, want >= 3 (2 baseline + 1 opt)", len(agent.compiles))
	}
	sawOpt := false
	for _, c := range agent.compiles {
		if strings.HasSuffix(c, " opt") {
			sawOpt = true
		}
	}
	if !sawOpt {
		t.Error("agent never saw an opt compile")
	}
	if agent.moves == 0 {
		t.Error("agent never saw a code move despite GCs")
	}
	for i, e := range agent.preGCs {
		if e != i {
			t.Fatalf("PreGC epochs not sequential: %v", agent.preGCs)
		}
	}
	if agent.exits != 1 {
		t.Errorf("OnExit fired %d times", agent.exits)
	}
}

// recordingRegistry captures JIT-region registration.
type recordingRegistry struct {
	pid        int
	start, end addr.Address
	epochFn    func() int
	unregs     int
}

func (r *recordingRegistry) RegisterJIT(pid int, start, end addr.Address, epoch func() int) {
	r.pid, r.start, r.end, r.epochFn = pid, start, end, epoch
}
func (r *recordingRegistry) UnregisterJIT(pid int) { r.unregs++ }

func TestRegistryRegistration(t *testing.T) {
	m := newMachine(1)
	prog := buildLoopProgram(20, 100)
	reg := &recordingRegistry{}
	vm, proc, err := Launch(m, prog, Config{HeapBytes: 256 << 10, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if reg.pid != proc.PID {
		t.Errorf("registered pid %d, process pid %d", reg.pid, proc.PID)
	}
	lo, hi := vm.Heap().Bounds()
	if reg.start != lo || reg.end != hi {
		t.Errorf("registered region [%s,%s), heap [%s,%s)", reg.start, reg.end, lo, hi)
	}
	if reg.epochFn == nil || reg.epochFn() != 0 {
		t.Error("epoch function missing or nonzero at start")
	}
	if err := m.Kern.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if reg.unregs != 1 {
		t.Errorf("unregistered %d times", reg.unregs)
	}
}

// Samples taken during the run must land in every layer: JIT heap,
// boot image, kernel, and each at plausible shares.
func TestSamplesSpanAllLayers(t *testing.T) {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	core.Bank.Program(hpc.GlobalPowerEvents, 5_000)
	m := kernel.NewMachine(core, 1)

	type bucket struct{ jit, boot, native, kern, other int }
	var b bucket
	var vmRef *VM
	m.Kern.SetNMIHandler(func(mm *kernel.Machine, s cpu.Snapshot, ev hpc.Event) {
		if vmRef == nil {
			return
		}
		lo, hi := vmRef.Heap().Bounds()
		switch {
		case s.PC >= lo && s.PC < hi:
			b.jit++
		case s.PC.IsKernel():
			b.kern++
		default:
			if p, ok := mm.Kern.Process(s.Ctx.PID); ok {
				if v, ok := p.Space.Lookup(s.PC); ok {
					switch {
					case v.Image == BootImageName:
						b.boot++
					case strings.HasPrefix(v.Image, "libc"), v.Image == "JikesRVM":
						b.native++
					default:
						b.other++
					}
					return
				}
			}
			b.other++
		}
	})

	prog := buildLoopProgram(300, 300)
	vm, _, err := Launch(m, prog, Config{HeapBytes: 128 << 10, AOSThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	vmRef = vm
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	total := b.jit + b.boot + b.native + b.kern + b.other
	if total < 100 {
		t.Fatalf("too few samples: %d", total)
	}
	if b.jit == 0 {
		t.Error("no samples in JIT code")
	}
	if b.boot == 0 {
		t.Error("no samples in the boot image (VM services invisible)")
	}
	if b.kern == 0 {
		t.Error("no kernel samples")
	}
	t.Logf("samples: jit=%d boot=%d native=%d kern=%d other=%d", b.jit, b.boot, b.native, b.kern, b.other)
}

func TestRuntimeErrorsSurface(t *testing.T) {
	p := classes.NewProgram("test.div0", 1)
	a := bytecode.NewAsm()
	a.Const(1).Const(0).Emit(bytecode.Div).Emit(bytecode.Pop).Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "t.Main", Name: "main", MaxLocals: 1, Code: a.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, proc, err := Launch(m, p, Config{HeapBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !proc.Done() {
		t.Fatal("crashed VM did not exit")
	}
	if vm.Finished() {
		t.Fatal("VM reported success after ArithmeticException")
	}
	if vm.Err() == nil || !strings.Contains(vm.Err().Error(), "zero") {
		t.Errorf("error = %v", vm.Err())
	}
}

func TestIntrinsicsRun(t *testing.T) {
	p := classes.NewProgram("test.intr", 1)
	a := bytecode.NewAsm()
	// memset(4096)
	a.Const(4096).Emit(bytecode.Intrinsic, int32(bytecode.IntrMemset), 1)
	// arrays: src = new[32]; dst = new[32]; arraycopy(src, dst, 32)
	a.Const(32).Emit(bytecode.NewArray, 8, 0).Store(0)
	a.Const(32).Emit(bytecode.NewArray, 8, 0).Store(1)
	// put a marker in src[5]
	a.Load(0).Const(5).Const(99).Emit(bytecode.AStore)
	a.Load(0).Load(1).Const(32).Emit(bytecode.Intrinsic, int32(bytecode.IntrArrayCopy), 3)
	// check dst[5] == 99: if not, divide by zero to fail loudly
	a.Load(1).Const(5).Emit(bytecode.ALoad)
	a.Const(99).Emit(bytecode.CmpEQ)
	a.Branch(bytecode.JmpNZ, "ok")
	a.Const(1).Const(0).Emit(bytecode.Div).Emit(bytecode.Pop)
	a.Label("ok")
	// write(64); t = currentTime()
	a.Const(64).Emit(bytecode.Intrinsic, int32(bytecode.IntrWrite), 1)
	a.Emit(bytecode.Intrinsic, int32(bytecode.IntrCurrentTime), 0).Emit(bytecode.Pop)
	a.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "t.Main", Name: "main", MaxLocals: 2, Code: a.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, _, err := Launch(m, p, Config{HeapBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("intrinsics program failed: %v", vm.Err())
	}
	if !m.Kern.Disk().Exists("jikesrvm.out") {
		t.Error("IntrWrite produced no file")
	}
}

func TestRVMMapWrittenAtLaunch(t *testing.T) {
	m := newMachine(1)
	_, _, err := Launch(m, buildLoopProgram(1, 10), Config{HeapBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.Kern.Disk().Read(RVMMapName)
	if err != nil {
		t.Fatalf("RVM.map not on disk: %v", err)
	}
	if !strings.Contains(string(data), "com.ibm.jikesrvm.VM_Compiler.compile") {
		t.Error("RVM.map missing compiler symbol")
	}
}

func TestStackOverflow(t *testing.T) {
	p := classes.NewProgram("test.rec", 1)
	rec := &classes.Method{Class: "t.R", Name: "rec", MaxLocals: 1}
	a := bytecode.NewAsm()
	a.Call(0) // self-call, index fixed after Add
	a.Emit(bytecode.RetVoid)
	rec.Code = a.MustFinish()
	p.Add(rec)
	mn := bytecode.NewAsm()
	mn.Call(0)
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "t.Main", Name: "main", MaxLocals: 1, Code: mn.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, _, err := Launch(m, p, Config{HeapBytes: 256 << 10, MaxCallDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if vm.Err() == nil || !strings.Contains(vm.Err().Error(), "StackOverflow") {
		t.Errorf("err = %v, want StackOverflowError", vm.Err())
	}
}

func TestDemandPagingFaults(t *testing.T) {
	m := newMachine(1)
	prog := buildLoopProgram(100, 300)
	vm, _, err := Launch(m, prog, Config{HeapBytes: 512 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	faults := m.Kern.PageFaults()
	if faults == 0 {
		t.Fatal("no page faults despite fresh heap pages")
	}
	// Faults are bounded by the touched page count, not by allocations:
	// most allocations reuse already-touched pages.
	maxPages := uint64(512<<10)/4096 + 16
	if faults > maxPages {
		t.Errorf("%d faults for at most %d heap pages", faults, maxPages)
	}
}

// BenchmarkInterpreterThroughput measures real-time cost per simulated
// bytecode through the full pipeline (interpreter + cache + counters).
func BenchmarkInterpreterThroughput(b *testing.B) {
	m := newMachine(1)
	prog := buildLoopProgram(1_000_000, 1_000) // effectively endless
	vm, _, err := Launch(m, prog, Config{HeapBytes: 4 << 20})
	if err != nil {
		b.Fatal(err)
	}
	_ = vm
	b.ResetTimer()
	done := uint64(0)
	for done < uint64(b.N) {
		m.Core.StartSlice(100_000)
		p, _ := m.Kern.Process(1)
		before := vm.Stats().BytecodesRun
		vm.Step(m, p)
		done += vm.Stats().BytecodesRun - before
	}
	b.ReportMetric(float64(vm.Stats().BytecodesRun), "bytecodes")
}
