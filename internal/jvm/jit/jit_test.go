package jit

import (
	"testing"

	"viprof/internal/addr"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/gc"
)

func testMethod(n int) *classes.Method {
	code := make([]bytecode.Instr, 0, n)
	for i := 0; i < n-1; i++ {
		code = append(code, bytecode.Instr{Op: bytecode.Opcode(1 + i%20)})
	}
	code = append(code, bytecode.Instr{Op: bytecode.RetVoid})
	return &classes.Method{Class: "app.C", Name: "m", MaxLocals: 4, Code: code}
}

func testHeap(t *testing.T) *gc.Heap {
	t.Helper()
	h, err := gc.NewHeap(0x6000_0000, 1<<20, nil, gc.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCompileLayout(t *testing.T) {
	h := testHeap(t)
	m := testMethod(50)
	body, err := Compile(h, m, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	if body.Method != m || body.Level != Baseline {
		t.Error("body metadata wrong")
	}
	if len(body.BCOff) != len(m.Code) {
		t.Fatalf("BCOff has %d entries for %d bytecodes", len(body.BCOff), len(m.Code))
	}
	for i := 1; i < len(body.BCOff); i++ {
		if body.BCOff[i] <= body.BCOff[i-1] {
			t.Fatalf("offsets not strictly increasing at %d", i)
		}
	}
	if uint32(body.BCOff[len(body.BCOff)-1]) >= body.Size {
		t.Error("last bytecode beyond body size")
	}
	if body.Obj.Kind != gc.KindCode {
		t.Error("code body not a KindCode object")
	}
	if body.Obj.Meta != body {
		t.Error("object Meta backref not set")
	}
}

func TestOptSmallerAndFaster(t *testing.T) {
	h := testHeap(t)
	m := testMethod(100)
	base, _ := Compile(h, m, Baseline)
	opt, _ := Compile(h, m, Opt)
	if opt.Size >= base.Size {
		t.Errorf("opt body (%d B) not smaller than baseline (%d B)", opt.Size, base.Size)
	}
	var baseCost, optCost uint32
	for _, in := range m.Code {
		baseCost += OpCost(in.Op, Baseline)
		optCost += OpCost(in.Op, Opt)
	}
	if float64(optCost) > 0.6*float64(baseCost) {
		t.Errorf("opt cost %d vs baseline %d: expected >=2x speedup", optCost, baseCost)
	}
	if OpCost(bytecode.Jmp, Opt) == 0 {
		t.Error("zero op cost would stall the simulated clock")
	}
}

func TestCompileCostOps(t *testing.T) {
	m := testMethod(100)
	b := CompileCostOps(m, Baseline)
	o := CompileCostOps(m, Opt)
	if o < 8*b {
		t.Errorf("opt compile (%d ops) should be ~12x baseline (%d ops)", o, b)
	}
	small := CompileCostOps(testMethod(2), Baseline)
	if small <= 0 {
		t.Error("compile cost must be positive")
	}
}

func TestPCTracksObjectAddress(t *testing.T) {
	h := testHeap(t)
	m := testMethod(10)
	body, _ := Compile(h, m, Baseline)
	pc0 := body.PC(0)
	if pc0 != body.Obj.Addr+addr.Address(body.BCOff[0]) {
		t.Error("PC(0) inconsistent")
	}
	// Simulate a GC move by reassigning the object address.
	body.Obj.Addr += 0x1000
	if body.PC(0) != pc0+0x1000 {
		t.Error("PC did not follow the moved code object")
	}
	if body.Start() != body.Obj.Addr {
		t.Error("Start() stale after move")
	}
}

func TestLevelString(t *testing.T) {
	if Baseline.String() != "base" || Opt.String() != "opt" {
		t.Error("level names wrong")
	}
}

func TestCompileOOM(t *testing.T) {
	h, err := gc.NewHeap(0x6000_0000, 8*1024, nil, gc.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	// A 2000-bytecode method compiles to a body larger than the 4 KiB
	// semispace: compilation must fail cleanly, not panic.
	if _, err := Compile(h, testMethod(2000), Baseline); err == nil {
		t.Error("no OOM compiling an oversized body into a tiny heap")
	}
}

// Every opcode must have nonzero size and cost at both levels.
func TestAllOpcodesCovered(t *testing.T) {
	for op := bytecode.Opcode(0); int(op) < bytecode.NumOpcodes; op++ {
		for _, lvl := range []Level{Baseline, Opt} {
			if opBytes(op, lvl) == 0 {
				t.Errorf("opBytes(%s, %s) = 0", op, lvl)
			}
			if OpCost(op, lvl) == 0 {
				t.Errorf("OpCost(%s, %s) = 0", op, lvl)
			}
		}
	}
}
