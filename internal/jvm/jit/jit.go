// Package jit models the VM's dynamic compilers. The VM is compile-only
// (like Jikes RVM): a method is baseline-compiled on first invocation
// and recompiled at the optimizing level when the adaptive system finds
// it hot. A compiled body is a KindCode object in the garbage-collected
// heap, so its location "can change dynamically" (paper §3) — the
// problem VIProf's code maps solve.
//
// The compilers are modelled, not real: compilation produces a code
// *layout* (per-bytecode machine-code offsets used to attribute sampled
// PCs) and a cost (simulated cycles the VM charges at its compiler
// symbols). Executing a compiled method is functional interpretation of
// the bytecode with PCs walking this layout.
package jit

import (
	"fmt"

	"viprof/internal/addr"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/gc"
)

// Level is a compiler tier.
type Level uint8

// Compiler tiers.
const (
	Baseline Level = iota
	Opt
)

// String names the tier as Jikes RVM's logs do.
func (l Level) String() string {
	if l == Opt {
		return "opt"
	}
	return "base"
}

// CodeBody is one compiled version of a method: a code object in the
// heap plus the layout needed to map a PC back to a bytecode index.
type CodeBody struct {
	Method *classes.Method
	Level  Level
	Obj    *gc.Object
	// BCOff[i] is the byte offset of bytecode i's machine code within
	// the body; offsets are strictly increasing.
	BCOff []uint32
	Size  uint32
}

// PC returns the simulated machine PC for a bytecode index, at the
// body's *current* address (which GC may have changed since the last
// call — callers must not cache the result across allocations).
func (b *CodeBody) PC(bci int) addr.Address {
	return b.Obj.Addr + addr.Address(b.BCOff[bci])
}

// Start returns the body's current start address.
func (b *CodeBody) Start() addr.Address { return b.Obj.Addr }

// opBytes returns the machine-code expansion of one bytecode at a tier.
// Baseline code is bulky (naive stack-machine expansion); opt code is
// less than half the size (registers, combined addressing).
func opBytes(op bytecode.Opcode, level Level) uint32 {
	var base uint32
	switch op {
	case bytecode.Nop:
		base = 2
	case bytecode.Const, bytecode.Load, bytecode.Store, bytecode.Dup, bytecode.Pop:
		base = 6
	case bytecode.Add, bytecode.Sub, bytecode.And, bytecode.Or, bytecode.Xor,
		bytecode.Shl, bytecode.Shr, bytecode.Neg:
		base = 7
	case bytecode.Mul:
		base = 9
	case bytecode.Div, bytecode.Mod:
		base = 14
	case bytecode.CmpLT, bytecode.CmpLE, bytecode.CmpEQ, bytecode.CmpNE,
		bytecode.CmpGT, bytecode.CmpGE:
		base = 10
	case bytecode.Jmp:
		base = 5
	case bytecode.JmpZ, bytecode.JmpNZ:
		base = 8
	case bytecode.Call:
		base = 18
	case bytecode.Spawn:
		base = 30
	case bytecode.Ret, bytecode.RetVoid:
		base = 10
	case bytecode.New, bytecode.NewArray:
		base = 24
	case bytecode.ALoad, bytecode.AStore:
		base = 14
	case bytecode.ArrayLen:
		base = 6
	case bytecode.GetField, bytecode.PutField, bytecode.GetRef, bytecode.PutRef:
		base = 11
	case bytecode.GetStatic, bytecode.PutStatic:
		base = 9
	case bytecode.Intrinsic:
		base = 20
	default:
		base = 8
	}
	if level == Opt {
		return base*2/5 + 2
	}
	return base
}

// OpCost returns the simulated execution cycles of one bytecode at a
// tier, excluding memory-system penalties (the cache model adds those).
// Opt code runs roughly 2.5x faster than baseline, matching the
// speedups Jikes RVM reports between its tiers.
//
// The dispatch loop pays this lookup once per executed bytecode, so the
// cost switch is flattened into a table at init.
func OpCost(op bytecode.Opcode, level Level) uint32 {
	if int(op) < bytecode.NumOpcodes {
		return opCostTab[level][op]
	}
	return opCostSwitch(op, level)
}

var opCostTab [2][bytecode.NumOpcodes]uint32

func init() {
	for op := 0; op < bytecode.NumOpcodes; op++ {
		opCostTab[Baseline][op] = opCostSwitch(bytecode.Opcode(op), Baseline)
		opCostTab[Opt][op] = opCostSwitch(bytecode.Opcode(op), Opt)
	}
}

func opCostSwitch(op bytecode.Opcode, level Level) uint32 {
	var base uint32
	switch op {
	case bytecode.Nop:
		base = 1
	case bytecode.Const, bytecode.Load, bytecode.Store, bytecode.Dup, bytecode.Pop:
		base = 2
	case bytecode.Add, bytecode.Sub, bytecode.And, bytecode.Or, bytecode.Xor,
		bytecode.Shl, bytecode.Shr, bytecode.Neg:
		base = 2
	case bytecode.Mul:
		base = 4
	case bytecode.Div, bytecode.Mod:
		base = 18
	case bytecode.CmpLT, bytecode.CmpLE, bytecode.CmpEQ, bytecode.CmpNE,
		bytecode.CmpGT, bytecode.CmpGE:
		base = 3
	case bytecode.Jmp:
		base = 1
	case bytecode.JmpZ, bytecode.JmpNZ:
		base = 3
	case bytecode.Call:
		base = 12
	case bytecode.Spawn:
		base = 40
	case bytecode.Ret, bytecode.RetVoid:
		base = 6
	case bytecode.New, bytecode.NewArray:
		base = 20
	case bytecode.ALoad, bytecode.AStore:
		base = 3
	case bytecode.ArrayLen:
		base = 2
	case bytecode.GetField, bytecode.PutField, bytecode.GetRef, bytecode.PutRef:
		base = 3
	case bytecode.GetStatic, bytecode.PutStatic:
		base = 3
	case bytecode.Intrinsic:
		base = 10
	default:
		base = 2
	}
	if level == Opt {
		c := base * 2 / 5
		if c == 0 {
			c = 1
		}
		return c
	}
	return base
}

// prologueBytes is the fixed per-method entry/exit sequence size.
func prologueBytes(level Level) uint32 {
	if level == Opt {
		return 16
	}
	return 32
}

// CompileCostOps returns how many simulated micro-ops the compiler
// spends producing the body: the optimizing compiler is ~12x slower per
// bytecode than the baseline compiler (Jikes RVM's tiers differ by an
// order of magnitude).
func CompileCostOps(m *classes.Method, level Level) int {
	per := 45
	if level == Opt {
		per = 540
	}
	return 200 + per*len(m.Code)
}

// Compile lays out machine code for the method at the given tier and
// allocates its body in the heap. The caller (the VM) charges the
// compiler's own execution separately using CompileCostOps.
func Compile(h *gc.Heap, m *classes.Method, level Level) (*CodeBody, error) {
	off := prologueBytes(level)
	bcOff := make([]uint32, len(m.Code))
	for i, in := range m.Code {
		bcOff[i] = off
		off += opBytes(in.Op, level)
	}
	size := off + 8 // epilogue pad
	obj, err := h.Alloc(gc.KindCode, size, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("jit: compiling %s (%s): %v", m.Signature(), level, err)
	}
	body := &CodeBody{
		Method: m,
		Level:  level,
		Obj:    obj,
		BCOff:  bcOff,
		Size:   size,
	}
	obj.Meta = body
	return body, nil
}
