// Package gc implements the VM's semispace copying garbage collector.
//
// As in Jikes RVM, "the code and data regions are both interwound into a
// single heap" (paper §3.1): compiled method bodies are ordinary heap
// objects, so a collection can relocate code. Each completed collection
// starts a new *execution epoch*; VIProf's VM agent writes a partial
// code map at every epoch boundary and the profiler tags samples with
// the epoch in which they were taken, which is what makes samples in
// moved code attributable after the fact.
package gc

import (
	"fmt"

	"viprof/internal/addr"
)

// Kind classifies a heap object.
type Kind uint8

// Object kinds.
const (
	KindData  Kind = iota // plain object: ref slots + scalar slots
	KindArray             // array: scalar or ref elements
	KindCode              // compiled method body
)

// HeaderBytes is the object header size charged to every allocation.
const HeaderBytes = 8

// Object is a heap object. Go object identity is stable; only the
// simulated address changes when the collector moves it.
type Object struct {
	Addr addr.Address
	Size uint32 // total bytes including header
	Kind Kind

	// Refs are the reference slots (fields for KindData, elements for
	// ref arrays). The collector traces through them.
	Refs []*Object
	// Scalars hold non-reference payload for arrays and fields.
	Scalars []int64
	// Meta lets the VM attach its own descriptor (e.g. the compiled
	// method a KindCode object backs).
	Meta interface{}

	marked bool  // used during collection
	age    uint8 // collections survived (promotion at MatureAge)
}

// Age returns the number of collections the object has survived.
func (o *Object) Age() int { return int(o.age) }

// FieldAddr returns the simulated address of scalar slot i, used to
// drive the cache model on field and array accesses.
func (o *Object) FieldAddr(i int) addr.Address {
	return o.Addr + HeaderBytes + addr.Address(i)*8
}

// Hooks let the VM and profiler agents observe collector activity.
// All hooks may be nil.
type Hooks struct {
	// PreGC runs before a collection begins, while all objects are
	// still at their old addresses. VIProf's VM agent writes its code
	// map for the closing epoch here ("we perform this write just
	// before the launching of the garbage collection", §3.1).
	PreGC func(epoch int)
	// Moved runs for each *code* object the collection relocated. The
	// paper's agent merely flags the method as moved (logging would be
	// a call out of tuned GC code); honoring that, implementations
	// should do minimal work here.
	Moved func(obj *Object, old addr.Address)
	// PostGC runs after the collection completes, at the start of the
	// new epoch.
	PostGC func(epoch int, stats CollectStats)
	// Work charges simulated execution to the VM's GC code: phase is a
	// coarse label, units scales with the work done.
	Work func(phase string, units int)
}

// CollectStats summarizes one collection.
type CollectStats struct {
	Live       int    // objects copied
	LiveBytes  uint64 // bytes copied
	Freed      int    // objects reclaimed
	FreedBytes uint64
	CodeMoved  int // code objects relocated
}

// MatureAge is the number of collections an object must survive before
// it is promoted to the mature space, after which it never moves again.
// Promotion is what lets the paper observe that "as the code reaches
// higher optimization levels and the GC moves these regions to the
// mature space, there is less need for any runtime work to be done to
// support our VIProf system" (§4.3): tenured code bodies drop out of
// the per-epoch partial code maps.
const MatureAge = 2

// Heap is a generational heap over a simulated address range: a pair of
// copying nursery semispaces plus a bump-only mature space that is
// never compacted (objects there have stable addresses for the rest of
// the run).
type Heap struct {
	base addr.Address
	size uint64
	half uint64 // nursery semispace size in bytes

	fromBase addr.Address // current nursery allocation space base
	toBase   addr.Address
	next     addr.Address // bump pointer in from-space

	matureBase  addr.Address
	matureNext  addr.Address
	matureLimit addr.Address

	objects []*Object // all live objects as of last collection + since
	roots   func() []*Object
	hooks   Hooks

	epoch       int
	collections int
	allocated   uint64 // lifetime bytes allocated
	promoted    int    // lifetime objects tenured
	lastStats   CollectStats
}

// NewHeap creates a heap over [base, base+size): the first half is the
// mature space, the second half holds the two nursery semispaces.
func NewHeap(base addr.Address, size uint64, roots func() []*Object, hooks Hooks) (*Heap, error) {
	if size < 8*1024 || size%4 != 0 {
		return nil, fmt.Errorf("gc: heap size %d too small or not divisible by 4", size)
	}
	half := size / 4
	h := &Heap{
		base:        base,
		size:        size,
		half:        half,
		matureBase:  base,
		matureNext:  base,
		matureLimit: base + addr.Address(size/2),
		fromBase:    base + addr.Address(size/2),
		toBase:      base + addr.Address(size/2+half),
		roots:       roots,
		hooks:       hooks,
	}
	h.next = h.fromBase
	return h, nil
}

// Bounds returns the full heap range [start, end) — mature space and
// both nursery semispaces. The VM registers this range with the runtime
// profiler so samples inside it are logged as JIT.App samples rather
// than anonymous.
func (h *Heap) Bounds() (start, end addr.Address) {
	return h.base, h.base + addr.Address(h.size)
}

// Mature reports whether the object lives in the (never-moving) mature
// space.
func (h *Heap) Mature(o *Object) bool {
	return o.Addr >= h.matureBase && o.Addr < h.matureLimit
}

// Promoted returns the lifetime count of tenured objects.
func (h *Heap) Promoted() int { return h.promoted }

// Epoch returns the current execution epoch (number of completed
// collections).
func (h *Heap) Epoch() int { return h.epoch }

// Collections returns the number of collections performed.
func (h *Heap) Collections() int { return h.collections }

// AllocatedBytes returns lifetime bytes allocated.
func (h *Heap) AllocatedBytes() uint64 { return h.allocated }

// LastStats returns statistics of the most recent collection.
func (h *Heap) LastStats() CollectStats { return h.lastStats }

// Used returns bytes currently consumed in the allocation semispace.
func (h *Heap) Used() uint64 { return uint64(h.next - h.fromBase) }

// Alloc allocates an object. sizeBytes is the payload size; the header
// is added internally and the total rounded up to 16 bytes. If the
// semispace is exhausted a collection runs first; if space is still
// insufficient, Alloc fails (OutOfMemoryError).
func (h *Heap) Alloc(kind Kind, sizeBytes uint32, nrefs, nscalars int) (*Object, error) {
	total := uint64(sizeBytes) + HeaderBytes
	total = (total + 15) &^ 15
	if h.Used()+total > h.half {
		h.Collect()
		if h.Used()+total > h.half {
			return nil, fmt.Errorf("gc: out of memory: need %d, %d free in %d semispace",
				total, h.half-h.Used(), h.half)
		}
	}
	o := &Object{
		Addr: h.next,
		Size: uint32(total),
		Kind: kind,
	}
	if nrefs > 0 {
		o.Refs = make([]*Object, nrefs)
	}
	if nscalars > 0 {
		o.Scalars = make([]int64, nscalars)
	}
	h.next += addr.Address(total)
	h.allocated += total
	h.objects = append(h.objects, o)
	if h.hooks.Work != nil {
		h.hooks.Work("alloc", 1)
	}
	return o, nil
}

// Collect performs a full semispace collection: trace from roots, copy
// live objects to the to-space (assigning new addresses in allocation
// order), flip spaces, and advance the epoch.
func (h *Heap) Collect() CollectStats {
	if h.hooks.PreGC != nil {
		h.hooks.PreGC(h.epoch)
	}
	var stats CollectStats

	// Mark phase: trace from roots.
	var stack []*Object
	if h.roots != nil {
		for _, r := range h.roots() {
			if r != nil && !r.marked {
				r.marked = true
				stack = append(stack, r)
			}
		}
	}
	traced := 0
	for len(stack) > 0 {
		o := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		traced++
		for _, r := range o.Refs {
			if r != nil && !r.marked {
				r.marked = true
				stack = append(stack, r)
			}
		}
	}
	if h.hooks.Work != nil {
		h.hooks.Work("trace", traced+1)
	}

	// Copy phase: survivors either tenure into the mature space (at
	// MatureAge, if it has room) or copy to the to-space in allocation
	// order, which preserves rough locality as a real collector's
	// Cheney scan does. Mature objects stay put.
	next := h.toBase
	live := h.objects[:0]
	for _, o := range h.objects {
		if !o.marked {
			stats.Freed++
			stats.FreedBytes += uint64(o.Size)
			continue
		}
		o.marked = false
		stats.Live++
		stats.LiveBytes += uint64(o.Size)
		if h.Mature(o) {
			live = append(live, o)
			continue
		}
		old := o.Addr
		if o.age < MatureAge {
			o.age++
		}
		if o.age >= MatureAge && h.matureNext+addr.Address(o.Size) <= h.matureLimit {
			o.Addr = h.matureNext
			h.matureNext += addr.Address(o.Size)
			h.promoted++
		} else {
			o.Addr = next
			next += addr.Address(o.Size)
		}
		if o.Kind == KindCode && old != o.Addr {
			stats.CodeMoved++
			if h.hooks.Moved != nil {
				h.hooks.Moved(o, old)
			}
		}
		live = append(live, o)
	}
	// Drop the tail so freed objects become unreachable from the heap.
	for i := len(live); i < len(h.objects); i++ {
		h.objects[i] = nil
	}
	h.objects = live
	if h.hooks.Work != nil {
		h.hooks.Work("copy", int(stats.LiveBytes/64)+1)
	}

	// Flip.
	h.fromBase, h.toBase = h.toBase, h.fromBase
	h.next = next
	h.collections++
	h.epoch++
	h.lastStats = stats
	if h.hooks.PostGC != nil {
		h.hooks.PostGC(h.epoch, stats)
	}
	return stats
}

// LiveObjects returns the number of objects tracked (live as of the
// last collection, plus everything allocated since).
func (h *Heap) LiveObjects() int { return len(h.objects) }
