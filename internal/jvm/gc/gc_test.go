package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
)

const testBase addr.Address = 0x6000_0000

func newTestHeap(t *testing.T, size uint64, roots func() []*Object, hooks Hooks) *Heap {
	t.Helper()
	h, err := NewHeap(testBase, size, roots, hooks)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHeapErrors(t *testing.T) {
	if _, err := NewHeap(testBase, 100, nil, Hooks{}); err == nil {
		t.Error("tiny heap accepted")
	}
	if _, err := NewHeap(testBase, 8193, nil, Hooks{}); err == nil {
		t.Error("odd heap size accepted")
	}
}

func TestAllocAssignsDisjointAddresses(t *testing.T) {
	h := newTestHeap(t, 1<<20, nil, Hooks{})
	var prevEnd addr.Address = testBase
	for i := 0; i < 100; i++ {
		o, err := h.Alloc(KindData, 40, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if o.Addr < prevEnd {
			t.Fatalf("object %d at %s overlaps previous end %s", i, o.Addr, prevEnd)
		}
		if len(o.Refs) != 2 || len(o.Scalars) != 3 {
			t.Fatalf("slot counts wrong: %d refs, %d scalars", len(o.Refs), len(o.Scalars))
		}
		prevEnd = o.Addr + addr.Address(o.Size)
	}
	if h.AllocatedBytes() == 0 || h.Used() == 0 {
		t.Error("accounting not updated")
	}
}

func TestFieldAddr(t *testing.T) {
	h := newTestHeap(t, 1<<20, nil, Hooks{})
	o, _ := h.Alloc(KindData, 64, 0, 8)
	if got := o.FieldAddr(0); got != o.Addr+HeaderBytes {
		t.Errorf("FieldAddr(0) = %s", got)
	}
	if got := o.FieldAddr(3); got != o.Addr+HeaderBytes+24 {
		t.Errorf("FieldAddr(3) = %s", got)
	}
}

func TestCollectReclaimsGarbage(t *testing.T) {
	var roots []*Object
	h := newTestHeap(t, 1<<16, func() []*Object { return roots }, Hooks{})
	live, _ := h.Alloc(KindData, 32, 1, 0)
	roots = []*Object{live}
	for i := 0; i < 50; i++ {
		h.Alloc(KindData, 32, 0, 0) // garbage
	}
	stats := h.Collect()
	if stats.Live != 1 {
		t.Errorf("live = %d, want 1", stats.Live)
	}
	if stats.Freed != 50 {
		t.Errorf("freed = %d, want 50", stats.Freed)
	}
	if h.Epoch() != 1 || h.Collections() != 1 {
		t.Errorf("epoch/collections = %d/%d", h.Epoch(), h.Collections())
	}
}

func TestCollectTracesTransitively(t *testing.T) {
	var roots []*Object
	h := newTestHeap(t, 1<<16, func() []*Object { return roots }, Hooks{})
	a, _ := h.Alloc(KindData, 32, 1, 0)
	b, _ := h.Alloc(KindData, 32, 1, 0)
	c, _ := h.Alloc(KindData, 32, 0, 0)
	a.Refs[0] = b
	b.Refs[0] = c
	roots = []*Object{a}
	stats := h.Collect()
	if stats.Live != 3 {
		t.Errorf("live = %d, want 3 (chain a->b->c)", stats.Live)
	}
	// Cycles must not hang the tracer.
	c.Refs = []*Object{a}
	stats = h.Collect()
	if stats.Live != 3 {
		t.Errorf("cyclic live = %d, want 3", stats.Live)
	}
}

func TestCollectMovesObjectsToOtherSemispace(t *testing.T) {
	var roots []*Object
	h := newTestHeap(t, 1<<16, func() []*Object { return roots }, Hooks{})
	o, _ := h.Alloc(KindData, 32, 0, 0)
	roots = []*Object{o}
	first := o.Addr
	h.Collect()
	if o.Addr == first {
		t.Error("object did not move on first collection")
	}
	lo, hi := h.Bounds()
	if o.Addr < lo || o.Addr >= hi {
		t.Errorf("object at %s escaped heap [%s,%s)", o.Addr, lo, hi)
	}
}

func TestMovedHookFiresForCodeOnly(t *testing.T) {
	var roots []*Object
	var moved []*Object
	hooks := Hooks{Moved: func(o *Object, old addr.Address) {
		moved = append(moved, o)
		if o.Addr == old {
			t.Error("Moved hook with identical addresses")
		}
	}}
	h := newTestHeap(t, 1<<16, func() []*Object { return roots }, hooks)
	code, _ := h.Alloc(KindCode, 256, 0, 0)
	data, _ := h.Alloc(KindData, 32, 0, 0)
	roots = []*Object{code, data}
	h.Collect()
	if len(moved) != 1 || moved[0] != code {
		t.Errorf("moved hook fired for %d objects, want just the code object", len(moved))
	}
}

func TestPreGCRunsBeforeMove(t *testing.T) {
	var roots []*Object
	var addrAtPreGC addr.Address
	var epochAtPreGC = -1
	var h *Heap
	hooks := Hooks{PreGC: func(epoch int) {
		epochAtPreGC = epoch
		addrAtPreGC = roots[0].Addr
	}}
	h = newTestHeap(t, 1<<16, func() []*Object { return roots }, hooks)
	o, _ := h.Alloc(KindCode, 64, 0, 0)
	roots = []*Object{o}
	before := o.Addr
	h.Collect()
	if epochAtPreGC != 0 {
		t.Errorf("PreGC saw epoch %d, want 0", epochAtPreGC)
	}
	if addrAtPreGC != before {
		t.Error("PreGC ran after objects moved")
	}
}

func TestPostGCAndWorkHooks(t *testing.T) {
	var phases []string
	var postStats CollectStats
	postEpoch := -1
	hooks := Hooks{
		Work:   func(phase string, units int) { phases = append(phases, phase) },
		PostGC: func(epoch int, s CollectStats) { postEpoch, postStats = epoch, s },
	}
	var roots []*Object
	h := newTestHeap(t, 1<<16, func() []*Object { return roots }, hooks)
	o, _ := h.Alloc(KindData, 32, 0, 0)
	roots = []*Object{o}
	h.Alloc(KindData, 32, 0, 0)
	h.Collect()
	if postEpoch != 1 || postStats.Live != 1 || postStats.Freed != 1 {
		t.Errorf("PostGC: epoch %d stats %+v", postEpoch, postStats)
	}
	seen := map[string]bool{}
	for _, p := range phases {
		seen[p] = true
	}
	for _, want := range []string{"alloc", "trace", "copy"} {
		if !seen[want] {
			t.Errorf("Work hook never saw phase %q (got %v)", want, phases)
		}
	}
}

func TestAllocTriggersCollection(t *testing.T) {
	var roots []*Object
	h := newTestHeap(t, 8*1024, func() []*Object { return roots }, Hooks{})
	// Fill the 4 KiB semispace with garbage; allocation must collect
	// rather than fail.
	for i := 0; i < 500; i++ {
		if _, err := h.Alloc(KindData, 48, 0, 0); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if h.Collections() == 0 {
		t.Error("no collection despite exceeding semispace")
	}
}

func TestOutOfMemory(t *testing.T) {
	var roots []*Object
	h := newTestHeap(t, 8*1024, func() []*Object { return roots }, Hooks{})
	// Keep everything live: eventually OOM.
	for i := 0; i < 500; i++ {
		o, err := h.Alloc(KindData, 48, 0, 0)
		if err != nil {
			return // expected
		}
		roots = append(roots, o)
	}
	t.Error("no OOM with all objects live in a tiny heap")
}

// Property: after any interleaving of allocations (some rooted, some
// garbage) and collections, (1) no live object is lost, (2) live
// objects occupy disjoint ranges inside the current semispace, and
// (3) freed+live bytes match allocation accounting per collection.
func TestCollectorInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var roots []*Object
		h, err := NewHeap(testBase, 1<<16, func() []*Object { return roots }, Hooks{})
		if err != nil {
			return false
		}
		type rooted struct{ o *Object }
		var keep []rooted
		for step := 0; step < 300; step++ {
			switch rng.Intn(10) {
			case 0:
				h.Collect()
			default:
				size := uint32(rng.Intn(100) + 1)
				o, err := h.Alloc(KindData, size, rng.Intn(3), rng.Intn(3))
				if err != nil {
					return false // heap sized to avoid OOM with bounded roots
				}
				if rng.Intn(4) == 0 && len(keep) < 40 {
					keep = append(keep, rooted{o})
					roots = append(roots, o)
				}
			}
		}
		h.Collect()
		// (1) all rooted objects survive with valid addresses.
		lo, hi := h.Bounds()
		for _, r := range keep {
			if r.o.Addr < lo || r.o.Addr >= hi {
				return false
			}
		}
		// (2) disjoint ranges: sort by address and check.
		objs := append([]*Object(nil), roots...)
		for i := 0; i < len(objs); i++ {
			for j := i + 1; j < len(objs); j++ {
				a, b := objs[i], objs[j]
				if a == b {
					continue
				}
				if a.Addr < b.Addr+addr.Address(b.Size) && b.Addr < a.Addr+addr.Address(a.Size) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: epochs advance by exactly one per collection and PreGC
// always observes the pre-collection epoch.
func TestEpochMonotonicQuick(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		var pre []int
		var roots []*Object
		h, err := NewHeap(testBase, 1<<15, func() []*Object { return roots }, Hooks{
			PreGC: func(e int) { pre = append(pre, e) },
		})
		if err != nil {
			return false
		}
		for i := 0; i < count; i++ {
			h.Collect()
		}
		if h.Epoch() != count {
			return false
		}
		for i, e := range pre {
			if e != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
