// Package jvm implements the simulated Java virtual machine the paper
// profiles: a compile-only VM in the style of Jikes RVM 2.4.4. Methods
// are baseline-compiled on first invocation and recompiled by an
// optimizing compiler when the adaptive system finds them hot; compiled
// code lives in the garbage-collected heap and moves when the semispace
// collector runs. The VM's own runtime services execute at boot-image
// symbols (see bootimage.go), application code executes at its compiled
// bodies' heap addresses, and native calls execute in libc — so a
// sampling profiler sees the full three-layer picture the paper's
// Figure 1 shows.
package jvm

import (
	"fmt"

	"viprof/internal/addr"
	"viprof/internal/image"
	"viprof/internal/jvm/aos"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/gc"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
)

// Value is one operand-stack or local slot: a scalar or a reference.
type Value struct {
	I int64
	R *gc.Object
}

// Agent observes VM events on behalf of a profiler. It is the paper's
// "VM agent": "a library with several hooks in the VM's code" (§3).
// All methods are called synchronously from VM execution.
type Agent interface {
	// OnCompile fires after a method is compiled or recompiled, with
	// the new body and the epoch it was produced in.
	OnCompile(body *jit.CodeBody, epoch int)
	// OnMove fires from inside the collector for each moved code body;
	// implementations must do minimal work (the paper flags the method
	// rather than logging, §3).
	OnMove(body *jit.CodeBody, old addr.Address)
	// PreGC fires just before a collection, closing epoch `epoch`.
	PreGC(epoch int)
	// OnExit fires once when the VM shuts down.
	OnExit(epoch int)
}

// Registry is the runtime profiler's registration interface: "a
// mechanism that allows a VM to register the fact that it is executing
// dynamically generated code ... [and] the boundaries of its memory
// heap" (§3).
type Registry interface {
	RegisterJIT(pid int, start, end addr.Address, epoch func() int)
	UnregisterJIT(pid int)
}

// Config parameterizes a VM instance.
type Config struct {
	// HeapBytes is the total heap (two semispaces). Default 24 MiB.
	HeapBytes uint64
	// AOSThreshold overrides the adaptive system's promotion threshold.
	AOSThreshold int
	// MaxCallDepth bounds recursion (per thread). Default 512.
	MaxCallDepth int
	// YieldQuantum is how many bytecodes a thread runs before the VM
	// scheduler's yieldpoint considers switching threads. Default 4000.
	YieldQuantum int
	// DisableOSR turns off on-stack replacement: promoted methods only
	// take effect at the next invocation (the pre-OSR Jikes behaviour;
	// kept for the ablation benchmark).
	DisableOSR bool
	// DisableTrace turns off trace recording and fused superinstruction
	// replay: every bytecode dispatches through stepInstr (the ablation
	// baseline for the trace-batching benchmark). Simulated results are
	// identical either way; only host-side speed differs.
	DisableTrace bool
	// Agent, if set, receives VM events (the VIProf VM agent).
	Agent Agent
	// Registry, if set, receives the JIT-region registration.
	Registry Registry
	// Personality selects the runtime product being simulated; nil
	// means Jikes RVM (the paper's prototype).
	Personality *Personality
}

func (c *Config) fillDefaults() {
	if c.HeapBytes == 0 {
		c.HeapBytes = 24 << 20
	}
	if c.MaxCallDepth == 0 {
		c.MaxCallDepth = 512
	}
	if c.YieldQuantum == 0 {
		c.YieldQuantum = 4000
	}
	if c.Personality == nil {
		c.Personality = Jikes()
	}
}

// Stats exposes VM activity counters.
type Stats struct {
	BaselineCompiles int
	OptCompiles      int
	OSRs             int
	Collections      int
	BytecodesRun     uint64
	ClassesLoaded    int
	ThreadsSpawned   int
}

type frame struct {
	body   *jit.CodeBody
	pc     int
	locals []Value
	stack  []Value
}

// vmThread is one green thread inside the VM (Jikes RVM multiplexes
// Java threads onto virtual processors the same way). Threads share the
// heap and compiled-method table; the VM's internal scheduler rotates
// between them at yieldpoints.
type vmThread struct {
	id     int
	frames []frame
}

func (t *vmThread) alive() bool { return len(t.frames) > 0 }

type svcRange struct {
	start, end addr.Address
	weight     int
}

// VM is one running virtual machine instance (one per process).
type VM struct {
	prog *classes.Program
	cfg  Config
	m    *kernel.Machine
	proc *kernel.Process

	heap    *gc.Heap
	aosSys  *aos.AOS
	bodies  []*jit.CodeBody // current body per method index (nil = not compiled)
	loaded  map[string]bool
	statics []Value

	threads    []*vmThread
	cur        int // index of the scheduled thread
	sinceYield int // bytecodes since the last yieldpoint

	traceAt    []*methodTraces // per-method trace cache (index = method)
	rec        *traceRecorder  // active trace recording, if any
	traceStats TraceStats
	scatterBuf []addr.Address // reusable operand vector for ExecScatter

	bootImg       *image.Image
	bootBase      addr.Address
	bootstrapImg  *image.Image
	bootstrapBase addr.Address
	libcImg       *image.Image
	libcBase      addr.Address
	staticsBase   addr.Address
	scratch       addr.Address
	scratchLen    uint64

	svcPCs    [numServices][]svcRange
	svcCursor [numServices]int
	memTick   uint64
	copyTick  uint64 // sequential cursor for the GC copy phase's heap walk
	payload   []byte // reusable buffer for simulated writes

	// touchedPages tracks which heap pages have been demand-faulted in
	// (page number -> true); allocation into a fresh page costs a minor
	// fault, putting do_page_fault rows into profiles.
	touchedPages map[addr.Address]bool

	started  bool
	finished bool
	err      error

	stats Stats
}

// Launch creates the VM process inside the machine: it loads the
// bootstrap binary, libc and the boot image, writes RVM.map to disk,
// maps the heap, and registers the process with the scheduler. The VM
// starts executing when the kernel schedules it.
func Launch(m *kernel.Machine, prog *classes.Program, cfg Config) (*VM, *kernel.Process, error) {
	if err := prog.Verify(); err != nil {
		return nil, nil, fmt.Errorf("jvm: %v", err)
	}
	cfg.fillDefaults()
	vm := &VM{
		prog:         prog,
		cfg:          cfg,
		m:            m,
		aosSys:       aos.New(cfg.AOSThreshold),
		bodies:       make([]*jit.CodeBody, len(prog.Methods)),
		loaded:       make(map[string]bool),
		touchedPages: make(map[addr.Address]bool),
		traceAt:      make([]*methodTraces, len(prog.Methods)),
	}
	proc, err := m.Kern.NewProcess(cfg.Personality.ProcName, vm)
	if err != nil {
		return nil, nil, err
	}
	vm.proc = proc

	// Bootstrap loader (a plain C binary, profiled like any object file).
	vm.bootstrapImg, err = cfg.Personality.buildBootstrap()
	if err != nil {
		return nil, nil, err
	}
	vm.bootstrapBase, err = m.Kern.LoadImage(proc, vm.bootstrapImg, false)
	if err != nil {
		return nil, nil, err
	}

	// libc.
	vm.libcImg, err = buildLibc()
	if err != nil {
		return nil, nil, err
	}
	vm.libcBase, err = m.Kern.LoadImage(proc, vm.libcImg, true)
	if err != nil {
		return nil, nil, err
	}

	// Boot image: mapped file-backed, but its internal format carries
	// no ELF symbols — only RVM.map (written to disk here, as a build
	// artifact) can symbolize it.
	vm.bootImg, err = cfg.Personality.buildBootImage()
	if err != nil {
		return nil, nil, err
	}
	vm.bootBase, err = m.Kern.LoadImage(proc, vm.bootImg, true)
	if err != nil {
		return nil, nil, err
	}
	// The boot image (and hence its map) is the same build artifact for
	// every VM instance of a personality; write it once per machine.
	if !m.Kern.Disk().Exists(cfg.Personality.MapFileName) {
		var mapBuf writerBuf
		if err := image.WriteRVMMap(&mapBuf, vm.bootImg); err != nil {
			return nil, nil, err
		}
		m.Kern.Disk().Append(cfg.Personality.MapFileName, mapBuf.b)
	}

	// Statics block and native scratch buffer.
	nStatics := prog.StaticSlots
	if nStatics < 1 {
		nStatics = 1
	}
	vm.staticsBase, err = m.Kern.MapAnon(proc, uint64(nStatics*8+4096)&^4095+4096, false)
	if err != nil {
		return nil, nil, err
	}
	vm.statics = make([]Value, nStatics)
	vm.scratchLen = 256 << 10
	vm.scratch, err = m.Kern.MapAnon(proc, vm.scratchLen, false)
	if err != nil {
		return nil, nil, err
	}

	// The heap (both semispaces) in one executable anonymous mapping —
	// the region OProfile will report as anon and VIProf will claim.
	heapBase, err := m.Kern.MapAnon(proc, cfg.HeapBytes, true)
	if err != nil {
		return nil, nil, err
	}
	vm.heap, err = gc.NewHeap(heapBase, cfg.HeapBytes, vm.roots, gc.Hooks{
		PreGC: func(epoch int) {
			if vm.cfg.Agent != nil {
				vm.cfg.Agent.PreGC(epoch)
			}
		},
		Moved: func(o *gc.Object, old addr.Address) {
			if vm.cfg.Agent != nil {
				if body, ok := o.Meta.(*jit.CodeBody); ok {
					vm.cfg.Agent.OnMove(body, old)
				}
			}
		},
		PostGC: func(epoch int, s gc.CollectStats) { vm.stats.Collections++ },
		Work:   vm.gcWork,
	})
	if err != nil {
		return nil, nil, err
	}

	// Precompute service symbol ranges.
	for svc, syms := range cfg.Personality.services {
		for _, s := range syms {
			sym, ok := vm.bootImg.Lookup(s.name)
			if !ok {
				return nil, nil, fmt.Errorf("jvm: service symbol %q missing from boot image", s.name)
			}
			vm.svcPCs[svc] = append(vm.svcPCs[svc], svcRange{
				start:  vm.bootBase + sym.Off,
				end:    vm.bootBase + sym.Off + addr.Address(sym.Size),
				weight: s.weight,
			})
		}
	}

	if cfg.Registry != nil {
		lo, hi := vm.heap.Bounds()
		cfg.Registry.RegisterJIT(proc.PID, lo, hi, vm.heap.Epoch)
	}
	return vm, proc, nil
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// Heap exposes the VM heap (examples and tests).
func (vm *VM) Heap() *gc.Heap { return vm.heap }

// Process returns the VM's OS process.
func (vm *VM) Process() *kernel.Process { return vm.proc }

// Stats returns activity counters.
func (vm *VM) Stats() Stats {
	s := vm.stats
	s.ClassesLoaded = len(vm.loaded)
	return s
}

// Err returns the runtime error that terminated the VM, if any.
func (vm *VM) Err() error { return vm.err }

// Finished reports whether the program ran to completion.
func (vm *VM) Finished() bool { return vm.finished && vm.err == nil }

// Body returns the current compiled body for a method, if compiled.
func (vm *VM) Body(m *classes.Method) (*jit.CodeBody, bool) {
	b := vm.bodies[m.Index]
	return b, b != nil
}

// BootImage returns the boot image (post-processing tools resolve
// RVM.map symbols against it).
func (vm *VM) BootImage() *image.Image { return vm.bootImg }

// Personality returns the runtime personality this VM instance runs as.
func (vm *VM) Personality() *Personality { return vm.cfg.Personality }

// Program returns the program this VM executes.
func (vm *VM) Program() *classes.Program { return vm.prog }

// NativeImages returns the ordinary object files loaded into the VM
// process (bootstrap loader and libc) — everything a baseline profiler
// can symbolize with plain symbol tables.
func (vm *VM) NativeImages() []*image.Image {
	return []*image.Image{vm.bootstrapImg, vm.libcImg}
}

// roots provides the collector's root set: statics, every frame's
// locals/stack/code body, and the compiled-method table.
func (vm *VM) roots() []*gc.Object {
	var out []*gc.Object
	for i := range vm.statics {
		if r := vm.statics[i].R; r != nil {
			out = append(out, r)
		}
	}
	for _, th := range vm.threads {
		for fi := range th.frames {
			f := &th.frames[fi]
			out = append(out, f.body.Obj)
			for i := range f.locals {
				if r := f.locals[i].R; r != nil {
					out = append(out, r)
				}
			}
			for i := range f.stack {
				if r := f.stack[i].R; r != nil {
					out = append(out, r)
				}
			}
		}
	}
	for _, b := range vm.bodies {
		if b != nil {
			out = append(out, b.Obj)
		}
	}
	return out
}

// work executes ops micro-ops of the given VM service at boot-image
// symbols, in user mode, with a sprinkling of memory traffic over the
// scratch working set.
func (vm *VM) work(svc ServiceID, ops int) {
	vm.workMem(svc, ops, vm.scratch, vm.scratchLen)
}

// workMem is work with an explicit memory working set (the collector
// passes the heap so GC traffic has GC locality). The op stream is cut
// into wrap-free segments and executed through cpu.Core.ExecScatter:
// the scattered memory operands are resolved upfront by the cache
// model's sorted multi-run replay and the event-free stretches between
// misses retire in bulk — bit-for-bit what the old per-op stream
// produced, without a precise fallback at every scattered operand.
func (vm *VM) workMem(svc ServiceID, ops int, memBase addr.Address, memLen uint64) {
	vm.workScatter(svc, ops, memBase, memLen, false)
}

// workMemSeq is workMem with sequential memory traffic: the mem ops
// walk the working set in address order (one word per op), the access
// pattern of the collector's semispace copy loop.
func (vm *VM) workMemSeq(svc ServiceID, ops int, memBase addr.Address, memLen uint64) {
	vm.workScatter(svc, ops, memBase, memLen, true)
}

func (vm *VM) workScatter(svc ServiceID, ops int, memBase addr.Address, memLen uint64, seq bool) {
	ranges := vm.svcPCs[svc]
	if len(ranges) == 0 {
		return
	}
	core := vm.m.CPU()
	for ops > 0 {
		r := ranges[vm.svcCursor[svc]%len(ranges)]
		vm.svcCursor[svc]++
		chunk := r.weight * 12
		if chunk > ops {
			chunk = ops
		}
		pc := r.start
		for rem := chunk; rem > 0; {
			// One wrap-free segment: ops at pc, pc+4, ... below r.end.
			span := rem
			stride := uint32(4)
			if r.end > pc+4 {
				if s := int((uint64(r.end-pc) + 3) / 4); s < span {
					span = s
				}
			} else {
				stride = 0 // degenerate range: every op executes at pc
			}
			buf := vm.scatterBuf[:0]
			for i := 0; i < span; i++ {
				vm.memTick++
				var mem addr.Address
				if vm.memTick%6 == 0 && memLen > 0 {
					if seq {
						// The sequential sweep is the collector's semispace
						// copy: it writes the destination, so mark the line
						// in the coherency directory — a JIT body reading
						// the object from another core pays the transfer.
						mem = memBase + addr.Address((vm.copyTick*8)%memLen)
						vm.copyTick++
						if core.Mem != nil {
							core.Mem.MarkWrite(mem)
						}
					} else {
						mem = memBase + addr.Address((vm.memTick*88)%memLen)
					}
				}
				buf = append(buf, mem)
			}
			vm.scatterBuf = buf
			core.ExecScatter(pc, stride, 1, buf)
			if stride != 0 {
				pc += addr.Address(4 * span)
				if pc >= r.end {
					pc = r.start
				}
			}
			rem -= span
		}
		ops -= chunk
	}
}

// gcWork charges collector phases to the GC service symbols, walking
// heap addresses so collections disturb the caches realistically.
func (vm *VM) gcWork(phase string, units int) {
	lo, hi := vm.heap.Bounds()
	switch phase {
	case "trace":
		vm.workMem(SvcGCTrace, units*3, lo, uint64(hi-lo))
	case "copy":
		// Semispace copy is a sequential sweep of the live data, not a
		// scatter: walk the heap in address order so the traffic has
		// copy locality (and batches as a guaranteed-hit stream).
		vm.workMemSeq(SvcGCCopy, units*2, lo, uint64(hi-lo))
	case "alloc":
		// Allocation's fast path is charged at the New/NewArray opcode.
	}
}

// faultIn demand-pages the span [start, start+size): each page touched
// for the first time costs a minor fault.
func (vm *VM) faultIn(start addr.Address, size uint32) {
	for page := start >> 12; page <= (start+addr.Address(size)-1)>>12; page++ {
		if !vm.touchedPages[page] {
			vm.touchedPages[page] = true
			vm.m.Kern.PageFault(vm.proc)
		}
	}
}

// ensureCompiled returns the method's current body, classloading and
// baseline-compiling on first use.
func (vm *VM) ensureCompiled(mi int) (*jit.CodeBody, error) {
	if b := vm.bodies[mi]; b != nil {
		return b, nil
	}
	meth := vm.prog.Methods[mi]
	if !vm.loaded[meth.Class] {
		vm.loaded[meth.Class] = true
		vm.work(SvcClassload, 900+15*len(meth.Code))
	}
	vm.work(SvcBaseCompile, jit.CompileCostOps(meth, jit.Baseline))
	body, err := jit.Compile(vm.heap, meth, jit.Baseline)
	if err != nil {
		return nil, err
	}
	vm.faultIn(body.Obj.Addr, body.Obj.Size)
	vm.bodies[mi] = body
	vm.stats.BaselineCompiles++
	if vm.cfg.Agent != nil {
		vm.cfg.Agent.OnCompile(body, vm.heap.Epoch())
	}
	return body, nil
}

// promote recompiles a hot method with the optimizing compiler; future
// invocations use the new body (no on-stack replacement).
func (vm *VM) promote(mi int) error {
	meth := vm.prog.Methods[mi]
	vm.work(SvcOptCompile, jit.CompileCostOps(meth, jit.Opt))
	body, err := jit.Compile(vm.heap, meth, jit.Opt)
	if err != nil {
		return err
	}
	vm.faultIn(body.Obj.Addr, body.Obj.Size)
	vm.bodies[mi] = body
	vm.invalidateTraces(mi)
	vm.stats.OptCompiles++
	if vm.cfg.Agent != nil {
		vm.cfg.Agent.OnCompile(body, vm.heap.Epoch())
	}
	return nil
}
