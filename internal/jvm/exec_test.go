package jvm

import (
	"strings"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/kernel"
)

// runExpr builds a program whose main evaluates a bytecode sequence and
// stores the top of stack into statics[0], runs it to completion, and
// returns the stored value. It is the workhorse for opcode-semantics
// tests: every instruction executes through the full pipeline
// (compile, machine ops, cache, counters).
func runExpr(t *testing.T, build func(a *bytecode.Asm)) int64 {
	t.Helper()
	p := classes.NewProgram("expr", 4)
	a := bytecode.NewAsm()
	build(a)
	a.Emit(bytecode.PutStatic, 0)
	a.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "t.Main", Name: "main", MaxLocals: 4, Code: a.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, _, err := Launch(m, p, Config{HeapBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("program failed: %v", vm.Err())
	}
	return vm.statics[0].I
}

// runExprErr is runExpr for programs expected to die with a runtime
// error; it returns the error message.
func runExprErr(t *testing.T, build func(a *bytecode.Asm)) string {
	t.Helper()
	p := classes.NewProgram("expr", 4)
	a := bytecode.NewAsm()
	build(a)
	a.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "t.Main", Name: "main", MaxLocals: 4, Code: a.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, _, err := Launch(m, p, Config{HeapBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if vm.Err() == nil {
		t.Fatal("expected a runtime error")
	}
	return vm.Err().Error()
}

func TestArithmeticOpcodes(t *testing.T) {
	tests := []struct {
		name string
		a, b int32
		op   bytecode.Opcode
		want int64
	}{
		{"add", 7, 5, bytecode.Add, 12},
		{"sub", 7, 5, bytecode.Sub, 2},
		{"mul", 7, 5, bytecode.Mul, 35},
		{"div", 17, 5, bytecode.Div, 3},
		{"div-negative", -17, 5, bytecode.Div, -3},
		{"mod", 17, 5, bytecode.Mod, 2},
		{"and", 0b1100, 0b1010, bytecode.And, 0b1000},
		{"or", 0b1100, 0b1010, bytecode.Or, 0b1110},
		{"xor", 0b1100, 0b1010, bytecode.Xor, 0b0110},
		{"shl", 3, 4, bytecode.Shl, 48},
		{"shr", 48, 4, bytecode.Shr, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := runExpr(t, func(a *bytecode.Asm) {
				a.Const(tt.a).Const(tt.b).Emit(tt.op)
			})
			if got != tt.want {
				t.Errorf("%d %s %d = %d, want %d", tt.a, tt.name, tt.b, got, tt.want)
			}
		})
	}
}

func TestNegDupPop(t *testing.T) {
	if got := runExpr(t, func(a *bytecode.Asm) {
		a.Const(42).Emit(bytecode.Neg)
	}); got != -42 {
		t.Errorf("neg = %d", got)
	}
	if got := runExpr(t, func(a *bytecode.Asm) {
		a.Const(5).Emit(bytecode.Dup).Emit(bytecode.Add) // 5+5
	}); got != 10 {
		t.Errorf("dup/add = %d", got)
	}
	if got := runExpr(t, func(a *bytecode.Asm) {
		a.Const(1).Const(99).Emit(bytecode.Pop) // 99 dropped
	}); got != 1 {
		t.Errorf("pop = %d", got)
	}
}

func TestComparisons(t *testing.T) {
	tests := []struct {
		op   bytecode.Opcode
		a, b int32
		want int64
	}{
		{bytecode.CmpLT, 1, 2, 1}, {bytecode.CmpLT, 2, 2, 0},
		{bytecode.CmpLE, 2, 2, 1}, {bytecode.CmpLE, 3, 2, 0},
		{bytecode.CmpEQ, 5, 5, 1}, {bytecode.CmpEQ, 5, 6, 0},
		{bytecode.CmpNE, 5, 6, 1}, {bytecode.CmpNE, 5, 5, 0},
		{bytecode.CmpGT, 3, 2, 1}, {bytecode.CmpGT, 2, 3, 0},
		{bytecode.CmpGE, 2, 2, 1}, {bytecode.CmpGE, 1, 2, 0},
	}
	for _, tt := range tests {
		got := runExpr(t, func(a *bytecode.Asm) {
			a.Const(tt.a).Const(tt.b).Emit(tt.op)
		})
		if got != tt.want {
			t.Errorf("%d %s %d = %d, want %d", tt.a, tt.op, tt.b, got, tt.want)
		}
	}
}

func TestLocalsAndStatics(t *testing.T) {
	got := runExpr(t, func(a *bytecode.Asm) {
		a.Const(11).Store(1)
		a.Const(22).Store(2)
		a.Load(1).Load(2).Emit(bytecode.Add) // 33
		a.Emit(bytecode.PutStatic, 2)
		a.Emit(bytecode.GetStatic, 2)
	})
	if got != 33 {
		t.Errorf("locals/statics = %d", got)
	}
}

func TestControlFlowLoop(t *testing.T) {
	// sum 1..10 = 55
	got := runExpr(t, func(a *bytecode.Asm) {
		a.Const(0).Store(1) // sum
		a.Const(1).Store(2) // i
		a.Label("loop")
		a.Load(1).Load(2).Emit(bytecode.Add).Store(1)
		a.Load(2).Const(1).Emit(bytecode.Add).Store(2)
		a.Load(2).Const(10).Emit(bytecode.CmpLE)
		a.Branch(bytecode.JmpNZ, "loop")
		a.Load(1)
	})
	if got != 55 {
		t.Errorf("sum 1..10 = %d", got)
	}
}

func TestObjectsFieldsAndArrays(t *testing.T) {
	// obj with 1 ref + 2 scalars; scalar field read/write.
	got := runExpr(t, func(a *bytecode.Asm) {
		a.Emit(bytecode.New, 1, 2).Store(1)
		a.Load(1).Const(77).Emit(bytecode.PutField, 1)
		a.Load(1).Emit(bytecode.GetField, 1)
	})
	if got != 77 {
		t.Errorf("field = %d", got)
	}
	// ref fields link objects.
	got = runExpr(t, func(a *bytecode.Asm) {
		a.Emit(bytecode.New, 1, 1).Store(1) // outer
		a.Emit(bytecode.New, 0, 1).Store(2) // inner
		a.Load(2).Const(88).Emit(bytecode.PutField, 0)
		a.Load(1).Load(2).Emit(bytecode.PutRef, 0)
		a.Load(1).Emit(bytecode.GetRef, 0).Emit(bytecode.GetField, 0)
	})
	if got != 88 {
		t.Errorf("ref chain = %d", got)
	}
	// arrays: store/load/len.
	got = runExpr(t, func(a *bytecode.Asm) {
		a.Const(16).Emit(bytecode.NewArray, 8, 0).Store(1)
		a.Load(1).Const(3).Const(123).Emit(bytecode.AStore)
		a.Load(1).Const(3).Emit(bytecode.ALoad)
		a.Load(1).Emit(bytecode.ArrayLen).Emit(bytecode.Add) // 123+16
	})
	if got != 139 {
		t.Errorf("array = %d", got)
	}
}

func TestCallSemantics(t *testing.T) {
	// callee(a, b) = a*10 + b — checks argument order.
	p := classes.NewProgram("call", 1)
	cal := bytecode.NewAsm()
	cal.Load(0).Const(10).Emit(bytecode.Mul).Load(1).Emit(bytecode.Add)
	cal.Emit(bytecode.Ret)
	callee := p.Add(&classes.Method{Class: "t.C", Name: "f", NArgs: 2, MaxLocals: 2, Code: cal.MustFinish()})
	mn := bytecode.NewAsm()
	mn.Const(3).Const(4).Call(int32(callee.Index)) // f(3,4) = 34
	mn.Emit(bytecode.PutStatic, 0)
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "t.Main", Name: "main", MaxLocals: 1, Code: mn.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, _, err := Launch(m, p, Config{HeapBytes: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("failed: %v", vm.Err())
	}
	if vm.statics[0].I != 34 {
		t.Errorf("f(3,4) = %d, want 34 (argument order broken)", vm.statics[0].I)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(a *bytecode.Asm)
		want  string
	}{
		{"div by zero", func(a *bytecode.Asm) {
			a.Const(1).Const(0).Emit(bytecode.Div).Emit(bytecode.Pop)
		}, "zero"},
		{"mod by zero", func(a *bytecode.Asm) {
			a.Const(1).Const(0).Emit(bytecode.Mod).Emit(bytecode.Pop)
		}, "zero"},
		{"null aload", func(a *bytecode.Asm) {
			a.Emit(bytecode.GetStatic, 1) // never assigned: null
			a.Const(0).Emit(bytecode.ALoad).Emit(bytecode.Pop)
		}, "NullPointer"},
		{"null field", func(a *bytecode.Asm) {
			a.Emit(bytecode.GetStatic, 1)
			a.Emit(bytecode.GetField, 0).Emit(bytecode.Pop)
		}, "NullPointer"},
		{"array oob", func(a *bytecode.Asm) {
			a.Const(4).Emit(bytecode.NewArray, 8, 0)
			a.Const(9).Emit(bytecode.ALoad).Emit(bytecode.Pop)
		}, "IndexOutOfBounds"},
		{"array oob negative", func(a *bytecode.Asm) {
			a.Const(4).Emit(bytecode.NewArray, 8, 0)
			a.Const(-1).Emit(bytecode.ALoad).Emit(bytecode.Pop)
		}, "IndexOutOfBounds"},
		{"negative array size", func(a *bytecode.Asm) {
			a.Const(-5).Emit(bytecode.NewArray, 8, 0).Emit(bytecode.Pop)
		}, "NegativeArraySize"},
		{"stack underflow", func(a *bytecode.Asm) {
			a.Emit(bytecode.Add)
		}, "underflow"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msg := runExprErr(t, tc.build)
			if !strings.Contains(msg, tc.want) {
				t.Errorf("error %q does not mention %q", msg, tc.want)
			}
		})
	}
}

// Compiled-code PCs must stay inside the method's current body for
// every executed instruction, across recompilations and GC moves.
func TestPCsStayInsideBodies(t *testing.T) {
	m := newMachine(1)
	prog := buildLoopProgram(150, 300)
	vm, _, err := Launch(m, prog, Config{HeapBytes: 64 << 10, AOSThreshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check by sampling frequently and validating each JIT PC
	// against the live bodies at that instant.
	m.Core.Bank.Program(hpc.GlobalPowerEvents, 10_000)
	lo, hi := vm.Heap().Bounds()
	bad := 0
	m.Kern.SetNMIHandler(func(mm *kernel.Machine, s cpu.Snapshot, ev hpc.Event) {
		if s.PC < lo || s.PC >= hi {
			return
		}
		ok := false
		for _, b := range vm.bodies {
			if b != nil && s.PC >= b.Start() && s.PC < b.Start()+addr.Address(b.Size) {
				ok = true
				break
			}
		}
		// PCs may also be inside *old* bodies still running on stack.
		for _, th := range vm.threads {
			for fi := range th.frames {
				b := th.frames[fi].body
				if s.PC >= b.Start() && s.PC < b.Start()+addr.Address(b.Size) {
					ok = true
					break
				}
			}
		}
		if !ok {
			bad++
		}
	})
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("failed: %v", vm.Err())
	}
	if bad != 0 {
		t.Errorf("%d JIT samples outside any live body", bad)
	}
}
