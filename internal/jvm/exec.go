package jvm

import (
	"fmt"

	"viprof/internal/addr"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/gc"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
)

// Step implements kernel.Executor: the VM runs bytecode (as compiled
// code) until the scheduling slice expires or the program finishes.
func (vm *VM) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	core := m.CPU()
	if vm.finished || vm.err != nil {
		return kernel.StepExit
	}
	if !vm.started {
		vm.startup()
		if vm.err != nil {
			return kernel.StepExit
		}
	}
	for !core.Expired() {
		if !vm.scheduleThread() {
			vm.shutdown()
			return kernel.StepExit
		}
		if err := vm.stepTraced(); err != nil {
			vm.err = err
			vm.shutdown()
			return kernel.StepExit
		}
	}
	return kernel.StepYield
}

// scheduleThread ensures vm.cur points at a live thread, rotating at
// yieldpoints (VM_Thread.yieldpoint in the boot image) when the
// quantum expires and another thread is runnable. It reports false
// when every thread has finished.
func (vm *VM) scheduleThread() bool {
	n := len(vm.threads)
	if n == 0 {
		return false
	}
	rotate := vm.sinceYield >= vm.cfg.YieldQuantum
	if rotate {
		vm.sinceYield = 0
	}
	if !rotate && vm.threads[vm.cur].alive() {
		return true
	}
	start := vm.cur
	if rotate {
		start = (vm.cur + 1) % n
	}
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		if vm.threads[idx].alive() {
			if idx != vm.cur || rotate {
				// Yieldpoint + thread switch inside the VM.
				vm.work(SvcScheduler, 60)
			}
			vm.cur = idx
			return true
		}
	}
	return false
}

// startup runs the C bootstrap loader and VM boot sequence, then
// invokes main.
func (vm *VM) startup() {
	vm.started = true
	// Bootstrap: the small C loader mmaps the boot image.
	if sym, ok := vm.bootstrapImg.Lookup("loadBootImage"); ok {
		pc := vm.bootstrapBase + sym.Off
		vm.m.CPU().ExecRange(pc, 1500, 4, 1)
	}
	// VM.boot: scheduler and runtime initialization.
	vm.work(SvcStartup, 12_000)
	body, err := vm.ensureCompiled(vm.prog.Main)
	if err != nil {
		vm.err = err
		return
	}
	main := vm.prog.Methods[vm.prog.Main]
	vm.threads = append(vm.threads, &vmThread{id: 0, frames: []frame{{
		body:   body,
		locals: make([]Value, main.MaxLocals),
		stack:  make([]Value, 0, 16),
	}}})
}

// shutdown finalizes the VM: the agent writes its last code map, the
// JIT region is deregistered, and the process exits.
func (vm *VM) shutdown() {
	if vm.err == nil {
		vm.finished = true
	}
	vm.work(SvcScheduler, 800)
	if vm.cfg.Agent != nil {
		vm.cfg.Agent.OnExit(vm.heap.Epoch())
	}
	if vm.cfg.Registry != nil {
		vm.cfg.Registry.UnregisterJIT(vm.proc.PID)
	}
}

// runtimeError builds a VM runtime error with source context.
func (vm *VM) runtimeError(f *frame, format string, args ...interface{}) error {
	loc := fmt.Sprintf("%s@%d", f.body.Method.Signature(), f.pc)
	return fmt.Errorf("jvm: %s: %s", loc, fmt.Sprintf(format, args...))
}

// stepInstr executes one bytecode of the top frame: it pops/pushes
// operand-stack values (the functional effect) and emits one machine
// micro-op at the compiled body's PC (the architectural effect).
func (vm *VM) stepInstr() error {
	th := vm.threads[vm.cur]
	f := &th.frames[len(th.frames)-1]
	vm.sinceYield++
	meth := f.body.Method
	if f.pc < 0 || f.pc >= len(meth.Code) {
		return vm.runtimeError(f, "pc out of range")
	}
	in := meth.Code[f.pc]
	level := f.body.Level
	cost := jit.OpCost(in.Op, level)
	var mem addr.Address
	var store bool // the memory operand is written, not read
	nextPC := f.pc + 1
	vm.stats.BytecodesRun++

	// Stack helpers over the frame's slice.
	push := func(v Value) { f.stack = append(f.stack, v) }
	pop := func() (Value, bool) {
		if len(f.stack) == 0 {
			return Value{}, false
		}
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		return v, true
	}
	pop2 := func() (a, b Value, ok bool) {
		b, ok1 := pop()
		a, ok2 := pop()
		return a, b, ok1 && ok2
	}
	underflow := func() error { return vm.runtimeError(f, "operand stack underflow on %s", in) }

	switch in.Op {
	case bytecode.Nop:

	case bytecode.Const:
		push(Value{I: int64(in.A)})
	case bytecode.Load:
		push(f.locals[in.A])
	case bytecode.Store:
		v, ok := pop()
		if !ok {
			return underflow()
		}
		f.locals[in.A] = v
	case bytecode.Dup:
		if len(f.stack) == 0 {
			return underflow()
		}
		push(f.stack[len(f.stack)-1])
	case bytecode.Pop:
		if _, ok := pop(); !ok {
			return underflow()
		}

	case bytecode.Add, bytecode.Sub, bytecode.Mul, bytecode.Div, bytecode.Mod,
		bytecode.And, bytecode.Or, bytecode.Xor, bytecode.Shl, bytecode.Shr:
		a, b, ok := pop2()
		if !ok {
			return underflow()
		}
		var r int64
		switch in.Op {
		case bytecode.Add:
			r = a.I + b.I
		case bytecode.Sub:
			r = a.I - b.I
		case bytecode.Mul:
			r = a.I * b.I
		case bytecode.Div:
			if b.I == 0 {
				return vm.runtimeError(f, "ArithmeticException: / by zero")
			}
			r = a.I / b.I
		case bytecode.Mod:
			if b.I == 0 {
				return vm.runtimeError(f, "ArithmeticException: %% by zero")
			}
			r = a.I % b.I
		case bytecode.And:
			r = a.I & b.I
		case bytecode.Or:
			r = a.I | b.I
		case bytecode.Xor:
			r = a.I ^ b.I
		case bytecode.Shl:
			r = a.I << (uint64(b.I) & 63)
		case bytecode.Shr:
			r = a.I >> (uint64(b.I) & 63)
		}
		push(Value{I: r})
	case bytecode.Neg:
		v, ok := pop()
		if !ok {
			return underflow()
		}
		push(Value{I: -v.I})

	case bytecode.CmpLT, bytecode.CmpLE, bytecode.CmpEQ, bytecode.CmpNE,
		bytecode.CmpGT, bytecode.CmpGE:
		a, b, ok := pop2()
		if !ok {
			return underflow()
		}
		var r bool
		switch in.Op {
		case bytecode.CmpLT:
			r = a.I < b.I
		case bytecode.CmpLE:
			r = a.I <= b.I
		case bytecode.CmpEQ:
			r = a.I == b.I
		case bytecode.CmpNE:
			r = a.I != b.I
		case bytecode.CmpGT:
			r = a.I > b.I
		case bytecode.CmpGE:
			r = a.I >= b.I
		}
		var v int64
		if r {
			v = 1
		}
		push(Value{I: v})

	case bytecode.Jmp:
		nextPC = int(in.A)
		if nextPC <= f.pc {
			vm.backEdge(meth)
			vm.noteAnchor(f, nextPC)
		}
	case bytecode.JmpZ, bytecode.JmpNZ:
		v, ok := pop()
		if !ok {
			return underflow()
		}
		taken := (v.I == 0) == (in.Op == bytecode.JmpZ)
		if taken {
			nextPC = int(in.A)
			if nextPC <= f.pc {
				vm.backEdge(meth)
				vm.noteAnchor(f, nextPC)
			}
		}

	case bytecode.Call:
		return vm.doCall(th, f, in, cost)

	case bytecode.Spawn:
		return vm.doSpawn(th, f, in, cost)

	case bytecode.Ret, bytecode.RetVoid:
		var rv Value
		if in.Op == bytecode.Ret {
			v, ok := pop()
			if !ok {
				return underflow()
			}
			rv = v
		}
		vm.m.CPU().BatchOp(f.body.PC(f.pc), cost)
		th.frames = th.frames[:len(th.frames)-1]
		if len(th.frames) > 0 && in.Op == bytecode.Ret {
			caller := &th.frames[len(th.frames)-1]
			caller.stack = append(caller.stack, rv)
		}
		return nil

	case bytecode.New:
		vm.work(SvcRuntime, 3) // allocation fast path
		obj, err := vm.heap.Alloc(gc.KindData, uint32((in.A+in.B)*8), int(in.A), int(in.B))
		if err != nil {
			return vm.runtimeError(f, "OutOfMemoryError: %v", err)
		}
		vm.faultIn(obj.Addr, obj.Size)
		mem = obj.Addr
		push(Value{R: obj})
	case bytecode.NewArray:
		v, ok := pop()
		if !ok {
			return underflow()
		}
		n := v.I
		if n < 0 || n > 1<<20 {
			return vm.runtimeError(f, "NegativeArraySizeException or oversized array: %d", n)
		}
		vm.work(SvcRuntime, 3)
		var obj *gc.Object
		var err error
		if in.B != 0 {
			obj, err = vm.heap.Alloc(gc.KindArray, uint32(n*8), int(n), 0)
		} else {
			obj, err = vm.heap.Alloc(gc.KindArray, uint32(n)*uint32(in.A), 0, int(n))
		}
		if err != nil {
			return vm.runtimeError(f, "OutOfMemoryError: %v", err)
		}
		vm.faultIn(obj.Addr, obj.Size)
		mem = obj.Addr
		store = true
		push(Value{R: obj})

	case bytecode.ALoad:
		ref, idx, ok := pop2()
		if !ok {
			return underflow()
		}
		o := ref.R
		if o == nil {
			return vm.runtimeError(f, "NullPointerException")
		}
		i := idx.I
		if len(o.Refs) > 0 {
			if i < 0 || int(i) >= len(o.Refs) {
				return vm.runtimeError(f, "ArrayIndexOutOfBoundsException: %d/%d", i, len(o.Refs))
			}
			mem = o.FieldAddr(int(i))
			push(Value{R: o.Refs[i]})
		} else {
			if i < 0 || int(i) >= len(o.Scalars) {
				return vm.runtimeError(f, "ArrayIndexOutOfBoundsException: %d/%d", i, len(o.Scalars))
			}
			mem = o.FieldAddr(int(i))
			push(Value{I: o.Scalars[i]})
		}
	case bytecode.AStore:
		val, ok0 := pop()
		idx, ok1 := pop()
		ref, ok2 := pop()
		if !ok0 || !ok1 || !ok2 {
			return underflow()
		}
		o := ref.R
		if o == nil {
			return vm.runtimeError(f, "NullPointerException")
		}
		i := idx.I
		if len(o.Refs) > 0 {
			if i < 0 || int(i) >= len(o.Refs) {
				return vm.runtimeError(f, "ArrayIndexOutOfBoundsException: %d/%d", i, len(o.Refs))
			}
			o.Refs[i] = val.R
		} else {
			if i < 0 || int(i) >= len(o.Scalars) {
				return vm.runtimeError(f, "ArrayIndexOutOfBoundsException: %d/%d", i, len(o.Scalars))
			}
			o.Scalars[i] = val.I
		}
		mem = o.FieldAddr(int(i))
		store = true
	case bytecode.ArrayLen:
		ref, ok := pop()
		if !ok {
			return underflow()
		}
		if ref.R == nil {
			return vm.runtimeError(f, "NullPointerException")
		}
		n := len(ref.R.Scalars)
		if len(ref.R.Refs) > 0 {
			n = len(ref.R.Refs)
		}
		push(Value{I: int64(n)})

	case bytecode.GetField:
		ref, ok := pop()
		if !ok {
			return underflow()
		}
		o := ref.R
		if o == nil {
			return vm.runtimeError(f, "NullPointerException")
		}
		if int(in.A) >= len(o.Scalars) {
			return vm.runtimeError(f, "bad scalar field %d", in.A)
		}
		mem = o.FieldAddr(int(in.A))
		push(Value{I: o.Scalars[in.A]})
	case bytecode.PutField:
		val, ok0 := pop()
		ref, ok1 := pop()
		if !ok0 || !ok1 {
			return underflow()
		}
		o := ref.R
		if o == nil {
			return vm.runtimeError(f, "NullPointerException")
		}
		if int(in.A) >= len(o.Scalars) {
			return vm.runtimeError(f, "bad scalar field %d", in.A)
		}
		o.Scalars[in.A] = val.I
		mem = o.FieldAddr(int(in.A))
		store = true

	case bytecode.GetRef:
		ref, ok := pop()
		if !ok {
			return underflow()
		}
		o := ref.R
		if o == nil {
			return vm.runtimeError(f, "NullPointerException")
		}
		if int(in.A) >= len(o.Refs) {
			return vm.runtimeError(f, "bad ref field %d", in.A)
		}
		mem = o.FieldAddr(int(in.A))
		push(Value{R: o.Refs[in.A]})
	case bytecode.PutRef:
		val, ok0 := pop()
		ref, ok1 := pop()
		if !ok0 || !ok1 {
			return underflow()
		}
		o := ref.R
		if o == nil {
			return vm.runtimeError(f, "NullPointerException")
		}
		if int(in.A) >= len(o.Refs) {
			return vm.runtimeError(f, "bad ref field %d", in.A)
		}
		o.Refs[in.A] = val.R
		mem = o.FieldAddr(int(in.A))
		store = true

	case bytecode.GetStatic:
		mem = vm.staticsBase + addr.Address(in.A)*8
		push(vm.statics[in.A])
	case bytecode.PutStatic:
		v, ok := pop()
		if !ok {
			return underflow()
		}
		mem = vm.staticsBase + addr.Address(in.A)*8
		vm.statics[in.A] = v
		store = true

	case bytecode.Intrinsic:
		if err := vm.intrinsic(f, in); err != nil {
			return err
		}

	default:
		return vm.runtimeError(f, "unimplemented opcode %s", in.Op)
	}

	// All straight-line bytecodes stream through the batched engine:
	// no-memory ops accumulate as before, memory ops accumulate when
	// their access is provably a plain hit and take the precise path
	// otherwise (cache probes and miss events happen in exact
	// sequence either way). Stores additionally mark the line in the
	// coherency directory, so another core touching it later pays the
	// cross-core transfer.
	switch {
	case mem == 0:
		vm.m.CPU().BatchOp(f.body.PC(f.pc), cost)
	case store:
		vm.m.CPU().BatchStoreOp(f.body.PC(f.pc), cost, mem)
	default:
		vm.m.CPU().BatchMemOp(f.body.PC(f.pc), cost, mem)
	}
	f.pc = nextPC
	return nil
}

// doCall handles the Call opcode: resolve, maybe compile/promote, push
// the callee frame.
func (vm *VM) doCall(th *vmThread, f *frame, in bytecode.Instr, cost uint32) error {
	if len(th.frames) >= vm.cfg.MaxCallDepth {
		return vm.runtimeError(f, "StackOverflowError at depth %d", len(th.frames))
	}
	callee := vm.prog.Methods[in.A]
	body, err := vm.ensureCompiled(int(in.A))
	if err != nil {
		return vm.runtimeError(f, "compiling %s: %v", callee.Signature(), err)
	}
	if vm.aosSys.OnInvoke(callee) {
		if err := vm.promote(int(in.A)); err != nil {
			return vm.runtimeError(f, "recompiling %s: %v", callee.Signature(), err)
		}
		body = vm.bodies[in.A]
	}
	if len(f.stack) < callee.NArgs {
		return vm.runtimeError(f, "operand stack underflow calling %s", callee.Signature())
	}
	locals := make([]Value, callee.MaxLocals)
	base := len(f.stack) - callee.NArgs
	copy(locals, f.stack[base:])
	f.stack = f.stack[:base]

	// The call instruction executes in the caller, then control enters
	// the callee prologue.
	vm.m.CPU().BatchOp(f.body.PC(f.pc), cost)
	f.pc++ // return continues after the call

	th.frames = append(th.frames, frame{
		body:   body,
		locals: locals,
		stack:  make([]Value, 0, 16),
	})
	return nil
}

// doSpawn handles the Spawn opcode: like a call, but the callee frame
// becomes the root of a brand-new VM thread.
func (vm *VM) doSpawn(th *vmThread, f *frame, in bytecode.Instr, cost uint32) error {
	callee := vm.prog.Methods[in.A]
	body, err := vm.ensureCompiled(int(in.A))
	if err != nil {
		return vm.runtimeError(f, "compiling %s: %v", callee.Signature(), err)
	}
	if vm.aosSys.OnInvoke(callee) {
		if err := vm.promote(int(in.A)); err != nil {
			return vm.runtimeError(f, "recompiling %s: %v", callee.Signature(), err)
		}
		body = vm.bodies[in.A]
	}
	if len(f.stack) < callee.NArgs {
		return vm.runtimeError(f, "operand stack underflow spawning %s", callee.Signature())
	}
	locals := make([]Value, callee.MaxLocals)
	base := len(f.stack) - callee.NArgs
	copy(locals, f.stack[base:])
	f.stack = f.stack[:base]

	vm.m.CPU().BatchOp(f.body.PC(f.pc), cost)
	f.pc++
	// Thread creation is a VM service (stack setup, scheduler insert).
	vm.work(SvcScheduler, 300)
	vm.stats.ThreadsSpawned++
	vm.threads = append(vm.threads, &vmThread{
		id: len(vm.threads),
		frames: []frame{{
			body:   body,
			locals: locals,
			stack:  make([]Value, 0, 16),
		}},
	})
	return nil
}

// CallStackPCs returns the machine PCs of the caller frames below the
// currently executing one, innermost first — the VM-side stack walk the
// VIProf call-graph extension samples. Each caller's PC points at its
// call site.
func (vm *VM) CallStackPCs(max int) []addr.Address {
	if len(vm.threads) == 0 || max <= 0 {
		return nil
	}
	th := vm.threads[vm.cur]
	if len(th.frames) < 2 {
		return nil
	}
	out := make([]addr.Address, 0, max)
	for i := len(th.frames) - 2; i >= 0 && len(out) < max; i-- {
		f := &th.frames[i]
		pc := f.pc - 1 // doCall advances past the call instruction
		if pc < 0 {
			pc = 0
		}
		out = append(out, f.body.PC(pc))
	}
	return out
}

// backEdge reports a taken loop back-edge to the adaptive system,
// promotes the method when it crosses the hotness threshold, and — as
// Jikes RVM's OSR machinery does — replaces the method's body in every
// frame currently running it, so a hot loop benefits immediately.
func (vm *VM) backEdge(meth *classes.Method) {
	if !vm.aosSys.OnBackEdge(meth, 1) {
		return
	}
	if err := vm.promote(meth.Index); err != nil {
		vm.err = err
		return
	}
	if vm.cfg.DisableOSR {
		return
	}
	// On-stack replacement: frame PCs are bytecode indexes, so they
	// remain valid across body layouts; the specialization work is
	// charged at the boot image's OSR symbols (via the opt-compile
	// service group, which includes them).
	newBody := vm.bodies[meth.Index]
	replaced := 0
	for _, th := range vm.threads {
		for fi := range th.frames {
			if th.frames[fi].body.Method == meth && th.frames[fi].body != newBody {
				th.frames[fi].body = newBody
				replaced++
			}
		}
	}
	if replaced > 0 {
		vm.work(SvcOptCompile, 500+200*replaced)
		vm.stats.OSRs += replaced
	}
}
