package jvm

import (
	"testing"

	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/jit"
)

// buildThreadedProgram: main spawns `workers` threads, each summing its
// argument range into a distinct static slot, then main does a little
// work of its own.
func buildThreadedProgram(workers int, iters int32) *classes.Program {
	p := classes.NewProgram("threads", workers+2)

	w := bytecode.NewAsm()
	// locals: 0=slot 1=iters 2=i 3=sum
	w.Const(0).Store(3)
	w.Const(0).Store(2)
	w.Label("loop")
	w.Load(3).Load(2).Emit(bytecode.Add).Store(3)
	w.Load(2).Const(1).Emit(bytecode.Add).Store(2)
	w.Load(2).Load(1).Emit(bytecode.CmpLT)
	w.Branch(bytecode.JmpNZ, "loop")
	// statics[slot] = sum: no indexed PutStatic, so store through a ref
	// array in statics[workers+1].
	w.Emit(bytecode.GetStatic, int32(workers+1))
	w.Load(0)
	w.Load(3)
	w.Emit(bytecode.AStore)
	w.Emit(bytecode.RetVoid)
	worker := p.Add(&classes.Method{
		Class: "threads.Worker", Name: "run", NArgs: 2, MaxLocals: 4,
		Code: w.MustFinish(),
	})

	mn := bytecode.NewAsm()
	mn.Const(int32(workers)).Emit(bytecode.NewArray, 8, 0).Emit(bytecode.PutStatic, int32(workers+1))
	for i := 0; i < workers; i++ {
		mn.Const(int32(i)).Const(iters).Emit(bytecode.Spawn, int32(worker.Index))
	}
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{
		Class: "threads.Main", Name: "main", MaxLocals: 1, Code: mn.MustFinish(),
	})
	p.SetMain(main)
	return p
}

func TestSpawnRunsAllThreadsToCompletion(t *testing.T) {
	const workers = 4
	const iters = 5_000
	m := newMachine(1)
	prog := buildThreadedProgram(workers, iters)
	vm, proc, err := Launch(m, prog, Config{HeapBytes: 512 << 10, YieldQuantum: 700})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !proc.Done() || !vm.Finished() {
		t.Fatalf("threaded program failed: %v", vm.Err())
	}
	if vm.Stats().ThreadsSpawned != workers {
		t.Errorf("spawned %d threads, want %d", vm.Stats().ThreadsSpawned, workers)
	}
	// Every worker computed its sum: 0+1+...+(iters-1).
	want := int64(iters) * int64(iters-1) / 2
	ring := vm.statics[workers+1].R
	if ring == nil {
		t.Fatal("result array missing")
	}
	for i := 0; i < workers; i++ {
		if ring.Scalars[i] != want {
			t.Errorf("worker %d sum = %d, want %d (threads corrupt each other?)",
				i, ring.Scalars[i], want)
		}
	}
}

// Threads must interleave — the VM scheduler rotates at yieldpoints
// rather than running each thread to completion.
func TestThreadsInterleave(t *testing.T) {
	m := newMachine(1)
	prog := buildThreadedProgram(2, 50_000)
	vm, _, err := Launch(m, prog, Config{HeapBytes: 512 << 10, YieldQuantum: 500})
	if err != nil {
		t.Fatal(err)
	}
	// Sample thread identities over time via the scheduler state.
	var switches, checks int
	last := -1
	m.Kern.AddTicker(20_000, func() {
		if len(vm.threads) < 3 { // main + 2 workers not all started yet
			return
		}
		checks++
		if last >= 0 && vm.cur != last {
			switches++
		}
		last = vm.cur
	})
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("failed: %v", vm.Err())
	}
	if checks > 4 && switches == 0 {
		t.Errorf("threads never interleaved across %d checks", checks)
	}
}

func TestOSRReplacesRunningFrames(t *testing.T) {
	// One long-running loop inside a single invocation: without OSR the
	// method would stay at baseline forever (no second invocation).
	p := classes.NewProgram("osr", 1)
	a := bytecode.NewAsm()
	a.Const(0).Store(0)
	a.Label("loop")
	a.Load(0).Const(1).Emit(bytecode.Add).Store(0)
	a.Load(0).Const(400_000).Emit(bytecode.CmpLT)
	a.Branch(bytecode.JmpNZ, "loop")
	a.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "osr.Main", Name: "main", MaxLocals: 1, Code: a.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, _, err := Launch(m, p, Config{HeapBytes: 256 << 10, AOSThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("failed: %v", vm.Err())
	}
	if vm.Stats().OSRs == 0 {
		t.Error("hot loop never on-stack-replaced")
	}
	body, ok := vm.Body(main)
	if !ok || body.Level != jit.Opt {
		t.Error("main not at opt level after OSR")
	}

	// With OSR disabled the same program must finish at baseline.
	m2 := newMachine(1)
	vm2, _, err := Launch(m2, p, Config{HeapBytes: 256 << 10, AOSThreshold: 100, DisableOSR: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if vm2.Stats().OSRs != 0 {
		t.Error("OSR happened despite DisableOSR")
	}
	// OSR makes the run faster: the loop body executes at opt cost.
	if m.Core.Cycles() >= m2.Core.Cycles() {
		t.Errorf("OSR run (%d cycles) not faster than baseline-locked run (%d)",
			m.Core.Cycles(), m2.Core.Cycles())
	}
}

func TestThreadsAreGCRoots(t *testing.T) {
	// Worker threads hold live arrays in locals; aggressive GC must not
	// reclaim them.
	const workers = 3
	p := classes.NewProgram("tgc", workers+2)
	w := bytecode.NewAsm()
	// locals: 0=slot 1=iters 2=i 3=arr
	w.Const(64).Emit(bytecode.NewArray, 8, 0).Store(3)
	w.Const(0).Store(2)
	w.Label("loop")
	// arr[i%64] = i (keeps arr live across the loop)
	w.Load(3).Load(2).Const(64).Emit(bytecode.Mod).Load(2).Emit(bytecode.AStore)
	// churn: garbage allocation to force GCs
	w.Emit(bytecode.New, 0, 4).Emit(bytecode.Pop)
	w.Load(2).Const(1).Emit(bytecode.Add).Store(2)
	w.Load(2).Load(1).Emit(bytecode.CmpLT)
	w.Branch(bytecode.JmpNZ, "loop")
	// read back a slot to prove the array survived
	w.Load(3).Const(5).Emit(bytecode.ALoad).Emit(bytecode.Pop)
	w.Emit(bytecode.RetVoid)
	worker := p.Add(&classes.Method{
		Class: "tgc.Worker", Name: "run", NArgs: 2, MaxLocals: 4, Code: w.MustFinish(),
	})
	mn := bytecode.NewAsm()
	for i := 0; i < workers; i++ {
		mn.Const(int32(i)).Const(3_000).Emit(bytecode.Spawn, int32(worker.Index))
	}
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{Class: "tgc.Main", Name: "main", MaxLocals: 1, Code: mn.MustFinish()})
	p.SetMain(main)

	m := newMachine(1)
	vm, _, err := Launch(m, p, Config{HeapBytes: 32 << 10, YieldQuantum: 300})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(5_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("GC broke a thread: %v", vm.Err())
	}
	if vm.Stats().Collections == 0 {
		t.Error("no collections; root coverage untested")
	}
}
