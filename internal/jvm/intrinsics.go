package jvm

import (
	"viprof/internal/addr"
	"viprof/internal/cpu"
	"viprof/internal/jvm/bytecode"
)

// Intrinsics are the VM's native runtime services: calls that leave JIT
// code and execute in libc or the kernel. They give profiles their
// native rows — Figure 1 of the paper shows libc memset costing 0.8% of
// time but a large share of L2 misses during the ps benchmark.

// libcRange returns the absolute address range of a libc symbol.
func (vm *VM) libcRange(name string) (start, end addr.Address) {
	sym, ok := vm.libcImg.Lookup(name)
	if !ok {
		// Construction guarantees the symbols exist; fall back to the
		// image base so a typo cannot crash a run.
		return vm.libcBase, vm.libcBase + 64
	}
	return vm.libcBase + sym.Off, vm.libcBase + sym.Off + addr.Address(sym.Size)
}

// execNative runs n micro-ops walking a libc symbol, touching memory
// every memEvery ops starting at memBase with the given stride.
func (vm *VM) execNative(symbol string, n int, memBase addr.Address, stride uint64, memEvery int) {
	start, end := vm.libcRange(symbol)
	pc := start
	core := vm.m.Core
	var memOff uint64
	for i := 0; i < n; i++ {
		if memEvery > 0 && i%memEvery == 0 && memBase != 0 {
			mem := memBase + addr.Address(memOff)
			memOff += stride
			core.Exec(cpu.Op{PC: pc, Cost: 1, Mem: mem})
		} else {
			core.BatchOp(pc, 1)
		}
		pc += 4
		if pc >= end {
			pc = start
		}
	}
}

const maxMemsetBytes = 64 << 10

// intrinsic executes the Intrinsic opcode of the current frame. The
// instruction's own machine op is emitted by the caller; this method
// performs the native-side work.
func (vm *VM) intrinsic(f *frame, in bytecode.Instr) error {
	pop := func() (Value, bool) {
		if len(f.stack) == 0 {
			return Value{}, false
		}
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		return v, true
	}
	switch bytecode.IntrinsicID(in.A) {
	case bytecode.IntrMemset:
		v, ok := pop()
		if !ok {
			return vm.runtimeError(f, "memset: missing length")
		}
		n := v.I
		if n < 0 {
			n = 0
		}
		if n > maxMemsetBytes {
			n = maxMemsetBytes
		}
		// One op per 16 bytes set, every op stores.
		vm.execNative("memset", int(n/16)+4, vm.scratch, 16, 1)

	case bytecode.IntrArrayCopy:
		lv, ok0 := pop()
		dst, ok1 := pop()
		src, ok2 := pop()
		if !ok0 || !ok1 || !ok2 {
			return vm.runtimeError(f, "arraycopy: missing operands")
		}
		if src.R == nil || dst.R == nil {
			return vm.runtimeError(f, "arraycopy: NullPointerException")
		}
		n := int(lv.I)
		sn, dn := len(src.R.Scalars), len(dst.R.Scalars)
		if len(src.R.Refs) > 0 {
			sn = len(src.R.Refs)
		}
		if len(dst.R.Refs) > 0 {
			dn = len(dst.R.Refs)
		}
		if n > sn {
			n = sn
		}
		if n > dn {
			n = dn
		}
		if n < 0 {
			n = 0
		}
		// Functional copy for scalar arrays (ref arrays copy refs).
		if len(src.R.Refs) > 0 && len(dst.R.Refs) > 0 {
			copy(dst.R.Refs[:n], src.R.Refs[:n])
		} else if len(src.R.Scalars) > 0 && len(dst.R.Scalars) > 0 {
			copy(dst.R.Scalars[:n], src.R.Scalars[:n])
		}
		// Reads from src and writes to dst, one op per element.
		start, end := vm.libcRange("memcpy")
		pc := start
		core := vm.m.Core
		for i := 0; i < n; i++ {
			var mem addr.Address
			if i%2 == 0 {
				mem = src.R.FieldAddr(i)
			} else {
				mem = dst.R.FieldAddr(i)
			}
			core.Exec(cpu.Op{PC: pc, Cost: 1, Mem: mem})
			pc += 4
			if pc >= end {
				pc = start
			}
		}

	case bytecode.IntrWrite:
		v, ok := pop()
		if !ok {
			return vm.runtimeError(f, "write: missing length")
		}
		n := v.I
		if n < 0 {
			n = 0
		}
		if n > 256 {
			n = 256
		}
		vm.execNative("write", 12, 0, 0, 0)
		// Simulated guest stdout: the workload's own write(2) failing
		// models a full disk for the guest, not for the profiler — no
		// profile artifact depends on jikesrvm.out landing.
		//viplint:allow syswrite-err guest stdout, not a profile artifact
		vm.m.Kern.SysWrite(vm.proc, "jikesrvm.out", vm.ioPayload(int(n)))

	case bytecode.IntrCurrentTime:
		vm.execNative("gettimeofday", 8, 0, 0, 0)
		f.stack = append(f.stack, Value{I: int64(vm.m.Core.Cycles())})

	default:
		return vm.runtimeError(f, "unknown intrinsic %d", in.A)
	}
	return nil
}

// ioPayload returns a reusable zero buffer of the requested size for
// simulated writes.
func (vm *VM) ioPayload(n int) []byte {
	if cap(vm.payload) < n {
		vm.payload = make([]byte, n)
	}
	return vm.payload[:n]
}
