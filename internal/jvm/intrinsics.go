package jvm

import (
	"viprof/internal/addr"
	"viprof/internal/jvm/bytecode"
)

// Intrinsics are the VM's native runtime services: calls that leave JIT
// code and execute in libc or the kernel. They give profiles their
// native rows — Figure 1 of the paper shows libc memset costing 0.8% of
// time but a large share of L2 misses during the ps benchmark.

// libcRange returns the absolute address range of a libc symbol.
func (vm *VM) libcRange(name string) (start, end addr.Address) {
	sym, ok := vm.libcImg.Lookup(name)
	if !ok {
		// Construction guarantees the symbols exist; fall back to the
		// image base so a typo cannot crash a run.
		return vm.libcBase, vm.libcBase + 64
	}
	return vm.libcBase + sym.Off, vm.libcBase + sym.Off + addr.Address(sym.Size)
}

// execNative runs n micro-ops walking a libc symbol, touching memory
// every memEvery ops starting at memBase with the given stride.
func (vm *VM) execNative(symbol string, n int, memBase addr.Address, stride uint64, memEvery int) {
	start, end := vm.libcRange(symbol)
	pc := start
	core := vm.m.CPU()
	if memEvery == 1 && memBase != 0 {
		// Pure data run (memset-style fill): every op touches memory at
		// a uniform stride — the bulk cache-replay path, one PC-wrap
		// segment at a time.
		vm.memRun(pc, start, end, n, memBase, uint32(stride))
		return
	}
	var memOff uint64
	for i := 0; i < n; i++ {
		if memEvery > 0 && i%memEvery == 0 && memBase != 0 {
			mem := memBase + addr.Address(memOff)
			memOff += stride
			core.BatchMemOp(pc, 1, mem)
		} else {
			core.BatchOp(pc, 1)
		}
		pc += 4
		if pc >= end {
			pc = start
		}
	}
}

// memRun retires n cost-1 micro-ops walking PCs through [start,end)
// from pc (wrapping), each touching memory at mem, mem+memStride, ...
// through the core's bulk cache-replay path. It returns the PC after
// the run, for callers that keep walking the same symbol.
func (vm *VM) memRun(pc, start, end addr.Address, n int, mem addr.Address, memStride uint32) addr.Address {
	core := vm.m.CPU()
	for n > 0 {
		seg := int((end - pc + 3) / 4)
		if seg > n {
			seg = n
		}
		core.ExecMemBatch(pc, seg, 4, 1, mem, memStride)
		mem += addr.Address(uint64(seg) * uint64(memStride))
		n -= seg
		pc += 4 * addr.Address(seg)
		if pc >= end {
			pc = start
		}
	}
	return pc
}

const maxMemsetBytes = 64 << 10

// intrinsic executes the Intrinsic opcode of the current frame. The
// instruction's own machine op is emitted by the caller; this method
// performs the native-side work.
func (vm *VM) intrinsic(f *frame, in bytecode.Instr) error {
	pop := func() (Value, bool) {
		if len(f.stack) == 0 {
			return Value{}, false
		}
		v := f.stack[len(f.stack)-1]
		f.stack = f.stack[:len(f.stack)-1]
		return v, true
	}
	switch bytecode.IntrinsicID(in.A) {
	case bytecode.IntrMemset:
		v, ok := pop()
		if !ok {
			return vm.runtimeError(f, "memset: missing length")
		}
		n := v.I
		if n < 0 {
			n = 0
		}
		if n > maxMemsetBytes {
			n = maxMemsetBytes
		}
		// One op per 16 bytes set, every op stores.
		vm.execNative("memset", int(n/16)+4, vm.scratch, 16, 1)

	case bytecode.IntrArrayCopy:
		lv, ok0 := pop()
		dst, ok1 := pop()
		src, ok2 := pop()
		if !ok0 || !ok1 || !ok2 {
			return vm.runtimeError(f, "arraycopy: missing operands")
		}
		if src.R == nil || dst.R == nil {
			return vm.runtimeError(f, "arraycopy: NullPointerException")
		}
		n := int(lv.I)
		sn, dn := len(src.R.Scalars), len(dst.R.Scalars)
		if len(src.R.Refs) > 0 {
			sn = len(src.R.Refs)
		}
		if len(dst.R.Refs) > 0 {
			dn = len(dst.R.Refs)
		}
		if n > sn {
			n = sn
		}
		if n > dn {
			n = dn
		}
		if n < 0 {
			n = 0
		}
		// Functional copy for scalar arrays (ref arrays copy refs).
		if len(src.R.Refs) > 0 && len(dst.R.Refs) > 0 {
			copy(dst.R.Refs[:n], src.R.Refs[:n])
		} else if len(src.R.Scalars) > 0 && len(dst.R.Scalars) > 0 {
			copy(dst.R.Scalars[:n], src.R.Scalars[:n])
		}
		// Reads from src and writes to dst, one op per element, copied
		// block-wise the way an unrolled memcpy streams: per block, a
		// read run over the source then a write run over the
		// destination (each a strided guaranteed-hit stream the bulk
		// cache-replay path retires line by line). The block is large —
		// real memcpy kernels stream whole pages — so the per-run setup
		// cost of the batched replay amortizes over many lines.
		start, end := vm.libcRange("memcpy")
		pc := start
		const copyBlock = 128
		for base := 0; base < n; base += copyBlock {
			bn := copyBlock
			if n-base < bn {
				bn = n - base
			}
			sn := (bn + 1) / 2 // ops that read src fields base, base+2, ...
			dn := bn / 2       // ops that write dst fields base+1, base+3, ...
			pc = vm.memRun(pc, start, end, sn, src.R.FieldAddr(base), 16)
			if dn > 0 {
				pc = vm.memRun(pc, start, end, dn, dst.R.FieldAddr(base+1), 16)
			}
		}

	case bytecode.IntrWrite:
		v, ok := pop()
		if !ok {
			return vm.runtimeError(f, "write: missing length")
		}
		n := v.I
		if n < 0 {
			n = 0
		}
		if n > 256 {
			n = 256
		}
		vm.execNative("write", 12, 0, 0, 0)
		// Simulated guest stdout: the workload's own write(2) failing
		// models a full disk for the guest, not for the profiler — no
		// profile artifact depends on jikesrvm.out landing.
		//viplint:allow syswrite-err guest stdout, not a profile artifact
		vm.m.Kern.SysWrite(vm.proc, "jikesrvm.out", vm.ioPayload(int(n))) //viplint:allow record-frame guest stdout, not a profiler artifact

	case bytecode.IntrCurrentTime:
		vm.execNative("gettimeofday", 8, 0, 0, 0)
		f.stack = append(f.stack, Value{I: int64(vm.m.CPU().Cycles())})

	default:
		return vm.runtimeError(f, "unknown intrinsic %d", in.A)
	}
	return nil
}

// ioPayload returns a reusable zero buffer of the requested size for
// simulated writes.
func (vm *VM) ioPayload(n int) []byte {
	if cap(vm.payload) < n {
		vm.payload = make([]byte, n)
	}
	return vm.payload[:n]
}
