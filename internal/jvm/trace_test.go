package jvm

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/kernel"
)

// The trace-replay equivalence property: a random loop-heavy program
// must produce bit-for-bit identical simulated machines under (a) the
// default fused trace replay, (b) DisableTrace (per-op interpretation
// over the streaming batch engine), and (c) SetBatching(false) (the
// fully per-op oracle). Programs mix arithmetic, array and field RMW,
// statics, data-dependent branches (random deopt points), and periodic
// allocation (GC moves JIT bodies mid-trace), so the sweep exercises
// replay, divergence deopts, trace invalidation on promotion, and
// descriptor survival across code motion.

// genTraceProgram builds a worker whose loop body is a random sequence
// of stack-neutral gadgets, plus a main that calls it enough times for
// entry and backedge anchors to pass the hot threshold.
//
// Worker locals: 0=iterations 1=i 2=arr 3=obj 4=acc 5=tmp.
// Statics: 0,1 allocation rings (refs), 2=acc 3=arr probe 4=field probe
// 5=static RMW cell.
func genTraceProgram(rng *rand.Rand) *classes.Program {
	p := classes.NewProgram("traceq", 8)
	arrLen := int32(16 + rng.Intn(48))

	w := bytecode.NewAsm()
	w.Const(arrLen).Emit(bytecode.NewArray, 8, 0).Store(2)
	w.Emit(bytecode.New, 1, 4).Store(3)
	w.Const(int32(rng.Intn(100))).Store(4)
	w.Const(0).Store(1)
	w.Label("loop")

	binOps := []bytecode.Opcode{
		bytecode.Add, bytecode.Sub, bytecode.Mul, bytecode.And,
		bytecode.Or, bytecode.Xor,
	}
	nGadgets := 3 + rng.Intn(4)
	for gi := 0; gi < nGadgets; gi++ {
		lbl := fmt.Sprintf("g%d", gi)
		switch rng.Intn(5) {
		case 0: // arithmetic chain on acc
			w.Load(4).Load(1).Emit(binOps[rng.Intn(len(binOps))])
			w.Const(int32(rng.Intn(200) - 100)).Emit(binOps[rng.Intn(len(binOps))])
			w.Store(4)
		case 1: // array RMW: arr[i%len] += i
			w.Load(2).Load(1).Const(arrLen).Emit(bytecode.Mod).Emit(bytecode.ALoad)
			w.Load(1).Emit(bytecode.Add)
			w.Store(5)
			w.Load(2).Load(1).Const(arrLen).Emit(bytecode.Mod)
			w.Load(5)
			w.Emit(bytecode.AStore)
		case 2: // scalar field RMW on the loop-local object
			fi := int32(rng.Intn(4))
			w.Load(3)
			w.Load(3).Emit(bytecode.GetField, fi)
			w.Const(int32(rng.Intn(50) + 1)).Emit(bytecode.Add)
			w.Emit(bytecode.PutField, fi)
		case 3: // static RMW
			w.Emit(bytecode.GetStatic, 5)
			w.Load(1).Emit(binOps[rng.Intn(len(binOps))])
			w.Emit(bytecode.PutStatic, 5)
		default: // data-dependent skip: diverges from any recorded direction
			br := bytecode.JmpZ
			if rng.Intn(2) == 0 {
				br = bytecode.JmpNZ
			}
			w.Load(1).Const(int32(rng.Intn(6) + 2)).Emit(bytecode.Mod)
			w.Branch(br, lbl)
			w.Load(4).Const(int32(rng.Intn(30) + 1)).Emit(bytecode.Add).Store(4)
			w.Label(lbl)
		}
	}
	// Always allocate on a random cadence so GC runs (and moves the
	// traced body) at seed-dependent points.
	w.Load(1).Const(int32(rng.Intn(14) + 3)).Emit(bytecode.Mod)
	w.Branch(bytecode.JmpNZ, "skipalloc")
	w.Emit(bytecode.New, 1, 2)
	w.Emit(bytecode.PutStatic, int32(rng.Intn(2)))
	w.Label("skipalloc")
	// i++; loop while i < iterations
	w.Load(1).Const(1).Emit(bytecode.Add).Store(1)
	w.Load(1).Load(0).Emit(bytecode.CmpLT)
	w.Branch(bytecode.JmpNZ, "loop")
	// Publish observable results into scalar statics.
	w.Load(4).Emit(bytecode.PutStatic, 2)
	w.Load(2).Const(arrLen/2).Emit(bytecode.ALoad).Emit(bytecode.PutStatic, 3)
	w.Load(3).Emit(bytecode.GetField, 1).Emit(bytecode.PutStatic, 4)
	w.Emit(bytecode.RetVoid)
	worker := p.Add(&classes.Method{
		Class: "traceq.Worker", Name: "run", NArgs: 1, MaxLocals: 6,
		Code: w.MustFinish(),
	})

	outer := int32(10 + rng.Intn(20))
	inner := int32(120 + rng.Intn(150))
	mn := bytecode.NewAsm()
	mn.Const(0).Store(0)
	mn.Label("loop")
	mn.Const(inner).Call(int32(worker.Index))
	mn.Load(0).Const(1).Emit(bytecode.Add).Store(0)
	mn.Load(0).Const(outer).Emit(bytecode.CmpLT)
	mn.Branch(bytecode.JmpNZ, "loop")
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{
		Class: "traceq.Main", Name: "main", MaxLocals: 1,
		Code: mn.MustFinish(),
	})
	p.SetMain(main)
	return p
}

type traceNMI struct {
	Ev   hpc.Event
	Snap cpu.Snapshot
}

// traceRunResult is everything observable about one run that must be
// identical across the fused, trace-disabled, and per-op machines.
// TraceStats is deliberately excluded: it legitimately differs.
type traceRunResult struct {
	Cycles, Instrs uint64
	Counters       [2][2]uint64 // (Total, Overflows) per programmed event
	CacheStats     [4][2]uint64 // (accesses, misses) for L1, L2, DTLB, ITLB
	NMIs           []traceNMI
	VMStats        Stats
	Statics        [4]int64 // scalar statics 2..5
	Finished       bool
	ErrStr         string
}

func runTraceProgram(t *testing.T, p *classes.Program, seed int64, disableTrace, noBatch bool) (traceRunResult, TraceStats) {
	t.Helper()
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	core.Bank.Program(hpc.GlobalPowerEvents, 7_003)
	core.Bank.Program(hpc.BSQCacheReference, 1_201)
	if noBatch {
		core.SetBatching(false)
	}
	m := kernel.NewMachine(core, seed)
	var res traceRunResult
	m.Kern.SetNMIHandler(func(mm *kernel.Machine, s cpu.Snapshot, ev hpc.Event) {
		res.NMIs = append(res.NMIs, traceNMI{Ev: ev, Snap: s})
	})
	vm, _, err := Launch(m, p, Config{
		HeapBytes: 96 << 10, AOSThreshold: 120, DisableTrace: disableTrace,
	})
	if err != nil {
		t.Fatalf("seed %d: launch: %v", seed, err)
	}
	if err := m.Kern.Run(3_000_000_000); err != nil {
		t.Fatalf("seed %d: run: %v", seed, err)
	}
	res.Cycles = core.Cycles()
	res.Instrs = core.Instructions()
	for i, ev := range []hpc.Event{hpc.GlobalPowerEvents, hpc.BSQCacheReference} {
		if c, ok := core.Bank.Counter(ev); ok {
			res.Counters[i] = [2]uint64{c.Total(), c.Overflows()}
		}
	}
	for i, c := range []*cache.Cache{core.Mem.L1, core.Mem.L2, core.Mem.DTLB, core.Mem.ITLB} {
		if c != nil {
			a, ms := c.Stats()
			res.CacheStats[i] = [2]uint64{a, ms}
		}
	}
	res.VMStats = vm.Stats()
	for i := 0; i < 4; i++ {
		res.Statics[i] = vm.statics[2+i].I
	}
	res.Finished = vm.Finished()
	if vm.Err() != nil {
		res.ErrStr = vm.Err().Error()
	}
	return res, vm.TraceStats()
}

func TestTraceReplayMatchesPerOpQuick(t *testing.T) {
	var totalReplays, totalOps, totalDeopts uint64
	var totalInstalled, totalInvalidations int
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := genTraceProgram(rng)
		if err := p.Verify(); err != nil {
			t.Logf("seed %d: generated invalid program: %v", seed, err)
			return false
		}
		fused, ts := runTraceProgram(t, p, seed, false, false)
		totalReplays += ts.Replays
		totalOps += ts.OpsReplayed
		totalDeopts += ts.Deopts
		totalInstalled += ts.Installed
		totalInvalidations += ts.Invalidations
		if !fused.Finished {
			t.Logf("seed %d: fused run did not finish: %s", seed, fused.ErrStr)
			return false
		}
		plain, pts := runTraceProgram(t, p, seed, true, false)
		if pts.Installed != 0 || pts.Replays != 0 {
			t.Logf("seed %d: DisableTrace still traced: %+v", seed, pts)
			return false
		}
		if !reflect.DeepEqual(fused, plain) {
			t.Logf("seed %d: fused vs DisableTrace diverged:\n fused: %+v\n plain: %+v", seed, fused, plain)
			return false
		}
		perop, _ := runTraceProgram(t, p, seed, false, true)
		if !reflect.DeepEqual(fused, perop) {
			t.Logf("seed %d: fused vs per-op oracle diverged:\n fused: %+v\n perop: %+v", seed, fused, perop)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
	// The sweep must actually exercise the fused path, its deopt exits,
	// and invalidation on promotion — otherwise the equivalence above is
	// vacuous.
	if totalInstalled == 0 || totalReplays == 0 || totalOps == 0 {
		t.Errorf("traces not exercised: installed=%d replays=%d ops=%d",
			totalInstalled, totalReplays, totalOps)
	}
	if totalDeopts == 0 {
		t.Error("no deopts across the sweep: divergence paths untested")
	}
	if totalInvalidations == 0 {
		t.Error("no invalidations across the sweep: recompile paths untested")
	}
	t.Logf("trace sweep: installed=%d replays=%d ops=%d deopts=%d invalidations=%d",
		totalInstalled, totalReplays, totalOps, totalDeopts, totalInvalidations)
}

// A deterministic loop-heavy workload must install loop traces and
// retire the overwhelming share of its bytecodes through fused replay —
// the property the ≥2x host-speed target rests on.
func TestTraceReplayCoversHotLoop(t *testing.T) {
	m := newMachine(7)
	prog := buildLoopProgram(60, 400)
	vm, _, err := Launch(m, prog, Config{HeapBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(3_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	ts := vm.TraceStats()
	if ts.Installed == 0 {
		t.Fatal("no traces installed on a hot loop")
	}
	st := vm.Stats()
	if ts.OpsReplayed*2 < st.BytecodesRun {
		t.Errorf("fused replay covered %d of %d bytecodes, want majority",
			ts.OpsReplayed, st.BytecodesRun)
	}
}
