// Package classes models the class/method structure the VM loads and
// compiles: methods with bytecode bodies grouped into classes, plus a
// whole-program container with static (root) slots. A light verifier
// checks structural well-formedness before the VM accepts a program,
// mirroring the bytecode verification a real JVM performs at load time.
package classes

import (
	"fmt"

	"viprof/internal/jvm/bytecode"
)

// Method is one method: a named bytecode body.
type Method struct {
	Class string // fully qualified class name, e.g. "spec.jbb.Warehouse"
	Name  string
	NArgs int // incoming arguments, placed in locals 0..NArgs-1
	// MaxLocals is the number of local variable slots (>= NArgs).
	MaxLocals int
	Code      []bytecode.Instr

	// Index is the method's program-wide index, set by Program.Add.
	Index int
}

// Signature returns the fully qualified name used in profiles, e.g.
// "spec.jbb.Warehouse.processTransaction".
func (m *Method) Signature() string { return m.Class + "." + m.Name }

// Program is a closed set of methods plus static storage.
type Program struct {
	Name    string
	Methods []*Method
	// StaticSlots is the number of program-wide static slots (GC roots).
	StaticSlots int
	// Main is the entry method's index.
	Main int
}

// NewProgram returns an empty program.
func NewProgram(name string, staticSlots int) *Program {
	return &Program{Name: name, StaticSlots: staticSlots, Main: -1}
}

// Add appends a method, assigns its index, and returns it.
func (p *Program) Add(m *Method) *Method {
	m.Index = len(p.Methods)
	p.Methods = append(p.Methods, m)
	return m
}

// SetMain designates the entry point.
func (p *Program) SetMain(m *Method) { p.Main = m.Index }

// Method returns the method at index i.
func (p *Program) Method(i int) *Method { return p.Methods[i] }

// Verify checks structural well-formedness of every method: operand
// ranges, jump targets, call indexes, argument/local consistency, and
// that every path ends in a return. It returns the first problem found.
func (p *Program) Verify() error {
	if p.Main < 0 || p.Main >= len(p.Methods) {
		return fmt.Errorf("program %s: no main method", p.Name)
	}
	if p.Methods[p.Main].NArgs != 0 {
		return fmt.Errorf("program %s: main takes %d args, want 0", p.Name, p.Methods[p.Main].NArgs)
	}
	for _, m := range p.Methods {
		if err := p.verifyMethod(m); err != nil {
			return fmt.Errorf("%s: %v", m.Signature(), err)
		}
	}
	return nil
}

func (p *Program) verifyMethod(m *Method) error {
	if m.NArgs > m.MaxLocals {
		return fmt.Errorf("NArgs %d > MaxLocals %d", m.NArgs, m.MaxLocals)
	}
	if len(m.Code) == 0 {
		return fmt.Errorf("empty body")
	}
	n := int32(len(m.Code))
	for pc, in := range m.Code {
		switch in.Op {
		case bytecode.Load, bytecode.Store:
			if in.A < 0 || int(in.A) >= m.MaxLocals {
				return fmt.Errorf("pc %d: %s: local %d out of range [0,%d)", pc, in, in.A, m.MaxLocals)
			}
		case bytecode.Jmp, bytecode.JmpZ, bytecode.JmpNZ:
			if in.A < 0 || in.A >= n {
				return fmt.Errorf("pc %d: %s: target out of range [0,%d)", pc, in, n)
			}
		case bytecode.Call, bytecode.Spawn:
			if in.A < 0 || int(in.A) >= len(p.Methods) {
				return fmt.Errorf("pc %d: %s: method index out of range", pc, in)
			}
		case bytecode.GetStatic, bytecode.PutStatic:
			if in.A < 0 || int(in.A) >= p.StaticSlots {
				return fmt.Errorf("pc %d: %s: static slot out of range [0,%d)", pc, in, p.StaticSlots)
			}
		case bytecode.New:
			if in.A < 0 || in.B < 0 || in.A+in.B == 0 {
				return fmt.Errorf("pc %d: %s: object needs at least one slot", pc, in)
			}
		case bytecode.NewArray:
			if in.A != 1 && in.A != 2 && in.A != 4 && in.A != 8 {
				return fmt.Errorf("pc %d: %s: element size must be 1/2/4/8", pc, in)
			}
		case bytecode.Intrinsic:
			if in.A < 0 || in.A >= int32(bytecode.NumIntrinsics) {
				return fmt.Errorf("pc %d: %s: unknown intrinsic", pc, in)
			}
		}
		if in.Op >= bytecode.Opcode(bytecode.NumOpcodes) {
			return fmt.Errorf("pc %d: invalid opcode %d", pc, in.Op)
		}
	}
	// Last instruction must be an unconditional exit (return or jump):
	// falling off the end is invalid.
	last := m.Code[n-1]
	switch last.Op {
	case bytecode.Ret, bytecode.RetVoid, bytecode.Jmp:
	default:
		return fmt.Errorf("falls off the end (last op %s)", last)
	}
	return nil
}

// BytecodeCount returns the total bytecode length of all methods.
func (p *Program) BytecodeCount() int {
	total := 0
	for _, m := range p.Methods {
		total += len(m.Code)
	}
	return total
}
