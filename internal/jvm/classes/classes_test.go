package classes

import (
	"strings"
	"testing"

	"viprof/internal/jvm/bytecode"
)

func retVoid() []bytecode.Instr {
	return []bytecode.Instr{{Op: bytecode.RetVoid}}
}

func validProgram() *Program {
	p := NewProgram("test", 4)
	main := p.Add(&Method{Class: "app.Main", Name: "main", MaxLocals: 2, Code: retVoid()})
	p.Add(&Method{Class: "app.Main", Name: "helper", NArgs: 1, MaxLocals: 1, Code: []bytecode.Instr{
		{Op: bytecode.Load, A: 0},
		{Op: bytecode.Ret},
	}})
	p.SetMain(main)
	return p
}

func TestSignature(t *testing.T) {
	m := &Method{Class: "spec.jbb.Warehouse", Name: "process"}
	if m.Signature() != "spec.jbb.Warehouse.process" {
		t.Error(m.Signature())
	}
}

func TestAddAssignsIndexes(t *testing.T) {
	p := validProgram()
	for i, m := range p.Methods {
		if m.Index != i {
			t.Errorf("method %d has index %d", i, m.Index)
		}
		if p.Method(i) != m {
			t.Errorf("Method(%d) mismatch", i)
		}
	}
	if p.BytecodeCount() != 3 {
		t.Errorf("BytecodeCount = %d, want 3", p.BytecodeCount())
	}
}

func TestVerifyValid(t *testing.T) {
	if err := validProgram().Verify(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}
}

func TestVerifyCatches(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(p *Program)
		want   string
	}{
		{"no main", func(p *Program) { p.Main = -1 }, "no main"},
		{"main with args", func(p *Program) { p.Methods[p.Main].NArgs = 2; p.Methods[p.Main].MaxLocals = 2 }, "args"},
		{"bad local", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.Load, A: 9}, {Op: bytecode.Ret}}
		}, "local"},
		{"bad jump", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.Jmp, A: 99}}
		}, "target"},
		{"negative jump", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.Jmp, A: -2}}
		}, "target"},
		{"bad call", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.Call, A: 42}, {Op: bytecode.Ret}}
		}, "method index"},
		{"bad static", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.GetStatic, A: 100}, {Op: bytecode.Ret}}
		}, "static"},
		{"empty body", func(p *Program) { p.Methods[1].Code = nil }, "empty"},
		{"falls off end", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.Nop}}
		}, "falls off"},
		{"nargs > locals", func(p *Program) { p.Methods[1].NArgs = 5 }, "MaxLocals"},
		{"zero-slot object", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.New, A: 0, B: 0}, {Op: bytecode.RetVoid}}
		}, "slot"},
		{"bad elem size", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.NewArray, A: 3}, {Op: bytecode.RetVoid}}
		}, "element size"},
		{"bad intrinsic", func(p *Program) {
			p.Methods[1].Code = []bytecode.Instr{{Op: bytecode.Intrinsic, A: 99}, {Op: bytecode.RetVoid}}
		}, "intrinsic"},
	}
	for _, tc := range cases {
		p := validProgram()
		tc.mutate(p)
		err := p.Verify()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
