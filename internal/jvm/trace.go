// Trace recording and fused superinstruction replay: the VM detects hot
// straight-line (and single-backedge loop) bytecode sequences at method
// entries and loop-backedge targets, compiles each into a compact trace
// descriptor, and replays the descriptor with one event-horizon check
// (cpu.Core.TraceWindow) and one bulk retirement (cpu.Core.RetireTrace)
// per fused stretch instead of one dispatch + one accumulator call per
// bytecode. Replay deoptimizes to the ordinary stepInstr interpreter at
// any guard failure — branch divergence, operand-stack underflow or a
// runtime exception, an exhausted event horizon, or a stale descriptor
// after recompilation — leaving the VM in exactly the state per-op
// execution would have at that bytecode, so the per-op path can always
// resume mid-trace.
//
// Equivalence contract: a fused replay is bit-for-bit identical to the
// per-op interpretation of the same bytecodes. Ops are accumulated only
// while provably event-free (inside the granted TraceWindow, with
// memory operands proven guaranteed hits via Hierarchy.DataFree);
// everything else — recorded misses, horizon boundaries, diverging
// branches — takes the same precise cpu.Core.Exec path the streaming
// engine falls back to. With batching disabled (the per-op oracle)
// TraceWindow refuses every window and the interpreter runs per-op,
// so ablation comparisons exercise identical simulated machines.
package jvm

import (
	"viprof/internal/addr"
	"viprof/internal/cpu"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/jit"
)

const (
	// traceHotThreshold is how many times an anchor (method entry or
	// backedge target) must be reached before a recording starts.
	traceHotThreshold = 8
	// traceMaxOps caps recorded trace length; longer straight-line runs
	// are split at the cap. Sized so a realistic interpreter loop body
	// (typically well under a hundred bytecodes) fuses whole — a
	// truncated loop trace leaves its tail stepping per-op every
	// iteration.
	traceMaxOps = 192
	// traceMinOps is the minimum length worth fusing: below it the
	// per-replay window bookkeeping costs more than it saves.
	traceMinOps = 6
)

// traceOp is one recorded bytecode of a trace, predecoded so replay
// touches neither the method's code array nor the body's offset table:
// the opcode, its immediate, its cycle cost at the trace's JIT level,
// its operand-stack entry requirement, its machine-PC offset from the
// trace's first op (stable for the descriptor's body level — GC moves
// the base, never the layout), and — for conditional branches — the
// recorded direction the trace follows.
type traceOp struct {
	bci   int32
	a     int32 // the instruction's immediate operand
	pcOff uint32
	cost  uint32
	op    bytecode.Opcode
	needs uint8 // operand-stack values read below entry (opNeeds)
	flags uint8 // opfBranch|opfMem|opfLast; zero selects the plain fast path
	taken bool  // recorded outcome for JmpZ/JmpNZ (always true for Jmp)
}

// traceOp.flags bits. An op with no flag set is "plain": it carries no
// data operand, cannot diverge, and is not the trace's final op, so the
// replayer's only architectural question is whether it still fits the
// open window — the divergence, loop-close, and memory checks are
// skipped entirely for it.
const (
	opfBranch uint8 = 1 << iota // Jmp/JmpZ/JmpNZ: divergence checks apply
	opfMem                      // may carry a data operand (mem != 0)
	opfLast                     // final op of the trace: loop-close applies
)

// opFlags classifies an opcode for the replay fast path.
func opFlags(op bytecode.Opcode) uint8 {
	switch op {
	case bytecode.Jmp, bytecode.JmpZ, bytecode.JmpNZ:
		return opfBranch
	case bytecode.ALoad, bytecode.AStore,
		bytecode.GetField, bytecode.PutField,
		bytecode.GetRef, bytecode.PutRef,
		bytecode.GetStatic, bytecode.PutStatic:
		return opfMem
	}
	return 0
}

// traceDesc is a fused superinstruction descriptor: a hot bytecode
// sequence with strictly increasing bytecode indexes, closed either by
// a fall-through exit (straight-line trace) or by a backedge to its own
// anchor (loop trace). Machine PCs are never stored — the replayer
// computes body.PC(bci) per run, so descriptors survive GC code moves;
// the replayer anchors its event-horizon window per instruction page,
// so a footprint spanning a page boundary fuses each page segment
// separately with the crossing op retired precisely. The stack shape
// (minDepth entry values consumed below the entry level, maxGrow slots
// of growth, net delta) is precomputed for the entry guard.
type traceDesc struct {
	level     jit.Level
	startBC   int32 // anchor: first op's bytecode index
	lastBC    int32 // final op's bytecode index (the maximum of the trace)
	loop      bool  // final op is a branch back to startBC
	ops       []traceOp
	totalCost uint64 // sum of op costs at `level` (the fused cycle cost)
	minDepth  int    // operand-stack values required on entry
	maxGrow   int    // max growth above the entry stack level
	net       int    // net operand-stack delta of a full replay
	// Divergence hygiene: replays counts completed replays, diverges
	// the ones that left through a branch going the unrecorded way. A
	// descriptor whose recorded path chronically diverges (a recording
	// that caught the rare arm of a data-dependent branch) is retired
	// so the anchor re-heats and re-records the now-common path.
	replays  uint32
	diverges uint32
}

// methodTraces is the per-method trace cache: one descriptor slot and
// one anchor-heat counter per bytecode index.
type methodTraces struct {
	at   []*traceDesc
	heat []uint8
}

// traceRecorder captures one in-progress recording. Recording is purely
// observational: recordStep peeks at the instruction about to execute,
// appends it (or finalizes/aborts), then lets stepInstr run it, so the
// recording pass is bit-for-bit the ordinary interpreter.
type traceRecorder struct {
	mi      int // method index
	thread  int // vm.cur at start; any switch aborts
	depth   int // frame depth at start; any call/return aborts
	level   jit.Level
	startBC int32
	expect  int32 // bytecode index the next recorded op must have
	ops     []traceOp
	rd      int // stack depth relative to entry
	minD    int
	maxG    int
}

// TraceStats counts trace-cache activity. They are deliberately kept
// out of Stats: fused replay changes how bytecodes retire, never which
// bytecodes retire, so Stats stays bit-for-bit identical across the
// batched, per-op, and trace-disabled configurations while TraceStats
// legitimately differs.
type TraceStats struct {
	Installed     int    // descriptors installed
	Aborted       int    // recordings abandoned before installation
	Replays       uint64 // replay invocations that retired at least one op
	OpsReplayed   uint64 // bytecodes retired by fused replay
	Deopts        uint64 // replays that left the trace before its recorded end
	Invalidations int    // per-method cache flushes on recompilation
	Dropped       int    // descriptors retired for chronic branch divergence
}

// TraceStats returns trace-cache activity counters.
func (vm *VM) TraceStats() TraceStats { return vm.traceStats }

// opNeeds returns how many operand-stack values the op reads below the
// current top (the recorder's entry-depth requirement).
func opNeeds(op bytecode.Opcode) int {
	switch op {
	case bytecode.Store, bytecode.Pop, bytecode.Dup, bytecode.Neg,
		bytecode.JmpZ, bytecode.JmpNZ, bytecode.PutStatic,
		bytecode.ArrayLen, bytecode.GetField, bytecode.GetRef:
		return 1
	case bytecode.Add, bytecode.Sub, bytecode.Mul, bytecode.Div, bytecode.Mod,
		bytecode.And, bytecode.Or, bytecode.Xor, bytecode.Shl, bytecode.Shr,
		bytecode.CmpLT, bytecode.CmpLE, bytecode.CmpEQ, bytecode.CmpNE,
		bytecode.CmpGT, bytecode.CmpGE,
		bytecode.ALoad, bytecode.PutField, bytecode.PutRef:
		return 2
	case bytecode.AStore:
		return 3
	}
	return 0
}

// traceable reports whether an opcode may appear inside a trace. Calls,
// returns, spawns, allocations, and intrinsics end recording: they
// change frames, run VM services, or allocate (and hence may collect),
// none of which a fused stretch may contain.
func traceable(op bytecode.Opcode) bool {
	switch op {
	case bytecode.Call, bytecode.Spawn, bytecode.Ret, bytecode.RetVoid,
		bytecode.New, bytecode.NewArray, bytecode.Intrinsic:
		return false
	}
	return true
}

// noteAnchor records one arrival at a trace anchor (method entry or
// backedge target) and starts a recording once the anchor is hot and
// the recorder is free.
func (vm *VM) noteAnchor(f *frame, bci int) {
	if vm.cfg.DisableTrace {
		return
	}
	mi := f.body.Method.Index
	mt := vm.traceAt[mi]
	if mt == nil {
		n := len(f.body.Method.Code)
		mt = &methodTraces{at: make([]*traceDesc, n), heat: make([]uint8, n)}
		vm.traceAt[mi] = mt
	}
	if bci < 0 || bci >= len(mt.at) || mt.at[bci] != nil {
		return
	}
	if mt.heat[bci] < 255 {
		mt.heat[bci]++
	}
	if mt.heat[bci] < traceHotThreshold || vm.rec != nil {
		return
	}
	vm.rec = &traceRecorder{
		mi:      mi,
		thread:  vm.cur,
		depth:   len(vm.threads[vm.cur].frames),
		level:   f.body.Level,
		startBC: int32(bci),
		expect:  int32(bci),
	}
}

// invalidateTraces drops every descriptor of a method. Called on
// recompilation: descriptor costs and the OSR-replaced bodies belong to
// the old JIT level. (The replayer's level guard is the second layer of
// this defence, catching frames that still run a stale body.)
func (vm *VM) invalidateTraces(mi int) {
	if vm.traceAt == nil || vm.traceAt[mi] == nil {
		return
	}
	vm.traceAt[mi] = nil
	vm.traceStats.Invalidations++
	if r := vm.rec; r != nil && r.mi == mi {
		vm.rec = nil
		vm.traceStats.Aborted++
	}
}

// stepTraced is the interpreter's dispatch entry: continue an active
// recording, replay an installed descriptor, or fall through to the
// ordinary stepInstr (bumping the entry anchor on the way).
func (vm *VM) stepTraced() error {
	if vm.cfg.DisableTrace {
		return vm.stepInstr()
	}
	th := vm.threads[vm.cur]
	f := &th.frames[len(th.frames)-1]
	mi := f.body.Method.Index
	if r := vm.rec; r != nil {
		if r.mi == mi && r.thread == vm.cur && r.depth == len(th.frames) &&
			r.level == f.body.Level && int(r.expect) == f.pc {
			return vm.recordStep(f)
		}
		vm.rec = nil
		vm.traceStats.Aborted++
	}
	if mt := vm.traceAt[mi]; mt != nil && f.pc >= 0 && f.pc < len(mt.at) {
		if d := mt.at[f.pc]; d != nil {
			if d.level == f.body.Level {
				done, err := vm.replayTrace(f, d)
				if done || err != nil {
					return err
				}
			} else {
				mt.at[f.pc] = nil
			}
		}
	}
	if f.pc == 0 {
		vm.noteAnchor(f, 0)
		if r := vm.rec; r != nil && r.mi == mi && r.thread == vm.cur &&
			r.depth == len(th.frames) && len(r.ops) == 0 && r.startBC == 0 {
			return vm.recordStep(f)
		}
	}
	return vm.stepInstr()
}

// recordStep observes the instruction stepInstr is about to execute:
// append it to the recording, finalize the trace (at an ending opcode,
// the length cap, or the loop-closing backedge), or abort. It then runs
// stepInstr unchanged, so recording has no architectural effect.
func (vm *VM) recordStep(f *frame) error {
	r := vm.rec
	meth := f.body.Method
	if f.pc < 0 || f.pc >= len(meth.Code) {
		vm.rec = nil
		vm.traceStats.Aborted++
		return vm.stepInstr()
	}
	in := meth.Code[f.pc]
	if !traceable(in.Op) {
		vm.finishRecording(f, false)
		return vm.stepInstr()
	}
	bci := int32(f.pc)
	cost := jit.OpCost(in.Op, r.level)
	switch in.Op {
	case bytecode.Jmp, bytecode.JmpZ, bytecode.JmpNZ:
		taken := true
		if in.Op != bytecode.Jmp {
			if len(f.stack) == 0 {
				// stepInstr will raise the underflow; nothing to record.
				vm.rec = nil
				vm.traceStats.Aborted++
				return vm.stepInstr()
			}
			top := f.stack[len(f.stack)-1]
			taken = (top.I == 0) == (in.Op == bytecode.JmpZ)
		}
		dest := f.pc + 1
		if taken {
			dest = int(in.A)
		}
		if dest <= f.pc {
			if taken && int32(dest) == r.startBC {
				// The loop closes on its own anchor: record the backedge
				// and install a loop trace.
				r.append(in, bci, cost, taken)
				vm.finishRecording(f, true)
			} else {
				// Backward control flow to a foreign target: not a
				// single-backedge loop, give up.
				vm.rec = nil
				vm.traceStats.Aborted++
			}
			return vm.stepInstr()
		}
		r.append(in, bci, cost, taken)
		r.expect = int32(dest)
	default:
		r.append(in, bci, cost, false)
		r.expect = bci + 1
	}
	if len(r.ops) >= traceMaxOps {
		vm.finishRecording(f, false)
	}
	return vm.stepInstr()
}

// append adds one op to the recording and folds its operand-stack shape
// into the descriptor's entry requirements.
func (r *traceRecorder) append(in bytecode.Instr, bci int32, cost uint32, taken bool) {
	needs := opNeeds(in.Op)
	if need := needs - r.rd; need > r.minD {
		r.minD = need
	}
	r.rd += bytecode.StackDelta(in)
	if r.rd > r.maxG {
		r.maxG = r.rd
	}
	r.ops = append(r.ops, traceOp{
		bci: bci, a: in.A, cost: cost,
		op: in.Op, needs: uint8(needs), flags: opFlags(in.Op), taken: taken,
	})
}

// finishRecording installs the recorded trace as a descriptor at its
// anchor if it is long enough to be worth fusing. The frame supplies
// the body whose layout the descriptor predecodes its PC offsets from;
// its level was guarded at every recorded step.
func (vm *VM) finishRecording(f *frame, loop bool) {
	r := vm.rec
	vm.rec = nil
	if len(r.ops) < traceMinOps || f.body.Level != r.level {
		vm.traceStats.Aborted++
		return
	}
	var total uint64
	base := f.body.PC(int(r.startBC))
	for i := range r.ops {
		total += uint64(r.ops[i].cost)
		r.ops[i].pcOff = uint32(f.body.PC(int(r.ops[i].bci)) - base)
	}
	r.ops[len(r.ops)-1].flags |= opfLast
	d := &traceDesc{
		level:     r.level,
		startBC:   r.startBC,
		lastBC:    r.ops[len(r.ops)-1].bci,
		loop:      loop,
		ops:       r.ops,
		totalCost: total,
		minDepth:  r.minD,
		maxGrow:   r.maxG,
		net:       r.rd,
	}
	mt := vm.traceAt[r.mi]
	if mt == nil || int(r.startBC) >= len(mt.at) {
		vm.traceStats.Aborted++
		return
	}
	mt.at[r.startBC] = d
	vm.traceStats.Installed++
}

// replayTrace executes one pass over a descriptor. It returns done=true
// when it retired at least one bytecode (f.pc then points at the next
// bytecode to execute, which may be mid-trace after a deoptimization)
// and done=false — with zero architectural or functional effect — when
// replay cannot begin, in which case the caller falls through to
// stepInstr. A loop trace replays exactly one iteration per call, so
// the Step loop's slice and scheduling checks run between iterations
// exactly as they do per-op.
func (vm *VM) replayTrace(f *frame, d *traceDesc) (bool, error) {
	// Entry guards: enough operand stack for the recorded shape, and the
	// yield quantum cannot expire inside the fused stretch (scheduling
	// checks skipped by fusion are then provably no-ops).
	if len(f.stack) < d.minDepth || vm.sinceYield+len(d.ops) > vm.cfg.YieldQuantum {
		return false, nil
	}
	core := vm.m.CPU()
	if !core.Batching() {
		// The per-op oracle: replay must not run at all.
		return false, nil
	}
	body := f.body
	startPC := body.PC(int(d.startBC))
	// The window is anchored per instruction page, not per trace: a
	// descriptor whose footprint spans a page boundary (long bodies,
	// post-promotion code layouts) fuses each page segment separately,
	// with the crossing op retired precisely so it pays exactly the
	// per-op ITLB probe. winPage is the page the current window proved
	// fetch-free; ops off that page leave the accumulator.
	remOps, remCost, ok := core.TraceWindow(startPC, startPC)
	winPage := uint64(startPC) >> 12
	needReopen := !ok
	if !ok {
		// Cold entry: the instruction page moved (a kernel slice ran
		// since the last replay), an NMI is latched, or a counter is
		// within one op of overflow. None of these forbids replay — the
		// first op(s) retire precisely, paying exactly the per-op
		// fetch/latch/overflow accounting, and the window reopens warm
		// (typically from the second op).
		remOps, remCost = 0, 0
	}
	hier := core.Mem
	var hit uint32
	if hier != nil {
		hit = hier.HitCost()
	}
	meth := body.Method
	mi := meth.Index

	var accN, accCost uint64
	var accLastPC addr.Address
	var dtouch uint32
	var daddr addr.Address
	executed := 0

	// The Step loop polls core.Expired() between bytecodes, so per-op
	// execution yields to the kernel at exactly the op where the
	// scheduling slice runs out. Fused replay must stop at the same op:
	// track pending slice consumption (the accumulator's cost is not yet
	// applied to the core) and re-sync from the core whenever it is.
	sliceBudget := core.SliceLeft()
	var sliceUsed uint64

	flush := func() {
		if accN > 0 {
			core.RetireTrace(accLastPC, accN, accCost, daddr, dtouch)
			accN, accCost, dtouch, daddr = 0, 0, 0, 0
		}
		sliceBudget = core.SliceLeft()
		sliceUsed = 0
	}
	commit := func(deopt bool) {
		vm.sinceYield += executed
		vm.stats.BytecodesRun += uint64(executed)
		if executed > 0 {
			vm.traceStats.Replays++
			vm.traceStats.OpsReplayed += uint64(executed)
			d.replays++
		}
		if deopt {
			vm.traceStats.Deopts++
		}
	}
	// deopt abandons the trace before executing op j: all previous ops
	// are committed, f.pc points at op j's bytecode, and stepInstr
	// resumes there — including re-raising whatever runtime error made
	// the op unexecutable, with the per-op path's exact semantics.
	deopt := func(bci int32) (bool, error) {
		flush()
		f.pc = int(bci)
		commit(true)
		return executed > 0, nil
	}

	for j := 0; j < len(d.ops); j++ {
		op := &d.ops[j]
		if sliceUsed >= sliceBudget {
			// The scheduling slice expired at this op boundary: per-op
			// execution would leave the Step loop here without running
			// the op, so replay stops and lets the kernel take over.
			flush()
			f.pc = int(op.bci)
			commit(true)
			return executed > 0, nil
		}
		pc := startPC + addr.Address(op.pcOff)
		sp := len(f.stack)
		if sp < int(op.needs) {
			return deopt(op.bci)
		}

		// Functional phase: validate without mutating, then apply —
		// exactly stepInstr's effect for the op. Ops that would raise a
		// runtime error deopt unexecuted so stepInstr raises it.
		var mem addr.Address
		branchTaken := op.taken
		switch op.op {
		case bytecode.Nop:
		case bytecode.Const:
			f.stack = append(f.stack, Value{I: int64(op.a)})
		case bytecode.Load:
			f.stack = append(f.stack, f.locals[op.a])
		case bytecode.Store:
			f.locals[op.a] = f.stack[sp-1]
			f.stack = f.stack[:sp-1]
		case bytecode.Dup:
			f.stack = append(f.stack, f.stack[sp-1])
		case bytecode.Pop:
			f.stack = f.stack[:sp-1]

		case bytecode.Add, bytecode.Sub, bytecode.Mul, bytecode.Div, bytecode.Mod,
			bytecode.And, bytecode.Or, bytecode.Xor, bytecode.Shl, bytecode.Shr:
			a, b := f.stack[sp-2], f.stack[sp-1]
			if (op.op == bytecode.Div || op.op == bytecode.Mod) && b.I == 0 {
				return deopt(op.bci)
			}
			var v int64
			switch op.op {
			case bytecode.Add:
				v = a.I + b.I
			case bytecode.Sub:
				v = a.I - b.I
			case bytecode.Mul:
				v = a.I * b.I
			case bytecode.Div:
				v = a.I / b.I
			case bytecode.Mod:
				v = a.I % b.I
			case bytecode.And:
				v = a.I & b.I
			case bytecode.Or:
				v = a.I | b.I
			case bytecode.Xor:
				v = a.I ^ b.I
			case bytecode.Shl:
				v = a.I << (uint64(b.I) & 63)
			case bytecode.Shr:
				v = a.I >> (uint64(b.I) & 63)
			}
			f.stack = f.stack[:sp-1]
			f.stack[sp-2] = Value{I: v}
		case bytecode.Neg:
			f.stack[sp-1] = Value{I: -f.stack[sp-1].I}

		case bytecode.CmpLT, bytecode.CmpLE, bytecode.CmpEQ, bytecode.CmpNE,
			bytecode.CmpGT, bytecode.CmpGE:
			a, b := f.stack[sp-2], f.stack[sp-1]
			var r bool
			switch op.op {
			case bytecode.CmpLT:
				r = a.I < b.I
			case bytecode.CmpLE:
				r = a.I <= b.I
			case bytecode.CmpEQ:
				r = a.I == b.I
			case bytecode.CmpNE:
				r = a.I != b.I
			case bytecode.CmpGT:
				r = a.I > b.I
			case bytecode.CmpGE:
				r = a.I >= b.I
			}
			var v int64
			if r {
				v = 1
			}
			f.stack = f.stack[:sp-1]
			f.stack[sp-2] = Value{I: v}

		case bytecode.Jmp:
		case bytecode.JmpZ, bytecode.JmpNZ:
			v := f.stack[sp-1]
			f.stack = f.stack[:sp-1]
			branchTaken = (v.I == 0) == (op.op == bytecode.JmpZ)

		case bytecode.ALoad:
			ref, idx := f.stack[sp-2], f.stack[sp-1]
			o := ref.R
			if o == nil {
				return deopt(op.bci)
			}
			i := idx.I
			if len(o.Refs) > 0 {
				if i < 0 || int(i) >= len(o.Refs) {
					return deopt(op.bci)
				}
				mem = o.FieldAddr(int(i))
				f.stack = f.stack[:sp-1]
				f.stack[sp-2] = Value{R: o.Refs[i]}
			} else {
				if i < 0 || int(i) >= len(o.Scalars) {
					return deopt(op.bci)
				}
				mem = o.FieldAddr(int(i))
				f.stack = f.stack[:sp-1]
				f.stack[sp-2] = Value{I: o.Scalars[i]}
			}
		case bytecode.AStore:
			ref, idx, val := f.stack[sp-3], f.stack[sp-2], f.stack[sp-1]
			o := ref.R
			if o == nil {
				return deopt(op.bci)
			}
			i := idx.I
			if len(o.Refs) > 0 {
				if i < 0 || int(i) >= len(o.Refs) {
					return deopt(op.bci)
				}
				o.Refs[i] = val.R
			} else {
				if i < 0 || int(i) >= len(o.Scalars) {
					return deopt(op.bci)
				}
				o.Scalars[i] = val.I
			}
			mem = o.FieldAddr(int(i))
			f.stack = f.stack[:sp-3]
		case bytecode.ArrayLen:
			o := f.stack[sp-1].R
			if o == nil {
				return deopt(op.bci)
			}
			n := len(o.Scalars)
			if len(o.Refs) > 0 {
				n = len(o.Refs)
			}
			f.stack[sp-1] = Value{I: int64(n)}

		case bytecode.GetField:
			o := f.stack[sp-1].R
			if o == nil || int(op.a) >= len(o.Scalars) {
				return deopt(op.bci)
			}
			mem = o.FieldAddr(int(op.a))
			f.stack[sp-1] = Value{I: o.Scalars[op.a]}
		case bytecode.PutField:
			o := f.stack[sp-2].R
			if o == nil || int(op.a) >= len(o.Scalars) {
				return deopt(op.bci)
			}
			o.Scalars[op.a] = f.stack[sp-1].I
			mem = o.FieldAddr(int(op.a))
			f.stack = f.stack[:sp-2]
		case bytecode.GetRef:
			o := f.stack[sp-1].R
			if o == nil || int(op.a) >= len(o.Refs) {
				return deopt(op.bci)
			}
			mem = o.FieldAddr(int(op.a))
			f.stack[sp-1] = Value{R: o.Refs[op.a]}
		case bytecode.PutRef:
			o := f.stack[sp-2].R
			if o == nil || int(op.a) >= len(o.Refs) {
				return deopt(op.bci)
			}
			o.Refs[op.a] = f.stack[sp-1].R
			mem = o.FieldAddr(int(op.a))
			f.stack = f.stack[:sp-2]

		case bytecode.GetStatic:
			mem = vm.staticsBase + addr.Address(op.a)*8
			f.stack = append(f.stack, vm.statics[op.a])
		case bytecode.PutStatic:
			mem = vm.staticsBase + addr.Address(op.a)*8
			vm.statics[op.a] = f.stack[sp-1]
			f.stack = f.stack[:sp-1]

		default:
			// A non-traceable opcode can only appear here through a bug in
			// the recorder; run it per-op.
			return deopt(op.bci)
		}

		// Plain ops (no data operand, no divergence possible, not the
		// final op) take a short architectural path: reopen-if-needed,
		// accumulate if the op fits the window, retire precisely if not.
		// This is the general path below with every branch that cannot
		// apply removed — the bulk of any trace is these.
		if op.flags == 0 {
			if needReopen {
				remOps, remCost, ok = core.TraceWindow(pc, pc)
				if ok {
					winPage = uint64(pc) >> 12
					needReopen = false
				}
			}
			eff := uint64(op.cost)
			if !needReopen && uint64(pc)>>12 == winPage &&
				accN+1 <= remOps && accCost+eff <= remCost {
				accN++
				accCost += eff
				accLastPC = pc
				sliceUsed += eff
			} else {
				flush()
				core.Exec(cpu.Op{PC: pc, Cost: op.cost})
				sliceBudget = core.SliceLeft()
				sliceUsed = 0
				needReopen = true
			}
			executed = j + 1
			continue
		}

		// Loop-closing backedge: retire the accumulator, then charge the
		// backedge in stepInstr's exact order — backEdge (which may
		// promote, OSR-replace f.body, and invalidate this descriptor)
		// before the op's own charge at the *new* body's address with the
		// *old* level's cost.
		if d.loop && j == len(d.ops)-1 && branchTaken {
			flush()
			executed = len(d.ops)
			vm.backEdge(meth)
			core.BatchOp(f.body.PC(int(op.bci)), op.cost)
			vm.noteAnchor(f, int(d.startBC))
			f.pc = int(d.startBC)
			commit(false)
			return true, nil
		}

		// Divergence from the recorded direction exits the trace after
		// charging this op; a backward divergence reports its backedge
		// first, exactly as stepInstr does.
		diverged := false
		var divergeDest int
		if op.op == bytecode.Jmp || op.op == bytecode.JmpZ || op.op == bytecode.JmpNZ {
			if branchTaken != op.taken {
				diverged = true
				divergeDest = int(op.bci) + 1
				if branchTaken {
					divergeDest = int(op.a)
				}
			}
		}
		if diverged && divergeDest <= int(op.bci) {
			flush()
			executed = j + 1
			vm.backEdge(meth)
			core.BatchOp(f.body.PC(int(op.bci)), op.cost)
			vm.noteAnchor(f, divergeDest)
			f.pc = divergeDest
			commit(true)
			d.diverges++
			vm.dropChronicDiverge(d, mi)
			return true, nil
		}

		// Architectural phase: accumulate inside the window when the op
		// is provably event-free, otherwise retire precisely. A closed
		// window never abandons the trace — precise ops deliver latched
		// NMIs, tick overflows, and refetch the page, after which the
		// window reopens for the remaining ops.
		canAcc := mem == 0 || (hier != nil && hier.DataFree(mem))
		if canAcc && needReopen {
			remOps, remCost, ok = core.TraceWindow(pc, pc)
			if ok {
				winPage = uint64(pc) >> 12
				needReopen = false
			}
		}
		eff := uint64(op.cost)
		if mem != 0 {
			eff += uint64(hit)
		}
		if canAcc && !needReopen && uint64(pc)>>12 == winPage &&
			accN+1 <= remOps && accCost+eff <= remCost {
			accN++
			accCost += eff
			accLastPC = pc
			sliceUsed += eff
			if mem != 0 {
				dtouch++
				daddr = mem
			}
		} else {
			flush()
			core.Exec(cpu.Op{PC: pc, Cost: op.cost, Mem: mem})
			// The precise op (and any NMI handler it ran) consumed slice
			// directly on the core.
			sliceBudget = core.SliceLeft()
			sliceUsed = 0
			needReopen = true
		}
		executed = j + 1

		if diverged {
			flush()
			f.pc = divergeDest
			commit(true)
			d.diverges++
			vm.dropChronicDiverge(d, mi)
			return true, nil
		}
	}

	// Recorded end of a straight-line trace (or a loop trace whose
	// closing branch fell through — handled above as divergence).
	flush()
	f.pc = nextTracePC(d, len(d.ops)-1)
	commit(false)
	return true, nil
}

// traceDivergeMinReplays is how many replays a descriptor gets before
// its divergence rate is judged.
const traceDivergeMinReplays = 32

// dropChronicDiverge retires a descriptor once more than half its
// replays left through a branch going the unrecorded way: the
// recording caught a rare arm of a data-dependent branch (or the
// program changed phase). Resetting the anchor's heat lets a fresh
// recording capture the now-common path.
func (vm *VM) dropChronicDiverge(d *traceDesc, mi int) {
	if d.replays < traceDivergeMinReplays || d.diverges*2 <= d.replays {
		return
	}
	mt := vm.traceAt[mi]
	if mt == nil || int(d.startBC) >= len(mt.at) || mt.at[d.startBC] != d {
		return
	}
	mt.at[d.startBC] = nil
	mt.heat[d.startBC] = 0
	vm.traceStats.Dropped++
}

// nextTracePC is the bytecode index control reaches after executing
// op j of the trace with its recorded branch outcome.
func nextTracePC(d *traceDesc, j int) int {
	op := &d.ops[j]
	switch op.op {
	case bytecode.Jmp:
		return int(op.a)
	case bytecode.JmpZ, bytecode.JmpNZ:
		if op.taken {
			return int(op.a)
		}
	}
	return int(op.bci) + 1
}
