package jvm

import (
	"viprof/internal/image"
)

// The boot image. Jikes RVM is written in Java; its build precompiles
// the VM's own classes into a static code image (RVM.code.image, an
// internal format with no ELF symbol table) plus a map file (RVM.map)
// giving offset/size/signature for every method in the image (paper
// §3.2). The simulated VM executes its runtime services — class
// loading, baseline and optimizing compilation, garbage collection,
// scheduling — at these symbols, so VM-internal time is attributable
// exactly as in the paper's Figure 1.

// BootImageName is the Jikes personality's boot image name (kept as a
// package constant because it is the paper's default and tests/docs
// reference it directly).
const BootImageName = "RVM.code.image"

// RVMMapName is the Jikes personality's symbol map, written to the
// simulated disk at VM launch for the post-processing tools.
const RVMMapName = "RVM.map"

// ServiceID identifies a VM runtime service whose execution is charged
// to a weighted group of boot-image symbols.
type ServiceID int

// VM services.
const (
	SvcClassload ServiceID = iota
	SvcBaseCompile
	SvcOptCompile
	SvcGCTrace
	SvcGCCopy
	SvcScheduler
	SvcRuntime
	SvcStartup
	numServices
)

type bootSym struct {
	name string
	size uint64
}

// jikesBootSymbols lists every method "compiled into" the boot image.
// Names follow Jikes RVM 2.4.4's layout; several appear verbatim in the
// paper's Figure 1.
var jikesBootSymbols = []bootSym{
	// Class loader.
	{"com.ibm.jikesrvm.classloader.VM_ClassLoader.loadClass", 1800},
	{"com.ibm.jikesrvm.classloader.VM_Class.resolve", 1400},
	{"com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength", 700},
	{"com.ibm.jikesrvm.classloader.VM_NormalMethod.hasArrayRead", 600},
	{"com.ibm.jikesrvm.classloader.VM_NormalMethod.finalizeOsrSpecialization", 900},
	// Baseline compiler.
	{"com.ibm.jikesrvm.VM_Compiler.compile", 2600},
	{"com.ibm.jikesrvm.VM_Compiler.emitPrologue", 800},
	{"com.ibm.jikesrvm.VM_BaselineGCMapIterator.setupIterator", 700},
	// Optimizing compiler.
	{"com.ibm.jikesrvm.opt.OPT_Compiler.compile", 4200},
	{"com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps", 1100},
	{"com.ibm.jikesrvm.opt.VM_OptMachineCodeMap.getMethodForMCOffset", 900},
	{"com.ibm.jikesrvm.opt.OPT_SimpleEscape.simpleEscapeAnalysis", 1500},
	// Garbage collector (JMTk).
	{"com.ibm.jikesrvm.memorymanagers.JMTk.Plan.collect", 1600},
	{"com.ibm.jikesrvm.memorymanagers.JMTk.CopySpace.traceObject", 1200},
	{"com.ibm.jikesrvm.memorymanagers.JMTk.BumpPointer.alloc", 500},
	{"com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills", 1000},
	// Scheduler / threads / startup.
	{"com.ibm.jikesrvm.MainThread.run", 900},
	{"com.ibm.jikesrvm.VM_Scheduler.schedule", 1100},
	{"com.ibm.jikesrvm.VM_Thread.yieldpoint", 500},
	{"com.ibm.jikesrvm.VM.boot", 2200},
	// Runtime services and library code living in the image.
	{"com.ibm.jikesrvm.VM_Runtime.resolveMember", 800},
	{"com.ibm.jikesrvm.VM_Runtime.newObject", 600},
	{"java.util.Vector.trimToSize", 500},
	{"java.lang.System.arraycopyPrologue", 400},
}

// jikesServiceSymbols maps each service to the boot-image symbols its
// execution walks, with relative weights.
var jikesServiceSymbols = map[ServiceID][]svcSym{
	SvcClassload: {
		{"com.ibm.jikesrvm.classloader.VM_ClassLoader.loadClass", 4},
		{"com.ibm.jikesrvm.classloader.VM_Class.resolve", 3},
		{"com.ibm.jikesrvm.classloader.VM_NormalMethod.hasArrayRead", 2},
		{"com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength", 2},
	},
	SvcBaseCompile: {
		{"com.ibm.jikesrvm.VM_Compiler.compile", 6},
		{"com.ibm.jikesrvm.VM_Compiler.emitPrologue", 2},
		{"com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength", 1},
		{"com.ibm.jikesrvm.VM_BaselineGCMapIterator.setupIterator", 1},
	},
	SvcOptCompile: {
		{"com.ibm.jikesrvm.opt.OPT_Compiler.compile", 7},
		{"com.ibm.jikesrvm.opt.OPT_SimpleEscape.simpleEscapeAnalysis", 3},
		{"com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps", 3},
		{"com.ibm.jikesrvm.opt.VM_OptMachineCodeMap.getMethodForMCOffset", 2},
		{"com.ibm.jikesrvm.classloader.VM_NormalMethod.finalizeOsrSpecialization", 2},
	},
	SvcGCTrace: {
		{"com.ibm.jikesrvm.memorymanagers.JMTk.Plan.collect", 3},
		{"com.ibm.jikesrvm.memorymanagers.JMTk.CopySpace.traceObject", 5},
		{"com.ibm.jikesrvm.opt.VM_OptGenericGCMapIterator.checkForMissedSpills", 2},
	},
	SvcGCCopy: {
		{"com.ibm.jikesrvm.memorymanagers.JMTk.CopySpace.traceObject", 4},
		{"com.ibm.jikesrvm.memorymanagers.JMTk.BumpPointer.alloc", 2},
	},
	SvcScheduler: {
		{"com.ibm.jikesrvm.VM_Scheduler.schedule", 3},
		{"com.ibm.jikesrvm.VM_Thread.yieldpoint", 2},
	},
	SvcRuntime: {
		{"com.ibm.jikesrvm.VM_Runtime.resolveMember", 2},
		{"com.ibm.jikesrvm.VM_Runtime.newObject", 3},
		{"java.util.Vector.trimToSize", 1},
	},
	SvcStartup: {
		{"com.ibm.jikesrvm.VM.boot", 5},
		{"com.ibm.jikesrvm.MainThread.run", 3},
		{"com.ibm.jikesrvm.VM_Scheduler.schedule", 1},
	},
}

// buildLibc constructs the C library image the VM's native calls
// execute in.
func buildLibc() (*image.Image, error) {
	b := image.NewBuilder("libc-2.3.2.so")
	for _, s := range []bootSym{
		{"memset", 600},
		{"memcpy", 800},
		{"write", 300},
		{"gettimeofday", 200},
		{"malloc", 900},
	} {
		b.Add(s.name, s.size)
	}
	return b.Image()
}
