package bytecode

import "fmt"

// Asm builds a method body with symbolic labels, resolving forward
// references at Finish time. Workload generators and tests use it to
// write bytecode without tracking indexes by hand.
type Asm struct {
	code   []Instr
	labels map[string]int32
	fixups []fixup
	err    error
}

type fixup struct {
	at    int // instruction index whose A needs patching
	label string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int32)}
}

// Label binds name to the next instruction index.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup && a.err == nil {
		a.err = fmt.Errorf("asm: duplicate label %q", name)
	}
	a.labels[name] = int32(len(a.code))
	return a
}

// Emit appends a raw instruction.
func (a *Asm) Emit(op Opcode, operands ...int32) *Asm {
	in := Instr{Op: op}
	switch len(operands) {
	case 0:
	case 1:
		in.A = operands[0]
	case 2:
		in.A, in.B = operands[0], operands[1]
	default:
		if a.err == nil {
			a.err = fmt.Errorf("asm: %s with %d operands", op, len(operands))
		}
	}
	a.code = append(a.code, in)
	return a
}

// Branch emits a control transfer to a label (which may be defined
// later).
func (a *Asm) Branch(op Opcode, label string) *Asm {
	switch op {
	case Jmp, JmpZ, JmpNZ:
	default:
		if a.err == nil {
			a.err = fmt.Errorf("asm: Branch with non-branch opcode %s", op)
		}
	}
	a.fixups = append(a.fixups, fixup{at: len(a.code), label: label})
	a.code = append(a.code, Instr{Op: op, A: -1})
	return a
}

// Convenience emitters for common shapes.

// Const pushes a constant.
func (a *Asm) Const(v int32) *Asm { return a.Emit(Const, v) }

// Load pushes a local.
func (a *Asm) Load(slot int32) *Asm { return a.Emit(Load, slot) }

// Store pops into a local.
func (a *Asm) Store(slot int32) *Asm { return a.Emit(Store, slot) }

// Call invokes a method by program-wide index.
func (a *Asm) Call(method int32) *Asm { return a.Emit(Call, method) }

// Finish resolves labels and returns the code.
func (a *Asm) Finish() ([]Instr, error) {
	if a.err != nil {
		return nil, a.err
	}
	for _, f := range a.fixups {
		target, ok := a.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		a.code[f.at].A = target
	}
	return a.code, nil
}

// MustFinish is Finish for statically known-good code; it panics on
// assembly errors.
func (a *Asm) MustFinish() []Instr {
	code, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return code
}
