// Package bytecode defines the architecture-independent instruction set
// executed by the simulated virtual machine. Like Java bytecode it is a
// compact stack-machine format that the VM converts to machine code at
// runtime ("JIT code" throughout the paper) — programs are *never*
// executed from this portable form directly; the VM baseline-compiles a
// method on first invocation, exactly as Jikes RVM does.
package bytecode

import "fmt"

// Opcode is a bytecode operation.
type Opcode uint8

// The instruction set. A and B are the instruction's immediate
// operands; stack effects are noted in comments.
const (
	Nop Opcode = iota

	// Stack and locals.
	Const // push A
	Load  // push locals[A]
	Store // locals[A] = pop
	Dup   // push top
	Pop   // drop top

	// Arithmetic and logic (pop two, push one, except Neg/Not).
	Add
	Sub
	Mul
	Div // pops divisor then dividend; division by zero traps
	Mod
	Neg // pop one, push -v
	And
	Or
	Xor
	Shl
	Shr

	// Comparisons (pop b, pop a, push a OP b as 0/1).
	CmpLT
	CmpLE
	CmpEQ
	CmpNE
	CmpGT
	CmpGE

	// Control flow. A is the target bytecode index.
	Jmp
	JmpZ  // pop; jump if zero
	JmpNZ // pop; jump if nonzero

	// Calls. A is the program-wide method index; the callee's NArgs
	// values are popped (last argument on top) and become locals 0..n-1.
	Call
	Ret     // pop return value, pop frame, push into caller
	RetVoid // pop frame
	// Spawn starts a new VM thread running method A (arguments popped
	// like Call, no return value). The VM exits when every thread has
	// finished; there is no explicit join.
	Spawn

	// Objects and arrays. Memory-touching opcodes drive the simulated
	// cache hierarchy; allocation drives the garbage collector.
	New      // allocate object: A = ref slots, B = scalar slots; push ref
	NewArray // pop length; allocate array: A = elem size (8 for ref/long); B!=0 means ref elems; push ref
	ALoad    // pop index, pop ref; push element (memory read)
	AStore   // pop value, pop index, pop ref (memory write)
	ArrayLen // pop ref; push length
	GetField // pop ref; push scalar field A (memory read)
	PutField // pop value, pop ref; scalar field A = value (memory write)
	GetRef   // pop ref; push ref field A (memory read)
	PutRef   // pop ref value, pop ref; ref field A = value (memory write)

	// Statics: program-wide root slots (GC roots).
	GetStatic // push statics[A]
	PutStatic // statics[A] = pop

	// Intrinsic invokes native runtime service A with B stack operands
	// (popped). These execute in native libraries (libc) rather than
	// JIT code, giving profiles their native rows (Figure 1's memset).
	Intrinsic

	numOpcodes
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

var opNames = [...]string{
	Nop: "nop", Const: "const", Load: "load", Store: "store", Dup: "dup", Pop: "pop",
	Add: "add", Sub: "sub", Mul: "mul", Div: "div", Mod: "mod", Neg: "neg",
	And: "and", Or: "or", Xor: "xor", Shl: "shl", Shr: "shr",
	CmpLT: "cmplt", CmpLE: "cmple", CmpEQ: "cmpeq", CmpNE: "cmpne", CmpGT: "cmpgt", CmpGE: "cmpge",
	Jmp: "jmp", JmpZ: "jmpz", JmpNZ: "jmpnz",
	Call: "call", Ret: "ret", RetVoid: "retvoid", Spawn: "spawn",
	New: "new", NewArray: "newarray", ALoad: "aload", AStore: "astore", ArrayLen: "arraylen",
	GetField: "getfield", PutField: "putfield", GetRef: "getref", PutRef: "putref",
	GetStatic: "getstatic", PutStatic: "putstatic",
	Intrinsic: "intrinsic",
}

// String returns the mnemonic.
func (op Opcode) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", uint8(op))
}

// IntrinsicID identifies a native runtime service callable via the
// Intrinsic opcode.
type IntrinsicID int32

// Intrinsics.
const (
	// IntrMemset models libc memset: pops a length operand and touches
	// that many bytes of a scratch buffer.
	IntrMemset IntrinsicID = iota
	// IntrArrayCopy models System.arraycopy: pops length, dst, src.
	IntrArrayCopy
	// IntrWrite models a small I/O write syscall: pops a length.
	IntrWrite
	// IntrCurrentTime pushes the current cycle count (cheap native call).
	IntrCurrentTime
	NumIntrinsics
)

// Instr is one instruction.
type Instr struct {
	Op   Opcode
	A, B int32
}

func (i Instr) String() string {
	switch i.Op {
	case Const, Load, Store, Jmp, JmpZ, JmpNZ, Call, Spawn, GetField, PutField,
		GetRef, PutRef, GetStatic, PutStatic:
		return fmt.Sprintf("%s %d", i.Op, i.A)
	case New, NewArray, Intrinsic:
		return fmt.Sprintf("%s %d,%d", i.Op, i.A, i.B)
	default:
		return i.Op.String()
	}
}

// StackDelta returns the net stack effect of the instruction (calls
// excluded: Call's effect depends on the callee and is handled by the
// verifier separately).
func StackDelta(i Instr) int {
	switch i.Op {
	case Const, Load, Dup, GetStatic:
		return 1
	case Store, Pop, JmpZ, JmpNZ, PutStatic, RetVoid:
		return -1
	case Add, Sub, Mul, Div, Mod, And, Or, Xor, Shl, Shr,
		CmpLT, CmpLE, CmpEQ, CmpNE, CmpGT, CmpGE:
		return -1
	case Neg, Nop, Jmp, ArrayLen:
		return 0
	case New:
		return 1
	case NewArray:
		return 0 // pops length, pushes ref
	case ALoad:
		return -1 // pops ref+index, pushes value
	case AStore:
		return -3
	case GetField, GetRef:
		return 0
	case PutField, PutRef:
		return -2
	case Ret:
		return -1
	case Intrinsic:
		if IntrinsicID(i.A) == IntrCurrentTime {
			return 1 - int(i.B) // pops operands, pushes the time
		}
		return -int(i.B) // pops B operands
	default:
		return 0
	}
}
