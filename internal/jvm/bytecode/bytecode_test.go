package bytecode

import (
	"strings"
	"testing"
)

func TestOpcodeStrings(t *testing.T) {
	if Add.String() != "add" || Call.String() != "call" || NewArray.String() != "newarray" {
		t.Error("mnemonics wrong")
	}
	if !strings.HasPrefix(Opcode(200).String(), "op") {
		t.Error("unknown opcode should format as opN")
	}
}

func TestInstrString(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: Const, A: 42}, "const 42"},
		{Instr{Op: Add}, "add"},
		{Instr{Op: New, A: 2, B: 3}, "new 2,3"},
		{Instr{Op: Jmp, A: 7}, "jmp 7"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStackDelta(t *testing.T) {
	tests := []struct {
		in   Instr
		want int
	}{
		{Instr{Op: Const, A: 1}, 1},
		{Instr{Op: Add}, -1},
		{Instr{Op: AStore}, -3},
		{Instr{Op: ALoad}, -1},
		{Instr{Op: Dup}, 1},
		{Instr{Op: NewArray, A: 8}, 0},
		{Instr{Op: Intrinsic, A: int32(IntrMemset), B: 1}, -1},
		{Instr{Op: Intrinsic, A: int32(IntrCurrentTime), B: 0}, 1},
		{Instr{Op: PutField, A: 0}, -2},
	}
	for _, tt := range tests {
		if got := StackDelta(tt.in); got != tt.want {
			t.Errorf("StackDelta(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestAsmLabels(t *testing.T) {
	a := NewAsm()
	a.Const(10).Store(0)
	a.Label("loop")
	a.Load(0).Const(1).Emit(Sub).Store(0)
	a.Load(0)
	a.Branch(JmpNZ, "loop")
	a.Emit(RetVoid)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The branch must target the instruction after "loop" was placed.
	var branch Instr
	for _, in := range code {
		if in.Op == JmpNZ {
			branch = in
		}
	}
	if branch.A != 2 {
		t.Errorf("branch target = %d, want 2", branch.A)
	}
}

func TestAsmForwardReference(t *testing.T) {
	a := NewAsm()
	a.Const(0)
	a.Branch(JmpZ, "end")
	a.Const(1).Emit(Pop)
	a.Label("end")
	a.Emit(RetVoid)
	code, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if code[1].A != 4 {
		t.Errorf("forward branch target = %d, want 4", code[1].A)
	}
}

func TestAsmErrors(t *testing.T) {
	a := NewAsm()
	a.Branch(JmpZ, "nowhere").Emit(RetVoid)
	if _, err := a.Finish(); err == nil {
		t.Error("undefined label accepted")
	}

	b := NewAsm()
	b.Label("x").Label("x")
	if _, err := b.Finish(); err == nil {
		t.Error("duplicate label accepted")
	}

	c := NewAsm()
	c.Branch(Add, "x")
	if _, err := c.Finish(); err == nil {
		t.Error("non-branch Branch accepted")
	}

	d := NewAsm()
	d.Emit(Const, 1, 2, 3)
	if _, err := d.Finish(); err == nil {
		t.Error("three operands accepted")
	}
}

func TestMustFinishPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustFinish did not panic on bad code")
		}
	}()
	a := NewAsm()
	a.Branch(Jmp, "missing")
	a.MustFinish()
}
