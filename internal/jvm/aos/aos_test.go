package aos

import (
	"testing"
	"testing/quick"

	"viprof/internal/jvm/classes"
)

func m(idx int) *classes.Method {
	return &classes.Method{Class: "c", Name: "m", Index: idx}
}

func TestInvokePromotion(t *testing.T) {
	a := New(10)
	meth := m(0)
	for i := 0; i < 9; i++ {
		if a.OnInvoke(meth) {
			t.Fatalf("promoted after %d invocations (threshold 10)", i+1)
		}
	}
	if !a.OnInvoke(meth) {
		t.Fatal("not promoted at threshold")
	}
	if !a.Promoted(meth) {
		t.Error("Promoted() false after promotion")
	}
	// Exactly once.
	for i := 0; i < 20; i++ {
		if a.OnInvoke(meth) {
			t.Fatal("promoted twice")
		}
	}
	if a.Decisions() != 1 {
		t.Errorf("Decisions = %d, want 1", a.Decisions())
	}
}

func TestBackEdgeWeight(t *testing.T) {
	a := New(10)
	meth := m(1)
	// 8 back-edges = 1 unit, so threshold 10 needs 80 back-edges.
	promotions := 0
	edges := 0
	for i := 0; i < 200; i++ {
		if a.OnBackEdge(meth, 1) {
			promotions++
			edges = i + 1
		}
	}
	if promotions != 1 {
		t.Fatalf("promotions = %d", promotions)
	}
	if edges != 80 {
		t.Errorf("promoted after %d back-edges, want 80", edges)
	}
}

func TestBackEdgeCarry(t *testing.T) {
	a := New(1)
	meth := m(2)
	// 7 edges: no unit yet.
	for i := 0; i < 7; i++ {
		if a.OnBackEdge(meth, 1) {
			t.Fatal("promoted below one unit")
		}
	}
	// 8th edge completes the unit and crosses threshold 1.
	if !a.OnBackEdge(meth, 1) {
		t.Error("carry lost: 8th back-edge did not promote")
	}
}

func TestMixedSignals(t *testing.T) {
	a := New(5)
	meth := m(3)
	a.OnInvoke(meth)       // 1
	a.OnBackEdge(meth, 16) // +2 = 3
	a.OnInvoke(meth)       // 4
	if a.Hotness(meth) != 4 {
		t.Errorf("hotness = %d, want 4", a.Hotness(meth))
	}
	if !a.OnInvoke(meth) { // 5
		t.Error("mixed signals did not promote at threshold")
	}
}

func TestDefaultThreshold(t *testing.T) {
	a := New(0)
	if a.Threshold != DefaultThreshold {
		t.Errorf("Threshold = %d", a.Threshold)
	}
}

func TestIndependentMethods(t *testing.T) {
	a := New(3)
	x, y := m(10), m(11)
	a.OnInvoke(x)
	a.OnInvoke(x)
	if a.Promoted(y) || a.Hotness(y) != 0 {
		t.Error("methods share hotness state")
	}
}

// Property: a method is promoted exactly once, and only after
// invocations + floor(backedges/8) >= threshold.
func TestPromotionExactlyOnceQuick(t *testing.T) {
	f := func(events []bool, thresh uint8) bool {
		th := int(thresh%50) + 1
		a := New(th)
		meth := m(0)
		promotions := 0
		inv, be := 0, 0
		for _, isInvoke := range events {
			var p bool
			if isInvoke {
				p = a.OnInvoke(meth)
				inv++
			} else {
				p = a.OnBackEdge(meth, 1)
				be++
			}
			if p {
				promotions++
				if inv+be/8 < th {
					return false // promoted too early
				}
			}
		}
		if promotions > 1 {
			return false
		}
		if promotions == 0 && inv+be/8 >= th {
			return false // should have promoted
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
