// Package aos is the VM's adaptive optimization system: it watches
// method hotness (invocations and loop back-edges) and decides when a
// baseline-compiled method should be recompiled by the optimizing
// compiler. Recompilation is what makes code bodies appear at *new*
// addresses mid-run — one of the two sources of code motion (with GC)
// that VIProf's epoch code maps track.
package aos

import "viprof/internal/jvm/classes"

// DefaultThreshold is the hotness at which a method is promoted
// (invocations + back-edges/8).
const DefaultThreshold = 600

// AOS tracks hotness and recompilation decisions.
type AOS struct {
	Threshold int

	hot       map[int]int  // method index -> hotness units
	backEdges map[int]int  // sub-unit back-edge carry
	promoted  map[int]bool // already at (or queued for) opt
	decisions int
}

// New returns an AOS with the given promotion threshold (0 means
// DefaultThreshold).
func New(threshold int) *AOS {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	return &AOS{
		Threshold: threshold,
		hot:       make(map[int]int),
		backEdges: make(map[int]int),
		promoted:  make(map[int]bool),
	}
}

// OnInvoke records a method entry and reports whether the method should
// be recompiled at the optimizing level now. It returns true exactly
// once per method.
func (a *AOS) OnInvoke(m *classes.Method) bool { return a.bump(m, 1) }

// OnBackEdge records n loop back-edges (weighted down: loops are
// cheaper signals than calls) and reports whether to recompile. Back
// edges accumulate with a carry so that fewer than 8 at a time still
// eventually count.
func (a *AOS) OnBackEdge(m *classes.Method, n int) bool {
	if a.promoted[m.Index] {
		return false
	}
	a.backEdges[m.Index] += n
	units := a.backEdges[m.Index] / 8
	a.backEdges[m.Index] %= 8
	return a.bump(m, units)
}

func (a *AOS) bump(m *classes.Method, units int) bool {
	if a.promoted[m.Index] {
		return false
	}
	a.hot[m.Index] += units
	if units == 0 {
		return false
	}
	if a.hot[m.Index] >= a.Threshold {
		a.promoted[m.Index] = true
		a.decisions++
		return true
	}
	return false
}

// Promoted reports whether the method has been promoted.
func (a *AOS) Promoted(m *classes.Method) bool { return a.promoted[m.Index] }

// Hotness returns the method's accumulated hotness units.
func (a *AOS) Hotness(m *classes.Method) int { return a.hot[m.Index] }

// Decisions returns how many promotion decisions have been made.
func (a *AOS) Decisions() int { return a.decisions }
