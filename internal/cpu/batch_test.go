package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/hpc"
)

// nmiTrace records every delivered NMI exactly as the driver would see
// it: which event fired and the full interrupted snapshot.
type nmiTrace struct {
	evs   []hpc.Event
	snaps []Snapshot
}

func (tr *nmiTrace) handler(burn int) NMIHandler {
	return func(core *Core, s Snapshot, ev hpc.Event) {
		tr.evs = append(tr.evs, ev)
		tr.snaps = append(tr.snaps, s)
		if burn > 0 {
			core.ExecRange(addr.KernelBase+0x40, burn, 4, 1)
		}
	}
}

// driveStream replays one seeded instruction stream — straight-line
// batches, streaming BatchOps, memory ops, slice grants, idle gaps —
// against a core. The stream mixes every call site the batched engine
// has: ExecBatch/ExecRange (kernel, agent), BatchOp (JVM dispatch), and
// precise Exec for memory operands.
func driveStream(c *Core, seed int64) {
	r := rand.New(rand.NewSource(seed))
	pc := addr.Address(0x6000_0000)
	for step := 0; step < 400; step++ {
		switch r.Intn(10) {
		case 0:
			c.StartSlice(uint64(r.Intn(5000)))
		case 1:
			c.AdvanceIdle(uint64(r.Intn(200)))
		case 2, 3:
			// Memory op: precise path, perturbs cache + miss counters.
			c.Exec(Op{
				PC:   pc,
				Cost: uint32(1 + r.Intn(4)),
				Mem:  addr.Address(0x8000_0000 + r.Intn(1<<18)*8),
			})
			pc += 4
		case 4, 5:
			// Straight-line run, sometimes crossing pages.
			n := 1 + r.Intn(3000)
			c.ExecBatch(pc, n, 4, uint32(1+r.Intn(3)))
			pc += addr.Address(4 * n)
		default:
			// Streaming bytecode-style ops; occasional jump to a new page.
			for i := 1 + r.Intn(50); i > 0; i-- {
				c.BatchOp(pc, uint32(1+r.Intn(3)))
				pc += 4
			}
			if r.Intn(4) == 0 {
				pc = addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
			}
		}
	}
	c.FlushBatch()
}

func newBatchTestCore(periods map[hpc.Event]uint64, tr *nmiTrace, burn int, batching bool) *Core {
	bank := hpc.NewBank()
	for ev, p := range periods {
		bank.Program(ev, p)
	}
	c := New(bank, cache.DefaultHierarchy())
	c.SetNMIHandler(tr.handler(burn))
	c.SetBatching(batching)
	return c
}

// Property: batched and per-op execution of the same stream are
// bit-for-bit identical — same cycle clock, instruction count, final
// PC, slice budget, lost-NMI count, per-counter totals, and the same
// NMI sequence down to each interrupted snapshot.
func TestBatchDeterminismQuick(t *testing.T) {
	f := func(seed int64, rawPeriod uint32, burn8 uint8) bool {
		period := uint64(rawPeriod%20_000) + 50
		periods := map[hpc.Event]uint64{
			hpc.GlobalPowerEvents: period,
			hpc.BSQCacheReference: 400,
			hpc.InstrRetired:      3 * period,
		}
		burn := int(burn8 % 60)
		var trB, trP nmiTrace
		cb := newBatchTestCore(periods, &trB, burn, true)
		cp := newBatchTestCore(periods, &trP, burn, false)
		driveStream(cb, seed)
		driveStream(cp, seed)
		if cb.Cycles() != cp.Cycles() || cb.Instructions() != cp.Instructions() ||
			cb.PC() != cp.PC() || cb.SliceLeft() != cp.SliceLeft() ||
			cb.LostNMIs() != cp.LostNMIs() {
			t.Logf("state diverged: cycles %d/%d instrs %d/%d pc %x/%x slice %d/%d lost %d/%d",
				cb.Cycles(), cp.Cycles(), cb.Instructions(), cp.Instructions(),
				uint64(cb.PC()), uint64(cp.PC()), cb.SliceLeft(), cp.SliceLeft(),
				cb.LostNMIs(), cp.LostNMIs())
			return false
		}
		for ev := range periods {
			b, _ := cb.Bank.Counter(ev)
			p, _ := cp.Bank.Counter(ev)
			if b.Total() != p.Total() {
				t.Logf("%v totals diverged: %d vs %d", ev, b.Total(), p.Total())
				return false
			}
		}
		if len(trB.evs) != len(trP.evs) {
			t.Logf("NMI count diverged: %d vs %d", len(trB.evs), len(trP.evs))
			return false
		}
		for i := range trB.evs {
			if trB.evs[i] != trP.evs[i] || trB.snaps[i] != trP.snaps[i] {
				t.Logf("NMI %d diverged: %v %+v vs %v %+v",
					i, trB.evs[i], trB.snaps[i], trP.evs[i], trP.snaps[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Mid-batch scalar state must be exact: executors poll Cycles() and
// Expired() between BatchOps, so the accumulator may defer only bank
// ticks, never the clock or the slice.
func TestBatchOpEagerScalars(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 1_000_000) // far horizon: batch stays open
	c := New(bank, nil)
	c.StartSlice(10)
	for i := 0; i < 4; i++ {
		c.BatchOp(addr.Address(0x1000+i*4), 2)
	}
	if c.Cycles() != 8 || c.Instructions() != 4 || c.SliceLeft() != 2 || c.Expired() {
		t.Errorf("mid-batch scalars lag: cycles=%d instrs=%d slice=%d",
			c.Cycles(), c.Instructions(), c.SliceLeft())
	}
	// The bank is allowed to lag only until the flush.
	ctr, _ := bank.Counter(hpc.GlobalPowerEvents)
	c.FlushBatch()
	if ctr.Total() != 8 {
		t.Errorf("flushed bank total = %d, want 8", ctr.Total())
	}
	c.BatchOp(0x2000, 100)
	if !c.Expired() {
		t.Error("slice clamp not visible mid-stream")
	}
}

// An op that would overflow an armed counter must leave the batch and
// run precisely, delivering its NMI at the same instruction the per-op
// path would.
func TestBatchOpHorizonFallback(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 10)
	c := New(bank, nil)
	var pcs []addr.Address
	c.SetNMIHandler(func(_ *Core, s Snapshot, _ hpc.Event) { pcs = append(pcs, s.PC) })
	for i := 0; i < 30; i++ {
		c.BatchOp(addr.Address(0x3000+i*4), 1)
	}
	c.FlushBatch()
	want := []addr.Address{0x3000 + 9*4, 0x3000 + 19*4, 0x3000 + 29*4}
	if len(pcs) != len(want) {
		t.Fatalf("NMI pcs = %v, want %v", pcs, want)
	}
	for i := range want {
		if pcs[i] != want[i] {
			t.Errorf("NMI %d at %s, want %s", i, pcs[i], want[i])
		}
	}
}

// memStrides covers the shapes ExecMemBatch must replay exactly:
// stride 0 (one line hammered), word/line-sub strides, exactly one
// line, and line- and page-crossing jumps.
var memStrides = []uint32{0, 8, 16, 24, 64, 200, 4096}

// driveMemStream replays one seeded stream that leans on the memory
// side of the batched engine: bulk ExecMemBatch runs, streaming
// BatchMemOps with line locality, scattered precise memory ops, plus
// the instruction-side mix (ExecBatch, BatchOp, slices, idle gaps) and
// the kernel's behind-the-back L1 cold flush.
func driveMemStream(c *Core, seed int64) {
	r := rand.New(rand.NewSource(seed))
	pc := addr.Address(0x6000_0000)
	mem := addr.Address(0x8000_0000)
	for step := 0; step < 250; step++ {
		switch r.Intn(12) {
		case 0:
			c.StartSlice(uint64(r.Intn(5000)))
		case 1:
			c.AdvanceIdle(uint64(r.Intn(200)))
		case 2:
			// Scattered precise memory op.
			c.Exec(Op{
				PC:   pc,
				Cost: uint32(1 + r.Intn(4)),
				Mem:  addr.Address(0x8000_0000 + r.Intn(1<<18)*8),
			})
			pc += 4
		case 3, 4, 5:
			// Bulk memory run (arraycopy/GC-copy shape).
			n := 1 + r.Intn(2000)
			base := addr.Address(0x8000_0000 + r.Intn(1<<20)*8)
			c.ExecMemBatch(pc, n, 4, uint32(1+r.Intn(3)), base, memStrides[r.Intn(len(memStrides))])
			pc += addr.Address(4 * n)
		case 6, 7:
			// Streaming memory ops walking sequentially: line locality
			// the guaranteed-hit accumulator should exploit.
			for i := 1 + r.Intn(60); i > 0; i-- {
				c.BatchMemOp(pc, uint32(1+r.Intn(2)), mem)
				mem += addr.Address(r.Intn(16))
				pc += 4
			}
		case 8:
			n := 1 + r.Intn(1500)
			c.ExecBatch(pc, n, 4, uint32(1+r.Intn(3)))
			pc += addr.Address(4 * n)
		case 9:
			// Context-switch cold flush behind the engine's back.
			if c.Mem != nil {
				c.FlushBatch()
				c.Mem.L1.Flush()
			}
		default:
			for i := 1 + r.Intn(50); i > 0; i-- {
				c.BatchOp(pc, uint32(1+r.Intn(3)))
				pc += 4
			}
			if r.Intn(4) == 0 {
				pc = addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
			}
		}
		if r.Intn(5) == 0 {
			mem = addr.Address(0x8000_0000 + r.Intn(1<<20)*8)
		}
	}
	c.FlushBatch()
}

// Property: batched and per-op execution of the same memory-heavy
// stream are bit-for-bit identical — cycles, instructions, PC, slice,
// lost NMIs, per-counter totals (including the memory-event counters),
// cache statistics at every level, and the NMI sequence down to each
// interrupted snapshot.
func TestMemBatchDeterminismQuick(t *testing.T) {
	f := func(seed int64, rawPeriod uint32, burn8 uint8) bool {
		period := uint64(rawPeriod%20_000) + 50
		periods := map[hpc.Event]uint64{
			hpc.GlobalPowerEvents: period,
			hpc.BSQCacheReference: 300,
			hpc.DTLBMiss:          200,
			hpc.InstrRetired:      3 * period,
		}
		burn := int(burn8 % 60)
		var trB, trP nmiTrace
		cb := newBatchTestCore(periods, &trB, burn, true)
		cp := newBatchTestCore(periods, &trP, burn, false)
		driveMemStream(cb, seed)
		driveMemStream(cp, seed)
		if cb.Cycles() != cp.Cycles() || cb.Instructions() != cp.Instructions() ||
			cb.PC() != cp.PC() || cb.SliceLeft() != cp.SliceLeft() ||
			cb.LostNMIs() != cp.LostNMIs() {
			t.Logf("state diverged: cycles %d/%d instrs %d/%d pc %x/%x slice %d/%d lost %d/%d",
				cb.Cycles(), cp.Cycles(), cb.Instructions(), cp.Instructions(),
				uint64(cb.PC()), uint64(cp.PC()), cb.SliceLeft(), cp.SliceLeft(),
				cb.LostNMIs(), cp.LostNMIs())
			return false
		}
		for ev := range periods {
			b, _ := cb.Bank.Counter(ev)
			p, _ := cp.Bank.Counter(ev)
			if b.Total() != p.Total() {
				t.Logf("%v totals diverged: %d vs %d", ev, b.Total(), p.Total())
				return false
			}
		}
		for _, lvl := range []struct {
			name string
			b, p *cache.Cache
		}{
			{"L1", cb.Mem.L1, cp.Mem.L1},
			{"L2", cb.Mem.L2, cp.Mem.L2},
			{"DTLB", cb.Mem.DTLB, cp.Mem.DTLB},
			{"ITLB", cb.Mem.ITLB, cp.Mem.ITLB},
		} {
			ba, bm := lvl.b.Stats()
			pa, pm := lvl.p.Stats()
			if ba != pa || bm != pm {
				t.Logf("%s stats diverged: %d/%d vs %d/%d", lvl.name, ba, bm, pa, pm)
				return false
			}
		}
		if len(trB.evs) != len(trP.evs) {
			t.Logf("NMI count diverged: %d vs %d", len(trB.evs), len(trP.evs))
			return false
		}
		for i := range trB.evs {
			if trB.evs[i] != trP.evs[i] || trB.snaps[i] != trP.snaps[i] {
				t.Logf("NMI %d diverged: %v %+v vs %v %+v",
					i, trB.evs[i], trB.snaps[i], trP.evs[i], trP.snaps[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Samples must land on the exact op that crossed the counter period:
// with a BSQ period of 2, every second L2 miss of a cold sequential
// run delivers an NMI whose snapshot PC is the missing op's PC —
// identical between the bulk-replay and per-op paths.
func TestMemBatchSamplePCs(t *testing.T) {
	run := func(batching bool) []addr.Address {
		bank := hpc.NewBank()
		bank.Program(hpc.BSQCacheReference, 2)
		c := New(bank, cache.DefaultHierarchy())
		var pcs []addr.Address
		c.SetNMIHandler(func(_ *Core, s Snapshot, _ hpc.Event) { pcs = append(pcs, s.PC) })
		c.SetBatching(batching)
		// 256 ops striding one op per 16 bytes: a cold L2 miss every
		// 8th op (128-byte L2 lines).
		c.ExecMemBatch(0x7000_0000, 256, 4, 1, 0x9000_0000, 16)
		c.FlushBatch()
		return pcs
	}
	got, want := run(true), run(false)
	if len(got) == 0 {
		t.Fatal("no NMIs delivered")
	}
	if len(got) != len(want) {
		t.Fatalf("NMI count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("NMI %d at %s, want %s", i, got[i], want[i])
		}
	}
}

// BatchMemOp must accumulate only provable hits: a sequential walk
// touches a new line every 8th word-op, and those ops (plus anything
// after a cold flush) take the precise path, keeping the miss sequence
// and counter state identical to per-op execution.
func TestBatchMemOpLineLocality(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 1_000_000)
	c := New(bank, cache.DefaultHierarchy())
	for i := 0; i < 64; i++ {
		c.BatchMemOp(addr.Address(0x7000_0000+i*4), 1, addr.Address(0x9000_0000+i*8))
	}
	c.FlushBatch()
	acc, misses := c.Mem.L1.Stats()
	if acc != 64 {
		t.Errorf("L1 accesses = %d, want 64 (deferred touches must still count)", acc)
	}
	if misses != 8 {
		t.Errorf("L1 misses = %d, want 8 (one per 64-byte line)", misses)
	}
}
