// Package cpu simulates a single processor core at micro-op granularity.
// Executors (native code models, the JVM) feed the core a stream of
// micro-ops; each op advances the cycle clock, probes the cache
// hierarchy, and ticks the hardware performance counters. When a counter
// overflows, the core raises a non-maskable interrupt: the registered
// handler runs immediately with a snapshot of the interrupted
// instruction, exactly the information OProfile's NMI handler reads from
// the trap frame (paper §3).
//
// The handler itself may execute micro-ops on the core (its cost is
// simulated execution at kernel addresses), so profiling overhead is
// endogenous: faster sampling really does slow the simulated system
// down, which is what Figure 2 of the paper measures.
package cpu

import (
	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/hpc"
)

// ClockHz is the simulated core frequency. The paper's testbed prose
// says "3.4MHz" (an obvious typo for GHz); we adopt the literal value as
// the simulated clock so that full-length benchmark runs are tractable
// while the reported "seconds" still match Figure 3.
const ClockHz = 3_400_000

// Seconds converts a cycle count to simulated wall-clock seconds.
func Seconds(cycles uint64) float64 { return float64(cycles) / ClockHz }

// Op is one micro-op: an instruction executed at PC costing Cost cycles,
// optionally touching memory at Mem (0 means no memory operand; the
// simulated layout never maps page zero).
type Op struct {
	PC    addr.Address
	Cost  uint32
	Mem   addr.Address
	Store bool
}

// Context identifies what the core is running, for sample attribution.
type Context struct {
	PID    int
	Kernel bool // privilege mode
}

// Snapshot captures the architectural state the NMI handler sees: the
// interrupted program counter and context, plus the cycle time and the
// CPU the overflow fired on.
type Snapshot struct {
	PC     addr.Address
	Ctx    Context
	Cycles uint64
	CPU    int
}

// NMIHandler services a counter overflow. It runs in interrupt context;
// ops it executes are charged to the core (and can themselves be
// sampled by a subsequent overflow).
type NMIHandler func(core *Core, s Snapshot, ev hpc.Event)

// Core is the simulated processor.
type Core struct {
	Bank *hpc.Bank
	Mem  *cache.Hierarchy

	id      int // CPU number on the machine (0 on single-core)
	cycles  uint64
	instrs  uint64
	ctx     Context
	pc      addr.Address
	handler NMIHandler

	inNMI   bool
	pending []pendingNMI
	lost    uint64 // NMIs dropped because the latch was full

	slice uint64 // remaining cycle budget for the current scheduling slice

	noBatch bool     // disables the event-horizon fast path (ablation/verification)
	bat     batchAcc // open micro-op accumulator (see BatchOp)

	evBuf  []cache.DataEvent // reusable DataRun/DataBatch scratch
	memBuf []addr.Address    // reusable nonzero-operand gather for ExecScatter
	memIdx []int32           // memBuf position -> op index within the scatter run
}

// batchAcc is the streaming half of the batched execution engine: a run
// of straight-line, no-memory micro-ops whose counter ticks are
// provably overflow-free and therefore deferred to one bulk Tick at
// flush time. Cycle clock, instruction count, PC and slice budget are
// updated eagerly per op, so every externally observable scalar
// (Cycles, Instructions, PC, Expired) stays exact while the batch is
// open; only the counter bank lags, bounded by the event horizon that
// guarantees no counter can cross its period before the flush.
type batchAcc struct {
	active   bool
	pageOK   bool   // run must stay on `page` (an ITLB is modelled)
	page     uint64 // instruction page all batched ops fetch from
	count    uint64 // deferred INSTR_RETIRED ticks
	cost     uint64 // deferred GLOBAL_POWER_EVENTS ticks
	opsLeft  uint64 // remaining op headroom before any armed counter could overflow
	costLeft uint64 // remaining cycle headroom likewise

	// Deferred data-cache recency updates for BatchMemOp: dtouch ops
	// were proven guaranteed L1+DTLB hits (cache.Hierarchy.DataFree) at
	// addresses on the line/page of daddr; the probes they stand for
	// are replayed as bulk recency arithmetic at flush time.
	dtouch uint32
	daddr  addr.Address
}

// maxLatched bounds how many overflow NMIs can be latched while one is
// in service. Real hardware latches exactly one; we allow a few to keep
// multi-counter bursts honest, and count the rest as lost. The bound is
// what prevents a sampling period shorter than the handler cost from
// livelocking the simulation (real systems NMI-storm instead).
const maxLatched = 4

type pendingNMI struct {
	snap Snapshot
	ev   hpc.Event
}

// New returns a core with the given counter bank and cache hierarchy.
// Either may be nil for tests that don't need them.
func New(bank *hpc.Bank, mem *cache.Hierarchy) *Core {
	if bank == nil {
		bank = hpc.NewBank()
	}
	c := &Core{Bank: bank, Mem: mem}
	bank.OnOverflow = c.onOverflow
	return c
}

// NewWithID is New for a core of an SMP machine: id is the CPU number
// samples taken on this core carry.
func NewWithID(id int, bank *hpc.Bank, mem *cache.Hierarchy) *Core {
	c := New(bank, mem)
	c.id = id
	return c
}

// ID returns the CPU number.
func (c *Core) ID() int { return c.id }

// SetID assigns the CPU number; the kernel numbers cores at machine
// construction.
func (c *Core) SetID(id int) { c.id = id }

// SetNMIHandler installs the overflow handler (the profiler driver).
// A nil handler drops overflows on the floor.
func (c *Core) SetNMIHandler(h NMIHandler) { c.handler = h }

// SetContext tells the core what is about to run; the kernel calls this
// on context switch and at user/kernel transitions.
func (c *Core) SetContext(ctx Context) { c.ctx = ctx }

// Context returns the current execution context.
func (c *Core) Context() Context { return c.ctx }

// Cycles returns the core's cycle clock.
func (c *Core) Cycles() uint64 { return c.cycles }

// Instructions returns the number of micro-ops executed.
func (c *Core) Instructions() uint64 { return c.instrs }

// PC returns the most recently executed program counter.
func (c *Core) PC() addr.Address { return c.pc }

// Exec runs one micro-op. It advances time, ticks counters, and may
// deliver NMIs before returning.
func (c *Core) Exec(op Op) {
	if c.bat.active {
		c.FlushBatch()
	}
	c.pc = op.PC
	c.instrs++
	cost := uint64(op.Cost)
	if c.Mem != nil {
		if extra, imiss := c.Mem.AccessInstr(op.PC); imiss {
			cost += uint64(extra)
			c.Bank.Tick(hpc.ITLBMiss, 1)
		}
		if op.Mem != 0 {
			if extra, dmiss := c.Mem.AccessData(op.Mem); dmiss {
				cost += uint64(extra)
				c.Bank.Tick(hpc.DTLBMiss, 1)
			}
			extra, l2miss, coh := c.Mem.Access(op.Mem)
			cost += uint64(extra)
			if l2miss {
				c.Bank.Tick(hpc.BSQCacheReference, 1)
			}
			if coh {
				c.Bank.Tick(hpc.CoherencyTransfers, 1)
			}
			if op.Store {
				c.Mem.MarkWrite(op.Mem)
			}
		}
	}
	c.cycles += cost
	if c.slice >= cost {
		c.slice -= cost
	} else {
		c.slice = 0
	}
	c.Bank.Tick(hpc.InstrRetired, 1)
	c.Bank.Tick(hpc.GlobalPowerEvents, cost)
	c.drainPending()
}

// SetBatching toggles the event-horizon fast path. Batching is on by
// default; turning it off forces every micro-op through the precise
// per-op path. It exists for the determinism tests and ablation
// benchmarks that prove batched and per-op execution are bit-for-bit
// identical.
func (c *Core) SetBatching(enabled bool) {
	c.FlushBatch()
	c.noBatch = !enabled
}

// Batching reports whether the event-horizon fast path is enabled.
func (c *Core) Batching() bool { return !c.noBatch }

// ExecRange executes n sequential micro-ops walking PCs through
// [start, start+n*stride) at the given per-op cost, with no memory
// operands. It models straight-line native code cheaply and retires the
// run through the batched engine (see ExecBatch).
func (c *Core) ExecRange(start addr.Address, n int, stride uint32, cost uint32) {
	c.ExecBatch(start, n, stride, cost)
}

// ExecBatch is the event-horizon fast path for a uniform straight-line
// run: n micro-ops at PCs start, start+stride, ... each costing `cost`
// cycles with no memory operand. It computes the distance (in ops) to
// the nearest pending event — counter overflow across the armed bank,
// scheduling-slice expiry, or the cache model's next instruction-side
// interaction (an ITLB probe at a page crossing) — and retires
// everything short of that horizon with O(1) bookkeeping: one bulk
// cycle/instruction advance and one bulk counter tick. Ops at or past a
// horizon fall back to the precise per-op path, so NMI program
// counters, latching, skid and miss sequences are bit-for-bit identical
// to per-op execution.
func (c *Core) ExecBatch(start addr.Address, n int, stride uint32, cost uint32) {
	pc := start
	if c.noBatch || cost == 0 {
		for i := 0; i < n; i++ {
			c.Exec(Op{PC: pc, Cost: cost})
			pc += addr.Address(stride)
		}
		return
	}
	if c.bat.active {
		c.FlushBatch()
	}
	for n > 0 {
		k := c.bulkLen(pc, n, stride, cost)
		if k == 0 {
			// At an event horizon: one precise op (which may probe the
			// ITLB, overflow a counter, clamp the slice, deliver NMIs).
			c.Exec(Op{PC: pc, Cost: cost})
			pc += addr.Address(stride)
			n--
			continue
		}
		// O(1) retirement of k ops: no counter can overflow, the run
		// stays on the current instruction page, and the slice cannot
		// cross zero — so bulk state updates are exactly the sum of the
		// per-op updates.
		total := uint64(k) * uint64(cost)
		c.pc = pc + addr.Address(stride)*addr.Address(k-1)
		c.instrs += uint64(k)
		c.cycles += total
		if c.slice >= total {
			c.slice -= total
		} else {
			c.slice = 0
		}
		c.Bank.Tick(hpc.InstrRetired, uint64(k))
		c.Bank.Tick(hpc.GlobalPowerEvents, total)
		pc += addr.Address(stride) * addr.Address(k)
		n -= k
	}
}

// bulkLen returns how many ops of the uniform run starting at pc can
// retire in one O(1) bulk step — the event-horizon distance, capped at
// n. A zero return means the next op must take the precise path.
func (c *Core) bulkLen(pc addr.Address, n int, stride uint32, cost uint32) int {
	// A latched-but-undelivered NMI must drain at the next instruction
	// boundary, exactly where the per-op path would deliver it.
	if !c.inNMI && len(c.pending) > 0 {
		return 0
	}
	k := uint64(n)
	if c.Mem != nil {
		free := c.Mem.InstrRun(pc, stride, k)
		if free == 0 {
			return 0 // the next fetch needs an ITLB probe
		}
		if free < k {
			k = free
		}
	}
	if h := c.Bank.NextOverflowIn(hpc.InstrRetired); h < k {
		k = h
	}
	if h := c.Bank.NextOverflowIn(hpc.GlobalPowerEvents); h != hpc.NoLimit {
		byCost := h
		if cost != 1 {
			byCost = h / uint64(cost)
		}
		if byCost < k {
			k = byCost
		}
	}
	// Slice: while the budget is positive the per-op path subtracts
	// exactly `cost`; the clamp-to-zero op must run precisely. An
	// already-expired slice imposes no horizon (it stays 0).
	if c.slice > 0 {
		bySlice := c.slice
		if cost != 1 {
			bySlice = c.slice / uint64(cost)
		}
		if bySlice < k {
			k = bySlice
		}
	}
	return int(k)
}

// ExecMemBatch is the event-horizon fast path for a uniform run of
// memory micro-ops: n ops at PCs start, start+stride, ... each costing
// `cost` cycles and touching memory at mem, mem+memStride, ... It is
// bit-for-bit identical to the per-op loop of Exec calls — same
// cycles, counter state, NMI program counters, cache state, and miss
// sequence — but replays the data-access run through the cache model
// once up front (cache.Hierarchy.DataRun, one probe per line segment),
// then retires the uniform guaranteed-hit stretches between recorded
// events with O(1) bookkeeping per event horizon. Ops that carry a
// memory event, or that sit at a horizon (counter overflow, page
// crossing, slice expiry, pending NMI), retire through the precise
// path with their pre-resolved memory outcome, so samples land on the
// exact op.
//
// The upfront replay is sound because nothing else touches the data
// caches between the ops of the run: NMI handlers raised mid-run
// execute instruction-only kernel work (fetches touch only the ITLB).
// Handlers must not issue data-memory ops — the same contract
// cache.Hierarchy.DataRun documents.
func (c *Core) ExecMemBatch(start addr.Address, n int, stride uint32, cost uint32, mem addr.Address, memStride uint32) {
	if mem == 0 {
		c.ExecBatch(start, n, stride, cost)
		return
	}
	if c.noBatch || c.Mem == nil || cost == 0 {
		pc, m := start, mem
		for i := 0; i < n; i++ {
			c.Exec(Op{PC: pc, Cost: cost, Mem: m})
			pc += addr.Address(stride)
			m += addr.Address(memStride)
		}
		return
	}
	if c.bat.active {
		c.FlushBatch()
	}
	c.evBuf = c.Mem.DataRun(mem, memStride, n, c.evBuf[:0])
	events := c.evBuf
	hit := c.Mem.HitCost()
	eff := cost + hit // effective per-op cost of a guaranteed hit
	pc := start
	for i, ei := 0, 0; i < n; {
		next := n
		if ei < len(events) {
			next = events[ei].Index
		}
		if i == next {
			// The memory system charged this op beyond a plain hit (or
			// raised an event): precise retirement at the exact PC.
			ev := events[ei]
			ei++
			c.execResolved(pc, cost, ev.Extra, ev.DTLBMiss, ev.L2Miss, ev.Coh)
			i++
			pc += addr.Address(stride)
			continue
		}
		k := c.bulkLen(pc, next-i, stride, eff)
		if k == 0 {
			// At an event horizon: one precise op (guaranteed hit).
			c.execResolved(pc, cost, hit, false, false, false)
			i++
			pc += addr.Address(stride)
			continue
		}
		total := uint64(k) * uint64(eff)
		c.pc = pc + addr.Address(stride)*addr.Address(k-1)
		c.instrs += uint64(k)
		c.cycles += total
		if c.slice >= total {
			c.slice -= total
		} else {
			c.slice = 0
		}
		c.Bank.Tick(hpc.InstrRetired, uint64(k))
		c.Bank.Tick(hpc.GlobalPowerEvents, total)
		pc += addr.Address(stride) * addr.Address(k)
		i += k
	}
}

// execResolved retires one micro-op whose data-memory outcome was
// pre-resolved by DataRun: extra memory cycles and which events to
// tick. It mirrors Exec exactly — same tick order (ITLB, DTLB, BSQ),
// same cycle-snapshot timing for NMI latching — with the data probes
// replaced by their recorded outcome (the replay already applied their
// state changes). The instruction side stays live: handlers run at
// kernel PCs and move the ITLB, so fetch accounting cannot be
// precomputed.
func (c *Core) execResolved(pc addr.Address, cost uint32, extra uint32, dtlbMiss, l2miss, coh bool) {
	if c.bat.active {
		c.FlushBatch()
	}
	c.pc = pc
	c.instrs++
	total := uint64(cost)
	if c.Mem != nil {
		if iextra, imiss := c.Mem.AccessInstr(pc); imiss {
			total += uint64(iextra)
			c.Bank.Tick(hpc.ITLBMiss, 1)
		}
	}
	if dtlbMiss {
		c.Bank.Tick(hpc.DTLBMiss, 1)
	}
	total += uint64(extra)
	if l2miss {
		c.Bank.Tick(hpc.BSQCacheReference, 1)
	}
	if coh {
		c.Bank.Tick(hpc.CoherencyTransfers, 1)
	}
	c.cycles += total
	if c.slice >= total {
		c.slice -= total
	} else {
		c.slice = 0
	}
	c.Bank.Tick(hpc.InstrRetired, 1)
	c.Bank.Tick(hpc.GlobalPowerEvents, total)
	c.drainPending()
}

// BatchOp is the streaming form of ExecBatch for executors that
// discover ops one at a time (the JVM's bytecode engine): it retires a
// single no-memory micro-op, accumulating its counter ticks into an
// open batch while the op provably cannot overflow any armed counter
// and stays on the current instruction page. The cycle clock,
// instruction count, PC and slice budget advance eagerly, so callers
// may consult Cycles()/Expired() between ops; only the bank ticks are
// deferred, flushed at the next Exec/ExecBatch/AdvanceIdle/FlushBatch.
// Ops at an event horizon are routed through the precise Exec path.
func (c *Core) BatchOp(pc addr.Address, cost uint32) {
	if c.noBatch {
		c.Exec(Op{PC: pc, Cost: cost})
		return
	}
	b := &c.bat
	cost64 := uint64(cost)
	if b.active {
		if (b.pageOK && uint64(pc)>>12 != b.page) || b.opsLeft == 0 || b.costLeft < cost64 {
			c.FlushBatch()
			c.Exec(Op{PC: pc, Cost: cost})
			return
		}
	} else if !c.openBatch(pc, cost64) {
		c.Exec(Op{PC: pc, Cost: cost})
		return
	}
	b.count++
	b.cost += cost64
	b.opsLeft--
	b.costLeft -= cost64
	c.pc = pc
	c.instrs++
	c.cycles += cost64
	if c.slice >= cost64 {
		c.slice -= cost64
	} else {
		c.slice = 0
	}
}

// BatchMemOp is the streaming form of ExecMemBatch for executors that
// discover memory ops one at a time (the JVM's bytecode engine): it
// retires a single micro-op touching mem, accumulating it into the
// open batch when the access is provably a plain L1+DTLB hit
// (cache.Hierarchy.DataFree — same line and page as the previous data
// access, no flush since) and the op clears the usual event horizons.
// The cache probes such an op stands for are deferred as recency
// arithmetic applied at flush time; everything observable — cycles,
// instruction count, PC, slice — advances eagerly, exactly as BatchOp.
// Ops whose memory outcome cannot be proven take the precise Exec
// path, which performs the probes and records the miss sequence
// exactly as before (and re-establishes the residency tracking for
// the ops that follow).
func (c *Core) BatchMemOp(pc addr.Address, cost uint32, mem addr.Address) {
	if mem == 0 {
		c.BatchOp(pc, cost)
		return
	}
	if c.noBatch || c.Mem == nil || !c.Mem.DataFree(mem) {
		c.Exec(Op{PC: pc, Cost: cost, Mem: mem})
		return
	}
	eff := uint64(cost) + uint64(c.Mem.HitCost())
	b := &c.bat
	if b.active {
		if (b.pageOK && uint64(pc)>>12 != b.page) || b.opsLeft == 0 || b.costLeft < eff {
			c.FlushBatch()
			c.Exec(Op{PC: pc, Cost: cost, Mem: mem})
			return
		}
	} else if !c.openBatch(pc, eff) {
		c.Exec(Op{PC: pc, Cost: cost, Mem: mem})
		return
	}
	b.count++
	b.cost += eff
	b.opsLeft--
	b.costLeft -= eff
	b.dtouch++
	b.daddr = mem
	c.pc = pc
	c.instrs++
	c.cycles += eff
	if c.slice >= eff {
		c.slice -= eff
	} else {
		c.slice = 0
	}
}

// BatchStoreOp is BatchMemOp for a micro-op that *writes* mem: the
// retirement is identical, but the store is recorded in the shared
// coherency directory so another core's next miss on the line pays the
// cross-core transfer. A guaranteed-hit store can still accumulate into
// the open batch — the line is resident in our L1, so ownership changes
// hands without an observable event on this core — but the directory
// mark must land eagerly, before any other core can access the line.
// On a single-core hierarchy (nil directory) this is exactly
// BatchMemOp.
func (c *Core) BatchStoreOp(pc addr.Address, cost uint32, mem addr.Address) {
	if c.Mem == nil || mem == 0 {
		c.BatchOp(pc, cost)
		return
	}
	if c.noBatch || !c.Mem.DataFree(mem) {
		c.Exec(Op{PC: pc, Cost: cost, Mem: mem, Store: true})
		return
	}
	c.Mem.MarkWrite(mem)
	c.BatchMemOp(pc, cost, mem)
}

// openBatch starts an accumulation run at pc, capturing the event
// horizon from the counter bank. It refuses (returning false) when the
// op cannot be proven event-free: a pending NMI must drain, the fetch
// needs an ITLB probe, or an armed counter is within one op of
// overflow.
func (c *Core) openBatch(pc addr.Address, cost64 uint64) bool {
	if !c.inNMI && len(c.pending) > 0 {
		return false
	}
	b := &c.bat
	b.pageOK = false
	if c.Mem != nil {
		if !c.Mem.InstrFree(pc) {
			return false
		}
		if c.Mem.PageConstrained() {
			b.pageOK = true
			b.page = uint64(pc) >> 12
		}
	}
	b.opsLeft = c.Bank.NextOverflowIn(hpc.InstrRetired)
	b.costLeft = c.Bank.NextOverflowIn(hpc.GlobalPowerEvents)
	if b.opsLeft == 0 || b.costLeft < cost64 {
		return false
	}
	b.active = true
	b.count = 0
	b.cost = 0
	b.dtouch = 0
	return true
}

// FlushBatch closes the open accumulation run, applying its deferred
// counter ticks in one bulk update. The event horizon captured at open
// time guarantees the bulk Tick cannot overflow, so counter state after
// the flush is identical to per-op ticking. The kernel flushes at every
// scheduler boundary; Exec, ExecBatch and AdvanceIdle flush implicitly.
func (c *Core) FlushBatch() {
	b := &c.bat
	if !b.active {
		return
	}
	b.active = false
	if b.dtouch > 0 {
		// Replay the deferred guaranteed-hit probes as bulk recency
		// updates before anything else can probe the data caches.
		c.Mem.DataTouch(b.daddr, b.dtouch)
		b.dtouch = 0
	}
	if b.count > 0 {
		c.Bank.Tick(hpc.InstrRetired, b.count)
		c.Bank.Tick(hpc.GlobalPowerEvents, b.cost)
	}
	b.count = 0
	b.cost = 0
}

// AdvanceIdle moves the clock forward without executing instructions
// (a halted core). GLOBAL_POWER_EVENTS counts non-halted cycles only,
// so no counters tick.
func (c *Core) AdvanceIdle(cycles uint64) {
	if c.bat.active {
		c.FlushBatch()
	}
	c.cycles += cycles
}

// onOverflow is the Bank's overflow callback: it latches an NMI for the
// interrupted instruction. Delivery happens at the end of the current
// Exec (or at the end of the outermost Exec, if the overflow occurred
// inside a handler).
func (c *Core) onOverflow(ctr *hpc.Counter) {
	if len(c.pending) >= maxLatched {
		c.lost++
		return
	}
	snap := Snapshot{PC: c.pc, Ctx: c.ctx, Cycles: c.cycles, CPU: c.id}
	c.pending = append(c.pending, pendingNMI{snap, ctr.Event})
}

func (c *Core) deliver(snap Snapshot, ev hpc.Event) {
	if c.handler == nil {
		return
	}
	c.inNMI = true
	prev := c.ctx
	c.handler(c, snap, ev)
	c.ctx = prev
	c.inNMI = false
}

// drainPending delivers latched NMIs, including ones latched during the
// deliveries themselves (a handler that overflows the counter again),
// up to a fixed per-Exec budget. The budget is what prevents a sampling
// period shorter than the handler cost from livelocking the core: the
// storm is throttled to a bounded number of handler runs per executed
// instruction, and the interrupted program keeps making progress.
func (c *Core) drainPending() {
	if c.inNMI {
		return
	}
	for budget := 2 * maxLatched; len(c.pending) > 0 && budget > 0; budget-- {
		p := c.pending[0]
		c.pending = c.pending[1:]
		c.deliver(p.snap, p.ev)
	}
}

// LostNMIs returns how many overflows were dropped because the NMI
// latch was full.
func (c *Core) LostNMIs() uint64 { return c.lost }

// StartSlice grants the current executor a cycle budget; Expired
// reports when it is exhausted. The kernel scheduler uses this to bound
// how long a process runs before the next scheduling decision.
func (c *Core) StartSlice(cycles uint64) { c.slice = cycles }

// SliceLeft returns the remaining budget.
func (c *Core) SliceLeft() uint64 { return c.slice }

// Expired reports whether the current slice budget has run out.
func (c *Core) Expired() bool { return c.slice == 0 }
