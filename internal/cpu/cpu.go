// Package cpu simulates a single processor core at micro-op granularity.
// Executors (native code models, the JVM) feed the core a stream of
// micro-ops; each op advances the cycle clock, probes the cache
// hierarchy, and ticks the hardware performance counters. When a counter
// overflows, the core raises a non-maskable interrupt: the registered
// handler runs immediately with a snapshot of the interrupted
// instruction, exactly the information OProfile's NMI handler reads from
// the trap frame (paper §3).
//
// The handler itself may execute micro-ops on the core (its cost is
// simulated execution at kernel addresses), so profiling overhead is
// endogenous: faster sampling really does slow the simulated system
// down, which is what Figure 2 of the paper measures.
package cpu

import (
	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/hpc"
)

// ClockHz is the simulated core frequency. The paper's testbed prose
// says "3.4MHz" (an obvious typo for GHz); we adopt the literal value as
// the simulated clock so that full-length benchmark runs are tractable
// while the reported "seconds" still match Figure 3.
const ClockHz = 3_400_000

// Seconds converts a cycle count to simulated wall-clock seconds.
func Seconds(cycles uint64) float64 { return float64(cycles) / ClockHz }

// Op is one micro-op: an instruction executed at PC costing Cost cycles,
// optionally touching memory at Mem (0 means no memory operand; the
// simulated layout never maps page zero).
type Op struct {
	PC    addr.Address
	Cost  uint32
	Mem   addr.Address
	Store bool
}

// Context identifies what the core is running, for sample attribution.
type Context struct {
	PID    int
	Kernel bool // privilege mode
}

// Snapshot captures the architectural state the NMI handler sees: the
// interrupted program counter and context, plus the cycle time.
type Snapshot struct {
	PC     addr.Address
	Ctx    Context
	Cycles uint64
}

// NMIHandler services a counter overflow. It runs in interrupt context;
// ops it executes are charged to the core (and can themselves be
// sampled by a subsequent overflow).
type NMIHandler func(core *Core, s Snapshot, ev hpc.Event)

// Core is the simulated processor.
type Core struct {
	Bank *hpc.Bank
	Mem  *cache.Hierarchy

	cycles  uint64
	instrs  uint64
	ctx     Context
	pc      addr.Address
	handler NMIHandler

	inNMI   bool
	pending []pendingNMI
	lost    uint64 // NMIs dropped because the latch was full

	slice uint64 // remaining cycle budget for the current scheduling slice
}

// maxLatched bounds how many overflow NMIs can be latched while one is
// in service. Real hardware latches exactly one; we allow a few to keep
// multi-counter bursts honest, and count the rest as lost. The bound is
// what prevents a sampling period shorter than the handler cost from
// livelocking the simulation (real systems NMI-storm instead).
const maxLatched = 4

type pendingNMI struct {
	snap Snapshot
	ev   hpc.Event
}

// New returns a core with the given counter bank and cache hierarchy.
// Either may be nil for tests that don't need them.
func New(bank *hpc.Bank, mem *cache.Hierarchy) *Core {
	if bank == nil {
		bank = hpc.NewBank()
	}
	c := &Core{Bank: bank, Mem: mem}
	bank.OnOverflow = c.onOverflow
	return c
}

// SetNMIHandler installs the overflow handler (the profiler driver).
// A nil handler drops overflows on the floor.
func (c *Core) SetNMIHandler(h NMIHandler) { c.handler = h }

// SetContext tells the core what is about to run; the kernel calls this
// on context switch and at user/kernel transitions.
func (c *Core) SetContext(ctx Context) { c.ctx = ctx }

// Context returns the current execution context.
func (c *Core) Context() Context { return c.ctx }

// Cycles returns the core's cycle clock.
func (c *Core) Cycles() uint64 { return c.cycles }

// Instructions returns the number of micro-ops executed.
func (c *Core) Instructions() uint64 { return c.instrs }

// PC returns the most recently executed program counter.
func (c *Core) PC() addr.Address { return c.pc }

// Exec runs one micro-op. It advances time, ticks counters, and may
// deliver NMIs before returning.
func (c *Core) Exec(op Op) {
	c.pc = op.PC
	c.instrs++
	cost := uint64(op.Cost)
	if c.Mem != nil {
		if extra, imiss := c.Mem.AccessInstr(op.PC); imiss {
			cost += uint64(extra)
			c.Bank.Tick(hpc.ITLBMiss, 1)
		}
		if op.Mem != 0 {
			if extra, dmiss := c.Mem.AccessData(op.Mem); dmiss {
				cost += uint64(extra)
				c.Bank.Tick(hpc.DTLBMiss, 1)
			}
			extra, l2miss := c.Mem.Access(op.Mem)
			cost += uint64(extra)
			if l2miss {
				c.Bank.Tick(hpc.BSQCacheReference, 1)
			}
		}
	}
	c.cycles += cost
	if c.slice >= cost {
		c.slice -= cost
	} else {
		c.slice = 0
	}
	c.Bank.Tick(hpc.InstrRetired, 1)
	c.Bank.Tick(hpc.GlobalPowerEvents, cost)
	c.drainPending()
}

// ExecRange is a convenience that executes n sequential micro-ops
// walking PCs through [start, start+n*stride) at the given per-op cost,
// with no memory operands. It models straight-line native code cheaply.
func (c *Core) ExecRange(start addr.Address, n int, stride uint32, cost uint32) {
	pc := start
	for i := 0; i < n; i++ {
		c.Exec(Op{PC: pc, Cost: cost})
		pc += addr.Address(stride)
	}
}

// AdvanceIdle moves the clock forward without executing instructions
// (a halted core). GLOBAL_POWER_EVENTS counts non-halted cycles only,
// so no counters tick.
func (c *Core) AdvanceIdle(cycles uint64) { c.cycles += cycles }

// onOverflow is the Bank's overflow callback: it latches an NMI for the
// interrupted instruction. Delivery happens at the end of the current
// Exec (or at the end of the outermost Exec, if the overflow occurred
// inside a handler).
func (c *Core) onOverflow(ctr *hpc.Counter) {
	if len(c.pending) >= maxLatched {
		c.lost++
		return
	}
	snap := Snapshot{PC: c.pc, Ctx: c.ctx, Cycles: c.cycles}
	c.pending = append(c.pending, pendingNMI{snap, ctr.Event})
}

func (c *Core) deliver(snap Snapshot, ev hpc.Event) {
	if c.handler == nil {
		return
	}
	c.inNMI = true
	prev := c.ctx
	c.handler(c, snap, ev)
	c.ctx = prev
	c.inNMI = false
}

// drainPending delivers latched NMIs, including ones latched during the
// deliveries themselves (a handler that overflows the counter again),
// up to a fixed per-Exec budget. The budget is what prevents a sampling
// period shorter than the handler cost from livelocking the core: the
// storm is throttled to a bounded number of handler runs per executed
// instruction, and the interrupted program keeps making progress.
func (c *Core) drainPending() {
	if c.inNMI {
		return
	}
	for budget := 2 * maxLatched; len(c.pending) > 0 && budget > 0; budget-- {
		p := c.pending[0]
		c.pending = c.pending[1:]
		c.deliver(p.snap, p.ev)
	}
}

// LostNMIs returns how many overflows were dropped because the NMI
// latch was full.
func (c *Core) LostNMIs() uint64 { return c.lost }

// StartSlice grants the current executor a cycle budget; Expired
// reports when it is exhausted. The kernel scheduler uses this to bound
// how long a process runs before the next scheduling decision.
func (c *Core) StartSlice(cycles uint64) { c.slice = cycles }

// SliceLeft returns the remaining budget.
func (c *Core) SliceLeft() uint64 { return c.slice }

// Expired reports whether the current slice budget has run out.
func (c *Core) Expired() bool { return c.slice == 0 }
