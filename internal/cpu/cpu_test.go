package cpu

import (
	"testing"
	"testing/quick"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/hpc"
)

func TestSeconds(t *testing.T) {
	if s := Seconds(ClockHz); s != 1.0 {
		t.Errorf("Seconds(ClockHz) = %v, want 1", s)
	}
	if s := Seconds(ClockHz / 2); s != 0.5 {
		t.Errorf("half = %v", s)
	}
}

func TestExecAdvancesClock(t *testing.T) {
	c := New(nil, nil)
	c.Exec(Op{PC: 0x1000, Cost: 3})
	c.Exec(Op{PC: 0x1004, Cost: 2})
	if c.Cycles() != 5 {
		t.Errorf("cycles = %d, want 5", c.Cycles())
	}
	if c.Instructions() != 2 {
		t.Errorf("instrs = %d, want 2", c.Instructions())
	}
	if c.PC() != 0x1004 {
		t.Errorf("pc = %s", c.PC())
	}
	c.AdvanceIdle(100)
	if c.Cycles() != 105 {
		t.Errorf("idle advance: cycles = %d", c.Cycles())
	}
}

func TestMemoryOpsTickCacheAndMissCounter(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.BSQCacheReference, 1) // overflow on every miss
	c := New(bank, cache.DefaultHierarchy())
	var misses int
	c.SetNMIHandler(func(_ *Core, s Snapshot, ev hpc.Event) {
		if ev == hpc.BSQCacheReference {
			misses++
		}
	})
	a := addr.Address(0x8000)
	c.Exec(Op{PC: 0x1000, Cost: 1, Mem: a}) // cold: L2 miss
	c.Exec(Op{PC: 0x1004, Cost: 1, Mem: a}) // warm: hit
	if misses != 1 {
		t.Errorf("L2 misses = %d, want 1", misses)
	}
	// The miss penalty must have been charged.
	if c.Cycles() <= 2 {
		t.Errorf("cycles = %d, memory penalty not charged", c.Cycles())
	}
}

func TestNMIDeliversInterruptedSnapshot(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 10)
	c := New(bank, nil)
	var snaps []Snapshot
	c.SetNMIHandler(func(_ *Core, s Snapshot, ev hpc.Event) {
		snaps = append(snaps, s)
	})
	c.SetContext(Context{PID: 7})
	for i := 0; i < 10; i++ {
		c.Exec(Op{PC: addr.Address(0x2000 + i*4), Cost: 1})
	}
	if len(snaps) != 1 {
		t.Fatalf("NMIs = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.PC != 0x2024 || s.Ctx.PID != 7 || s.Ctx.Kernel {
		t.Errorf("snapshot = %+v", s)
	}
}

// An NMI handler that itself executes ops can trigger a nested overflow;
// it must be latched and delivered after the handler returns, not
// recursively.
func TestNestedNMILatched(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 10)
	c := New(bank, nil)
	depth, maxDepth, count := 0, 0, 0
	c.SetNMIHandler(func(core *Core, s Snapshot, ev hpc.Event) {
		depth++
		if depth > maxDepth {
			maxDepth = depth
		}
		count++
		if count == 1 {
			// Handler burns 25 cycles -> 2 more overflows while in NMI.
			core.ExecRange(addr.KernelBase+0x100, 25, 4, 1)
		}
		depth--
	})
	for i := 0; i < 10; i++ {
		c.Exec(Op{PC: addr.Address(0x3000 + i*4), Cost: 1})
	}
	if maxDepth != 1 {
		t.Errorf("NMI handler reentered: max depth %d", maxDepth)
	}
	if count < 3 {
		t.Errorf("latched NMIs lost: handled %d", count)
	}
}

// Handler ops are charged to the core: the profiled workload slows down.
func TestHandlerCostIsEndogenous(t *testing.T) {
	run := func(period uint64, handlerCost int) uint64 {
		bank := hpc.NewBank()
		bank.Program(hpc.GlobalPowerEvents, period)
		c := New(bank, nil)
		c.SetNMIHandler(func(core *Core, s Snapshot, ev hpc.Event) {
			core.ExecRange(addr.KernelBase, handlerCost, 4, 1)
		})
		for i := 0; i < 1000; i++ {
			c.Exec(Op{PC: 0x1000, Cost: 1})
		}
		return c.Cycles()
	}
	base := run(1<<62, 0) // effectively no sampling
	slow := run(100, 50)
	fast := run(10, 50)
	if !(base < slow && slow < fast) {
		t.Errorf("overhead not monotone in sampling rate: base=%d slow=%d fast=%d", base, slow, fast)
	}
}

func TestContextRestoredAfterNMI(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 5)
	c := New(bank, nil)
	c.SetNMIHandler(func(core *Core, s Snapshot, ev hpc.Event) {
		core.SetContext(Context{PID: 0, Kernel: true})
		core.Exec(Op{PC: addr.KernelBase + 4, Cost: 1})
	})
	c.SetContext(Context{PID: 42})
	for i := 0; i < 20; i++ {
		c.Exec(Op{PC: 0x1000, Cost: 1})
	}
	if got := c.Context(); got.PID != 42 || got.Kernel {
		t.Errorf("context after NMIs = %+v, want PID 42 user", got)
	}
}

func TestSliceAccounting(t *testing.T) {
	c := New(nil, nil)
	c.StartSlice(10)
	if c.Expired() {
		t.Fatal("fresh slice expired")
	}
	c.Exec(Op{PC: 0x1000, Cost: 4})
	if c.SliceLeft() != 6 {
		t.Errorf("SliceLeft = %d, want 6", c.SliceLeft())
	}
	c.Exec(Op{PC: 0x1000, Cost: 100}) // overrun saturates at 0
	if !c.Expired() || c.SliceLeft() != 0 {
		t.Errorf("slice not expired: left=%d", c.SliceLeft())
	}
}

// Property: total cycles ticked into the cycles counter equals the sum
// of op costs (no memory ops), and delivered NMIs plus latch-overflow
// losses account for every counter overflow. (A single op whose cost
// spans several periods can overflow more times than the latch holds;
// the excess is counted as lost, as on real hardware.)
func TestCycleAccountingQuick(t *testing.T) {
	f := func(costs []uint8, period uint16) bool {
		p := uint64(period%500) + 1
		bank := hpc.NewBank()
		bank.Program(hpc.GlobalPowerEvents, p)
		c := New(bank, nil)
		nmis := 0
		c.SetNMIHandler(func(_ *Core, _ Snapshot, _ hpc.Event) { nmis++ })
		var want uint64
		for _, cost := range costs {
			cc := uint32(cost%7) + 1
			c.Exec(Op{PC: 0x1000, Cost: cc})
			want += uint64(cc)
		}
		ctr, _ := bank.Counter(hpc.GlobalPowerEvents)
		return c.Cycles() == want && ctr.Total() == want &&
			uint64(nmis)+c.LostNMIs() == want/p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkExecNoMem(b *testing.B) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 90_000)
	c := New(bank, cache.DefaultHierarchy())
	c.SetNMIHandler(func(_ *Core, _ Snapshot, _ hpc.Event) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exec(Op{PC: 0x1000, Cost: 1})
	}
}

func BenchmarkExecWithMem(b *testing.B) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 90_000)
	bank.Program(hpc.BSQCacheReference, 1000)
	c := New(bank, cache.DefaultHierarchy())
	c.SetNMIHandler(func(_ *Core, _ Snapshot, _ hpc.Event) {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Exec(Op{PC: 0x1000, Cost: 1, Mem: addr.Address(0x8000 + (i&0xFFFF)*8)})
	}
}

func TestTLBEventsTick(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.DTLBMiss, 1)
	bank.Program(hpc.ITLBMiss, 1)
	c := New(bank, cache.DefaultHierarchy())
	var dtlb, itlb int
	c.SetNMIHandler(func(_ *Core, _ Snapshot, ev hpc.Event) {
		switch ev {
		case hpc.DTLBMiss:
			dtlb++
		case hpc.ITLBMiss:
			itlb++
		}
	})
	// Touch 8 distinct data pages from 8 distinct code pages.
	for i := 0; i < 8; i++ {
		c.Exec(Op{PC: addr.Address(0x100000 + i*4096), Cost: 1,
			Mem: addr.Address(0x800000 + i*4096)})
	}
	if dtlb != 8 || itlb == 0 {
		t.Errorf("dtlb=%d itlb=%d, want 8 and >0", dtlb, itlb)
	}
	// Re-walking the same pages is TLB-warm.
	before := dtlb
	for i := 0; i < 8; i++ {
		c.Exec(Op{PC: addr.Address(0x100000 + i*4096), Cost: 1,
			Mem: addr.Address(0x800000 + i*4096)})
	}
	if dtlb != before {
		t.Errorf("warm pages missed DTLB: %d new misses", dtlb-before)
	}
}
