// Fused trace retirement and scattered-operand batch execution: the two
// core-side primitives behind the JVM's superinstruction replay. A
// trace replay asks the core for an event-horizon window (TraceWindow),
// accumulates provably event-free micro-ops locally, and retires them
// in one bulk update (RetireTrace); ops it cannot prove event-free take
// the ordinary precise paths in between. ExecScatter is ExecMemBatch
// for non-strided memory operands, resolved upfront through the cache
// model's sorted multi-run replay (cache.Hierarchy.DataBatch).
package cpu

import (
	"viprof/internal/addr"
	"viprof/internal/hpc"
)

// TraceWindow prepares the core for a fused trace replay spanning the
// instruction addresses [pcFirst, pcLast] and returns the event-horizon
// headroom granted to it: the caller may accumulate up to `ops`
// micro-ops totalling up to `cycles` cost and retire them with one
// RetireTrace, with the guarantee that no observable event — counter
// overflow, NMI delivery, ITLB traffic — could have occurred inside the
// fused stretch. ok is false when fused replay cannot begin at all:
// batching is disabled (the per-op ablation oracle), a latched NMI is
// waiting to drain, the span leaves the current instruction page (the
// fetch accounting would not be a no-op), or a counter is within one
// op of overflow. Any open streaming batch is flushed first so the
// headroom read from the bank is exact.
//
// After any intervening precise op (which may tick counters, run NMI
// handlers, and move the ITLB), the window is stale: the caller must
// re-request it before accumulating further.
func (c *Core) TraceWindow(pcFirst, pcLast addr.Address) (ops, cycles uint64, ok bool) {
	if c.noBatch {
		return 0, 0, false
	}
	if c.bat.active {
		c.FlushBatch()
	}
	if !c.inNMI && len(c.pending) > 0 {
		return 0, 0, false
	}
	if c.Mem != nil && (!c.Mem.InstrFree(pcFirst) || !c.Mem.InstrFree(pcLast)) {
		return 0, 0, false
	}
	ops, cycles = c.Bank.BulkHeadroom(hpc.InstrRetired, hpc.GlobalPowerEvents)
	if ops == 0 || cycles == 0 {
		return 0, 0, false
	}
	return ops, cycles, true
}

// RetireTrace retires n accumulated micro-ops of a fused trace replay
// in one bulk update: the deferred guaranteed-hit recency arithmetic
// first (dtouch proven-hit data probes on the line of daddr, exactly
// as FlushBatch), then the architectural state (PC of the last fused
// op, instruction count, cycle clock, slice budget) and one bulk tick
// per counter. Valid only under an unexpired TraceWindow covering
// (n, cycles): within the window no counter can overflow, every fetch
// is page-local, and the slice clamp is order-independent, so the bulk
// update equals the sum of the per-op updates bit for bit.
func (c *Core) RetireTrace(lastPC addr.Address, n, cycles uint64, daddr addr.Address, dtouch uint32) {
	if n == 0 {
		return
	}
	if c.bat.active {
		c.FlushBatch()
	}
	if dtouch > 0 {
		c.Mem.DataTouch(daddr, dtouch)
	}
	c.pc = lastPC
	c.instrs += n
	c.cycles += cycles
	if c.slice >= cycles {
		c.slice -= cycles
	} else {
		c.slice = 0
	}
	c.Bank.Tick(hpc.InstrRetired, n)
	c.Bank.Tick(hpc.GlobalPowerEvents, cycles)
}

// ExecScatter is the event-horizon fast path for a uniform run of
// micro-ops whose memory operands are scattered: n=len(mems) ops at PCs
// start, start+stride, ... each costing `cost` cycles, op i touching
// mems[i] (0 = no memory operand). It is bit-for-bit identical to the
// per-op loop of Exec calls — same cycles, counter state, NMI program
// counters, cache state, and miss sequence — but resolves all data
// outcomes upfront through the sorted multi-run replay
// (cache.Hierarchy.DataBatch), then retires the uniform event-free
// stretches between recorded events with O(1) bookkeeping per event
// horizon, exactly as ExecMemBatch does for strided operands.
//
// The upfront replay is sound for the same reason as ExecMemBatch's:
// nothing else touches the data caches between the ops of the run (NMI
// handlers execute instruction-only kernel work).
func (c *Core) ExecScatter(start addr.Address, stride uint32, cost uint32, mems []addr.Address) {
	n := len(mems)
	if n == 0 {
		return
	}
	if c.noBatch || c.Mem == nil || cost == 0 {
		pc := start
		for i := 0; i < n; i++ {
			c.Exec(Op{PC: pc, Cost: cost, Mem: mems[i]})
			pc += addr.Address(stride)
		}
		return
	}
	if c.bat.active {
		c.FlushBatch()
	}
	// Gather the data operands and resolve their cache outcomes upfront.
	c.memBuf = c.memBuf[:0]
	c.memIdx = c.memIdx[:0]
	for i, m := range mems {
		if m != 0 {
			c.memBuf = append(c.memBuf, m)
			c.memIdx = append(c.memIdx, int32(i))
		}
	}
	c.evBuf = c.evBuf[:0]
	if len(c.memBuf) > 0 {
		c.evBuf = c.Mem.DataBatch(c.memBuf, c.evBuf)
	}
	hit := c.Mem.HitCost()
	pc := start
	ei := 0 // next unconsumed DataBatch event
	mi := 0 // next memory op (walked only when hit != 0)
	for i := 0; i < n; {
		// Find the next op that must retire precisely because of its
		// memory outcome. With the usual zero L1-hit cost, only the
		// recorded events qualify: the silent guaranteed hits charge
		// exactly the base cost and their cache state was already
		// replayed, so they are indistinguishable from no-memory ops
		// inside a bulk stretch. With a nonzero hit cost, every memory
		// op charges beyond the base cost and leaves the stretch.
		next := n
		var extra uint32
		var dm, l2, coh bool
		if hit == 0 {
			if ei < len(c.evBuf) {
				next = int(c.memIdx[c.evBuf[ei].Index])
				extra, dm, l2, coh = c.evBuf[ei].Extra, c.evBuf[ei].DTLBMiss, c.evBuf[ei].L2Miss, c.evBuf[ei].Coh
			}
		} else if mi < len(c.memIdx) {
			next = int(c.memIdx[mi])
			extra = hit
			if ei < len(c.evBuf) && c.evBuf[ei].Index == mi {
				extra, dm, l2, coh = c.evBuf[ei].Extra, c.evBuf[ei].DTLBMiss, c.evBuf[ei].L2Miss, c.evBuf[ei].Coh
			}
		}
		if i == next {
			c.execResolved(pc, cost, extra, dm, l2, coh)
			if hit == 0 {
				ei++
			} else {
				if ei < len(c.evBuf) && c.evBuf[ei].Index == mi {
					ei++
				}
				mi++
			}
			i++
			pc += addr.Address(stride)
			continue
		}
		k := c.bulkLen(pc, next-i, stride, cost)
		if k == 0 {
			// At an event horizon: one precise op. Its data outcome, if
			// any, is a silent guaranteed hit (extra 0), so the resolved
			// path is exact for memory and no-memory ops alike.
			c.execResolved(pc, cost, 0, false, false, false)
			i++
			pc += addr.Address(stride)
			continue
		}
		total := uint64(k) * uint64(cost)
		c.pc = pc + addr.Address(stride)*addr.Address(k-1)
		c.instrs += uint64(k)
		c.cycles += total
		if c.slice >= total {
			c.slice -= total
		} else {
			c.slice = 0
		}
		c.Bank.Tick(hpc.InstrRetired, uint64(k))
		c.Bank.Tick(hpc.GlobalPowerEvents, total)
		pc += addr.Address(stride) * addr.Address(k)
		i += k
	}
}
