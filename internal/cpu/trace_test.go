package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/hpc"
)

// scatterMems generates a scattered operand vector for ExecScatter:
// zero slots (no memory operand), exact duplicates, same-line and
// same-page neighbours, and cold far jumps — the operand shape of the
// JVM's service-routine memory traffic.
func scatterMems(r *rand.Rand, n int) []addr.Address {
	hot := make([]addr.Address, 1+r.Intn(6))
	for i := range hot {
		hot[i] = addr.Address(0x8000_0000 + r.Intn(1<<22))
	}
	mems := make([]addr.Address, n)
	for i := range mems {
		switch r.Intn(10) {
		case 0, 1, 2: // no memory operand
			mems[i] = 0
		case 3, 4: // duplicate or same-line hot operand
			mems[i] = hot[r.Intn(len(hot))] + addr.Address(r.Intn(64))
		case 5, 6: // same page, different line
			mems[i] = hot[r.Intn(len(hot))]&^0xFFF + addr.Address(r.Intn(1<<12))
		default: // cold scatter
			mems[i] = addr.Address(0x8000_0000 + r.Intn(1<<26))
		}
	}
	return mems
}

// driveScatterStream replays one seeded stream centred on ExecScatter
// runs, interleaved with the rest of the engine's call sites so the
// scattered fast path composes with streaming batches, precise ops,
// slice grants, and behind-the-back cache flushes.
func driveScatterStream(c *Core, seed int64) {
	r := rand.New(rand.NewSource(seed))
	pc := addr.Address(0x6000_0000)
	for step := 0; step < 200; step++ {
		switch r.Intn(10) {
		case 0:
			c.StartSlice(uint64(r.Intn(5000)))
		case 1:
			c.AdvanceIdle(uint64(r.Intn(200)))
		case 2:
			c.Exec(Op{
				PC:   pc,
				Cost: uint32(1 + r.Intn(4)),
				Mem:  addr.Address(0x8000_0000 + r.Intn(1<<18)*8),
			})
			pc += 4
		case 3:
			n := 1 + r.Intn(1000)
			c.ExecBatch(pc, n, 4, uint32(1+r.Intn(3)))
			pc += addr.Address(4 * n)
		case 4:
			for i := 1 + r.Intn(40); i > 0; i-- {
				c.BatchOp(pc, uint32(1+r.Intn(3)))
				pc += 4
			}
		case 5:
			// Context-switch cold flush behind the engine's back.
			if c.Mem != nil {
				c.FlushBatch()
				c.Mem.L1.Flush()
			}
		default:
			n := 1 + r.Intn(400)
			c.ExecScatter(pc, 4, uint32(1+r.Intn(3)), scatterMems(r, n))
			pc += addr.Address(4 * n)
		}
		if r.Intn(4) == 0 {
			pc = addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
		}
	}
	c.FlushBatch()
}

// compareCores asserts full architectural, counter, cache, and NMI
// equivalence between a batched core and its per-op oracle.
func compareCores(t *testing.T, cb, cp *Core, periods map[hpc.Event]uint64, trB, trP *nmiTrace) bool {
	t.Helper()
	if cb.Cycles() != cp.Cycles() || cb.Instructions() != cp.Instructions() ||
		cb.PC() != cp.PC() || cb.SliceLeft() != cp.SliceLeft() ||
		cb.LostNMIs() != cp.LostNMIs() {
		t.Logf("state diverged: cycles %d/%d instrs %d/%d pc %x/%x slice %d/%d lost %d/%d",
			cb.Cycles(), cp.Cycles(), cb.Instructions(), cp.Instructions(),
			uint64(cb.PC()), uint64(cp.PC()), cb.SliceLeft(), cp.SliceLeft(),
			cb.LostNMIs(), cp.LostNMIs())
		return false
	}
	for ev := range periods {
		b, _ := cb.Bank.Counter(ev)
		p, _ := cp.Bank.Counter(ev)
		if b.Total() != p.Total() {
			t.Logf("%v totals diverged: %d vs %d", ev, b.Total(), p.Total())
			return false
		}
	}
	if cb.Mem != nil {
		for _, lvl := range []struct {
			name string
			b, p interface{ Stats() (uint64, uint64) }
		}{
			{"L1", cb.Mem.L1, cp.Mem.L1},
			{"L2", cb.Mem.L2, cp.Mem.L2},
			{"DTLB", cb.Mem.DTLB, cp.Mem.DTLB},
			{"ITLB", cb.Mem.ITLB, cp.Mem.ITLB},
		} {
			ba, bm := lvl.b.Stats()
			pa, pm := lvl.p.Stats()
			if ba != pa || bm != pm {
				t.Logf("%s stats diverged: %d/%d vs %d/%d", lvl.name, ba, bm, pa, pm)
				return false
			}
		}
	}
	if len(trB.evs) != len(trP.evs) {
		t.Logf("NMI count diverged: %d vs %d", len(trB.evs), len(trP.evs))
		return false
	}
	for i := range trB.evs {
		if trB.evs[i] != trP.evs[i] || trB.snaps[i] != trP.snaps[i] {
			t.Logf("NMI %d diverged: %v %+v vs %v %+v",
				i, trB.evs[i], trB.snaps[i], trP.evs[i], trP.snaps[i])
			return false
		}
	}
	return true
}

// Property: ExecScatter is bit-for-bit identical to the per-op Exec
// loop over its operand vector — cycles, instructions, PC, slice,
// per-counter totals, cache statistics at every level, and the NMI
// sequence down to each interrupted snapshot — including duplicate
// operands, zero slots, conflict evictions, and nonzero L1 hit costs.
func TestExecScatterDeterminismQuick(t *testing.T) {
	f := func(seed int64, rawPeriod uint32, burn8, hit4 uint8) bool {
		period := uint64(rawPeriod%20_000) + 50
		periods := map[hpc.Event]uint64{
			hpc.GlobalPowerEvents: period,
			hpc.BSQCacheReference: 300,
			hpc.DTLBMiss:          200,
			hpc.InstrRetired:      3 * period,
		}
		burn := int(burn8 % 60)
		hit := uint32(hit4 % 3) // exercise both the zero and nonzero L1Hit walks
		var trB, trP nmiTrace
		cb := newBatchTestCore(periods, &trB, burn, true)
		cp := newBatchTestCore(periods, &trP, burn, false)
		cb.Mem.L1Hit = hit
		cp.Mem.L1Hit = hit
		driveScatterStream(cb, seed)
		driveScatterStream(cp, seed)
		return compareCores(t, cb, cp, periods, &trB, &trP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// replayFusedTrace drives TraceWindow/RetireTrace exactly as the JVM's
// trace replayer does for a straight-line stretch of page-local ops:
// accumulate while inside the granted horizon, retire the prefix in
// bulk at the boundary, run the boundary op precisely, re-request the
// window, and fall back to per-op execution whenever no window is
// granted. On a per-op core TraceWindow always refuses, so the same
// driver doubles as the oracle.
func replayFusedTrace(c *Core, pc addr.Address, costs []uint32) {
	last := pc + addr.Address(4*(len(costs)-1))
	ops, cyc, ok := c.TraceWindow(pc, last)
	var accN, accCost uint64
	var lastPC addr.Address
	for i, cost := range costs {
		p := pc + addr.Address(4*i)
		if !ok {
			c.Exec(Op{PC: p, Cost: cost})
			continue
		}
		if accN+1 <= ops && accCost+uint64(cost) <= cyc {
			accN++
			accCost += uint64(cost)
			lastPC = p
			continue
		}
		c.RetireTrace(lastPC, accN, accCost, 0, 0)
		accN, accCost = 0, 0
		c.Exec(Op{PC: p, Cost: cost})
		if i < len(costs)-1 {
			ops, cyc, ok = c.TraceWindow(p+4, last)
		}
	}
	if accN > 0 {
		c.RetireTrace(lastPC, accN, accCost, 0, 0)
	}
}

// driveTraceStream mixes fused trace replays with the precise and
// streaming call sites, including page jumps that force TraceWindow to
// refuse until the ITLB state settles.
func driveTraceStream(c *Core, seed int64) {
	r := rand.New(rand.NewSource(seed))
	pc := addr.Address(0x6000_0000)
	for step := 0; step < 250; step++ {
		switch r.Intn(8) {
		case 0:
			c.StartSlice(uint64(r.Intn(5000)))
		case 1:
			c.AdvanceIdle(uint64(r.Intn(200)))
		case 2:
			c.Exec(Op{
				PC:   pc,
				Cost: uint32(1 + r.Intn(4)),
				Mem:  addr.Address(0x8000_0000 + r.Intn(1<<18)*8),
			})
			pc += 4
		case 3:
			for i := 1 + r.Intn(30); i > 0; i-- {
				c.BatchOp(pc, uint32(1+r.Intn(3)))
				pc += 4
			}
		default:
			costs := make([]uint32, 1+r.Intn(60))
			for i := range costs {
				costs[i] = uint32(1 + r.Intn(4))
			}
			replayFusedTrace(c, pc, costs)
			pc += addr.Address(4 * len(costs))
		}
		if r.Intn(5) == 0 {
			pc = addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
		}
	}
	c.FlushBatch()
}

// Property: a fused trace replay built on TraceWindow/RetireTrace is
// bit-for-bit identical to per-op execution of the same instruction
// stream, including NMIs landing on the exact boundary ops where the
// per-op path delivers them.
func TestTraceWindowDeterminismQuick(t *testing.T) {
	f := func(seed int64, rawPeriod uint32, burn8 uint8) bool {
		period := uint64(rawPeriod%5_000) + 20
		periods := map[hpc.Event]uint64{
			hpc.GlobalPowerEvents: period,
			hpc.BSQCacheReference: 300,
			hpc.InstrRetired:      2*period + 7,
		}
		burn := int(burn8 % 60)
		var trB, trP nmiTrace
		cb := newBatchTestCore(periods, &trB, burn, true)
		cp := newBatchTestCore(periods, &trP, burn, false)
		driveTraceStream(cb, seed)
		driveTraceStream(cp, seed)
		return compareCores(t, cb, cp, periods, &trB, &trP)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TraceWindow must refuse whenever a fused stretch could hide an
// observable event: per-op mode, a latched undelivered NMI, a counter
// within one op of overflow, or a span that leaves the current
// instruction page.
func TestTraceWindowRefusals(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 1000)
	c := New(bank, nil)
	c.SetBatching(false)
	if _, _, ok := c.TraceWindow(0x1000, 0x1010); ok {
		t.Error("window granted in per-op mode")
	}
	c.SetBatching(true)
	ops, cyc, ok := c.TraceWindow(0x1000, 0x1010)
	if !ok || ops != hpc.NoLimit || cyc != 999 {
		t.Errorf("window = (%d, %d, %v), want (NoLimit, 999, true)", ops, cyc, ok)
	}
	bank.Program(hpc.InstrRetired, 1) // next op overflows: zero headroom
	if _, _, ok := c.TraceWindow(0x1000, 0x1010); ok {
		t.Error("window granted with a counter one op from overflow")
	}
	bank.Remove(hpc.InstrRetired)

	// A page-crossing span must be refused; a page-local one on the
	// resident page is granted.
	cm := New(bank, cache.DefaultHierarchy())
	cm.SetBatching(true)
	cm.Exec(Op{PC: 0x5000_0000, Cost: 1})
	if _, _, ok := cm.TraceWindow(0x5000_0100, 0x5000_1100); ok {
		t.Error("window granted across an instruction page boundary")
	}
	if _, _, ok := cm.TraceWindow(0x5000_0100, 0x5000_0200); !ok {
		t.Error("window refused on the resident instruction page")
	}
}

// RetireTrace must equal the summed per-op updates: PC of the last op,
// instruction and cycle totals, slice clamp, and bulk counter ticks.
func TestRetireTraceBulkUpdate(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 1000)
	c := New(bank, nil)
	c.StartSlice(25)
	ops, cyc, ok := c.TraceWindow(0x2000, 0x2020)
	if !ok || ops != hpc.NoLimit || cyc != 999 {
		t.Fatalf("window = (%d, %d, %v)", ops, cyc, ok)
	}
	c.RetireTrace(0x2020, 9, 18, 0, 0)
	if c.PC() != 0x2020 || c.Instructions() != 9 || c.Cycles() != 18 || c.SliceLeft() != 7 {
		t.Errorf("state = pc %x instrs %d cycles %d slice %d",
			uint64(c.PC()), c.Instructions(), c.Cycles(), c.SliceLeft())
	}
	ctr, _ := bank.Counter(hpc.GlobalPowerEvents)
	if ctr.Total() != 18 {
		t.Errorf("GPE total = %d, want 18", ctr.Total())
	}
	// Clamp: retiring more cost than the slice has left pins it at zero.
	c.RetireTrace(0x2040, 3, 100, 0, 0)
	if c.SliceLeft() != 0 || !c.Expired() {
		t.Errorf("slice = %d, want clamped to 0", c.SliceLeft())
	}
}

// Samples during a scattered run must land on the exact missing ops:
// identical NMI PC sequences between the resolved-upfront fast path and
// per-op execution.
func TestExecScatterSamplePCs(t *testing.T) {
	mems := make([]addr.Address, 300)
	r := rand.New(rand.NewSource(7))
	for i := range mems {
		if r.Intn(3) == 0 {
			mems[i] = 0
		} else {
			mems[i] = addr.Address(0x9000_0000 + r.Intn(1<<16)*8)
		}
	}
	run := func(batching bool) []addr.Address {
		bank := hpc.NewBank()
		bank.Program(hpc.BSQCacheReference, 2)
		c := New(bank, cache.DefaultHierarchy())
		var pcs []addr.Address
		c.SetNMIHandler(func(_ *Core, s Snapshot, _ hpc.Event) { pcs = append(pcs, s.PC) })
		c.SetBatching(batching)
		c.ExecScatter(0x7000_0000, 4, 1, mems)
		c.FlushBatch()
		return pcs
	}
	got, want := run(true), run(false)
	if len(got) == 0 {
		t.Fatal("no NMIs delivered")
	}
	if len(got) != len(want) {
		t.Fatalf("NMI count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("NMI %d at %s, want %s", i, got[i], want[i])
		}
	}
}
