// Package xen implements the paper's stated future work (§5): "we plan
// to integrate Xen virtualization extensions into VIProf to integrate
// profiling of the Xen layer (via XenoProf)".
//
// The simulated hypervisor adds a third privileged layer beneath the
// guest kernel: a credit scheduler that preempts the virtual CPU at
// every VCPU slice, timer virtualization, and hypercall servicing. Its
// code is mapped at the top of the address space (kernel.HypervisorBase,
// as 32-bit Xen maps itself) under the image name "xen-syms", so the
// existing sampling pipeline attributes hypervisor samples exactly the
// way XenoProf does — no profiler changes are required beyond having
// the symbols available, which is the point the paper makes about its
// design generalizing across layers.
package xen

import (
	"fmt"

	"viprof/internal/image"
	"viprof/internal/kernel"
)

// ImageName is the hypervisor's image, as XenoProf reports it.
const ImageName = "xen-syms"

// Config tunes the hypervisor model.
type Config struct {
	// SlicePeriod is the VCPU scheduling quantum in cycles (default
	// ~30 ms at the simulated clock, Xen's default credit slice).
	SlicePeriod uint64
	// ExitOps is the simulated work per VM exit (context save, credit
	// accounting, timer reprogramming, shadow page-table upkeep).
	// Default 2000, putting hypervisor overhead near the few-percent
	// figures reported for Xen-era paravirtualization.
	ExitOps int
}

func (c *Config) fill() {
	if c.SlicePeriod == 0 {
		c.SlicePeriod = 102_000 // 30 ms at 3.4 MHz
	}
	if c.ExitOps == 0 {
		c.ExitOps = 2000
	}
}

// Hypervisor is the enabled Xen layer.
type Hypervisor struct {
	Module *kernel.LoadedModule
	cfg    Config
	m      *kernel.Machine
	exits  uint64
}

// buildImage constructs xen-syms with the symbols the model executes.
func buildImage() (*image.Image, error) {
	b := image.NewBuilder(ImageName)
	for _, s := range []struct {
		name string
		size uint64
	}{
		{"hypercall_entry", 600},
		{"do_sched_op", 900},
		{"csched_schedule", 1400},
		{"vcpu_timer_fn", 700},
		{"do_event_channel_op", 800},
		{"do_grant_table_op", 900},
		{"vmx_vmexit_handler", 1200},
	} {
		b.Add(s.name, s.size)
	}
	return b.Image()
}

// Enable installs the hypervisor under the machine: maps xen-syms at
// HypervisorBase and registers the VCPU slice ticker. Call before
// starting profilers or launching workloads.
func Enable(m *kernel.Machine, cfg Config) (*Hypervisor, error) {
	cfg.fill()
	img, err := buildImage()
	if err != nil {
		return nil, err
	}
	lm, err := m.Kern.LoadModuleAt(img, kernel.HypervisorBase)
	if err != nil {
		return nil, fmt.Errorf("xen: %v", err)
	}
	h := &Hypervisor{Module: lm, cfg: cfg, m: m}
	m.Kern.AddTicker(cfg.SlicePeriod, h.vcpuExit)
	return h, nil
}

// vcpuExit models one VM exit: the guest is preempted and the
// hypervisor runs its scheduler and timer work at xen-syms addresses.
// These cycles are fully profilable: a sampling counter overflowing
// during them attributes the sample to the xen-syms image.
func (h *Hypervisor) vcpuExit() {
	h.exits++
	k := h.m.Kern
	k.ExecKernel("vmx_vmexit_handler", h.cfg.ExitOps/4, 1)
	k.ExecKernel("csched_schedule", h.cfg.ExitOps/2, 1)
	k.ExecKernel("vcpu_timer_fn", h.cfg.ExitOps/4, 1)
}

// Exits returns the number of VM exits serviced.
func (h *Hypervisor) Exits() uint64 { return h.exits }
