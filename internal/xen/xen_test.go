package xen

import (
	"testing"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
)

func newMachine() *kernel.Machine {
	return kernel.NewMachine(cpu.New(hpc.NewBank(), cache.DefaultHierarchy()), 1)
}

func burn(total int) kernel.Executor {
	done := 0
	return kernel.ExecFunc(func(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
		for done < total && !m.Core.Expired() {
			m.Core.Exec(cpu.Op{PC: kernel.UserBase, Cost: 1})
			done++
		}
		if done >= total {
			return kernel.StepExit
		}
		return kernel.StepYield
	})
}

func TestEnableMapsXenSyms(t *testing.T) {
	m := newMachine()
	h, err := Enable(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Module.Base != kernel.HypervisorBase {
		t.Errorf("xen at %s, want %s", h.Module.Base, kernel.HypervisorBase)
	}
	if v, ok := m.Kern.KernelLookup(kernel.HypervisorBase + 0x10); !ok || v.Image != ImageName {
		t.Errorf("hypervisor text not resolvable: %+v %v", v, ok)
	}
	if _, err := Enable(m, Config{}); err == nil {
		t.Error("double Enable accepted")
	}
}

func TestVCPUExitsHappenAndCost(t *testing.T) {
	// Same workload with and without the hypervisor: exits must occur
	// and add overhead.
	run := func(enable bool) (uint64, uint64) {
		m := newMachine()
		var h *Hypervisor
		if enable {
			var err error
			h, err = Enable(m, Config{SlicePeriod: 50_000, ExitOps: 2_000})
			if err != nil {
				t.Fatal(err)
			}
		}
		m.Kern.NewProcess("app", burn(2_000_000))
		if err := m.Kern.Run(0); err != nil {
			t.Fatal(err)
		}
		var exits uint64
		if h != nil {
			exits = h.Exits()
		}
		return m.Core.Cycles(), exits
	}
	base, _ := run(false)
	virt, exits := run(true)
	if exits == 0 {
		t.Fatal("no VM exits")
	}
	if virt <= base {
		t.Errorf("virtualization cost nothing: %d vs %d cycles", virt, base)
	}
	// Overhead should be roughly exits * ExitOps.
	want := exits * 2_000
	got := virt - base
	if got < want/2 || got > want*2 {
		t.Errorf("overhead %d cycles, expected about %d", got, want)
	}
}

// XenoProf-style attribution: samples taken during hypervisor work
// resolve to xen-syms rows through the unchanged profiling pipeline.
func TestHypervisorSamplesAttributed(t *testing.T) {
	m := newMachine()
	if _, err := Enable(m, Config{SlicePeriod: 20_000, ExitOps: 5_000}); err != nil {
		t.Fatal(err)
	}
	m.Core.Bank.Program(hpc.GlobalPowerEvents, 9_000)
	var xenSamples, total int
	m.Kern.SetNMIHandler(func(mm *kernel.Machine, s cpu.Snapshot, ev hpc.Event) {
		total++
		if v, ok := mm.Kern.KernelLookup(s.PC); ok && v.Image == ImageName {
			xenSamples++
			if sym, found := v.ImageOffset(s.PC), true; !found || sym > addr.Address(1<<20) {
				t.Errorf("bad xen offset %v", sym)
			}
		}
	})
	m.Kern.NewProcess("app", burn(3_000_000))
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("no samples at all")
	}
	if xenSamples == 0 {
		t.Error("no samples attributed to xen-syms")
	}
	t.Logf("%d of %d samples in the hypervisor", xenSamples, total)
}
