package fleet

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// Persisted stats records. Both the collector and every sender write
// one framed key=value record at clean shutdown (the RecoveryStats
// protocol, DESIGN §12): the record's absence or damage IS the crash
// signal, so the readers return nil instead of guessing.

// collectorStatsPayload serializes CollectorStats as key=value lines.
func collectorStatsPayload(s *CollectorStats) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "shards=%d\ningested=%d\nduplicates=%d\nout_of_order=%d\nmaps_applied=%d\nwire_damaged=%d\n",
		s.Shards, s.Ingested, s.Duplicates, s.OutOfOrder, s.MapsApplied, s.WireDamaged)
	fmt.Fprintf(&buf, "journal_errors=%d\nacks_sent=%d\nrestarts=%d\nreplay_errors=%d\n",
		s.JournalErrors, s.AcksSent, s.Restarts, s.ReplayErrors)
	fmt.Fprintf(&buf, "replayed_frames=%d\nmarker_errors=%d\ndead_letters=%d\nsnapshot_errors=%d\n",
		s.ReplayedFrames, s.MarkerErrors, s.DeadLetters, s.SnapshotErrors)
	fmt.Fprintf(&buf, "failovers=%d\nhandoffs=%d\nhandoff_errors=%d\nmisrouted=%d\n",
		s.Failovers, s.Handoffs, s.HandoffErrors, s.Misrouted)
	fmt.Fprintf(&buf, "compactions=%d\ncompact_errors=%d\n", s.Compactions, s.CompactErrors)
	fmt.Fprintf(&buf, "clean=%d\n", b2i(s.Clean))
	return buf.Bytes()
}

// ReadCollectorStats parses the collector's persisted stats record (the
// last intact record wins). Nil means the collector never shut down
// cleanly.
func ReadCollectorStats(data []byte) *CollectorStats {
	kv := readStatsKV(data)
	if kv == nil {
		return nil
	}
	s := &CollectorStats{}
	for k, n := range kv {
		switch k {
		case "shards":
			s.Shards = n
		case "ingested":
			s.Ingested = n
		case "duplicates":
			s.Duplicates = n
		case "out_of_order":
			s.OutOfOrder = n
		case "maps_applied":
			s.MapsApplied = n
		case "wire_damaged":
			s.WireDamaged = n
		case "failovers":
			s.Failovers = n
		case "handoffs":
			s.Handoffs = n
		case "handoff_errors":
			s.HandoffErrors = n
		case "misrouted":
			s.Misrouted = n
		case "compactions":
			s.Compactions = n
		case "compact_errors":
			s.CompactErrors = n
		case "journal_errors":
			s.JournalErrors = n
		case "acks_sent":
			s.AcksSent = n
		case "restarts":
			s.Restarts = n
		case "replay_errors":
			s.ReplayErrors = n
		case "replayed_frames":
			s.ReplayedFrames = n
		case "marker_errors":
			s.MarkerErrors = n
		case "dead_letters":
			s.DeadLetters = n
		case "snapshot_errors":
			s.SnapshotErrors = n
		case "clean":
			s.Clean = n != 0
		}
	}
	return s
}

// senderStatsPayload serializes SenderStats as key=value lines.
func senderStatsPayload(s *SenderStats) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "generated=%d\nsent=%d\nretries=%d\ntimeouts=%d\nacked=%d\n",
		s.Generated, s.Sent, s.Retries, s.Timeouts, s.Acked)
	fmt.Fprintf(&buf, "spilled=%d\ndeferred=%d\nlost=%d\nspill_errors=%d\nstats_errors=%d\n",
		s.Spilled, s.Deferred, s.Lost, s.SpillErrors, s.StatsErrors)
	fmt.Fprintf(&buf, "spilled_samples=%d\nlost_samples=%d\n", s.SpilledSamples, s.LostSamples)
	fmt.Fprintf(&buf, "maps_generated=%d\nmaps_acked=%d\n", s.MapsGenerated, s.MapsAcked)
	for _, pair := range []struct {
		prefix string
		m      map[string]uint64
	}{{"spilled_by_event.", s.SpilledByEvent}, {"lost_by_event.", s.LostByEvent}} {
		events := make([]string, 0, len(pair.m))
		for ev := range pair.m {
			events = append(events, ev)
		}
		sort.Strings(events)
		for _, ev := range events {
			if pair.m[ev] == 0 {
				continue
			}
			fmt.Fprintf(&buf, "%s%s=%d\n", pair.prefix, ev, pair.m[ev])
		}
	}
	fmt.Fprintf(&buf, "clean=%d\n", b2i(s.Clean))
	return buf.Bytes()
}

// ReadSenderStats parses a host's persisted stats record (last intact
// record wins). Nil means the sender crashed before finishing.
func ReadSenderStats(data []byte) *SenderStats {
	kv := readStatsKV(data)
	if kv == nil {
		return nil
	}
	s := &SenderStats{
		SpilledByEvent: make(map[string]uint64),
		LostByEvent:    make(map[string]uint64),
	}
	for k, n := range kv {
		if ev, found := strings.CutPrefix(k, "spilled_by_event."); found {
			s.SpilledByEvent[ev] = n
			continue
		}
		if ev, found := strings.CutPrefix(k, "lost_by_event."); found {
			s.LostByEvent[ev] = n
			continue
		}
		switch k {
		case "generated":
			s.Generated = n
		case "sent":
			s.Sent = n
		case "retries":
			s.Retries = n
		case "timeouts":
			s.Timeouts = n
		case "acked":
			s.Acked = n
		case "spilled":
			s.Spilled = n
		case "deferred":
			s.Deferred = n
		case "lost":
			s.Lost = n
		case "spill_errors":
			s.SpillErrors = n
		case "stats_errors":
			s.StatsErrors = n
		case "spilled_samples":
			s.SpilledSamples = n
		case "lost_samples":
			s.LostSamples = n
		case "maps_generated":
			s.MapsGenerated = n
		case "maps_acked":
			s.MapsAcked = n
		case "clean":
			s.Clean = n != 0
		}
	}
	return s
}

// readStatsKV scans a framed stats file and parses the last intact
// record as key=value lines; nil on no intact record or parse damage.
func readStatsKV(data []byte) map[string]uint64 {
	recs, _ := record.Scan(data)
	if len(recs) == 0 {
		return nil
	}
	kv := make(map[string]uint64)
	for _, line := range strings.Split(string(recs[len(recs)-1]), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil
		}
		kv[k] = n
	}
	return kv
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// HostReport is the per-host slice of the fleet integrity assembly.
type HostReport struct {
	Host int
	// Stats is the sender's persisted self-accounting; nil means the
	// sender crashed (or its stats write was destroyed).
	Stats *SenderStats
	// StatsUnreadable marks an injected EIO on the stats read.
	StatsUnreadable bool
	// Spill scan: intact parked deltas found in the host's spill file
	// and the salvage accounting of its damage.
	SpillSeqs    []uint64
	SpillSamples uint64
	SpillSalvage record.Salvage
	SpillParse   int // checksum-valid spill records that would not parse
	// SpillUnreadable marks an injected EIO on the spill read.
	SpillUnreadable bool
	// MissingDeltas are collector-side seq gaps for this host that no
	// host-side artifact explains: not applied, not parked in the spill
	// file, not accounted lost by clean sender stats. Each one is a
	// sample set that vanished — the loudest possible poison.
	MissingDeltas []uint64
}

// FleetIntegrity is the fleet-level integrity assembly, built offline
// from the disk artifacts plus the network's injector counters — the
// Integrity contract (DESIGN §11) extended across hosts.
type FleetIntegrity struct {
	// Collector is the persisted collector record (nil = crash).
	Collector *CollectorStats
	// CollectorUnreadable marks an injected EIO reading it.
	CollectorUnreadable bool
	// Journal is the journal read-back outcome; JournalUnreadable an
	// injected EIO reading the journal itself.
	Journal           JournalReplay
	JournalUnreadable bool
	// AggregateSnapshot reports whether the committed snapshot exists
	// and is clean; SnapshotDamaged counts salvage loss inside it.
	AggregateSnapshot bool
	SnapshotDamaged   bool
	Hosts             []HostReport
	// StraySpillEntries counts phantom or vanished spill-dir listings
	// (list-fault damage surfaced during discovery).
	StraySpillEntries int
	// StrayGenFiles counts files under the generation directory the
	// current manifest does not name — leftovers of an aborted
	// compaction pass (or listing damage). Replay ignores them; their
	// existence is loud evidence of an interrupted pass.
	StrayGenFiles int
	// Net is the network injector accounting.
	Net NetFaultStats
}

// Degraded reports whether anything anywhere in the fleet run was lost,
// damaged, or left unresolved. Duplicates, reorders, retries, and
// backoff waits are NOT degradation — the protocol absorbs them by
// design; degradation starts where state was destroyed or parked.
func (fi *FleetIntegrity) Degraded() bool {
	if fi.Collector == nil || !fi.Collector.Clean {
		return true
	}
	c := fi.Collector
	if c.WireDamaged+c.JournalErrors+c.Restarts+c.ReplayErrors+
		c.MarkerErrors+c.DeadLetters+c.SnapshotErrors > 0 {
		return true
	}
	// Failovers, handoff aborts, misroutes, and compaction aborts are
	// all crash-path evidence; committed compactions alone are routine.
	if c.Failovers+c.HandoffErrors+c.Misrouted+c.CompactErrors > 0 {
		return true
	}
	if fi.CollectorUnreadable || fi.JournalUnreadable || !fi.AggregateSnapshot || fi.SnapshotDamaged {
		return true
	}
	if fi.Journal.Salvage.Lossy() || fi.Journal.ParseErrors > 0 || fi.Journal.Markers > 0 {
		return true
	}
	if fi.Journal.ManifestDamaged {
		return true
	}
	if fi.StraySpillEntries > 0 || fi.StrayGenFiles > 0 {
		return true
	}
	for _, h := range fi.Hosts {
		if h.Stats == nil || !h.Stats.Clean || h.StatsUnreadable || h.SpillUnreadable {
			return true
		}
		if h.Stats.Spilled+h.Stats.Lost+h.Stats.SpillErrors > 0 {
			return true
		}
		if len(h.SpillSeqs) > 0 || h.SpillSalvage.Lossy() || h.SpillParse > 0 {
			return true
		}
		if len(h.MissingDeltas) > 0 {
			return true
		}
	}
	return false
}

// MissingTotal counts unexplained gaps across all hosts.
func (fi *FleetIntegrity) MissingTotal() int {
	n := 0
	for _, h := range fi.Hosts {
		n += len(h.MissingDeltas)
	}
	return n
}

// AssembleIntegrity builds the fleet integrity report from disk. The
// aggregate passed in is the replayed journal truth (the caller usually
// has it already); hosts lists the endpoint ids to audit.
func AssembleIntegrity(disk *kernel.Disk, agg *Aggregate, rep JournalReplay, hosts []int, net NetFaultStats) *FleetIntegrity {
	fi := &FleetIntegrity{Journal: rep, Net: net}

	if disk.Exists(CollectorStatsFile) {
		if data, err := disk.Read(CollectorStatsFile); err != nil {
			fi.CollectorUnreadable = true
		} else {
			fi.Collector = ReadCollectorStats(data)
		}
	}
	if disk.Exists(AggregateFile) {
		if data, err := disk.Read(AggregateFile); err == nil {
			_, sal, rerr := oprofile.ReadCountsSalvage(data)
			fi.AggregateSnapshot = true
			if rerr != nil || sal.Lossy() {
				fi.SnapshotDamaged = true
			}
		}
	}

	for _, host := range hosts {
		hr := HostReport{Host: host}
		if disk.Exists(SenderStatsPath(host)) {
			if data, err := disk.Read(SenderStatsPath(host)); err != nil {
				hr.StatsUnreadable = true
			} else {
				hr.Stats = ReadSenderStats(data)
			}
		}
		spillSeqs := make(map[uint64]bool)
		if disk.Exists(SpillPath(host)) {
			if data, err := disk.Read(SpillPath(host)); err != nil {
				hr.SpillUnreadable = true
			} else {
				recs, sal := record.Scan(data)
				hr.SpillSalvage = sal
				for _, payload := range recs {
					msg, derr := DecodePayload(payload)
					if derr != nil || (msg.Kind != KindDelta && msg.Kind != KindMap) || msg.Host != host {
						hr.SpillParse++
						continue
					}
					if !spillSeqs[msg.Seq] {
						spillSeqs[msg.Seq] = true
						hr.SpillSeqs = append(hr.SpillSeqs, msg.Seq)
						hr.SpillSamples += msg.Total()
					}
				}
			}
		}
		// A collector-side gap is explained if the host parked the seq
		// in its spill file, or its clean stats account it lost, or the
		// host never handed the seq to the network at all (crashed
		// mid-run: seqs above the ack high-water mark are simply still
		// held). Everything else is a MissingDelta — poison.
		lostBudget := uint64(0)
		if hr.Stats != nil && hr.Stats.Clean {
			lostBudget = hr.Stats.Lost
		}
		crashed := hr.Stats == nil || !hr.Stats.Clean
		for _, seq := range agg.Gaps(host) {
			if spillSeqs[seq] {
				continue
			}
			if lostBudget > 0 {
				lostBudget--
				continue
			}
			if crashed {
				// The sender died holding this delta in memory; the
				// run-level conservation check (which still has the
				// in-memory oracle) vouches for it. Offline we can only
				// flag it if the host claims a clean exit.
				continue
			}
			hr.MissingDeltas = append(hr.MissingDeltas, seq)
		}
		fi.Hosts = append(fi.Hosts, hr)
	}

	// Spill-directory discovery damage: phantom dirents that do not
	// parse as host spill paths, or listed paths that vanish on read.
	for _, path := range disk.List() {
		if !strings.HasPrefix(path, FleetDir+"/host") {
			continue
		}
		var host int
		if _, err := fmt.Sscanf(path, FleetDir+"/host%02d/sender.spill", &host); err != nil {
			fi.StraySpillEntries++
			continue
		}
		if !disk.Exists(path) {
			fi.StraySpillEntries++
		}
	}

	// Generation-directory audit: any file the current manifest does not
	// name is a leftover of an aborted compaction pass (a .tmp that was
	// never renamed, a data file whose manifest commit never landed) —
	// harmless to replay, loud as evidence.
	named := map[string]bool{ManifestPath: true}
	if disk.Exists(ManifestPath) {
		if data, err := disk.Read(ManifestPath); err == nil {
			if man, merr := parseManifest(data); merr == nil {
				for _, mf := range man.Files {
					named[mf.Path] = true
				}
			}
		}
	}
	for _, path := range disk.List() {
		if !strings.HasPrefix(path, GenDir+"/") {
			continue
		}
		if !named[path] {
			fi.StrayGenFiles++
		}
	}
	return fi
}

// FormatFleetIntegrity renders the fleet integrity block for vipreport.
func FormatFleetIntegrity(fi *FleetIntegrity) string {
	var b strings.Builder
	b.WriteString("fleet integrity:\n")
	switch {
	case fi.CollectorUnreadable:
		b.WriteString("  collector: stats unreadable (I/O error)\n")
	case fi.Collector == nil:
		b.WriteString("  collector: CRASHED (no clean stats record)\n")
	default:
		c := fi.Collector
		fmt.Fprintf(&b, "  collector: shards=%d ingested=%d duplicates=%d out-of-order=%d maps=%d restarts=%d dead-letters=%d\n",
			c.Shards, c.Ingested, c.Duplicates, c.OutOfOrder, c.MapsApplied, c.Restarts, c.DeadLetters)
		if c.Failovers+c.Handoffs+c.Misrouted > 0 {
			fmt.Fprintf(&b, "  collector failover: failovers=%d handoffs=%d misrouted=%d\n",
				c.Failovers, c.Handoffs, c.Misrouted)
		}
		if c.Compactions+c.CompactErrors > 0 {
			fmt.Fprintf(&b, "  collector compaction: committed=%d aborted=%d\n",
				c.Compactions, c.CompactErrors)
		}
		if c.WireDamaged+c.JournalErrors+c.ReplayErrors+c.MarkerErrors+c.SnapshotErrors+c.HandoffErrors > 0 {
			fmt.Fprintf(&b, "  collector errors: wire-damaged=%d journal=%d replay=%d marker=%d snapshot=%d handoff=%d\n",
				c.WireDamaged, c.JournalErrors, c.ReplayErrors, c.MarkerErrors, c.SnapshotErrors, c.HandoffErrors)
		}
	}
	if fi.JournalUnreadable {
		b.WriteString("  store: UNREADABLE (I/O error)\n")
	} else {
		fmt.Fprintf(&b, "  store: %d deltas, %d maps, %d replay-duplicates, %d restart markers",
			fi.Journal.Deltas, fi.Journal.Maps, fi.Journal.Duplicates, fi.Journal.Markers)
		if fi.Journal.Salvage.Lossy() {
			fmt.Fprintf(&b, ", %d records dropped (%d bytes)",
				fi.Journal.Salvage.DroppedRecords, fi.Journal.Salvage.DroppedBytes)
		}
		if fi.Journal.ParseErrors > 0 {
			fmt.Fprintf(&b, ", %d unparseable", fi.Journal.ParseErrors)
		}
		b.WriteString("\n")
		if fi.Journal.ManifestGen > 0 || fi.Journal.ManifestDamaged {
			fmt.Fprintf(&b, "  store: generation %d (%d files, %d frames), %d journals",
				fi.Journal.ManifestGen, fi.Journal.GenFiles, fi.Journal.GenFrames, fi.Journal.Journals)
			if fi.Journal.ManifestDamaged {
				b.WriteString(", MANIFEST DAMAGED")
			}
			b.WriteString("\n")
		}
	}
	if fi.StrayGenFiles > 0 {
		fmt.Fprintf(&b, "  compaction: %d stray generation files (aborted pass)\n", fi.StrayGenFiles)
	}
	if !fi.AggregateSnapshot {
		b.WriteString("  aggregate snapshot: MISSING\n")
	} else if fi.SnapshotDamaged {
		b.WriteString("  aggregate snapshot: DAMAGED\n")
	}
	fmt.Fprintf(&b, "  network: sends=%d delivered=%d dropped=%d dup=%d reorder=%d latency=%d partition-drops=%d\n",
		fi.Net.Sends, fi.Net.Delivered, fi.Net.Dropped, fi.Net.Duplicated,
		fi.Net.Reordered, fi.Net.Latencies, fi.Net.PartitionDrops)
	if fi.StraySpillEntries > 0 {
		fmt.Fprintf(&b, "  spill discovery: %d stray entries\n", fi.StraySpillEntries)
	}
	for _, h := range fi.Hosts {
		label := fmt.Sprintf("  host%02d:", h.Host)
		switch {
		case h.StatsUnreadable:
			fmt.Fprintf(&b, "%s stats unreadable (I/O error)\n", label)
		case h.Stats == nil || !h.Stats.Clean:
			fmt.Fprintf(&b, "%s CRASHED (no clean stats record)\n", label)
		default:
			s := h.Stats
			fmt.Fprintf(&b, "%s generated=%d acked=%d maps=%d/%d retries=%d deferred=%d spilled=%d lost=%d\n",
				label, s.Generated, s.Acked, s.MapsAcked, s.MapsGenerated, s.Retries, s.Deferred, s.Spilled, s.Lost)
			for _, pair := range []struct {
				name string
				m    map[string]uint64
			}{{"spilled", s.SpilledByEvent}, {"lost", s.LostByEvent}} {
				events := make([]string, 0, len(pair.m))
				for ev := range pair.m {
					if pair.m[ev] > 0 {
						events = append(events, ev)
					}
				}
				sort.Strings(events)
				for _, ev := range events {
					fmt.Fprintf(&b, "    %s[%s]=%d samples\n", pair.name, ev, pair.m[ev])
				}
			}
		}
		if len(h.SpillSeqs) > 0 {
			fmt.Fprintf(&b, "    spill file: %d parked deltas (%d samples)\n", len(h.SpillSeqs), h.SpillSamples)
		}
		if h.SpillSalvage.Lossy() {
			fmt.Fprintf(&b, "    spill file: %d records dropped (%d bytes)\n",
				h.SpillSalvage.DroppedRecords, h.SpillSalvage.DroppedBytes)
		}
		if h.SpillUnreadable {
			b.WriteString("    spill file: UNREADABLE (I/O error)\n")
		}
		if len(h.MissingDeltas) > 0 {
			fmt.Fprintf(&b, "    MISSING DELTAS: seqs %v — samples unaccounted for\n", h.MissingDeltas)
		}
	}
	if fi.Degraded() {
		b.WriteString("  status: DEGRADED\n")
	} else {
		b.WriteString("  status: clean\n")
	}
	return b.String()
}
