// Package fleet turns the single-host profiler into a fleet system: N
// simulated hosts ship framed sample deltas (the DESIGN §10/§13 record
// format is the wire format) over a deterministic, faulty network to a
// collector process that ingests them through a write-ahead journal
// with seq-burned idempotent replay. The package's contract is the
// repo-wide robustness story extended across the network: degrade
// loudly, never lose or double-count a sample silently, and keep the
// fleet-level conservation equality (sum of per-host holds == collector
// aggregate) checkable under composed network + disk chaos.
//
// Determinism: like kernel.FaultPlan, the network's RNG is consumed
// only for sends, one draw sequence per plan, so a fixed (seed, plan,
// workload) reproduces the identical delivery schedule run after run.
// Simulated time comes from the machine clock (core cycles) — never
// the wall clock.
package fleet

import (
	"math/rand"
	"sort"
)

// NetFaultKind selects a failure mode for one message send.
type NetFaultKind int

// Failure modes.
const (
	// NetNone delivers the message after the base latency.
	NetNone NetFaultKind = iota
	// NetDrop loses the message: it never arrives and no error is
	// reported to the sender (the UDP model — loss surfaces only as a
	// missing ack).
	NetDrop
	// NetDup delivers the message twice, the copy after an extra delay;
	// the receiver's idempotent replay must absorb it.
	NetDup
	// NetReorder delays the message past later traffic, so it arrives
	// out of order; the receiver must be order-insensitive.
	NetReorder
	// NetLatency delays the message by the plan's LatencyCycles without
	// losing it (a congested link, not a lossy one).
	NetLatency
)

// String names the fault kind.
func (k NetFaultKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetDup:
		return "dup"
	case NetReorder:
		return "reorder"
	case NetLatency:
		return "latency"
	default:
		return "none"
	}
}

// NetFaultPoint scripts an exact fault: the Nth send (0 based) suffers
// Kind regardless of the probabilistic schedule.
type NetFaultPoint struct {
	Send int
	Kind NetFaultKind
}

// Partition is a network partition window in machine cycles: sends to
// or from Host (endpoint id; PartitionAll = every host) vanish while
// Start <= now < End. Windows heal by construction when the clock
// passes End.
type Partition struct {
	Host       int
	Start, End uint64
}

// PartitionAll partitions every endpoint.
const PartitionAll = -1

// NetFaultPlan is a deterministic network fault schedule, modeled on
// kernel.FaultPlan: per-send probabilities, a scripted override list,
// and a private seeded RNG advanced once per send.
type NetFaultPlan struct {
	// Seed drives the plan's private RNG.
	Seed int64

	// Per-send probabilities, evaluated in this order; their sum should
	// stay <= 1.
	PDrop, PDup, PReorder, PLatency float64

	// LatencyCycles is the extra delay a NetLatency fault adds, and the
	// bound on the delay NetDup and NetReorder use. Senders size their
	// ack timeouts above it, so latency alone never forces a spill
	// (keeping destructive <=> degraded crisp: only drops and
	// partitions destroy). Default DefaultNetLatencyCycles.
	LatencyCycles uint64

	// MaxFaults caps probabilistic injections (0 = unlimited); scripted
	// points and partitions always apply.
	MaxFaults int
	// Script forces exact faults at exact send indices.
	Script []NetFaultPoint

	// Partitions are cycle windows during which affected sends vanish.
	Partitions []Partition
}

// DefaultNetLatencyCycles is the default fault-latency bound (~12 ms at
// the simulated 3.4 MHz clock).
const DefaultNetLatencyCycles = 40_000

// NetFaultStats counts network injector activity.
type NetFaultStats struct {
	// Sends is every message offered; Delivered counts copies enqueued
	// for delivery (a duplicated send contributes two).
	Sends, Delivered uint64
	// Per-kind injection counts.
	Dropped, Duplicated, Reordered, Latencies uint64
	// PartitionDrops counts sends that vanished inside a partition
	// window (not charged against MaxFaults — a partition is a state,
	// not a per-message coin flip).
	PartitionDrops uint64
	// Injected is the probabilistic/scripted faults delivered.
	Injected uint64
}

// Destructive reports how many injected network events can strand data:
// drops and partition rejections. Duplicates and reorders are absorbed
// by the collector's idempotent replay and latency is bounded below the
// ack timeout, so none of them can lose or double-count a sample.
func (s NetFaultStats) Destructive() uint64 {
	return s.Dropped + s.PartitionDrops
}

// message is one in-flight datagram.
type message struct {
	from, to  int
	payload   []byte
	deliverAt uint64
	order     int // enqueue tiebreak for deterministic delivery order
}

// Network is the simulated transport: a deliver-at-cycle queue per
// endpoint with a seeded fault plan between Send and Deliver. Endpoint
// 0 is the collector by convention; hosts are 1..N.
type Network struct {
	now  func() uint64 // the machine clock (core cycles)
	plan NetFaultPlan
	rng  *rand.Rand

	queues map[int][]message
	next   int // global enqueue counter (delivery tiebreak)
	stats  NetFaultStats

	// BaseLatencyCycles is the fault-free one-way delivery delay.
	BaseLatencyCycles uint64
}

// DefaultBaseLatencyCycles is the fault-free one-way latency (~0.6 ms).
const DefaultBaseLatencyCycles = 2_000

// NewNetwork builds a network over the given simulated clock with the
// given fault plan.
func NewNetwork(now func() uint64, plan NetFaultPlan) *Network {
	if plan.LatencyCycles == 0 {
		plan.LatencyCycles = DefaultNetLatencyCycles
	}
	return &Network{
		now:               now,
		plan:              plan,
		rng:               rand.New(rand.NewSource(plan.Seed)),
		queues:            make(map[int][]message),
		BaseLatencyCycles: DefaultBaseLatencyCycles,
	}
}

// Stats returns the injector counters so far.
func (n *Network) Stats() NetFaultStats { return n.stats }

// MaxDelayCycles bounds the worst-case fault-free-or-faulted delivery
// delay of a single copy: base latency plus one latency/reorder/dup
// penalty. Senders derive ack timeouts from it.
func (n *Network) MaxDelayCycles() uint64 {
	return n.BaseLatencyCycles + n.plan.LatencyCycles
}

// partitioned reports whether a send between from and to is inside an
// active partition window.
func (n *Network) partitioned(from, to int, now uint64) bool {
	for _, p := range n.plan.Partitions {
		if now < p.Start || now >= p.End {
			continue
		}
		if p.Host == PartitionAll || p.Host == from || p.Host == to {
			return true
		}
	}
	return false
}

// fault draws the fault for one send. The RNG is advanced exactly once
// per non-partitioned send (plus bounded extra draws for delay sizing),
// so the schedule is a pure function of the plan and the send sequence.
func (n *Network) fault(idx int) NetFaultKind {
	for _, pt := range n.plan.Script {
		if pt.Send == idx {
			return pt.Kind
		}
	}
	if n.plan.MaxFaults > 0 && n.stats.Injected >= uint64(n.plan.MaxFaults) {
		return NetNone
	}
	r := n.rng.Float64()
	for _, c := range []struct {
		p float64
		k NetFaultKind
	}{
		{n.plan.PDrop, NetDrop},
		{n.plan.PDup, NetDup},
		{n.plan.PReorder, NetReorder},
		{n.plan.PLatency, NetLatency},
	} {
		if r < c.p {
			return c.k
		}
		r -= c.p
	}
	return NetNone
}

func (n *Network) enqueue(m message) {
	m.order = n.next
	n.next++
	n.queues[m.to] = append(n.queues[m.to], m)
	n.stats.Delivered++
}

// Send offers one datagram. It never blocks and never reports failure:
// loss is the receiver's (and the retry protocol's) problem, as on a
// real datagram network.
func (n *Network) Send(from, to int, payload []byte) {
	n.stats.Sends++
	now := n.now()
	if n.partitioned(from, to, now) {
		n.stats.PartitionDrops++
		return
	}
	kind := n.fault(int(n.stats.Sends - 1))
	base := message{from: from, to: to, payload: payload, deliverAt: now + n.BaseLatencyCycles}
	switch kind {
	case NetDrop:
		n.stats.Dropped++
		n.stats.Injected++
	case NetDup:
		n.stats.Duplicated++
		n.stats.Injected++
		n.enqueue(base)
		dup := base
		dup.deliverAt += 1 + uint64(n.rng.Int63n(int64(n.plan.LatencyCycles)))
		n.enqueue(dup)
	case NetReorder:
		n.stats.Reordered++
		n.stats.Injected++
		base.deliverAt += 1 + uint64(n.rng.Int63n(int64(n.plan.LatencyCycles)))
		n.enqueue(base)
	case NetLatency:
		n.stats.Latencies++
		n.stats.Injected++
		base.deliverAt += n.plan.LatencyCycles
		n.enqueue(base)
	default:
		n.enqueue(base)
	}
}

// Deliver pops every message for the endpoint whose delivery time has
// arrived, in (deliverAt, enqueue-order) order — deterministic, and
// genuinely out of order when a reorder fault delayed an earlier send
// past a later one.
func (n *Network) Deliver(to int) [][]byte {
	now := n.now()
	q := n.queues[to]
	if len(q) == 0 {
		return nil
	}
	var due, rest []message
	for _, m := range q {
		if m.deliverAt <= now {
			due = append(due, m)
		} else {
			rest = append(rest, m)
		}
	}
	if len(due) == 0 {
		return nil
	}
	n.queues[to] = rest
	sort.Slice(due, func(i, j int) bool {
		if due[i].deliverAt != due[j].deliverAt {
			return due[i].deliverAt < due[j].deliverAt
		}
		return due[i].order < due[j].order
	})
	out := make([][]byte, len(due))
	for i, m := range due {
		out[i] = m.payload
	}
	return out
}

// Flush discards every queued message for the endpoint and returns how
// many were dropped. The collector's supervisor calls it on restart:
// datagrams addressed to a dead process are dead letters, counted
// loudly, never silently replayed into the replacement.
func (n *Network) Flush(to int) int {
	dropped := len(n.queues[to])
	delete(n.queues, to)
	return dropped
}

// Pending reports how many messages are queued for the endpoint
// (delivered or not yet due).
func (n *Network) Pending(to int) int { return len(n.queues[to]) }
