package fleet

import (
	"bytes"
	"math/rand"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

func newTestMachine(seed int64) *kernel.Machine {
	return kernel.NewMachine(cpu.New(hpc.NewBank(), cache.DefaultHierarchy()), seed)
}

func randomCounts(rng *rand.Rand, host, n int) map[oprofile.Key]uint64 {
	counts := make(map[oprofile.Key]uint64)
	images := []string{"fleet.app", "libfleet.so", "vmlinux"}
	for i := 0; i < n; i++ {
		k := oprofile.Key{
			Event: hpc.Event(rng.Intn(2)),
			Image: images[rng.Intn(len(images))],
			Proc:  SenderConfig{Host: host}.ProcName(),
			Off:   addr.Address(0x1000 + 8*rng.Intn(64)),
		}
		if rng.Intn(4) == 0 {
			k.Image = oprofile.JITImageName
			k.JIT = true
			k.Epoch = 1 + rng.Intn(3)
		}
		counts[k] += uint64(1 + rng.Intn(5))
	}
	return counts
}

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := randomCounts(rng, 3, 6)
	frame, err := DeltaFrame(3, 41, 7500, counts)
	if err != nil {
		t.Fatalf("DeltaFrame: %v", err)
	}
	msg, err := DecodeWire(frame)
	if err != nil {
		t.Fatalf("DecodeWire: %v", err)
	}
	if msg.Kind != KindDelta || msg.Host != 3 || msg.Seq != 41 || msg.At != 7500 {
		t.Fatalf("header mismatch: %+v", msg)
	}
	if len(msg.Counts) != len(counts) {
		t.Fatalf("counts: got %d keys, want %d", len(msg.Counts), len(counts))
	}
	for k, c := range counts {
		if msg.Counts[k] != c {
			t.Errorf("key %+v: got %d want %d", k, msg.Counts[k], c)
		}
	}

	ack, err := DecodeWire(AckFrame(3, 41))
	if err != nil || ack.Kind != KindAck || ack.Host != 3 || ack.Seq != 41 {
		t.Fatalf("ack round trip: %+v, %v", ack, err)
	}
	rm, err := DecodeWire(RestartJournalFrame(1, 2))
	if err != nil || rm.Kind != KindRestart || rm.Shard != 1 || rm.Attempt != 2 {
		t.Fatalf("restart round trip: %+v, %v", rm, err)
	}

	// Determinism: the same delta must serialize to identical bytes.
	again, err := DeltaFrame(3, 41, 7500, counts)
	if err != nil || !bytes.Equal(frame, again) {
		t.Fatalf("DeltaFrame not deterministic")
	}
}

func TestWireRejectsDamage(t *testing.T) {
	frame, err := DeltaFrame(1, 1, 0, map[oprofile.Key]uint64{{Proc: "host01", Image: "x"}: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Bit damage anywhere in the frame must fail the checksum.
	for _, idx := range []int{0, 8, len(frame) / 2, len(frame) - 1} {
		mangled := append([]byte(nil), frame...)
		mangled[idx] ^= 0x40
		if _, err := DecodeWire(mangled); err == nil {
			t.Errorf("mangled byte %d: decode succeeded", idx)
		}
	}
	// A torn (truncated) frame must fail too.
	for _, cut := range []int{1, len(frame) / 3, len(frame) - 1} {
		if _, err := DecodeWire(frame[:cut]); err == nil {
			t.Errorf("torn at %d: decode succeeded", cut)
		}
	}
	if _, err := DecodeWire(append(append([]byte(nil), frame...), frame...)); err == nil {
		t.Error("two concatenated records decoded as one wire datagram")
	}
}

// TestAggregateIdempotentOrderInsensitive is the idempotency quickcheck:
// any delivery schedule — shuffled, duplicated, interleaved across hosts
// — must produce exactly the oracle aggregate, with every duplicate
// absorbed and never double-counted.
func TestAggregateIdempotentOrderInsensitive(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		rng := rand.New(rand.NewSource(int64(it)*0x9E3779B9 + 5))
		hosts := 1 + rng.Intn(5)
		oracle := make(map[oprofile.Key]uint64)
		var msgs []*WireMsg
		var oracleTotal uint64
		for h := 1; h <= hosts; h++ {
			deltas := 1 + rng.Intn(8)
			for seq := 1; seq <= deltas; seq++ {
				counts := randomCounts(rng, h, 1+rng.Intn(5))
				msgs = append(msgs, &WireMsg{Kind: KindDelta, Host: h, Seq: uint64(seq), Counts: counts})
				for k, c := range counts {
					oracle[k] += c
					oracleTotal += c
				}
			}
		}
		// Build a hostile delivery schedule: every message at least
		// once, many twice or more, then shuffle.
		schedule := append([]*WireMsg(nil), msgs...)
		for _, m := range msgs {
			for rng.Intn(2) == 0 {
				schedule = append(schedule, m)
			}
		}
		rng.Shuffle(len(schedule), func(i, j int) {
			schedule[i], schedule[j] = schedule[j], schedule[i]
		})

		agg := NewAggregate(1 + rng.Intn(8))
		for _, m := range schedule {
			agg.Apply(m)
		}
		if got := agg.Total(); got != oracleTotal {
			t.Fatalf("iter %d: total %d, oracle %d", it, got, oracleTotal)
		}
		got := agg.Counts()
		if len(got) != len(oracle) {
			t.Fatalf("iter %d: %d keys, oracle %d", it, len(got), len(oracle))
		}
		for k, c := range oracle {
			if got[k] != c {
				t.Fatalf("iter %d: key %+v: got %d, oracle %d", it, k, got[k], c)
			}
		}
		if wantDups := uint64(len(schedule) - len(msgs)); agg.Duplicates != wantDups {
			t.Fatalf("iter %d: absorbed %d duplicates, want %d", it, agg.Duplicates, wantDups)
		}
		for h := 1; h <= hosts; h++ {
			if gaps := agg.Gaps(h); len(gaps) != 0 {
				t.Fatalf("iter %d: host %d unexpected gaps %v", it, h, gaps)
			}
		}
	}
}

func TestAggregateGapsPoison(t *testing.T) {
	agg := NewAggregate(4)
	counts := map[oprofile.Key]uint64{{Proc: "host01", Image: "x", Off: 8}: 2}
	for _, seq := range []uint64{1, 2, 5} {
		agg.Apply(&WireMsg{Kind: KindDelta, Host: 1, Seq: seq, Counts: counts})
	}
	gaps := agg.Gaps(1)
	if len(gaps) != 2 || gaps[0] != 3 || gaps[1] != 4 {
		t.Fatalf("gaps = %v, want [3 4]", gaps)
	}
}

// requireConservation asserts the headline invariant on a finished run,
// against both the live aggregate and the offline journal replay.
func requireConservation(t *testing.T, res *FleetResult) {
	t.Helper()
	for name, agg := range map[string]*Aggregate{
		"live": res.Collector.Aggregate(), "replayed": res.Replayed,
	} {
		if agg == nil {
			t.Fatalf("%s aggregate missing", name)
		}
		c := CheckConservation(res.Senders, agg)
		if !c.Balanced() {
			t.Fatalf("%s conservation violated:\n%v", name, c.Mismatches)
		}
	}
}

func TestFleetCleanRun(t *testing.T) {
	m := newTestMachine(11)
	res, err := RunFleet(m, FleetConfig{Hosts: 4, DeltasPerHost: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("run error: %v", res.RunErr)
	}
	requireConservation(t, res)
	c := CheckConservation(res.Senders, res.Replayed)
	if c.HeldSamples != 0 {
		t.Fatalf("clean run held %d samples", c.HeldSamples)
	}
	if c.GeneratedSamples == 0 || c.AggregateSamples != c.GeneratedSamples {
		t.Fatalf("clean run: generated %d, aggregate %d", c.GeneratedSamples, c.AggregateSamples)
	}
	for _, s := range res.Senders {
		st := s.Stats()
		if !st.Clean || st.Timeouts != 0 || st.Spilled != 0 || st.Lost != 0 {
			t.Fatalf("host %d stats not clean: %+v", s.cfg.Host, st)
		}
	}
	if res.Integrity.Degraded() {
		t.Fatalf("clean run degraded:\n%s", FormatFleetIntegrity(res.Integrity))
	}
	// The committed snapshot must exist and agree with the aggregate.
	data, err := m.Kern.Disk().Read(AggregateFile)
	if err != nil {
		t.Fatalf("aggregate snapshot: %v", err)
	}
	snap, err := oprofile.ReadCounts(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("snapshot parse: %v", err)
	}
	var snapTotal uint64
	for _, cnt := range snap {
		snapTotal += cnt
	}
	if snapTotal != c.AggregateSamples {
		t.Fatalf("snapshot total %d != aggregate %d", snapTotal, c.AggregateSamples)
	}
}

// TestFleetPartitionHeal is the scripted partition e2e: a full-fleet
// partition long enough to force retries (but shorter than the retry
// budget) must heal with every delta delivered and zero degradation —
// destructive network faults fully absorbed by the protocol, with the
// timeouts as visible evidence.
func TestFleetPartitionHeal(t *testing.T) {
	m := newTestMachine(23)
	res, err := RunFleet(m, FleetConfig{
		Hosts: 4, DeltasPerHost: 6, Seed: 23,
		Net: NetFaultPlan{
			Seed:       23,
			Partitions: []Partition{{Host: PartitionAll, Start: 50_000, End: 2_200_000}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("run error: %v", res.RunErr)
	}
	requireConservation(t, res)
	if res.Net.PartitionDrops == 0 {
		t.Fatal("partition never dropped anything — window missed the traffic")
	}
	var timeouts, deferred uint64
	for _, s := range res.Senders {
		timeouts += s.Stats().Timeouts
		deferred += s.Stats().Deferred
	}
	if timeouts == 0 || deferred == 0 {
		t.Fatalf("partition left no retry evidence: timeouts=%d deferred=%d", timeouts, deferred)
	}
	c := CheckConservation(res.Senders, res.Replayed)
	if c.HeldSamples != 0 {
		t.Fatalf("heal incomplete: %d samples still held\n%s",
			c.HeldSamples, FormatFleetIntegrity(res.Integrity))
	}
	if res.Integrity.Degraded() {
		t.Fatalf("healed partition left degradation:\n%s", FormatFleetIntegrity(res.Integrity))
	}
}

// TestFleetPartitionSpillReingest drives a partition past the retry
// budget so hosts spill, then recovers the parked deltas offline:
// degradation is loud, per-event accounted, and fully reversible.
func TestFleetPartitionSpillReingest(t *testing.T) {
	m := newTestMachine(31)
	res, err := RunFleet(m, FleetConfig{
		Hosts: 3, DeltasPerHost: 5, Seed: 31,
		Sender: SenderConfig{
			TimeoutCycles: 200_000, BackoffBaseCycles: 20_000,
			BackoffCapCycles: 80_000, MaxAttempts: 3,
		},
		Net: NetFaultPlan{
			Seed:       31,
			Partitions: []Partition{{Host: PartitionAll, Start: 0, End: 40_000_000}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	requireConservation(t, res)
	var spilled uint64
	for _, s := range res.Senders {
		spilled += s.Stats().Spilled
		for ev, n := range s.Stats().SpilledByEvent {
			if n == 0 {
				t.Errorf("host %d: zero-valued per-event spill entry %q", s.cfg.Host, ev)
			}
		}
	}
	if spilled == 0 {
		t.Fatal("permanent partition produced no spills")
	}
	if !res.Integrity.Degraded() {
		t.Fatal("spilled run not degraded")
	}
	// Offline recovery: reingest the parked deltas; with no losses the
	// aggregate must now equal everything generated.
	agg := res.Replayed
	hosts := []int{1, 2, 3}
	var reapplied int
	for _, ri := range ReingestSpills(m.Kern.Disk(), agg, hosts) {
		if ri.ReadError || ri.ParseErrors > 0 || ri.Salvage.Lossy() {
			t.Fatalf("spill reingest damaged: %+v", ri)
		}
		reapplied += ri.Applied
	}
	if reapplied == 0 {
		t.Fatal("reingest recovered nothing")
	}
	c := CheckConservation(res.Senders, agg)
	if !c.Balanced() {
		t.Fatalf("post-reingest conservation violated:\n%v", c.Mismatches)
	}
	var lost uint64
	for _, s := range res.Senders {
		lost += s.Stats().LostSamples
	}
	if want := c.GeneratedSamples - lost; c.AggregateSamples != want {
		t.Fatalf("after reingest aggregate %d, want %d (generated %d - lost %d)",
			c.AggregateSamples, want, c.GeneratedSamples, lost)
	}
}

// TestFleetCollectorCrashRecovery scripts a crash on a journal append:
// the supervisor must restart the collector through journal replay and
// the run must still conserve every sample.
func TestFleetCollectorCrashRecovery(t *testing.T) {
	m := newTestMachine(47)
	m.Kern.SetFaultInjectors(kernel.FaultPlan{
		Seed:       47,
		PathPrefix: JournalPrefix,
		Script:     []kernel.FaultPoint{{Write: 3, Kind: kernel.FaultCrash}},
	})
	res, err := RunFleet(m, FleetConfig{Hosts: 4, DeltasPerHost: 6, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("run error: %v", res.RunErr)
	}
	st := res.Collector.Stats()
	if st.Restarts == 0 {
		t.Fatal("scripted crash never restarted the collector")
	}
	requireConservation(t, res)
	c := CheckConservation(res.Senders, res.Replayed)
	if c.HeldSamples != 0 {
		t.Fatalf("recovered run still holds %d samples", c.HeldSamples)
	}
	if !res.Integrity.Degraded() {
		t.Fatal("crashed+recovered run reports clean")
	}
	if res.Integrity.Journal.Markers == 0 {
		t.Fatal("journal carries no restart marker evidence")
	}
}

// TestStatsRoundTrip pins the framed stats records: payload and parser
// must agree field for field.
func TestStatsRoundTrip(t *testing.T) {
	cs := &CollectorStats{
		Shards:   4,
		Ingested: 9, Duplicates: 2, OutOfOrder: 1, MapsApplied: 5, WireDamaged: 3,
		JournalErrors: 1, AcksSent: 11, Restarts: 2, ReplayErrors: 1,
		ReplayedFrames: 7, MarkerErrors: 1, DeadLetters: 4,
		Failovers: 2, Handoffs: 6, HandoffErrors: 1, Misrouted: 3,
		Compactions: 2, CompactErrors: 1, SnapshotErrors: 1,
		Clean: true,
	}
	got := ReadCollectorStats(record.Frame(collectorStatsPayload(cs)))
	if got == nil || *got != *cs {
		t.Fatalf("collector stats round trip: %+v != %+v", got, cs)
	}
	ss := &SenderStats{
		Generated: 12, Sent: 20, Retries: 8, Timeouts: 8, Acked: 10,
		MapsGenerated: 3, MapsAcked: 3,
		Spilled: 1, Deferred: 8, Lost: 1, SpillErrors: 1, StatsErrors: 0,
		SpilledSamples: 6, LostSamples: 4,
		SpilledByEvent: map[string]uint64{"CYCLES": 6},
		LostByEvent:    map[string]uint64{"INSTR": 4},
		Clean:          true,
	}
	got2 := ReadSenderStats(record.Frame(senderStatsPayload(ss)))
	if got2 == nil || got2.Generated != 12 || got2.Spilled != 1 ||
		got2.MapsGenerated != 3 || got2.MapsAcked != 3 ||
		got2.SpilledByEvent["CYCLES"] != 6 || got2.LostByEvent["INSTR"] != 4 || !got2.Clean {
		t.Fatalf("sender stats round trip: %+v", got2)
	}
	if ReadCollectorStats([]byte("garbage")) != nil {
		t.Fatal("garbage parsed as collector stats")
	}
}
