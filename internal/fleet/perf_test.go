package fleet

import (
	"testing"
	"time"
)

// TestFleetWallTimeSmoke logs how long a small fleet run takes on the
// host — diagnostic output for CI triage only, never an assertion, so
// host speed cannot fail the build. The wall-clock reads are waived:
// they time the test harness itself, and nothing derived from them
// flows back into the simulation. (This file is also the live proof
// that viplint's test-file sweep covers the simulation packages: strip
// a waiver and `make lint` must fail.)
func TestFleetWallTimeSmoke(t *testing.T) {
	//viplint:allow detrand host wall time measures the test harness, not simulated time; log-only diagnostics
	start := time.Now()
	m := newTestMachine(7)
	res, err := RunFleet(m, FleetConfig{Hosts: 2, DeltasPerHost: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("run error: %v", res.RunErr)
	}
	requireConservation(t, res)
	//viplint:allow detrand host wall time measures the test harness, not simulated time; log-only diagnostics
	t.Logf("fleet smoke run took %v of host time", time.Since(start))
}
