package fleet

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// buildStore runs a small fleet (with real network dups so the
// journals hold duplicate-absorption evidence, and a scripted shard
// crash so they hold a restart marker and torn-append salvage) and
// returns the machine whose disk is the store under test.
func buildStore(t *testing.T, seed int64, hosts, deltas int, crash bool) *kernel.Machine {
	t.Helper()
	m := newTestMachine(seed)
	if crash {
		m.Kern.SetFaultInjectors(kernel.FaultPlan{
			Seed:       seed,
			PathPrefix: JournalPrefix,
			Script:     []kernel.FaultPoint{{Write: 4, Kind: kernel.FaultCrash}},
		})
	}
	res, err := RunFleet(m, FleetConfig{
		Hosts: hosts, DeltasPerHost: deltas, Seed: seed,
		Net: NetFaultPlan{Seed: seed + 1, PDup: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("run error: %v", res.RunErr)
	}
	requireConservation(t, res)
	return m
}

// sumCounts folds a windowed query result to a total.
func sumCounts(counts map[oprofile.Key]uint64) (n uint64) {
	for _, c := range counts {
		n += c
	}
	return n
}

// windowOracle is the brute-force reference: a full scan of every
// applied record, filtered by generation time — what QueryWindow must
// equal no matter how the store is laid out on disk.
func windowOracle(agg *Aggregate, from, to uint64) map[oprofile.Key]uint64 {
	oracle := make(map[oprofile.Key]uint64)
	for _, h := range agg.Hosts() {
		for _, rec := range agg.Records(h) {
			if rec.Kind != KindDelta || rec.At < from || rec.At >= to {
				continue
			}
			for k, c := range rec.Counts {
				oracle[k] += c
			}
		}
	}
	return oracle
}

func sameCounts(a, b map[oprofile.Key]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, c := range a {
		if b[k] != c {
			return false
		}
	}
	return true
}

// TestWindowedQueryOracle is the compaction quickcheck: for random
// windows, a windowed query over the compacted generations must equal
// the same filter run as a full scan over the pre-compaction store —
// compaction changes layout, never meaning. The two halves of any cut
// must also partition the whole.
func TestWindowedQueryOracle(t *testing.T) {
	for _, seed := range []int64{101, 202, 303} {
		m := buildStore(t, seed, 3, 7, seed == 202)
		disk := m.Kern.Disk()
		before, _, err := LoadStore(disk, 0)
		if err != nil {
			t.Fatalf("seed %d: pre-compaction load: %v", seed, err)
		}
		min, max, ok := before.TimeBounds()
		if !ok || max <= min {
			t.Fatalf("seed %d: no time spread: %d..%d", seed, min, max)
		}
		res, err := CompactDisk(disk)
		if err != nil {
			t.Fatalf("seed %d: compaction: %v", seed, err)
		}
		if !res.Committed || res.Gen != 1 || res.PrunedJournals == 0 {
			t.Fatalf("seed %d: compaction did not commit+prune: %+v", seed, res)
		}
		after, rep, err := LoadStore(disk, 0)
		if err != nil {
			t.Fatalf("seed %d: post-compaction load: %v", seed, err)
		}
		if rep.ManifestGen != 1 || rep.Journals != 0 {
			t.Fatalf("seed %d: store not compacted: %+v", seed, rep)
		}
		if after.Total() != before.Total() {
			t.Fatalf("seed %d: compaction changed the total: %d -> %d",
				seed, before.Total(), after.Total())
		}
		rng := rand.New(rand.NewSource(seed))
		span := max - min
		for i := 0; i < 40; i++ {
			from := min + uint64(rng.Int63n(int64(span)))
			to := from + 1 + uint64(rng.Int63n(int64(span)))
			got := after.QueryWindow(from, to)
			want := windowOracle(before, from, to)
			if !sameCounts(got, want) {
				t.Fatalf("seed %d window [%d,%d): query %d samples, oracle %d",
					seed, from, to, sumCounts(got), sumCounts(want))
			}
			cut := min + uint64(rng.Int63n(int64(span)))
			lo := sumCounts(after.QueryWindow(0, cut))
			hi := sumCounts(after.QueryWindow(cut, ^uint64(0)))
			if lo+hi != after.Total() {
				t.Fatalf("seed %d cut %d: %d + %d != %d", seed, cut, lo, hi, after.Total())
			}
		}
	}
}

// failingIO wraps a compactIO and fails cleanly at the k-th mutation,
// counting operations — the sweep driver for every fault point a
// compaction pass has.
type failingIO struct {
	inner   compactIO
	failAt  int // 0 = never
	ops     int
	injects int
}

var errInjected = errors.New("injected compaction fault")

func (f *failingIO) step() error {
	f.ops++
	if f.failAt > 0 && f.ops >= f.failAt {
		f.injects++
		return errInjected
	}
	return nil
}

func (f *failingIO) WriteSync(path string, data []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.WriteSync(path, data)
}

func (f *failingIO) Rename(oldPath, newPath string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

func (f *failingIO) Remove(path string) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

// TestCompactionFaultPointSweep kills a compaction pass at every
// single mutation point in turn and proves the store stays readable
// and semantically identical at each one — and that a clean retry
// afterwards still commits. This is the crash-safety argument of the
// manifest commit protocol, exhaustively checked rather than sampled.
func TestCompactionFaultPointSweep(t *testing.T) {
	// 4 hosts x 30 deltas (plus map epochs and a restart marker) spills
	// past one generation file's 96-frame budget, so the sweep covers
	// the multi-chunk write path too.
	m := buildStore(t, 404, 4, 30, true)
	dir := t.TempDir()
	if err := m.Kern.Disk().DumpTo(dir); err != nil {
		t.Fatal(err)
	}
	oracle, orep, err := LoadStore(m.Kern.Disk(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if orep.Markers == 0 {
		t.Fatal("store has no restart markers — the sweep would not cover marker re-encoding")
	}

	// Count the pass's total mutations on a throwaway copy.
	probeDisk, err := kernel.LoadDiskFrom(dir)
	if err != nil {
		t.Fatal(err)
	}
	probe := &failingIO{inner: &diskCompactIO{d: probeDisk}}
	if _, err := compactPass(probeDisk, probe); err != nil {
		t.Fatalf("clean probe pass failed: %v", err)
	}
	total := probe.ops
	// 2+ gen files (write+rename each), the manifest commit pair, and
	// at least one journal prune.
	if total < 7 {
		t.Fatalf("suspiciously small pass: %d mutations", total)
	}

	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("fault-at-%d", k), func(t *testing.T) {
			disk, err := kernel.LoadDiskFrom(dir)
			if err != nil {
				t.Fatal(err)
			}
			fio := &failingIO{inner: &diskCompactIO{d: disk}, failAt: k}
			res, err := compactPass(disk, fio)
			if fio.injects == 0 {
				t.Fatalf("fault point %d never reached", k)
			}
			if err == nil {
				t.Fatalf("interrupted pass reported no error: %+v", res)
			}
			// The store must still load, losslessly, at this fault point.
			agg, rep, lerr := LoadStore(disk, 0)
			if lerr != nil {
				t.Fatalf("store unreadable after fault at %d: %v", k, lerr)
			}
			if rep.ManifestDamaged {
				t.Fatalf("manifest damaged after fault at %d", k)
			}
			if !sameCounts(agg.Counts(), oracle.Counts()) {
				t.Fatalf("fault at %d changed the store: %d samples vs oracle %d",
					k, agg.Total(), oracle.Total())
			}
			if res.Committed && rep.ManifestGen != res.Gen {
				t.Fatalf("committed gen %d but store reads gen %d", res.Gen, rep.ManifestGen)
			}
			// A clean retry must finish the job from any fault point.
			if _, rerr := CompactDisk(disk); rerr != nil {
				t.Fatalf("retry after fault at %d failed: %v", k, rerr)
			}
			agg2, rep2, lerr := LoadStore(disk, 0)
			if lerr != nil {
				t.Fatalf("store unreadable after retry at %d: %v", k, lerr)
			}
			if rep2.Journals != 0 || rep2.ManifestGen == 0 {
				t.Fatalf("retry at %d left the store uncompacted: %+v", k, rep2)
			}
			if !sameCounts(agg2.Counts(), oracle.Counts()) {
				t.Fatalf("retry at %d changed the store: %d vs %d",
					k, agg2.Total(), oracle.Total())
			}
			if rep2.Markers != orep.Markers {
				t.Fatalf("retry at %d lost restart markers: %d vs %d",
					k, rep2.Markers, orep.Markers)
			}
		})
	}
}

// TestFleetMapReplication runs a hostile-but-nondestructive network
// (dups + reorders) and checks the code-map replication contract: all
// maps acked, every replicated epoch byte-identical to what the
// sender published, and the live compactor preserving them across a
// committed generation.
func TestFleetMapReplication(t *testing.T) {
	m := newTestMachine(55)
	cfg := FleetConfig{
		Hosts: 4, DeltasPerHost: 6, Seed: 55,
		Net: NetFaultPlan{Seed: 56, PDup: 0.25, PReorder: 0.25},
	}
	cfg.Collector.CompactEveryCycles = 250_000
	res, err := RunFleet(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("run error: %v", res.RunErr)
	}
	requireConservation(t, res)
	var gen, acked uint64
	for _, s := range res.Senders {
		st := s.Stats()
		gen += st.MapsGenerated
		acked += st.MapsAcked
	}
	if gen == 0 || acked != gen {
		t.Fatalf("maps not fully acked: %d/%d", acked, gen)
	}
	for name, agg := range map[string]*Aggregate{
		"live": res.Collector.Aggregate(), "replayed": res.Replayed,
	} {
		if bad := CheckMapReplication(res.Senders, agg); len(bad) > 0 {
			t.Fatalf("%s replication violated:\n%v", name, bad)
		}
		for _, s := range res.Senders {
			if got := agg.MapEpochs(s.cfg.Host); got == 0 {
				t.Fatalf("%s: host %d has no replicated epochs", name, s.cfg.Host)
			}
		}
	}
	if res.Collector.Stats().Compactions == 0 {
		t.Fatal("compactor never committed — the maps-across-compaction leg did not run")
	}
	if res.Replay.ManifestGen == 0 {
		t.Fatalf("offline replay saw no generation: %+v", res.Replay)
	}
}
