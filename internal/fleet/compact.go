package fleet

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/kernel"
	"viprof/internal/record"
)

// LSM-style compaction of the fleet sample store. The shard journals
// are the write path: append-only, one per shard, growing without
// bound. The compactor periodically folds the current generation plus
// every journal into a fresh generation of sorted, deduplicated files
// and then prunes what it read — with a commit discipline that makes a
// crash at any fault point harmless:
//
//  1. every new-generation data file is written temp-then-rename;
//  2. the manifest naming the new files is written temp-then-rename —
//     this rename is the COMMIT POINT;
//  3. only after the commit are the old generation's files and the
//     absorbed journals pruned.
//
// Before the commit the old manifest still names the old files and the
// journals are untouched, so a crashed pass leaves at worst stray
// g-files the next pass overwrites (and integrity counts). After the
// commit, an interrupted prune leaves journals whose every frame the
// new generation already holds — replay dedups them by seq burning.
// Either way the store reads back complete.
//
// A compaction pass never destroys evidence: restart markers are
// copied into the new generation, and record-level damage salvaged out
// of the journals is carried forward in the manifest's lost counters,
// so offline integrity still sees cumulative loss no matter how many
// generations later it runs. Checksum-valid records that will not
// parse are a writer bug; the pass refuses to compact over them.
//
// Concurrency: the pass runs inside one executor Step of the
// compactord daemon. The scheduler is cooperative — a Step is atomic —
// so the pass never interleaves with shard appends; the single-writer
// discipline is the machine model, not a lock.

// compactFileFrames is the frame-count chunk size of one generation
// data file.
const compactFileFrames = 96

// Manifest is the parsed generation index: the one file that names the
// current generation. Its atomic replacement is the compaction commit.
type Manifest struct {
	Gen int
	// LostRecs / LostBytes carry cumulative salvage damage absorbed by
	// past compactions forward, so pruning a torn journal does not
	// erase the evidence that it was torn.
	LostRecs, LostBytes int
	Files               []ManifestFile
}

// ManifestFile is one generation data file with its replay footprint.
type ManifestFile struct {
	Path   string
	Frames int
	// MinAt / MaxAt bound the sample-delta timestamps inside, letting
	// windowed queries skip whole files (0,0 for marker-only files).
	MinAt, MaxAt uint64
}

// manifestPayload serializes the manifest as one framed record:
//
//	#manifest gen=<g> files=<k> lostrecs=<n> lostbytes=<n>
//	file=<path> frames=<n> minat=<a> maxat=<b>
//	...
func manifestPayload(man *Manifest) []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "#manifest gen=%d files=%d lostrecs=%d lostbytes=%d\n",
		man.Gen, len(man.Files), man.LostRecs, man.LostBytes)
	for _, mf := range man.Files {
		fmt.Fprintf(&buf, "file=%s frames=%d minat=%d maxat=%d\n",
			mf.Path, mf.Frames, mf.MinAt, mf.MaxAt)
	}
	return record.Frame(buf.Bytes())
}

// parseManifest parses a manifest file. The last intact record wins
// (a rewritten manifest appends before its stale predecessor is
// reclaimed); no intact record, a malformed header, or a file-line
// count that disagrees with the header is damage — the caller treats
// the generation index as gone and falls back to the journals.
func parseManifest(data []byte) (*Manifest, error) {
	recs, _ := record.Scan(data)
	if len(recs) == 0 {
		return nil, fmt.Errorf("fleet: manifest has no intact record")
	}
	payload := recs[len(recs)-1]
	lines := strings.Split(strings.TrimRight(string(payload), "\n"), "\n")
	fields := strings.Fields(lines[0])
	if len(fields) == 0 || fields[0] != "#manifest" {
		return nil, fmt.Errorf("fleet: manifest record has no #manifest header")
	}
	man := &Manifest{}
	wantFiles := -1
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: malformed manifest field %q", f)
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, fmt.Errorf("fleet: manifest %s: %v", k, err)
		}
		switch k {
		case "gen":
			man.Gen = n
		case "files":
			wantFiles = n
		case "lostrecs":
			man.LostRecs = n
		case "lostbytes":
			man.LostBytes = n
		}
	}
	if man.Gen <= 0 {
		return nil, fmt.Errorf("fleet: manifest gen %d", man.Gen)
	}
	for _, line := range lines[1:] {
		mf := ManifestFile{}
		if _, err := fmt.Sscanf(line, "file=%s frames=%d minat=%d maxat=%d",
			&mf.Path, &mf.Frames, &mf.MinAt, &mf.MaxAt); err != nil {
			return nil, fmt.Errorf("fleet: manifest file line %q: %v", line, err)
		}
		man.Files = append(man.Files, mf)
	}
	if wantFiles >= 0 && wantFiles != len(man.Files) {
		return nil, fmt.Errorf("fleet: manifest names %d files, header says %d",
			len(man.Files), wantFiles)
	}
	return man, nil
}

// compactIO is the write-side the compaction pass runs against: the
// faultable kernel syscalls for the online daemon, direct disk ops for
// the offline API, and (in tests) a wrapper that fails at the k-th
// operation to sweep every fault point.
type compactIO interface {
	WriteSync(path string, data []byte) error
	Rename(oldPath, newPath string) error
	Remove(path string) error
}

// kernelCompactIO charges writes and renames through the (faultable)
// syscall layer on behalf of the compactord process. Removes are
// metadata-only disk ops.
type kernelCompactIO struct {
	m *kernel.Machine
	p *kernel.Process
}

func (io *kernelCompactIO) WriteSync(path string, data []byte) error {
	// The target is always a fresh temp path; clear any leftover from
	// an aborted pass first, because the write syscall appends.
	io.m.Kern.Disk().Remove(path)
	//viplint:allow record-frame compaction payloads are concatenations of already-framed records (encodeRec / manifestPayload)
	return io.m.Kern.SysWriteSync(io.p, path, data)
}

func (io *kernelCompactIO) Rename(oldPath, newPath string) error {
	return io.m.Kern.SysRename(io.p, oldPath, newPath)
}

func (io *kernelCompactIO) Remove(path string) error {
	io.m.Kern.Disk().Remove(path)
	return nil
}

// diskCompactIO is the offline write-side: direct disk mutation, no
// faults, no process.
type diskCompactIO struct {
	d *kernel.Disk
}

func (io *diskCompactIO) WriteSync(path string, data []byte) error {
	io.d.Remove(path)
	io.d.Append(path, data)
	return nil
}

func (io *diskCompactIO) Rename(oldPath, newPath string) error {
	return io.d.Rename(oldPath, newPath)
}

func (io *diskCompactIO) Remove(path string) error {
	io.d.Remove(path)
	return nil
}

// CompactResult summarizes one compaction pass.
type CompactResult struct {
	// Committed: the new manifest rename landed (the store's current
	// generation is now Gen). A pass can commit and still return an
	// error if pruning was interrupted — replay dedups the leftovers.
	Committed bool
	Gen       int
	// Files / Frames / Markers are the new generation's footprint.
	Files, Frames, Markers int
	// PrunedJournals / PrunedGenFiles count what the pass reclaimed.
	PrunedJournals, PrunedGenFiles int
}

// storeContents is everything one compaction pass read.
type storeContents struct {
	man     *Manifest  // nil if never compacted
	recs    []*DeltaRec
	markers []*WireMsg // deduped restart markers
	// journals are the journal paths that existed (the prune set);
	// lostRecs/lostBytes the cumulative salvage damage to carry
	// forward (prior generations' plus this pass's journals').
	journals            []string
	lostRecs, lostBytes int
}

// collectStore reads the whole durable store — current generation
// first (so its copy of a record wins the dedup), then every shard
// journal in shard order. An EIO or a damaged manifest aborts: a pass
// must never build a generation from a store it could not fully read,
// because committing it would prune files whose content it missed.
// Checksum-valid records that fail to parse (a torn map frame's inner
// fragments) are counted into the carried-forward loss instead.
func collectStore(disk *kernel.Disk) (*storeContents, error) {
	st := &storeContents{}
	agg := NewAggregate(1)
	markerSeen := make(map[[2]int]bool)
	absorb := func(data []byte, countLoss bool) error {
		recs, sal := record.Scan(data)
		if countLoss {
			st.lostRecs += sal.DroppedRecords
			st.lostBytes += sal.DroppedBytes
		}
		for _, payload := range recs {
			msg, err := DecodePayload(payload)
			if err != nil {
				// Checksum-valid but unparseable: the torn tail of a map
				// frame sheds its inner entry records as intact-looking
				// fragments (the map body is itself a framed stream). The
				// torn record was never acked, so its intact retry copy is
				// also in the store; the fragment is loss evidence to
				// carry forward, not content.
				if countLoss {
					st.lostRecs++
					st.lostBytes += len(payload)
				}
				continue
			}
			switch msg.Kind {
			case KindDelta, KindMap:
				agg.Apply(msg)
			case KindRestart:
				key := [2]int{msg.Shard, msg.Attempt}
				if !markerSeen[key] {
					markerSeen[key] = true
					st.markers = append(st.markers, msg)
				}
			}
		}
		return nil
	}

	if disk.Exists(ManifestPath) {
		data, err := disk.Read(ManifestPath)
		if err != nil {
			return nil, err
		}
		man, merr := parseManifest(data)
		if merr != nil {
			return nil, fmt.Errorf("fleet: compaction refused: %v", merr)
		}
		st.man = man
		st.lostRecs += man.LostRecs
		st.lostBytes += man.LostBytes
		for _, mf := range man.Files {
			//viplint:allow record-frame bytes go through record.Scan inside the absorb closure below
			data, err := disk.Read(mf.Path)
			if err != nil {
				return nil, err
			}
			// Generation files were written intact by a previous pass;
			// any salvage loss inside them is fresh damage this pass
			// must carry forward too.
			if err := absorb(data, true); err != nil {
				return nil, err
			}
		}
	}
	for i := 0; i < maxShardSlots; i++ {
		path := ShardJournalPath(i)
		if !disk.Exists(path) {
			continue
		}
		//viplint:allow record-frame bytes go through record.Scan inside the absorb closure above
		data, err := disk.Read(path)
		if err != nil {
			return nil, err
		}
		st.journals = append(st.journals, path)
		if err := absorb(data, true); err != nil {
			return nil, err
		}
	}
	for _, h := range agg.Hosts() {
		st.recs = append(st.recs, agg.Records(h)...)
	}
	return st, nil
}

// encodeRec re-frames one applied record canonically, so the same
// store always compacts to the same bytes.
func encodeRec(rec *DeltaRec) ([]byte, error) {
	if rec.Kind == KindMap {
		return MapFrame(rec.Host, rec.Seq, rec.Epoch, rec.At, rec.Entries)
	}
	return DeltaFrame(rec.Host, rec.Seq, rec.At, rec.Counts)
}

// compactPass runs one full compaction: collect, sort, write the new
// generation temp-then-rename, commit the manifest, prune. See the
// file comment for the crash-safety argument at each fault point.
func compactPass(disk *kernel.Disk, io compactIO) (CompactResult, error) {
	var res CompactResult
	st, err := collectStore(disk)
	if err != nil {
		return res, err
	}
	if len(st.journals) == 0 {
		return res, nil // nothing new since the last pass
	}

	// Sort by (At, Host, Seq): the time axis first, so a windowed query
	// over a generation is a contiguous run and ManifestFile.MinAt/MaxAt
	// bounds are tight.
	sort.Slice(st.recs, func(i, j int) bool {
		a, b := st.recs[i], st.recs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Host != b.Host {
			return a.Host < b.Host
		}
		return a.Seq < b.Seq
	})
	sort.Slice(st.markers, func(i, j int) bool {
		a, b := st.markers[i], st.markers[j]
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.Attempt < b.Attempt
	})

	newGen := 1
	if st.man != nil {
		newGen = st.man.Gen + 1
	}
	man := &Manifest{Gen: newGen, LostRecs: st.lostRecs, LostBytes: st.lostBytes}

	// Chunk into data files. Restart markers lead the first file (they
	// carry no timestamp and must survive every generation).
	type chunk struct {
		buf    bytes.Buffer
		frames int
		minAt  uint64
		maxAt  uint64
		any    bool
	}
	var chunks []*chunk
	cur := &chunk{}
	chunks = append(chunks, cur)
	for _, mk := range st.markers {
		cur.buf.Write(RestartJournalFrame(mk.Shard, mk.Attempt))
		cur.frames++
		res.Markers++
	}
	for _, rec := range st.recs {
		if cur.frames >= compactFileFrames {
			cur = &chunk{}
			chunks = append(chunks, cur)
		}
		frame, ferr := encodeRec(rec)
		if ferr != nil {
			return res, ferr
		}
		cur.buf.Write(frame)
		cur.frames++
		if !cur.any || rec.At < cur.minAt {
			cur.minAt = rec.At
		}
		if !cur.any || rec.At > cur.maxAt {
			cur.maxAt = rec.At
		}
		cur.any = true
	}

	for idx, ch := range chunks {
		if ch.frames == 0 {
			continue // an empty store still prunes its empty journals
		}
		path := GenFilePath(newGen, idx)
		tmp := path + ".tmp"
		if err := io.WriteSync(tmp, ch.buf.Bytes()); err != nil {
			return res, err
		}
		if err := io.Rename(tmp, path); err != nil {
			return res, err
		}
		man.Files = append(man.Files, ManifestFile{
			Path: path, Frames: ch.frames, MinAt: ch.minAt, MaxAt: ch.maxAt,
		})
		res.Files++
		res.Frames += ch.frames
	}

	// COMMIT POINT: the manifest rename atomically switches the current
	// generation. Everything before it left the old generation live;
	// everything after is reclaim that replay tolerates losing.
	mtmp := ManifestPath + ".tmp"
	if err := io.WriteSync(mtmp, manifestPayload(man)); err != nil {
		return res, err
	}
	if err := io.Rename(mtmp, ManifestPath); err != nil {
		return res, err
	}
	res.Committed = true
	res.Gen = newGen

	// Persist-before-prune: only now reclaim the inputs.
	if st.man != nil {
		for _, mf := range st.man.Files {
			if err := io.Remove(mf.Path); err != nil {
				return res, err
			}
			res.PrunedGenFiles++
		}
	}
	for _, path := range st.journals {
		if err := io.Remove(path); err != nil {
			return res, err
		}
		res.PrunedJournals++
	}
	return res, nil
}

// CompactDisk compacts the store offline (direct disk mutation, no
// machine): the API vipreport-side tooling and the quickcheck oracle
// drive.
func CompactDisk(disk *kernel.Disk) (CompactResult, error) {
	return compactPass(disk, &diskCompactIO{d: disk})
}

// Compactor is the compactord daemon: one compaction pass per wake.
type Compactor struct {
	c    *Collector
	proc *kernel.Process
	// Supervisor state, same shape as a shard's — but a gave-up
	// compactor only stops compacting; it never fails the service
	// (journals keep the store complete, just unreclaimed).
	restarts      int
	nextRestartAt uint64
	gaveUp        bool
}

// Alive reports whether the compactor process is running.
func (co *Compactor) Alive() bool {
	return co.proc != nil && !co.proc.Killed() && !co.proc.Done()
}

// Restarts returns the supervisor attempts consumed by the compactor.
func (co *Compactor) Restarts() int { return co.restarts }

// Step implements kernel.Executor: one atomic compaction pass, then
// sleep a period. The pass's syscalls are faultable; an injected crash
// kills the process mid-pass, which is exactly the fault point the
// commit discipline exists for.
func (co *Compactor) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	res, err := compactPass(m.Kern.Disk(), &kernelCompactIO{m: m, p: p})
	if res.Committed {
		co.c.stats.Compactions++
	}
	if p.Killed() {
		return kernel.StepBlocked
	}
	if err != nil {
		co.c.stats.CompactErrors++
	}
	m.Kern.Sleep(p, co.c.cfg.CompactEveryCycles)
	return kernel.StepBlocked
}

// spawnCompactor registers the compactord daemon process (unpinned —
// the scheduler floats it to whatever core is idle).
func (c *Collector) spawnCompactor(m *kernel.Machine) error {
	if c.compactor == nil {
		c.compactor = &Compactor{c: c}
	}
	proc, err := m.Kern.NewProcess("compactord", c.compactor)
	if err != nil {
		return err
	}
	proc.Daemon = true
	c.compactor.proc = proc
	return nil
}

// superviseCompactor restarts a dead compactor under the same bounded
// jittered-backoff budget as a shard. Exhausting it is loud but not
// fatal: stats show the give-up, and the unreclaimed journals keep the
// store complete.
func (c *Collector) superviseCompactor(m *kernel.Machine, now uint64) {
	co := c.compactor
	if co == nil || co.Alive() {
		return
	}
	if co.restarts >= c.cfg.MaxRestarts {
		co.gaveUp = true
		return
	}
	if co.nextRestartAt > now {
		return
	}
	co.restarts++
	c.stats.Restarts++
	if err := c.spawnCompactor(m); err != nil {
		co.nextRestartAt = now + c.backoff(co.restarts)
		return
	}
	co.nextRestartAt = 0
}
