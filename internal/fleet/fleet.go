package fleet

import (
	"fmt"
	"slices"
	"sort"

	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// FleetConfig describes one fleet run: N hosts shipping deltas over a
// faulty network into the collector, all on one simulated machine.
type FleetConfig struct {
	// Hosts is the sender count (default 4; endpoints 1..Hosts).
	Hosts int
	// DeltasPerHost overrides the senders' delta count (default 12).
	DeltasPerHost int
	// Seed derives every per-host workload seed.
	Seed int64
	// Net is the network fault plan.
	Net NetFaultPlan
	// Collector and Sender are the component configs; Sender.Host,
	// Sender.Seed, and Sender.Deltas are overridden per host.
	Collector CollectorConfig
	Sender    SenderConfig
	// MaxCycles bounds the run (default 2_000_000_000).
	MaxCycles uint64
	// MaxCollectorRestarts bounds the supervisor's per-shard restart
	// budget (default 8, the core.RunRecovery shape: bounded attempts,
	// then give up loudly). Copied into Collector.MaxRestarts.
	MaxCollectorRestarts int
	// SupervisorPeriodCycles is the crash-check period (default 50_000).
	SupervisorPeriodCycles uint64
}

func (c *FleetConfig) fill() {
	if c.Hosts == 0 {
		c.Hosts = 4
	}
	if c.DeltasPerHost == 0 {
		c.DeltasPerHost = 12
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 2_000_000_000
	}
	if c.MaxCollectorRestarts == 0 {
		c.MaxCollectorRestarts = 8
	}
	if c.SupervisorPeriodCycles == 0 {
		c.SupervisorPeriodCycles = 50_000
	}
}

// FleetResult is everything a fleet run leaves behind: the live
// components (whose in-memory delta lists are the per-host oracles),
// the offline-replayed aggregate, and the integrity assembly.
type FleetResult struct {
	Config    FleetConfig
	Collector *Collector
	Senders   []*Sender
	// Replayed is the journal truth rebuilt offline after the run (nil
	// if the journal was unreadable); Replay its read-back accounting.
	Replayed *Aggregate
	Replay   JournalReplay
	// Integrity is the offline fleet integrity assembly.
	Integrity *FleetIntegrity
	// Net is the network injector accounting.
	Net NetFaultStats
	// RunErr is the machine-run error, if any (cycle limit, deadlock).
	RunErr error
	// SupervisorGaveUp reports the restart budget ran out with the
	// collector still down.
	SupervisorGaveUp bool
}

// RunFleet executes one fleet run on the given machine. Disk fault
// injectors should already be armed by the caller (the chaos harness
// arms them between construction and run, like RunChaosSchedule). On
// an SMP machine the collector shards pin to separate cores and the
// per-shard ingest pipelines run concurrently on the simulated clock.
func RunFleet(m *kernel.Machine, cfg FleetConfig) (*FleetResult, error) {
	cfg.fill()
	now := func() uint64 { return m.CPU().Cycles() }
	net := NewNetwork(now, cfg.Net)

	ccfg := cfg.Collector
	if ccfg.Seed == 0 {
		ccfg.Seed = cfg.Seed
	}
	if ccfg.MaxRestarts == 0 {
		ccfg.MaxRestarts = cfg.MaxCollectorRestarts
	}
	collector, err := NewCollector(m, net, ccfg)
	if err != nil {
		return nil, err
	}
	res := &FleetResult{Config: cfg, Collector: collector}

	for h := 1; h <= cfg.Hosts; h++ {
		scfg := cfg.Sender
		scfg.Host = h
		scfg.Deltas = cfg.DeltasPerHost
		scfg.Seed = cfg.Seed*0x9E3779B9 + int64(h)
		s, err := NewSender(m, net, now, collector.RouteEndpoint, scfg)
		if err != nil {
			return nil, err
		}
		res.Senders = append(res.Senders, s)
	}

	// The supervisor: a periodic crash check that fails dead shards
	// over to their peers and restarts them through store replay,
	// bounded per shard like core.RunRecovery's attempt budget.
	m.Kern.AddTicker(cfg.SupervisorPeriodCycles, func() {
		collector.Supervise(m)
	})

	res.RunErr = m.Kern.Run(cfg.MaxCycles)

	// Shutdown drain: keep supervising (dead shards restart under
	// backoff), advance every core past the worst in-flight delay so
	// queued datagrams and backoff gates come due, and ingest the
	// stragglers — until the service is whole with nothing pending, or
	// some shard's restart budget is exhausted.
	fcfg := collector.Config()
	step := net.MaxDelayCycles() + 1
	if b := 2 * fcfg.RestartBackoffCycles; b > step {
		step = b
	}
	maxDrains := fcfg.MaxRestarts*fcfg.Procs*10 + 10
	for attempt := 0; attempt < maxDrains; attempt++ {
		collector.Supervise(m)
		for _, cc := range m.Cores {
			cc.AdvanceIdle(step)
		}
		collector.DrainRemaining(m)
		if collector.Alive() && collector.PendingTotal() == 0 {
			break
		}
		if collector.GaveUp() {
			break
		}
	}
	res.SupervisorGaveUp = collector.GaveUp()

	// Finalize: commit the aggregate snapshot and the collector's stats
	// record, restarting if the commit itself is struck.
	for attempt := 0; attempt <= 2; attempt++ {
		if !collector.Alive() {
			collector.Supervise(m)
			for _, cc := range m.Cores {
				cc.AdvanceIdle(step)
			}
			if !collector.Alive() {
				if collector.GaveUp() {
					res.SupervisorGaveUp = true
					break
				}
				continue
			}
		}
		collector.Finalize(m)
		if collector.Alive() {
			break
		}
	}

	for _, s := range res.Senders {
		s.MarkShutdownHolds()
	}

	// Offline truth: replay the durable store fresh (compacted
	// generation plus every shard journal), then assemble integrity
	// from the disk artifacts plus the network counters.
	res.Net = net.Stats()
	hosts := make([]int, cfg.Hosts)
	for i := range hosts {
		hosts[i] = i + 1
	}
	replayed, rep, rerr := LoadStore(m.Kern.Disk(), ccfg.Shards)
	res.Replay = rep
	if rerr != nil {
		// Store unreadable offline: fall back to the live aggregate
		// for gap analysis and mark the damage.
		res.Integrity = AssembleIntegrity(m.Kern.Disk(), collector.Aggregate(), rep, hosts, res.Net)
		res.Integrity.JournalUnreadable = true
	} else {
		res.Replayed = replayed
		res.Integrity = AssembleIntegrity(m.Kern.Disk(), replayed, rep, hosts, res.Net)
	}
	if res.SupervisorGaveUp && res.Integrity.Collector != nil {
		// A clean stats record cannot exist if the supervisor gave up
		// with the collector down; if one does, it is stale evidence
		// from before the final crash — distrust it.
		res.Integrity.Collector = nil
	}
	return res, nil
}

// Conservation is the fleet-level accounting check: every generated
// sample is either in the collector aggregate or held by its host, with
// per-key exactness (zero misattribution, zero double-counting).
type Conservation struct {
	GeneratedSamples uint64 // all samples generated across hosts
	AppliedSamples   uint64 // samples whose delta seq the collector applied
	HeldSamples      uint64 // samples in deltas the collector never applied
	AggregateSamples uint64 // the aggregate's own total
	// Mismatches describes every violated equality (empty == balanced).
	Mismatches []string
}

// Balanced reports whether the conservation equalities all held.
func (c *Conservation) Balanced() bool { return len(c.Mismatches) == 0 }

// CheckConservation verifies the headline invariant against the
// in-memory per-host oracles: the aggregate must equal, key for key,
// the union of exactly the deltas whose seqs it applied — no sample
// missing, duplicated, or attributed to the wrong host/image.
func CheckConservation(senders []*Sender, agg *Aggregate) *Conservation {
	c := &Conservation{}
	expected := make(map[oprofile.Key]uint64)
	for _, s := range senders {
		host := s.cfg.Host
		for _, d := range s.Deltas {
			c.GeneratedSamples += d.Total
			if agg.Applied(host, d.Seq) {
				c.AppliedSamples += d.Total
				for k, cnt := range d.Counts {
					expected[k] += cnt
				}
			} else {
				c.HeldSamples += d.Total
			}
		}
	}
	c.AggregateSamples = agg.Total()

	if c.GeneratedSamples != c.AppliedSamples+c.HeldSamples {
		c.Mismatches = append(c.Mismatches, fmt.Sprintf(
			"generated %d != applied %d + held %d",
			c.GeneratedSamples, c.AppliedSamples, c.HeldSamples))
	}
	if c.AggregateSamples != c.AppliedSamples {
		c.Mismatches = append(c.Mismatches, fmt.Sprintf(
			"aggregate total %d != applied oracle total %d",
			c.AggregateSamples, c.AppliedSamples))
	}
	got := agg.Counts()
	keys := make(map[oprofile.Key]bool, len(expected)+len(got))
	for k := range expected {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	ordered := make([]oprofile.Key, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		return a.Off < b.Off
	})
	for _, k := range ordered {
		if expected[k] != got[k] {
			c.Mismatches = append(c.Mismatches, fmt.Sprintf(
				"key %s/%s ev=%d off=%#x: oracle %d, aggregate %d",
				k.Proc, k.Image, k.Event, uint64(k.Off), expected[k], got[k]))
		}
	}
	return c
}

// CheckMapReplication verifies code-map replication against the
// in-memory per-host oracles: every acked map record must be in the
// aggregate, and every applied one must match the sender's entries
// exactly — same epoch, same methods, same bytes of meaning. Returns
// the violations (empty == replicated faithfully).
func CheckMapReplication(senders []*Sender, agg *Aggregate) []string {
	var bad []string
	for _, s := range senders {
		host := s.cfg.Host
		maps := agg.Maps(host)
		for _, d := range s.Deltas {
			if d.Kind != KindMap {
				continue
			}
			applied := agg.Applied(host, d.Seq)
			if d.Acked && !applied {
				bad = append(bad, fmt.Sprintf(
					"host %d: acked map epoch %d (seq %d) missing from aggregate",
					host, d.Epoch, d.Seq))
				continue
			}
			if !applied {
				continue
			}
			if d.Epoch >= len(maps) || len(maps[d.Epoch]) != len(d.Entries) {
				got := 0
				if d.Epoch < len(maps) {
					got = len(maps[d.Epoch])
				}
				bad = append(bad, fmt.Sprintf(
					"host %d epoch %d: replicated %d entries, sender wrote %d",
					host, d.Epoch, got, len(d.Entries)))
				continue
			}
			if !slices.Equal(maps[d.Epoch], d.Entries) {
				bad = append(bad, fmt.Sprintf(
					"host %d epoch %d: replicated entries differ from what the sender wrote",
					host, d.Epoch))
			}
		}
	}
	return bad
}
