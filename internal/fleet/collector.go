package fleet

import (
	"fmt"
	"sort"
	"sync"

	"viprof/internal/core"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// On-disk layout of the fleet collector service.
const (
	// FleetDir is the root of every fleet artifact.
	FleetDir = "var/fleet"
	// JournalPrefix is the shared prefix of every shard's write-ahead
	// journal (the disk fault plans target it to strike all shards).
	JournalPrefix = "var/fleet/shard"
	// CollectorStatsFile is the service's framed self-counter record;
	// absence means the collector never shut down cleanly.
	CollectorStatsFile = "var/fleet/collector.stats"
	// AggregateFile is the merged aggregate's committed snapshot, a
	// framed WriteCounts body committed temp-then-rename so vipreport
	// and vipdiff can query it like any sample file.
	AggregateFile = "var/fleet/aggregate.samples"
	// GenDir holds the compacted generations; ManifestPath is the
	// atomically-committed index naming the current generation's files.
	GenDir       = "var/fleet/gen"
	ManifestPath = "var/fleet/gen/MANIFEST"
)

// maxShardSlots bounds offline shard-journal discovery: readers probe
// ShardJournalPath(0..maxShardSlots-1) by direct path, so a damaged
// directory listing can never hide a journal.
const maxShardSlots = 64

// ShardJournalPath names shard i's write-ahead journal.
func ShardJournalPath(i int) string {
	return fmt.Sprintf("%s%02d.journal", JournalPrefix, i)
}

// GenFilePath names one data file of a compacted generation.
func GenFilePath(gen, idx int) string {
	return fmt.Sprintf("%s/g%04d-%02d.samples", GenDir, gen, idx)
}

// SpillPath is the host's framed salvageable overflow file: deltas the
// sender parked after exhausting its retry budget.
func SpillPath(host int) string {
	return fmt.Sprintf("%s/host%02d/sender.spill", FleetDir, host)
}

// SenderStatsPath is the host sender's framed self-counter record.
// Deliberately outside the host spill directory, so listing damage
// aimed at spill discovery cannot hide it (it is read by direct path).
func SenderStatsPath(host int) string {
	return fmt.Sprintf("%s/stats/host%02d.stats", FleetDir, host)
}

// DeltaRec is one applied wire record retained by the aggregate: the
// unit the LSM store compacts, the windowed queries filter, and the
// shard merge dedups on (Host, Seq).
type DeltaRec struct {
	Host int
	Seq  uint64
	At   uint64
	Kind string
	// Counts/Total are the sample body (deltas).
	Counts map[oprofile.Key]uint64
	Total  uint64
	// Epoch/Entries are the replicated code map (maps).
	Epoch   int
	Entries []core.MapEntry
}

// Aggregate is a collector shard's pure in-memory state: hash-sharded
// counts for cheap queries, plus the per-(host, seq) record set that
// makes ingestion idempotent, merging duplicate-suppressed, and
// windowed queries exact. It has no I/O and no clock, so the quickcheck
// property tests drive it directly against an oracle.
type Aggregate struct {
	shards []map[oprofile.Key]uint64
	byHost map[int]map[uint64]*DeltaRec
	// hostTotals is samples applied per host; maxSeq the highest seq
	// applied per host (gaps below it are loud).
	hostTotals map[int]uint64
	maxSeq     map[int]uint64
	lastSeq    map[int]uint64

	// Ingested counts fresh applies; Duplicates seq-burned absorptions;
	// OutOfOrder arrivals below the host's high-water mark (absorbed,
	// counted as evidence the network reordered); MapsApplied fresh
	// code-map applies (a subset of Ingested).
	Ingested, Duplicates, OutOfOrder, MapsApplied uint64
}

// NewAggregate builds an empty aggregate with the given hash-shard
// count.
func NewAggregate(shards int) *Aggregate {
	if shards <= 0 {
		shards = 8
	}
	a := &Aggregate{
		shards:     make([]map[oprofile.Key]uint64, shards),
		byHost:     make(map[int]map[uint64]*DeltaRec),
		hostTotals: make(map[int]uint64),
		maxSeq:     make(map[int]uint64),
		lastSeq:    make(map[int]uint64),
	}
	for i := range a.shards {
		a.shards[i] = make(map[oprofile.Key]uint64)
	}
	return a
}

// shardOf picks the hash shard for a key (FNV-1a over the identifying
// fields; any stable hash works, determinism is what matters).
func (a *Aggregate) shardOf(k oprofile.Key) int {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(k.Image)
	mix(k.Proc)
	h ^= uint64(k.Off) ^ uint64(k.Event)<<32 ^ uint64(k.Epoch)<<16
	h *= 1099511628211
	return int(h % uint64(len(a.shards)))
}

// Applied reports whether (host, seq) has been applied.
func (a *Aggregate) Applied(host int, seq uint64) bool {
	return a.byHost[host][seq] != nil
}

// Apply ingests one decoded delta or replicated map. It is idempotent:
// a seq already burned for the host is absorbed without touching the
// counts, so duplicated or replayed records can never double-count.
func (a *Aggregate) Apply(msg *WireMsg) (fresh bool) {
	if msg.Kind != KindDelta && msg.Kind != KindMap {
		return false
	}
	return a.applyRec(&DeltaRec{
		Host: msg.Host, Seq: msg.Seq, At: msg.At, Kind: msg.Kind,
		Counts: msg.Counts, Total: msg.Total(),
		Epoch: msg.Epoch, Entries: msg.Entries,
	})
}

// applyRec burns the seq and folds the record in (shared by Apply and
// MergeAggregates; the rec is retained by reference).
func (a *Aggregate) applyRec(rec *DeltaRec) bool {
	set, ok := a.byHost[rec.Host]
	if !ok {
		set = make(map[uint64]*DeltaRec)
		a.byHost[rec.Host] = set
	}
	if set[rec.Seq] != nil {
		a.Duplicates++
		return false
	}
	if rec.Seq < a.lastSeq[rec.Host] {
		a.OutOfOrder++
	}
	a.lastSeq[rec.Host] = rec.Seq
	set[rec.Seq] = rec
	if rec.Seq > a.maxSeq[rec.Host] {
		a.maxSeq[rec.Host] = rec.Seq
	}
	for k, c := range rec.Counts {
		a.shards[a.shardOf(k)][k] += c
		a.hostTotals[rec.Host] += c
	}
	if rec.Kind == KindMap {
		a.MapsApplied++
	}
	a.Ingested++
	return true
}

// MergeAggregates builds the duplicate-suppressed union of the parts:
// each (host, seq) record is taken from the first part that holds it,
// in argument order. This is how the live multi-shard aggregate is
// assembled — a record a crashed shard applied and a failover peer (or
// a restart replay) re-applied counts exactly once, no matter how many
// shards saw it.
func MergeAggregates(shards int, parts ...*Aggregate) *Aggregate {
	out := NewAggregate(shards)
	for _, p := range parts {
		if p == nil {
			continue
		}
		hosts := make([]int, 0, len(p.byHost))
		for h := range p.byHost {
			hosts = append(hosts, h)
		}
		sort.Ints(hosts)
		for _, h := range hosts {
			seqs := make([]uint64, 0, len(p.byHost[h]))
			for s := range p.byHost[h] {
				seqs = append(seqs, s)
			}
			sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
			for _, s := range seqs {
				if out.byHost[h][s] != nil {
					continue
				}
				out.applyRec(p.byHost[h][s])
			}
		}
	}
	// The merge's own dedup absorptions are not protocol duplicates;
	// reset the counter so the union reads like one clean aggregate.
	out.Duplicates = 0
	out.OutOfOrder = 0
	return out
}

// Counts merges the hash shards into one map (the queryable view).
func (a *Aggregate) Counts() map[oprofile.Key]uint64 {
	out := make(map[oprofile.Key]uint64)
	for _, sh := range a.shards {
		for k, c := range sh {
			out[k] += c
		}
	}
	return out
}

// QueryWindow folds only the sample deltas generated in [from, to) on
// the sender-side cycle clock — the time-windowed query over the
// compacted store. QueryWindow(0, ^0) == Counts() by construction, and
// any boundary t partitions: Window(0,t) + Window(t,^0) == Counts().
func (a *Aggregate) QueryWindow(from, to uint64) map[oprofile.Key]uint64 {
	out := make(map[oprofile.Key]uint64)
	for _, recs := range a.byHost {
		for _, rec := range recs {
			if rec.At < from || rec.At >= to {
				continue
			}
			for k, c := range rec.Counts {
				out[k] += c
			}
		}
	}
	return out
}

// TimeBounds returns the [min, max] At over applied records (ok=false
// when empty) — the axis vipreport's -window flag cuts on.
func (a *Aggregate) TimeBounds() (min, max uint64, ok bool) {
	for _, recs := range a.byHost {
		for _, rec := range recs {
			if !ok || rec.At < min {
				min = rec.At
			}
			if !ok || rec.At > max {
				max = rec.At
			}
			ok = true
		}
	}
	return min, max, ok
}

// Maps returns the host's replicated code maps as a per-epoch entry
// slice (index = epoch), ready for core.NewMapChain — nil if the host
// replicated none.
func (a *Aggregate) Maps(host int) [][]core.MapEntry {
	maxEpoch := 0
	for _, rec := range a.byHost[host] {
		if rec.Kind == KindMap && rec.Epoch > maxEpoch {
			maxEpoch = rec.Epoch
		}
	}
	if maxEpoch == 0 {
		return nil
	}
	perEpoch := make([][]core.MapEntry, maxEpoch+1)
	for _, rec := range a.byHost[host] {
		if rec.Kind == KindMap {
			perEpoch[rec.Epoch] = append(perEpoch[rec.Epoch], rec.Entries...)
		}
	}
	return perEpoch
}

// MapEpochs returns how many distinct epochs the host replicated maps
// for.
func (a *Aggregate) MapEpochs(host int) int {
	n := 0
	for _, rec := range a.byHost[host] {
		if rec.Kind == KindMap {
			n++
		}
	}
	return n
}

// Records returns the host's applied records sorted by seq (shared
// slices; callers must not mutate).
func (a *Aggregate) Records(host int) []*DeltaRec {
	recs := make([]*DeltaRec, 0, len(a.byHost[host]))
	for _, rec := range a.byHost[host] {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs
}

// Total is the aggregate sample total.
func (a *Aggregate) Total() uint64 {
	var n uint64
	for _, t := range a.hostTotals {
		n += t
	}
	return n
}

// HostTotal is the samples applied for one host.
func (a *Aggregate) HostTotal(host int) uint64 { return a.hostTotals[host] }

// Hosts returns the hosts with applied records, sorted.
func (a *Aggregate) Hosts() []int {
	out := make([]int, 0, len(a.byHost))
	for h := range a.byHost {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// MaxSeq is the highest applied seq for the host.
func (a *Aggregate) MaxSeq(host int) uint64 { return a.maxSeq[host] }

// Gaps returns the host's unapplied seqs below its high-water mark —
// the candidate MissingDelta set the integrity assembly must explain
// from host-side artifacts (spilled or lost) or poison loudly.
func (a *Aggregate) Gaps(host int) []uint64 {
	var out []uint64
	set := a.byHost[host]
	for s := uint64(1); s <= a.maxSeq[host]; s++ {
		if set[s] == nil {
			out = append(out, s)
		}
	}
	return out
}

// CollectorConfig tunes the collector service.
type CollectorConfig struct {
	// WakeCycles is each shard's ingest poll period (default 8_000).
	WakeCycles uint64
	// Shards is the per-aggregate hash-shard count (default 8).
	Shards int
	// Procs is the number of collector shard processes, each pinned to
	// a core (default: one per machine core, capped at 8).
	Procs int
	// CompactEveryCycles is the compactor daemon's pass period; 0
	// disables online compaction (the store still compacts offline via
	// CompactDisk).
	CompactEveryCycles uint64
	// RestartBackoffCycles is the base of the supervisor's jittered
	// exponential backoff between restart attempts of one shard
	// (default 100_000).
	RestartBackoffCycles uint64
	// MaxRestarts bounds supervisor restart attempts per shard (and for
	// the compactor), default 8 — the core.RunRecovery shape: bounded
	// attempts, then give up loudly.
	MaxRestarts int
	// Seed drives the supervisor's backoff jitter.
	Seed int64
}

func (c *CollectorConfig) fill(cores int) {
	if c.WakeCycles == 0 {
		c.WakeCycles = 8_000
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Procs <= 0 {
		c.Procs = cores
		if c.Procs > 8 {
			c.Procs = 8
		}
	}
	if c.Procs > maxShardSlots {
		c.Procs = maxShardSlots
	}
	if c.RestartBackoffCycles == 0 {
		c.RestartBackoffCycles = 100_000
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 8
	}
}

// CollectorStats is the service's self-accounting, persisted framed at
// shutdown (see CollectorPersisted in integrity.go).
type CollectorStats struct {
	// Shards is the configured shard-process count.
	Shards uint64
	// Ingested / Duplicates / OutOfOrder / MapsApplied sum the shards'
	// cumulative ingest counters.
	Ingested, Duplicates, OutOfOrder, MapsApplied uint64
	// WireDamaged counts received frames that failed their checksum or
	// would not parse (dropped without ack — the sender retries).
	WireDamaged uint64
	// JournalErrors counts failed write-ahead appends (the record was
	// not applied and not acked).
	JournalErrors uint64
	// AcksSent counts acknowledgements (including re-acks of absorbed
	// duplicates and handoff-burned seqs).
	AcksSent uint64
	// Restarts counts supervisor shard restarts after a crash;
	// ReplayErrors failed store replays during restart; ReplayedFrames
	// the frames rebuilt into memory across all restarts; MarkerErrors
	// failed restart-marker appends; DeadLetters datagrams flushed from
	// dead shard queues at restart (or left undeliverable at shutdown).
	Restarts, ReplayErrors, ReplayedFrames, MarkerErrors, DeadLetters uint64
	// Failovers counts serving-set shrinks (a dead shard's hosts
	// rehashed onto its peers); Handoffs the peer-applied seqs burned
	// into handoff sets during failover and restart (each one a
	// suppressed duplicate apply); HandoffErrors handoff burns aborted
	// by an unreadable peer journal (the failover is retried, never
	// completed blind); Misrouted records that arrived at a shard the
	// rendezvous hash no longer routes their host to (dropped unacked —
	// the sender retries against the current route).
	Failovers, Handoffs, HandoffErrors, Misrouted uint64
	// Compactions counts committed compaction passes; CompactErrors
	// passes aborted by a write/rename fault (the old generation stays
	// live — an abort never destroys).
	Compactions, CompactErrors uint64
	// SnapshotErrors counts failed aggregate-snapshot commits.
	SnapshotErrors uint64
	// Clean reports an orderly shutdown with every shard alive reached
	// the stats write.
	Clean bool
}

// JournalReplay is the outcome of one offline store load: the manifest
// generation plus every shard journal, read through the salvage layer.
type JournalReplay struct {
	// Salvage sums record-level damage across every file read.
	Salvage record.Salvage
	// Deltas / Maps / Duplicates / Markers / ParseErrors classify the
	// intact records. ParseErrors are checksum-valid records that would
	// not parse — a writer bug, not disk damage, and loud.
	Deltas, Maps, Duplicates, Markers, ParseErrors int
	// Journals is how many shard journals were found; GenFiles and
	// GenFrames the compacted generation's footprint; ManifestGen its
	// generation number (0 = never compacted).
	Journals, GenFiles, GenFrames int
	ManifestGen                   int
	// ManifestDamaged marks a manifest that existed but was torn or
	// unparseable — the generation index is gone, which is loud
	// degradation even though the journals still replay.
	ManifestDamaged bool
}

// replayInto classifies one store payload into the aggregate.
func (rep *JournalReplay) replayInto(agg *Aggregate, payload []byte) {
	msg, err := DecodePayload(payload)
	if err != nil {
		rep.ParseErrors++
		return
	}
	rep.applyDecoded(agg, msg)
}

// applyDecoded classifies one already-decoded payload (nil = parse
// failure) into the aggregate.
func (rep *JournalReplay) applyDecoded(agg *Aggregate, msg *WireMsg) {
	if msg == nil {
		rep.ParseErrors++
		return
	}
	switch msg.Kind {
	case KindDelta:
		if agg.Apply(msg) {
			rep.Deltas++
		} else {
			rep.Duplicates++
		}
	case KindMap:
		if agg.Apply(msg) {
			rep.Maps++
		} else {
			rep.Duplicates++
		}
	case KindRestart:
		rep.Markers++
	}
}

// LoadStore rebuilds an aggregate from the durable store: the current
// compacted generation (via the manifest) first, then every shard
// journal, all through the salvage layer. Torn tails (a crash
// mid-append) fail their checksum and are dropped — safely, because an
// unjournaled record was never acked and the sender still holds it;
// journal frames not yet pruned by compaction dedup against the
// generation via seq burning. Returns an error only if a store file
// exists but cannot be read (injected EIO) — the caller retries or
// degrades loudly.
func LoadStore(disk *kernel.Disk, shards int) (*Aggregate, JournalReplay, error) {
	agg := NewAggregate(shards)
	var rep JournalReplay
	if err := loadManifestInto(disk, agg, &rep); err != nil {
		return nil, rep, err
	}

	// Shard journal reads go through the (stateful, fault-injected)
	// disk sequentially; the pure salvage scan + decode of each journal
	// then runs concurrently, share-nothing, and the results are applied
	// in shard order — deterministic output, and the scan parallelism is
	// real multi-shard work for the race detector.
	var datas [][]byte
	for i := 0; i < maxShardSlots; i++ {
		path := ShardJournalPath(i)
		if !disk.Exists(path) {
			continue
		}
		//viplint:allow record-frame bytes reach record.Scan in the concurrent scan goroutines below
		data, err := disk.Read(path)
		if err != nil {
			return nil, rep, err
		}
		datas = append(datas, data)
	}
	type decoded struct {
		msg *WireMsg // nil on parse failure
	}
	type scanned struct {
		recs []decoded
		sal  record.Salvage
	}
	results := make([]scanned, len(datas))
	var wg sync.WaitGroup
	for idx, data := range datas {
		wg.Add(1)
		go func(idx int, data []byte) {
			defer wg.Done()
			recs, sal := record.Scan(data)
			out := make([]decoded, len(recs))
			for i, payload := range recs {
				msg, err := DecodePayload(payload)
				if err == nil {
					out[i].msg = msg
				}
			}
			results[idx] = scanned{recs: out, sal: sal}
		}(idx, data)
	}
	wg.Wait()
	for _, r := range results {
		rep.Journals++
		rep.Salvage.DroppedRecords += r.sal.DroppedRecords
		rep.Salvage.DroppedBytes += r.sal.DroppedBytes
		for _, d := range r.recs {
			rep.applyDecoded(agg, d.msg)
		}
	}
	return agg, rep, nil
}

// loadManifestInto replays the current compacted generation (if any)
// into the aggregate: manifest first, then every file it names, each
// through the salvage scan. A torn or unparseable manifest is marked
// damaged (and its generation skipped — the journals still replay); an
// EIO on the manifest or a generation file is an error.
func loadManifestInto(disk *kernel.Disk, agg *Aggregate, rep *JournalReplay) error {
	if !disk.Exists(ManifestPath) {
		return nil
	}
	data, err := disk.Read(ManifestPath)
	if err != nil {
		return err
	}
	man, merr := parseManifest(data)
	if merr != nil {
		rep.ManifestDamaged = true
		return nil
	}
	rep.ManifestGen = man.Gen
	// Damage absorbed by past compactions is carried forward in the
	// manifest, so pruned torn journals still count as loss here.
	rep.Salvage.DroppedRecords += man.LostRecs
	rep.Salvage.DroppedBytes += man.LostBytes
	for _, mf := range man.Files {
		data, err := disk.Read(mf.Path)
		if err != nil {
			return err
		}
		recs, sal := record.Scan(data)
		rep.Salvage.DroppedRecords += sal.DroppedRecords
		rep.Salvage.DroppedBytes += sal.DroppedBytes
		rep.GenFiles++
		rep.GenFrames += len(recs)
		for _, payload := range recs {
			rep.replayInto(agg, payload)
		}
	}
	return nil
}

// loadJournalInto replays one shard journal into the aggregate.
func loadJournalInto(disk *kernel.Disk, path string, agg *Aggregate, rep *JournalReplay) error {
	if !disk.Exists(path) {
		return nil
	}
	data, err := disk.Read(path)
	if err != nil {
		return err
	}
	rep.Journals++
	recs, sal := record.Scan(data)
	rep.Salvage.DroppedRecords += sal.DroppedRecords
	rep.Salvage.DroppedBytes += sal.DroppedBytes
	for _, payload := range recs {
		rep.replayInto(agg, payload)
	}
	return nil
}

// loadBurnSet scans the durable store into a (host → seq) set without
// building counts — the duplicate-suppression set a shard burns before
// absorbing a dead peer's hosts or rejoining the serving set.
func loadBurnSet(disk *kernel.Disk) (map[int]map[uint64]bool, error) {
	agg, _, err := LoadStore(disk, 1)
	if err != nil {
		return nil, err
	}
	out := make(map[int]map[uint64]bool, len(agg.byHost))
	for h, recs := range agg.byHost {
		set := make(map[uint64]bool, len(recs))
		for s := range recs {
			set[s] = true
		}
		out[h] = set
	}
	return out, nil
}

// SpillReingest is the outcome of merging one host's parked spill file
// back into an aggregate.
type SpillReingest struct {
	Host int
	// Applied are the parked records merged fresh; Absorbed the ones
	// the aggregate had already applied (a spill whose ack arrived
	// late); ParseErrors checksum-valid records that would not parse.
	Applied, Absorbed, ParseErrors int
	Salvage                        record.Salvage
	// ReadError marks an injected EIO on the spill read.
	ReadError bool
}

// ReingestSpills merges every host's parked spill records into the
// aggregate — the fleet-level analogue of the startup spill merge:
// because ingestion is seq-burned idempotent, re-offering a record
// whose ack was lost is safe, and a genuinely parked one (sample delta
// and replicated code map alike) is recovered rather than held forever.
// Pure disk+memory; run it offline after a chaos run to reclaim spilled
// samples.
func ReingestSpills(disk *kernel.Disk, agg *Aggregate, hosts []int) []SpillReingest {
	var out []SpillReingest
	for _, host := range hosts {
		ri := SpillReingest{Host: host}
		if !disk.Exists(SpillPath(host)) {
			out = append(out, ri)
			continue
		}
		data, err := disk.Read(SpillPath(host))
		if err != nil {
			ri.ReadError = true
			out = append(out, ri)
			continue
		}
		recs, sal := record.Scan(data)
		ri.Salvage = sal
		for _, payload := range recs {
			msg, derr := DecodePayload(payload)
			if derr != nil || (msg.Kind != KindDelta && msg.Kind != KindMap) || msg.Host != host {
				ri.ParseErrors++
				continue
			}
			if agg.Apply(msg) {
				ri.Applied++
			} else {
				ri.Absorbed++
			}
		}
		out = append(out, ri)
	}
	return out
}
