package fleet

import (
	"bytes"
	"fmt"
	"sort"

	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// On-disk layout of the fleet collector.
const (
	// FleetDir is the root of every fleet artifact.
	FleetDir = "var/fleet"
	// JournalFile is the collector's write-ahead journal: received
	// delta frames appended verbatim before apply+ack, plus restart
	// markers. It is the durable truth the supervisor replays.
	JournalFile = "var/fleet/collector.journal"
	// CollectorStatsFile is the collector's framed self-counter record;
	// absence means the collector never shut down cleanly.
	CollectorStatsFile = "var/fleet/collector.stats"
	// AggregateFile is the sharded aggregate's committed snapshot, a
	// framed WriteCounts body committed temp-then-rename so vipreport
	// and vipdiff can query it like any sample file.
	AggregateFile = "var/fleet/aggregate.samples"
)

// SpillPath is the host's framed salvageable overflow file: deltas the
// sender parked after exhausting its retry budget.
func SpillPath(host int) string {
	return fmt.Sprintf("%s/host%02d/sender.spill", FleetDir, host)
}

// SenderStatsPath is the host sender's framed self-counter record.
// Deliberately outside the host spill directory, so listing damage
// aimed at spill discovery cannot hide it (it is read by direct path).
func SenderStatsPath(host int) string {
	return fmt.Sprintf("%s/stats/host%02d.stats", FleetDir, host)
}

// Aggregate is the collector's pure in-memory state: sharded counts
// plus the per-host burned-seq sets that make ingestion idempotent and
// order-insensitive. It has no I/O and no clock, so the quickcheck
// property tests drive it directly against an oracle.
type Aggregate struct {
	shards  []map[oprofile.Key]uint64
	applied map[int]map[uint64]bool
	// hostTotals is samples applied per host; maxSeq the highest seq
	// applied per host (gaps below it are loud).
	hostTotals map[int]uint64
	maxSeq     map[int]uint64
	lastSeq    map[int]uint64

	// Ingested counts fresh applies; Duplicates seq-burned absorptions;
	// OutOfOrder arrivals below the host's high-water mark (absorbed,
	// counted as evidence the network reordered).
	Ingested, Duplicates, OutOfOrder uint64
}

// NewAggregate builds an empty aggregate with the given shard count.
func NewAggregate(shards int) *Aggregate {
	if shards <= 0 {
		shards = 8
	}
	a := &Aggregate{
		shards:     make([]map[oprofile.Key]uint64, shards),
		applied:    make(map[int]map[uint64]bool),
		hostTotals: make(map[int]uint64),
		maxSeq:     make(map[int]uint64),
		lastSeq:    make(map[int]uint64),
	}
	for i := range a.shards {
		a.shards[i] = make(map[oprofile.Key]uint64)
	}
	return a
}

// shardOf picks the shard for a key (FNV-1a over the identifying
// fields; any stable hash works, determinism is what matters).
func (a *Aggregate) shardOf(k oprofile.Key) int {
	h := uint64(14695981039346656037)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	mix(k.Image)
	mix(k.Proc)
	h ^= uint64(k.Off) ^ uint64(k.Event)<<32 ^ uint64(k.Epoch)<<16
	h *= 1099511628211
	return int(h % uint64(len(a.shards)))
}

// Applied reports whether (host, seq) has been applied.
func (a *Aggregate) Applied(host int, seq uint64) bool {
	return a.applied[host][seq]
}

// Apply ingests one decoded delta. It is idempotent: a seq already
// burned for the host is absorbed without touching the shards, so
// duplicated or replayed deltas can never double-count.
func (a *Aggregate) Apply(msg *WireMsg) (fresh bool) {
	if msg.Kind != KindDelta {
		return false
	}
	set, ok := a.applied[msg.Host]
	if !ok {
		set = make(map[uint64]bool)
		a.applied[msg.Host] = set
	}
	if set[msg.Seq] {
		a.Duplicates++
		return false
	}
	if msg.Seq < a.lastSeq[msg.Host] {
		a.OutOfOrder++
	}
	a.lastSeq[msg.Host] = msg.Seq
	set[msg.Seq] = true
	if msg.Seq > a.maxSeq[msg.Host] {
		a.maxSeq[msg.Host] = msg.Seq
	}
	for k, c := range msg.Counts {
		a.shards[a.shardOf(k)][k] += c
		a.hostTotals[msg.Host] += c
	}
	a.Ingested++
	return true
}

// Counts merges the shards into one map (the queryable aggregate view).
func (a *Aggregate) Counts() map[oprofile.Key]uint64 {
	out := make(map[oprofile.Key]uint64)
	for _, sh := range a.shards {
		for k, c := range sh {
			out[k] += c
		}
	}
	return out
}

// Total is the aggregate sample total.
func (a *Aggregate) Total() uint64 {
	var n uint64
	for _, t := range a.hostTotals {
		n += t
	}
	return n
}

// HostTotal is the samples applied for one host.
func (a *Aggregate) HostTotal(host int) uint64 { return a.hostTotals[host] }

// Hosts returns the hosts with applied deltas, sorted.
func (a *Aggregate) Hosts() []int {
	out := make([]int, 0, len(a.applied))
	for h := range a.applied {
		out = append(out, h)
	}
	sort.Ints(out)
	return out
}

// MaxSeq is the highest applied seq for the host.
func (a *Aggregate) MaxSeq(host int) uint64 { return a.maxSeq[host] }

// Gaps returns the host's unapplied seqs below its high-water mark —
// the candidate MissingDelta set the integrity assembly must explain
// from host-side artifacts (spilled or lost) or poison loudly.
func (a *Aggregate) Gaps(host int) []uint64 {
	var out []uint64
	set := a.applied[host]
	for s := uint64(1); s <= a.maxSeq[host]; s++ {
		if !set[s] {
			out = append(out, s)
		}
	}
	return out
}

// CollectorConfig tunes the collector process.
type CollectorConfig struct {
	// WakeCycles is the ingest poll period (default 8_000).
	WakeCycles uint64
	// Shards is the aggregation shard count (default 8).
	Shards int
}

func (c *CollectorConfig) fill() {
	if c.WakeCycles == 0 {
		c.WakeCycles = 8_000
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
}

// CollectorStats is the collector's in-memory self-accounting, persisted
// framed at shutdown (see CollectorPersisted in integrity.go).
type CollectorStats struct {
	// Ingested / Duplicates / OutOfOrder snapshot the aggregate's
	// counters at persist time.
	Ingested, Duplicates, OutOfOrder uint64
	// WireDamaged counts received frames that failed their checksum or
	// would not parse (dropped without ack — the sender retries).
	WireDamaged uint64
	// JournalErrors counts failed write-ahead appends (the delta was
	// not applied and not acked).
	JournalErrors uint64
	// AcksSent counts acknowledgements (including re-acks of absorbed
	// duplicates).
	AcksSent uint64
	// Restarts counts supervisor restarts after a crash; ReplayErrors
	// failed journal replays during restart; ReplayedFrames the frames
	// rebuilt into memory across all restarts; MarkerErrors failed
	// restart-marker appends; DeadLetters datagrams flushed from the
	// dead collector's queue at restart (or left undeliverable at
	// shutdown).
	Restarts, ReplayErrors, ReplayedFrames, MarkerErrors, DeadLetters uint64
	// SnapshotErrors counts failed aggregate-snapshot commits.
	SnapshotErrors uint64
	// Clean reports an orderly shutdown reached the stats write.
	Clean bool
}

// Collector is the fleet collector process: it drains the network,
// journals each fresh delta before applying and acking it, and is
// restarted by the supervisor (journal replay) after a crash.
type Collector struct {
	cfg   CollectorConfig
	net   *Network
	agg   *Aggregate
	proc  *kernel.Process
	stats CollectorStats
}

// NewCollector builds the collector and registers its daemon process.
func NewCollector(m *kernel.Machine, net *Network, cfg CollectorConfig) (*Collector, error) {
	cfg.fill()
	c := &Collector{cfg: cfg, net: net, agg: NewAggregate(cfg.Shards)}
	proc, err := m.Kern.NewProcess("collectord", c)
	if err != nil {
		return nil, err
	}
	proc.Daemon = true
	c.proc = proc
	return c, nil
}

// Proc returns the collector's current kernel process.
func (c *Collector) Proc() *kernel.Process { return c.proc }

// Aggregate returns the live in-memory aggregate.
func (c *Collector) Aggregate() *Aggregate { return c.agg }

// Stats snapshots the self-counters (aggregate counters folded in).
func (c *Collector) Stats() CollectorStats {
	s := c.stats
	s.Ingested = c.agg.Ingested
	s.Duplicates = c.agg.Duplicates
	s.OutOfOrder = c.agg.OutOfOrder
	return s
}

// Alive reports whether the collector process is running (not crashed,
// not exited).
func (c *Collector) Alive() bool {
	return c.proc != nil && !c.proc.Killed() && !c.proc.Done()
}

// Step implements kernel.Executor: drain, ingest, sleep.
func (c *Collector) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	for _, data := range c.net.Deliver(0) {
		c.ingest(m, p, data)
		if p.Killed() {
			// An injected crash struck the journal append; stop
			// touching state, the supervisor takes over.
			return kernel.StepBlocked
		}
	}
	m.Kern.Sleep(p, c.cfg.WakeCycles)
	return kernel.StepBlocked
}

// ingest processes one received datagram: decode, dedup, journal,
// apply, ack — in exactly that order, so every applied delta is durable
// before its ack can release the sender's copy.
func (c *Collector) ingest(m *kernel.Machine, p *kernel.Process, data []byte) {
	// Ingestion is kernel work: checksum + parse, roughly linear in
	// the payload.
	m.Kern.ExecKernel("sys_read", 20+len(data)/32, 1)
	msg, err := DecodeWire(data)
	if err != nil {
		c.stats.WireDamaged++
		return
	}
	if msg.Kind != KindDelta {
		return
	}
	if c.agg.Applied(msg.Host, msg.Seq) {
		// Seq already burned: absorb the duplicate but re-ack it — the
		// retry usually means the previous ack was lost.
		c.agg.Duplicates++
		c.ack(msg)
		return
	}
	// Write-ahead: the received frame is appended verbatim. The payload
	// is the sender's framed wire record (CRC-checked by DecodeWire
	// above and re-verified by record.Scan on every replay), so the
	// journal stays a salvageable concatenation of frames.
	//viplint:allow record-frame payload is the sender's framed wire record, checksum-verified by DecodeWire and salvage-scanned on replay
	if err := m.Kern.SysWrite(p, JournalFile, data); err != nil {
		c.stats.JournalErrors++
		return // no apply, no ack: the sender retries
	}
	c.agg.Apply(msg)
	c.ack(msg)
}

func (c *Collector) ack(msg *WireMsg) {
	c.net.Send(0, msg.Host, AckFrame(msg.Host, msg.Seq))
	c.stats.AcksSent++
}

// JournalReplay is the outcome of one journal read-back.
type JournalReplay struct {
	Salvage record.Salvage
	// Deltas / Duplicates / Markers / ParseErrors classify the intact
	// records. ParseErrors are checksum-valid records that would not
	// parse — a writer bug, not disk damage, and loud.
	Deltas, Duplicates, Markers, ParseErrors int
}

// ReplayJournal rebuilds an aggregate from the write-ahead journal via
// the salvage layer: torn tails (a crash mid-append) fail their
// checksum and are dropped — safely, because an unjournaled delta was
// never acked and the sender still holds it. Returns an error only if
// the journal exists but cannot be read (injected EIO) — the caller
// retries or degrades loudly.
func ReplayJournal(disk *kernel.Disk, shards int) (*Aggregate, JournalReplay, error) {
	agg := NewAggregate(shards)
	var rep JournalReplay
	if !disk.Exists(JournalFile) {
		return agg, rep, nil
	}
	data, err := disk.Read(JournalFile)
	if err != nil {
		return nil, rep, err
	}
	recs, sal := record.Scan(data)
	rep.Salvage = sal
	for _, payload := range recs {
		msg, err := DecodePayload(payload)
		if err != nil {
			rep.ParseErrors++
			continue
		}
		switch msg.Kind {
		case KindDelta:
			if agg.Apply(msg) {
				rep.Deltas++
			} else {
				rep.Duplicates++
			}
		case KindRestart:
			rep.Markers++
		}
	}
	return agg, rep, nil
}

// SpillReingest is the outcome of merging one host's parked spill file
// back into an aggregate.
type SpillReingest struct {
	Host int
	// Applied are the parked deltas merged fresh; Absorbed the ones the
	// aggregate had already applied (a spill whose ack arrived late);
	// ParseErrors checksum-valid records that would not parse.
	Applied, Absorbed, ParseErrors int
	Salvage                        record.Salvage
	// ReadError marks an injected EIO on the spill read.
	ReadError bool
}

// ReingestSpills merges every host's parked spill deltas into the
// aggregate — the fleet-level analogue of the startup spill merge:
// because ingestion is seq-burned idempotent, re-offering a delta whose
// ack was lost is safe, and a genuinely parked one is recovered rather
// than held forever. Pure disk+memory; run it offline after a chaos
// run to reclaim spilled samples.
func ReingestSpills(disk *kernel.Disk, agg *Aggregate, hosts []int) []SpillReingest {
	var out []SpillReingest
	for _, host := range hosts {
		ri := SpillReingest{Host: host}
		if !disk.Exists(SpillPath(host)) {
			out = append(out, ri)
			continue
		}
		data, err := disk.Read(SpillPath(host))
		if err != nil {
			ri.ReadError = true
			out = append(out, ri)
			continue
		}
		recs, sal := record.Scan(data)
		ri.Salvage = sal
		for _, payload := range recs {
			msg, derr := DecodePayload(payload)
			if derr != nil || msg.Kind != KindDelta || msg.Host != host {
				ri.ParseErrors++
				continue
			}
			if agg.Apply(msg) {
				ri.Applied++
			} else {
				ri.Absorbed++
			}
		}
		out = append(out, ri)
	}
	return out
}

// Restart is the supervisor's recovery pass (the core.RunRecovery shape
// scaled to the collector): flush dead letters, replay the journal into
// a fresh aggregate, spawn a replacement process, and append a durable
// restart marker. An error (journal EIO) leaves the collector down for
// the supervisor to retry.
func (c *Collector) Restart(m *kernel.Machine) error {
	c.stats.Restarts++
	c.stats.DeadLetters += uint64(c.net.Flush(0))
	agg, rep, err := ReplayJournal(m.Kern.Disk(), c.cfg.Shards)
	if err != nil {
		c.stats.ReplayErrors++
		return err
	}
	c.stats.ReplayedFrames += uint64(rep.Deltas)
	// Replay rebuilt counters from scratch; fold the pre-crash absorbed
	// counts forward so the self-accounting stays cumulative.
	agg.Duplicates += c.agg.Duplicates
	agg.OutOfOrder += c.agg.OutOfOrder
	c.agg = agg
	proc, err := m.Kern.NewProcess("collectord", c)
	if err != nil {
		return err
	}
	proc.Daemon = true
	c.proc = proc
	if werr := m.Kern.SysWrite(proc, JournalFile, RestartJournalFrame(int(c.stats.Restarts))); werr != nil {
		// The marker is evidence, not state: a failed append is counted
		// (and may itself have crashed the fresh process — the
		// supervisor will see that and come around again).
		c.stats.MarkerErrors++
	}
	return nil
}

// DrainRemaining ingests everything still queued for the collector
// (the runner advances the clock past the network's maximum delay
// first). Used at shutdown so in-flight datagrams land before the
// final snapshot.
func (c *Collector) DrainRemaining(m *kernel.Machine) {
	for {
		msgs := c.net.Deliver(0)
		if len(msgs) == 0 {
			break
		}
		for _, data := range msgs {
			c.ingest(m, c.proc, data)
			if c.proc.Killed() {
				return
			}
		}
	}
}

// Finalize commits the aggregate snapshot (temp-then-rename, the same
// atomic protocol as epoch maps) and persists the collector's framed
// stats record. Called once at orderly shutdown; a crashed collector
// never reaches it, which is exactly the signal integrity reads.
func (c *Collector) Finalize(m *kernel.Machine) {
	counts := c.agg.Counts()
	var buf bytes.Buffer
	if err := oprofile.WriteCounts(&buf, counts, sortedKeys(counts)); err == nil {
		frame := record.Frame(buf.Bytes())
		tmp := AggregateFile + ".tmp"
		if err := m.Kern.SysWriteSync(c.proc, tmp, frame); err != nil {
			c.stats.SnapshotErrors++
		} else if err := m.Kern.SysRename(c.proc, tmp, AggregateFile); err != nil {
			c.stats.SnapshotErrors++
		}
	} else {
		c.stats.SnapshotErrors++
	}
	if c.proc.Killed() {
		return // the snapshot commit crashed us; no clean stats record
	}
	c.stats.DeadLetters += uint64(c.net.Flush(0))
	stats := c.Stats()
	stats.Clean = true
	//viplint:allow syswrite-err the stats record is the clean-shutdown signal itself: if this write fails the file is absent or torn and integrity reports the crash
	m.Kern.SysWriteSync(c.proc, CollectorStatsFile, record.Frame(collectorStatsPayload(&stats)))
}
