package fleet

import (
	"bytes"
	"fmt"
	"math/rand"

	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// The multi-process collector service. Each shard is its own kernel
// process pinned to a core, listening on its own network endpoint,
// journaling to its own write-ahead file — share-nothing ingest, so the
// N-core machine retires shard work in parallel instead of serializing
// the fleet on one clock. Host ownership is a rendezvous hash over the
// serving-shard set: deterministic, minimal movement when a shard
// leaves or rejoins, and recomputed by senders on every send so a
// failover redirects retries without any coordination message.
//
// The supervisor's contract is graceful degradation, never silent
// loss: a dead shard's hosts rehash onto its peers only after every
// peer has burned the dead shard's durable state into its handoff set
// (so a re-sent record the dead shard already applied is re-acked, not
// double-counted), and a shard rejoins only after replaying the
// generation store plus its own journal and burning its peers' state
// the same way. Any unreadable journal aborts the transition — retried
// on the next supervisor tick — rather than proceeding blind.

// ShardEndpoint is shard i's network endpoint id. Hosts are 1..N and
// endpoint 0 is reserved (the pre-SMP single collector's address), so
// shards listen on the negative ids.
func ShardEndpoint(i int) int { return -(i + 1) }

// Shard is one collector shard process.
type Shard struct {
	c   *Collector
	idx int
	agg *Aggregate
	// handoff is the duplicate-suppression set: (host, seq) pairs some
	// peer durably applied. A matching record is re-acked without
	// journaling or applying.
	handoff map[int]map[uint64]bool
	proc    *kernel.Process
	// serving: the rendezvous hash includes this shard. Cleared by a
	// completed failover, restored by a completed restart.
	serving bool
	// restarts is the supervisor attempts consumed; nextRestartAt the
	// jittered backoff gate; gaveUp the exhausted-budget flag.
	restarts      int
	nextRestartAt uint64
	gaveUp        bool

	// Cumulative ingest counters. They live on the shard, not the
	// aggregate, because a restart replaces the aggregate (replay
	// rebuilds its counters from disk) while the service's
	// self-accounting must stay cumulative across incarnations.
	ingested, duplicates, outOfOrder, mapsApplied uint64
}

func (sh *Shard) procName() string { return fmt.Sprintf("shard%02d", sh.idx) }

// Alive reports whether the shard process is running.
func (sh *Shard) Alive() bool {
	return sh.proc != nil && !sh.proc.Killed() && !sh.proc.Done()
}

// Serving reports whether the rendezvous hash includes this shard.
func (sh *Shard) Serving() bool { return sh.serving }

// Restarts returns the supervisor attempts consumed by this shard.
func (sh *Shard) Restarts() int { return sh.restarts }

// Step implements kernel.Executor: drain this shard's endpoint,
// ingest, sleep.
func (sh *Shard) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	for _, data := range sh.c.net.Deliver(ShardEndpoint(sh.idx)) {
		sh.ingest(m, p, data)
		if p.Killed() {
			// An injected crash struck the journal append; stop
			// touching state, the supervisor takes over.
			return kernel.StepBlocked
		}
	}
	m.Kern.Sleep(p, sh.c.cfg.WakeCycles)
	return kernel.StepBlocked
}

// ingest processes one received datagram: decode, dedup (own applied
// set, then the handoff set), ownership check, journal, apply, ack —
// in exactly that order, so every applied record is durable before its
// ack can release the sender's copy, and no record a peer applied can
// be applied again here.
func (sh *Shard) ingest(m *kernel.Machine, p *kernel.Process, data []byte) {
	c := sh.c
	// Ingestion is kernel work: checksum + parse, roughly linear in
	// the payload.
	m.Kern.ExecKernel("sys_read", 20+len(data)/32, 1)
	msg, err := DecodeWire(data)
	if err != nil {
		c.stats.WireDamaged++
		return
	}
	if msg.Kind != KindDelta && msg.Kind != KindMap {
		return
	}
	if sh.agg.Applied(msg.Host, msg.Seq) {
		// Seq already burned here: absorb the duplicate but re-ack it —
		// the retry usually means the previous ack was lost.
		sh.duplicates++
		sh.agg.Duplicates++
		sh.ack(msg)
		return
	}
	if sh.handoff[msg.Host][msg.Seq] {
		// A peer durably applied this seq (we burned its journal during
		// failover or restart). Re-ack without journaling: the handoff
		// suppressed a would-be duplicate apply.
		sh.duplicates++
		c.stats.Handoffs++
		sh.ack(msg)
		return
	}
	if c.Route(msg.Host) != sh.idx {
		// The rendezvous hash routes this host elsewhere (the sender
		// raced a failover). Drop unacked: a fresh apply here could
		// double-count against the true owner, and the sender's retry
		// will chase the current route.
		c.stats.Misrouted++
		return
	}
	if msg.Seq < sh.agg.lastSeq[msg.Host] {
		sh.outOfOrder++
	}
	// Write-ahead: the received frame is appended verbatim. The payload
	// is the sender's framed wire record (CRC-checked by DecodeWire
	// above and re-verified by record.Scan on every replay), so the
	// journal stays a salvageable concatenation of frames.
	//viplint:allow record-frame payload is the sender's framed wire record, checksum-verified by DecodeWire and salvage-scanned on replay
	if err := m.Kern.SysWrite(p, ShardJournalPath(sh.idx), data); err != nil {
		c.stats.JournalErrors++
		return // no apply, no ack: the sender retries
	}
	if sh.agg.Apply(msg) {
		sh.ingested++
		if msg.Kind == KindMap {
			sh.mapsApplied++
		}
	}
	sh.ack(msg)
}

func (sh *Shard) ack(msg *WireMsg) {
	sh.c.net.Send(ShardEndpoint(sh.idx), msg.Host, AckFrame(msg.Host, msg.Seq))
	sh.c.stats.AcksSent++
}

// restart is the supervisor's recovery pass for one shard (the
// core.RunRecovery shape): flush dead letters, replay the generation
// store plus this shard's own journal into a fresh aggregate, burn the
// full durable store into the handoff set, spawn a replacement process
// pinned to the same core, and append a durable restart marker. An
// error (store EIO) leaves the shard down for the supervisor to retry
// under backoff.
func (sh *Shard) restart(m *kernel.Machine) error {
	c := sh.c
	c.stats.Restarts++
	c.stats.DeadLetters += uint64(c.net.Flush(ShardEndpoint(sh.idx)))
	disk := m.Kern.Disk()
	agg := NewAggregate(c.cfg.Shards)
	var rep JournalReplay
	if err := loadManifestInto(disk, agg, &rep); err != nil {
		c.stats.ReplayErrors++
		return err
	}
	if err := loadJournalInto(disk, ShardJournalPath(sh.idx), agg, &rep); err != nil {
		c.stats.ReplayErrors++
		return err
	}
	// Handoff burn: every (host, seq) anywhere in the durable store —
	// peers' journals included — is re-ack-only here. An unreadable
	// peer journal aborts the rejoin; serving blind would risk
	// double-applying a record the peer already owns.
	burn, err := loadBurnSet(disk)
	if err != nil {
		c.stats.HandoffErrors++
		return err
	}
	for h, seqs := range burn {
		for s := range seqs {
			if !agg.Applied(h, s) {
				c.stats.Handoffs++
			}
		}
	}
	sh.agg = agg
	sh.handoff = burn
	c.stats.ReplayedFrames += uint64(rep.Deltas + rep.Maps)
	proc, err := m.Kern.NewProcess(sh.procName(), sh)
	if err != nil {
		return err
	}
	proc.Daemon = true
	m.Kern.Pin(proc, sh.idx)
	sh.proc = proc
	if werr := m.Kern.SysWrite(proc, ShardJournalPath(sh.idx), RestartJournalFrame(sh.idx, sh.restarts)); werr != nil {
		// The marker is evidence, not state: a failed append is counted
		// (and may itself have crashed the fresh process — the
		// supervisor will see that and come around again).
		c.stats.MarkerErrors++
	}
	sh.serving = true
	return nil
}

// Collector is the fleet collector service: Procs shard processes
// pinned to cores, a compactor daemon, and the supervisor state that
// restarts them.
type Collector struct {
	cfg   CollectorConfig
	net   *Network
	now   func() uint64
	rng   *rand.Rand // restart-backoff jitter (seeded, deterministic)
	stats CollectorStats

	shards    []*Shard
	compactor *Compactor
}

// NewCollector builds the service and registers one pinned daemon
// process per shard (plus the compactor when compaction is enabled).
func NewCollector(m *kernel.Machine, net *Network, cfg CollectorConfig) (*Collector, error) {
	cfg.fill(len(m.Kern.Cores()))
	c := &Collector{
		cfg: cfg,
		net: net,
		now: func() uint64 { return m.CPU().Cycles() },
		rng: rand.New(rand.NewSource(cfg.Seed*0x9E3779B9 + 0x5DEECE66D)),
	}
	for i := 0; i < cfg.Procs; i++ {
		sh := &Shard{
			c: c, idx: i,
			agg:     NewAggregate(cfg.Shards),
			handoff: make(map[int]map[uint64]bool),
			serving: true,
		}
		proc, err := m.Kern.NewProcess(sh.procName(), sh)
		if err != nil {
			return nil, err
		}
		proc.Daemon = true
		m.Kern.Pin(proc, i)
		sh.proc = proc
		c.shards = append(c.shards, sh)
	}
	if cfg.CompactEveryCycles > 0 {
		if err := c.spawnCompactor(m); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Shards returns the shard slice (read-only by convention).
func (c *Collector) Shards() []*Shard { return c.shards }

// Config returns the filled collector config.
func (c *Collector) Config() CollectorConfig { return c.cfg }

// CompactorState returns the compactor (nil when compaction is
// disabled).
func (c *Collector) CompactorState() *Compactor { return c.compactor }

// rendezvousScore mixes (host, shard) into a deterministic weight.
func rendezvousScore(host, shard int) uint64 {
	h := uint64(14695981039346656037)
	h ^= uint64(uint32(host))
	h *= 1099511628211
	h ^= uint64(uint32(shard)) << 17
	h *= 1099511628211
	h ^= h >> 29
	return h
}

// Route returns the shard index owning the host under the rendezvous
// hash over the serving set: highest score wins. With no shard serving
// (all mid-restart), routing falls back to the full set so senders keep
// a stable target whose queue the restarted shard will drain or flush.
func (c *Collector) Route(host int) int {
	best, bestScore, any := 0, uint64(0), false
	for _, sh := range c.shards {
		if !sh.serving {
			continue
		}
		if s := rendezvousScore(host, sh.idx); !any || s > bestScore {
			best, bestScore, any = sh.idx, s, true
		}
	}
	if !any {
		for _, sh := range c.shards {
			if s := rendezvousScore(host, sh.idx); s > bestScore {
				best, bestScore = sh.idx, s
			}
		}
	}
	return best
}

// RouteEndpoint is the network endpoint senders address the host's
// records to (queried per send, so failovers redirect retries).
func (c *Collector) RouteEndpoint(host int) int {
	return ShardEndpoint(c.Route(host))
}

// failover removes a dead shard from the serving set after burning its
// durable state into every surviving serving peer's handoff set. An
// unreadable journal aborts the whole transition (no peer absorbs the
// hosts blind); the supervisor retries on its next tick.
func (c *Collector) failover(m *kernel.Machine, dead *Shard) error {
	burn, err := loadBurnSet(m.Kern.Disk())
	if err != nil {
		c.stats.HandoffErrors++
		return err
	}
	for _, p := range c.shards {
		if p == dead || !p.serving {
			continue
		}
		for h, seqs := range burn {
			set := p.handoff[h]
			if set == nil {
				set = make(map[uint64]bool)
				p.handoff[h] = set
			}
			for s := range seqs {
				set[s] = true
			}
		}
	}
	dead.serving = false
	c.stats.Failovers++
	return nil
}

// backoff sizes the wait before restart attempt n (1-based): capped
// exponential with jitter in [0, base) from the service's seeded RNG.
func (c *Collector) backoff(attempt int) uint64 {
	base := c.cfg.RestartBackoffCycles
	d := base << uint(attempt-1)
	if ceil := base * 8; d > ceil || d < base {
		d = ceil
	}
	return d + uint64(c.rng.Int63n(int64(base)))
}

// Supervise is the periodic crash check: fail dead serving shards over
// to their peers, restart them under bounded attempts with jittered
// backoff, and respawn the compactor. Idempotent and safe to call from
// both the in-run ticker and the shutdown drain loop.
func (c *Collector) Supervise(m *kernel.Machine) {
	now := c.now()
	for _, sh := range c.shards {
		if sh.Alive() {
			continue
		}
		if sh.serving {
			if err := c.failover(m, sh); err != nil {
				continue
			}
		}
		if sh.restarts >= c.cfg.MaxRestarts {
			sh.gaveUp = true
			continue
		}
		if sh.nextRestartAt > now {
			continue
		}
		sh.restarts++
		if err := sh.restart(m); err != nil {
			sh.nextRestartAt = now + c.backoff(sh.restarts)
			continue
		}
		sh.nextRestartAt = 0
	}
	c.superviseCompactor(m, now)
}

// Alive reports whether every shard process is running.
func (c *Collector) Alive() bool {
	for _, sh := range c.shards {
		if !sh.Alive() {
			return false
		}
	}
	return true
}

// GaveUp reports whether any shard exhausted its restart budget and is
// still down — the supervisor's loud terminal degradation.
func (c *Collector) GaveUp() bool {
	for _, sh := range c.shards {
		if sh.gaveUp && !sh.Alive() {
			return true
		}
	}
	return false
}

// PendingTotal sums the datagrams still queued for shard endpoints.
func (c *Collector) PendingTotal() int {
	n := 0
	for _, sh := range c.shards {
		n += c.net.Pending(ShardEndpoint(sh.idx))
	}
	return n
}

// Aggregate returns the live service-wide aggregate: the
// duplicate-suppressed merge of every shard's in-memory state.
func (c *Collector) Aggregate() *Aggregate {
	parts := make([]*Aggregate, len(c.shards))
	for i, sh := range c.shards {
		parts[i] = sh.agg
	}
	return MergeAggregates(c.cfg.Shards, parts...)
}

// Stats snapshots the self-counters (shard ingest counters folded in).
func (c *Collector) Stats() CollectorStats {
	s := c.stats
	s.Shards = uint64(len(c.shards))
	for _, sh := range c.shards {
		s.Ingested += sh.ingested
		s.Duplicates += sh.duplicates
		s.OutOfOrder += sh.outOfOrder
		s.MapsApplied += sh.mapsApplied
	}
	return s
}

// DrainRemaining ingests everything still queued for the live shards
// (the runner advances the clocks past the network's maximum delay
// first). Used at shutdown so in-flight datagrams land before the
// final snapshot.
func (c *Collector) DrainRemaining(m *kernel.Machine) {
	for {
		delivered := 0
		for _, sh := range c.shards {
			if !sh.Alive() {
				continue
			}
			msgs := c.net.Deliver(ShardEndpoint(sh.idx))
			delivered += len(msgs)
			for _, data := range msgs {
				sh.ingest(m, sh.proc, data)
				if sh.proc.Killed() {
					break
				}
			}
		}
		if delivered == 0 {
			return
		}
	}
}

// Finalize commits the merged aggregate snapshot (temp-then-rename,
// the same atomic protocol as epoch maps) and persists the service's
// framed stats record through the first live shard. Called once at
// orderly shutdown; a service with every shard dead never reaches the
// stats write, which is exactly the signal integrity reads — and the
// record claims Clean only when every shard is alive.
func (c *Collector) Finalize(m *kernel.Machine) {
	var proc *kernel.Process
	for _, sh := range c.shards {
		if sh.Alive() {
			proc = sh.proc
			break
		}
	}
	if proc == nil {
		return
	}
	counts := c.Aggregate().Counts()
	var buf bytes.Buffer
	if err := oprofile.WriteCounts(&buf, counts, sortedKeys(counts)); err == nil {
		frame := record.Frame(buf.Bytes())
		tmp := AggregateFile + ".tmp"
		if err := m.Kern.SysWriteSync(proc, tmp, frame); err != nil {
			c.stats.SnapshotErrors++
		} else if err := m.Kern.SysRename(proc, tmp, AggregateFile); err != nil {
			c.stats.SnapshotErrors++
		}
	} else {
		c.stats.SnapshotErrors++
	}
	if proc.Killed() {
		return // the snapshot commit crashed us; no clean stats record
	}
	for _, sh := range c.shards {
		if !sh.Alive() {
			c.stats.DeadLetters += uint64(c.net.Flush(ShardEndpoint(sh.idx)))
		}
	}
	stats := c.Stats()
	stats.Clean = c.Alive()
	//viplint:allow syswrite-err the stats record is the clean-shutdown signal itself: if this write fails the file is absent or torn and integrity reports the crash
	m.Kern.SysWriteSync(proc, CollectorStatsFile, record.Frame(collectorStatsPayload(&stats)))
}
