package fleet

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// Wire format. Every datagram is one framed+CRC record (record.Frame —
// the same format every durable artifact uses, DESIGN §10), so a
// mangled or torn payload fails its checksum at the receiver instead of
// misparsing, and the collector can append the received frame verbatim
// to its write-ahead journal. The payload is a '#'-header line followed
// by a WriteCounts sample-file body:
//
//	#delta host=<id> seq=<n>
//	event<TAB>jit<TAB>epoch<TAB>offset<TAB>count<TAB>proc<TAB>image
//	...
//
// Acks are header-only: "#ack host=<id> seq=<n>". Restart markers
// ("#restart attempt=<n>") appear only in the collector journal, as
// durable evidence of supervisor restarts.

// Wire message kinds.
const (
	KindDelta   = "delta"
	KindAck     = "ack"
	KindRestart = "restart"
)

// WireMsg is one decoded wire record.
type WireMsg struct {
	Kind string
	Host int
	Seq  uint64
	// Attempt is the restart ordinal (restart markers only).
	Attempt int
	// Counts is the delta body (deltas only).
	Counts map[oprofile.Key]uint64
}

// Total returns the message's sample total.
func (m *WireMsg) Total() uint64 {
	var n uint64
	for _, c := range m.Counts {
		n += c
	}
	return n
}

// sortedKeys returns the counts' keys in a deterministic total order
// (keyLess plus the proc/jit fields it does not compare), so the same
// delta always serializes to the same bytes.
func sortedKeys(counts map[oprofile.Key]uint64) []oprofile.Key {
	order := make([]oprofile.Key, 0, len(counts))
	for k := range counts {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		if a.JIT != b.JIT {
			return !a.JIT
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return a.Off < b.Off
	})
	return order
}

// DeltaFrame builds the framed wire record for one delta.
func DeltaFrame(host int, seq uint64, counts map[oprofile.Key]uint64) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "#%s host=%d seq=%d\n", KindDelta, host, seq)
	if err := oprofile.WriteCounts(&buf, counts, sortedKeys(counts)); err != nil {
		return nil, err
	}
	return record.Frame(buf.Bytes()), nil
}

// AckFrame builds the framed wire record acknowledging (host, seq).
func AckFrame(host int, seq uint64) []byte {
	return record.Frame([]byte(fmt.Sprintf("#%s host=%d seq=%d\n", KindAck, host, seq)))
}

// RestartJournalFrame builds the framed restart marker the supervisor
// appends to the collector journal as durable evidence of a restart.
func RestartJournalFrame(attempt int) []byte {
	return record.Frame([]byte(fmt.Sprintf("#%s attempt=%d\n", KindRestart, attempt)))
}

// DecodeWire decodes one framed wire record. A torn, mangled, or
// multi-record payload is an error — the caller drops it (and, for
// deltas, withholds the ack so the sender retries).
func DecodeWire(data []byte) (*WireMsg, error) {
	recs, sal := record.Scan(data)
	if sal.Lossy() || len(recs) != 1 {
		return nil, fmt.Errorf("fleet: wire record damaged (%d intact, %d dropped)",
			len(recs), sal.DroppedRecords)
	}
	return DecodePayload(recs[0])
}

// DecodePayload decodes one already-unframed wire payload (a single
// record's bytes, e.g. one journal entry out of record.Scan).
func DecodePayload(payload []byte) (*WireMsg, error) {
	header, body, _ := bytes.Cut(payload, []byte("\n"))
	fields := strings.Fields(string(header))
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "#") {
		return nil, fmt.Errorf("fleet: wire payload has no #header")
	}
	msg := &WireMsg{Kind: strings.TrimPrefix(fields[0], "#")}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: malformed wire header field %q", f)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: wire header %s: %v", k, err)
		}
		switch k {
		case "host":
			msg.Host = int(n)
		case "seq":
			msg.Seq = n
		case "attempt":
			msg.Attempt = int(n)
		}
	}
	switch msg.Kind {
	case KindDelta:
		msg.Counts = make(map[oprofile.Key]uint64)
		if err := oprofile.ParseCountsText(body, msg.Counts); err != nil {
			return nil, fmt.Errorf("fleet: delta body: %v", err)
		}
		if msg.Seq == 0 {
			return nil, fmt.Errorf("fleet: delta with seq 0")
		}
	case KindAck:
		if msg.Seq == 0 {
			return nil, fmt.Errorf("fleet: ack with seq 0")
		}
	case KindRestart:
	default:
		return nil, fmt.Errorf("fleet: unknown wire kind %q", msg.Kind)
	}
	return msg, nil
}
