package fleet

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/core"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// Wire format. Every datagram is one framed+CRC record (record.Frame —
// the same format every durable artifact uses, DESIGN §10), so a
// mangled or torn payload fails its checksum at the receiver instead of
// misparsing, and a collector shard can append the received frame
// verbatim to its write-ahead journal. The payload is a '#'-header line
// followed by a kind-specific body:
//
//	#delta host=<id> seq=<n> at=<cycles>
//	event<TAB>jit<TAB>epoch<TAB>offset<TAB>count<TAB>proc<TAB>image
//	...
//
//	#map host=<id> seq=<n> epoch=<e> at=<cycles>
//	<core.WriteMapFile body: framed entries + framed #end trailer>
//
// Code maps ride the same seq space, retry protocol, and journal as
// sample deltas — replication is just delivery plus the WAL. The map
// body reuses the VM agent's map-file framing verbatim, so a replicated
// map is parsed (and salvaged) by exactly the reader the per-host
// chain loader uses.
//
// Acks are header-only: "#ack host=<id> seq=<n>". Restart markers
// ("#restart shard=<i> attempt=<n>") appear only in shard journals (and
// compacted generations), as durable evidence of supervisor restarts.

// Wire message kinds.
const (
	KindDelta   = "delta"
	KindAck     = "ack"
	KindMap     = "map"
	KindRestart = "restart"
)

// WireMsg is one decoded wire record.
type WireMsg struct {
	Kind string
	Host int
	Seq  uint64
	// At is the sender-side generation timestamp in machine cycles
	// (deltas and maps) — the time axis windowed queries cut on.
	At uint64
	// Attempt is the restart ordinal and Shard the restarting shard
	// (restart markers only).
	Attempt int
	Shard   int
	// Counts is the delta body (deltas only).
	Counts map[oprofile.Key]uint64
	// Epoch and Entries are the map body (maps only).
	Epoch   int
	Entries []core.MapEntry
}

// Total returns the message's sample total.
func (m *WireMsg) Total() uint64 {
	var n uint64
	for _, c := range m.Counts {
		n += c
	}
	return n
}

// sortedKeys returns the counts' keys in a deterministic total order
// (keyLess plus the proc/jit fields it does not compare), so the same
// delta always serializes to the same bytes.
func sortedKeys(counts map[oprofile.Key]uint64) []oprofile.Key {
	order := make([]oprofile.Key, 0, len(counts))
	for k := range counts {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		if a.JIT != b.JIT {
			return !a.JIT
		}
		if a.Epoch != b.Epoch {
			return a.Epoch < b.Epoch
		}
		return a.Off < b.Off
	})
	return order
}

// DeltaFrame builds the framed wire record for one sample delta.
func DeltaFrame(host int, seq, at uint64, counts map[oprofile.Key]uint64) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "#%s host=%d seq=%d at=%d\n", KindDelta, host, seq, at)
	if err := oprofile.WriteCounts(&buf, counts, sortedKeys(counts)); err != nil {
		return nil, err
	}
	return record.Frame(buf.Bytes()), nil
}

// MapFrame builds the framed wire record replicating one epoch code
// map. The body is a verbatim core.WriteMapFile stream (per-entry
// frames plus the #end trailer), so the receiver parses it with the
// same strict reader — and the same salvage discipline — the VM agent's
// own map files get.
func MapFrame(host int, seq uint64, epoch int, at uint64, entries []core.MapEntry) ([]byte, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "#%s host=%d seq=%d epoch=%d at=%d\n", KindMap, host, seq, epoch, at)
	if err := core.WriteMapFile(&buf, entries); err != nil {
		return nil, err
	}
	return record.Frame(buf.Bytes()), nil
}

// AckFrame builds the framed wire record acknowledging (host, seq).
func AckFrame(host int, seq uint64) []byte {
	return record.Frame([]byte(fmt.Sprintf("#%s host=%d seq=%d\n", KindAck, host, seq)))
}

// RestartJournalFrame builds the framed restart marker the supervisor
// appends to the restarting shard's journal as durable evidence.
// Markers survive compaction: the compactor copies them into the new
// generation, so "restarts happened" stays visible to offline replay
// no matter how many generations later it runs.
func RestartJournalFrame(shard, attempt int) []byte {
	return record.Frame([]byte(fmt.Sprintf("#%s shard=%d attempt=%d\n", KindRestart, shard, attempt)))
}

// DecodeWire decodes one framed wire record. A torn, mangled, or
// multi-record payload is an error — the caller drops it (and, for
// deltas, withholds the ack so the sender retries).
func DecodeWire(data []byte) (*WireMsg, error) {
	recs, sal := record.Scan(data)
	if sal.Lossy() || len(recs) != 1 {
		return nil, fmt.Errorf("fleet: wire record damaged (%d intact, %d dropped)",
			len(recs), sal.DroppedRecords)
	}
	return DecodePayload(recs[0])
}

// DecodePayload decodes one already-unframed wire payload (a single
// record's bytes, e.g. one journal entry out of record.Scan).
func DecodePayload(payload []byte) (*WireMsg, error) {
	header, body, _ := bytes.Cut(payload, []byte("\n"))
	fields := strings.Fields(string(header))
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "#") {
		return nil, fmt.Errorf("fleet: wire payload has no #header")
	}
	msg := &WireMsg{Kind: strings.TrimPrefix(fields[0], "#")}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("fleet: malformed wire header field %q", f)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fleet: wire header %s: %v", k, err)
		}
		switch k {
		case "host":
			msg.Host = int(n)
		case "seq":
			msg.Seq = n
		case "at":
			msg.At = n
		case "epoch":
			msg.Epoch = int(n)
		case "attempt":
			msg.Attempt = int(n)
		case "shard":
			msg.Shard = int(n)
		}
	}
	switch msg.Kind {
	case KindDelta:
		msg.Counts = make(map[oprofile.Key]uint64)
		if err := oprofile.ParseCountsText(body, msg.Counts); err != nil {
			return nil, fmt.Errorf("fleet: delta body: %v", err)
		}
		if msg.Seq == 0 {
			return nil, fmt.Errorf("fleet: delta with seq 0")
		}
	case KindMap:
		// The outer CRC already passed, so a body that will not parse is
		// a writer bug, not wire damage — strict read, loud error.
		entries, err := core.ReadMapFile(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("fleet: map body: %v", err)
		}
		msg.Entries = entries
		if msg.Seq == 0 {
			return nil, fmt.Errorf("fleet: map with seq 0")
		}
		if msg.Epoch <= 0 {
			return nil, fmt.Errorf("fleet: map with epoch %d", msg.Epoch)
		}
	case KindAck:
		if msg.Seq == 0 {
			return nil, fmt.Errorf("fleet: ack with seq 0")
		}
	case KindRestart:
	default:
		return nil, fmt.Errorf("fleet: unknown wire kind %q", msg.Kind)
	}
	return msg, nil
}
