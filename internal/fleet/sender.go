package fleet

import (
	"fmt"
	"math/rand"

	"viprof/internal/addr"
	"viprof/internal/core"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// SenderConfig tunes one host's delta sender.
type SenderConfig struct {
	// Host is the network endpoint id (1..N; shard endpoints are
	// negative).
	Host int
	// Deltas is how many sample deltas the host generates; KeysPerDelta
	// the keys per delta (defaults 12 and 4).
	Deltas, KeysPerDelta int
	// MapEpochs is how many epoch code maps the host replicates before
	// its sample deltas (default 3, matching the JIT epoch range the
	// workload tags; negative disables). Maps ride the same seq space
	// and retry protocol as deltas.
	MapEpochs int
	// GenEveryCycles is the generation period (default 30_000).
	GenEveryCycles uint64
	// TimeoutCycles is the ack timeout per attempt (default 600_000 —
	// comfortably above the network's worst stacked delay plus the
	// collector's poll period, so latency alone never times out).
	TimeoutCycles uint64
	// BackoffBaseCycles/BackoffCapCycles shape the capped exponential
	// backoff between retries (defaults 40_000 / 640_000); jitter comes
	// from the sender's seeded RNG.
	BackoffBaseCycles, BackoffCapCycles uint64
	// MaxAttempts is the retry budget before a delta spills (default 8).
	MaxAttempts int
	// SendWindow bounds in-flight unacked deltas (default 4).
	SendWindow int
	// Seed drives workload generation and backoff jitter.
	Seed int64
}

func (c *SenderConfig) fill() {
	if c.Deltas == 0 {
		c.Deltas = 12
	}
	if c.KeysPerDelta == 0 {
		c.KeysPerDelta = 4
	}
	if c.MapEpochs == 0 {
		c.MapEpochs = 3
	}
	if c.MapEpochs < 0 {
		c.MapEpochs = 0
	}
	if c.GenEveryCycles == 0 {
		c.GenEveryCycles = 30_000
	}
	if c.TimeoutCycles == 0 {
		c.TimeoutCycles = 600_000
	}
	if c.BackoffBaseCycles == 0 {
		c.BackoffBaseCycles = 40_000
	}
	if c.BackoffCapCycles == 0 {
		c.BackoffCapCycles = 640_000
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 8
	}
	if c.SendWindow == 0 {
		c.SendWindow = 4
	}
}

// ProcName is the host's process name (the Proc field of every key it
// generates — the misattribution check hinges on it).
func (c SenderConfig) ProcName() string { return fmt.Sprintf("host%02d", c.Host) }

// Delta hold states. A delta is "held" by its host until the collector
// has durably applied it; the conservation equality partitions every
// generated delta into exactly one of applied-by-collector or held.
const (
	// HoldPending: still retrying (or in flight) at shutdown.
	HoldPending = "pending"
	// HoldSpilled: retry budget exhausted, parked durably in the framed
	// spill file — recoverable, degraded loudly, never lost.
	HoldSpilled = "spilled"
	// HoldLost: retry budget exhausted AND the spill write failed; the
	// only state where samples are gone, and it is accounted per event.
	HoldLost = "lost"
)

// Delta is one generated delta and its full lifecycle record: the
// in-memory list doubles as the per-host oracle the chaos sweep checks
// the collector against.
type Delta struct {
	Seq    uint64
	Counts map[oprofile.Key]uint64
	Total  uint64
	// Kind is KindDelta or KindMap; At the generation timestamp in
	// machine cycles (the windowed-query axis); Epoch/Entries the
	// replicated code map for KindMap.
	Kind    string
	At      uint64
	Epoch   int
	Entries []core.MapEntry

	frame    []byte
	attempts int
	deadline uint64 // ack deadline of the outstanding attempt
	nextTry  uint64 // backoff gate for the next attempt
	inflight bool

	// Acked: the collector acknowledged (it journaled and applied the
	// delta). Hold: non-empty once the host gave up ("spilled"/"lost")
	// or at shutdown while unresolved ("pending").
	Acked bool
	Hold  string
}

// SenderStats is one host's self-accounting, persisted framed at exit.
type SenderStats struct {
	Generated, Sent, Retries, Timeouts, Acked uint64
	// MapsGenerated/MapsAcked track the code-map subset of the above —
	// the replication-completeness check (clean run: equal).
	MapsGenerated, MapsAcked uint64
	// Spilled/Deferred/Lost deltas: spilled are parked durably, deferred
	// counts backoff waits taken (transient degradation that resolved or
	// ended in spill), lost had their spill write fail too.
	Spilled, Deferred, Lost uint64
	// SpillErrors counts failed spill writes; StatsErrors failed stats
	// persists (observed by integrity as a missing/torn stats file).
	SpillErrors, StatsErrors uint64
	// SpilledSamples/LostSamples are sample totals over those deltas.
	SpilledSamples, LostSamples uint64
	// SpilledByEvent/LostByEvent break the degradation down per hardware
	// event, keyed by hpc.Event.String() — the per-event accounting the
	// Integrity report surfaces.
	SpilledByEvent, LostByEvent map[string]uint64
	// Clean reports the sender exited its loop and persisted stats.
	Clean bool
}

// Sender is one host's delta shipper: generate on the simulated clock,
// send with an ack timeout, retry under capped exponential backoff with
// seeded jitter, and spill durably when the budget runs out.
type Sender struct {
	cfg   SenderConfig
	net   *Network
	rng   *rand.Rand
	proc  *kernel.Process
	now   func() uint64
	route func(host int) int // host → collector endpoint, queried per send
	stats SenderStats

	Deltas    []*Delta
	generated int
	nextGen   uint64
	finished  bool
}

// NewSender builds a host sender and registers its process (a regular
// process: the machine runs until every sender resolves or crashes).
// route maps this host to its collector shard endpoint; it is queried
// on every send, so a failover re-aims retries with no coordination.
func NewSender(m *kernel.Machine, net *Network, now func() uint64, route func(host int) int, cfg SenderConfig) (*Sender, error) {
	cfg.fill()
	s := &Sender{
		cfg:   cfg,
		net:   net,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		now:   now,
		route: route,
		stats: SenderStats{
			SpilledByEvent: make(map[string]uint64),
			LostByEvent:    make(map[string]uint64),
		},
	}
	proc, err := m.Kern.NewProcess(cfg.ProcName(), s)
	if err != nil {
		return nil, err
	}
	s.proc = proc
	return s, nil
}

// Proc returns the sender's kernel process.
func (s *Sender) Proc() *kernel.Process { return s.proc }

// Stats snapshots the sender's self-accounting.
func (s *Sender) Stats() SenderStats { return s.stats }

// Finished reports whether the sender resolved every delta and exited.
func (s *Sender) Finished() bool { return s.finished }

// totalMsgs is how many wire records the host generates in all: the
// epoch code maps first, then the sample deltas, one shared seq space.
func (s *Sender) totalMsgs() int { return s.cfg.MapEpochs + s.cfg.Deltas }

// mapEntries builds the synthetic epoch-e code map: 16 compiled
// methods tiling the JIT offset range the workload samples
// ([0x1000, 0x2000)), with host-independent signatures so the same
// method aggregates across hosts in fleet reports.
func mapEntries(epoch int) []core.MapEntry {
	entries := make([]core.MapEntry, 0, 16)
	for i := 0; i < 16; i++ {
		entries = append(entries, core.MapEntry{
			Start: addr.Address(0x1000 + 256*i),
			Size:  256,
			Epoch: epoch,
			Level: "opt",
			Sig:   fmt.Sprintf("LFleet;m%02d_e%d()V", i, epoch),
		})
	}
	return entries
}

// generate builds the next record. The first MapEpochs seqs replicate
// the host's epoch code maps; the rest are sample deltas — synthetic
// but shaped like real daemon flushes: a few images, this host's proc
// name on every key, an occasional JIT key with an epoch tag.
func (s *Sender) generate(at uint64) *Delta {
	seq := uint64(s.generated + 1)
	if int(seq) <= s.cfg.MapEpochs {
		epoch := int(seq)
		return &Delta{
			Seq: seq, Kind: KindMap, At: at,
			Epoch: epoch, Entries: mapEntries(epoch),
		}
	}
	images := []string{"fleet.app", "libfleet.so", "vmlinux"}
	counts := make(map[oprofile.Key]uint64, s.cfg.KeysPerDelta)
	var total uint64
	for i := 0; i < s.cfg.KeysPerDelta; i++ {
		k := oprofile.Key{
			Event: hpc.Event(s.rng.Intn(2)),
			Image: images[s.rng.Intn(len(images))],
			Proc:  s.cfg.ProcName(),
			Off:   addr.Address(0x1000 + 8*s.rng.Intn(512)),
		}
		if s.rng.Intn(5) == 0 {
			k.Image = oprofile.JITImageName
			k.JIT = true
			k.Epoch = 1 + s.rng.Intn(3)
		}
		c := uint64(1 + s.rng.Intn(4))
		counts[k] += c
		total += c
	}
	return &Delta{Seq: seq, Kind: KindDelta, At: at, Counts: counts, Total: total}
}

// backoff sizes the wait before attempt n (1-based): capped exponential
// with jitter in [0, base) drawn from the seeded RNG.
func (s *Sender) backoff(attempt int) uint64 {
	d := s.cfg.BackoffBaseCycles << uint(attempt-1)
	if d > s.cfg.BackoffCapCycles || d < s.cfg.BackoffBaseCycles {
		d = s.cfg.BackoffCapCycles
	}
	return d + uint64(s.rng.Int63n(int64(s.cfg.BackoffBaseCycles)))
}

// drainAcks consumes acknowledgements addressed to this host.
func (s *Sender) drainAcks() {
	for _, data := range s.net.Deliver(s.cfg.Host) {
		msg, err := DecodeWire(data)
		if err != nil || msg.Kind != KindAck {
			continue
		}
		for _, d := range s.Deltas {
			if d.Seq == msg.Seq && !d.Acked {
				d.Acked = true
				d.inflight = false
				if d.Kind == KindMap {
					s.stats.MapsAcked++
				}
				// A late ack rescues a delta we had already given up on:
				// the collector applied it, so the host no longer holds
				// it. The spill-file copy becomes an absorbable
				// duplicate, not a held sample.
				if d.Hold != "" {
					s.unhold(d)
				}
				s.stats.Acked++
			}
		}
	}
}

// unhold reverses the spilled/lost accounting for a delta rescued by a
// late ack.
func (s *Sender) unhold(d *Delta) {
	switch d.Hold {
	case HoldSpilled:
		s.stats.Spilled--
		s.stats.SpilledSamples -= d.Total
		for k, c := range d.Counts {
			s.stats.SpilledByEvent[k.Event.String()] -= c
		}
	case HoldLost:
		s.stats.Lost--
		s.stats.LostSamples -= d.Total
		for k, c := range d.Counts {
			s.stats.LostByEvent[k.Event.String()] -= c
		}
	}
	d.Hold = ""
}

// spill parks a delta durably after the retry budget runs out.
func (s *Sender) spill(m *kernel.Machine, p *kernel.Process, d *Delta) {
	//viplint:allow record-frame d.frame is the DeltaFrame-built wire record, framed once at generation and reused for sends and spills
	err := m.Kern.SysWriteSync(p, SpillPath(s.cfg.Host), d.frame)
	if p.Killed() {
		// Crash mid-spill: the delta stays pending; whether the frame
		// landed is the salvage scan's problem (a torn tail drops).
		return
	}
	if err != nil {
		d.Hold = HoldLost
		s.stats.SpillErrors++
		s.stats.Lost++
		s.stats.LostSamples += d.Total
		for k, c := range d.Counts {
			s.stats.LostByEvent[k.Event.String()] += c
		}
		return
	}
	d.Hold = HoldSpilled
	s.stats.Spilled++
	s.stats.SpilledSamples += d.Total
	for k, c := range d.Counts {
		s.stats.SpilledByEvent[k.Event.String()] += c
	}
}

// Step implements kernel.Executor: one scheduling pass of the send loop.
func (s *Sender) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	now := s.now()
	s.drainAcks()

	// Generate due records (maps first, then sample deltas).
	for s.generated < s.totalMsgs() && now >= s.nextGen {
		d := s.generate(now)
		var frame []byte
		var err error
		if d.Kind == KindMap {
			frame, err = MapFrame(s.cfg.Host, d.Seq, d.Epoch, d.At, d.Entries)
		} else {
			frame, err = DeltaFrame(s.cfg.Host, d.Seq, d.At, d.Counts)
		}
		if err != nil {
			// Serialization of our own record cannot fail; treat it as
			// lost rather than crash the fleet.
			d.Hold = HoldLost
			s.stats.Lost++
			s.stats.LostSamples += d.Total
			for k, c := range d.Counts {
				s.stats.LostByEvent[k.Event.String()] += c
			}
		}
		d.frame = frame
		s.Deltas = append(s.Deltas, d)
		s.generated++
		s.stats.Generated++
		if d.Kind == KindMap {
			s.stats.MapsGenerated++
		}
		m.Kern.ExecKernel("sys_write", 15+len(frame)/32, 1)
		s.nextGen = now + s.cfg.GenEveryCycles
	}

	// Drive unresolved deltas.
	inflight := 0
	for _, d := range s.Deltas {
		if d.inflight && !d.Acked {
			inflight++
		}
	}
	var wake uint64 // earliest future event (0 = none)
	sooner := func(at uint64) {
		if at > now && (wake == 0 || at < wake) {
			wake = at
		}
	}
	if s.generated < s.totalMsgs() {
		sooner(s.nextGen)
	}
	unresolved := 0
	for _, d := range s.Deltas {
		if d.Acked || d.Hold != "" {
			continue
		}
		unresolved++
		if d.inflight {
			if now < d.deadline {
				sooner(d.deadline)
				continue
			}
			// Ack timeout: back off before the next attempt.
			d.inflight = false
			inflight--
			s.stats.Timeouts++
			if d.attempts >= s.cfg.MaxAttempts {
				s.spill(m, p, d)
				if p.Killed() {
					return kernel.StepBlocked
				}
				continue
			}
			d.nextTry = now + s.backoff(d.attempts)
			s.stats.Deferred++
		}
		if now < d.nextTry {
			sooner(d.nextTry)
			continue
		}
		if inflight >= s.cfg.SendWindow {
			continue
		}
		d.attempts++
		d.deadline = now + s.cfg.TimeoutCycles
		d.inflight = true
		inflight++
		// Route queried per attempt: after a failover the rendezvous
		// hash aims this host's retries at the absorbing shard.
		s.net.Send(s.cfg.Host, s.route(s.cfg.Host), d.frame)
		s.stats.Sent++
		if d.attempts > 1 {
			s.stats.Retries++
		}
		m.Kern.ExecKernel("sys_write", 10+len(d.frame)/64, 1)
		sooner(d.deadline)
	}

	if s.generated == s.totalMsgs() && unresolved == 0 {
		s.finish(m, p)
		if p.Killed() {
			return kernel.StepBlocked
		}
		return kernel.StepExit
	}
	if inflight > 0 {
		// Poll for acks well before the timeout would fire.
		poll := now + s.net.MaxDelayCycles() + 4_000
		sooner(poll)
	}
	if wake == 0 {
		wake = now + s.cfg.GenEveryCycles
	}
	m.Kern.Sleep(p, wake-now)
	return kernel.StepBlocked
}

// finish persists the host's framed stats record. Mark deltas still
// unresolved (none, on this path) and write the self-accounting; a
// missing or torn stats file is the crash signal integrity reads.
func (s *Sender) finish(m *kernel.Machine, p *kernel.Process) {
	s.finished = true
	s.stats.Clean = true
	if err := m.Kern.SysWriteSync(p, SenderStatsPath(s.cfg.Host), record.Frame(senderStatsPayload(&s.stats))); err != nil {
		s.stats.StatsErrors++
		s.stats.Clean = false
	}
}

// MarkShutdownHolds labels every still-unresolved delta as pending held
// at shutdown. Called by the fleet runner after the machine stops (a
// crashed sender never reaches finish; its unresolved deltas are held).
func (s *Sender) MarkShutdownHolds() {
	for _, d := range s.Deltas {
		if !d.Acked && d.Hold == "" {
			d.Hold = HoldPending
		}
	}
}
