// Package analysis is a minimal, API-compatible subset of
// golang.org/x/tools/go/analysis, vendored so viplint builds offline
// (the module deliberately carries no external dependencies; see
// go.mod). It keeps exactly the surface the viplint passes use —
// Analyzer, Pass, Diagnostic, Reportf — so each pass reads like a
// standard go/analysis analyzer and could be lifted onto the real
// framework unchanged if x/tools ever lands in the build environment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"viprof/internal/lint/ir"
)

// Analyzer describes one analysis pass: a named invariant checker run
// over a single type-checked package.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in
	// //viplint:allow <name> suppressions.
	Name string
	// Doc states the invariant the pass enforces.
	Doc string
	// Run applies the pass to one package.
	Run func(*Pass) (interface{}, error)
}

// Pass is the input to an Analyzer's Run: one package's syntax and
// types, plus the diagnostic sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)

	// IR is the whole-program SSA-lite view (def-use chains, call
	// graph, summary memo) the interprocedural passes consult. This is
	// the one deliberate divergence from the x/tools surface: it
	// stands in for the Facts machinery, which would be overkill for a
	// loader that always has the whole module in memory.
	IR *ir.Program
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos      token.Pos
	Category string // the reporting analyzer's name
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}
