package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"viprof/internal/lint/analysis"
	"viprof/internal/lint/ir"
)

// ErrFlow tracks fault-injected error values — the errors the chaos
// schedules deliberately produce from kernel.SysWrite, SysWriteSync,
// SysRename, and Disk.Read — through helper returns, and flags flows
// where such an error is dropped, shadowed, or silently merged before
// it can reach accounting:
//
//   - discarded: the error result of a fault source (or of a helper
//     whose summary says its error derives from one) is assigned to
//     the blank identifier;
//   - unused: the error is bound to a variable that is never read
//     afterwards;
//   - shadowed: the variable is overwritten by a later assignment
//     before any read — the classic `n, err := a(); m, err := b()`
//     merge that loses the first fault.
//
// The def-use chains come from the SSA-lite IR, whose evaluation-order
// guarantee makes `err = wrap(err)` read as use-then-def — wrapping a
// fault is a use, not a shadow. Bare/`go`/`defer` kernel-write drops
// stay with the syswrite-err pass; errflow owns everything that flows
// through a binding or a helper.
var ErrFlow = &analysis.Analyzer{
	Name: "errflow",
	Doc: "fault-injected errors (kernel writes, renames, disk reads, journal appends) " +
		"must reach a check: no blank-discard, no unread bindings, no shadowing " +
		"reassignment before the first read — transitively through helpers",
	Run: runErrFlow,
}

// efSum marks which of a function's error results can carry a
// fault-injected error.
type efSum struct {
	faultRes uint64
}

type efFacts struct {
	sums map[*ir.Func]*efSum
}

func efFactsOf(prog *ir.Program) *efFacts {
	return prog.Memo("errflow", func() any {
		facts := &efFacts{sums: make(map[*ir.Func]*efSum)}
		for _, f := range prog.Funcs {
			facts.sums[f] = &efSum{}
		}
		prog.Fixpoint(func(f *ir.Func) bool {
			if efSkip(f) {
				return false
			}
			st := &efState{prog: prog, facts: facts, f: f, sum: facts.sums[f]}
			st.walk()
			return st.changed
		})
		return facts
	}).(*efFacts)
}

// efSkip: the kernel produces the faults; below it there is no
// accounting to reach.
func efSkip(f *ir.Func) bool { return f.Pkg.Types.Path() == kernelPkgPath }

func runErrFlow(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == kernelPkgPath {
		return nil, nil
	}
	prog := pass.IR
	facts := efFactsOf(prog)
	for _, f := range prog.FuncsOf(pass.Pkg) {
		if efSkip(f) {
			continue
		}
		st := &efState{prog: prog, facts: facts, f: f, pass: pass}
		st.walk()
	}
	return nil, nil
}

// efState walks one function body. Summary mode (sum set) records
// which results carry faults; report mode (pass set) checks each
// fault-error binding against the def-use chain.
type efState struct {
	prog  *ir.Program
	facts *efFacts
	f     *ir.Func
	sum   *efSum
	pass  *analysis.Pass

	// faulty tracks variables currently holding a fault-injected error.
	faulty map[types.Object]bool
	// litRefs caches the set of objects referenced inside nested
	// literals: a capture is an escape the linear chain cannot see.
	litRefs map[types.Object]bool

	loopDepth int
	changed   bool
}

func (st *efState) info() *types.Info { return st.f.Pkg.Info }

func (st *efState) walk() {
	st.faulty = make(map[types.Object]bool)
	st.litRefs = st.capturedObjects()
	st.walkStmts(st.f.Body.List)
}

// capturedObjects collects every object referenced from a function
// literal nested (at any depth) inside f.
func (st *efState) capturedObjects() map[types.Object]bool {
	out := make(map[types.Object]bool)
	var mark func(f *ir.Func)
	mark = func(f *ir.Func) {
		for _, g := range st.prog.Funcs {
			if g.Parent == f {
				for obj := range g.Refs {
					out[obj] = true
				}
				mark(g)
			}
		}
	}
	mark(st.f)
	return out
}

func (st *efState) reportf(pos token.Pos, format string, args ...interface{}) {
	if st.pass != nil {
		st.pass.Reportf(pos, format, args...)
	}
}

func (st *efState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *efState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.IfStmt:
		st.walkStmt(s.Init)
		st.walkStmt(s.Body)
		st.walkStmt(s.Else)
	case *ast.ForStmt:
		st.walkStmt(s.Init)
		st.loopDepth++
		st.walkStmt(s.Body)
		st.loopDepth--
		st.walkStmt(s.Post)
	case *ast.RangeStmt:
		st.loopDepth++
		st.walkStmt(s.Body)
		st.loopDepth--
	case *ast.SwitchStmt:
		st.walkStmt(s.Init)
		st.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		st.walkStmt(s.Init)
		st.walkStmt(s.Body)
	case *ast.SelectStmt:
		st.walkStmt(s.Body)
	case *ast.CaseClause:
		st.walkStmts(s.Body)
	case *ast.CommClause:
		st.walkStmt(s.Comm)
		st.walkStmts(s.Body)
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.AssignStmt:
		st.walkAssign(s)
	case *ast.ExprStmt:
		st.scanDiscard(s.X)
	case *ast.ReturnStmt:
		st.walkReturn(s)
	case *ast.GoStmt, *ast.DeferStmt:
		// Direct kernel-write drops via go/defer belong to syswrite-err.
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) == 1 {
					if call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr); ok {
						lhs := make([]ast.Expr, len(vs.Names))
						for i, id := range vs.Names {
							lhs[i] = id
						}
						st.bindCall(lhs, call)
					}
				}
			}
		}
	}
}

// scanDiscard: an expression statement discards every result. A bare
// call to a fault-producing *helper* loses the fault (bare direct
// kernel writes are syswrite-err's report, not ours).
func (st *efState) scanDiscard(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if src, _, direct := st.faultSource(call); src != "" && !direct {
		st.reportf(call.Pos(), "fault-injected error from %s is discarded: its fault must reach accounting — check it or waive with //viplint:allow errflow <reason>", src)
	}
}

func (st *efState) walkAssign(s *ast.AssignStmt) {
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			st.bindCall(s.Lhs, call)
			return
		}
	}
	// Non-call assignments clear any stale fault classification.
	for i, l := range s.Lhs {
		obj := objectOf(st.info(), l)
		if obj == nil {
			continue
		}
		faulty := false
		if i < len(s.Rhs) {
			if robj := objectOf(st.info(), s.Rhs[i]); robj != nil && st.faulty[robj] {
				faulty = true // err2 := err keeps the classification
			}
		}
		st.faulty[obj] = faulty
	}
}

// bindCall classifies one call-result binding: fault-carrying error
// results must be bound to a variable that is subsequently read.
func (st *efState) bindCall(lhs []ast.Expr, call *ast.CallExpr) {
	src, errMask, direct := st.faultSource(call)
	if src == "" {
		for _, l := range lhs {
			if obj := objectOf(st.info(), l); obj != nil {
				delete(st.faulty, obj)
			}
		}
		return
	}
	for i, l := range lhs {
		if errMask&(1<<i) == 0 {
			if obj := objectOf(st.info(), l); obj != nil {
				delete(st.faulty, obj)
			}
			continue
		}
		obj := objectOf(st.info(), l)
		if obj == nil {
			// Blank: the fault is discarded. Single-result direct kernel
			// writes under `_ =` are syswrite-err's finding; everything
			// else (Disk.Read's `data, _`, helper errors) is ours.
			if direct && len(lhs) == 1 {
				continue
			}
			st.reportf(l.Pos(), "fault-injected error from %s is discarded: its fault must reach accounting — check it or waive with //viplint:allow errflow <reason>", src)
			continue
		}
		st.faulty[obj] = true
		st.checkBinding(obj, l.Pos(), src)
	}
}

// checkBinding inspects the def-use chain after the binding at pos:
// the next reference must be a read. A following write shadows the
// fault; no reference at all drops it (unless an earlier read exists
// inside a loop — the check-at-top-of-next-iteration shape — or the
// variable is captured by a literal).
func (st *efState) checkBinding(obj types.Object, pos token.Pos, src string) {
	if st.pass == nil {
		return
	}
	if st.litRefs[obj] {
		return // captured: the closure may read it later
	}
	refs := st.f.Refs[obj]
	idx := -1
	for i, r := range refs {
		if r.Def && r.Pos == pos {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	usedBefore := false
	for _, r := range refs[:idx] {
		if !r.Def {
			usedBefore = true
			break
		}
	}
	rest := refs[idx+1:]
	if len(rest) == 0 {
		if st.loopDepth > 0 && usedBefore {
			return // read at the top of the next iteration
		}
		st.reportf(pos, "fault-injected error from %s is bound to %s but never checked: its fault must reach accounting — check it or waive with //viplint:allow errflow <reason>", src, obj.Name())
		return
	}
	if rest[0].Def {
		st.reportf(pos, "fault-injected error from %s is overwritten before it is checked: the first fault is lost — check it before reassigning or waive with //viplint:allow errflow <reason>", src)
	}
}

// walkReturn records fault-carrying error results in the summary.
func (st *efState) walkReturn(s *ast.ReturnStmt) {
	if st.sum == nil {
		return
	}
	if len(s.Results) == 1 && len(st.f.Results) > 0 {
		// return helper(...): the callee's fault mask carries over.
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			if src, mask, _ := st.faultSource(call); src != "" {
				st.addFaultRes(mask)
				return
			}
		}
	}
	for i, e := range s.Results {
		if i >= len(st.f.Results) || i >= 64 || !isErrorType(st.f.Results[i].Type()) {
			continue
		}
		if obj := objectOf(st.info(), e); obj != nil && st.faulty[obj] {
			st.addFaultRes(1 << i)
			continue
		}
		// return ..., k.SysWrite(...): a single-result fault call in
		// result position i.
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			if src, mask, _ := st.faultSource(call); src != "" && mask&1 != 0 {
				st.addFaultRes(1 << i)
			}
		}
	}
}

func (st *efState) addFaultRes(mask uint64) {
	if mask&^st.sum.faultRes != 0 {
		st.sum.faultRes |= mask
		st.changed = true
	}
}

// faultSource classifies a call: a kernel fault source (SysWrite,
// SysWriteSync, SysRename, Disk.Read, journal Append*), or a module
// helper whose summary marks fault-carrying error results. Returns
// the source name for diagnostics, the result-index mask of its
// fault-carrying error results, and whether the call hits the kernel
// directly.
func (st *efState) faultSource(call *ast.CallExpr) (src string, errMask uint64, direct bool) {
	info := st.info()
	fn := ir.StaticCallee(info, call)
	if fn == nil {
		return "", 0, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg() != nil && fn.Pkg().Path() == kernelPkgPath {
		switch {
		case kernelWriteMethods[fn.Name()]:
			return fn.Name(), 1, true
		case fn.Name() == "Read" && receiverIs(fn, "Disk"):
			return "Disk.Read", 1 << 1, true
		case strings.HasPrefix(fn.Name(), "Append"):
			// Journal appends share the write fault schedule.
			return fn.Name(), errResultMask(sig), true
		}
		return "", 0, false
	}
	cf, ok := st.prog.ByObj[fn]
	if !ok {
		return "", 0, false
	}
	sum := st.facts.sums[cf]
	if sum.faultRes == 0 {
		return "", 0, false
	}
	return fn.Name(), sum.faultRes, false
}

// errResultMask marks every error-typed result of sig.
func errResultMask(sig *types.Signature) uint64 {
	var mask uint64
	if sig == nil {
		return 0
	}
	for i := 0; i < sig.Results().Len() && i < 64; i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			mask |= 1 << i
		}
	}
	return mask
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }
