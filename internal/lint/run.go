// Package lint is viplint: a suite of static-analysis passes that
// mechanically enforce the repository's determinism, durability, and
// attribution invariants (see DESIGN.md §11). The passes are written
// against a vendored, API-compatible subset of
// golang.org/x/tools/go/analysis (internal/lint/analysis) so the suite
// builds with the standard library alone.
package lint

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"viprof/internal/lint/analysis"
)

// Analyzers returns the full viplint pass suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{DetRand, MapOrder, SysWriteErr, EpochResolve, RecordFrame}
}

// Finding is one unsuppressed diagnostic, positioned for printing.
type Finding struct {
	Pos      string // file:line:col, file relative to the module root
	Analyzer string
	Message  string
}

// RunPackage applies the given analyzers to one loaded package and
// returns its unsuppressed findings sorted by position.
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		findings = append(findings, Finding{
			Pos:      fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column),
			Analyzer: d.Category,
			Message:  d.Message,
		})
	}
	return findings, nil
}

// Run is the multichecker driver: it locates the enclosing module from
// the working directory, expands the package patterns ("./..." style,
// relative to the module root), runs every pass over every matched
// package, and prints unsuppressed findings to w. It returns how many
// findings were printed; the viplint binary exits nonzero when that
// count is nonzero.
func Run(w io.Writer, patterns []string) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	root, modPath, err := moduleRoot(cwd)
	if err != nil {
		return 0, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expandPatterns(root, modPath, patterns)
	if err != nil {
		return 0, err
	}
	loader := NewLoader(modPath, root)
	analyzers := Analyzers()
	total := 0
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			return total, err
		}
		findings, err := RunPackage(pkg, analyzers)
		if err != nil {
			return total, err
		}
		for _, f := range findings {
			pos := f.Pos
			if rel, rerr := filepath.Rel(root, pos); rerr == nil && !strings.HasPrefix(rel, "..") {
				pos = rel
			}
			fmt.Fprintf(w, "%s: [%s] %s\n", pos, f.Analyzer, f.Message)
			total++
		}
	}
	return total, nil
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves package patterns relative to the module root
// into import paths. "dir/..." walks recursively; a plain directory
// names one package. testdata, hidden, and Go-file-free directories are
// skipped during walks (matching the go tool), but an explicit
// non-wildcard pattern may name a testdata package directly — that is
// how the lint tests point the driver at fixture packages.
func expandPatterns(root, modPath string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		p := modPath
		if rel != "." {
			p = modPath + "/" + filepath.ToSlash(rel)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
		return nil
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		if !recursive {
			names, err := goSources(base)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %v", pat, err)
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("pattern %q: no Go files in %s", pat, base)
			}
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, serr := goSources(path); serr == nil && len(names) > 0 {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
