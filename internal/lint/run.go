// Package lint is viplint: a suite of static-analysis passes that
// mechanically enforce the repository's determinism, durability, and
// attribution invariants (see DESIGN.md §11). The passes are written
// against a vendored, API-compatible subset of
// golang.org/x/tools/go/analysis (internal/lint/analysis) so the suite
// builds with the standard library alone; the interprocedural passes
// additionally consult the SSA-lite IR in internal/lint/ir.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"viprof/internal/lint/analysis"
	"viprof/internal/lint/ir"
)

// Analyzers returns the full viplint pass suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{DetRand, MapOrder, SysWriteErr, EpochResolve, RecordFrame, ErrFlow}
}

// Finding is one unsuppressed diagnostic, positioned for printing.
type Finding struct {
	Pos      string `json:"pos"` // file:line:col, file relative to the module root
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// PassStat is one pass's share of a run: how many findings it kept
// and how long its Run calls took across all packages.
type PassStat struct {
	Name     string        `json:"name"`
	Findings int           `json:"findings"`
	Wall     time.Duration `json:"-"`
	WallMS   float64       `json:"wall_ms"`
}

// Result is everything one driver run produced.
type Result struct {
	Findings []Finding  `json:"findings"`
	Stats    []PassStat `json:"stats"`
	Packages int        `json:"packages"`
}

// Options configures a driver run.
type Options struct {
	// WaiverAudit, when true (the default path), reports every
	// well-formed //viplint:allow directive that suppressed nothing —
	// a stale waiver is a silenced pass nobody is reviewing. The
	// -waiver-audit=off flag turns it off while bisecting.
	WaiverAudit bool
}

// irPackage adapts a loaded package to the IR's package shape.
func irPackage(p *Package) *ir.Package {
	return &ir.Package{Path: p.Path, Fset: p.Fset, Files: p.Files, Types: p.Types, Info: p.Info}
}

// buildProgram builds the whole-program IR over every package the
// loader has seen, plus any extra (augmented/external test) packages.
func buildProgram(l *Loader, extra ...*Package) *ir.Program {
	pkgs := l.Loaded()
	out := make([]*ir.Package, 0, len(pkgs)+len(extra))
	for _, p := range pkgs {
		out = append(out, irPackage(p))
	}
	for _, p := range extra {
		if p != nil {
			out = append(out, irPackage(p))
		}
	}
	return ir.Build(out)
}

// runAnalyzers applies the analyzers to one package against the given
// program, accumulating per-pass wall time into timings.
func runAnalyzers(prog *ir.Program, pkg *Package, analyzers []*analysis.Analyzer, timings map[string]time.Duration) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			IR:        prog,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		_, err := a.Run(pass)
		if timings != nil {
			timings[a.Name] += time.Since(start)
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
	}
	return diags, nil
}

// RunPackage applies the given analyzers to one loaded package and
// returns its unsuppressed findings sorted by position. The program IR
// is built over everything the loader has loaded so far, so fixture
// packages see their own helpers interprocedurally.
func RunPackage(l *Loader, pkg *Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	prog := buildProgram(l)
	diags, err := runAnalyzers(prog, pkg, analyzers, nil)
	if err != nil {
		return nil, err
	}
	diags, _, _ = suppressDiags(pkg, diags)
	return renderFindings(pkg, diags, ""), nil
}

// renderFindings positions, sorts, and formats diagnostics. root, when
// non-empty, relativizes file paths against the module root.
func renderFindings(pkg *Package, diags []analysis.Diagnostic, root string) []Finding {
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	findings := make([]Finding, 0, len(diags))
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		file := p.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
		findings = append(findings, Finding{
			Pos:      fmt.Sprintf("%s:%d:%d", file, p.Line, p.Column),
			Analyzer: d.Category,
			Message:  d.Message,
		})
	}
	return findings
}

// RunOpts is the full multichecker driver: it locates the enclosing
// module from the working directory, expands the package patterns
// ("./..." style, relative to the module root), loads every matched
// package, builds the whole-program IR once, runs every pass over
// every package — plus detrand over the simulation packages' _test.go
// files — and returns the unsuppressed findings with per-pass stats.
func RunOpts(patterns []string, opts Options) (*Result, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modPath, err := moduleRoot(cwd)
	if err != nil {
		return nil, err
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := expandPatterns(root, modPath, patterns)
	if err != nil {
		return nil, err
	}
	loader := NewLoader(modPath, root)
	var pkgs []*Package
	for _, path := range paths {
		pkg, lerr := loader.Load(path)
		if lerr != nil {
			return nil, lerr
		}
		pkgs = append(pkgs, pkg)
	}
	prog := buildProgram(loader)
	analyzers := Analyzers()
	timings := make(map[string]time.Duration)
	res := &Result{Packages: len(pkgs)}

	for _, pkg := range pkgs {
		diags, rerr := runAnalyzers(prog, pkg, analyzers, timings)
		if rerr != nil {
			return nil, rerr
		}
		kept, allows, used := suppressDiags(pkg, diags)
		if opts.WaiverAudit {
			kept = append(kept, auditWaivers(pkg, allows, used, false)...)
		}
		res.Findings = append(res.Findings, renderFindings(pkg, kept, root)...)
	}

	// Test-file sweep: _test.go files in the simulation packages are
	// inside the determinism scope (a wall-clock read in a chaos test
	// breaks replay just as surely), but only detrand applies — test
	// files do not persist artifacts.
	for _, pkg := range pkgs {
		if !isSimPackage(pkg.Path) {
			continue
		}
		aug, ext, terr := loader.LoadWithTests(pkg.Path)
		if terr != nil {
			return nil, terr
		}
		for _, tp := range []*Package{aug, ext} {
			if tp == nil {
				continue
			}
			tprog := buildProgram(loader, tp)
			diags, rerr := runAnalyzers(tprog, tp, []*analysis.Analyzer{DetRand}, timings)
			if rerr != nil {
				return nil, rerr
			}
			kept, allows, used := suppressDiags(tp, diags)
			kept = keepTestFileDiags(tp, kept)
			if opts.WaiverAudit {
				kept = append(kept, auditWaivers(tp, allows, used, true)...)
			}
			res.Findings = append(res.Findings, renderFindings(tp, kept, root)...)
		}
	}

	for _, a := range analyzers {
		res.Stats = append(res.Stats, PassStat{Name: a.Name, Wall: timings[a.Name]})
	}
	res.Stats = append(res.Stats, PassStat{Name: "viplint"})
	counts := make(map[string]int)
	for _, f := range res.Findings {
		counts[f.Analyzer]++
	}
	for i := range res.Stats {
		res.Stats[i].Findings = counts[res.Stats[i].Name]
		res.Stats[i].WallMS = float64(res.Stats[i].Wall.Microseconds()) / 1000
	}
	return res, nil
}

// keepTestFileDiags drops diagnostics positioned outside _test.go
// files: an augmented package re-checks the non-test sources too, and
// those already ran through the canonical sweep.
func keepTestFileDiags(pkg *Package, diags []analysis.Diagnostic) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if strings.HasSuffix(pkg.Fset.Position(d.Pos).Filename, "_test.go") {
			out = append(out, d)
		}
	}
	return out
}

// WriteText prints findings one per line in the classic vet-ish shape.
func (r *Result) WriteText(w io.Writer) {
	for _, f := range r.Findings {
		fmt.Fprintf(w, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
}

// WriteStats prints the per-pass finding counts and wall time.
func (r *Result) WriteStats(w io.Writer) {
	var total time.Duration
	for _, s := range r.Stats {
		fmt.Fprintf(w, "viplint: pass %-13s %3d finding(s) %8.1fms\n", s.Name, s.Findings, s.WallMS)
		total += s.Wall
	}
	fmt.Fprintf(w, "viplint: %d package(s), %d finding(s), %.1fms analysis time\n",
		r.Packages, len(r.Findings), float64(total.Microseconds())/1000)
}

// WriteJSON emits the whole result as one JSON document.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Run is the classic text driver: run everything (waiver audit on),
// print findings to w, return how many were printed. The viplint
// binary and the tree-clean test pin sit on this.
func Run(w io.Writer, patterns []string) (int, error) {
	res, err := RunOpts(patterns, Options{WaiverAudit: true})
	if err != nil {
		return 0, err
	}
	res.WriteText(w)
	return len(res.Findings), nil
}

// moduleRoot walks up from dir to the enclosing go.mod and returns the
// module directory and module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s: go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves package patterns relative to the module root
// into import paths. "dir/..." walks recursively; a plain directory
// names one package. testdata, hidden, and Go-file-free directories are
// skipped during walks (matching the go tool), but an explicit
// non-wildcard pattern may name a testdata package directly — that is
// how the lint tests point the driver at fixture packages.
func expandPatterns(root, modPath string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(dir string) error {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		p := modPath
		if rel != "." {
			p = modPath + "/" + filepath.ToSlash(rel)
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
		return nil
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		if !recursive {
			names, err := goSources(base)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %v", pat, err)
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("pattern %q: no Go files in %s", pat, base)
			}
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, serr := goSources(path); serr == nil && len(names) > 0 {
				return add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
