package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"viprof/internal/lint/analysis"
)

// EpochResolve enforces the attribution-soundness boundary: outside
// internal/core, PC→method lookup must go through MapChain.Resolve or
// MapChain.ResolveDurable. Direct indexing or scanning of code-map
// entry slices — or calling the reference-only ResolveScan / the raw
// Entries accessor — bypasses the poison-ceiling degradation semantics
// that keep a damaged chain from misattributing samples (degrade, don't
// lie). Core itself implements the chain and is exempt.
var EpochResolve = &analysis.Analyzer{
	Name: "epoch-resolve",
	Doc: "outside internal/core, code-map lookups must use MapChain.Resolve/ResolveDurable, " +
		"never raw entry access",
	Run: runEpochResolve,
}

const corePkgPath = "viprof/internal/core"

// forbiddenChainMethods bypass the durable resolution path.
var forbiddenChainMethods = map[string]string{
	"ResolveScan": "the reference backward scan has no poison-ceiling protection",
	"Entries":     "raw entry access bypasses durable resolution entirely",
}

func runEpochResolve(pass *analysis.Pass) (interface{}, error) {
	if path := pass.Pkg.Path(); path == corePkgPath || strings.HasPrefix(path, corePkgPath+"/") {
		return nil, nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				fn := selectedFunc(info, x)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != corePkgPath {
					return true
				}
				why, forbidden := forbiddenChainMethods[fn.Name()]
				if forbidden && receiverIs(fn, "MapChain") {
					pass.Reportf(x.Pos(), "MapChain.%s outside internal/core: %s; use Resolve or ResolveDurable", fn.Name(), why)
				}
			case *ast.IndexExpr:
				if isMapEntrySlice(info, x.X) {
					pass.Reportf(x.Pos(), "direct indexing of code-map entries outside internal/core bypasses MapChain.Resolve/ResolveDurable and its poison-ceiling semantics")
				}
			case *ast.RangeStmt:
				if isMapEntrySlice(info, x.X) {
					pass.Reportf(x.Pos(), "scanning code-map entries outside internal/core bypasses MapChain.Resolve/ResolveDurable and its poison-ceiling semantics")
				}
			}
			return true
		})
	}
	return nil, nil
}

// receiverIs reports whether fn is a method on (a pointer to) the named
// type.
func receiverIs(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	return isNamed && named.Obj().Name() == name
}

// isMapEntrySlice reports whether e's type is a slice or array of
// core.MapEntry.
func isMapEntrySlice(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	var elem types.Type
	switch u := tv.Type.Underlying().(type) {
	case *types.Slice:
		elem = u.Elem()
	case *types.Array:
		elem = u.Elem()
	default:
		return false
	}
	named, isNamed := elem.(*types.Named)
	return isNamed && named.Obj().Name() == "MapEntry" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == corePkgPath
}
