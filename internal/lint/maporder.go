package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"viprof/internal/lint/analysis"
	"viprof/internal/lint/ir"
)

// MapOrder enforces the persistence-determinism invariant: bytes that
// reach disk or a report writer must not depend on Go's randomized map
// iteration order. Since PR 8 the analysis is interprocedural: it runs
// on the SSA-lite IR (internal/lint/ir) and tracks map-range-derived
// values through helper returns, parameters, struct fields, and slice
// appends into the sinks, using per-function taint summaries so the
// walk stays linear in call edges. It flags:
//
//  1. a sink — or a call that transitively reaches a sink — executed
//     inside a range over a map (each write lands in map order);
//  2. a slice populated in map order (locally, via a helper's return,
//     or through a struct field) that reaches a sink with no
//     intervening sort.* call, including sinks buried one or more
//     helper calls deep.
//
// Within one function the walk is still linear in source order (no
// branch joins) — precise enough for this codebase, and
// //viplint:allow maporder covers the rest.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid map-iteration order from reaching persistence or report output " +
		"without an intervening sort (interprocedural: flows through helpers, " +
		"struct fields, and returns are tracked)",
	Run: runMapOrder,
}

// persistSinks names the calls whose argument bytes (or call sequence)
// become durable or user-visible output.
var persistSinks = map[string]bool{
	"SysWrite": true, "SysWriteSync": true, "SysRename": true,
	"WriteMapFile": true, "WriteCounts": true, "Frame": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true, "WriteString": true,
}

// moTaint is one taint value: whether the value carries real map
// iteration order (src, with the position where the order entered),
// and which of the current function's slice parameters it derives
// from (a bitmask, used only while computing summaries).
type moTaint struct {
	src    bool
	origin token.Pos
	params uint64
}

func (t moTaint) empty() bool { return !t.src && t.params == 0 }

func (t moTaint) merge(o moTaint) moTaint {
	out := t
	if !out.src && o.src {
		out.src, out.origin = true, o.origin
	}
	out.params |= o.params
	return out
}

// moSum is one function's taint summary.
type moSum struct {
	// paramSink maps a parameter index to the name of the sink its
	// contents (transitively) reach.
	paramSink map[int]string
	// paramRes maps a parameter index to the bitmask of results it
	// flows into.
	paramRes map[int]uint64
	// resSource is the bitmask of results that carry map order created
	// inside this function (or its callees).
	resSource uint64
	// callsSink names a sink this function (or a callee) invokes —
	// calling it inside a map range emits in map order.
	callsSink string
}

// moFacts is the program-wide maporder state: summaries per function
// plus the set of struct fields that carry map order.
type moFacts struct {
	sums   map[*ir.Func]*moSum
	fields map[types.Object]token.Pos
}

func moFactsOf(prog *ir.Program) *moFacts {
	return prog.Memo("maporder", func() any {
		facts := &moFacts{
			sums:   make(map[*ir.Func]*moSum),
			fields: make(map[types.Object]token.Pos),
		}
		for _, f := range prog.Funcs {
			facts.sums[f] = &moSum{paramSink: make(map[int]string), paramRes: make(map[int]uint64)}
		}
		prog.Fixpoint(func(f *ir.Func) bool {
			st := &moState{prog: prog, facts: facts, f: f, sum: facts.sums[f]}
			st.walk()
			return st.changed
		})
		return facts
	}).(*moFacts)
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	prog := pass.IR
	facts := moFactsOf(prog)
	for _, f := range prog.FuncsOf(pass.Pkg) {
		st := &moState{prog: prog, facts: facts, f: f, pass: pass}
		st.walk()
	}
	return nil, nil
}

// moState is one walk over one function body, in source order. With
// sum set it records the function's summary (parameters seeded with
// their own colors, reports suppressed); with pass set it reports
// violations (no parameter seeding — a caller passing tainted values
// is reported at the caller).
type moState struct {
	prog  *ir.Program
	facts *moFacts
	f     *ir.Func
	sum   *moSum         // summary mode
	pass  *analysis.Pass // report mode

	tainted   map[types.Object]moTaint
	sanitized map[types.Object]bool // sort.*-cleared during this walk
	region    moTaint               // taint of the enclosing ordered-range region
	inRange   int                   // > 0 while inside an ordered range
	changed   bool

	// pendingFields holds struct fields assigned map order during this
	// walk. They are published to facts.fields only at the end of the
	// walk, so a later sort.* over the field in the same function
	// (populate-then-sort, the idiomatic shape) retracts the taint
	// before any other function can observe it.
	pendingFields map[types.Object]token.Pos
}

func (st *moState) info() *types.Info { return st.f.Pkg.Info }

func (st *moState) walk() {
	st.tainted = make(map[types.Object]moTaint)
	st.sanitized = make(map[types.Object]bool)
	st.pendingFields = make(map[types.Object]token.Pos)
	if st.sum != nil {
		for i, p := range st.f.Params {
			if i < 64 && isSliceLike(p.Type()) {
				st.tainted[p] = moTaint{params: 1 << i}
			}
		}
	}
	st.walkStmts(st.f.Body.List)
	for obj, pos := range st.pendingFields {
		if _, ok := st.facts.fields[obj]; !ok {
			st.facts.fields[obj] = pos
			st.changed = true
		}
	}
}

func (st *moState) reportf(pos token.Pos, format string, args ...interface{}) {
	if st.pass != nil {
		st.pass.Reportf(pos, format, args...)
	}
}

// recordParamSink notes that the given parameter colors reach a sink,
// growing the summary.
func (st *moState) recordParamSink(params uint64, sink string) {
	if st.sum == nil || params == 0 {
		return
	}
	for i := range st.f.Params {
		if params&(1<<i) != 0 && st.sum.paramSink[i] == "" {
			st.sum.paramSink[i] = sink
			st.changed = true
		}
	}
}

func (st *moState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *moState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.IfStmt:
		st.walkStmt(s.Init)
		st.exprTaint(s.Cond)
		st.walkStmt(s.Body)
		st.walkStmt(s.Else)
	case *ast.ForStmt:
		st.walkStmt(s.Init)
		st.exprTaint(s.Cond)
		st.walkStmt(s.Body)
		st.walkStmt(s.Post)
	case *ast.SwitchStmt:
		st.walkStmt(s.Init)
		st.exprTaint(s.Tag)
		st.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		st.walkStmt(s.Init)
		st.walkStmt(s.Assign)
		st.walkStmt(s.Body)
	case *ast.SelectStmt:
		st.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			st.exprTaint(e)
		}
		st.walkStmts(s.Body)
	case *ast.CommClause:
		st.walkStmt(s.Comm)
		st.walkStmts(s.Body)
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.RangeStmt:
		st.walkRange(s)
	case *ast.AssignStmt:
		st.walkAssign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					st.walkAssign(lhs, vs.Values)
				}
			}
		}
	case *ast.ExprStmt:
		st.exprTaint(s.X)
	case *ast.ReturnStmt:
		st.walkReturn(s)
	case *ast.GoStmt:
		st.exprTaint(s.Call)
	case *ast.DeferStmt:
		st.exprTaint(s.Call)
	case *ast.SendStmt:
		st.exprTaint(s.Chan)
		st.exprTaint(s.Value)
	case *ast.IncDecStmt:
		st.exprTaint(s.X)
	}
}

// walkRange handles the taint source: iterating a map — or a slice
// that carries map order (locally tainted, a tainted struct field, or
// a tainted parameter during summary walks) — taints the loop
// variables and makes the body an ordered region.
func (st *moState) walkRange(s *ast.RangeStmt) {
	region := st.exprTaint(s.X)
	if tv, ok := st.info().Types[s.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			region = region.merge(moTaint{src: true, origin: s.Pos()})
		}
	}
	if region.empty() {
		st.walkStmt(s.Body)
		return
	}
	loopVar := region
	if loopVar.src {
		loopVar.origin = s.Pos() // order entered this function here
	}
	for _, v := range []ast.Expr{s.Key, s.Value} {
		if v == nil {
			continue
		}
		if obj := objectOf(st.info(), v); obj != nil {
			st.tainted[obj] = loopVar
			delete(st.sanitized, obj)
		}
	}
	savedRegion, savedDepth := st.region, st.inRange
	st.region = st.region.merge(loopVar)
	st.inRange++
	st.walkStmt(s.Body)
	st.region, st.inRange = savedRegion, savedDepth
}

// walkAssign propagates taint across an assignment: slice-like targets
// inherit the taint of their right-hand side; a clean right-hand side
// clears a previously tainted target; tainted stores into struct
// fields publish the field program-wide.
func (st *moState) walkAssign(lhs, rhs []ast.Expr) {
	var taints []moTaint
	if len(rhs) == 1 && len(lhs) > 1 {
		// x, y := f(m): one call, per-result taint.
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			taints = st.callTaints(call, len(lhs))
		} else {
			t := st.exprTaint(rhs[0])
			taints = make([]moTaint, len(lhs))
			for i := range taints {
				taints[i] = t
			}
		}
	} else {
		taints = make([]moTaint, len(lhs))
		for i, r := range rhs {
			if i < len(taints) {
				taints[i] = st.exprTaint(r)
			}
		}
	}
	for i, l := range lhs {
		obj := objectOf(st.info(), l)
		if obj == nil || !isSliceLike(obj.Type()) {
			continue
		}
		t := taints[i]
		if t.empty() {
			delete(st.tainted, obj)
			continue
		}
		st.tainted[obj] = t.merge(st.tainted[obj])
		delete(st.sanitized, obj)
		if st.sum != nil && t.src && isFieldVar(st.info(), l) {
			if _, ok := st.pendingFields[obj]; !ok {
				st.pendingFields[obj] = t.origin
			}
		}
	}
}

// walkReturn records which results carry map order or parameter taint.
func (st *moState) walkReturn(s *ast.ReturnStmt) {
	var taints []moTaint
	if len(s.Results) == 1 && len(st.f.Results) > 1 {
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			taints = st.callTaints(call, len(st.f.Results))
		}
	}
	if taints == nil {
		taints = make([]moTaint, 0, len(s.Results))
		for _, e := range s.Results {
			taints = append(taints, st.exprTaint(e))
		}
	}
	if st.sum == nil {
		return
	}
	for i, t := range taints {
		if i >= len(st.f.Results) || i >= 64 || t.empty() || !isSliceLike(st.f.Results[i].Type()) {
			continue
		}
		if t.src && st.sum.resSource&(1<<i) == 0 {
			st.sum.resSource |= 1 << i
			st.changed = true
		}
		if t.params != 0 {
			for j := range st.f.Params {
				if t.params&(1<<j) != 0 && st.sum.paramRes[j]&(1<<i) == 0 {
					st.sum.paramRes[j] |= 1 << i
					st.changed = true
				}
			}
		}
	}
}

// exprTaint walks an expression in evaluation order, processing any
// calls it contains (sort sanitizers, sinks, summarized helpers) and
// returning the expression's taint.
func (st *moState) exprTaint(e ast.Expr) moTaint {
	var t moTaint
	switch x := e.(type) {
	case nil:
	case *ast.Ident, *ast.SelectorExpr:
		if sel, ok := e.(*ast.SelectorExpr); ok {
			st.exprTaint(sel.X)
		}
		if obj := objectOf(st.info(), e); obj != nil {
			t = t.merge(st.objTaint(obj))
		}
	case *ast.CallExpr:
		ts := st.callTaints(x, 1)
		t = ts[0]
	case *ast.FuncLit:
		// Separate body, separate walk (FuncsOf covers it).
	case *ast.BinaryExpr:
		t = st.exprTaint(x.X).merge(st.exprTaint(x.Y))
	case *ast.UnaryExpr:
		t = st.exprTaint(x.X)
	case *ast.StarExpr:
		t = st.exprTaint(x.X)
	case *ast.ParenExpr:
		t = st.exprTaint(x.X)
	case *ast.IndexExpr:
		st.exprTaint(x.Index)
		// One element of an ordered slice is a value, not an ordering.
		st.exprTaint(x.X)
	case *ast.IndexListExpr:
		t = st.exprTaint(x.X)
	case *ast.SliceExpr:
		t = st.exprTaint(x.X)
		st.exprTaint(x.Low)
		st.exprTaint(x.High)
		st.exprTaint(x.Max)
	case *ast.TypeAssertExpr:
		t = st.exprTaint(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			t = t.merge(st.exprTaint(el))
		}
	case *ast.KeyValueExpr:
		t = t.merge(st.exprTaint(x.Key)).merge(st.exprTaint(x.Value))
	}
	return t
}

// objTaint looks up one object's taint: local state first, then the
// program-wide tainted-field set.
func (st *moState) objTaint(obj types.Object) moTaint {
	if t, ok := st.tainted[obj]; ok {
		return t
	}
	if st.sanitized[obj] {
		return moTaint{}
	}
	if pos, ok := st.facts.fields[obj]; ok {
		return moTaint{src: true, origin: pos}
	}
	return moTaint{}
}

// callTaints processes one call site — sanitizers, sinks, summarized
// helpers — and returns the taint of its first n results.
func (st *moState) callTaints(call *ast.CallExpr, n int) []moTaint {
	out := make([]moTaint, n)

	// Receiver and argument taints, in evaluation order.
	var recvTaint moTaint
	hasRecv := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := st.info().Selections[sel]; isSel {
			recvTaint = st.exprTaint(sel.X)
			hasRecv = true
		}
	}
	argTaints := make([]moTaint, len(call.Args))
	for i, a := range call.Args {
		argTaints[i] = st.exprTaint(a)
	}

	if st.isSortCall(call) {
		if len(call.Args) > 0 {
			if obj := objectOf(st.info(), call.Args[0]); obj != nil {
				delete(st.tainted, obj)
				delete(st.pendingFields, obj)
				st.sanitized[obj] = true
			}
		}
		return out
	}

	name := calleeName(call)
	callee := ir.StaticCallee(st.info(), call)
	var sum *moSum
	if callee != nil {
		if cf, ok := st.prog.ByObj[callee]; ok {
			sum = st.facts.sums[cf]
		}
	}

	if persistSinks[name] {
		st.handleSink(call, name)
		if st.sum != nil && st.sum.callsSink == "" {
			st.sum.callsSink = name
			st.changed = true
		}
		return out
	}

	if sum != nil {
		offset := 0
		if hasRecv {
			offset = 1
		}
		argTaintFor := func(paramIdx int) moTaint {
			if hasRecv && paramIdx == 0 {
				return recvTaint
			}
			ai := paramIdx - offset
			if ai < 0 || ai >= len(argTaints) {
				return moTaint{}
			}
			return argTaints[ai]
		}
		// A call that transitively writes to a sink, made inside an
		// ordered region: the callee's writes land in map order.
		inRangeSrc := false
		if sum.callsSink != "" {
			if st.inRange > 0 && st.region.src {
				inRangeSrc = true
				st.reportf(call.Pos(), "call to %s inside iteration over a map reaches %s: map order leaks into persisted/reported bytes; collect and sort first", name, sum.callsSink)
			}
			if st.inRange > 0 {
				st.recordParamSink(st.region.params, sum.callsSink)
			}
			if st.sum != nil && st.sum.callsSink == "" {
				st.sum.callsSink = sum.callsSink
				st.changed = true
			}
		}
		// Tainted arguments reaching a sink inside the callee.
		for pi, sink := range sum.paramSink {
			at := argTaintFor(pi)
			if at.empty() {
				continue
			}
			if at.src {
				argExpr := call.Fun
				if !hasRecv || pi > 0 {
					if ai := pi - offset; ai >= 0 && ai < len(call.Args) {
						argExpr = call.Args[ai]
					}
				}
				st.reportTaintedIn(argExpr, sink, name, !inRangeSrc)
			}
			st.recordParamSink(at.params, sink)
		}
		// Result taints via the summary.
		for i := 0; i < n && i < 64; i++ {
			if sum.resSource&(1<<i) != 0 {
				out[i] = out[i].merge(moTaint{src: true, origin: call.Pos()})
			}
			for pi, mask := range sum.paramRes {
				if mask&(1<<i) != 0 {
					out[i] = out[i].merge(argTaintFor(pi))
				}
			}
		}
		return out
	}

	// Unknown callee (builtin, stdlib, dynamic): results carry the
	// union of input taints — the append/copy/transform conservative
	// default the intra-function pass always used.
	all := recvTaint
	for _, at := range argTaints {
		all = all.merge(at)
	}
	for i := range out {
		out[i] = all
	}
	return out
}

// handleSink reports (or summarizes) a persistence/output sink call.
func (st *moState) handleSink(call *ast.CallExpr, name string) {
	inRangeSrc := st.inRange > 0 && st.region.src
	if inRangeSrc {
		// One finding covers the whole call; the loop variables it
		// mentions are the same leak, not additional ones.
		st.reportf(call.Pos(), "%s called inside iteration over a map: map order leaks into persisted/reported bytes; collect and sort first", name)
	}
	if st.inRange > 0 {
		st.recordParamSink(st.region.params, name)
	}
	for _, arg := range call.Args {
		st.reportTaintedIn(arg, name, "", !inRangeSrc)
	}
}

// reportTaintedIn reports every source-tainted object referenced in
// arg (and records parameter taint in summary mode). via names the
// helper the sink sits behind, "" for a direct sink call. reportSrc
// false keeps the parameter bookkeeping but skips the src reports
// (used when a broader in-range finding already covers the call).
func (st *moState) reportTaintedIn(arg ast.Expr, sink, via string, reportSrc bool) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		var obj types.Object
		switch x := n.(type) {
		case *ast.Ident:
			obj = objectOf(st.info(), x)
		case *ast.SelectorExpr:
			obj = objectOf(st.info(), x)
		default:
			return true
		}
		if obj == nil {
			return true
		}
		t := st.objTaint(obj)
		if t.empty() {
			return true
		}
		if t.src && reportSrc {
			if via != "" {
				st.reportf(t.origin, "%s is ordered by map iteration and reaches %s via %s without an intervening sort", obj.Name(), sink, via)
			} else {
				st.reportf(t.origin, "%s is ordered by map iteration and reaches %s without an intervening sort", obj.Name(), sink)
			}
			// One report per (object, sink encounter) is enough.
			delete(st.tainted, obj)
			st.sanitized[obj] = true
		}
		st.recordParamSink(t.params, sink)
		return true
	})
}

// isSortCall reports a call to any function in package sort (the
// sanitizer: sort.Slice, sort.Strings, sort.Sort, ...).
func (st *moState) isSortCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, _, ok := importedRef(st.info(), sel)
	return ok && pkg == "sort"
}

// isFieldVar reports whether e names a struct field.
func isFieldVar(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.FieldVal
}
