package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"viprof/internal/lint/analysis"
)

// MapOrder enforces the persistence-determinism invariant: bytes that
// reach disk or a report writer must not depend on Go's randomized map
// iteration order. It flags two shapes, per function body:
//
//  1. a persistence/output sink called lexically inside a range over a
//     map (each call lands in map order);
//  2. a slice populated inside a range over a map (or from values of
//     such a slice) that reaches a sink with no intervening sort.* call
//     on it — the exact hazard the VM agent's moved-body emission had.
//
// The analysis is an intra-function, source-order taint walk: range
// statements over maps taint their loop variables and any slice
// appended to from them; sort.*(x, ...) sanitizes x; reaching a sink
// while tainted reports. It is deliberately linear (no branch joins) —
// precise enough for this codebase, and //viplint:allow maporder covers
// the rest.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "forbid map-iteration order from reaching persistence or report output " +
		"without an intervening sort",
	Run: runMapOrder,
}

// persistSinks names the calls whose argument bytes (or call sequence)
// become durable or user-visible output.
var persistSinks = map[string]bool{
	"SysWrite": true, "SysWriteSync": true, "SysRename": true,
	"WriteMapFile": true, "WriteCounts": true, "Frame": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true, "WriteString": true,
}

func runMapOrder(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				st := &moState{pass: pass, tainted: make(map[types.Object]token.Pos)}
				st.walkStmts(body.List)
			}
			return true // nested FuncLits get their own fresh state
		})
	}
	return nil, nil
}

type moState struct {
	pass *analysis.Pass
	// tainted maps an object to the position of the map range whose
	// iteration order it carries.
	tainted map[types.Object]token.Pos
	// mapRangeDepth > 0 while walking statements whose execution order
	// is map iteration order.
	mapRangeDepth int
}

func (st *moState) info() *types.Info { return st.pass.TypesInfo }

func (st *moState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *moState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.IfStmt:
		st.walkStmt(s.Init)
		st.scanExpr(s.Cond)
		st.walkStmt(s.Body)
		st.walkStmt(s.Else)
	case *ast.ForStmt:
		st.walkStmt(s.Init)
		st.scanExpr(s.Cond)
		st.walkStmt(s.Body)
		st.walkStmt(s.Post)
	case *ast.SwitchStmt:
		st.walkStmt(s.Init)
		st.scanExpr(s.Tag)
		st.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		st.walkStmt(s.Init)
		st.walkStmt(s.Assign)
		st.walkStmt(s.Body)
	case *ast.SelectStmt:
		st.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			st.scanExpr(e)
		}
		st.walkStmts(s.Body)
	case *ast.CommClause:
		st.walkStmt(s.Comm)
		st.walkStmts(s.Body)
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.RangeStmt:
		st.walkRange(s)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st.scanExpr(e)
		}
		st.propagate(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st.scanExpr(v)
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					st.propagate(lhs, vs.Values)
				}
			}
		}
	case *ast.ExprStmt:
		st.scanExpr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st.scanExpr(e)
		}
	case *ast.GoStmt:
		st.scanExpr(s.Call)
	case *ast.DeferStmt:
		st.scanExpr(s.Call)
	case *ast.SendStmt:
		st.scanExpr(s.Chan)
		st.scanExpr(s.Value)
	case *ast.IncDecStmt:
		st.scanExpr(s.X)
	}
}

// walkRange handles the taint source: iterating a map (or a slice that
// already carries map order) taints the loop variables and makes the
// body a map-ordered region.
func (st *moState) walkRange(s *ast.RangeStmt) {
	st.scanExpr(s.X)
	ordered := false
	if tv, ok := st.info().Types[s.X]; ok && tv.Type != nil {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			ordered = true
		}
	}
	if !ordered {
		if obj := objectOf(st.info(), s.X); obj != nil {
			if _, tainted := st.tainted[obj]; tainted {
				ordered = true
			}
		}
	}
	if !ordered {
		st.walkStmt(s.Body)
		return
	}
	for _, v := range []ast.Expr{s.Key, s.Value} {
		if v == nil {
			continue
		}
		if obj := objectOf(st.info(), v); obj != nil {
			st.tainted[obj] = s.Pos()
		}
	}
	st.mapRangeDepth++
	st.walkStmt(s.Body)
	st.mapRangeDepth--
}

// scanExpr visits an expression in evaluation context: sort calls
// sanitize their first argument, sink calls report when reached in map
// order or with a tainted argument. Function literals are skipped —
// they are separate bodies with separate state.
func (st *moState) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if st.isSortCall(call) {
			if len(call.Args) > 0 {
				if obj := objectOf(st.info(), call.Args[0]); obj != nil {
					delete(st.tainted, obj)
				}
			}
			return true
		}
		if !persistSinks[calleeName(call)] {
			return true
		}
		name := calleeName(call)
		if st.mapRangeDepth > 0 {
			st.pass.Reportf(call.Pos(), "%s called inside iteration over a map: map order leaks into persisted/reported bytes; collect and sort first", name)
			return true
		}
		for _, arg := range call.Args {
			st.reportTaintedIn(arg, name)
		}
		return true
	})
}

// reportTaintedIn reports every tainted object referenced in arg.
func (st *moState) reportTaintedIn(arg ast.Expr, sink string) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		var obj types.Object
		switch x := n.(type) {
		case *ast.Ident:
			obj = objectOf(st.info(), x)
		case *ast.SelectorExpr:
			obj = objectOf(st.info(), x)
		default:
			return true
		}
		if obj == nil {
			return true
		}
		if origin, tainted := st.tainted[obj]; tainted {
			st.pass.Reportf(origin, "%s is ordered by map iteration and reaches %s without an intervening sort", obj.Name(), sink)
			// One report per (object, sink encounter) is enough.
			delete(st.tainted, obj)
		}
		return true
	})
}

// isSortCall reports a call to any function in package sort (the
// sanitizer: sort.Slice, sort.Strings, sort.Sort, ...).
func (st *moState) isSortCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, _, ok := importedRef(st.info(), sel)
	return ok && pkg == "sort"
}

// propagate taints slice-typed assignment targets whose right-hand side
// mentions a tainted object (x := append(tainted, ...), x = tainted,
// x = f(tainted)...).
func (st *moState) propagate(lhs, rhs []ast.Expr) {
	var origin token.Pos
	found := false
	for _, r := range rhs {
		ast.Inspect(r, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			if found {
				return false
			}
			var obj types.Object
			switch x := n.(type) {
			case *ast.Ident:
				obj = objectOf(st.info(), x)
			case *ast.SelectorExpr:
				obj = objectOf(st.info(), x)
			default:
				return true
			}
			if obj != nil {
				if pos, ok := st.tainted[obj]; ok {
					origin, found = pos, true
					return false
				}
			}
			return true
		})
		if found {
			break
		}
	}
	if !found {
		return
	}
	for _, l := range lhs {
		obj := objectOf(st.info(), l)
		if obj != nil && isSliceLike(obj.Type()) {
			st.tainted[obj] = origin
		}
	}
}
