package ir

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// buildSrc type-checks one source file and builds a program from it.
func buildSrc(t *testing.T, src string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return Build([]*Package{{Path: "p", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}})
}

func funcNamed(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Obj != nil && f.Obj.Name() == name {
			return f
		}
	}
	t.Fatalf("no function %q in program", name)
	return nil
}

const src = `package p

type box struct{ v int }

func helper(n int) int { return n + 1 }

func chain(a int) int {
	x := helper(a)
	x = helper(x)
	return x
}

// selfAssign is the evaluation-order pin: err = wrap(err) must read
// use-then-def, not textual LHS-first order.
func selfAssign(err error, wrap func(error) error) error {
	err = wrap(err)
	return err
}

func lits() int {
	f := func(n int) int { return helper(n) }
	return f(1)
}

func fields(b *box) int {
	b.v = helper(2)
	return b.v
}
`

func TestCallGraph(t *testing.T) {
	p := buildSrc(t, src)
	chain := funcNamed(t, p, "chain")
	if len(chain.Calls) != 2 {
		t.Fatalf("chain has %d call sites, want 2", len(chain.Calls))
	}
	helper := funcNamed(t, p, "helper")
	for _, cs := range chain.Calls {
		if cs.Callee != helper.Obj {
			t.Errorf("chain call resolves to %v, want helper", cs.Callee)
		}
	}
	// helper is called from chain (twice), the literal in lits, and
	// fields: four edges total.
	if got := len(p.CallersOf(helper.Obj)); got != 4 {
		t.Errorf("helper has %d recorded callers, want 4", got)
	}
}

func TestDefUseEvaluationOrder(t *testing.T) {
	p := buildSrc(t, src)
	f := funcNamed(t, p, "selfAssign")
	var errObj types.Object
	for obj := range f.Refs {
		if obj.Name() == "err" {
			errObj = obj
		}
	}
	if errObj == nil {
		t.Fatal("no refs recorded for err")
	}
	refs := f.Refs[errObj]
	// err = wrap(err): use (RHS) precedes def (LHS); then the return
	// reads it. The parameter's implicit def is not a body ref.
	want := []bool{false, true, false}
	if len(refs) != len(want) {
		t.Fatalf("err has %d refs, want %d: %+v", len(refs), len(want), refs)
	}
	for i, r := range refs {
		if r.Def != want[i] {
			t.Errorf("ref %d: Def=%v, want %v", i, r.Def, want[i])
		}
	}
}

func TestLiteralsAreSeparateFuncs(t *testing.T) {
	p := buildSrc(t, src)
	lits := funcNamed(t, p, "lits")
	// The enclosing function's call sites are f(1) only — the
	// literal's call to helper belongs to the literal's Func.
	if len(lits.Calls) != 1 {
		t.Fatalf("lits has %d call sites, want 1 (literal body excluded)", len(lits.Calls))
	}
	var lit *Func
	for _, f := range p.Funcs {
		if f.Lit != nil {
			lit = f
		}
	}
	if lit == nil {
		t.Fatal("no Func recorded for the function literal")
	}
	if lit.Parent != lits {
		t.Errorf("literal's parent is %v, want lits", lit.Parent)
	}
	if len(lit.Calls) != 1 || lit.Calls[0].Callee == nil || lit.Calls[0].Callee.Name() != "helper" {
		t.Errorf("literal call sites: %+v, want one call to helper", lit.Calls)
	}
}

func TestFieldRefs(t *testing.T) {
	p := buildSrc(t, src)
	f := funcNamed(t, p, "fields")
	var fieldObj types.Object
	for obj := range f.Refs {
		if obj.Name() == "v" {
			fieldObj = obj
		}
	}
	if fieldObj == nil {
		t.Fatal("no refs recorded for field v")
	}
	refs := f.Refs[fieldObj]
	if len(refs) != 2 || !refs[0].Def || refs[1].Def {
		t.Fatalf("field v refs = %+v, want def then use", refs)
	}
	if f.ParamIndex(fieldObj) != -1 {
		t.Error("field object misclassified as a parameter")
	}
}

func TestParamsIncludeReceiver(t *testing.T) {
	p := buildSrc(t, `package p
type T struct{}
func (t *T) m(a, b int) (int, error) { return a + b, nil }
`)
	f := funcNamed(t, p, "m")
	if len(f.Params) != 3 {
		t.Fatalf("m has %d params, want 3 (receiver + 2)", len(f.Params))
	}
	if f.Params[0].Name() != "t" {
		t.Errorf("param 0 is %q, want receiver t", f.Params[0].Name())
	}
	if len(f.Results) != 2 {
		t.Errorf("m has %d results, want 2", len(f.Results))
	}
}
