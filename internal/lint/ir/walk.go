package ir

import (
	"go/ast"
	"go/types"
)

// collect walks f's body in evaluation order, recording call sites and
// def-use references, and registering nested function literals as
// their own Funcs. Evaluation order matters: an assignment's RHS is
// walked before its LHS, so `err = wrap(err)` produces use-then-def —
// the property the errflow reassignment check depends on.
func (p *Program) collect(f *Func) {
	w := &refWalker{p: p, f: f}
	w.stmt(f.Body)
}

type refWalker struct {
	p *Program
	f *Func
}

func (w *refWalker) info() *types.Info { return w.f.Pkg.Info }

// ref records one reference to the object e names (identifiers and
// struct-field selections; anything else is not an addressable name).
func (w *refWalker) ref(id *ast.Ident, def bool) {
	obj := w.info().Defs[id]
	if obj == nil {
		obj = w.info().Uses[id]
	}
	if obj == nil || id.Name == "_" {
		return
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return // functions, types, packages: not data objects
	}
	w.f.Refs[obj] = append(w.f.Refs[obj], Ref{Obj: obj, Pos: id.Pos(), Def: def})
}

func (w *refWalker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *refWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt, *ast.BranchStmt:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r)
		}
		for _, l := range s.Lhs {
			w.lhs(l)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				w.expr(v)
			}
			for _, name := range vs.Names {
				w.ref(name, true)
			}
		}
	case *ast.IncDecStmt:
		w.lhs(s.X)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.expr(s.X)
		if s.Key != nil {
			w.lhs(s.Key)
		}
		if s.Value != nil {
			w.lhs(s.Value)
		}
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		w.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		w.stmt(s.Body)
	case *ast.SelectStmt:
		w.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmts(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.DeferStmt:
		w.expr(s.Call)
	}
}

// lhs walks an assignment target: the base of a selector or index is
// read, the named leaf (identifier or struct field) is written.
func (w *refWalker) lhs(e ast.Expr) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		w.ref(x, true)
	case *ast.SelectorExpr:
		w.expr(x.X)
		if s, ok := w.info().Selections[x]; ok && s.Kind() == types.FieldVal {
			w.ref(x.Sel, true)
		}
	case *ast.IndexExpr:
		// a[i] = v mutates a's contents, not its binding: element order
		// is unchanged, so the container reads as a use.
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.StarExpr:
		w.expr(x.X)
	default:
		w.expr(e)
	}
}

func (w *refWalker) expr(e ast.Expr) {
	switch x := e.(type) {
	case nil:
	case *ast.Ident:
		w.ref(x, false)
	case *ast.SelectorExpr:
		w.expr(x.X)
		if s, ok := w.info().Selections[x]; ok && s.Kind() == types.FieldVal {
			w.ref(x.Sel, false)
		}
	case *ast.CallExpr:
		// Arguments evaluate before the call happens.
		w.expr(x.Fun)
		for _, a := range x.Args {
			w.expr(a)
		}
		w.f.Calls = append(w.f.Calls, w.p.addCall(w.f, x))
	case *ast.FuncLit:
		// A literal is its own body with its own chains; references to
		// captured variables inside it do not participate in the
		// enclosing function's source-order reasoning.
		lit := w.p.newFunc(w.f.Pkg, nil, nil, x, x.Body)
		lit.Parent = w.f
		w.p.collect(lit)
	case *ast.BinaryExpr:
		w.expr(x.X)
		w.expr(x.Y)
	case *ast.UnaryExpr:
		w.expr(x.X)
	case *ast.StarExpr:
		w.expr(x.X)
	case *ast.ParenExpr:
		w.expr(x.X)
	case *ast.IndexExpr:
		w.expr(x.X)
		w.expr(x.Index)
	case *ast.IndexListExpr:
		w.expr(x.X)
	case *ast.SliceExpr:
		w.expr(x.X)
		w.expr(x.Low)
		w.expr(x.High)
		w.expr(x.Max)
	case *ast.TypeAssertExpr:
		w.expr(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(x.Key)
		w.expr(x.Value)
	}
	// Type expressions (ArrayType, MapType, ...) reference no data
	// objects and are skipped.
}

// addCall records one call site and its caller edge.
func (p *Program) addCall(f *Func, call *ast.CallExpr) *CallSite {
	cs := &CallSite{Caller: f, Call: call, Callee: StaticCallee(f.Pkg.Info, call)}
	if cs.Callee != nil {
		p.callers[cs.Callee] = append(p.callers[cs.Callee], cs)
	}
	return cs
}
