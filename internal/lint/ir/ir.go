// Package ir is viplint's SSA-lite intermediate representation: the
// minimal program shape the interprocedural passes (maporder,
// record-frame, detrand, errflow) need, built on nothing but
// go/ast + go/types. It deliberately stops far short of real SSA —
// there is no phi placement and no control-flow graph — and instead
// provides the three things a summary-based taint walk actually
// consumes:
//
//   - per-function def-use chains in *evaluation* order (an
//     assignment's RHS references precede its LHS definitions, so
//     `err = wrap(err)` reads as use-then-def, not textual order);
//   - a repo-wide static call graph (callee resolved through
//     go/types; dynamic calls through function values stay opaque);
//   - a memoized slot per program for pass summaries, plus a
//     fixpoint driver so summary computation is linear in call edges
//     times the (small) height of the summary lattice.
//
// The passes in internal/lint walk statements themselves when they
// need flow semantics; ir gives them the cross-function skeleton.
package ir

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one type-checked package the program was built from. It
// mirrors the loader's package shape so internal/lint can hand its
// loaded packages over without an import cycle.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Func is the IR for one function or method body (function literals
// get their own Func: their statements are excluded from the
// enclosing function's chains, matching the per-body scoping the
// syntactic passes always had).
type Func struct {
	// Obj is the declared function object; nil for a function literal.
	Obj *types.Func
	// Decl/Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Body *ast.BlockStmt
	Pkg  *Package
	// Parent is the enclosing Func for literals, nil for declarations.
	Parent *Func

	// Params lists the receiver (if any) followed by the signature
	// parameters, so summary bitmasks have one stable index space.
	Params []*types.Var
	// Results lists the declared results.
	Results []*types.Var

	// Calls are the call sites in this body (literal bodies excluded),
	// in evaluation order.
	Calls []*CallSite
	// Refs are the def-use chains: for each object referenced in this
	// body, its references in evaluation order.
	Refs map[types.Object][]Ref
}

// Name returns a printable name for diagnostics.
func (f *Func) Name() string {
	if f.Obj != nil {
		return f.Obj.Name()
	}
	return "func literal"
}

// ParamIndex returns the index of obj in f.Params, or -1.
func (f *Func) ParamIndex(obj types.Object) int {
	for i, p := range f.Params {
		if p == obj {
			return i
		}
	}
	return -1
}

// Ref is one reference to an object inside a function body.
type Ref struct {
	Obj types.Object
	Pos token.Pos
	// Def reports a write (assignment LHS, :=, range variable,
	// IncDec); otherwise the reference is a read.
	Def bool
}

// CallSite is one static call site.
type CallSite struct {
	Caller *Func
	Call   *ast.CallExpr
	// Callee is the statically resolved target, nil for dynamic calls
	// (function values, method values) and builtins.
	Callee *types.Func
}

// Program is the whole-module IR: every function with a body across
// the loaded packages, plus the call graph over them.
type Program struct {
	Fset  *token.FileSet
	Pkgs  []*Package
	Funcs []*Func // deterministic order: package path, then position

	// ByObj maps a declared function object to its IR.
	ByObj map[*types.Func]*Func
	// ByNode maps a FuncDecl/FuncLit node to its IR.
	ByNode map[ast.Node]*Func

	callers map[*types.Func][]*CallSite
	memo    map[string]any
}

// Build constructs the program IR for the given packages.
func Build(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:    pkgs,
		ByObj:   make(map[*types.Func]*Func),
		ByNode:  make(map[ast.Node]*Func),
		callers: make(map[*types.Func][]*CallSite),
		memo:    make(map[string]any),
	}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				f := p.newFunc(pkg, obj, fd, nil, fd.Body)
				p.collect(f)
			}
		}
	}
	sort.SliceStable(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].Pkg.Path != p.Funcs[j].Pkg.Path {
			return p.Funcs[i].Pkg.Path < p.Funcs[j].Pkg.Path
		}
		return p.Funcs[i].Body.Pos() < p.Funcs[j].Body.Pos()
	})
	return p
}

func (p *Program) newFunc(pkg *Package, obj *types.Func, decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) *Func {
	f := &Func{
		Obj:  obj,
		Decl: decl,
		Lit:  lit,
		Body: body,
		Pkg:  pkg,
		Refs: make(map[types.Object][]Ref),
	}
	var sig *types.Signature
	if obj != nil {
		sig, _ = obj.Type().(*types.Signature)
	} else if lit != nil {
		if tv, ok := pkg.Info.Types[lit]; ok {
			sig, _ = tv.Type.(*types.Signature)
		}
	}
	if sig != nil {
		if recv := sig.Recv(); recv != nil {
			f.Params = append(f.Params, recv)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			f.Params = append(f.Params, sig.Params().At(i))
		}
		for i := 0; i < sig.Results().Len(); i++ {
			f.Results = append(f.Results, sig.Results().At(i))
		}
	}
	p.Funcs = append(p.Funcs, f)
	if obj != nil {
		p.ByObj[obj] = f
	}
	if decl != nil {
		p.ByNode[decl] = f
	} else if lit != nil {
		p.ByNode[lit] = f
	}
	return f
}

// FuncsOf returns the functions whose bodies live in the given
// type-checked package (matched by pointer, so an augmented
// with-tests package never aliases its canonical twin).
func (p *Program) FuncsOf(tp *types.Package) []*Func {
	var out []*Func
	for _, f := range p.Funcs {
		if f.Pkg.Types == tp {
			out = append(out, f)
		}
	}
	return out
}

// CallersOf returns the recorded call sites targeting fn.
func (p *Program) CallersOf(fn *types.Func) []*CallSite {
	return p.callers[fn]
}

// Memo returns the cached product for key, building it on first use.
// Passes use it to compute their summary tables once per program.
func (p *Program) Memo(key string, build func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	// Reserve the slot first so a re-entrant lookup during build is an
	// obvious bug (nil) rather than infinite recursion.
	p.memo[key] = nil
	v := build()
	p.memo[key] = v
	return v
}

// Fixpoint sweeps step over every function until a full sweep reports
// no change. Summaries must grow monotonically for this to terminate;
// the sweep count is bounded by the call-graph-deep chains the
// summaries propagate along, so total work stays linear in call edges
// times that (small) height.
func (p *Program) Fixpoint(step func(*Func) bool) {
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			if step(f) {
				changed = true
			}
		}
	}
}

// StaticCallee resolves call's target through the type info: a
// package-level function, a method (including embedded promotions),
// or nil for builtins, conversions, and dynamic calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			fn, _ := s.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	}
	return nil
}
