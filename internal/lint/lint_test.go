package lint

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"viprof/internal/lint/analysis"
)

// The fixture tests mirror golang.org/x/tools/go/analysis/analysistest:
// each fixture package under testdata/src carries `// want `regex``
// comments on the lines where a pass must report, and the runner
// asserts an exact match — every want satisfied, no finding
// unaccounted for. Fixtures are real packages inside the module (the
// go tool ignores testdata, the lint loader does not), so they may
// import viprof/internal/kernel and viprof/internal/core and exercise
// the type-sensitive matching for real.

const fixturePrefix = "viprof/internal/lint/testdata/src/"

func loadFixture(t *testing.T, name string) (*Loader, *Package) {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader("viprof", root)
	pkg, err := loader.Load(fixturePrefix + name)
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	return loader, pkg
}

var wantRe = regexp.MustCompile("// want `([^`]*)`")

// fixtureWants parses the `// want` expectations out of a loaded
// fixture package.
type fixtureWant struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

func fixtureWants(t *testing.T, pkg *Package) []*fixtureWant {
	t.Helper()
	var wants []*fixtureWant
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				wants = append(wants, &fixtureWant{line: pkg.Fset.Position(c.Pos()).Line, re: re})
			}
		}
	}
	return wants
}

func findingLine(t *testing.T, pos string) int {
	t.Helper()
	parts := strings.Split(pos, ":")
	if len(parts) < 3 {
		t.Fatalf("malformed finding position %q", pos)
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		t.Fatalf("malformed finding position %q: %v", pos, err)
	}
	return line
}

// checkFixture runs one analyzer over one fixture and asserts its
// findings match the fixture's want comments exactly.
func checkFixture(t *testing.T, fixture string, a *analysis.Analyzer) {
	t.Helper()
	loader, pkg := loadFixture(t, fixture)
	findings, err := RunPackage(loader, pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", fixture, err)
	}
	wants := fixtureWants(t, pkg)
	for _, f := range findings {
		line := findingLine(t, f.Pos)
		satisfied := false
		for _, w := range wants {
			if w.line == line && !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				satisfied = true
				break
			}
		}
		if !satisfied {
			t.Errorf("%s: unexpected finding at %s: [%s] %s", fixture, f.Pos, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no finding at line %d matching %q", fixture, w.line, w.re)
		}
	}
}

func TestDetRand(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "detrand_bad", DetRand) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "detrand_ok", DetRand) })
	// A package that is neither a simulation package nor marked
	// //viplint:simpackage is out of scope even when it reads the wall
	// clock.
	t.Run("scope", func(t *testing.T) { checkFixture(t, "detrand_scope", DetRand) })
}

func TestMapOrder(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "maporder_bad", MapOrder) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "maporder_ok", MapOrder) })
}

// The interprocedural fixtures: each pass must catch violations buried
// one and two helper levels deep, and stay silent when a sort, frame,
// salvage, or check discharges the obligation anywhere on the path.
func TestMapOrderInterprocedural(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "maporder_ipr_bad", MapOrder) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "maporder_ipr_ok", MapOrder) })
}

// The SMP shard-drain fixtures: map order escaping through worker
// goroutines (captured-map ranges feeding sinks, range-ordered
// collection crossing the goroutine join) must be flagged, while the
// daemon's actual protocol — shard-local folds, commutative merges,
// sort-before-write — must stay silent.
func TestMapOrderShardDrain(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "maporder_drain_bad", MapOrder) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "maporder_drain_ok", MapOrder) })
}

// The per-CPU flush fixtures: a group's write fault dropped or
// overwritten while the merge walks the groups must be flagged; the
// stop-on-first-fault and errors.Join shapes must stay silent.
func TestErrFlowShardDrain(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "errflow_drain_bad", ErrFlow) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "errflow_drain_ok", ErrFlow) })
}

func TestRecordFrameInterprocedural(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "recordframe_ipr_bad", RecordFrame) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "recordframe_ipr_ok", RecordFrame) })
}

func TestDetRandInterprocedural(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "detrand_ipr_bad", DetRand) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "detrand_ipr_ok", DetRand) })
	// The helper package itself is outside the simulation scope: the
	// local sweep must not flag its direct wall-clock reads.
	t.Run("help", func(t *testing.T) { checkFixture(t, "detrand_ipr_help", DetRand) })
}

func TestErrFlow(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "errflow_bad", ErrFlow) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "errflow_ok", ErrFlow) })
}

func TestSysWriteErr(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "syswriteerr_bad", SysWriteErr) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "syswriteerr_ok", SysWriteErr) })
}

func TestRecordFrame(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "recordframe_bad", RecordFrame) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "recordframe_ok", RecordFrame) })
}

func TestEpochResolve(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "epochresolve_bad", EpochResolve) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "epochresolve_ok", EpochResolve) })
}

// The compaction commit fixtures: a write or rename fault dropped
// between building a generation and pruning the journals must be
// flagged (an aborted pass mistaken for a committed one destroys the
// only copy); the abort-before-prune and counted-fault shapes must
// stay silent.
func TestErrFlowCompact(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "errflow_compact_bad", ErrFlow) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "errflow_compact_ok", ErrFlow) })
}

// The map-wire fixtures: a code-map record's body is itself a framed
// stream, so journaling or compacting it without the outer frame (or
// reading the store without the salvage scanner) must be flagged; the
// outer-framed write and scanned read must stay silent.
func TestRecordFrameMapWire(t *testing.T) {
	t.Run("bad", func(t *testing.T) { checkFixture(t, "recordframe_mapwire_bad", RecordFrame) })
	t.Run("ok", func(t *testing.T) { checkFixture(t, "recordframe_mapwire_ok", RecordFrame) })
}

// TestSuppressionDropsWaivedDiagnostic proves the waiver machinery does
// real work: the raw detrand pass DOES flag the rand.Int call under the
// //viplint:allow directive in detrand_bad, and applySuppressions is
// what removes it. Without this, a fixture's "waived" function would
// pass vacuously if the analyzer simply never fired there.
func TestSuppressionDropsWaivedDiagnostic(t *testing.T) {
	_, pkg := loadFixture(t, "detrand_bad")

	// Locate the well-formed allow directive; the waived call sits on
	// the next line.
	allowLine := 0
	for _, d := range scanAllows(pkg) {
		if d.pass == "detrand" && d.reason != "" {
			allowLine = d.line
		}
	}
	if allowLine == 0 {
		t.Fatal("detrand_bad fixture has no well-formed detrand allow directive")
	}
	waivedLine := allowLine + 1

	var raw []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  DetRand,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { raw = append(raw, d) },
	}
	if _, err := DetRand.Run(pass); err != nil {
		t.Fatal(err)
	}
	rawAt := func(diags []analysis.Diagnostic, line int) int {
		n := 0
		for _, d := range diags {
			if pkg.Fset.Position(d.Pos).Line == line {
				n++
			}
		}
		return n
	}
	if got := rawAt(raw, waivedLine); got != 1 {
		t.Fatalf("raw detrand diagnostics at waived line %d: got %d, want 1", waivedLine, got)
	}
	kept, _, _ := suppressDiags(pkg, raw)
	if got := rawAt(kept, waivedLine); got != 0 {
		t.Errorf("suppressed diagnostic at line %d survived suppressDiags", waivedLine)
	}
	if len(kept) != len(raw)-1 {
		t.Errorf("suppressDiags kept %d of %d diagnostics, want exactly one dropped", len(kept), len(raw))
	}
}

// TestAllowBadform: a directive that names no pass, or gives no reason,
// is itself a finding — a suppression is a reviewed waiver, not an off
// switch.
func TestAllowBadform(t *testing.T) {
	loader, pkg := loadFixture(t, "allow_badform")
	findings, err := RunPackage(loader, pkg, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(findings), findings)
	}
	var sawNoPass, sawNoReason bool
	for _, f := range findings {
		if f.Analyzer != "viplint" {
			t.Errorf("malformed-directive finding has analyzer %q, want viplint", f.Analyzer)
		}
		if strings.Contains(f.Message, "names no pass") {
			sawNoPass = true
		}
		if strings.Contains(f.Message, "has no reason") {
			sawNoReason = true
		}
	}
	if !sawNoPass || !sawNoReason {
		t.Errorf("missing malformed-directive findings: noPass=%v noReason=%v", sawNoPass, sawNoReason)
	}
}

// TestSuppressEdges drives the waiver matcher's corner cases through
// the full driver: wrong-pass directives don't suppress, a directive
// covers a multi-line statement only via its first line, and duplicate
// directives credit first-match-only. checkFixture (audit off) asserts
// the kept findings; the audit tests below assert the stale set.
func TestSuppressEdges(t *testing.T) {
	checkFixture(t, "suppress_edge", DetRand)
}

const suppressEdgePath = "internal/lint/testdata/src/suppress_edge"

// TestWaiverAuditFindsStale: with the audit on, every well-formed
// directive that suppressed nothing is itself a finding — the
// wrong-pass waiver, the too-late waiver below a multi-line statement,
// and the duplicate on an already-covered line.
func TestWaiverAuditFindsStale(t *testing.T) {
	res, err := RunOpts([]string{suppressEdgePath}, Options{WaiverAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	stale, detrand := 0, 0
	for _, f := range res.Findings {
		switch {
		case strings.Contains(f.Message, "stale viplint:allow"):
			stale++
		case f.Analyzer == "detrand":
			detrand++
		}
	}
	if stale != 3 {
		t.Errorf("stale-waiver findings: got %d, want 3\n%+v", stale, res.Findings)
	}
	if detrand != 2 {
		t.Errorf("unsuppressed detrand findings: got %d, want 2\n%+v", detrand, res.Findings)
	}
}

// TestWaiverAuditOff: -waiver-audit=off is the bisecting escape hatch —
// the same run must keep the real findings and drop every stale-waiver
// diagnostic.
func TestWaiverAuditOff(t *testing.T) {
	res, err := RunOpts([]string{suppressEdgePath}, Options{WaiverAudit: false})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if strings.Contains(f.Message, "stale viplint:allow") {
			t.Errorf("audit off still reported: %+v", f)
		}
	}
	if len(res.Findings) != 2 {
		t.Errorf("findings with audit off: got %d, want 2\n%+v", len(res.Findings), res.Findings)
	}
}

// TestTestFileSweepSeesSimTests proves the _test.go sweep does real
// work: detrand over the augmented fleet package DOES flag the
// intentional wall-clock reads in perf_test.go, and only their
// reviewed waivers keep the tree clean.
func TestTestFileSweepSeesSimTests(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader("viprof", root)
	aug, _, err := loader.LoadWithTests("viprof/internal/fleet")
	if err != nil {
		t.Fatal(err)
	}
	if aug == nil {
		t.Fatal("fleet has test files; augmented package missing")
	}
	var raw []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  DetRand,
		Fset:      aug.Fset,
		Files:     aug.Files,
		Pkg:       aug.Types,
		TypesInfo: aug.Info,
		Report:    func(d analysis.Diagnostic) { raw = append(raw, d) },
	}
	if _, err := DetRand.Run(pass); err != nil {
		t.Fatal(err)
	}
	inPerfTest := 0
	for _, d := range raw {
		if strings.HasSuffix(aug.Fset.Position(d.Pos).Filename, "perf_test.go") {
			inPerfTest++
		}
	}
	if inPerfTest != 2 {
		t.Fatalf("raw detrand diagnostics in perf_test.go: got %d, want 2 (time.Now + time.Since)", inPerfTest)
	}
	kept, _, _ := suppressDiags(aug, raw)
	for _, d := range kept {
		if strings.HasSuffix(aug.Fset.Position(d.Pos).Filename, "perf_test.go") {
			t.Errorf("waived diagnostic survived suppression: %s", d.Message)
		}
	}
}

// TestErrFlowFleetClean pins the acceptance bar for the error-flow
// pass: zero unwaivered drops across the fleet subsystem.
func TestErrFlowFleetClean(t *testing.T) {
	res, err := RunOpts([]string{"internal/fleet"}, Options{WaiverAudit: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Findings {
		if f.Analyzer == ErrFlow.Name {
			t.Errorf("errflow finding on internal/fleet: %s: %s", f.Pos, f.Message)
		}
	}
}

// TestAnalyzerMetadata: every pass has a stable name (the suppression
// key) and documentation.
func TestAnalyzerMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{"detrand", "maporder", "syswrite-err", "epoch-resolve", "record-frame", "errflow"} {
		if !names[want] {
			t.Errorf("missing analyzer %q", want)
		}
	}
}
