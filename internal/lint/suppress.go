package lint

import (
	"go/token"
	"strings"

	"viprof/internal/lint/analysis"
)

// Suppression. Every viplint pass honours the shared directive
//
//	//viplint:allow <pass> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: a suppression is a reviewed, explained waiver of
// an invariant, not an off switch — a directive without a reason is
// itself a diagnostic.

const allowPrefix = "//viplint:allow"

// allowDirective is one parsed //viplint:allow comment.
type allowDirective struct {
	pos    token.Pos
	line   int
	pass   string // analyzer name the waiver applies to
	reason string
}

// scanAllows parses every viplint:allow directive in the package.
func scanAllows(pkg *Package) []allowDirective {
	var out []allowDirective
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := allowDirective{pos: c.Pos(), line: pkg.Fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					d.pass = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppressDiags splits raw diagnostics into kept findings, dropping
// those waived by a well-formed allow directive on the same or
// preceding line, and appends a finding for every malformed directive
// (missing pass name or missing reason). It also returns the parsed
// directives and a parallel count of how many diagnostics each one
// suppressed — each diagnostic credits the *first* matching directive,
// so a duplicate waiver on the same line earns a zero count and shows
// up stale in the audit.
func suppressDiags(pkg *Package, diags []analysis.Diagnostic) (kept []analysis.Diagnostic, allows []allowDirective, used []int) {
	allows = scanAllows(pkg)
	used = make([]int, len(allows))
	for _, d := range diags {
		line := pkg.Fset.Position(d.Pos).Line
		suppressed := false
		for i, a := range allows {
			if a.pass == d.Category && a.reason != "" && (a.line == line || a.line == line-1) {
				used[i]++
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case a.pass == "":
			kept = append(kept, analysis.Diagnostic{
				Pos: a.pos, Category: "viplint",
				Message: "viplint:allow directive names no pass",
			})
		case a.reason == "":
			kept = append(kept, analysis.Diagnostic{
				Pos: a.pos, Category: "viplint",
				Message: "viplint:allow " + a.pass + " has no reason: a suppression must say why the invariant is waived",
			})
		}
	}
	return kept, allows, used
}

// auditWaivers reports every well-formed directive that suppressed
// zero diagnostics: a stale waiver silences a pass nobody is reviewing
// (the invariant may have been re-established, the code moved, or the
// pass name mistyped). testFilesOnly restricts the audit to directives
// in _test.go files — the test-file sweep runs a reduced pass set, so
// judging non-test directives there would double-report.
func auditWaivers(pkg *Package, allows []allowDirective, used []int, testFilesOnly bool) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for i, a := range allows {
		if a.pass == "" || a.reason == "" || used[i] > 0 {
			continue // malformed directives are their own diagnostic
		}
		if testFilesOnly {
			if !strings.HasSuffix(pkg.Fset.Position(a.pos).Filename, "_test.go") {
				continue
			}
			if a.pass != DetRand.Name {
				continue // only detrand runs over test files
			}
		}
		out = append(out, analysis.Diagnostic{
			Pos: a.pos, Category: "viplint",
			Message: "stale viplint:allow " + a.pass + " waiver: it suppresses no diagnostic — delete it (or rerun with -waiver-audit=off while bisecting)",
		})
	}
	return out
}
