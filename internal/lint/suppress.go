package lint

import (
	"go/token"
	"strings"

	"viprof/internal/lint/analysis"
)

// Suppression. Every viplint pass honours the shared directive
//
//	//viplint:allow <pass> <reason>
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory: a suppression is a reviewed, explained waiver of
// an invariant, not an off switch — a directive without a reason is
// itself a diagnostic.

const allowPrefix = "//viplint:allow"

// allowDirective is one parsed //viplint:allow comment.
type allowDirective struct {
	pos    token.Pos
	line   int
	pass   string // analyzer name the waiver applies to
	reason string
}

// scanAllows parses every viplint:allow directive in the package.
func scanAllows(pkg *Package) []allowDirective {
	var out []allowDirective
	for _, f := range pkg.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				d := allowDirective{pos: c.Pos(), line: pkg.Fset.Position(c.Pos()).Line}
				if len(fields) > 0 {
					d.pass = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applySuppressions splits raw diagnostics into kept findings,
// dropping those waived by a well-formed allow directive on the same
// or preceding line, and appends a finding for every malformed
// directive (missing pass name or missing reason).
func applySuppressions(pkg *Package, diags []analysis.Diagnostic) []analysis.Diagnostic {
	allows := scanAllows(pkg)
	var kept []analysis.Diagnostic
	for _, d := range diags {
		line := pkg.Fset.Position(d.Pos).Line
		suppressed := false
		for _, a := range allows {
			if a.pass == d.Category && a.reason != "" && (a.line == line || a.line == line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, a := range allows {
		switch {
		case a.pass == "":
			kept = append(kept, analysis.Diagnostic{
				Pos: a.pos, Category: "viplint",
				Message: "viplint:allow directive names no pass",
			})
		case a.reason == "":
			kept = append(kept, analysis.Diagnostic{
				Pos: a.pos, Category: "viplint",
				Message: "viplint:allow " + a.pass + " has no reason: a suppression must say why the invariant is waived",
			})
		}
	}
	return kept
}
