package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package loading. viplint type-checks the module from source with a
// recursive importer built on the standard library alone: module
// packages parse + check in dependency order, standard-library imports
// come from the toolchain's export data (go/importer). This is the
// offline stand-in for golang.org/x/tools/go/packages, which the build
// environment cannot fetch.

// Package is one loaded, type-checked package: everything a Pass needs.
type Package struct {
	// Path is the import path; Dir the directory it was parsed from.
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source,
// memoizing by import path. It implements types.Importer so package
// type-checking recurses through it.
type Loader struct {
	// Fset is shared by every package the loader touches, so positions
	// from different packages compare and print consistently.
	Fset *token.FileSet

	modulePath string
	moduleDir  string
	std        types.Importer
	cache      map[string]*loadEntry
	testCache  map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader returns a loader for the module rooted at moduleDir with
// the given module path (the go.mod module line).
func NewLoader(modulePath, moduleDir string) *Loader {
	return &Loader{
		Fset:       token.NewFileSet(),
		modulePath: modulePath,
		moduleDir:  moduleDir,
		std:        importer.Default(),
		cache:      make(map[string]*loadEntry),
		testCache:  make(map[string]*loadEntry),
	}
}

// dirFor maps an import path to its directory inside the module, or
// "" when the path is not a module package (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer: module packages load from source,
// everything else from the toolchain's export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.dirFor(path) != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package at the given import
// path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.cache[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	entry := &loadEntry{loading: true}
	l.cache[path] = entry
	pkg, err := l.load(path)
	entry.pkg, entry.err, entry.loading = pkg, err, false
	return pkg, err
}

func (l *Loader) load(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("%s: not a module package", path)
	}
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return pkg, nil
}

// Loaded returns every module package the loader has successfully
// type-checked so far, sorted by import path — the package set the
// driver builds the whole-program IR from. Augmented with-tests
// packages are excluded: they are variants, not part of the canonical
// import graph.
func (l *Loader) Loaded() []*Package {
	var out []*Package
	for _, e := range l.cache {
		if !e.loading && e.err == nil && e.pkg != nil {
			out = append(out, e.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LoadWithTests type-checks the package's test files and returns the
// resulting packages: the in-package augmentation (all buildable files
// plus same-package _test.go files, re-checked as one unit) and, when
// external `package foo_test` files exist, a second package checked
// under the import path `<path>_test`. Either slot may be nil when no
// such test files exist.
//
// The canonical (test-free) package is loaded first and stays the one
// the import graph sees, so a test file importing a package that
// itself imports this one (core's chaos tests import harness, harness
// imports core) re-uses the cached test-free core instead of cycling.
func (l *Loader) LoadWithTests(path string) (aug, ext *Package, err error) {
	if e, ok := l.testCache[path+" [aug]"]; ok {
		ea := l.testCache[path+" [ext]"]
		var extPkg *Package
		if ea != nil {
			extPkg = ea.pkg
		}
		return e.pkg, extPkg, e.err
	}
	memo := func(a, x *Package, err error) (*Package, *Package, error) {
		l.testCache[path+" [aug]"] = &loadEntry{pkg: a, err: err}
		l.testCache[path+" [ext]"] = &loadEntry{pkg: x}
		return a, x, err
	}
	base, err := l.Load(path)
	if err != nil {
		return memo(nil, nil, err)
	}
	inPkg, extPkgFiles, err := l.parseTestFiles(base)
	if err != nil {
		return memo(nil, nil, err)
	}
	if len(inPkg) > 0 {
		files := append(append([]*ast.File{}, base.Files...), inPkg...)
		aug, err = l.check(path, base.Dir, files)
		if err != nil {
			return memo(nil, nil, fmt.Errorf("%s [with tests]: %v", path, err))
		}
	}
	if len(extPkgFiles) > 0 {
		ext, err = l.check(path+"_test", base.Dir, extPkgFiles)
		if err != nil {
			return memo(aug, nil, fmt.Errorf("%s [external tests]: %v", path, err))
		}
	}
	return memo(aug, ext, nil)
}

// parseTestFiles parses the directory's _test.go files, split into
// in-package and external (package foo_test) groups.
func (l *Loader) parseTestFiles(base *Package) (inPkg, ext []*ast.File, err error) {
	ents, err := os.ReadDir(base.Dir)
	if err != nil {
		return nil, nil, err
	}
	baseName := base.Types.Name()
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, perr := parser.ParseFile(l.Fset, filepath.Join(base.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			return nil, nil, perr
		}
		switch f.Name.Name {
		case baseName:
			inPkg = append(inPkg, f)
		case baseName + "_test":
			ext = append(ext, f)
		}
	}
	return inPkg, ext, nil
}

// check type-checks one file set as a fresh package through the
// loader's importer (canonical packages satisfy the imports).
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, err
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goSources lists the package's buildable, non-test Go files in sorted
// order (the module carries no build-tagged files).
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
