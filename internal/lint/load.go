package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package loading. viplint type-checks the module from source with a
// recursive importer built on the standard library alone: module
// packages parse + check in dependency order, standard-library imports
// come from the toolchain's export data (go/importer). This is the
// offline stand-in for golang.org/x/tools/go/packages, which the build
// environment cannot fetch.

// Package is one loaded, type-checked package: everything a Pass needs.
type Package struct {
	// Path is the import path; Dir the directory it was parsed from.
	Path string
	Dir  string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source,
// memoizing by import path. It implements types.Importer so package
// type-checking recurses through it.
type Loader struct {
	// Fset is shared by every package the loader touches, so positions
	// from different packages compare and print consistently.
	Fset *token.FileSet

	modulePath string
	moduleDir  string
	std        types.Importer
	cache      map[string]*loadEntry
}

type loadEntry struct {
	pkg     *Package
	err     error
	loading bool
}

// NewLoader returns a loader for the module rooted at moduleDir with
// the given module path (the go.mod module line).
func NewLoader(modulePath, moduleDir string) *Loader {
	return &Loader{
		Fset:       token.NewFileSet(),
		modulePath: modulePath,
		moduleDir:  moduleDir,
		std:        importer.Default(),
		cache:      make(map[string]*loadEntry),
	}
}

// dirFor maps an import path to its directory inside the module, or
// "" when the path is not a module package (i.e. standard library).
func (l *Loader) dirFor(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleDir, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer: module packages load from source,
// everything else from the toolchain's export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if l.dirFor(path) != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package at the given import
// path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.cache[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	entry := &loadEntry{loading: true}
	l.cache[path] = entry
	pkg, err := l.load(path)
	entry.pkg, entry.err, entry.loading = pkg, err, false
	return pkg, err
}

func (l *Loader) load(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("%s: not a module package", path)
	}
	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files in %s", path, dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// goSources lists the package's buildable, non-test Go files in sorted
// order (the module carries no build-tagged files).
func goSources(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
