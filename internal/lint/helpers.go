package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"viprof/internal/lint/analysis"
)

// Shared resolution helpers for the viplint passes.

// importedRef resolves a qualified identifier (pkg.Name) to the
// imported package path and selected name. ok is false for field and
// method selections.
func importedRef(info *types.Info, sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// selectedFunc resolves the function or method a selector names, via
// the selection (methods, incl. embedded) or the use map (qualified
// package functions).
func selectedFunc(info *types.Info, sel *ast.SelectorExpr) *types.Func {
	if s, ok := info.Selections[sel]; ok {
		if fn, ok := s.Obj().(*types.Func); ok {
			return fn
		}
		return nil
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		return fn
	}
	return nil
}

// calleeFunc resolves a call's callee when it is a selector-named
// function or method.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return selectedFunc(info, fun)
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeName is the syntactic name a call is made under (the selector's
// last component or the bare identifier), for name-keyed sink sets.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// hasFileDirective reports whether any comment in the pass's files is
// exactly the given //-directive (fixture packages opt into scoped
// passes this way).
func hasFileDirective(pass *analysis.Pass, directive string) bool {
	for _, f := range pass.Files {
		for _, grp := range f.Comments {
			for _, c := range grp.List {
				if strings.TrimSpace(c.Text) == "//"+directive {
					return true
				}
			}
		}
	}
	return false
}

// objectOf resolves the object an expression names: identifiers and
// field selections. nil for anything else (calls, literals, indexes).
func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return nil
		}
		if obj := info.Defs[x]; obj != nil {
			return obj
		}
		return info.Uses[x]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
			return s.Obj()
		}
	}
	return nil
}

// isSliceLike reports whether t's underlying type is a slice or array —
// the only shapes whose element order persists.
func isSliceLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}
