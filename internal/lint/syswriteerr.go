package lint

import (
	"go/ast"

	"viprof/internal/lint/analysis"
)

// SysWriteErr enforces the durability invariant that made PR 2
// necessary: the error of a kernel write-path call (Kernel.SysWrite,
// SysWriteSync, SysRename) is a durability signal — a swallowed one is
// a flush that silently never happened. Discarding it, via a bare call
// statement or a blank assignment, requires an explicit
// //viplint:allow syswrite-err <reason> waiver stating why the loss is
// tolerable (e.g. the crash-signal-by-absence stats protocol).
var SysWriteErr = &analysis.Analyzer{
	Name: "syswrite-err",
	Doc: "forbid discarding the error of Kernel.SysWrite/SysWriteSync/SysRename " +
		"without an explicit annotated waiver",
	Run: runSysWriteErr,
}

const kernelPkgPath = "viprof/internal/kernel"

var kernelWriteMethods = map[string]bool{
	"SysWrite": true, "SysWriteSync": true, "SysRename": true,
}

// kernelWriteCall resolves a call to one of the kernel write methods
// (matched by type, not by name alone: the method must live in
// internal/kernel).
func kernelWriteCall(pass *analysis.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || !kernelWriteMethods[fn.Name()] {
		return "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != kernelPkgPath {
		return "", false
	}
	return fn.Name(), true
}

func runSysWriteErr(pass *analysis.Pass) (interface{}, error) {
	report := func(pos ast.Node, name string) {
		pass.Reportf(pos.Pos(), "error from Kernel.%s discarded: a failed write is a durability event — handle it or waive it with //viplint:allow syswrite-err <reason>", name)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if name, ok := kernelWriteCall(pass, s.X); ok {
					report(s, name)
				}
			case *ast.GoStmt:
				if name, ok := kernelWriteCall(pass, s.Call); ok {
					report(s, name)
				}
			case *ast.DeferStmt:
				if name, ok := kernelWriteCall(pass, s.Call); ok {
					report(s, name)
				}
			case *ast.AssignStmt:
				// The write methods return exactly one value (the error),
				// so a discarded error is a single blank LHS.
				if len(s.Rhs) != 1 || len(s.Lhs) != 1 {
					return true
				}
				id, isIdent := s.Lhs[0].(*ast.Ident)
				if !isIdent || id.Name != "_" {
					return true
				}
				if name, ok := kernelWriteCall(pass, s.Rhs[0]); ok {
					report(s, name)
				}
			}
			return true
		})
	}
	return nil, nil
}
