package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"viprof/internal/lint/analysis"
)

// RecordFrame enforces the durable-artifact framing invariant behind
// the crash-recovery protocol: every persisted artifact is written
// through record.Frame (so a torn write fails its checksum instead of
// misparsing) and read back through the salvage layer (record.Scan or
// a salvage-aware Read* helper, so damage degrades loudly instead of
// erroring or lying). A write whose payload the pass cannot see to be
// framed, or a read whose bytes never reach a salvage-aware reader,
// requires an explicit //viplint:allow record-frame <reason> waiver
// stating why the artifact is exempt (e.g. guest program output, or a
// payload that is a concatenation of frames built out of line).
var RecordFrame = &analysis.Analyzer{
	Name: "record-frame",
	Doc: "persisted artifacts must be written through record.Frame and read back " +
		"through the salvage layer, or carry an annotated waiver",
	Run: runRecordFrame,
}

const recordPkgPath = "viprof/internal/record"

func runRecordFrame(pass *analysis.Pass) (interface{}, error) {
	// The kernel implements the disk; its internals are below the
	// framing protocol.
	if pass.Pkg.Path() == kernelPkgPath {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkRecordFrameFunc(pass, fd.Body)
		}
	}
	return nil, nil
}

func checkRecordFrameFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	// Objects assigned from a frame-producing call anywhere in this
	// function are framed payloads when later written.
	framed := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Rhs) != 1 || !isFrameProducing(info, s.Rhs[0]) {
			return true
		}
		for _, lhs := range s.Lhs {
			if obj := objectOf(info, lhs); obj != nil {
				framed[obj] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != kernelPkgPath {
			return true
		}
		switch {
		case kernelWriteMethods[fn.Name()] && fn.Name() != "SysRename":
			data := call.Args[len(call.Args)-1]
			if isFrameProducing(info, data) {
				return true
			}
			if obj := objectOf(info, data); obj != nil && framed[obj] {
				return true
			}
			pass.Reportf(call.Pos(), "unframed %s payload: persisted artifacts go through record.Frame so a torn write fails its checksum — frame it or waive with //viplint:allow record-frame <reason>", fn.Name())
		case fn.Name() == "Read" && receiverIs(fn, "Disk"):
			checkSalvagedRead(pass, body, call)
		}
		return true
	})
}

// isFrameProducing reports whether e is a call that yields framed
// bytes: record.Frame itself, or a helper whose name says it builds
// frames or journal records (buildSpillFrames, journalSpillCommit,
// JournalRecoveryBegin, ...).
func isFrameProducing(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if fn := calleeFunc(info, call); fn != nil &&
		fn.Name() == "Frame" && fn.Pkg() != nil && fn.Pkg().Path() == recordPkgPath {
		return true
	}
	name := strings.ToLower(calleeName(call))
	return strings.Contains(name, "frame") || strings.Contains(name, "journal")
}

// checkSalvagedRead requires the bytes a Disk.Read call binds to reach
// a salvage-aware reader somewhere in the enclosing function. A read
// whose result is discarded (blank) is out of scope.
func checkSalvagedRead(pass *analysis.Pass, body *ast.BlockStmt, readCall *ast.CallExpr) {
	info := pass.TypesInfo
	var obj types.Object
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok || len(s.Rhs) != 1 || ast.Unparen(s.Rhs[0]) != readCall || len(s.Lhs) == 0 {
			return true
		}
		bound = true
		obj = objectOf(info, s.Lhs[0])
		return false
	})
	if bound && obj == nil {
		return // blank: the caller only wanted the error (or nothing)
	}
	if obj != nil {
		approved := false
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSalvageReader(info, call) {
				return true
			}
			for _, arg := range call.Args {
				if usesObject(info, arg, obj) {
					approved = true
					return false
				}
			}
			return true
		})
		if approved {
			return
		}
	}
	pass.Reportf(readCall.Pos(), "Disk.Read bytes never reach a salvage-aware reader: route them through record.Scan or a Read*/salvage* helper so damage degrades instead of misparsing, or waive with //viplint:allow record-frame <reason>")
}

// isSalvageReader reports whether call is a salvage-aware reader: any
// function in internal/record, or a module function whose name marks
// it as a parsing/salvaging reader. Standard-library helpers
// (bytes.NewReader, ...) deliberately do not qualify — wrapping bytes
// is not salvaging them.
func isSalvageReader(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path == recordPkgPath {
		return true
	}
	if path != "viprof" && !strings.HasPrefix(path, "viprof/") {
		return false
	}
	name := strings.ToLower(fn.Name())
	for _, marker := range []string{"read", "salvage", "scan", "parse", "decode"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

// usesObject reports whether expr references obj anywhere.
func usesObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
