package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"viprof/internal/lint/analysis"
	"viprof/internal/lint/ir"
)

// RecordFrame enforces the durable-artifact framing invariant behind
// the crash-recovery protocol: every persisted artifact is written
// through record.Frame (so a torn write fails its checksum instead of
// misparsing) and read back through the salvage layer (record.Scan or
// a helper that routes the bytes there, so damage degrades loudly
// instead of erroring or lying).
//
// Since PR 8 the pass classifies helpers by *result type analysis*
// over the SSA-lite IR instead of by callee name: a function whose
// byte-slice results are produced by record.Frame on every non-nil
// return path is frame-producing; a function whose byte-slice
// parameters flow into record.* is salvage-aware; a function whose
// byte-slice parameter becomes a kernel write payload transfers the
// framing obligation to its callers; a function returning Disk.Read
// bytes unsalvaged transfers the salvage obligation to its callers.
// The old "name contains frame/journal/read/salvage" heuristic is
// gone — what a helper is called no longer matters, only what its
// data flow does.
var RecordFrame = &analysis.Analyzer{
	Name: "record-frame",
	Doc: "persisted artifacts must be written through record.Frame and read back " +
		"through the salvage layer (classified by data flow, not callee name), " +
		"or carry an annotated waiver",
	Run: runRecordFrame,
}

const recordPkgPath = "viprof/internal/record"

// rfSum is one function's framing summary.
type rfSum struct {
	// framedRes marks byte-slice results that carry record.Frame-framed
	// bytes on every non-nil return path.
	framedRes uint64
	// rawRes marks byte-slice results that carry raw Disk.Read bytes the
	// function itself never salvaged — the obligation moves to callers.
	rawRes uint64
	// salvageParams marks byte-slice parameters the function routes into
	// the salvage layer (record.*, or transitively).
	salvageParams uint64
	// writesParam maps a parameter index to the kernel write method the
	// parameter's bytes reach as payload: callers must pass framed bytes.
	writesParam map[int]string
}

type rfFacts struct {
	sums map[*ir.Func]*rfSum
}

func rfFactsOf(prog *ir.Program) *rfFacts {
	return prog.Memo("record-frame", func() any {
		facts := &rfFacts{sums: make(map[*ir.Func]*rfSum)}
		for _, f := range prog.Funcs {
			sum := &rfSum{writesParam: make(map[int]string)}
			// Intrinsic seeds: the record package *is* the framing and
			// salvage layer. Its byte-slice parameters are salvage
			// sinks by definition, and Frame's result is framed.
			if f.Pkg.Types.Path() == recordPkgPath {
				for i, p := range f.Params {
					if i < 64 && (isByteSlice(p.Type()) || isReaderish(p.Type())) {
						sum.salvageParams |= 1 << i
					}
				}
				if f.Obj != nil && f.Obj.Name() == "Frame" {
					sum.framedRes = 1
				}
			}
			facts.sums[f] = sum
		}
		prog.Fixpoint(func(f *ir.Func) bool {
			if rfSkip(f) {
				return false
			}
			st := &rfState{prog: prog, facts: facts, f: f, sum: facts.sums[f]}
			st.walk()
			return st.changed
		})
		return facts
	}).(*rfFacts)
}

// rfSkip: the kernel implements the disk; its internals are below the
// framing protocol.
func rfSkip(f *ir.Func) bool { return f.Pkg.Types.Path() == kernelPkgPath }

// hasCallers reports whether some static call site targets this
// function — the transferred write/salvage obligations land there.
// Literals are invoked dynamically, so they always count as called.
func (st *rfState) hasCallers() bool {
	if st.f.Obj == nil {
		return true
	}
	return len(st.prog.CallersOf(st.f.Obj)) > 0
}

func runRecordFrame(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == kernelPkgPath {
		return nil, nil
	}
	prog := pass.IR
	facts := rfFactsOf(prog)
	for _, f := range prog.FuncsOf(pass.Pkg) {
		if rfSkip(f) {
			continue
		}
		st := &rfState{prog: prog, facts: facts, f: f, pass: pass}
		st.walk()
	}
	return nil, nil
}

// rawVal tracks one binding of raw (unsalvaged) disk bytes.
type rawVal struct {
	pos token.Pos // the originating read or helper call
	via string    // helper name; "" when bound straight from Disk.Read
	ok  bool      // salvaged, or escaped to the caller
}

// rfState is one in-order walk over a function body; like moState it
// runs in summary mode (sum set: parameters tracked, reports off) or
// report mode (pass set).
type rfState struct {
	prog  *ir.Program
	facts *rfFacts
	f     *ir.Func
	sum   *rfSum
	pass  *analysis.Pass

	framed   map[types.Object]bool
	raw      map[types.Object]*rawVal
	bufClean map[types.Object]bool // bytes.Buffer vars holding only framed writes
	paramIdx map[types.Object]int  // byte-slice / reader parameter positions

	// derived maps a local to the parameter bits its value was computed
	// from through calls with no summary (io.ReadAll(r), bytes wrappers):
	// when such a local reaches the salvage layer, the originating
	// reader/byte-slice parameters earn the salvage fact too.
	derived map[types.Object]uint64

	framedSeen, unframedSeen uint64 // per-result return evidence
	changed                  bool
}

func (st *rfState) info() *types.Info { return st.f.Pkg.Info }

func (st *rfState) walk() {
	st.framed = make(map[types.Object]bool)
	st.raw = make(map[types.Object]*rawVal)
	st.bufClean = make(map[types.Object]bool)
	st.paramIdx = make(map[types.Object]int)
	st.derived = make(map[types.Object]uint64)
	for i, p := range st.f.Params {
		if i < 64 && (isByteSlice(p.Type()) || isReaderish(p.Type())) {
			st.paramIdx[p] = i
		}
	}
	st.walkStmts(st.f.Body.List)
	if st.sum != nil {
		add := st.framedSeen &^ st.unframedSeen
		if add&^st.sum.framedRes != 0 {
			st.sum.framedRes |= add
			st.changed = true
		}
	}
	if st.pass != nil {
		for _, rv := range st.raw {
			st.reportRaw(rv)
		}
	}
}

func (st *rfState) reportRaw(rv *rawVal) {
	if rv.ok {
		return
	}
	rv.ok = true
	if rv.via == "" {
		st.pass.Reportf(rv.pos, "Disk.Read bytes never reach a salvage-aware reader: route them through record.Scan or a helper that does so damage degrades instead of misparsing, or waive with //viplint:allow record-frame <reason>")
	} else {
		st.pass.Reportf(rv.pos, "raw Disk.Read bytes returned by %s never reach a salvage-aware reader: route them through record.Scan or a helper that does so damage degrades instead of misparsing, or waive with //viplint:allow record-frame <reason>", rv.via)
	}
}

func (st *rfState) reportf(pos token.Pos, format string, args ...interface{}) {
	if st.pass != nil {
		st.pass.Reportf(pos, format, args...)
	}
}

func (st *rfState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *rfState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		st.walkStmts(s.List)
	case *ast.IfStmt:
		st.walkStmt(s.Init)
		st.scanExpr(s.Cond)
		st.walkStmt(s.Body)
		st.walkStmt(s.Else)
	case *ast.ForStmt:
		st.walkStmt(s.Init)
		st.scanExpr(s.Cond)
		st.walkStmt(s.Body)
		st.walkStmt(s.Post)
	case *ast.RangeStmt:
		st.scanExpr(s.X)
		st.walkStmt(s.Body)
	case *ast.SwitchStmt:
		st.walkStmt(s.Init)
		st.scanExpr(s.Tag)
		st.walkStmt(s.Body)
	case *ast.TypeSwitchStmt:
		st.walkStmt(s.Init)
		st.walkStmt(s.Assign)
		st.walkStmt(s.Body)
	case *ast.SelectStmt:
		st.walkStmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			st.scanExpr(e)
		}
		st.walkStmts(s.Body)
	case *ast.CommClause:
		st.walkStmt(s.Comm)
		st.walkStmts(s.Body)
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.AssignStmt:
		st.walkAssign(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					st.walkAssign(lhs, vs.Values)
					continue
				}
				// var out bytes.Buffer — a candidate framed accumulator.
				for _, id := range vs.Names {
					if obj := objectOf(st.info(), id); obj != nil && isBytesBuffer(obj.Type()) {
						st.bufClean[obj] = true
					}
				}
			}
		}
	case *ast.ExprStmt:
		st.scanExpr(s.X)
	case *ast.ReturnStmt:
		st.walkReturn(s)
	case *ast.GoStmt:
		st.scanExpr(s.Call)
	case *ast.DeferStmt:
		st.scanExpr(s.Call)
	case *ast.SendStmt:
		st.scanExpr(s.Chan)
		st.scanExpr(s.Value)
	}
}

// walkAssign: process the right-hand side (checks + call semantics),
// then classify the bindings as framed, raw, or neither.
func (st *rfState) walkAssign(lhs, rhs []ast.Expr) {
	if len(rhs) == 1 {
		call, isCall := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if isCall {
			st.scanCall(call, true)
			st.bindCall(lhs, call)
			return
		}
	}
	for i, r := range rhs {
		st.scanExpr(r)
		if i >= len(lhs) {
			continue
		}
		obj := objectOf(st.info(), lhs[i])
		if obj == nil {
			continue
		}
		if st.isFramed(r) {
			st.framed[obj] = true
		} else {
			delete(st.framed, obj)
		}
		delete(st.raw, obj)
		if mask := st.deriveMask(r); mask != 0 {
			st.derived[obj] = mask
		} else {
			delete(st.derived, obj)
		}
	}
}

// deriveMask returns the parameter bits the expression's value derives
// from: parameters referenced directly, plus locals previously bound
// from them through summary-less calls.
func (st *rfState) deriveMask(e ast.Expr) uint64 {
	var mask uint64
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		obj := objectOfNode(st.info(), n)
		if obj == nil {
			return true
		}
		if i, isParam := st.paramIdx[obj]; isParam {
			mask |= 1 << i
		}
		mask |= st.derived[obj]
		return true
	})
	return mask
}

// bindCall classifies the bindings of a single-call assignment.
func (st *rfState) bindCall(lhs []ast.Expr, call *ast.CallExpr) {
	framedBit, rawBit := st.callResultBits(call)
	diskRead := isDiskRead(st.info(), call)
	mask := st.deriveMask(call)
	for i, l := range lhs {
		obj := objectOf(st.info(), l)
		if obj == nil {
			continue
		}
		delete(st.framed, obj)
		delete(st.raw, obj)
		delete(st.derived, obj)
		switch {
		case diskRead && i == 0:
			st.raw[obj] = &rawVal{pos: call.Pos()}
		case rawBit&(1<<i) != 0:
			st.raw[obj] = &rawVal{pos: call.Pos(), via: calleeName(call)}
		case framedBit&(1<<i) != 0, i == 0 && len(lhs) == 1 && st.isFramed(call):
			st.framed[obj] = true
		case mask != 0:
			// io.ReadAll(r) and friends: the binding still carries the
			// parameter's bytes for salvage-fact purposes.
			st.derived[obj] = mask
		}
	}
}

// callResultBits returns the callee summary's framed/raw result masks.
func (st *rfState) callResultBits(call *ast.CallExpr) (framed, raw uint64) {
	fn := ir.StaticCallee(st.info(), call)
	if fn == nil {
		return 0, 0
	}
	cf, ok := st.prog.ByObj[fn]
	if !ok {
		return 0, 0
	}
	sum := st.facts.sums[cf]
	return sum.framedRes, sum.rawRes
}

// walkReturn: returned raw bytes escape to the caller (rawRes);
// returned byte-slice results accumulate framed/unframed evidence.
func (st *rfState) walkReturn(s *ast.ReturnStmt) {
	// return readBlob(...): a callee's whole result tuple passes
	// through, raw bits included.
	if len(s.Results) == 1 && len(st.f.Results) > 1 {
		if call, ok := ast.Unparen(s.Results[0]).(*ast.CallExpr); ok {
			st.scanExpr(s.Results[0])
			framedBit, rawBit := st.callResultBits(call)
			for i := range st.f.Results {
				if i >= 64 || !isByteSlice(st.f.Results[i].Type()) {
					continue
				}
				switch {
				case rawBit&(1<<i) != 0:
					st.passRaw(i, call)
				case framedBit&(1<<i) != 0:
					st.framedSeen |= 1 << i
				default:
					st.unframedSeen |= 1 << i
				}
			}
			return
		}
	}
	for i, e := range s.Results {
		st.scanExpr(e)
		if i >= len(st.f.Results) || i >= 64 || !isByteSlice(st.f.Results[i].Type()) {
			continue
		}
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			if _, rawBit := st.callResultBits(call); rawBit&1 != 0 {
				st.passRaw(i, call)
				continue
			}
		}
		if obj := objectOf(st.info(), e); obj != nil {
			if rv, isRaw := st.raw[obj]; isRaw {
				if st.sum != nil {
					rv.ok = true
					if st.sum.rawRes&(1<<i) == 0 {
						st.sum.rawRes |= 1 << i
						st.changed = true
					}
				} else if st.hasCallers() {
					// Escapes to a caller, whose binding inherits the
					// salvage obligation via rawRes.
					rv.ok = true
				}
				continue
			}
		}
		if isNilExpr(st.info(), e) {
			continue
		}
		if st.isFramed(e) {
			st.framedSeen |= 1 << i
		} else {
			st.unframedSeen |= 1 << i
		}
	}
}

// passRaw: result i of a returned call carries raw bytes straight
// through to this function's callers — record it in the summary, or,
// when nobody calls this function, report the dead end here.
func (st *rfState) passRaw(i int, call *ast.CallExpr) {
	if st.sum != nil {
		if st.sum.rawRes&(1<<i) == 0 {
			st.sum.rawRes |= 1 << i
			st.changed = true
		}
		return
	}
	if !st.hasCallers() {
		st.reportRaw(&rawVal{pos: call.Pos(), via: calleeName(call)})
	}
}

// scanExpr walks an expression for call sites.
func (st *rfState) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // its body is its own Func
		case *ast.CallExpr:
			st.scanCall(x, false)
			return false // scanCall descends into arguments itself
		}
		return true
	})
}

// scanCall enforces the write-side and read-side obligations at one
// call site. bound reports whether the call's results are being bound
// by the enclosing assignment.
func (st *rfState) scanCall(call *ast.CallExpr, bound bool) {
	// Arguments first (nested calls evaluate before the outer call).
	for _, a := range call.Args {
		st.scanExpr(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		st.scanExpr(sel.X)
	}

	info := st.info()
	fn := ir.StaticCallee(info, call)

	// bytes.Buffer accumulator protocol.
	if st.bufferMethod(call) {
		return
	}

	// A tracked buffer passed to any other call — WriteMapFile(&buf, …),
	// fmt.Fprintf(&buf, …) — takes on bytes this pass cannot see; it is
	// no longer a clean framed accumulator.
	for _, a := range call.Args {
		x := ast.Unparen(a)
		if u, isAddr := x.(*ast.UnaryExpr); isAddr && u.Op == token.AND {
			x = ast.Unparen(u.X)
		}
		if obj := objectOf(info, x); obj != nil {
			if _, tracked := st.bufClean[obj]; tracked {
				st.bufClean[obj] = false
			}
		}
	}

	// Read side: a Disk.Read whose bytes are never bound is a read the
	// function cannot be salvaging.
	if isDiskRead(info, call) {
		if !bound {
			st.reportf(call.Pos(), "Disk.Read bytes never reach a salvage-aware reader: route them through record.Scan or a helper that does so damage degrades instead of misparsing, or waive with //viplint:allow record-frame <reason>")
		}
		return
	}

	// Write side: kernel write payloads must be framed.
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == kernelPkgPath &&
		kernelWriteMethods[fn.Name()] && fn.Name() != "SysRename" && len(call.Args) > 0 {
		st.checkPayload(call.Args[len(call.Args)-1], fn.Name(), "")
		return
	}

	// Calls into summarized module functions: transferred obligations.
	var sum *rfSum
	var cf *ir.Func
	if fn != nil {
		if f, ok := st.prog.ByObj[fn]; ok {
			cf = f
			sum = st.facts.sums[f]
		}
	}
	if sum == nil {
		return
	}
	recvOffset := 0
	if len(cf.Params) > 0 && cf.Obj != nil {
		if sig, ok := cf.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			recvOffset = 1
		}
	}
	argFor := func(pi int) ast.Expr {
		ai := pi - recvOffset
		if ai < 0 || ai >= len(call.Args) {
			return nil
		}
		return call.Args[ai]
	}
	// Framing obligation transferred from the callee's kernel write.
	for pi, method := range sum.writesParam {
		if arg := argFor(pi); arg != nil {
			st.checkPayload(arg, method, cf.Name())
		}
	}
	// Salvage credit: raw bytes reaching a salvage-aware callee (the
	// record package, or a parameter the callee routes there).
	isRecord := fn.Pkg() != nil && fn.Pkg().Path() == recordPkgPath
	for pi := range cf.Params {
		arg := argFor(pi)
		if arg == nil {
			continue
		}
		salvaging := isRecord || sum.salvageParams&(1<<pi) != 0
		if !salvaging {
			continue
		}
		st.creditSalvage(arg, pi)
	}
}

// creditSalvage marks every raw value mentioned in arg as salvaged,
// and records the salvage fact for parameters in summary mode.
func (st *rfState) creditSalvage(arg ast.Expr, calleeParam int) {
	ast.Inspect(arg, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		obj := objectOfNode(st.info(), n)
		if obj == nil {
			return true
		}
		if rv, ok := st.raw[obj]; ok {
			rv.ok = true
		}
		if st.sum != nil {
			mask := st.derived[obj]
			if i, isParam := st.paramIdx[obj]; isParam {
				mask |= 1 << i
			}
			if mask&^st.sum.salvageParams != 0 {
				st.sum.salvageParams |= mask
				st.changed = true
			}
		}
		return true
	})
}

// checkPayload enforces framing on one kernel write payload: framed
// expressions pass, parameter payloads transfer the obligation to
// callers, anything else is a violation. via names the helper the
// write sits behind ("" for a direct kernel call).
func (st *rfState) checkPayload(payload ast.Expr, method, via string) {
	if st.isFramed(payload) {
		return
	}
	if obj := objectOf(st.info(), payload); obj != nil {
		if i, isParam := st.paramIdx[obj]; isParam && isByteSlice(obj.Type()) && !st.allowedHere(payload.Pos()) {
			// A waiver at the write site pins the obligation here: the
			// summary transfers nothing, the local report stands (and is
			// suppressed by — and credits — that directive). Otherwise
			// the callers would be flagged instead and the reviewed
			// waiver would audit as stale.
			if st.sum != nil {
				if st.sum.writesParam[i] == "" {
					st.sum.writesParam[i] = method
					st.changed = true
				}
				return
			}
			// Report mode: the obligation moves to the callers — unless
			// nobody calls this function, in which case no caller will
			// ever frame the payload and the write itself is the finding.
			if st.hasCallers() {
				return
			}
		}
	}
	if via == "" {
		st.reportf(payload.Pos(), "unframed %s payload: persisted artifacts go through record.Frame so a torn write fails its checksum — frame it or waive with //viplint:allow record-frame <reason>", method)
	} else {
		st.reportf(payload.Pos(), "unframed %s payload passed to %s: persisted artifacts go through record.Frame so a torn write fails its checksum — frame it or waive with //viplint:allow record-frame <reason>", method, via)
	}
}

// bufferMethod handles a method call on a tracked bytes.Buffer: Write
// of framed bytes keeps the accumulator clean, anything else dirties
// it. Returns true when the call was a tracked-buffer method.
func (st *rfState) bufferMethod(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := objectOf(st.info(), sel.X)
	if obj == nil {
		return false
	}
	if _, tracked := st.bufClean[obj]; !tracked {
		return false
	}
	switch sel.Sel.Name {
	case "Write":
		if !(len(call.Args) == 1 && st.isFramed(call.Args[0])) {
			st.bufClean[obj] = false
		}
	case "Bytes", "Len", "Cap", "String":
		// Reads don't change what the buffer holds.
	default:
		st.bufClean[obj] = false
	}
	return true
}

// isFramed reports whether e evaluates to record.Frame-framed bytes:
// a record.Frame call, a call whose summary marks the result framed, a
// local already classified framed, a clean accumulator's Bytes(), or
// an append stitching framed pieces together.
func (st *rfState) isFramed(e ast.Expr) bool {
	e = ast.Unparen(e)
	info := st.info()
	switch x := e.(type) {
	case *ast.CallExpr:
		if id, isIdent := ast.Unparen(x.Fun).(*ast.Ident); isIdent && id.Name == "append" {
			if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
				for _, a := range x.Args {
					if !st.isFramed(a) {
						return false
					}
				}
				return len(x.Args) > 0
			}
		}
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Bytes" {
			if obj := objectOf(info, sel.X); obj != nil && st.bufClean[obj] {
				return true
			}
		}
		framedBits, _ := st.callResultBits(x)
		return framedBits&1 != 0
	case *ast.Ident, *ast.SelectorExpr:
		if obj := objectOf(info, e); obj != nil {
			return st.framed[obj]
		}
	}
	return false
}

// objectOfNode: objectOf lifted to ast.Node for Inspect callbacks.
func objectOfNode(info *types.Info, n ast.Node) types.Object {
	e, ok := n.(ast.Expr)
	if !ok {
		return nil
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return objectOf(info, e)
	}
	return nil
}

// allowedHere reports a well-formed //viplint:allow record-frame
// directive on pos's line or the line above — the writer pinned the
// waiver to the write site, so obligations must not outrun it.
func (st *rfState) allowedHere(pos token.Pos) bool {
	line := st.f.Pkg.Fset.Position(pos).Line
	for _, file := range st.f.Pkg.Files {
		for _, grp := range file.Comments {
			for _, c := range grp.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 || fields[0] != "record-frame" {
					continue
				}
				cl := st.f.Pkg.Fset.Position(c.Pos()).Line
				if cl == line || cl == line-1 {
					return true
				}
			}
		}
	}
	return false
}

// isReaderish reports an interface type with a Read method (io.Reader
// and supersets): bytes flowing in through such a parameter are the
// read-side analogue of a byte-slice parameter.
func isReaderish(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Read" {
			return true
		}
	}
	return false
}

// isDiskRead matches kernel Disk.Read — the raw-bytes source.
func isDiskRead(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == kernelPkgPath &&
		fn.Name() == "Read" && receiverIs(fn, "Disk")
}

// isByteSlice reports []byte (or a named type over it).
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isBytesBuffer reports bytes.Buffer or *bytes.Buffer.
func isBytesBuffer(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer"
}

// isNilExpr reports the untyped nil.
func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}
