// Package detrand_ipr_ok: a simulation package whose out-of-scope
// helper calls are all clean — the interprocedural sweep must stay
// silent.
//
//viplint:simpackage
package detrand_ipr_ok

import (
	"math/rand"

	help "viprof/internal/lint/testdata/src/detrand_ipr_help"
)

func label(v int64) string {
	return help.Format(v)
}

// Injected seeded randomness is the approved pattern, local or not.
func draw(rng *rand.Rand) int {
	return rng.Intn(100)
}

func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
