// Package recordframe_ipr_bad is a viplint fixture for the
// interprocedural record-frame pass: framing and salvage obligations
// transferred through one and two helper levels.
package recordframe_ipr_bad

import (
	"viprof/internal/kernel"
)

// writeBlob's payload parameter reaches SysWrite: its summary moves
// the framing obligation to every caller.
func writeBlob(k *kernel.Kernel, p *kernel.Process, path string, data []byte) error {
	return k.SysWrite(p, path, data)
}

// writeBlob2 forwards the parameter: the obligation survives a second
// helper level.
func writeBlob2(k *kernel.Kernel, p *kernel.Process, path string, data []byte) error {
	return writeBlob(k, p, path, data)
}

func oneLevelWrite(k *kernel.Kernel, p *kernel.Process, rec string) error {
	return writeBlob(k, p, "spill", []byte(rec)) // want `unframed SysWrite payload passed to writeBlob`
}

func twoLevelWrite(k *kernel.Kernel, p *kernel.Process, rec string) error {
	return writeBlob2(k, p, "spill", []byte(rec)) // want `unframed SysWrite payload passed to writeBlob2`
}

// readBlob returns Disk.Read bytes it never salvages: its summary
// moves the salvage obligation to every caller.
func readBlob(d *kernel.Disk, path string) ([]byte, error) {
	data, err := d.Read(path)
	return data, err
}

// readBlob2 passes the whole tuple through untouched.
func readBlob2(d *kernel.Disk, path string) ([]byte, error) {
	return readBlob(d, path)
}

func oneLevelRead(d *kernel.Disk) int {
	data, err := readBlob(d, "spill") // want `raw Disk.Read bytes returned by readBlob never reach a salvage-aware reader`
	if err != nil {
		return 0
	}
	return len(data)
}

func twoLevelRead(d *kernel.Disk) int {
	data, err := readBlob2(d, "spill") // want `raw Disk.Read bytes returned by readBlob2 never reach a salvage-aware reader`
	if err != nil {
		return 0
	}
	return len(data)
}
