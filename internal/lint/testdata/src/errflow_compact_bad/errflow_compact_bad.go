// Package errflow_compact_bad is a viplint fixture for the compaction
// commit shapes the crash-safety argument depends on: a write or
// rename fault dropped between building a generation and pruning the
// journals turns an aborted pass into silent data destruction — the
// pass believes it committed, prunes the journals, and the renamed
// file that never landed was the only other copy.
package errflow_compact_bad

import (
	"viprof/internal/kernel"
)

// writeChunk persists one temp generation file; its error result
// carries the write fault to callers.
func writeChunk(k *kernel.Kernel, p *kernel.Process, path string, data []byte) error {
	return k.SysWriteSync(p, path, data)
}

// commitFile renames a temp file into its final generation name: the
// rename fault is the only signal the commit did not happen.
func commitFile(k *kernel.Kernel, p *kernel.Process, tmp, final string) error {
	return k.SysRename(p, tmp, final)
}

// A pass that discards every chunk's fault and prunes anyway.
func compactAndPruneBlind(k *kernel.Kernel, p *kernel.Process, d *kernel.Disk, chunks []string) {
	for _, path := range chunks {
		writeChunk(k, p, path+".tmp", nil) // want `fault-injected error from writeChunk is discarded`
		commitFile(k, p, path+".tmp", path) // want `fault-injected error from commitFile is discarded`
	}
	d.Remove("var/fleet/shard00.journal")
}

// A manifest commit that keeps only the rename fault: the payload
// write's fault is overwritten before anyone reads it.
func commitManifestLastWins(k *kernel.Kernel, p *kernel.Process, data []byte) error {
	err := writeChunk(k, p, "var/fleet/gen/MANIFEST.tmp", data) // want `fault-injected error from writeChunk is overwritten before it is checked`
	err = commitFile(k, p, "var/fleet/gen/MANIFEST.tmp", "var/fleet/gen/MANIFEST")
	return err
}

// A commit helper that binds the rename fault and reports success.
func commitUnread(k *kernel.Kernel, p *kernel.Process) error {
	var err error
	if err != nil {
		return err
	}
	err = commitFile(k, p, "var/fleet/gen/g0001-00.samples.tmp", "var/fleet/gen/g0001-00.samples") // want `fault-injected error from commitFile is bound to err but never checked`
	return nil
}
