// Package maporder_ipr_bad is a viplint fixture for the
// interprocedural maporder pass: map order crossing function
// boundaries — through helper returns, helper parameters, struct
// fields, and sinks buried one or two calls deep.
package maporder_ipr_bad

import (
	"fmt"
	"io"
)

// collectKeys returns the map's keys in iteration order: the summary
// marks its result as a map-order source.
func collectKeys(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	return keys
}

// collectKeys2 adds a second helper level above the range.
func collectKeys2(counts map[string]int) []string {
	return collectKeys(counts)
}

// emit persists its slice in order: the summary marks the parameter as
// reaching Fprintln.
func emit(w io.Writer, keys []string) {
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// emit2 buries the sink a second level down.
func emit2(w io.Writer, keys []string) {
	emit(w, keys)
}

// One helper level on each side of the flow.
func oneLevel(w io.Writer, counts map[string]int) {
	keys := collectKeys(counts) // want `keys is ordered by map iteration and reaches Fprintln via emit without an intervening sort`
	emit(w, keys)
}

// Two helper levels on each side.
func twoLevel(w io.Writer, counts map[string]int) {
	keys := collectKeys2(counts) // want `keys is ordered by map iteration and reaches Fprintln via emit2 without an intervening sort`
	emit2(w, keys)
}

// writeOne looks innocuous at the call site; its body persists.
func writeOne(w io.Writer, k string) {
	fmt.Fprint(w, k)
}

// A sink-calling helper invoked inside the map range itself.
func eachInRange(w io.Writer, counts map[string]int) {
	for k := range counts {
		writeOne(w, k) // want `call to writeOne inside iteration over a map reaches Fprint`
	}
}

// tally carries map order between methods through a struct field.
type tally struct {
	rows []string
}

func (t *tally) fill(counts map[string]int) {
	for k := range counts {
		t.rows = append(t.rows, k)
	}
}

func (t *tally) dump(w io.Writer) {
	for _, r := range t.rows {
		fmt.Fprintln(w, r) // want `Fprintln called inside iteration over a map`
	}
}
