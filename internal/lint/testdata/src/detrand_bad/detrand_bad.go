// Package detrand_bad is a viplint fixture: every determinism hazard
// the detrand pass must catch, plus one suppressed occurrence.
//
//viplint:simpackage
package detrand_bad

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now in a simulation package`
}

func wallTiming(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `math/rand global Intn uses the shared process-wide source`
}

func globalFloat() float64 {
	return rand.Float64() // want `math/rand global Float64`
}

func unseededNew(src rand.Source) *rand.Rand {
	return rand.New(src) // want `rand.New without a direct rand.NewSource`
}

// The fleet sender's retry/backoff shape: every wait must advance
// simulated cycles, never block the host.
func wallBackoff(attempt int) {
	time.Sleep(time.Duration(attempt) * time.Second) // want `time.Sleep blocks on the wall clock`
}

func wallDeadline() <-chan time.Time {
	return time.After(time.Second) // want `time.After blocks on the wall clock`
}

func wallTicker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time.NewTicker blocks on the wall clock`
}

func waived() int {
	//viplint:allow detrand fixture: demonstrating an explained waiver
	return rand.Int()
}
