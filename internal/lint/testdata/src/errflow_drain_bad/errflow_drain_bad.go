// Package errflow_drain_bad is a viplint fixture for the shard-merge
// shapes the SMP drain must not regress into: per-CPU flush faults
// dropped or overwritten while the groups are walked. The daemon
// flushes one framed record per CPU group; losing any group's write
// fault silently under-persists exactly one shard — the bug class the
// subset-shard chaos scenario exists to catch.
package errflow_drain_bad

import (
	"viprof/internal/kernel"
)

// flushShard wraps the kernel write for one CPU group: its error
// result carries the fault mask to callers.
func flushShard(k *kernel.Kernel, p *kernel.Process, cpu int, payload []byte) error {
	return k.SysWrite(p, "var/lib/oprofile/samples", payload)
}

// The merge loop discards each group's flush fault outright.
func flushAllDiscarded(k *kernel.Kernel, p *kernel.Process, groups [][]byte) {
	for cpu, g := range groups {
		flushShard(k, p, cpu, g) // want `fault-injected error from flushShard is discarded`
	}
}

// A two-shard merge that keeps only the last group's fault: the
// second flush's rebinding overwrites the first CPU's unread error.
func flushPairLastWins(k *kernel.Kernel, p *kernel.Process, g0, g1 []byte) error {
	err := flushShard(k, p, 0, g0) // want `fault-injected error from flushShard is overwritten before it is checked`
	err = flushShard(k, p, 1, g1)
	return err
}

// A shard worker binds the fault and returns without ever reading it.
func flushShardUnread(k *kernel.Kernel, p *kernel.Process, g []byte) error {
	var err error
	if err != nil {
		return err
	}
	err = flushShard(k, p, 0, g) // want `fault-injected error from flushShard is bound to err but never checked`
	return nil
}
