// Package recordframe_mapwire_bad: code-map records journaled or read
// without the outer frame the store's salvage discipline depends on.
// A map record's body is itself a framed stream (the epoch map file
// bytes), so persisting it without an outer frame means a torn write
// sheds its inner entry records as intact-looking top-level records —
// misparse instead of loud degradation.
package recordframe_mapwire_bad

import (
	"fmt"

	"viprof/internal/kernel"
)

// journalMapRaw journals a map record as header + body with no outer
// frame: unscannable damage.
func journalMapRaw(k *kernel.Kernel, p *kernel.Process, host, epoch int, body []byte) error {
	hdr := fmt.Sprintf("#map host=%d epoch=%d\n", host, epoch)
	return k.SysWrite(p, "var/fleet/shard00.journal", append([]byte(hdr), body...)) // want `unframed SysWrite payload`
}

// compactMapRaw rewrites a generation chunk from raw bodies.
func compactMapRaw(k *kernel.Kernel, p *kernel.Process, bodies [][]byte) error {
	var out []byte
	for _, b := range bodies {
		out = append(out, b...)
	}
	return k.SysWriteSync(p, "var/fleet/gen/g0001-00.samples.tmp", out) // want `unframed SysWriteSync payload`
}

// readGenRaw hands generation bytes straight to a parser: a torn map
// frame's fragments would parse as records instead of counting as
// salvage loss.
func readGenRaw(d *kernel.Disk) int {
	data, err := d.Read("var/fleet/gen/g0001-00.samples") // want `never reach a salvage-aware reader`
	if err != nil {
		return 0
	}
	return len(data)
}
