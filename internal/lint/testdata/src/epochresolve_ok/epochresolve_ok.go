// Package epochresolve_ok is a viplint fixture: attribution through the
// sanctioned MapChain entry points. epoch-resolve must stay silent.
package epochresolve_ok

import (
	"viprof/internal/addr"
	"viprof/internal/core"
)

func attribute(c *core.MapChain, epoch int, pc addr.Address) (core.MapEntry, bool) {
	e, _, ok := c.Resolve(epoch, pc)
	return e, ok
}

func attributeDurable(c *core.MapChain, epoch int, pc addr.Address) (core.MapEntry, bool) {
	e, _, ok := c.ResolveDurable(epoch, pc)
	return e, ok
}
