// Package recordframe_ok: the framed-write and salvaged-read shapes
// the record-frame pass accepts without a waiver.
package recordframe_ok

import (
	"viprof/internal/kernel"
	"viprof/internal/record"
)

func framedWrite(k *kernel.Kernel, p *kernel.Process, payload []byte) error {
	return k.SysWrite(p, "var/lib/x.dat", record.Frame(payload))
}

func framedVarWrite(k *kernel.Kernel, p *kernel.Process, payload []byte) error {
	frame := record.Frame(payload)
	return k.SysWriteSync(p, "var/lib/x.dat", frame)
}

func builderWrite(k *kernel.Kernel, p *kernel.Process, payload []byte) error {
	frames, err := buildFrames(payload)
	if err != nil {
		return err
	}
	return k.SysWrite(p, "var/lib/x.spill", frames)
}

func journalWrite(k *kernel.Kernel, p *kernel.Process) error {
	return k.SysWrite(p, "var/lib/x.journal", journalCommit(7))
}

func buildFrames(payload []byte) ([]byte, error) {
	return record.Frame(payload), nil
}

func journalCommit(seq int) []byte {
	return record.Frame([]byte{byte(seq)})
}

func salvagedRead(d *kernel.Disk) int {
	data, err := d.Read("var/lib/x.dat")
	if err != nil {
		return 0
	}
	recs, _ := record.Scan(data)
	return len(recs)
}

func helperRead(d *kernel.Disk) int {
	data, err := d.Read("var/lib/x.stats")
	if err != nil {
		return 0
	}
	return readStats(data)
}

func readStats(data []byte) int {
	recs, _ := record.Scan(data)
	return len(recs)
}

// The fleet collector's wire shape: journal bytes routed through a
// Decode* helper (itself built on record.Scan) are salvage-aware.
func decodedRead(d *kernel.Disk) int {
	data, err := d.Read("var/fleet/collector.journal")
	if err != nil {
		return 0
	}
	return decodeWire(data)
}

func decodeWire(data []byte) int {
	recs, _ := record.Scan(data)
	return len(recs)
}

func errorOnlyRead(d *kernel.Disk) bool {
	_, err := d.Read("var/lib/x.dat")
	return err == nil
}

// A rename carries no payload; the pass has nothing to say about it.
func renameOnly(k *kernel.Kernel, p *kernel.Process) error {
	return k.SysRename(p, "var/lib/x.tmp", "var/lib/x.dat")
}
