// Package detrand_ipr_bad is a viplint fixture for the
// interprocedural detrand sweep: a simulation package smuggling in
// wall-clock time and global randomness through helpers that live
// outside the simulation scope.
//
//viplint:simpackage
package detrand_ipr_bad

import (
	help "viprof/internal/lint/testdata/src/detrand_ipr_help"
)

func stamp() int64 {
	return help.StampNow() // want `call to StampNow reaches time.Now outside the simulation packages`
}

func jitter() int {
	return help.Jitter() // want `call to Jitter reaches math/rand global Intn outside the simulation packages`
}

func nested() int64 {
	return help.StampNested() // want `call to StampNested reaches time.Now outside the simulation packages`
}

func clean() string {
	return help.Format(42)
}
