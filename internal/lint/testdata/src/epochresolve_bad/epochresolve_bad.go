// Package epochresolve_bad is a viplint fixture: every raw code-map
// access pattern that epoch-resolve must forbid outside internal/core,
// plus a properly waived occurrence.
package epochresolve_bad

import (
	"viprof/internal/addr"
	"viprof/internal/core"
)

func rawScan(c *core.MapChain, epoch int, pc addr.Address) (core.MapEntry, bool) {
	e, _, ok := c.ResolveScan(epoch, pc) // want `MapChain.ResolveScan outside internal/core`
	return e, ok
}

func rawEntries(c *core.MapChain, epoch int) []core.MapEntry {
	return c.Entries(epoch) // want `MapChain.Entries outside internal/core`
}

func directIndex(entries []core.MapEntry, i int) core.MapEntry {
	return entries[i] // want `direct indexing of code-map entries outside internal/core`
}

func handScan(entries []core.MapEntry, pc addr.Address) (core.MapEntry, bool) {
	for _, e := range entries { // want `scanning code-map entries outside internal/core`
		if e.Start <= pc && pc < e.Start+addr.Address(e.Size) {
			return e, true
		}
	}
	return core.MapEntry{}, false
}

func waived(c *core.MapChain, epoch int) int {
	//viplint:allow epoch-resolve fixture: diagnostic dump of the raw chain
	return len(c.Entries(epoch))
}
