// Package detrand_ok is a viplint fixture: the approved determinism
// patterns — injected, explicitly seeded randomness and simulated time
// carried as plain counters. detrand must stay silent here.
//
//viplint:simpackage
package detrand_ok

import "math/rand"

type sim struct {
	rng    *rand.Rand
	cycles uint64
}

func newSim(seed int64) *sim {
	return &sim{rng: rand.New(rand.NewSource(seed))}
}

func (s *sim) step() uint64 {
	s.cycles += uint64(s.rng.Intn(16))
	return s.cycles
}
