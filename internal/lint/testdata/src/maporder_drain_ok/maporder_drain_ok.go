// Package maporder_drain_ok is the clean counterpart to
// maporder_drain_bad: the real per-CPU drain protocol (daemon.go's
// aggregateShards/flush shape). Worker goroutines fold shard samples
// into shard-local maps, the merge is commutative (+= into the shared
// aggregate), and anything that reaches a writer goes through a sort
// first. None of these may be flagged.
package maporder_drain_ok

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

type key struct {
	CPU int
	Off uint64
}

func keyLess(a, b key) bool {
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	return a.CPU < b.CPU
}

// The drain shape the daemon actually uses: goroutine per shard into a
// shard-local map, deterministic ascending-index merge, and a sort
// between the merged map and the writer.
func drainSorted(w io.Writer, shards []map[key]uint64) {
	locals := make([]map[key]uint64, len(shards))
	var wg sync.WaitGroup
	for ci := range shards {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			local := make(map[key]uint64)
			for k, n := range shards[ci] {
				local[k] += n
			}
			locals[ci] = local
		}(ci)
	}
	wg.Wait()
	merged := make(map[key]uint64)
	for _, local := range locals {
		// Merging map ranges into another map is commutative: no order
		// escapes, so no sort is owed here.
		for k, n := range local {
			merged[k] += n
		}
	}
	var keys []key
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	for _, k := range keys {
		fmt.Fprintf(w, "%d %d %d\n", k.CPU, k.Off, merged[k])
	}
}

// A goroutine may collect captured keys in range order as long as the
// parent sorts after the join, before anything persists.
func goroutineCollectedThenSorted(w io.Writer, merged map[key]uint64) {
	var keys []key
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := range merged {
			keys = append(keys, k)
		}
	}()
	wg.Wait()
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })
	fmt.Fprintln(w, keys)
}
