// Package allow_badform is a viplint fixture: malformed suppression
// directives. A waiver must name the pass it waives and say why; each
// directive below is missing one of those and must itself be reported.
package allow_badform

func noPassName() int {
	//viplint:allow
	return 0
}

func noReason() int {
	//viplint:allow detrand
	return 0
}
