// Package recordframe_mapwire_ok: the map-wire shapes the record-frame
// pass accepts — the header + framed-stream body wrapped in one outer
// frame before it is journaled, and store reads routed through the
// salvage scanner before any record is interpreted.
package recordframe_mapwire_ok

import (
	"fmt"

	"viprof/internal/kernel"
	"viprof/internal/record"
)

// mapFrame builds one map wire record: the outer frame's checksum
// covers the header and the verbatim epoch-map body together, so a
// torn journal append fails the outer checksum instead of shedding
// the body's inner records.
func mapFrame(host, epoch int, body []byte) []byte {
	hdr := fmt.Sprintf("#map host=%d epoch=%d\n", host, epoch)
	return record.Frame(append([]byte(hdr), body...))
}

func journalMap(k *kernel.Kernel, p *kernel.Process, host, epoch int, body []byte) error {
	return k.SysWrite(p, "var/fleet/shard00.journal", mapFrame(host, epoch, body))
}

func compactMap(k *kernel.Kernel, p *kernel.Process, host, epoch int, body []byte) error {
	frame := mapFrame(host, epoch, body)
	return k.SysWriteSync(p, "var/fleet/gen/g0001-00.samples.tmp", frame)
}

// readGen routes the generation bytes through the salvage scanner:
// torn records degrade into counted loss, intact ones come back whole.
func readGen(d *kernel.Disk) int {
	data, err := d.Read("var/fleet/gen/g0001-00.samples")
	if err != nil {
		return 0
	}
	recs, _ := record.Scan(data)
	return len(recs)
}
