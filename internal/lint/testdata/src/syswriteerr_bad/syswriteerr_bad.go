// Package syswriteerr_bad is a viplint fixture: every way of
// discarding a kernel write error that syswrite-err must catch, plus a
// properly waived occurrence.
package syswriteerr_bad

import "viprof/internal/kernel"

func bareCall(k *kernel.Kernel, p *kernel.Process, data []byte) {
	k.SysWrite(p, "var/log/out", data) // want `error from Kernel.SysWrite discarded`
}

func blankAssign(k *kernel.Kernel, p *kernel.Process, data []byte) {
	_ = k.SysWriteSync(p, "var/log/out", data) // want `error from Kernel.SysWriteSync discarded`
}

func bareRename(k *kernel.Kernel, p *kernel.Process) {
	k.SysRename(p, "var/tmp/a", "var/lib/a") // want `error from Kernel.SysRename discarded`
}

func inGoroutine(k *kernel.Kernel, p *kernel.Process, data []byte) {
	go k.SysWrite(p, "var/log/out", data) // want `error from Kernel.SysWrite discarded`
}

func deferred(k *kernel.Kernel, p *kernel.Process, data []byte) {
	defer k.SysWrite(p, "var/log/out", data) // want `error from Kernel.SysWrite discarded`
}

func waived(k *kernel.Kernel, p *kernel.Process, data []byte) {
	//viplint:allow syswrite-err fixture: stats absence is the crash signal here
	_ = k.SysWrite(p, "var/lib/x.stats", data)
}
