// Package errflow_compact_ok: the commit discipline the compaction
// pass actually follows — every write and rename fault is read before
// the next step, an abort returns before any prune, and a fault
// charged into an error counter still counts as read.
package errflow_compact_ok

import (
	"viprof/internal/kernel"
)

func writeChunk(k *kernel.Kernel, p *kernel.Process, path string, data []byte) error {
	return k.SysWriteSync(p, path, data)
}

func commitFile(k *kernel.Kernel, p *kernel.Process, tmp, final string) error {
	return k.SysRename(p, tmp, final)
}

// Prune only runs after every chunk and the manifest committed; any
// fault aborts with the old generation and journals untouched.
func compactThenPrune(k *kernel.Kernel, p *kernel.Process, d *kernel.Disk, chunks []string) error {
	for _, path := range chunks {
		if err := writeChunk(k, p, path+".tmp", nil); err != nil {
			return err
		}
		if err := commitFile(k, p, path+".tmp", path); err != nil {
			return err
		}
	}
	if err := commitFile(k, p, "var/fleet/gen/MANIFEST.tmp", "var/fleet/gen/MANIFEST"); err != nil {
		return err
	}
	d.Remove("var/fleet/shard00.journal")
	return nil
}

// A supervising caller that accounts the fault instead of returning
// it: charging an error counter is reading it.
func commitCounted(k *kernel.Kernel, p *kernel.Process, compactErrors *uint64) bool {
	if err := commitFile(k, p, "var/fleet/gen/MANIFEST.tmp", "var/fleet/gen/MANIFEST"); err != nil {
		*compactErrors++
		return false
	}
	return true
}
