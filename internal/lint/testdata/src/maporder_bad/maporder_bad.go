// Package maporder_bad is a viplint fixture: map iteration order
// reaching output sinks, in every shape maporder must catch.
package maporder_bad

import (
	"fmt"
	"io"
)

// Sink lexically inside the map range: each write lands in map order.
func sinkInRange(w io.Writer, counts map[string]int) {
	for k, v := range counts {
		fmt.Fprintf(w, "%s %d\n", k, v) // want `Fprintf called inside iteration over a map`
	}
}

// Slice populated in map order reaches the sink with no sort.
func unsortedKeys(w io.Writer, counts map[string]int) {
	var keys []string
	for k := range counts { // want `keys is ordered by map iteration and reaches Fprintln`
		keys = append(keys, k)
	}
	fmt.Fprintln(w, keys)
}

// Two-hop propagation: the map-ordered slice is transformed into a
// second slice before reaching the sink. Order still leaks.
func laundered(w io.Writer, counts map[string]int) {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	var lines []string
	for _, k := range keys { // want `lines is ordered by map iteration and reaches Fprintln`
		lines = append(lines, k+"\n")
	}
	fmt.Fprintln(w, lines)
}

// Suppressed: the waiver names the pass and gives a reason, placed on
// the line directly above the flagged sink call.
func waived(w io.Writer, counts map[string]int) {
	for k := range counts {
		//viplint:allow maporder fixture: output order irrelevant for this debug dump
		fmt.Fprintln(w, k)
	}
}
