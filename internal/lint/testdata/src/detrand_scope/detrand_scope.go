// Package detrand_scope is a viplint fixture: it uses the wall clock
// and the global rand source but carries no //viplint:simpackage
// directive and is not a simulation package, so detrand must not apply.
package detrand_scope

import (
	"math/rand"
	"time"
)

func benchClock() (time.Time, int) {
	return time.Now(), rand.Int()
}
