// Package maporder_ok is a viplint fixture: the approved pattern —
// collect map keys, sort, then emit. maporder must stay silent here.
package maporder_ok

import (
	"fmt"
	"io"
	"sort"
)

func sortedKeys(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, counts[k])
	}
}

func sortedSlice(w io.Writer, counts map[string]int) {
	type kv struct {
		k string
		v int
	}
	var rows []kv
	for k, v := range counts {
		rows = append(rows, kv{k, v})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	for _, r := range rows {
		fmt.Fprintf(w, "%s %d\n", r.k, r.v)
	}
}

// Ranging a slice into a sink is fine: slices have deterministic order.
func sliceOrder(w io.Writer, rows []string) {
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}
