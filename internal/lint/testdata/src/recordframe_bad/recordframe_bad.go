// Package recordframe_bad: persisted writes whose payload the pass
// cannot see to be framed, and reads whose bytes never reach the
// salvage layer.
package recordframe_bad

import (
	"viprof/internal/kernel"
)

func rawWrite(k *kernel.Kernel, p *kernel.Process, data []byte) error {
	return k.SysWrite(p, "var/lib/x.dat", data) // want `unframed SysWrite payload`
}

func rawSyncWrite(k *kernel.Kernel, p *kernel.Process) error {
	buf := []byte("not a frame")
	return k.SysWriteSync(p, "var/lib/x.dat", buf) // want `unframed SysWriteSync payload`
}

func conversionWrite(k *kernel.Kernel, p *kernel.Process, rec string) error {
	return k.SysWrite(p, "var/lib/x.log", []byte(rec)) // want `unframed SysWrite payload`
}

func unsalvagedRead(d *kernel.Disk) int {
	data, err := d.Read("var/lib/x.dat") // want `never reach a salvage-aware reader`
	if err != nil {
		return 0
	}
	return len(data)
}

func waivedWrite(k *kernel.Kernel, p *kernel.Process, data []byte) error {
	//viplint:allow record-frame guest output stream, not a profiler artifact
	return k.SysWrite(p, "guest.out", data)
}

func waivedRead(d *kernel.Disk) []byte {
	//viplint:allow record-frame size probe only, bytes are never interpreted
	data, _ := d.Read("var/lib/x.dat")
	return data
}
