// Package maporder_drain_bad is a viplint fixture for the shapes the
// SMP per-CPU shard drain must not regress into: worker goroutines
// that capture maps and feed sinks in iteration order. Concurrency
// must hide nothing from the maporder pass — a range inside a `go
// func` literal is as ordered-by-map as one in straight-line code.
package maporder_drain_bad

import (
	"fmt"
	"io"
	"sync"
)

type key struct {
	CPU int
	Off uint64
}

// A drain goroutine captures the merged aggregate map and streams it
// straight to the writer: every flush would persist in map order.
func goroutineCapturedEmit(w io.Writer, merged map[key]uint64) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k, n := range merged {
			fmt.Fprintf(w, "%d %d %d\n", k.CPU, k.Off, n) // want `Fprintf called inside iteration over a map`
		}
	}()
	wg.Wait()
}

// Per-shard workers aggregate locally (fine so far), but the merge
// walks each worker's map and appends flush lines in range order.
func mergeInRangeOrder(w io.Writer, shards []map[key]uint64) {
	locals := make([]map[key]uint64, len(shards))
	var wg sync.WaitGroup
	for ci := range shards {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			local := make(map[key]uint64)
			for k, n := range shards[ci] {
				local[k] += n
			}
			locals[ci] = local
		}(ci)
	}
	wg.Wait()
	var lines []string
	for _, local := range locals {
		for k, n := range local {
			lines = append(lines, fmt.Sprintf("%d %d %d\n", k.CPU, k.Off, n))
		}
	}
	// lines carries map order, so ranging it is iterating the maps.
	for _, l := range lines {
		fmt.Fprint(w, l) // want `Fprint called inside iteration over a map`
	}
}

// KNOWN MISS, pinned deliberately: the worker goroutine collects keys
// in range order into a slice captured from the parent, and the parent
// emits after the join. The pass walks the func literal as its own
// function and does not propagate taint written to captured locals
// back to the enclosing scope, so this escape is invisible today. No
// want comment: if a future summary improvement starts catching it,
// this fixture fails loudly and the want should be added.
func goroutineCollectedKeys(w io.Writer, merged map[key]uint64) {
	var keys []key
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := range merged {
			keys = append(keys, k)
		}
	}()
	wg.Wait()
	fmt.Fprintln(w, keys)
}
