// Package detrand_ipr_help holds wall-clock and global-rand helpers
// that sit OUTSIDE the simulation scope — deliberately no
// //viplint:simpackage directive. The local detrand sweep must ignore
// this package; the interprocedural sweep must carry each root offense
// back to the simulation-package call sites in detrand_ipr_bad.
package detrand_ipr_help

import (
	"fmt"
	"math/rand"
	"time"
)

// StampNow reads the wall clock directly (a one-level offense).
func StampNow() int64 {
	return time.Now().UnixNano()
}

// Jitter uses the process-global math/rand source (one level).
func Jitter() int {
	return rand.Intn(100)
}

// StampNested reaches the wall clock through another helper (two
// levels).
func StampNested() int64 {
	return StampNow()
}

// Format is clean all the way down: calls to it must not be flagged.
func Format(v int64) string {
	return fmt.Sprintf("%d", v)
}
