// Package syswriteerr_ok is a viplint fixture: kernel write errors
// handled properly. syswrite-err must stay silent here.
package syswriteerr_ok

import "viprof/internal/kernel"

func propagated(k *kernel.Kernel, p *kernel.Process, data []byte) error {
	return k.SysWrite(p, "var/log/out", data)
}

func checked(k *kernel.Kernel, p *kernel.Process, data []byte) bool {
	if err := k.SysWriteSync(p, "var/log/out", data); err != nil {
		return false
	}
	return k.SysRename(p, "var/tmp/a", "var/lib/a") == nil
}

func captured(k *kernel.Kernel, p *kernel.Process, data []byte) {
	err := k.SysWrite(p, "var/log/out", data)
	_ = err // assigned to a named variable first; the discard is explicit
}
