// Package suppress_edge exercises the waiver matcher's edges: a
// directive naming the wrong pass, directives around multi-line
// statements, and duplicate directives covering one diagnostic.
//
//viplint:simpackage
package suppress_edge

import "time"

// A waiver naming the wrong pass suppresses nothing.
func wrongPass() time.Time {
	//viplint:allow maporder wrong pass: the diagnostic below is detrand's
	return time.Now() // want `time.Now in a simulation package`
}

// A multi-line statement is covered by a directive above its first
// line — the diagnostic anchors where the statement starts.
func multiLineWaived() time.Time {
	//viplint:allow detrand fixture: the directive covers the statement's first line
	return time.Now().
		Add(time.Second)
}

// ...but a directive after the statement misses: the diagnostic's line
// is the first line of the statement, not the last.
func multiLineTooLate() time.Time {
	t := time.Now(). // want `time.Now in a simulation package`
		Add(time.Second)
	//viplint:allow detrand too late: the diagnostic anchors two lines up
	return t
}

// Two directives both cover one diagnostic (line above + flagged
// line): only the first scanned is credited; the duplicate audits as
// stale.
func duplicated() time.Time {
	//viplint:allow detrand the covering waiver, credited
	return time.Now() //viplint:allow detrand duplicate on the flagged line, never credited
}
