// Package errflow_ok: every fault-injected error reaches a read —
// checked branches, wrapping reassignments, loop-head checks, and
// closure captures must all stay silent.
package errflow_ok

import (
	"fmt"

	"viprof/internal/kernel"
)

func readSpill(d *kernel.Disk, path string) ([]byte, error) {
	return d.Read(path)
}

// The plain checked shape.
func checked(d *kernel.Disk) []byte {
	data, err := readSpill(d, "spill")
	if err != nil {
		return nil
	}
	return data
}

func annotate(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("spill: %v", err)
}

// err = annotate(err) evaluates the right-hand side first: a use, not
// a shadow — the fault is wrapped, not lost.
func wrapped(d *kernel.Disk) error {
	_, err := readSpill(d, "spill")
	err = annotate(err)
	return err
}

// Retry loop: the binding's next read is at the top of the next
// iteration, before the statement that rebinds it.
func pollUntilFault(d *kernel.Disk) error {
	var err error
	for {
		if err != nil {
			return err
		}
		_, err = readSpill(d, "spill")
	}
}

// Captured by a closure: the read happens after this function returns,
// where the linear chain cannot see it.
func deferredCheck(d *kernel.Disk) func() error {
	var err error
	_, err = readSpill(d, "spill")
	return func() error { return err }
}
