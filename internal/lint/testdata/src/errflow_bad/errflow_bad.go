// Package errflow_bad is a viplint fixture: fault-injected errors
// dropped, shadowed, or left unread — directly and through one or two
// helper levels — plus one suppressed occurrence.
package errflow_bad

import (
	"viprof/internal/kernel"
)

// readSpill's error derives from Disk.Read: the summary carries the
// fault mask to callers.
func readSpill(d *kernel.Disk, path string) ([]byte, error) {
	return d.Read(path)
}

// readSpill2: the fault mask survives a second helper level.
func readSpill2(d *kernel.Disk, path string) ([]byte, error) {
	return readSpill(d, path)
}

// persist wraps a kernel write: its error result is fault-carrying.
func persist(k *kernel.Kernel, p *kernel.Process, data []byte) error {
	return k.SysWrite(p, "out", data)
}

// A bare helper call discards every result, the fault included.
func discarded(d *kernel.Disk) {
	readSpill(d, "spill") // want `fault-injected error from readSpill is discarded`
}

// Blank-binding the error of a two-level helper.
func blankBound(d *kernel.Disk) int {
	data, _ := readSpill2(d, "spill") // want `fault-injected error from readSpill2 is discarded`
	return len(data)
}

// A dropped write fault one level up from the kernel.
func droppedWrite(k *kernel.Kernel, p *kernel.Process) {
	persist(k, p, nil) // want `fault-injected error from persist is discarded`
}

// The classic merge: the second binding overwrites the first fault
// before anything reads it.
func shadowed(d *kernel.Disk) error {
	_, err := readSpill(d, "first") // want `fault-injected error from readSpill is overwritten before it is checked`
	_, err = readSpill(d, "second")
	return err
}

// Bound but never read afterwards: the fault dies in err.
func unread(d *kernel.Disk) error {
	var err error
	if err != nil {
		return err
	}
	_, err = readSpill(d, "spill") // want `fault-injected error from readSpill is bound to err but never checked`
	return nil
}

// A reviewed waiver suppresses — the raw diagnostic must still exist
// for the suppression test to prove the machinery works.
func waived(d *kernel.Disk) {
	//viplint:allow errflow fixture: demonstrating an explained waiver
	readSpill(d, "spill")
}
