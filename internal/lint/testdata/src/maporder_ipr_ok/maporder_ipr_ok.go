// Package maporder_ipr_ok is the clean counterpart to
// maporder_ipr_bad: the same cross-function shapes with a sort placed
// somewhere on the path — none of these may be flagged.
package maporder_ipr_ok

import (
	"fmt"
	"io"
	"sort"
)

func collectKeys(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	return keys
}

func emit(w io.Writer, keys []string) {
	for _, k := range keys {
		fmt.Fprintln(w, k)
	}
}

// The sort sits between the collecting helper and the emitting helper.
func sortedBetween(w io.Writer, counts map[string]int) {
	keys := collectKeys(counts)
	sort.Strings(keys)
	emit(w, keys)
}

// collectSorted discharges the order inside the helper: its result is
// not a source, so callers owe nothing.
func collectSorted(counts map[string]int) []string {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func viaSortedHelper(w io.Writer, counts map[string]int) {
	emit(w, collectSorted(counts))
}

// tally populates a field in map order but sorts it before the method
// returns — the idiomatic populate-then-sort shape must stay clean.
type tally struct {
	rows []string
}

func (t *tally) fillSorted(counts map[string]int) {
	for k := range counts {
		t.rows = append(t.rows, k)
	}
	sort.Strings(t.rows)
}

func (t *tally) dump(w io.Writer) {
	for _, r := range t.rows {
		fmt.Fprintln(w, r)
	}
}
