// Package recordframe_ipr_ok is the clean counterpart to
// recordframe_ipr_bad: every obligation discharged somewhere on the
// path — in the helper, at the caller, or through the salvage layer.
package recordframe_ipr_ok

import (
	"bytes"
	"io"

	"viprof/internal/kernel"
	"viprof/internal/record"
)

// frameAndWrite discharges the framing obligation inside the helper.
func frameAndWrite(k *kernel.Kernel, p *kernel.Process, path string, data []byte) error {
	return k.SysWrite(p, path, record.Frame(data))
}

// writeBlob transfers the obligation — and every caller here meets it.
func writeBlob(k *kernel.Kernel, p *kernel.Process, path string, data []byte) error {
	return k.SysWrite(p, path, data)
}

func framedAtCaller(k *kernel.Kernel, p *kernel.Process, rec string) error {
	return writeBlob(k, p, "spill", record.Frame([]byte(rec)))
}

// frames is frame-producing by result type: every return path wraps
// the bytes in record.Frame.
func frames(rec string) []byte {
	return record.Frame([]byte(rec))
}

func viaFramedHelper(k *kernel.Kernel, p *kernel.Process, rec string) error {
	return k.SysWrite(p, "spill", frames(rec))
}

// readSalvaged routes the raw bytes through record.Scan before
// returning anything: salvage-aware, callers owe nothing.
func readSalvaged(d *kernel.Disk, path string) ([][]byte, int) {
	data, err := d.Read(path)
	if err != nil {
		return nil, 0
	}
	recs, sal := record.Scan(data)
	return recs, sal.DroppedRecords
}

func cleanRead(d *kernel.Disk) int {
	recs, _ := readSalvaged(d, "spill")
	return len(recs)
}

// parse earns the salvage fact for its reader parameter: the bytes
// read from r flow into record.Scan.
func parse(r io.Reader) int {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0
	}
	recs, _ := record.Scan(data)
	return len(recs)
}

func readViaReader(d *kernel.Disk) int {
	data, err := d.Read("spill")
	if err != nil {
		return 0
	}
	return parse(bytes.NewReader(data))
}
