// Package errflow_drain_ok is the clean counterpart to
// errflow_drain_bad: the per-CPU flush protocol the daemon actually
// uses. Each group's fault is read before the next group is written —
// the first failure stops the walk, so a committed group is never
// retried and a failed one is never silently skipped.
package errflow_drain_ok

import (
	"errors"

	"viprof/internal/kernel"
)

func flushShard(k *kernel.Kernel, p *kernel.Process, cpu int, payload []byte) error {
	return k.SysWrite(p, "var/lib/oprofile/samples", payload)
}

// The daemon's shape: check per group, stop on the first fault with
// the surviving groups reported to the caller for respill.
func flushGroups(k *kernel.Kernel, p *kernel.Process, groups [][]byte) (flushed int, err error) {
	for cpu, g := range groups {
		if err := flushShard(k, p, cpu, g); err != nil {
			return flushed, err
		}
		flushed++
	}
	return flushed, nil
}

// Collecting every shard's fault with errors.Join reads each binding:
// nothing is lost even when the walk continues past a failure.
func flushGroupsJoined(k *kernel.Kernel, p *kernel.Process, groups [][]byte) error {
	var errs []error
	for cpu, g := range groups {
		if err := flushShard(k, p, cpu, g); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
