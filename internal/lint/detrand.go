package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"viprof/internal/lint/analysis"
)

// DetRand enforces the simulation's determinism contract: inside the
// simulation packages, time comes only from the simulated clock and
// randomness only from injected seeded *rand.Rand values (the pattern
// kernel/fault.go and harness/chaos.go establish). Wall-clock reads
// (time.Now, time.Since) and the process-global math/rand source would
// make "same seed, same bytes" — the property the batched-engine and
// chaos tests prove — unfalsifiable.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and unseeded/global math/rand in simulation packages; " +
		"randomness must flow from an injected seeded *rand.Rand",
	Run: runDetRand,
}

// simPackages are the simulation packages detrand audits (plus any
// package carrying a //viplint:simpackage directive — how fixtures and
// future packages opt in).
var simPackages = []string{
	"kernel", "cpu", "cache", "hpc", "jvm", "core", "oprofile", "image", "addr",
	"fleet",
}

func isSimPackage(path string) bool {
	for _, p := range simPackages {
		full := "viprof/internal/" + p
		if path == full || strings.HasPrefix(path, full+"/") {
			return true
		}
	}
	return false
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// wallWaits are the time-package blocking/deferred primitives: inside a
// simulation package every wait (a sender's retry backoff, a
// collector's wake period) must be expressed in machine cycles so the
// fleet chaos sweeps replay bit-identically from a seed.
var wallWaits = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

func runDetRand(pass *analysis.Pass) (interface{}, error) {
	if !isSimPackage(pass.Pkg.Path()) && !hasFileDirective(pass, "viplint:simpackage") {
		return nil, nil
	}
	// First sweep: rand.New calls whose source is a direct
	// rand.NewSource(...) — the one approved construction.
	approvedNew := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := importedRef(pass.TypesInfo, sel); !ok || !isRandPkg(pkg) || name != "New" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			isel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := importedRef(pass.TypesInfo, isel); ok && isRandPkg(pkg) && name == "NewSource" {
				approvedNew[sel] = true
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := importedRef(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			switch {
			case pkg == "time" && name == "Now":
				pass.Reportf(sel.Pos(), "time.Now in a simulation package: simulated time must come from the machine clock, not the wall clock")
			case pkg == "time" && name == "Since":
				pass.Reportf(sel.Pos(), "time.Since reads the wall clock; simulation timing must use simulated cycles")
			case pkg == "time" && wallWaits[name]:
				// Retry/backoff waits must advance simulated cycles
				// (Kern.Sleep, AdvanceIdle), never block the host.
				pass.Reportf(sel.Pos(), "time.%s blocks on the wall clock; simulated waits (retry backoff, timeouts) must advance machine cycles instead", name)
			case isRandPkg(pkg):
				fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !isFn {
					return true // rand.Rand / rand.Source as types are fine
				}
				switch fn.Name() {
				case "NewSource", "NewZipf":
					// Constructors feeding an injected generator.
				case "New":
					if !approvedNew[sel] {
						pass.Reportf(sel.Pos(), "rand.New without a direct rand.NewSource(seed) argument: simulation randomness must flow from an explicitly seeded source")
					}
				default:
					pass.Reportf(sel.Pos(), "math/rand global %s uses the shared process-wide source; use an injected seeded *rand.Rand", fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
