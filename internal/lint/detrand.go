package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"viprof/internal/lint/analysis"
	"viprof/internal/lint/ir"
)

// DetRand enforces the simulation's determinism contract: inside the
// simulation packages, time comes only from the simulated clock and
// randomness only from injected seeded *rand.Rand values (the pattern
// kernel/fault.go and harness/chaos.go establish). Wall-clock reads
// (time.Now, time.Since) and the process-global math/rand source would
// make "same seed, same bytes" — the property the batched-engine and
// chaos tests prove — unfalsifiable.
var DetRand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock time and unseeded/global math/rand in simulation packages, " +
		"including transitively through helpers outside the simulation scope; " +
		"randomness must flow from an injected seeded *rand.Rand",
	Run: runDetRand,
}

// simPackages are the simulation packages detrand audits (plus any
// package carrying a //viplint:simpackage directive — how fixtures and
// future packages opt in).
var simPackages = []string{
	"kernel", "cpu", "cache", "hpc", "jvm", "core", "oprofile", "image", "addr",
	"fleet",
}

func isSimPackage(path string) bool {
	// External test packages (foo_test) are checked under the import
	// path "<path>_test"; they live in the same determinism scope.
	path = strings.TrimSuffix(path, "_test")
	for _, p := range simPackages {
		full := "viprof/internal/" + p
		if path == full || strings.HasPrefix(path, full+"/") {
			return true
		}
	}
	return false
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// wallWaits are the time-package blocking/deferred primitives: inside a
// simulation package every wait (a sender's retry backoff, a
// collector's wake period) must be expressed in machine cycles so the
// fleet chaos sweeps replay bit-identically from a seed.
var wallWaits = map[string]bool{
	"Sleep": true, "After": true, "AfterFunc": true,
	"Tick": true, "NewTicker": true, "NewTimer": true,
}

func runDetRand(pass *analysis.Pass) (interface{}, error) {
	if !isSimPackage(pass.Pkg.Path()) && !hasFileDirective(pass, "viplint:simpackage") {
		return nil, nil
	}
	// First sweep: rand.New calls whose source is a direct
	// rand.NewSource(...) — the one approved construction.
	approvedNew := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := importedRef(pass.TypesInfo, sel); !ok || !isRandPkg(pkg) || name != "New" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			isel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, name, ok := importedRef(pass.TypesInfo, isel); ok && isRandPkg(pkg) && name == "NewSource" {
				approvedNew[sel] = true
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, name, ok := importedRef(pass.TypesInfo, sel)
			if !ok {
				return true
			}
			switch {
			case pkg == "time" && name == "Now":
				pass.Reportf(sel.Pos(), "time.Now in a simulation package: simulated time must come from the machine clock, not the wall clock")
			case pkg == "time" && name == "Since":
				pass.Reportf(sel.Pos(), "time.Since reads the wall clock; simulation timing must use simulated cycles")
			case pkg == "time" && wallWaits[name]:
				// Retry/backoff waits must advance simulated cycles
				// (Kern.Sleep, AdvanceIdle), never block the host.
				pass.Reportf(sel.Pos(), "time.%s blocks on the wall clock; simulated waits (retry backoff, timeouts) must advance machine cycles instead", name)
			case isRandPkg(pkg):
				fn, isFn := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !isFn {
					return true // rand.Rand / rand.Source as types are fine
				}
				switch fn.Name() {
				case "NewSource", "NewZipf":
					// Constructors feeding an injected generator.
				case "New":
					if !approvedNew[sel] {
						pass.Reportf(sel.Pos(), "rand.New without a direct rand.NewSource(seed) argument: simulation randomness must flow from an explicitly seeded source")
					}
				default:
					pass.Reportf(sel.Pos(), "math/rand global %s uses the shared process-wide source; use an injected seeded *rand.Rand", fn.Name())
				}
			}
			return true
		})
	}
	// Interprocedural sweep: a sim-package call into a helper outside
	// the simulation scope that (transitively) reads the wall clock or
	// the global math/rand source smuggles nondeterminism in just as
	// surely as a local call. Summaries over the IR call graph carry
	// the root offense back to the boundary call site.
	if pass.IR != nil {
		sums := drSummariesOf(pass.IR)
		for _, f := range pass.IR.FuncsOf(pass.Pkg) {
			for _, cs := range f.Calls {
				if cs.Callee == nil {
					continue
				}
				gf, ok := pass.IR.ByObj[cs.Callee]
				if !ok || isSimPackage(gf.Pkg.Types.Path()) {
					continue // sim-package callees are reported at their own offense
				}
				if offense := sums[gf]; offense != "" {
					pass.Reportf(cs.Call.Pos(), "call to %s reaches %s outside the simulation packages: simulated time and randomness must be injected, not read from the host", cs.Callee.Name(), offense)
				}
			}
		}
	}
	return nil, nil
}

// drSummariesOf computes, per function, the root determinism offense
// its body (or a non-sim module callee's body, transitively) commits:
// "" when clean, otherwise e.g. "time.Now" or "math/rand global Intn".
func drSummariesOf(prog *ir.Program) map[*ir.Func]string {
	return prog.Memo("detrand", func() any {
		sums := make(map[*ir.Func]string)
		prog.Fixpoint(func(f *ir.Func) bool {
			if sums[f] != "" {
				return false
			}
			if off := drLocalOffense(f); off != "" {
				sums[f] = off
				return true
			}
			for _, cs := range f.Calls {
				if cs.Callee == nil {
					continue
				}
				gf, ok := prog.ByObj[cs.Callee]
				if !ok || isSimPackage(gf.Pkg.Types.Path()) {
					continue
				}
				if off := sums[gf]; off != "" {
					sums[f] = off
					return true
				}
			}
			return false
		})
		return sums
	}).(map[*ir.Func]string)
}

// drLocalOffense scans one body for a direct determinism offense and
// names it (the same patterns the local sweep reports, minus the
// approved rand.New(rand.NewSource(...)) construction).
func drLocalOffense(f *ir.Func) string {
	info := f.Pkg.Info
	offense := ""
	ast.Inspect(f.Body, func(n ast.Node) bool {
		if offense != "" {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // literals are their own Funcs
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, name, ok := importedRef(info, sel)
		if !ok {
			return true
		}
		switch {
		case pkg == "time" && (name == "Now" || name == "Since" || wallWaits[name]):
			offense = "time." + name
		case isRandPkg(pkg):
			fn, isFn := info.Uses[sel.Sel].(*types.Func)
			if !isFn {
				return true
			}
			switch fn.Name() {
			case "NewSource", "NewZipf":
			case "New":
				if !drApprovedNew(info, f.Body, sel) {
					offense = "rand.New without a seeded source"
				}
			default:
				offense = "math/rand global " + fn.Name()
			}
		}
		return true
	})
	return offense
}

// drApprovedNew reports whether the rand.New selected by sel is called
// with a direct rand.NewSource(...) argument somewhere in body.
func drApprovedNew(info *types.Info, body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	approved := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || ast.Unparen(call.Fun) != sel || len(call.Args) != 1 {
			return true
		}
		inner, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		isel, ok := ast.Unparen(inner.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := importedRef(info, isel); ok && isRandPkg(pkg) && name == "NewSource" {
			approved = true
			return false
		}
		return true
	})
	return approved
}
