package workload

import "fmt"

// The benchmark suite of §4.1: "three groups of benchmarks: Spec JVM98,
// Dacapo, and Spec Pseudo JBB ... We use an input of 100 for JVM98
// benchmarks and large for Dacapo benchmarks. We use 3 warehouses with
// 100K transactions for pseudo JBB."
//
// OuterIters values are calibrated so that base (unprofiled) running
// times at Scale 1.0 match the paper's Figure 3 on the simulated
// 3.4 MHz clock. Character parameters (classes, locality, allocation)
// are set from each benchmark's published behaviour: antlr
// compiles many small classes in a short run, hsqldb is heap- and
// miss-heavy, xalan is the long runner, pseudoJBB models 3 warehouses.
//
// Figure 3 of the paper is partly garbled in the archived text (the
// xalan row and the 32.9 s "average" cannot be reconciled with the
// listed values); we adopt xalan = 97.6 s and ps = 22.2 s and record
// the discrepancy in EXPERIMENTS.md.

// Suite returns the full benchmark list in the paper's Figure 2/3
// order.
func Suite() []Spec {
	return []Spec{
		PseudoJBB(), JVM98(),
		Benchmark("antlr"), Benchmark("bloat"), Benchmark("fop"),
		Benchmark("hsqldb"), Benchmark("pmd"), Benchmark("xalan"),
		Benchmark("ps"),
	}
}

// Names returns the suite's benchmark names in order.
func Names() []string {
	specs := Suite()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns the spec with the given name, searching the Figure 2/3
// suite first and then the individual JVM98 members.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	if s, ok := memberByName(name); ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q (have %v and JVM98 members)", name, Names())
}

// PseudoJBB models SPEC pseudoJBB: 3 warehouses (one hot worker per
// warehouse) servicing transactions, fixed transaction count.
func PseudoJBB() Spec {
	return Spec{
		Name: "pseudojbb", Suite: "specjbb", MainClass: "spec.jbb.JBBmain",
		BaseSeconds: 31.0,
		Classes:     30, ColdPerHot: 5,
		HotMethods: 3, OuterIters: 203, InnerIters: 1500,
		ArrayLen: 2048, AllocEvery: 3, SurviveRing: 512,
		MemsetBytes: 2048, WriteEvery: 4,
		HeapBytes: 6 << 20, Seed: 42,
		Threaded: true, // one VM thread per warehouse
	}
}

// JVM98 is the SpecJVM98 suite, modelled as one composite program whose
// base time matches the suite average the paper reports (5.74 s).
func JVM98() Spec {
	return Spec{
		Name: "JVM98", Suite: "jvm98", MainClass: "spec.jvm98.Composite",
		BaseSeconds: 5.74,
		Classes:     25, ColdPerHot: 4,
		HotMethods: 4, OuterIters: 30, InnerIters: 1200,
		ArrayLen: 1024, AllocEvery: 3, SurviveRing: 256,
		MemsetBytes: 1024, WriteEvery: 8,
		HeapBytes: 2 << 20, Seed: 98,
	}
}

// Benchmark returns a DaCapo benchmark spec by name.
func Benchmark(name string) Spec {
	base := Spec{
		Suite: "dacapo", ColdPerHot: 5, AllocEvery: 8, SurviveRing: 384,
		MemsetBytes: 1024, WriteEvery: 8, Seed: 7,
	}
	switch name {
	case "antlr":
		// Parser generator: many classes compiled in a short run — the
		// paper's worst case for map-write amortization (>10% slowdown).
		s := base
		s.Name, s.MainClass = "antlr", "org.antlr.Tool"
		s.BaseSeconds = 8.7
		s.Classes, s.ColdPerHot = 90, 8
		s.HotMethods, s.OuterIters, s.InnerIters = 4, 40, 900
		s.ArrayLen, s.AllocEvery = 1024, 2
		s.HeapBytes = 1 << 20 // small heap: frequent GCs, many epochs
		return s
	case "bloat":
		// Bytecode optimizer: long, allocation-heavy analysis.
		s := base
		s.Name, s.MainClass = "bloat", "EDU.purdue.cs.bloat.Main"
		s.BaseSeconds = 28.5
		s.Classes = 45
		s.HotMethods, s.OuterIters, s.InnerIters = 3, 149, 1500
		s.ArrayLen, s.AllocEvery = 4096, 3
		s.HeapBytes = 2 << 20
		return s
	case "fop":
		// Print formatter: the shortest benchmark.
		s := base
		s.Name, s.MainClass = "fop", "org.apache.fop.apps.Fop"
		s.BaseSeconds = 3.2
		s.Classes = 35
		s.HotMethods, s.OuterIters, s.InnerIters = 2, 49, 1000
		s.ArrayLen = 1024
		s.HeapBytes = 2 << 20
		return s
	case "hsqldb":
		// In-memory database: the big, cache-hostile heap.
		s := base
		s.Name, s.MainClass = "hsqldb", "org.hsqldb.hsqldbDoTest"
		s.BaseSeconds = 43.0
		s.Classes = 30
		s.HotMethods, s.OuterIters, s.InnerIters = 3, 150, 1600
		s.ArrayLen, s.AllocEvery = 32768, 3 // 256 KiB working set per worker
		s.SurviveRing = 1024
		s.HeapBytes = 10 << 20
		return s
	case "pmd":
		// Source analyzer: many classes, medium run.
		s := base
		s.Name, s.MainClass = "pmd", "net.sourceforge.pmd.PMD"
		s.BaseSeconds = 16.3
		s.Classes, s.ColdPerHot = 60, 6
		s.HotMethods, s.OuterIters, s.InnerIters = 3, 133, 1300
		s.ArrayLen = 2048
		s.HeapBytes = 3 << 20
		return s
	case "xalan":
		// XSLT processor: the long runner.
		s := base
		s.Name, s.MainClass = "xalan", "org.apache.xalan.xslt.Process"
		s.BaseSeconds = 97.6
		s.Classes = 40
		s.HotMethods, s.OuterIters, s.InnerIters = 3, 763, 1500
		s.ArrayLen = 2048
		s.HeapBytes = 5 << 20
		return s
	case "ps":
		// PostScript interpreter: Figure 1's case-study benchmark.
		s := base
		s.Name, s.MainClass = "ps", "edu.unm.cs.oal.dacapo.javapostscript"
		s.HotClasses = []string{"edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner"}
		s.HotName = "parseLine"
		s.BaseSeconds = 22.2
		s.Classes = 35
		s.HotMethods, s.OuterIters, s.InnerIters = 3, 134, 1400
		s.ArrayLen, s.AllocEvery = 3072, 3
		s.HeapBytes = 4 << 20
		return s
	default:
		s := base
		s.Name = name
		return s
	}
}
