package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"viprof/internal/jvm/bytecode"
)

func TestSuiteComplete(t *testing.T) {
	specs := Suite()
	if len(specs) != 9 {
		t.Fatalf("suite has %d benchmarks, want 9", len(specs))
	}
	want := []string{"pseudojbb", "JVM98", "antlr", "bloat", "fop", "hsqldb", "pmd", "xalan", "ps"}
	for i, w := range want {
		if specs[i].Name != w {
			t.Errorf("suite[%d] = %s, want %s", i, specs[i].Name, w)
		}
	}
	names := Names()
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names()[%d] = %s", i, names[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("hsqldb")
	if err != nil || s.Name != "hsqldb" {
		t.Fatalf("ByName: %v %v", s.Name, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSpecsValidateAndBuild(t *testing.T) {
	for _, s := range Suite() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		prog, err := Build(s, 0.01)
		if err != nil {
			t.Errorf("%s: Build: %v", s.Name, err)
			continue
		}
		if err := prog.Verify(); err != nil {
			t.Errorf("%s: generated program invalid: %v", s.Name, err)
		}
		if len(prog.Methods) < s.HotMethods+s.Classes*s.ColdPerHot {
			t.Errorf("%s: only %d methods", s.Name, len(prog.Methods))
		}
	}
}

func TestBaseSecondsMatchFigure3(t *testing.T) {
	// The calibration targets are the paper's Figure 3 values.
	want := map[string]float64{
		"pseudojbb": 31.0, "JVM98": 5.74, "antlr": 8.7, "bloat": 28.5,
		"fop": 3.2, "hsqldb": 43.0, "pmd": 16.3, "xalan": 97.6, "ps": 22.2,
	}
	for _, s := range Suite() {
		if s.BaseSeconds != want[s.Name] {
			t.Errorf("%s: BaseSeconds %v, want %v", s.Name, s.BaseSeconds, want[s.Name])
		}
	}
}

func TestScaleAdjustsOuterLoop(t *testing.T) {
	s := Benchmark("fop")
	full, _ := Build(s, 1.0)
	tiny, _ := Build(s, 0.0001) // clamps to >= 1 iteration
	if tiny == nil || full == nil {
		t.Fatal("builds failed")
	}
	// The main method embeds the outer bound as a constant; at minimum
	// scale it must still verify and be runnable.
	if err := tiny.Verify(); err != nil {
		t.Errorf("tiny program invalid: %v", err)
	}
}

func TestPSUsesPaperSymbolName(t *testing.T) {
	prog, err := Build(Benchmark("ps"), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range prog.Methods {
		if m.Signature() == "edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine" {
			found = true
		}
	}
	if !found {
		t.Error("ps does not define Figure 1's Scanner.parseLine symbol")
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x", HotMethods: 1, OuterIters: 1, InnerIters: 1, ArrayLen: 0,
			AllocEvery: 1, SurviveRing: 1, HeapBytes: 1 << 20},
		{Name: "x", HotMethods: 1, OuterIters: 1, InnerIters: 1, ArrayLen: 8,
			AllocEvery: 1, SurviveRing: 1, HeapBytes: 1024},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

// Property: generation is deterministic — same spec and scale produce
// identical bytecode.
func TestBuildDeterministicQuick(t *testing.T) {
	f := func(pick uint8) bool {
		names := Names()
		s, err := ByName(names[int(pick)%len(names)])
		if err != nil {
			return false
		}
		a, err1 := Build(s, 0.02)
		b, err2 := Build(s, 0.02)
		if err1 != nil || err2 != nil || len(a.Methods) != len(b.Methods) {
			return false
		}
		for i := range a.Methods {
			if a.Methods[i].Signature() != b.Methods[i].Signature() {
				return false
			}
			if len(a.Methods[i].Code) != len(b.Methods[i].Code) {
				return false
			}
			for j := range a.Methods[i].Code {
				if a.Methods[i].Code[j] != b.Methods[i].Code[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestHotMethodsContainMemoryTraffic(t *testing.T) {
	prog, _ := Build(Benchmark("hsqldb"), 0.01)
	var hot *struct{ loads, stores, allocs int }
	for _, m := range prog.Methods {
		if !strings.HasSuffix(m.Name, "run") || m.NArgs != 1 {
			continue
		}
		counts := struct{ loads, stores, allocs int }{}
		for _, in := range m.Code {
			switch in.Op {
			case bytecode.ALoad:
				counts.loads++
			case bytecode.AStore:
				counts.stores++
			case bytecode.New, bytecode.NewArray:
				counts.allocs++
			}
		}
		hot = &counts
		if counts.loads == 0 || counts.stores == 0 || counts.allocs == 0 {
			t.Errorf("%s: loads=%d stores=%d allocs=%d", m.Signature(),
				counts.loads, counts.stores, counts.allocs)
		}
	}
	if hot == nil {
		t.Fatal("no hot methods found")
	}
}

func TestJVM98Members(t *testing.T) {
	members := JVM98Members()
	if len(members) != 7 {
		t.Fatalf("%d members, want 7", len(members))
	}
	var sum float64
	for _, s := range members {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		prog, err := Build(s, 0.05)
		if err != nil {
			t.Errorf("%s: %v", s.Name, err)
			continue
		}
		if err := prog.Verify(); err != nil {
			t.Errorf("%s: invalid program: %v", s.Name, err)
		}
		sum += s.BaseSeconds
	}
	avg := sum / 7
	if avg < 5.70 || avg > 5.78 {
		t.Errorf("member average %.3f s, want ~5.74 (the paper's JVM98 figure)", avg)
	}
	// Members are reachable through ByName but not in the Figure 2/3
	// suite.
	if _, err := ByName("compress"); err != nil {
		t.Errorf("ByName(compress): %v", err)
	}
	for _, n := range Names() {
		if n == "compress" {
			t.Error("member leaked into the figure suite")
		}
	}
	// Character checks: compress allocates rarest, jess/mtrt most often.
	c := JVM98Member("compress")
	for _, hot := range []string{"jess", "mtrt"} {
		h := JVM98Member(hot)
		if h.AllocEvery >= c.AllocEvery {
			t.Errorf("%s AllocEvery %d not more frequent than compress %d",
				hot, h.AllocEvery, c.AllocEvery)
		}
	}
}
