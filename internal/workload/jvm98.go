package workload

import "fmt"

// The individual SpecJVM98 members. The paper reports JVM98 as a suite
// average (5.74 s base time, Figure 3); the composite JVM98 spec in
// suite.go reproduces that aggregate. For finer-grained work these
// specs model the seven members individually, with characteristics
// from the suite's published behaviour: _201_compress is a tight
// array-compression loop with little allocation, _202_jess and
// _227_mtrt allocate heavily, _209_db thrashes a large working set,
// _213_javac loads and compiles many classes, _222_mpegaudio is pure
// computation, _228_jack is parser-generator churn. Base times are
// chosen so the member average equals the paper's 5.74 s.

// JVM98Members returns the seven member benchmarks.
func JVM98Members() []Spec {
	return []Spec{
		JVM98Member("compress"),
		JVM98Member("jess"),
		JVM98Member("db"),
		JVM98Member("javac"),
		JVM98Member("mpegaudio"),
		JVM98Member("mtrt"),
		JVM98Member("jack"),
	}
}

// JVM98Member returns one member's spec by short name (e.g. "compress"
// for _201_compress).
func JVM98Member(name string) Spec {
	base := Spec{
		Suite: "jvm98", ColdPerHot: 4, AllocEvery: 6, SurviveRing: 256,
		MemsetBytes: 1024, WriteEvery: 10, Seed: 201,
	}
	switch name {
	case "compress":
		// Modified Lempel-Ziv over large buffers: compute-bound, big
		// arrays, almost no allocation.
		s := base
		s.Name, s.MainClass = "compress", "spec.benchmarks._201_compress.Main"
		s.BaseSeconds = 7.6
		s.Classes = 12
		s.HotMethods, s.OuterIters, s.InnerIters = 2, 52, 2200
		s.ArrayLen, s.AllocEvery = 16384, 40
		s.HeapBytes = 3 << 20
		return s
	case "jess":
		// Expert system shell: rule firings allocate constantly.
		s := base
		s.Name, s.MainClass = "jess", "spec.benchmarks._202_jess.Main"
		s.BaseSeconds = 4.0
		s.Classes = 40
		s.HotMethods, s.OuterIters, s.InnerIters = 3, 24, 1100
		s.ArrayLen, s.AllocEvery = 512, 2
		s.HeapBytes = 2 << 20
		return s
	case "db":
		// In-memory database operations over a large resident set.
		s := base
		s.Name, s.MainClass = "db", "spec.benchmarks._209_db.Main"
		s.BaseSeconds = 9.7
		s.Classes = 10
		s.HotMethods, s.OuterIters, s.InnerIters = 2, 63, 1800
		s.ArrayLen, s.AllocEvery = 24576, 5
		s.SurviveRing = 768
		s.HeapBytes = 8 << 20
		return s
	case "javac":
		// The JDK compiler: many classes, allocation-heavy phases.
		s := base
		s.Name, s.MainClass = "javac", "spec.benchmarks._213_javac.Main"
		s.BaseSeconds = 7.1
		s.Classes, s.ColdPerHot = 70, 6
		s.HotMethods, s.OuterIters, s.InnerIters = 3, 50, 1200
		s.ArrayLen, s.AllocEvery = 1024, 3
		s.HeapBytes = 3 << 20
		return s
	case "mpegaudio":
		// MP3 decoding: pure computation, tiny working set.
		s := base
		s.Name, s.MainClass = "mpegaudio", "spec.benchmarks._222_mpegaudio.Main"
		s.BaseSeconds = 5.8
		s.Classes = 15
		s.HotMethods, s.OuterIters, s.InnerIters = 2, 70, 2000
		s.ArrayLen, s.AllocEvery = 256, 60
		s.HeapBytes = 2 << 20
		return s
	case "mtrt":
		// Multithreaded raytracer: scene-object allocation churn.
		s := base
		s.Name, s.MainClass = "mtrt", "spec.benchmarks._227_mtrt.Main"
		s.Threaded = true // the multithreaded raytracer
		s.BaseSeconds = 3.6
		s.Classes = 25
		s.HotMethods, s.OuterIters, s.InnerIters = 4, 18, 900
		s.ArrayLen, s.AllocEvery = 1024, 2
		s.HeapBytes = 2 << 20
		return s
	case "jack":
		// Parser generator: short run, steady allocation.
		s := base
		s.Name, s.MainClass = "jack", "spec.benchmarks._228_jack.Main"
		s.BaseSeconds = 2.4
		s.Classes = 30
		s.HotMethods, s.OuterIters, s.InnerIters = 2, 27, 1000
		s.ArrayLen, s.AllocEvery = 768, 3
		s.HeapBytes = 2 << 20
		return s
	default:
		s := base
		s.Name = name
		return s
	}
}

// memberByName extends ByName lookup to the JVM98 members.
func memberByName(name string) (Spec, bool) {
	for _, s := range JVM98Members() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// init-time sanity: members must average the paper's suite figure.
func init() {
	var sum float64
	members := JVM98Members()
	for _, s := range members {
		sum += s.BaseSeconds
	}
	avg := sum / float64(len(members))
	if avg < 5.70 || avg > 5.78 {
		panic(fmt.Sprintf("workload: JVM98 members average %.3f s, want 5.74", avg))
	}
}
