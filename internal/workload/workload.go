// Package workload synthesizes the paper's benchmark programs: the
// SpecJVM98 suite (as one representative composite), the DaCapo
// benchmarks (antlr, bloat, fop, hsqldb, pmd, xalan, ps) and SPEC
// pseudoJBB (§4.1). Real inputs are unavailable offline, so each
// benchmark is a deterministic bytecode program whose *profiler-visible
// characteristics* are calibrated to the original: base running time
// (Figure 3), number of classes and methods (compilation load), heap
// allocation rate and survivor ratio (GC/epoch frequency), array
// working-set size (L2 miss rate), and native/kernel activity.
package workload

import (
	"fmt"
	"math/rand"

	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
)

// Spec describes one synthetic benchmark.
type Spec struct {
	Name      string
	Suite     string // "dacapo", "jvm98", "specjbb"
	MainClass string
	// BaseSeconds is the paper-reported base running time (Figure 3)
	// this spec is calibrated to reproduce at Scale 1.0.
	BaseSeconds float64

	// Program shape.
	Classes     int // distinct classes (drives classloading)
	ColdPerHot  int // cold methods per class, invoked once at startup
	HotMethods  int // hot loop methods (one per "worker" class)
	OuterIters  int32
	InnerIters  int32
	ArrayLen    int32 // hot-loop working set, elements of 8 bytes
	AllocEvery  int32 // allocate an object every k inner iterations
	SurviveRing int32 // static ring slots keeping allocations live
	MemsetBytes int32 // libc activity per outer iteration
	CopyElems   int32 // arraycopy of this many elements per outer iteration (0 = none)
	WriteEvery  int32 // kernel write every k outer iterations (0 = none)
	HeapBytes   uint64
	Seed        int64

	// HotClasses optionally names the hot-method classes (defaults to
	// "<MainClass>.WorkerN"); HotName names the hot methods (default
	// "run"). The ps benchmark uses these so its hottest symbol matches
	// the paper's Figure 1 verbatim.
	HotClasses []string
	HotName    string

	// Threaded runs each hot method in its own VM thread (pseudoJBB's
	// warehouses, mtrt's rays) instead of calling them from main's
	// loop; main keeps the native/kernel activity.
	Threaded bool
}

// Validate sanity-checks the spec.
func (s Spec) Validate() error {
	if s.Name == "" || s.HotMethods < 1 || s.OuterIters < 1 || s.InnerIters < 1 {
		return fmt.Errorf("workload %q: incomplete spec", s.Name)
	}
	if s.ArrayLen < 1 || s.AllocEvery < 1 || s.SurviveRing < 1 {
		return fmt.Errorf("workload %q: bad loop parameters", s.Name)
	}
	if s.HeapBytes < 64<<10 {
		return fmt.Errorf("workload %q: heap too small", s.Name)
	}
	return nil
}

// Build generates the benchmark program. scale multiplies the outer
// iteration count (clamped to at least 1) so experiments can run
// reduced workloads; everything else is scale-invariant.
func Build(s Spec, scale float64) (*classes.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	outer := int32(float64(s.OuterIters) * scale)
	if outer < 1 {
		outer = 1
	}
	rng := rand.New(rand.NewSource(s.Seed))
	// Statics: ring of survivor slots + slot for the ring array itself
	// + one scratch slot (+ two slots for the arraycopy operands).
	nStatics := int(s.SurviveRing) + 2
	copySrc, copyDst := int32(nStatics), int32(nStatics)+1
	if s.CopyElems > 0 {
		nStatics += 2
	}
	prog := classes.NewProgram(s.Name, nStatics)

	// Hot worker methods, one per worker class.
	hotIdx := make([]int32, 0, s.HotMethods)
	for h := 0; h < s.HotMethods; h++ {
		cls := fmt.Sprintf("%s.Worker%d", s.MainClass, h)
		if h < len(s.HotClasses) {
			cls = s.HotClasses[h]
		}
		name := s.HotName
		if name == "" {
			name = "run"
		}
		m := buildHotMethod(cls, name, s, rng, h)
		prog.Add(m)
		hotIdx = append(hotIdx, int32(m.Index))
	}

	// Cold methods: small leaf computations, one call each at startup.
	coldIdx := make([]int32, 0, s.Classes*s.ColdPerHot)
	for c := 0; c < s.Classes; c++ {
		cls := fmt.Sprintf("%s.util.C%02d", s.MainClass, c)
		for k := 0; k < s.ColdPerHot; k++ {
			m := buildColdMethod(cls, k, rng)
			prog.Add(m)
			coldIdx = append(coldIdx, int32(m.Index))
		}
	}

	// main: startup phase touches every cold method once (classloading
	// and baseline-compilation load), then the measured loop drives the
	// hot workers round-robin.
	a := bytecode.NewAsm()
	// Survivor ring: a ref array at statics[0] that hot methods store
	// every k-th allocation into, giving the heap a live tail.
	a.Const(s.SurviveRing).Emit(bytecode.NewArray, 8, 1).Emit(bytecode.PutStatic, 0)
	// Arraycopy operands: two long arrays copied once per outer
	// iteration (System.arraycopy-heavy benchmarks like fop's renderer).
	if s.CopyElems > 0 {
		a.Const(s.CopyElems).Emit(bytecode.NewArray, 8, 0).Emit(bytecode.PutStatic, copySrc)
		a.Const(s.CopyElems).Emit(bytecode.NewArray, 8, 0).Emit(bytecode.PutStatic, copyDst)
	}
	for _, ci := range coldIdx {
		a.Const(7).Call(ci).Emit(bytecode.Pop)
	}
	// Threaded mode: one VM thread per hot worker, each given the whole
	// iteration budget; main's loop keeps only the native/kernel work.
	if s.Threaded {
		total := outer * s.InnerIters
		for _, hi := range hotIdx {
			a.Const(total).Emit(bytecode.Spawn, hi)
		}
	}
	// local 0 = outer counter
	a.Const(0).Store(0)
	a.Label("outer")
	if !s.Threaded {
		for _, hi := range hotIdx {
			a.Const(s.InnerIters).Call(hi)
		}
	}
	if s.MemsetBytes > 0 {
		a.Const(s.MemsetBytes).Emit(bytecode.Intrinsic, int32(bytecode.IntrMemset), 1)
	}
	if s.CopyElems > 0 {
		a.Emit(bytecode.GetStatic, copySrc)
		a.Emit(bytecode.GetStatic, copyDst)
		a.Const(s.CopyElems)
		a.Emit(bytecode.Intrinsic, int32(bytecode.IntrArrayCopy), 1)
	}
	if s.WriteEvery > 0 {
		a.Load(0).Const(s.WriteEvery).Emit(bytecode.Mod)
		a.Branch(bytecode.JmpNZ, "nowrite")
		a.Const(128).Emit(bytecode.Intrinsic, int32(bytecode.IntrWrite), 1)
		a.Label("nowrite")
	}
	a.Load(0).Const(1).Emit(bytecode.Add).Store(0)
	a.Load(0).Const(outer).Emit(bytecode.CmpLT)
	a.Branch(bytecode.JmpNZ, "outer")
	a.Emit(bytecode.RetVoid)
	main := prog.Add(&classes.Method{
		Class: s.MainClass, Name: "main", MaxLocals: 2, Code: a.MustFinish(),
	})
	prog.SetMain(main)
	if err := prog.Verify(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid program: %v", s.Name, err)
	}
	return prog, nil
}

// buildHotMethod emits the measured inner loop: array walk with
// read-modify-write, periodic allocation with survivor rooting, and a
// per-method twist in the arithmetic mix.
func buildHotMethod(cls, name string, s Spec, rng *rand.Rand, ordinal int) *classes.Method {
	a := bytecode.NewAsm()
	// locals: 0=iters 1=i 2=arr 3=tmp 4=ringIdx
	a.Const(s.ArrayLen).Emit(bytecode.NewArray, 8, 0).Store(2)
	a.Const(0).Store(1)
	a.Const(int32(rng.Intn(int(s.SurviveRing)))).Store(4)
	a.Label("loop")
	// stride pattern differs per method: some walk sequentially (good
	// locality), some stride widely (bad locality).
	stride := int32(1 + ordinal*7)
	a.Load(2)
	a.Load(1).Const(stride).Emit(bytecode.Mul).Load(0).Emit(bytecode.Add)
	a.Const(s.ArrayLen).Emit(bytecode.Mod)
	a.Emit(bytecode.ALoad)
	// arithmetic twist
	switch ordinal % 3 {
	case 0:
		a.Load(1).Emit(bytecode.Add).Const(3).Emit(bytecode.Mul)
	case 1:
		a.Load(1).Emit(bytecode.Xor).Const(1).Emit(bytecode.Shl)
	default:
		a.Load(1).Emit(bytecode.Sub).Const(2).Emit(bytecode.Or)
	}
	a.Store(3)
	a.Load(2)
	a.Load(1).Const(stride).Emit(bytecode.Mul).Load(0).Emit(bytecode.Add)
	a.Const(s.ArrayLen).Emit(bytecode.Mod)
	a.Load(3)
	a.Emit(bytecode.AStore)
	// Allocation with survivor ring.
	a.Load(1).Const(s.AllocEvery).Emit(bytecode.Mod)
	a.Branch(bytecode.JmpNZ, "noalloc")
	a.Emit(bytecode.New, 2, 4)
	// statics[1 + ringIdx] = obj; ringIdx = (ringIdx+1) % ring
	a.Store(3)
	a.Load(4).Const(int32(1)).Emit(bytecode.Add).Const(s.SurviveRing).Emit(bytecode.Mod).Store(4)
	// PutStatic needs a constant slot; rotate over the ring by emitting
	// a small dispatch: slot = 2 + (ringIdx % ring) handled by indexed
	// stores into a ref array instead (simpler and equivalent).
	a.Emit(bytecode.GetStatic, 0) // the survivor ring array
	a.Load(4)
	a.Load(3)
	a.Emit(bytecode.AStore)
	a.Label("noalloc")
	a.Load(1).Const(1).Emit(bytecode.Add).Store(1)
	a.Load(1).Load(0).Emit(bytecode.CmpLT)
	a.Branch(bytecode.JmpNZ, "loop")
	a.Emit(bytecode.RetVoid)
	return &classes.Method{
		Class: cls, Name: name, NArgs: 1, MaxLocals: 5, Code: a.MustFinish(),
	}
}

// buildColdMethod emits a small arithmetic leaf.
func buildColdMethod(cls string, k int, rng *rand.Rand) *classes.Method {
	a := bytecode.NewAsm()
	a.Load(0)
	n := rng.Intn(12) + 4
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			a.Const(int32(rng.Intn(100) + 1)).Emit(bytecode.Add)
		case 1:
			a.Const(int32(rng.Intn(7) + 1)).Emit(bytecode.Mul)
		case 2:
			a.Const(int32(rng.Intn(15) + 1)).Emit(bytecode.Xor)
		default:
			a.Const(int32(rng.Intn(3) + 1)).Emit(bytecode.Shr)
		}
	}
	a.Emit(bytecode.Ret)
	return &classes.Method{
		Class: cls, Name: fmt.Sprintf("init%d", k), NArgs: 1, MaxLocals: 1,
		Code: a.MustFinish(),
	}
}
