// Package addr models virtual addresses, virtual memory areas (VMAs) and
// per-process address spaces for the simulated machine.
//
// The layout mimics a 32-bit x86 Linux of the Pentium 4 era (the paper's
// testbed): user space occupies [0, KernelBase) and the kernel is mapped
// at [KernelBase, 4 GiB). Profilers attribute a sampled program counter
// by looking up the VMA that contains it, exactly as OProfile does.
package addr

import (
	"fmt"
	"sort"
)

// Address is a simulated virtual address.
type Address uint64

// KernelBase is the start of the kernel mapping. Addresses at or above
// KernelBase are kernel-space; below it, user-space.
const KernelBase Address = 0xC000_0000

// Top is the end of the simulated 32-bit address space.
const Top Address = 0x1_0000_0000

// IsKernel reports whether a lies in the kernel portion of the address
// space.
func (a Address) IsKernel() bool { return a >= KernelBase }

// String formats the address in the 0x%08x form used by OProfile reports.
func (a Address) String() string { return fmt.Sprintf("0x%08x", uint64(a)) }

// Prot describes the protection bits of a mapping. Only the distinctions
// the profiler cares about are modelled.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// VMA is a contiguous virtual memory area [Start, End) backed either by
// an object file image (Image != "") at file offset Offset, or by
// anonymous memory (Image == ""). Anonymous executable regions are what
// OProfile reports as "anon (range:...)" — the black boxes VIProf opens.
type VMA struct {
	Start  Address
	End    Address
	Image  string  // backing image name; empty for anonymous memory
	Offset Address // offset of Start within the backing image
	Prot   Prot
}

// Contains reports whether a falls inside the area.
func (v VMA) Contains(a Address) bool { return a >= v.Start && a < v.End }

// Size returns the extent of the area in bytes.
func (v VMA) Size() uint64 { return uint64(v.End - v.Start) }

// Anonymous reports whether the area is not backed by an image.
func (v VMA) Anonymous() bool { return v.Image == "" }

// ImageOffset translates a virtual address inside the area to an offset
// within the backing image.
func (v VMA) ImageOffset(a Address) Address { return a - v.Start + v.Offset }

func (v VMA) String() string {
	name := v.Image
	if name == "" {
		name = "anon"
	}
	return fmt.Sprintf("%s-%s %s", v.Start, v.End, name)
}

// Space is a process address space: an ordered set of non-overlapping
// VMAs supporting O(log n) containment lookup.
type Space struct {
	vmas []VMA // sorted by Start, non-overlapping
}

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{} }

// Map installs the given area. It fails if the area is empty, escapes
// the simulated address space, or overlaps an existing mapping.
func (s *Space) Map(v VMA) error {
	if v.End <= v.Start {
		return fmt.Errorf("addr: empty or inverted VMA %s", v)
	}
	if v.End > Top {
		return fmt.Errorf("addr: VMA %s beyond end of address space", v)
	}
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].Start >= v.Start })
	if i > 0 && s.vmas[i-1].End > v.Start {
		return fmt.Errorf("addr: VMA %s overlaps %s", v, s.vmas[i-1])
	}
	if i < len(s.vmas) && s.vmas[i].Start < v.End {
		return fmt.Errorf("addr: VMA %s overlaps %s", v, s.vmas[i])
	}
	s.vmas = append(s.vmas, VMA{})
	copy(s.vmas[i+1:], s.vmas[i:])
	s.vmas[i] = v
	return nil
}

// Unmap removes any areas fully contained in [start, end) and truncates
// areas that straddle the boundary. Splitting an area in two (unmapping
// a strict interior range) is also supported.
func (s *Space) Unmap(start, end Address) {
	if end <= start {
		return
	}
	out := s.vmas[:0]
	var extra []VMA
	for _, v := range s.vmas {
		switch {
		case v.End <= start || v.Start >= end:
			out = append(out, v)
		case v.Start < start && v.End > end:
			// Interior unmap: split into two.
			left := v
			left.End = start
			right := v
			right.Offset += end - v.Start
			right.Start = end
			out = append(out, left)
			extra = append(extra, right)
		case v.Start < start:
			v.End = start
			out = append(out, v)
		case v.End > end:
			v.Offset += end - v.Start
			v.Start = end
			out = append(out, v)
		default:
			// fully covered: drop
		}
	}
	s.vmas = append(out, extra...)
	sort.Slice(s.vmas, func(i, j int) bool { return s.vmas[i].Start < s.vmas[j].Start })
}

// Lookup returns the area containing a, if any.
func (s *Space) Lookup(a Address) (VMA, bool) {
	i := sort.Search(len(s.vmas), func(i int) bool { return s.vmas[i].End > a })
	if i < len(s.vmas) && s.vmas[i].Contains(a) {
		return s.vmas[i], true
	}
	return VMA{}, false
}

// Len returns the number of mapped areas.
func (s *Space) Len() int { return len(s.vmas) }

// All returns a copy of the mapped areas in ascending address order.
func (s *Space) All() []VMA {
	out := make([]VMA, len(s.vmas))
	copy(out, s.vmas)
	return out
}

// Allocator hands out non-overlapping address ranges from a region by
// bump allocation; it is used to place images, heaps and stacks when a
// process is built.
type Allocator struct {
	next  Address
	limit Address
}

// NewAllocator returns an allocator for [start, limit).
func NewAllocator(start, limit Address) *Allocator {
	return &Allocator{next: start, limit: limit}
}

// Alloc reserves size bytes aligned to align (a power of two; 0 or 1
// means unaligned) and returns the start address.
func (al *Allocator) Alloc(size uint64, align uint64) (Address, error) {
	next := uint64(al.next)
	if align > 1 {
		next = (next + align - 1) &^ (align - 1)
	}
	if next+size > uint64(al.limit) || next+size < next {
		return 0, fmt.Errorf("addr: allocator exhausted (want %d bytes at %s, limit %s)",
			size, Address(next), al.limit)
	}
	al.next = Address(next + size)
	return Address(next), nil
}

// Remaining returns the number of bytes still available.
func (al *Allocator) Remaining() uint64 { return uint64(al.limit - al.next) }
