package addr

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddressIsKernel(t *testing.T) {
	tests := []struct {
		a    Address
		want bool
	}{
		{0, false},
		{0x0804_8000, false},
		{KernelBase - 1, false},
		{KernelBase, true},
		{0xFFFF_FFFF, true},
	}
	for _, tt := range tests {
		if got := tt.a.IsKernel(); got != tt.want {
			t.Errorf("%s.IsKernel() = %v, want %v", tt.a, got, tt.want)
		}
	}
}

func TestVMAContains(t *testing.T) {
	v := VMA{Start: 0x1000, End: 0x2000, Image: "libc.so"}
	if !v.Contains(0x1000) || !v.Contains(0x1FFF) {
		t.Error("VMA should contain its interior")
	}
	if v.Contains(0x0FFF) || v.Contains(0x2000) {
		t.Error("VMA end is exclusive, start inclusive")
	}
	if v.Size() != 0x1000 {
		t.Errorf("Size = %d, want 4096", v.Size())
	}
	if v.Anonymous() {
		t.Error("image-backed VMA reported anonymous")
	}
}

func TestVMAImageOffset(t *testing.T) {
	v := VMA{Start: 0x5000, End: 0x9000, Image: "app", Offset: 0x200}
	if got := v.ImageOffset(0x5000); got != 0x200 {
		t.Errorf("offset at start = %s, want 0x200", got)
	}
	if got := v.ImageOffset(0x6010); got != 0x1210 {
		t.Errorf("offset = %s, want 0x1210", got)
	}
}

func TestSpaceMapAndLookup(t *testing.T) {
	s := NewSpace()
	vmas := []VMA{
		{Start: 0x0804_8000, End: 0x0805_0000, Image: "app"},
		{Start: 0x4000_0000, End: 0x4010_0000, Image: "libc.so"},
		{Start: 0x6000_0000, End: 0x6800_0000}, // anon heap
	}
	for _, v := range vmas {
		if err := s.Map(v); err != nil {
			t.Fatalf("Map(%s): %v", v, err)
		}
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if v, ok := s.Lookup(0x0804_9123); !ok || v.Image != "app" {
		t.Errorf("Lookup app address: %v %v", v, ok)
	}
	if v, ok := s.Lookup(0x6100_0000); !ok || !v.Anonymous() {
		t.Errorf("Lookup anon address: %v %v", v, ok)
	}
	if _, ok := s.Lookup(0x5000_0000); ok {
		t.Error("Lookup in unmapped gap should fail")
	}
	if _, ok := s.Lookup(0x0805_0000); ok {
		t.Error("Lookup at exclusive end should fail")
	}
}

func TestSpaceMapErrors(t *testing.T) {
	s := NewSpace()
	if err := s.Map(VMA{Start: 0x2000, End: 0x1000}); err == nil {
		t.Error("inverted VMA accepted")
	}
	if err := s.Map(VMA{Start: 0x1000, End: 0x1000}); err == nil {
		t.Error("empty VMA accepted")
	}
	if err := s.Map(VMA{Start: 0xFFFF_F000, End: 0x1_0000_1000}); err == nil {
		t.Error("VMA beyond address-space top accepted")
	}
	if err := s.Map(VMA{Start: 0x1000, End: 0x3000}); err != nil {
		t.Fatal(err)
	}
	overlaps := []VMA{
		{Start: 0x0000, End: 0x1001},
		{Start: 0x2FFF, End: 0x4000},
		{Start: 0x1800, End: 0x2000},
		{Start: 0x0000, End: 0x8000},
	}
	for _, v := range overlaps {
		if err := s.Map(v); err == nil {
			t.Errorf("overlapping Map(%s) accepted", v)
		}
	}
	// Adjacent mappings are legal.
	if err := s.Map(VMA{Start: 0x3000, End: 0x4000}); err != nil {
		t.Errorf("adjacent Map rejected: %v", err)
	}
}

func TestSpaceUnmap(t *testing.T) {
	s := NewSpace()
	if err := s.Map(VMA{Start: 0x1000, End: 0x9000, Image: "big", Offset: 0x100}); err != nil {
		t.Fatal(err)
	}
	// Interior unmap splits in two.
	s.Unmap(0x3000, 0x5000)
	if s.Len() != 2 {
		t.Fatalf("after split Len = %d, want 2", s.Len())
	}
	if _, ok := s.Lookup(0x4000); ok {
		t.Error("unmapped hole still resolves")
	}
	left, ok := s.Lookup(0x2000)
	if !ok || left.End != 0x3000 || left.Offset != 0x100 {
		t.Errorf("left half wrong: %+v", left)
	}
	right, ok := s.Lookup(0x5000)
	if !ok || right.Start != 0x5000 || right.Offset != 0x100+0x4000 {
		t.Errorf("right half wrong: %+v", right)
	}
	// Remove everything.
	s.Unmap(0, Top-1)
	if s.Len() != 0 {
		t.Errorf("after full unmap Len = %d, want 0", s.Len())
	}
}

func TestSpaceUnmapEdges(t *testing.T) {
	s := NewSpace()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Map(VMA{Start: 0x1000, End: 0x2000}))
	must(s.Map(VMA{Start: 0x3000, End: 0x4000}))
	s.Unmap(0x1800, 0x3800) // truncate both
	a, ok := s.Lookup(0x1400)
	if !ok || a.End != 0x1800 {
		t.Errorf("left truncation wrong: %+v ok=%v", a, ok)
	}
	b, ok := s.Lookup(0x3900)
	if !ok || b.Start != 0x3800 {
		t.Errorf("right truncation wrong: %+v ok=%v", b, ok)
	}
	s.Unmap(0x5000, 0x5000) // no-op
	if s.Len() != 2 {
		t.Errorf("no-op unmap changed layout: %d VMAs", s.Len())
	}
}

// Property: after any sequence of valid Maps, every address inside a
// mapped VMA resolves to exactly that VMA, areas are sorted and
// non-overlapping, and addresses outside all VMAs do not resolve.
func TestSpaceInvariantsQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		var accepted []VMA
		for i := 0; i < int(n%40)+1; i++ {
			start := Address(rng.Intn(1<<20) * 0x1000)
			size := Address((rng.Intn(16) + 1) * 0x1000)
			v := VMA{Start: start, End: start + size}
			if err := s.Map(v); err == nil {
				accepted = append(accepted, v)
			}
		}
		all := s.All()
		if len(all) != len(accepted) {
			return false
		}
		if !sort.SliceIsSorted(all, func(i, j int) bool { return all[i].Start < all[j].Start }) {
			return false
		}
		for i := 1; i < len(all); i++ {
			if all[i-1].End > all[i].Start {
				return false // overlap
			}
		}
		for _, v := range accepted {
			for _, a := range []Address{v.Start, v.Start + (v.End-v.Start)/2, v.End - 1} {
				got, ok := s.Lookup(a)
				if !ok || got.Start != v.Start {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Unmap never leaves overlapping VMAs and never resolves an
// address inside the unmapped range.
func TestUnmapInvariantsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewSpace()
		for i := 0; i < 20; i++ {
			start := Address(rng.Intn(1<<16) * 0x1000)
			size := Address((rng.Intn(8) + 1) * 0x1000)
			s.Map(VMA{Start: start, End: start + size}) // ignore overlap errors
		}
		lo := Address(rng.Intn(1<<16) * 0x1000)
		hi := lo + Address((rng.Intn(32)+1)*0x1000)
		s.Unmap(lo, hi)
		all := s.All()
		for i := 1; i < len(all); i++ {
			if all[i-1].End > all[i].Start {
				return false
			}
		}
		for a := lo; a < hi; a += 0x1000 {
			if _, ok := s.Lookup(a); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAllocator(t *testing.T) {
	al := NewAllocator(0x1000, 0x2000)
	a, err := al.Alloc(0x100, 0)
	if err != nil || a != 0x1000 {
		t.Fatalf("first alloc = %s, %v", a, err)
	}
	b, err := al.Alloc(0x100, 0x1000)
	if err != nil || b != 0x2000-0x1000+0x1000 {
		// aligned up to 0x2000? no: next was 0x1100, aligned to 0x2000 which
		// is exactly the limit boundary minus size... recompute below.
		t.Logf("b = %s err = %v", b, err)
	}
	al2 := NewAllocator(0x1000, 0x10000)
	x, _ := al2.Alloc(0x10, 0)
	y, _ := al2.Alloc(0x10, 0x100)
	if x != 0x1000 || y != 0x1100 {
		t.Errorf("alignment wrong: x=%s y=%s", x, y)
	}
	if _, err := al2.Alloc(1<<40, 0); err == nil {
		t.Error("oversized alloc accepted")
	}
	rem := al2.Remaining()
	if rem == 0 || rem > 0xF000 {
		t.Errorf("Remaining = %d", rem)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	al := NewAllocator(0, 0x1000)
	if _, err := al.Alloc(0x1000, 0); err != nil {
		t.Fatalf("exact-fit alloc failed: %v", err)
	}
	if _, err := al.Alloc(1, 0); err == nil {
		t.Error("alloc past limit accepted")
	}
}
