// Package record implements the durable on-disk framing the profiling
// pipeline's writers share: every logical write is a length-prefixed,
// CRC-checksummed record, so a torn or interrupted write is detectable
// and the salvage reader can recover every intact record around the
// damage instead of discarding (or worse, misparsing) the whole file.
//
// Frame layout, little-endian:
//
//	magic "VPR1" (4 B) | payload length (uint32) | CRC-32/IEEE of payload (uint32) | payload
//
// The magic doubles as a resynchronization marker: after a corrupt
// region the scanner advances byte by byte until the next offset that
// parses as a complete, checksum-valid record.
package record

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
)

// Magic starts every record (and therefore every framed file).
const Magic = "VPR1"

// HeaderSize is the fixed per-record framing overhead in bytes.
const HeaderSize = 12

// Frame wraps a payload in the record header.
func Frame(payload []byte) []byte {
	out := make([]byte, HeaderSize+len(payload))
	copy(out, Magic)
	binary.LittleEndian.PutUint32(out[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[8:], crc32.ChecksumIEEE(payload))
	copy(out[HeaderSize:], payload)
	return out
}

// IsFramed reports whether data is a framed stream, which is how
// readers distinguish framed files from legacy plain-text ones. A
// framed file normally begins with the magic, but the very first
// record can be torn mid-magic (an ENOSPC or crash on the file's
// first write), leaving a short garbage prefix ahead of later intact
// records — so the magic anywhere classifies the file as framed (Scan
// resynchronizes past the damage), as does a file that is nothing but
// a strict prefix of the magic (a first write torn inside it).
func IsFramed(data []byte) bool {
	if bytes.Contains(data, []byte(Magic)) {
		return true
	}
	return len(data) > 0 && len(data) < len(Magic) && strings.HasPrefix(Magic, string(data))
}

// Salvage accounts for what a Scan recovered and what it had to drop.
// "Degrade, don't lie": every byte that does not end up in a returned
// record is counted here, never silently skipped.
type Salvage struct {
	// Records is the number of intact records recovered.
	Records int
	// DroppedRecords counts contiguous corrupt regions (each region is
	// at least one destroyed record: a torn tail, a short write, or
	// flipped bytes).
	DroppedRecords int
	// DroppedBytes is the total size of the corrupt regions.
	DroppedBytes int
}

// Lossy reports whether anything at all was dropped.
func (s Salvage) Lossy() bool { return s.DroppedRecords > 0 || s.DroppedBytes > 0 }

// Scan walks a framed file and returns every intact record's payload in
// file order, resynchronizing on the magic after corruption. It never
// fails: damage is reported through the Salvage accounting.
func Scan(data []byte) ([][]byte, Salvage) {
	var recs [][]byte
	var s Salvage
	i := 0
	inGap := false
	for i < len(data) {
		if payload, size, ok := tryRecord(data[i:]); ok {
			recs = append(recs, payload)
			s.Records++
			i += size
			inGap = false
			continue
		}
		if !inGap {
			s.DroppedRecords++
			inGap = true
		}
		s.DroppedBytes++
		i++
	}
	return recs, s
}

// tryRecord attempts to parse one complete record at the start of data.
func tryRecord(data []byte) (payload []byte, size int, ok bool) {
	if len(data) < HeaderSize || string(data[:len(Magic)]) != Magic {
		return nil, 0, false
	}
	n := int(binary.LittleEndian.Uint32(data[4:8]))
	if n > len(data)-HeaderSize {
		return nil, 0, false
	}
	sum := binary.LittleEndian.Uint32(data[8:12])
	payload = data[HeaderSize : HeaderSize+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, 0, false
	}
	return payload, HeaderSize + n, true
}
