package record

import (
	"bytes"
	"testing"
)

func TestFrameScanRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte(""), []byte("gamma delta")}
	var file []byte
	for _, p := range payloads {
		file = append(file, Frame(p)...)
	}
	recs, sal := Scan(file)
	if sal.Lossy() {
		t.Fatalf("clean file reported lossy: %+v", sal)
	}
	if sal.Records != len(payloads) || len(recs) != len(payloads) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(recs[i], p) {
			t.Errorf("record %d = %q, want %q", i, recs[i], p)
		}
	}
	if !IsFramed(file) {
		t.Error("framed file not detected")
	}
	if IsFramed([]byte("plain text\n")) {
		t.Error("plain text detected as framed")
	}
}

// Truncating a framed file at any offset must recover exactly the
// records that fit intact, with the torn remainder accounted.
func TestScanTruncationSweep(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("two two"), []byte("three three three")}
	var file []byte
	var bounds []int // end offset of each record
	for _, p := range payloads {
		file = append(file, Frame(p)...)
		bounds = append(bounds, len(file))
	}
	for cut := 0; cut <= len(file); cut++ {
		recs, sal := Scan(file[:cut])
		wantIntact := 0
		for _, b := range bounds {
			if cut >= b {
				wantIntact++
			}
		}
		if len(recs) != wantIntact {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(recs), wantIntact)
		}
		for i := range recs {
			if !bytes.Equal(recs[i], payloads[i]) {
				t.Fatalf("cut %d: record %d corrupted: %q", cut, i, recs[i])
			}
		}
		tornBytes := cut
		if wantIntact > 0 {
			tornBytes = cut - bounds[wantIntact-1]
		}
		if sal.DroppedBytes != tornBytes {
			t.Fatalf("cut %d: dropped %d bytes, want %d", cut, sal.DroppedBytes, tornBytes)
		}
		if (tornBytes > 0) != sal.Lossy() {
			t.Fatalf("cut %d: lossy=%v with %d torn bytes", cut, sal.Lossy(), tornBytes)
		}
	}
}

// Corruption in the middle of a file must not take out the records
// after it: the scanner resynchronizes on the next magic.
func TestScanResyncAfterCorruption(t *testing.T) {
	a, b, c := Frame([]byte("first")), Frame([]byte("second")), Frame([]byte("third"))
	var file []byte
	file = append(file, a...)
	file = append(file, b[:len(b)-3]...) // torn middle record
	file = append(file, c...)
	recs, sal := Scan(file)
	if len(recs) != 2 || !bytes.Equal(recs[0], []byte("first")) || !bytes.Equal(recs[1], []byte("third")) {
		t.Fatalf("resync failed: %q", recs)
	}
	if sal.DroppedRecords != 1 || sal.DroppedBytes != len(b)-3 {
		t.Errorf("salvage accounting: %+v", sal)
	}
}

// Flipping any single byte must never yield a record that was not
// written: the checksum drops the damaged record, everything else
// survives byte-identical.
func TestScanBitFlipSweep(t *testing.T) {
	payloads := [][]byte{[]byte("rec A"), []byte("rec B longer"), []byte("rec C")}
	var file []byte
	for _, p := range payloads {
		file = append(file, Frame(p)...)
	}
	valid := make(map[string]bool)
	for _, p := range payloads {
		valid[string(p)] = true
	}
	for pos := 0; pos < len(file); pos++ {
		mut := append([]byte(nil), file...)
		mut[pos] ^= 0x41
		recs, sal := Scan(mut)
		for _, r := range recs {
			if !valid[string(r)] {
				t.Fatalf("flip at %d fabricated record %q", pos, r)
			}
		}
		if len(recs)+sal.DroppedRecords < len(payloads)-1 {
			t.Fatalf("flip at %d lost records silently: %d recovered, %+v", pos, len(recs), sal)
		}
		if len(recs) < len(payloads) && !sal.Lossy() {
			t.Fatalf("flip at %d dropped a record without accounting", pos)
		}
	}
}

// TestIsFramedTornFirstRecord: a file whose very FIRST record was torn
// mid-magic must still classify as framed — Scan resynchronizes past
// the stub — and a file that is nothing but a magic prefix (first
// write torn inside the magic, nothing after) is framed damage, not
// legacy text.
func TestIsFramedTornFirstRecord(t *testing.T) {
	frame := Frame([]byte("event payload"))
	for cut := 1; cut < len(Magic); cut++ {
		stub := frame[:cut]
		if !IsFramed(stub) {
			t.Errorf("magic prefix %q not classified as framed", stub)
		}
		combined := append(append([]byte{}, stub...), frame...)
		if !IsFramed(combined) {
			t.Errorf("torn-first-record file %q not classified as framed", combined[:8])
		}
		recs, sal := Scan(combined)
		if len(recs) != 1 || string(recs[0]) != "event payload" {
			t.Errorf("cut %d: salvaged %d records, want the intact one", cut, len(recs))
		}
		if !sal.Lossy() || sal.DroppedBytes != cut {
			t.Errorf("cut %d: salvage %+v, want %d dropped bytes", cut, sal, cut)
		}
	}
	if IsFramed([]byte("VPX is not a magic prefix")) {
		t.Error("non-magic text classified as framed")
	}
	if IsFramed(nil) {
		t.Error("empty data classified as framed")
	}
}
