// Package hpc models hardware performance counters (HPCs): programmable
// event counters that raise a non-maskable interrupt (NMI) when a
// configured number of events has occurred. OProfile, and hence VIProf,
// is driven entirely by this mechanism (paper §3): the kernel driver
// programs each counter with the user's event and count threshold, and
// every overflow delivers one sample.
package hpc

import "fmt"

// Event identifies a countable hardware event. The names mirror the
// Pentium 4 events the paper profiles in Figure 1.
type Event uint8

// Supported events.
const (
	// GlobalPowerEvents counts non-halted clock cycles; sampling on it
	// approximates a time profile (the paper's "time" column).
	GlobalPowerEvents Event = iota
	// BSQCacheReference counts L2 data cache misses (the paper's
	// "Dmiss" column).
	BSQCacheReference
	// ITLBMiss and DTLBMiss are extra events beyond the paper's two,
	// exercised by tests and available to users.
	ITLBMiss
	DTLBMiss
	// InstrRetired counts retired instructions.
	InstrRetired
	// CoherencyTransfers counts cross-core cache-line transfers: a core
	// touching a line last written by a different core pays the
	// coherency penalty and this event fires once for the transfer.
	// Always zero on a single-core machine.
	CoherencyTransfers
	numEvents
)

// NumEvents is the number of defined events.
const NumEvents = int(numEvents)

// String returns the OProfile-style event mnemonic.
func (e Event) String() string {
	switch e {
	case GlobalPowerEvents:
		return "GLOBAL_POWER_EVENTS"
	case BSQCacheReference:
		return "BSQ_CACHE_REFERENCE"
	case ITLBMiss:
		return "ITLB_REFERENCE"
	case DTLBMiss:
		return "DTLB_REFERENCE"
	case InstrRetired:
		return "INSTR_RETIRED"
	case CoherencyTransfers:
		return "COHERENCY_TRANSFERS"
	default:
		return fmt.Sprintf("EVENT_%d", uint8(e))
	}
}

// Counter is one programmable performance counter. It counts down from
// the period; crossing zero is an overflow. Hardware resets the counter
// to the period after each overflow, so a burst of n events can produce
// several overflows.
type Counter struct {
	Event   Event
	Period  uint64 // events per sample; 0 disables the counter
	Enabled bool

	remaining uint64
	total     uint64 // lifetime events observed while enabled
	overflows uint64
}

// NewCounter returns a counter armed with the given event and period.
func NewCounter(ev Event, period uint64) (*Counter, error) {
	if period == 0 {
		return nil, fmt.Errorf("hpc: zero period for %s", ev)
	}
	if int(ev) >= NumEvents {
		return nil, fmt.Errorf("hpc: unknown event %d", ev)
	}
	return &Counter{Event: ev, Period: period, Enabled: true, remaining: period}, nil
}

// Add records n occurrences of the counter's event and returns how many
// overflows they caused (usually 0 or 1; more if n spans multiple
// periods).
func (c *Counter) Add(n uint64) int {
	if !c.Enabled || c.Period == 0 || n == 0 {
		return 0
	}
	c.total += n
	if n < c.remaining {
		c.remaining -= n
		return 0
	}
	n -= c.remaining
	ovf := 1 + int(n/c.Period)
	c.remaining = c.Period - n%c.Period
	c.overflows += uint64(ovf)
	return ovf
}

// Reset rearms the counter at a full period.
func (c *Counter) Reset() { c.remaining = c.Period }

// Remaining returns how many further events will cause the next
// overflow: adding Remaining() events overflows, adding fewer does not.
// It is always >= 1 for an armed counter.
func (c *Counter) Remaining() uint64 { return c.remaining }

// Total returns the lifetime event count.
func (c *Counter) Total() uint64 { return c.total }

// Overflows returns the lifetime overflow count.
func (c *Counter) Overflows() uint64 { return c.overflows }

// Bank is the set of counters on one core. The simulated CPU ticks the
// bank once per micro-op; overflow notifications are delivered through
// the OnOverflow callback (the NMI line).
type Bank struct {
	counters [NumEvents]*Counter
	armed    []*Counter // dense list of enabled counters, for fast ticking
	// OnOverflow is invoked once per overflow with the overflowing
	// counter. It corresponds to asserting the NMI line; the CPU decides
	// how and when to deliver it.
	OnOverflow func(*Counter)
}

// NewBank returns an empty counter bank.
func NewBank() *Bank { return &Bank{} }

// Program installs a counter for the event, replacing any previous one.
func (b *Bank) Program(ev Event, period uint64) (*Counter, error) {
	c, err := NewCounter(ev, period)
	if err != nil {
		return nil, err
	}
	b.counters[ev] = c
	b.rebuild()
	return c, nil
}

// Remove disables and removes the counter for the event.
func (b *Bank) Remove(ev Event) {
	if int(ev) < NumEvents {
		b.counters[ev] = nil
		b.rebuild()
	}
}

// Counter returns the counter programmed for ev, if any.
func (b *Bank) Counter(ev Event) (*Counter, bool) {
	if int(ev) >= NumEvents || b.counters[ev] == nil {
		return nil, false
	}
	return b.counters[ev], true
}

// Armed returns the enabled counters in event order.
func (b *Bank) Armed() []*Counter { return b.armed }

func (b *Bank) rebuild() {
	b.armed = b.armed[:0]
	for _, c := range b.counters {
		if c != nil && c.Enabled {
			b.armed = append(b.armed, c)
		}
	}
}

// NoLimit is returned by NextOverflowIn when no overflow can occur.
const NoLimit = ^uint64(0)

// NextOverflowIn returns the event-horizon headroom for ev: the largest
// n such that recording n occurrences of ev is guaranteed NOT to
// overflow the counter programmed for it. It returns NoLimit when no
// enabled counter watches the event. The batched execution engine uses
// this to size bulk runs that provably deliver no NMI, so per-event
// ticking can be replaced by one bulk Tick with identical counter
// state.
func (b *Bank) NextOverflowIn(ev Event) uint64 {
	c := b.counters[ev]
	if c == nil || !c.Enabled || c.Period == 0 {
		return NoLimit
	}
	return c.remaining - 1
}

// BulkHeadroom returns the joint event horizon of a fused run that
// ticks opsEv once per op and weightEv by a per-op weight (the
// instruction/cycle pair of the batched execution engine): the largest
// op count and the largest total weight that can be recorded before
// either counter overflows. Either dimension reaching zero means the
// next op must take the precise path — callers split the run at the
// horizon, retire the prefix in bulk, and fall back per-op at the
// boundary, so overflow NMIs fire on exactly the op they would have
// under per-event ticking.
func (b *Bank) BulkHeadroom(opsEv, weightEv Event) (ops, weight uint64) {
	return b.NextOverflowIn(opsEv), b.NextOverflowIn(weightEv)
}

// Tick records n occurrences of ev and fires OnOverflow for each
// overflow caused.
func (b *Bank) Tick(ev Event, n uint64) {
	c := b.counters[ev]
	if c == nil {
		return
	}
	for ovf := c.Add(n); ovf > 0; ovf-- {
		if b.OnOverflow != nil {
			b.OnOverflow(c)
		}
	}
}
