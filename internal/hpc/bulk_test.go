package hpc

import "testing"

// BulkHeadroom is the joint horizon of a fused run: the op headroom of
// the ops counter and the weight headroom of the weight counter, with
// NoLimit for unarmed events and zero once a counter is one op from
// overflow (the caller must then fall back per-op).
func TestBulkHeadroom(t *testing.T) {
	b := NewBank()
	if ops, w := b.BulkHeadroom(InstrRetired, GlobalPowerEvents); ops != NoLimit || w != NoLimit {
		t.Errorf("empty bank headroom = (%d, %d), want NoLimit pair", ops, w)
	}
	b.Program(InstrRetired, 10)
	b.Program(GlobalPowerEvents, 25)
	if ops, w := b.BulkHeadroom(InstrRetired, GlobalPowerEvents); ops != 9 || w != 24 {
		t.Errorf("headroom = (%d, %d), want (9, 24)", ops, w)
	}
	b.Tick(InstrRetired, 9)
	if ops, _ := b.BulkHeadroom(InstrRetired, GlobalPowerEvents); ops != 0 {
		t.Errorf("ops headroom = %d, want 0 one op before overflow", ops)
	}
	b.Tick(InstrRetired, 1) // overflow rearms at the full period
	if ops, _ := b.BulkHeadroom(InstrRetired, GlobalPowerEvents); ops != 9 {
		t.Errorf("ops headroom after rearm = %d, want 9", ops)
	}
}
