package hpc

import (
	"testing"
	"testing/quick"
)

func TestCounterBasic(t *testing.T) {
	c, err := NewCounter(GlobalPowerEvents, 100)
	if err != nil {
		t.Fatal(err)
	}
	if ovf := c.Add(99); ovf != 0 {
		t.Errorf("99 events overflowed %d times", ovf)
	}
	if ovf := c.Add(1); ovf != 1 {
		t.Errorf("100th event overflowed %d times, want 1", ovf)
	}
	if ovf := c.Add(100); ovf != 1 {
		t.Errorf("next full period overflowed %d times, want 1", ovf)
	}
	if c.Total() != 200 || c.Overflows() != 2 {
		t.Errorf("totals = %d/%d, want 200/2", c.Total(), c.Overflows())
	}
}

func TestCounterMultiOverflow(t *testing.T) {
	c, _ := NewCounter(BSQCacheReference, 10)
	if ovf := c.Add(35); ovf != 3 {
		t.Errorf("35 events with period 10 overflowed %d times, want 3", ovf)
	}
	// remaining should be 10 - 5 = 5
	if ovf := c.Add(4); ovf != 0 {
		t.Errorf("4 more events overflowed %d", ovf)
	}
	if ovf := c.Add(1); ovf != 1 {
		t.Errorf("5th event overflowed %d, want 1", ovf)
	}
}

func TestCounterDisabledAndErrors(t *testing.T) {
	if _, err := NewCounter(GlobalPowerEvents, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewCounter(Event(200), 10); err == nil {
		t.Error("unknown event accepted")
	}
	c, _ := NewCounter(GlobalPowerEvents, 10)
	c.Enabled = false
	if ovf := c.Add(100); ovf != 0 || c.Total() != 0 {
		t.Error("disabled counter counted")
	}
	c.Enabled = true
	c.Add(7)
	c.Reset()
	if ovf := c.Add(9); ovf != 0 {
		t.Error("Reset did not rearm full period")
	}
	if ovf := c.Add(1); ovf != 1 {
		t.Error("overflow after Reset miscounted")
	}
}

// Property: total overflows == floor(total events / period) for any
// sequence of Add sizes.
func TestOverflowArithmeticQuick(t *testing.T) {
	f := func(period uint16, adds []uint16) bool {
		p := uint64(period%1000) + 1
		c, err := NewCounter(GlobalPowerEvents, p)
		if err != nil {
			return false
		}
		var got int
		var total uint64
		for _, a := range adds {
			got += c.Add(uint64(a))
			total += uint64(a)
		}
		return uint64(got) == total/p && c.Total() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEventString(t *testing.T) {
	if GlobalPowerEvents.String() != "GLOBAL_POWER_EVENTS" {
		t.Error(GlobalPowerEvents.String())
	}
	if BSQCacheReference.String() != "BSQ_CACHE_REFERENCE" {
		t.Error(BSQCacheReference.String())
	}
	if Event(99).String() != "EVENT_99" {
		t.Error(Event(99).String())
	}
}

func TestBank(t *testing.T) {
	b := NewBank()
	var fired []Event
	b.OnOverflow = func(c *Counter) { fired = append(fired, c.Event) }

	if _, err := b.Program(GlobalPowerEvents, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Program(BSQCacheReference, 3); err != nil {
		t.Fatal(err)
	}
	if len(b.Armed()) != 2 {
		t.Fatalf("armed = %d", len(b.Armed()))
	}
	b.Tick(GlobalPowerEvents, 49)
	b.Tick(BSQCacheReference, 2)
	if len(fired) != 0 {
		t.Fatalf("premature overflow: %v", fired)
	}
	b.Tick(GlobalPowerEvents, 1)
	b.Tick(BSQCacheReference, 7) // 2+7=9 events, period 3 -> 9/3=3 total overflows
	wantCycles, wantMiss := 1, 3
	var gotCycles, gotMiss int
	for _, e := range fired {
		switch e {
		case GlobalPowerEvents:
			gotCycles++
		case BSQCacheReference:
			gotMiss++
		}
	}
	if gotCycles != wantCycles || gotMiss != wantMiss {
		t.Errorf("overflows = %d cycles, %d miss; want %d, %d", gotCycles, gotMiss, wantCycles, wantMiss)
	}

	// Ticking an unprogrammed event is a no-op.
	b.Tick(ITLBMiss, 1000)

	if c, ok := b.Counter(BSQCacheReference); !ok || c.Event != BSQCacheReference {
		t.Error("Counter lookup failed")
	}
	b.Remove(BSQCacheReference)
	if _, ok := b.Counter(BSQCacheReference); ok {
		t.Error("Counter survived Remove")
	}
	if len(b.Armed()) != 1 {
		t.Errorf("armed after remove = %d", len(b.Armed()))
	}
}

func TestBankReprogram(t *testing.T) {
	b := NewBank()
	c1, _ := b.Program(GlobalPowerEvents, 100)
	c1.Add(60)
	c2, _ := b.Program(GlobalPowerEvents, 100) // replace
	if c2 == c1 {
		t.Error("Program did not replace counter")
	}
	if c2.Total() != 0 {
		t.Error("replacement counter inherited state")
	}
}
