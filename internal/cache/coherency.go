package cache

// Cross-core coherency model for the SMP machine: a single shared
// directory, at shared-L2-line granularity, remembering which core last
// wrote each line. A core whose L1 misses on a line last written by a
// *different* core pays a transfer penalty (the simplified cost of an
// invalidate + cache-to-cache forward) and raises one
// COHERENCY_TRANSFERS event. The transfer clears ownership: the line is
// now clean in the shared L2, so subsequent readers on any core pay
// nothing more until someone writes it again. This deliberately models
// only the first-order effect — write-invalidate traffic between
// private L1s — which is what per-core attribution needs to make
// cross-core costs visible; it is not a full MESI state machine.

import "viprof/internal/addr"

// Directory is the shared write-ownership map. One Directory is shared
// by all Hierarchies of an SMP machine (it lives logically beside the
// shared L2).
type Directory struct {
	lineBits  uint
	owner     map[uint64]int
	transfers uint64
}

// NewDirectory returns an empty directory tracking ownership at the
// given line granularity (use the shared L2's line bits).
func NewDirectory(lineBits uint) *Directory {
	return &Directory{lineBits: lineBits, owner: make(map[uint64]int)}
}

// MarkWrite records that core last wrote the line holding a.
func (d *Directory) MarkWrite(a addr.Address, core int) {
	d.owner[uint64(a)>>d.lineBits] = core
}

// Transfer reports whether an access to a by core hits a line last
// written by a different core. A true result IS the transfer: ownership
// clears (the line is forwarded and left clean in the shared level), so
// each write is charged to at most one remote reader — re-probing the
// same line after an L1 eviction does not pay again.
func (d *Directory) Transfer(a addr.Address, core int) bool {
	line := uint64(a) >> d.lineBits
	own, ok := d.owner[line]
	if !ok || own == core {
		return false
	}
	delete(d.owner, line)
	d.transfers++
	return true
}

// Transfers returns the lifetime cross-core transfer count.
func (d *Directory) Transfers() uint64 { return d.transfers }

// SharedHierarchies builds n per-core hierarchies for an SMP machine:
// each core gets a private L1, DTLB and ITLB with the default geometry,
// all cores share one L2 and one coherency directory. n == 1 yields a
// machine indistinguishable from DefaultHierarchy() in cost terms (the
// directory never fires with a single writer), but tests that want
// bit-for-bit identity with the pre-SMP model should keep using
// DefaultHierarchy, whose Coh field is nil and skips directory
// bookkeeping entirely.
func SharedHierarchies(n int) []*Hierarchy {
	l2, err := New(Config{Sets: 512, Ways: 8, LineBits: 7})
	if err != nil {
		panic(err)
	}
	dir := NewDirectory(l2.lineBits)
	hs := make([]*Hierarchy, n)
	for i := range hs {
		l1, err := New(Config{Sets: 32, Ways: 8, LineBits: 6})
		if err != nil {
			panic(err)
		}
		hs[i] = &Hierarchy{
			L1: l1, L2: l2, L1Hit: 0, L2Hit: 8, MemPenalty: 120,
			DTLB: newTLB(), ITLB: newTLB(), TLBPenalty: 30,
			Coh: dir, CoreID: i, CohPenalty: DefaultCohPenalty,
		}
	}
	return hs
}
