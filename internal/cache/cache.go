// Package cache implements a small set-associative cache hierarchy used
// by the simulated CPU to generate memory-system events. The paper's
// second profiled hardware event, BSQ_CACHE_REFERENCE (L2 data cache
// misses on the Pentium 4), is produced by this model: every memory
// micro-op probes L1; L1 misses probe L2; L2 misses raise an event the
// hardware performance counters can count.
package cache

import (
	"fmt"

	"viprof/internal/addr"
)

// Config describes one cache level.
type Config struct {
	Sets     int  // number of sets; must be a power of two
	Ways     int  // associativity
	LineBits uint // log2 of the line size in bytes
}

// Valid reports whether the configuration is usable.
func (c Config) Valid() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d not positive", c.Ways)
	}
	if c.LineBits < 2 || c.LineBits > 12 {
		return fmt.Errorf("cache: line bits %d out of range", c.LineBits)
	}
	return nil
}

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways << c.LineBits }

// Cache is one level of set-associative cache with true-LRU replacement.
// Tags are line addresses (address >> LineBits); a zero tag slot is
// invalid, which is safe because line address 0 is never used by the
// simulated layout (page 0 stays unmapped).
type Cache struct {
	cfg      Config
	setMask  uint64
	lineBits uint
	tags     []uint64 // Sets*Ways entries; tags[set*Ways+way]
	// lru[set*Ways+way] is a recency stamp; larger = more recent.
	lru   []uint32
	clock uint32

	accesses uint64
	misses   uint64
}

// New builds a cache from the configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Valid(); err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Ways
	return &Cache{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		lineBits: cfg.LineBits,
		tags:     make([]uint64, n),
		lru:      make([]uint32, n),
	}, nil
}

// Access probes the cache for the line containing a, filling it on a
// miss, and reports whether the access hit.
func (c *Cache) Access(a addr.Address) bool {
	line := uint64(a) >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	c.clock++
	c.accesses++
	victim := base
	oldest := c.lru[base]
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.lru[i] = c.clock
			return true
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.misses++
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return false
}

// Contains reports whether the line holding a is currently resident,
// without touching recency state. It exists for tests and invariants.
func (c *Cache) Contains(a addr.Address) bool {
	line := uint64(a) >> c.lineBits
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Flush invalidates all lines. Statistics are preserved.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
}

// Stats returns cumulative accesses and misses.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Hierarchy is a two-level cache with fixed hit/miss latencies. Access
// returns the extra cycles the memory system charges beyond the base
// instruction cost, plus whether the access missed in L2 (the profiled
// event).
type Hierarchy struct {
	L1, L2 *Cache
	// Latencies in cycles. L1 hits are folded into the base instruction
	// cost, so L1Hit is usually 0.
	L1Hit, L2Hit, MemPenalty uint32

	// DTLB and ITLB translate data and instruction pages; a miss costs
	// TLBPenalty cycles (a hardware page walk) and raises the
	// corresponding sampling event. Either may be nil (no TLB model).
	DTLB, ITLB *Cache
	TLBPenalty uint32

	lastIPage uint64 // last instruction page, to probe ITLB per page change
}

// newTLB builds a Pentium-4-like TLB: 64 entries, 4-way, 4 KiB pages.
func newTLB() *Cache {
	t, err := New(Config{Sets: 16, Ways: 4, LineBits: 12})
	if err != nil {
		panic(err)
	}
	return t
}

// DefaultHierarchy models a Pentium 4-like memory system scaled for the
// simulated clock: 16 KiB 8-way L1 with 64-byte lines, 512 KiB 8-way L2
// with 128-byte lines (Northwood/Prescott-era geometry).
func DefaultHierarchy() *Hierarchy {
	l1, err := New(Config{Sets: 32, Ways: 8, LineBits: 6})
	if err != nil {
		panic(err)
	}
	l2, err := New(Config{Sets: 512, Ways: 8, LineBits: 7})
	if err != nil {
		panic(err)
	}
	return &Hierarchy{
		L1: l1, L2: l2, L1Hit: 0, L2Hit: 8, MemPenalty: 120,
		DTLB: newTLB(), ITLB: newTLB(), TLBPenalty: 30,
	}
}

// Access sends one memory reference through the hierarchy.
func (h *Hierarchy) Access(a addr.Address) (extraCycles uint32, l2miss bool) {
	if h.L1.Access(a) {
		return h.L1Hit, false
	}
	if h.L2.Access(a) {
		return h.L2Hit, false
	}
	return h.MemPenalty, true
}

// AccessData probes the DTLB for the data address and reports whether
// it missed (the DTLB_REFERENCE sampling event); the page-walk penalty
// is returned as extra cycles.
func (h *Hierarchy) AccessData(a addr.Address) (extraCycles uint32, miss bool) {
	if h.DTLB == nil || h.DTLB.Access(a) {
		return 0, false
	}
	return h.TLBPenalty, true
}

// AccessInstr probes the ITLB when execution crosses a page boundary
// (the common case — straight-line code within a page — costs nothing,
// as on hardware).
func (h *Hierarchy) AccessInstr(pc addr.Address) (extraCycles uint32, miss bool) {
	if h.ITLB == nil {
		return 0, false
	}
	page := uint64(pc) >> 12
	if page == h.lastIPage {
		return 0, false
	}
	h.lastIPage = page
	if h.ITLB.Access(pc) {
		return 0, false
	}
	return h.TLBPenalty, true
}

// InstrFree reports whether an instruction fetch at pc is guaranteed to
// bypass the memory model entirely — no ITLB probe, no extra cycles, no
// sampling event. True when there is no ITLB or when pc is on the same
// page as the previous fetch (the straight-line common case).
func (h *Hierarchy) InstrFree(pc addr.Address) bool {
	return h.ITLB == nil || uint64(pc)>>12 == h.lastIPage
}

// PageConstrained reports whether instruction fetches interact with the
// memory model at page boundaries (an ITLB is present). When false,
// bulk execution need not split runs at page crossings.
func (h *Hierarchy) PageConstrained() bool { return h.ITLB != nil }

// InstrRun is the bulk fetch-accounting call of the batched execution
// engine: it returns how many sequential instruction fetches starting
// at pc (advancing by stride bytes each) are guaranteed to be free —
// identical to per-op AccessInstr calls that all hit the same-page fast
// path and therefore touch no cache state and raise no events. It
// returns 0 when the first fetch needs an ITLB probe (the caller must
// take the precise per-op path, which performs the probe and records
// the miss sequence exactly as before). The result is capped at max.
func (h *Hierarchy) InstrRun(pc addr.Address, stride uint32, max uint64) uint64 {
	if h.ITLB == nil {
		return max
	}
	if uint64(pc)>>12 != h.lastIPage {
		return 0
	}
	if stride == 0 {
		return max
	}
	// Fetch i lands at pc + i*stride; it stays on the current page while
	// i*stride <= pageEnd - pc.
	n := (0xFFF-(uint64(pc)&0xFFF))/uint64(stride) + 1
	if n > max {
		n = max
	}
	return n
}

// Flush empties the caches and TLBs (used at context switch to model
// the cold state a newly scheduled process sees).
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
	if h.DTLB != nil {
		h.DTLB.Flush()
	}
	if h.ITLB != nil {
		h.ITLB.Flush()
		h.lastIPage = 0
	}
}
