// Package cache implements a small set-associative cache hierarchy used
// by the simulated CPU to generate memory-system events. The paper's
// second profiled hardware event, BSQ_CACHE_REFERENCE (L2 data cache
// misses on the Pentium 4), is produced by this model: every memory
// micro-op probes L1; L1 misses probe L2; L2 misses raise an event the
// hardware performance counters can count.
package cache

import (
	"fmt"
	"math/bits"

	"viprof/internal/addr"
)

// Config describes one cache level.
type Config struct {
	Sets     int  // number of sets; must be a power of two
	Ways     int  // associativity
	LineBits uint // log2 of the line size in bytes
}

// Valid reports whether the configuration is usable.
func (c Config) Valid() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache: sets %d not a positive power of two", c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d not positive", c.Ways)
	}
	if c.LineBits < 2 || c.LineBits > 12 {
		return fmt.Errorf("cache: line bits %d out of range", c.LineBits)
	}
	return nil
}

// SizeBytes returns the total capacity.
func (c Config) SizeBytes() int { return c.Sets * c.Ways << c.LineBits }

// Cache is one level of set-associative cache with true-LRU replacement.
// Tags are line addresses (address >> LineBits); a zero tag slot is
// invalid, which is safe because line address 0 is never used by the
// simulated layout (page 0 stays unmapped).
type Cache struct {
	cfg      Config
	setMask  uint64
	lineBits uint
	tags     []uint64 // Sets*Ways entries; tags[set*Ways+way]
	// lru[set*Ways+way] is a recency stamp; larger = more recent.
	lru   []uint32
	clock uint32

	accesses uint64
	misses   uint64

	// gen counts Flushes. Residency trackers (Hierarchy.DataFree, the
	// core's streaming batch) snapshot it so a flush behind their back —
	// the kernel cold-flushes L1 directly at context switch — cannot
	// leave them believing a line is still resident.
	gen uint64
}

// New builds a cache from the configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Valid(); err != nil {
		return nil, err
	}
	n := cfg.Sets * cfg.Ways
	return &Cache{
		cfg:      cfg,
		setMask:  uint64(cfg.Sets - 1),
		lineBits: cfg.LineBits,
		tags:     make([]uint64, n),
		lru:      make([]uint32, n),
	}, nil
}

// Access probes the cache for the line containing a, filling it on a
// miss, and reports whether the access hit.
func (c *Cache) Access(a addr.Address) bool {
	hit, _ := c.probe(a)
	return hit
}

// probe is Access returning also the slot the line ended up in, so bulk
// callers can apply deferred recency updates without re-scanning the set
// (see touchSlot).
func (c *Cache) probe(a addr.Address) (bool, int) {
	line := uint64(a) >> c.lineBits
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	c.clock++
	c.accesses++
	victim := base
	oldest := c.lru[base]
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.tags[i] == line {
			c.lru[i] = c.clock
			return true, i
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	c.misses++
	c.tags[victim] = line
	c.lru[victim] = c.clock
	return false, victim
}

// Contains reports whether the line holding a is currently resident,
// without touching recency state. It exists for tests and invariants.
func (c *Cache) Contains(a addr.Address) bool {
	line := uint64(a) >> c.lineBits
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == line {
			return true
		}
	}
	return false
}

// Flush invalidates all lines. Statistics are preserved.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	c.gen++
}

// Gen returns the flush generation (see the gen field).
func (c *Cache) Gen() uint64 { return c.gen }

// lineRun returns how many of the accesses a, a+stride, ... stay within
// the cache line holding a, capped at max. Stride 0 never leaves the
// line.
func (c *Cache) lineRun(a addr.Address, stride uint32, max int) int {
	if stride == 0 {
		return max
	}
	left := (uint64(1) << c.lineBits) - (uint64(a) & ((uint64(1) << c.lineBits) - 1))
	var n uint64
	if stride&(stride-1) == 0 {
		n = (left-1)>>uint(bits.TrailingZeros32(stride)) + 1
	} else {
		n = (left-1)/uint64(stride) + 1
	}
	if n > uint64(max) {
		return max
	}
	return int(n)
}

// touch applies k deferred recency updates for accesses that were
// guaranteed hits on the line holding a: the line was resident and
// most-recently-used when they retired, so replaying them later needs
// no probe — the net state change of k per-op hits is clock+k,
// accesses+k, and the line's stamp moving to the final clock value.
// If the line is gone (an intervening Flush, which per-op ordering
// places after the hits), only the clock and access counts survive,
// exactly as they would have.
func (c *Cache) touch(a addr.Address, k uint32) {
	if k == 0 {
		return
	}
	c.clock += k
	c.accesses += uint64(k)
	line := uint64(a) >> c.lineBits
	base := int(line&c.setMask) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == line {
			c.lru[base+w] = c.clock
			return
		}
	}
}

// touchSlot is touch for a caller that just probed the line and knows
// its slot — valid only while no Flush can have intervened (inside one
// bulk run), where the scan in touch would find exactly this slot.
func (c *Cache) touchSlot(slot int, k uint32) {
	c.clock += k
	c.accesses += uint64(k)
	c.lru[slot] = c.clock
}

// AccessRun replays n strided accesses (a, a+stride, ...) and appends
// the indices of the ones that missed to miss, returning it. It is
// bit-for-bit equivalent to n sequential Access calls — same final
// tags, recency stamps, clock, and statistics, same miss sequence —
// but exploits line locality: within one cache line only the first
// access can miss (the probe leaves the line resident and
// most-recently-used, and nothing else touches this cache during the
// run), so each line segment costs one probe plus arithmetic.
func (c *Cache) AccessRun(start addr.Address, stride uint32, n int, miss []int) []int {
	for i := 0; i < n; {
		a := start + addr.Address(uint64(i)*uint64(stride))
		k := c.lineRun(a, stride, n-i)
		hit, slot := c.probe(a)
		if !hit {
			miss = append(miss, i)
		}
		if k > 1 {
			c.touchSlot(slot, uint32(k-1))
		}
		i += k
	}
	return miss
}

// Stats returns cumulative accesses and misses.
func (c *Cache) Stats() (accesses, misses uint64) { return c.accesses, c.misses }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Hierarchy is a two-level cache with fixed hit/miss latencies. Access
// returns the extra cycles the memory system charges beyond the base
// instruction cost, plus whether the access missed in L2 (the profiled
// event).
type Hierarchy struct {
	L1, L2 *Cache
	// Latencies in cycles. L1 hits are folded into the base instruction
	// cost, so L1Hit is usually 0.
	L1Hit, L2Hit, MemPenalty uint32

	// DTLB and ITLB translate data and instruction pages; a miss costs
	// TLBPenalty cycles (a hardware page walk) and raises the
	// corresponding sampling event. Either may be nil (no TLB model).
	DTLB, ITLB *Cache
	TLBPenalty uint32

	// Coh, when non-nil, is the coherency directory shared with the
	// other cores' hierarchies (see coherency.go); CoreID is this
	// hierarchy's core in that directory and CohPenalty the extra
	// cycles a cross-core line transfer charges. A nil Coh (the
	// single-core default) skips all directory bookkeeping.
	Coh        *Directory
	CoreID     int
	CohPenalty uint32

	lastIPage uint64 // last instruction page, to probe ITLB per page change

	// Residency tracking for the streaming batched data path: the L1
	// line and DTLB page of the most recent data access, with the flush
	// generations they were observed under. A line just probed by
	// Access is resident and most-recently-used, so a subsequent access
	// to the same line (with no intervening data access or flush) is a
	// guaranteed L1 hit — see DataFree.
	lastDLine    uint64
	lastDLineGen uint64
	haveDLine    bool
	lastDPage    uint64
	lastDPageGen uint64
	haveDPage    bool

	// scatter holds the reusable working buffers of DataBatch (the
	// sorted multi-run replay for non-strided address batches).
	scatter scatterScratch
}

// newTLB builds a Pentium-4-like TLB: 64 entries, 4-way, 4 KiB pages.
func newTLB() *Cache {
	t, err := New(Config{Sets: 16, Ways: 4, LineBits: 12})
	if err != nil {
		panic(err)
	}
	return t
}

// DefaultHierarchy models a Pentium 4-like memory system scaled for the
// simulated clock: 16 KiB 8-way L1 with 64-byte lines, 512 KiB 8-way L2
// with 128-byte lines (Northwood/Prescott-era geometry).
func DefaultHierarchy() *Hierarchy {
	l1, err := New(Config{Sets: 32, Ways: 8, LineBits: 6})
	if err != nil {
		panic(err)
	}
	l2, err := New(Config{Sets: 512, Ways: 8, LineBits: 7})
	if err != nil {
		panic(err)
	}
	return &Hierarchy{
		L1: l1, L2: l2, L1Hit: 0, L2Hit: 8, MemPenalty: 120,
		DTLB: newTLB(), ITLB: newTLB(), TLBPenalty: 30,
	}
}

// DefaultCohPenalty is the cross-core transfer cost in cycles: an
// invalidate round plus a cache-to-cache forward, between an L2 hit (8)
// and a memory fill (120) on the default geometry.
const DefaultCohPenalty = 40

// Access sends one memory reference through the hierarchy. The coh
// result reports a cross-core coherency transfer (always false without
// a directory); its penalty is folded into extraCycles.
func (h *Hierarchy) Access(a addr.Address) (extraCycles uint32, l2miss, coh bool) {
	h.lastDLine = uint64(a) >> h.L1.lineBits
	h.lastDLineGen = h.L1.gen
	h.haveDLine = true
	if h.L1.Access(a) {
		return h.L1Hit, false, false
	}
	// The line is not in our private L1: if another core wrote it last,
	// this fill is the transfer. L1 hits never check — a resident line
	// was filled by us after any prior transfer.
	if h.Coh != nil && h.Coh.Transfer(a, h.CoreID) {
		coh = true
		extraCycles = h.CohPenalty
	}
	if h.L2.Access(a) {
		return extraCycles + h.L2Hit, false, coh
	}
	return extraCycles + h.MemPenalty, true, coh
}

// MarkWrite records a store by this core in the shared coherency
// directory. No-op on a single-core hierarchy (nil Coh).
func (h *Hierarchy) MarkWrite(a addr.Address) {
	if h.Coh != nil {
		h.Coh.MarkWrite(a, h.CoreID)
	}
}

// AccessData probes the DTLB for the data address and reports whether
// it missed (the DTLB_REFERENCE sampling event); the page-walk penalty
// is returned as extra cycles.
func (h *Hierarchy) AccessData(a addr.Address) (extraCycles uint32, miss bool) {
	if h.DTLB == nil {
		return 0, false
	}
	h.lastDPage = uint64(a) >> h.DTLB.lineBits
	h.lastDPageGen = h.DTLB.gen
	h.haveDPage = true
	if h.DTLB.Access(a) {
		return 0, false
	}
	return h.TLBPenalty, true
}

// HitCost returns the extra cycles a guaranteed L1 data hit charges —
// what the batched engine adds to an op's base cost when DataFree
// proves the probe outcome in advance.
func (h *Hierarchy) HitCost() uint32 { return h.L1Hit }

// DataFree reports whether a data access at a is guaranteed to be an
// L1 and DTLB hit with no sampling event — true when a falls on the
// same L1 line and DTLB page as the most recent data access and
// neither structure has been flushed since. The probed line/page is
// resident and most-recently-used, nothing but data accesses touch
// these structures, and any other data access goes through
// Access/AccessData and retargets the tracker — so the guarantee
// cannot go stale silently.
func (h *Hierarchy) DataFree(a addr.Address) bool {
	if !h.haveDLine || uint64(a)>>h.L1.lineBits != h.lastDLine || h.L1.gen != h.lastDLineGen {
		return false
	}
	if h.DTLB != nil {
		if !h.haveDPage || uint64(a)>>h.DTLB.lineBits != h.lastDPage || h.DTLB.gen != h.lastDPageGen {
			return false
		}
	}
	return true
}

// DataTouch applies k deferred recency updates for data accesses that
// DataFree proved to be guaranteed hits at a: the DTLB and L1 receive
// the same net state change k per-op probes would have produced.
func (h *Hierarchy) DataTouch(a addr.Address, k uint32) {
	if h.DTLB != nil {
		h.DTLB.touch(a, k)
	}
	h.L1.touch(a, k)
}

// DataEvent is one noteworthy access within a DataRun: an op whose
// memory reference charged more than the L1-hit cost or raised a
// sampling event. Index is the op's position in the run; Extra is the
// total memory-system cycles beyond the base op cost (page walk plus
// cache level); the flags say which counter events to tick.
type DataEvent struct {
	Index    int
	Extra    uint32
	DTLBMiss bool
	L2Miss   bool
	// Coh marks a cross-core coherency transfer (see coherency.go).
	Coh bool
}

// DataRun replays n strided data accesses (mem, mem+stride, ...)
// through the hierarchy — for each op a DTLB probe then a cache probe,
// exactly the per-op AccessData/Access pair — and appends a DataEvent
// for every op that was not a plain L1+DTLB hit. State updates are
// bit-for-bit identical to the per-op loop: within one L1-line/DTLB-
// page segment only the first access can miss (the head probe leaves
// line and page resident and most-recently-used, and nothing else
// touches the data structures mid-run), so the tail is replayed as
// deferred recency arithmetic.
//
// Contract: the caller must ensure no other data access interleaves
// with the ops of the run. NMI handlers are fine — all simulated
// handler work is instruction-only (ExecKernel), and instruction
// fetches touch only the ITLB.
func (h *Hierarchy) DataRun(mem addr.Address, stride uint32, n int, buf []DataEvent) []DataEvent {
	if n <= 0 {
		return buf
	}
	// Power-of-two strides no larger than the line tile the line exactly:
	// after the first (possibly partial) line segment every interior
	// segment holds lineSize/stride ops and the head advances by exactly
	// one line — no per-line division.
	lineSize := uint64(1) << h.L1.lineBits
	constK := 0
	if stride != 0 && stride&(stride-1) == 0 && uint64(stride) <= lineSize {
		constK = int(lineSize) / int(stride)
	}
	a := mem
	for i := 0; i < n; {
		// Page segment: ops staying on the DTLB page holding a. Pages
		// are line-multiples, so line segments never straddle them. The
		// DTLB is probed once at the head — per-op, every tail access is
		// a guaranteed page hit — and the tail retires as deferred
		// recency arithmetic, like the L1 tails below.
		pn := n - i
		var dExtra uint32
		var dmiss bool
		var dSlot int
		if h.DTLB != nil {
			if pk := h.DTLB.lineRun(a, stride, pn); pk < pn {
				pn = pk
			}
			var hit bool
			hit, dSlot = h.DTLB.probe(a)
			if !hit {
				dExtra, dmiss = h.TLBPenalty, true
			}
		}
		la := a
		for j := 0; j < pn; {
			var k int
			if constK != 0 && (i != 0 || j != 0) {
				k = constK
				if left := pn - j; k > left {
					k = left
				}
			} else {
				k = h.L1.lineRun(la, stride, pn-j)
			}
			hit, slot := h.L1.probe(la)
			var cextra uint32
			var l2miss, cohm bool
			if hit {
				cextra = h.L1Hit
			} else {
				if h.Coh != nil && h.Coh.Transfer(la, h.CoreID) {
					cohm = true
					cextra = h.CohPenalty
				}
				if h.L2.Access(la) {
					cextra += h.L2Hit
				} else {
					cextra += h.MemPenalty
					l2miss = true
				}
			}
			extra := cextra
			dm := false
			if j == 0 {
				extra += dExtra
				dm = dmiss
			}
			if dm || l2miss || cohm || extra != h.L1Hit {
				buf = append(buf, DataEvent{Index: i + j, Extra: extra, DTLBMiss: dm, L2Miss: l2miss, Coh: cohm})
			}
			if k > 1 {
				h.L1.touchSlot(slot, uint32(k-1))
			}
			j += k
			la += addr.Address(uint64(k) * uint64(stride))
		}
		if h.DTLB != nil && pn > 1 {
			h.DTLB.touchSlot(dSlot, uint32(pn-1))
		}
		i += pn
		a += addr.Address(uint64(pn) * uint64(stride))
	}
	// Residency tracking lands on the final op, exactly as the per-op
	// loop's last Access/AccessData calls would leave it.
	last := mem + addr.Address(uint64(n-1)*uint64(stride))
	h.lastDLine = uint64(last) >> h.L1.lineBits
	h.lastDLineGen = h.L1.gen
	h.haveDLine = true
	if h.DTLB != nil {
		h.lastDPage = uint64(last) >> h.DTLB.lineBits
		h.lastDPageGen = h.DTLB.gen
		h.haveDPage = true
	}
	return buf
}

// AccessInstr probes the ITLB when execution crosses a page boundary
// (the common case — straight-line code within a page — costs nothing,
// as on hardware).
func (h *Hierarchy) AccessInstr(pc addr.Address) (extraCycles uint32, miss bool) {
	if h.ITLB == nil {
		return 0, false
	}
	page := uint64(pc) >> 12
	if page == h.lastIPage {
		return 0, false
	}
	h.lastIPage = page
	if h.ITLB.Access(pc) {
		return 0, false
	}
	return h.TLBPenalty, true
}

// InstrFree reports whether an instruction fetch at pc is guaranteed to
// bypass the memory model entirely — no ITLB probe, no extra cycles, no
// sampling event. True when there is no ITLB or when pc is on the same
// page as the previous fetch (the straight-line common case).
func (h *Hierarchy) InstrFree(pc addr.Address) bool {
	return h.ITLB == nil || uint64(pc)>>12 == h.lastIPage
}

// PageConstrained reports whether instruction fetches interact with the
// memory model at page boundaries (an ITLB is present). When false,
// bulk execution need not split runs at page crossings.
func (h *Hierarchy) PageConstrained() bool { return h.ITLB != nil }

// InstrRun is the bulk fetch-accounting call of the batched execution
// engine: it returns how many sequential instruction fetches starting
// at pc (advancing by stride bytes each) are guaranteed to be free —
// identical to per-op AccessInstr calls that all hit the same-page fast
// path and therefore touch no cache state and raise no events. It
// returns 0 when the first fetch needs an ITLB probe (the caller must
// take the precise per-op path, which performs the probe and records
// the miss sequence exactly as before). The result is capped at max.
func (h *Hierarchy) InstrRun(pc addr.Address, stride uint32, max uint64) uint64 {
	if h.ITLB == nil {
		return max
	}
	if uint64(pc)>>12 != h.lastIPage {
		return 0
	}
	if stride == 0 {
		return max
	}
	// Fetch i lands at pc + i*stride; it stays on the current page while
	// i*stride <= pageEnd - pc. Power-of-two strides (4 everywhere in
	// practice) divide by shifting.
	left := 0xFFF - (uint64(pc) & 0xFFF)
	var n uint64
	if stride&(stride-1) == 0 {
		n = left>>uint(bits.TrailingZeros32(stride)) + 1
	} else {
		n = left/uint64(stride) + 1
	}
	if n > max {
		n = max
	}
	return n
}

// Flush empties the caches and TLBs (used at context switch to model
// the cold state a newly scheduled process sees).
func (h *Hierarchy) Flush() {
	h.L1.Flush()
	h.L2.Flush()
	if h.DTLB != nil {
		h.DTLB.Flush()
	}
	if h.ITLB != nil {
		h.ITLB.Flush()
		h.lastIPage = 0
	}
}
