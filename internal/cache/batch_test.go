package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
)

// scatterBatch generates a random scattered address batch with the
// shapes the sorted multi-run replay must survive: exact duplicates,
// same-line and same-page neighbours, page-crossers, and cold far
// jumps — interleaved so repeated keys are separated by arbitrary
// other traffic (the case the per-set fill epochs exist for).
func scatterBatch(r *rand.Rand, n int) []addr.Address {
	hot := make([]addr.Address, 1+r.Intn(8))
	for i := range hot {
		hot[i] = addr.Address(0x8000_0000 + r.Intn(1<<22))
	}
	mems := make([]addr.Address, n)
	for i := range mems {
		switch r.Intn(10) {
		case 0, 1, 2: // exact duplicate of a hot address
			mems[i] = hot[r.Intn(len(hot))]
		case 3, 4: // same line as a hot address
			mems[i] = hot[r.Intn(len(hot))] + addr.Address(r.Intn(64))
		case 5, 6: // same page, different line
			mems[i] = hot[r.Intn(len(hot))]&^0xFFF + addr.Address(r.Intn(1<<12))
		case 7: // page-crosser neighbourhood (straddles page boundaries)
			mems[i] = hot[r.Intn(len(hot))]&^0xFFF + 0xFF8 + addr.Address(r.Intn(16))
		default: // cold scatter
			mems[i] = addr.Address(0x8000_0000 + r.Intn(1<<26))
		}
	}
	return mems
}

// Property: Hierarchy.DataBatch is bit-for-bit equivalent to the per-op
// AccessData/Access loop over random scattered batches — identical
// events (index, extra cycles, miss flags), identical final state in
// every level, and identical residency tracking (DataFree answers) —
// including batches full of duplicates, conflict-evicting sets, and
// mid-batch L1 flushes between batches.
func TestSortedRunMatchesPerOpQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bulk := DefaultHierarchy()
		perop := DefaultHierarchy()
		for run := 0; run < 8; run++ {
			// Interleaved instruction fetches (only the ITLB moves).
			pc := addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
			for i := 0; i < r.Intn(20); i++ {
				bulk.AccessInstr(pc)
				perop.AccessInstr(pc)
				pc += addr.Address(1 + r.Intn(2048))
			}
			n := 1 + r.Intn(300)
			mems := scatterBatch(r, n)
			type outcome struct {
				extra uint32
				dmiss bool
				l2    bool
			}
			events := bulk.DataBatch(mems, nil)
			ei := 0
			for i, a := range mems {
				var w outcome
				w.extra, w.dmiss = perop.AccessData(a)
				ce, l2, _ := perop.Access(a)
				w.extra += ce
				w.l2 = l2
				noteworthy := w.dmiss || w.l2 || w.extra != perop.L1Hit
				if ei < len(events) && events[ei].Index == i {
					ev := events[ei]
					ei++
					if !noteworthy || ev.Extra != w.extra || ev.DTLBMiss != w.dmiss || ev.L2Miss != w.l2 {
						t.Logf("seed %d run %d op %d (addr %x): event %+v, want %+v (noteworthy=%v)",
							seed, run, i, a, ev, w, noteworthy)
						return false
					}
				} else if noteworthy {
					t.Logf("seed %d run %d op %d (addr %x): missing event for %+v", seed, run, i, a, w)
					return false
				}
			}
			if ei != len(events) {
				t.Logf("seed %d run %d: %d spurious events", seed, run, len(events)-ei)
				return false
			}
			// Residency tracking must agree too: the batched engine's
			// guaranteed-hit proof consults it right after batches.
			for i := 0; i < 16; i++ {
				a := mems[r.Intn(n)] + addr.Address(r.Intn(128))
				if bulk.DataFree(a) != perop.DataFree(a) {
					t.Logf("seed %d run %d: DataFree(%x) diverged: %v vs %v",
						seed, run, a, bulk.DataFree(a), perop.DataFree(a))
					return false
				}
			}
			if r.Intn(6) == 0 {
				bulk.L1.Flush()
				perop.L1.Flush()
			}
			if !stateEqual(t, bulk.L1, perop.L1) || !stateEqual(t, bulk.L2, perop.L2) ||
				!stateEqual(t, bulk.DTLB, perop.DTLB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// A batch of eight touches to one line costs one probe: statistics
// count every op and the final recency stamp equals the per-op clock.
func TestDataBatchSingleProbeCounts(t *testing.T) {
	h := DefaultHierarchy()
	mems := make([]addr.Address, 8)
	for i := range mems {
		mems[i] = 0x8000_0000 + addr.Address(i*8)
	}
	events := h.DataBatch(mems, nil)
	// First op misses DTLB+L1+L2 (cold); the other seven are silent hits.
	if len(events) != 1 || events[0].Index != 0 || !events[0].DTLBMiss || !events[0].L2Miss {
		t.Fatalf("events = %+v, want one cold miss at index 0", events)
	}
	acc, misses := h.L1.Stats()
	if acc != 8 || misses != 1 {
		t.Fatalf("L1 stats = %d/%d, want 8 accesses, 1 miss", acc, misses)
	}
	if h.L1.clock != 8 {
		t.Fatalf("L1 clock = %d, want 8", h.L1.clock)
	}
	if !h.DataFree(mems[7]) {
		t.Fatal("DataFree should hold on the batch's final line")
	}
}
