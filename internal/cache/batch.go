package cache

// Sorted multi-run replay for scattered (non-strided) address batches —
// the access shape that defeats DataRun's line-segment coalescing: GC
// pointer chasing, hashtable probes, the interpreter's field traffic
// once a trace mixes objects. The batch is sorted by (page, line) index
// to link repeated lines/pages without hashing, then replayed in
// original access order so recency-update order, victim selection and
// the miss sequence stay bit-for-bit with the per-op oracle: a repeat
// access is retired as O(1) hit arithmetic only when its line provably
// survived — no fill has entered its set since the previous access of
// the batch left it resident and most-recently-used — and every other
// access takes a real probe.

import (
	"sort"

	"viprof/internal/addr"
)

// levelScratch is the reusable per-cache-level working state of one
// DataBatch call: the previous-same-line links recovered from the sort,
// the slot and set-fill epoch observed at each access, and the per-set
// fill counters (kept zeroed between batches via the dirty list).
type levelScratch struct {
	prev  []int32  // prev[i]: latest j<i with the same line, else -1
	slot  []int32  // slot[i]: way index holding the line after access i
	epoch []uint32 // epoch[i]: set-fill count right after access i
	fills []uint32 // per-set fill count within the current batch
	dirty []int32  // sets with nonzero fills, re-zeroed after the batch
}

func (ls *levelScratch) grow(n, sets int) {
	if cap(ls.prev) < n {
		ls.prev = make([]int32, n)
		ls.slot = make([]int32, n)
		ls.epoch = make([]uint32, n)
	}
	ls.prev = ls.prev[:n]
	ls.slot = ls.slot[:n]
	ls.epoch = ls.epoch[:n]
	if len(ls.fills) != sets {
		ls.fills = make([]uint32, sets)
		ls.dirty = ls.dirty[:0]
	}
}

func (ls *levelScratch) reset() {
	for _, s := range ls.dirty {
		ls.fills[s] = 0
	}
	ls.dirty = ls.dirty[:0]
}

// step replays access i at address a against cache c: O(1) hit
// arithmetic when the outcome is provable, a full probe otherwise.
//
// The fast path fires when a previous access p of this batch touched
// the same line and no fill has entered the line's set since (the
// per-set epoch is unchanged). Fills are the only operation that
// rewrites tags, so the line still occupies the slot p recorded, and a
// probe would scan to exactly that slot and hit — its whole state
// change is clock+1, accesses+1, and the slot's recency stamp moving to
// the new clock, which is applied directly. Any fill into the set
// (which may or may not have evicted this line) drops the access to a
// real probe, which handles residency, victim choice and statistics
// exactly as the per-op path.
func (ls *levelScratch) step(c *Cache, a addr.Address, i int) (bool, int) {
	line := uint64(a) >> c.lineBits
	set := int32(line & c.setMask)
	if p := ls.prev[i]; p >= 0 && ls.epoch[p] == ls.fills[set] {
		slot := ls.slot[p]
		c.clock++
		c.accesses++
		c.lru[slot] = c.clock
		ls.slot[i] = slot
		ls.epoch[i] = ls.fills[set]
		return true, int(slot)
	}
	hit, slot := c.probe(a)
	if !hit {
		if ls.fills[set] == 0 {
			ls.dirty = append(ls.dirty, set)
		}
		ls.fills[set]++
	}
	ls.slot[i] = int32(slot)
	ls.epoch[i] = ls.fills[set]
	return hit, slot
}

// scatterScratch is the reusable buffers of DataBatch.
type scatterScratch struct {
	keys []uint64
	perm []int32
	l1   levelScratch
	tlb  levelScratch
}

// sortPerm orders perm by (keys[perm[j]], perm[j]) ascending. Batches
// are usually small (tens of ops between interpreter horizon events),
// where insertion sort beats the generic path; large batches fall back
// to sort.Slice. The index tie-break makes the order total, so the
// result is deterministic.
func sortPerm(keys []uint64, perm []int32) {
	if len(perm) > 64 {
		sort.Slice(perm, func(a, b int) bool {
			ka, kb := keys[perm[a]], keys[perm[b]]
			if ka != kb {
				return ka < kb
			}
			return perm[a] < perm[b]
		})
		return
	}
	for i := 1; i < len(perm); i++ {
		p := perm[i]
		kp := keys[p]
		j := i - 1
		for j >= 0 && (keys[perm[j]] > kp || (keys[perm[j]] == kp && perm[j] > p)) {
			perm[j+1] = perm[j]
			j--
		}
		perm[j+1] = p
	}
}

// linkPrev fills prev with, for each access index, the latest earlier
// access sharing its key (-1 if none), by sorting a permutation by
// (key, index) and linking adjacent equal-key entries.
func linkPrev(keys []uint64, perm []int32, prev []int32) {
	n := len(keys)
	for i := 0; i < n; i++ {
		perm[i] = int32(i)
		prev[i] = -1
	}
	sortPerm(keys, perm)
	for j := 1; j < n; j++ {
		if keys[perm[j]] == keys[perm[j-1]] {
			prev[perm[j]] = perm[j-1]
		}
	}
}

// DataBatch replays len(mems) scattered data accesses through the
// hierarchy in original order — for each address a DTLB probe then a
// cache probe, exactly the per-op AccessData/Access pair — and appends
// a DataEvent for every op that was not a plain L1+DTLB hit. State
// updates are bit-for-bit identical to the per-op loop; repeated lines
// and pages within the batch retire as deferred-style hit arithmetic
// when no intervening fill can have evicted them (see levelScratch.step).
// L2 is driven sparsely, one real probe per L1 miss, as per-op.
//
// Contract: as for DataRun, no other data access may interleave with
// the ops of the batch (NMI handlers are instruction-only).
func (h *Hierarchy) DataBatch(mems []addr.Address, buf []DataEvent) []DataEvent {
	n := len(mems)
	if n == 0 {
		return buf
	}
	s := &h.scatter
	if cap(s.keys) < n {
		s.keys = make([]uint64, n)
		s.perm = make([]int32, n)
	}
	s.keys = s.keys[:n]
	s.perm = s.perm[:n]
	s.l1.grow(n, h.L1.cfg.Sets)
	for i, a := range mems {
		s.keys[i] = uint64(a) >> h.L1.lineBits
	}
	linkPrev(s.keys, s.perm, s.l1.prev)
	if h.DTLB != nil {
		s.tlb.grow(n, h.DTLB.cfg.Sets)
		for i, a := range mems {
			s.keys[i] = uint64(a) >> h.DTLB.lineBits
		}
		linkPrev(s.keys, s.perm, s.tlb.prev)
	}
	for i, a := range mems {
		var extra uint32
		var dmiss bool
		if h.DTLB != nil {
			if hit, _ := s.tlb.step(h.DTLB, a, i); !hit {
				extra, dmiss = h.TLBPenalty, true
			}
		}
		hit, _ := s.l1.step(h.L1, a, i)
		var l2miss, cohm bool
		if hit {
			extra += h.L1Hit
		} else {
			if h.Coh != nil && h.Coh.Transfer(a, h.CoreID) {
				cohm = true
				extra += h.CohPenalty
			}
			if h.L2.Access(a) {
				extra += h.L2Hit
			} else {
				extra += h.MemPenalty
				l2miss = true
			}
		}
		if dmiss || l2miss || cohm || extra != h.L1Hit {
			buf = append(buf, DataEvent{Index: i, Extra: extra, DTLBMiss: dmiss, L2Miss: l2miss, Coh: cohm})
		}
	}
	s.l1.reset()
	if h.DTLB != nil {
		s.tlb.reset()
	}
	// Residency tracking lands on the final op, exactly as the per-op
	// loop's last Access/AccessData calls would leave it.
	last := mems[n-1]
	h.lastDLine = uint64(last) >> h.L1.lineBits
	h.lastDLineGen = h.L1.gen
	h.haveDLine = true
	if h.DTLB != nil {
		h.lastDPage = uint64(last) >> h.DTLB.lineBits
		h.lastDPageGen = h.DTLB.gen
		h.haveDPage = true
	}
	return buf
}
