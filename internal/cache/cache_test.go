package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
)

func mustNew(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValid(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1, LineBits: 6},
		{Sets: 3, Ways: 1, LineBits: 6},
		{Sets: -4, Ways: 1, LineBits: 6},
		{Sets: 4, Ways: 0, LineBits: 6},
		{Sets: 4, Ways: 2, LineBits: 1},
		{Sets: 4, Ways: 2, LineBits: 13},
	}
	for _, cfg := range bad {
		if err := cfg.Valid(); err == nil {
			t.Errorf("Config %+v accepted", cfg)
		}
	}
	good := Config{Sets: 64, Ways: 4, LineBits: 6}
	if err := good.Valid(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if good.SizeBytes() != 64*4*64 {
		t.Errorf("SizeBytes = %d", good.SizeBytes())
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustNew(t, Config{Sets: 16, Ways: 2, LineBits: 6})
	a := addr.Address(0x1000)
	if c.Access(a) {
		t.Error("cold access hit")
	}
	if !c.Access(a) {
		t.Error("second access missed")
	}
	if !c.Access(a + 63) {
		t.Error("same-line access missed")
	}
	if c.Access(a + 64) {
		t.Error("next-line cold access hit")
	}
	acc, miss := c.Stats()
	if acc != 4 || miss != 2 {
		t.Errorf("stats = %d/%d, want 4/2", acc, miss)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 1 set, 2 ways. Three distinct lines thrash.
	c := mustNew(t, Config{Sets: 1, Ways: 2, LineBits: 6})
	a := addr.Address(0x0040) // avoid line address 0
	b := addr.Address(0x0080)
	d := addr.Address(0x00C0)
	c.Access(a) // miss, insert a
	c.Access(b) // miss, insert b
	c.Access(a) // hit, a most recent
	c.Access(d) // miss, evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a (MRU) was evicted")
	}
	if c.Contains(b) {
		t.Error("b (LRU) not evicted")
	}
	if !c.Contains(d) {
		t.Error("d not inserted")
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, Config{Sets: 8, Ways: 2, LineBits: 6})
	for i := 0; i < 16; i++ {
		c.Access(addr.Address(0x1000 + i*64))
	}
	c.Flush()
	for i := 0; i < 16; i++ {
		if c.Contains(addr.Address(0x1000 + i*64)) {
			t.Fatalf("line %d survived flush", i)
		}
	}
}

// Property: working sets that fit in one set's ways never miss after the
// first touch, regardless of access order.
func TestNoCapacityMissWithinWaysQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{Sets: 16, Ways: 4, LineBits: 6})
		if err != nil {
			return false
		}
		// 4 lines, all in the same set (stride = sets*lineSize).
		stride := 16 * 64
		base := addr.Address((rng.Intn(100) + 1) * stride)
		lines := []addr.Address{base, base + addr.Address(stride), base + addr.Address(2*stride), base + addr.Address(3*stride)}
		for _, l := range lines {
			c.Access(l)
		}
		for i := 0; i < 200; i++ {
			l := lines[rng.Intn(len(lines))]
			if !c.Access(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Contains agrees with a shadow model under random accesses
// for a direct-mapped cache (where replacement is deterministic).
func TestDirectMappedShadowQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(Config{Sets: 8, Ways: 1, LineBits: 6})
		if err != nil {
			return false
		}
		shadow := map[int]uint64{} // set -> resident line
		for i := 0; i < 500; i++ {
			a := addr.Address((rng.Intn(64) + 1) * 64)
			line := uint64(a) >> 6
			set := int(line % 8)
			wantHit := shadow[set] == line
			gotHit := c.Access(a)
			if wantHit != gotHit {
				return false
			}
			shadow[set] = line
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHierarchy(t *testing.T) {
	h := DefaultHierarchy()
	a := addr.Address(0x20000)
	cyc, miss, _ := h.Access(a)
	if !miss || cyc != h.MemPenalty {
		t.Errorf("cold access: %d cycles, miss=%v", cyc, miss)
	}
	cyc, miss, _ = h.Access(a)
	if miss || cyc != h.L1Hit {
		t.Errorf("warm access: %d cycles, miss=%v", cyc, miss)
	}
	// Evict from L1 but not from the much larger L2: walk enough lines
	// mapping to the same L1 set.
	l1 := h.L1.Config()
	stride := addr.Address(l1.Sets << l1.LineBits)
	for i := 1; i <= l1.Ways; i++ {
		h.Access(a + stride*addr.Address(i))
	}
	if h.L1.Contains(a) {
		t.Fatal("line survived L1 conflict sweep")
	}
	cyc, miss, _ = h.Access(a)
	if miss || cyc != h.L2Hit {
		t.Errorf("L2 hit path: %d cycles, miss=%v; want %d,false", cyc, miss, h.L2Hit)
	}
	h.Flush()
	if _, miss, _ := h.Access(a); !miss {
		t.Error("access after Flush did not miss")
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := DefaultHierarchy()
	rng := rand.New(rand.NewSource(1))
	addrs := make([]addr.Address, 4096)
	for i := range addrs {
		addrs[i] = addr.Address(rng.Intn(1<<22) + 4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i&4095])
	}
}

func TestTLBs(t *testing.T) {
	h := DefaultHierarchy()
	// Data TLB: first touch of a page misses, second hits.
	if _, miss := h.AccessData(0x10000); !miss {
		t.Error("cold DTLB access hit")
	}
	if _, miss := h.AccessData(0x10800); miss {
		t.Error("same-page DTLB access missed")
	}
	// Instruction TLB: only page changes probe.
	if _, miss := h.AccessInstr(0x20000); !miss {
		t.Error("cold ITLB access hit")
	}
	if _, miss := h.AccessInstr(0x20004); miss {
		t.Error("same-page instruction fetch probed ITLB")
	}
	if _, miss := h.AccessInstr(0x21000); !miss {
		t.Error("new-page instruction fetch did not miss cold ITLB")
	}
	// Returning to a mapped page hits.
	if _, miss := h.AccessInstr(0x20000); miss {
		t.Error("warm ITLB page missed")
	}
	h.Flush()
	if _, miss := h.AccessData(0x10000); !miss {
		t.Error("DTLB survived Flush")
	}
}

func TestNilTLBsAreNoOps(t *testing.T) {
	h := DefaultHierarchy()
	h.DTLB, h.ITLB = nil, nil
	if cyc, miss := h.AccessData(0x1000); cyc != 0 || miss {
		t.Error("nil DTLB charged")
	}
	if cyc, miss := h.AccessInstr(0x1000); cyc != 0 || miss {
		t.Error("nil ITLB charged")
	}
}
