package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
)

// runStrides are the stride shapes AccessRun must handle: degenerate
// (0, all ops on one line), sub-line, line-sized, and line- and
// page-crossing (larger than any configured line).
var runStrides = []uint32{0, 1, 3, 8, 16, 64, 100, 4096, 5000}

func randomConfig(r *rand.Rand) Config {
	return Config{
		Sets:     1 << r.Intn(7),
		Ways:     1 + r.Intn(8),
		LineBits: uint(2 + r.Intn(11)),
	}
}

// stateEqual compares complete cache state: geometry, every tag and
// recency stamp, the clock, and cumulative statistics.
func stateEqual(t *testing.T, a, b *Cache) bool {
	t.Helper()
	if a.cfg != b.cfg || a.clock != b.clock || a.accesses != b.accesses ||
		a.misses != b.misses || a.gen != b.gen {
		t.Logf("scalar state diverged: clock %d/%d acc %d/%d miss %d/%d gen %d/%d",
			a.clock, b.clock, a.accesses, b.accesses, a.misses, b.misses, a.gen, b.gen)
		return false
	}
	for i := range a.tags {
		if a.tags[i] != b.tags[i] || a.lru[i] != b.lru[i] {
			t.Logf("slot %d diverged: tag %x/%x lru %d/%d",
				i, a.tags[i], b.tags[i], a.lru[i], b.lru[i])
			return false
		}
	}
	return true
}

// Property: AccessRun is bit-for-bit equivalent to the per-op Access
// loop — identical miss sequences and identical final tag/LRU state —
// over random geometries, starts, strides (including 0 and larger than
// the line), and run lengths, starting from a randomly warmed cache.
func TestAccessRunMatchesPerOpQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := randomConfig(r)
		bulk := mustNew(t, cfg)
		perop := mustNew(t, cfg)
		// Warm both identically so runs start from arbitrary state.
		for i := 0; i < r.Intn(200); i++ {
			a := addr.Address(0x1000 + r.Intn(1<<16))
			bulk.Access(a)
			perop.Access(a)
		}
		for run := 0; run < 6; run++ {
			start := addr.Address(0x1000 + r.Intn(1<<18))
			stride := runStrides[r.Intn(len(runStrides))]
			n := 1 + r.Intn(400)
			var want []int
			for i := 0; i < n; i++ {
				if !perop.Access(start + addr.Address(uint64(i)*uint64(stride))) {
					want = append(want, i)
				}
			}
			got := bulk.AccessRun(start, stride, n, nil)
			if len(got) != len(want) {
				t.Logf("run %d (stride %d n %d): %d misses, want %d", run, stride, n, len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("run %d: miss %d at index %d, want %d", run, i, got[i], want[i])
					return false
				}
			}
			if r.Intn(8) == 0 {
				bulk.Flush()
				perop.Flush()
			}
			if !stateEqual(t, bulk, perop) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Hierarchy.DataRun is bit-for-bit equivalent to the per-op
// AccessData/Access loop — the recorded events carry exactly the
// per-op extra cycles and miss flags, and every level (L1, L2, DTLB)
// lands in identical final state — including with instruction fetches
// interleaved between runs (fetches touch only the ITLB, which is the
// independence DataRun's upfront replay relies on).
func TestDataRunMatchesPerOpQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		bulk := DefaultHierarchy()
		perop := DefaultHierarchy()
		for run := 0; run < 8; run++ {
			// Interleaved instruction fetches, often crossing pages.
			pc := addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
			for i := 0; i < r.Intn(30); i++ {
				bulk.AccessInstr(pc)
				perop.AccessInstr(pc)
				pc += addr.Address(1 + r.Intn(2048))
			}
			start := addr.Address(0x8000_0000 + r.Intn(1<<20)*8)
			stride := runStrides[r.Intn(len(runStrides))]
			n := 1 + r.Intn(500)
			type outcome struct {
				extra uint32
				dmiss bool
				l2    bool
			}
			events := bulk.DataRun(start, stride, n, nil)
			ei := 0
			for i := 0; i < n; i++ {
				a := start + addr.Address(uint64(i)*uint64(stride))
				var w outcome
				w.extra, w.dmiss = perop.AccessData(a)
				ce, l2, _ := perop.Access(a)
				w.extra += ce
				w.l2 = l2
				noteworthy := w.dmiss || w.l2 || w.extra != perop.L1Hit
				if ei < len(events) && events[ei].Index == i {
					ev := events[ei]
					ei++
					if !noteworthy || ev.Extra != w.extra || ev.DTLBMiss != w.dmiss || ev.L2Miss != w.l2 {
						t.Logf("run %d op %d: event %+v, want %+v (noteworthy=%v)", run, i, ev, w, noteworthy)
						return false
					}
				} else if noteworthy {
					t.Logf("run %d op %d: missing event for %+v", run, i, w)
					return false
				}
			}
			if ei != len(events) {
				t.Logf("run %d: %d spurious events", run, len(events)-ei)
				return false
			}
			if r.Intn(6) == 0 {
				// The kernel cold-flushes L1 directly at context switch.
				bulk.L1.Flush()
				perop.L1.Flush()
			}
			if !stateEqual(t, bulk.L1, perop.L1) || !stateEqual(t, bulk.L2, perop.L2) ||
				!stateEqual(t, bulk.DTLB, perop.DTLB) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// A run within one line is one probe plus arithmetic: the access and
// miss statistics still count every op, and the recency stamp must
// equal the per-op final clock so later eviction decisions agree.
func TestAccessRunSingleProbeCounts(t *testing.T) {
	c := mustNew(t, Config{Sets: 4, Ways: 2, LineBits: 6})
	miss := c.AccessRun(0x1000, 8, 8, nil) // 8 ops, all in one 64-byte line
	if len(miss) != 1 || miss[0] != 0 {
		t.Fatalf("miss positions = %v, want [0]", miss)
	}
	acc, misses := c.Stats()
	if acc != 8 || misses != 1 {
		t.Fatalf("stats = %d/%d, want 8 accesses, 1 miss", acc, misses)
	}
	if c.clock != 8 {
		t.Fatalf("clock = %d, want 8", c.clock)
	}
}
