package core

// Failure injection (DESIGN.md §7): the pipeline must degrade, not
// lie, when parts of it are damaged — torn code-map writes, missing
// maps, sample-buffer overflow, samples in reclaimed code.

import (
	"strings"
	"testing"

	"viprof/internal/hpc"
	"viprof/internal/jvm"
	"viprof/internal/jvm/jit"
	"viprof/internal/oprofile"
)

// TestTornMapFile: a map file truncated mid-line (a crash during the
// epoch write) must fail parsing loudly rather than silently
// misattribute.
func TestTornMapFile(t *testing.T) {
	s, vm, proc, m := runSession(t, stdConfig(), 128<<10)
	_ = s
	disk := m.Kern.Disk()
	// Tear the epoch-0 map: keep the first half of its bytes.
	path := MapPath(proc.PID, 0)
	data, err := disk.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 20 {
		t.Skip("map too small to tear meaningfully")
	}
	disk.Remove(path)
	disk.Append(path, data[:len(data)/2+3]) // mid-line cut
	_, _, err = Vipreport(disk, s.Images(vm), map[string]int{proc.Name: proc.PID}, s.Events())
	if err == nil {
		t.Fatal("torn map file accepted silently")
	}
	if !strings.Contains(err.Error(), "map") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestMissingMapsDegradeToUnresolved: deleting all code maps must not
// break report generation; JIT samples degrade to "(no symbols)".
func TestMissingMapsDegradeToUnresolved(t *testing.T) {
	s, vm, proc, m := runSession(t, stdConfig(), 128<<10)
	disk := m.Kern.Disk()
	for _, p := range disk.List() {
		if strings.HasPrefix(p, MapDir) {
			disk.Remove(p)
		}
	}
	rep, res, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	jitRow, ok := rep.FindImage(oprofile.JITImageName)
	if !ok || jitRow.Counts[hpc.GlobalPowerEvents] == 0 {
		t.Fatal("JIT samples vanished with the maps")
	}
	for _, row := range rep.Rows {
		if row.Image == oprofile.JITImageName && row.Symbol != oprofile.NoSymbols {
			t.Errorf("JIT symbol %q resolved with no maps on disk", row.Symbol)
		}
	}
	if res.Unresolved() == 0 {
		t.Error("resolver reported no unresolved samples")
	}
}

// TestBufferOverflowConservation: with a tiny driver buffer the
// daemon must still produce a consistent report — dropped samples are
// counted, logged samples are conserved end to end.
func TestBufferOverflowConservation(t *testing.T) {
	m := newTestMachine()
	s, err := Start(m, Config{
		Events:    []oprofile.EventConfig{{Event: hpc.GlobalPowerEvents, Period: 9_000}},
		BufferCap: 16,
		// A slow daemon guarantees overflow between drains.
		Daemon: oprofile.DaemonConfig{WakeCycles: 3_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, proc, err := s.LaunchJVM(buildWorkload(300, 300), jvm.Config{HeapBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	s.Shutdown()

	st := s.Prof.Driver.Stats()
	if st.Dropped == 0 {
		t.Fatalf("tiny buffer never overflowed: %+v", st)
	}
	if st.Logged+st.Dropped != st.NMIs {
		t.Errorf("sample accounting broken: logged %d + dropped %d != NMIs %d",
			st.Logged, st.Dropped, st.NMIs)
	}
	// Everything logged must appear in the report totals.
	rep, _, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, ev := range s.Events() {
		total += rep.Totals[ev]
	}
	if total != st.Logged {
		t.Errorf("report totals %d != logged %d", total, st.Logged)
	}
}

// TestSamplesInReclaimedCode: a sample taken in a body that is later
// freed and whose address range is reused still resolves to the method
// that owned the range *at sampling time* (the backward search's whole
// point).
func TestSamplesInReclaimedCode(t *testing.T) {
	h := newProtoHarness(t)
	// Compile A, sample it in epoch 0, recompile A (old body dies),
	// collect twice so the from-space is reused, then compile B —
	// possibly over A's old range.
	a0 := h.compile(0, 30, jit.Baseline)
	samplePC := a0.Start() + 12
	sampleEpoch := h.heap.Epoch()
	wantSig := a0.Method.Signature()

	h.compile(0, 25, jit.Opt) // old baseline body of method 0 dies
	h.heap.Collect()
	h.heap.Collect()
	h.compile(1, 40, jit.Baseline)
	h.heap.Collect()
	h.agent.OnExit(h.heap.Epoch())

	chain, err := ReadMapChain(h.m.Kern.Disk(), h.proc.PID)
	if err != nil {
		t.Fatal(err)
	}
	entry, _, ok := chain.Resolve(sampleEpoch, samplePC)
	if !ok {
		t.Fatal("stale sample unresolvable")
	}
	if entry.Sig != wantSig {
		t.Errorf("stale sample resolved to %q, want %q", entry.Sig, wantSig)
	}
}

// TestAgentSurvivesWriteToFullBuffer: the VM agent writing a map while
// the profiler's sample buffer is overflowing must not deadlock or
// corrupt either stream.
func TestAgentSurvivesOverflowingDriver(t *testing.T) {
	m := newTestMachine()
	s, err := Start(m, Config{
		Events:    []oprofile.EventConfig{{Event: hpc.GlobalPowerEvents, Period: 9_000}},
		BufferCap: 8,
		Daemon:    oprofile.DaemonConfig{WakeCycles: 5_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, proc, err := s.LaunchJVM(buildWorkload(200, 300), jvm.Config{
		HeapBytes: 96 << 10, AOSThreshold: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	s.Shutdown()
	agent := s.Agents[proc.PID]
	if agent.Stats().MapsWritten == 0 {
		t.Fatal("agent wrote nothing under pressure")
	}
	chain, err := ReadMapChain(m.Kern.Disk(), proc.PID)
	if err != nil {
		t.Fatalf("maps corrupted: %v", err)
	}
	if chain.Epochs() == 0 {
		t.Error("no epochs readable")
	}
}

// TestUnregisteredProcJITKeys: JIT keys whose process has no chain
// (e.g. an archive missing the manifest entry) degrade to NoSymbols.
func TestUnregisteredProcJITKeys(t *testing.T) {
	res := &Resolver{
		ELF:       &oprofile.ELFResolver{Images: nil},
		BootMaps:  map[string]BootMap{},
		Chains:    map[int]*MapChain{},
		PIDByProc: map[string]int{},
	}
	img, sym := res.Resolve(oprofile.Key{JIT: true, Proc: "ghost", Epoch: 3, Off: 0x6000_0000})
	if img != oprofile.JITImageName || sym != oprofile.NoSymbols {
		t.Errorf("ghost JIT key resolved to %s/%s", img, sym)
	}
	// Known proc, empty chain.
	res.PIDByProc["vm"] = 9
	res.Chains[9] = NewMapChain(nil)
	img, sym = res.Resolve(oprofile.Key{JIT: true, Proc: "vm", Epoch: 0, Off: 0x6000_0000})
	if sym != oprofile.NoSymbols {
		t.Errorf("empty chain resolved to %s/%s", img, sym)
	}
}
