package core

// Failure injection (DESIGN.md §7): the pipeline must degrade, not
// lie, when parts of it are damaged — torn code-map writes, missing
// maps, sample-buffer overflow, samples in reclaimed code.

import (
	"bytes"
	"strings"
	"testing"

	"viprof/internal/hpc"
	"viprof/internal/jvm"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// TestTornMapFile: a map file torn on disk (a crash after the rename,
// media damage) no longer fails the whole report — the salvage reader
// recovers the intact records, the loss is accounted in the Integrity
// section, and the durable resolver refuses to attribute anything the
// damage could have shadowed.
func TestTornMapFile(t *testing.T) {
	s, vm, proc, m := runSession(t, stdConfig(), 128<<10)
	disk := m.Kern.Disk()
	// Tear the epoch-0 map: keep the first half of its bytes.
	path := MapPath(proc.PID, 0)
	data, err := disk.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 20 {
		t.Skip("map too small to tear meaningfully")
	}
	disk.Remove(path)
	disk.Append(path, data[:len(data)/2+3]) // mid-record cut
	rep, _, err := Vipreport(disk, s.Images(vm), map[string]int{proc.Name: proc.PID}, s.Events())
	if err != nil {
		t.Fatalf("torn map file should salvage, not fail: %v", err)
	}
	if rep.Integrity == nil {
		t.Fatal("no Integrity section")
	}
	if !rep.Integrity.Degraded() {
		t.Fatal("torn map file not surfaced as degradation")
	}
	var mi *oprofile.MapIntegrity
	for i := range rep.Integrity.Maps {
		if rep.Integrity.Maps[i].PID == proc.PID {
			mi = &rep.Integrity.Maps[i]
		}
	}
	if mi == nil {
		t.Fatal("no map integrity entry for the VM")
	}
	if mi.TornFiles == 0 {
		t.Errorf("torn file not counted: %+v", *mi)
	}
	if mi.DroppedRecords == 0 && mi.DroppedBytes == 0 {
		t.Errorf("loss not accounted: %+v", *mi)
	}
	// No misattribution: whatever the durable resolver still attributes
	// must match the undamaged chain.
	undamaged := NewMapChain(nil)
	{
		full, err := readChainFromBytes(t, disk, proc.PID, path, data)
		if err != nil {
			t.Fatal(err)
		}
		undamaged = full
	}
	torn, err := ReadMapChain(disk, proc.PID)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < undamaged.Epochs(); e++ {
		for _, want := range undamaged.Entries(e) {
			got, _, found := torn.ResolveDurable(e, want.Start)
			if found && got.Sig != want.Sig {
				t.Errorf("epoch %d pc %v: torn chain says %q, truth is %q",
					e, want.Start, got.Sig, want.Sig)
			}
		}
	}
}

// readChainFromBytes restores the original file contents, reads the
// chain, then re-tears the file (helper for comparing a torn chain
// against the undamaged truth).
func readChainFromBytes(t *testing.T, disk *kernel.Disk, pid int, path string, original []byte) (*MapChain, error) {
	t.Helper()
	torn, err := disk.Read(path)
	if err != nil {
		return nil, err
	}
	tornCopy := append([]byte(nil), torn...)
	disk.Remove(path)
	disk.Append(path, original)
	chain, err := ReadMapChain(disk, pid)
	disk.Remove(path)
	disk.Append(path, tornCopy)
	return chain, err
}

// TestTornWriteSweep: truncate a framed epoch map at every byte offset;
// the salvage reader must recover an exact entry prefix with the loss
// accounted — never a corrupted or fabricated entry.
func TestTornWriteSweep(t *testing.T) {
	entries := []MapEntry{
		{Start: 0x6000_0000, Size: 64, Epoch: 0, Level: "base", Sig: "LA;m0()V"},
		{Start: 0x6000_0100, Size: 128, Epoch: 0, Level: "opt", Sig: "LA;m1(I)I"},
		{Start: 0x6000_0400, Size: 96, Epoch: 1, Level: "base", Sig: "LB;m2()V"},
		{Start: 0x6000_0800, Size: 32, Epoch: 1, Level: "base", Sig: "LB;m3(J)J"},
		{Start: 0x6000_0a00, Size: 256, Epoch: 2, Level: "opt", Sig: "LC;m4()V"},
		{Start: 0x6000_1000, Size: 48, Epoch: 2, Level: "base", Sig: "LC;m5()V"},
	}
	var buf bytes.Buffer
	if err := WriteMapFile(&buf, entries); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut <= len(full); cut++ {
		got, sal, trailerOK, err := salvageMapData(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: structural error from salvage: %v", cut, err)
		}
		// Recovered entries must be an exact prefix of the original.
		if len(got) > len(entries) {
			t.Fatalf("cut %d: fabricated entries: %d > %d", cut, len(got), len(entries))
		}
		for i := range got {
			if got[i] != entries[i] {
				t.Fatalf("cut %d: entry %d corrupted: %+v want %+v", cut, i, got[i], entries[i])
			}
		}
		// Loss must always be visible: either everything survived
		// (trailer intact) or the salvage accounting shows the damage.
		complete := cut == len(full)
		if complete {
			if !trailerOK || sal.Lossy() || len(got) != len(entries) {
				t.Fatalf("cut %d: complete file misread: %d entries, trailerOK=%v, %+v",
					cut, len(got), trailerOK, sal)
			}
		} else if trailerOK && !sal.Lossy() && cut > 0 {
			t.Fatalf("cut %d: truncated file reads as complete and clean", cut)
		}
	}
}

// TestTornWriteByteFlips: flipping any single byte must never fabricate
// an entry that was not written.
func TestTornWriteByteFlips(t *testing.T) {
	entries := []MapEntry{
		{Start: 0x6000_0000, Size: 64, Epoch: 0, Level: "base", Sig: "LA;m0()V"},
		{Start: 0x6000_0100, Size: 128, Epoch: 1, Level: "opt", Sig: "LA;m1(I)I"},
	}
	valid := map[MapEntry]bool{}
	for _, e := range entries {
		valid[e] = true
	}
	var buf bytes.Buffer
	if err := WriteMapFile(&buf, entries); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for pos := 0; pos < len(full); pos++ {
		mut := append([]byte(nil), full...)
		mut[pos] ^= 0x41
		got, sal, trailerOK, err := salvageMapData(mut)
		if err != nil {
			// The flip produced a checksum-valid but unparseable record:
			// impossible for a single-byte flip against CRC-32 unless it
			// hit the payload and the checksum simultaneously. Any error
			// is loud, which satisfies the contract.
			continue
		}
		for _, e := range got {
			if !valid[e] {
				t.Fatalf("flip at %d fabricated entry %+v", pos, e)
			}
		}
		if len(got) < len(entries) && !sal.Lossy() && trailerOK {
			t.Fatalf("flip at %d lost an entry silently", pos)
		}
	}
}

// TestMissingMapsDegradeToUnresolved: deleting all code maps must not
// break report generation; JIT samples degrade to "(no symbols)".
func TestMissingMapsDegradeToUnresolved(t *testing.T) {
	s, vm, proc, m := runSession(t, stdConfig(), 128<<10)
	disk := m.Kern.Disk()
	for _, p := range disk.List() {
		if strings.HasPrefix(p, MapDir) {
			disk.Remove(p)
		}
	}
	rep, res, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	jitRow, ok := rep.FindImage(oprofile.JITImageName)
	if !ok || jitRow.Counts[hpc.GlobalPowerEvents] == 0 {
		t.Fatal("JIT samples vanished with the maps")
	}
	for _, row := range rep.Rows {
		if row.Image == oprofile.JITImageName && row.Symbol != oprofile.NoSymbols {
			t.Errorf("JIT symbol %q resolved with no maps on disk", row.Symbol)
		}
	}
	if res.Unresolved() == 0 {
		t.Error("resolver reported no unresolved samples")
	}
}

// TestBufferOverflowConservation: with a tiny driver buffer the
// daemon must still produce a consistent report — dropped samples are
// counted, logged samples are conserved end to end.
func TestBufferOverflowConservation(t *testing.T) {
	m := newTestMachine()
	s, err := Start(m, Config{
		Events:    []oprofile.EventConfig{{Event: hpc.GlobalPowerEvents, Period: 9_000}},
		BufferCap: 16,
		// A slow daemon guarantees overflow between drains.
		Daemon: oprofile.DaemonConfig{WakeCycles: 3_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, proc, err := s.LaunchJVM(buildWorkload(300, 300), jvm.Config{HeapBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	s.Shutdown()

	st := s.Prof.Driver.Stats()
	if st.Dropped == 0 {
		t.Fatalf("tiny buffer never overflowed: %+v", st)
	}
	if st.Logged+st.Dropped != st.NMIs {
		t.Errorf("sample accounting broken: logged %d + dropped %d != NMIs %d",
			st.Logged, st.Dropped, st.NMIs)
	}
	// Everything logged must appear in the report totals.
	rep, _, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, ev := range s.Events() {
		total += rep.Totals[ev]
	}
	if total != st.Logged {
		t.Errorf("report totals %d != logged %d", total, st.Logged)
	}
}

// TestSamplesInReclaimedCode: a sample taken in a body that is later
// freed and whose address range is reused still resolves to the method
// that owned the range *at sampling time* (the backward search's whole
// point).
func TestSamplesInReclaimedCode(t *testing.T) {
	h := newProtoHarness(t)
	// Compile A, sample it in epoch 0, recompile A (old body dies),
	// collect twice so the from-space is reused, then compile B —
	// possibly over A's old range.
	a0 := h.compile(0, 30, jit.Baseline)
	samplePC := a0.Start() + 12
	sampleEpoch := h.heap.Epoch()
	wantSig := a0.Method.Signature()

	h.compile(0, 25, jit.Opt) // old baseline body of method 0 dies
	h.heap.Collect()
	h.heap.Collect()
	h.compile(1, 40, jit.Baseline)
	h.heap.Collect()
	h.agent.OnExit(h.heap.Epoch())

	chain, err := ReadMapChain(h.m.Kern.Disk(), h.proc.PID)
	if err != nil {
		t.Fatal(err)
	}
	entry, _, ok := chain.Resolve(sampleEpoch, samplePC)
	if !ok {
		t.Fatal("stale sample unresolvable")
	}
	if entry.Sig != wantSig {
		t.Errorf("stale sample resolved to %q, want %q", entry.Sig, wantSig)
	}
}

// TestAgentSurvivesWriteToFullBuffer: the VM agent writing a map while
// the profiler's sample buffer is overflowing must not deadlock or
// corrupt either stream.
func TestAgentSurvivesOverflowingDriver(t *testing.T) {
	m := newTestMachine()
	s, err := Start(m, Config{
		Events:    []oprofile.EventConfig{{Event: hpc.GlobalPowerEvents, Period: 9_000}},
		BufferCap: 8,
		Daemon:    oprofile.DaemonConfig{WakeCycles: 5_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, proc, err := s.LaunchJVM(buildWorkload(200, 300), jvm.Config{
		HeapBytes: 96 << 10, AOSThreshold: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	s.Shutdown()
	agent := s.Agents[proc.PID]
	if agent.Stats().MapsWritten == 0 {
		t.Fatal("agent wrote nothing under pressure")
	}
	chain, err := ReadMapChain(m.Kern.Disk(), proc.PID)
	if err != nil {
		t.Fatalf("maps corrupted: %v", err)
	}
	if chain.Epochs() == 0 {
		t.Error("no epochs readable")
	}
}

// TestUnregisteredProcJITKeys: JIT keys whose process has no chain
// (e.g. an archive missing the manifest entry) degrade to NoSymbols.
func TestUnregisteredProcJITKeys(t *testing.T) {
	res := &Resolver{
		ELF:       &oprofile.ELFResolver{Images: nil},
		BootMaps:  map[string]BootMap{},
		Chains:    map[int]*MapChain{},
		PIDByProc: map[string]int{},
	}
	img, sym := res.Resolve(oprofile.Key{JIT: true, Proc: "ghost", Epoch: 3, Off: 0x6000_0000})
	if img != oprofile.JITImageName || sym != oprofile.NoSymbols {
		t.Errorf("ghost JIT key resolved to %s/%s", img, sym)
	}
	// Known proc, empty chain.
	res.PIDByProc["vm"] = 9
	res.Chains[9] = NewMapChain(nil)
	img, sym = res.Resolve(oprofile.Key{JIT: true, Proc: "vm", Epoch: 0, Off: 0x6000_0000})
	if sym != oprofile.NoSymbols {
		t.Errorf("empty chain resolved to %s/%s", img, sym)
	}
}
