package core

// The paper's future work (§5) includes profiling "multiple
// concurrently executing software stacks". The registry, agent and
// post-processing already key everything by pid, so one VIProf session
// can profile several VMs at once; these tests pin that down.

import (
	"strings"
	"testing"

	"viprof/internal/jvm"
	"viprof/internal/jvm/classes"
	"viprof/internal/oprofile"
)

func TestTwoConcurrentVMs(t *testing.T) {
	m := newTestMachine()
	s, err := Start(m, stdConfig())
	if err != nil {
		t.Fatal(err)
	}

	// Two different programs in two VM processes, timesharing one core.
	progA := buildWorkload(150, 300)
	vmA, procA, err := s.LaunchJVM(progA, jvm.Config{HeapBytes: 128 << 10, AOSThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	progB := buildSecondWorkload(150, 300)
	vmB, procB, err := s.LaunchJVM(progB, jvm.Config{HeapBytes: 128 << 10, AOSThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if procA.PID == procB.PID {
		t.Fatal("both VMs share a pid")
	}
	if !s.Runtime.Registered(procA.PID) || !s.Runtime.Registered(procB.PID) {
		t.Fatal("JIT regions not both registered")
	}

	if err := m.Kern.Run(40_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vmA.Finished() || !vmB.Finished() {
		t.Fatalf("VMs failed: %v / %v", vmA.Err(), vmB.Err())
	}
	s.Shutdown()

	// Each VM has its own agent and map chain.
	if len(s.Agents) != 2 {
		t.Fatalf("%d agents", len(s.Agents))
	}
	for pid, a := range s.Agents {
		if a.Stats().MapsWritten == 0 {
			t.Errorf("vm %d wrote no maps", pid)
		}
	}

	// One report resolves both VMs' JIT samples to their own methods.
	// Both processes are named "jikesrvm", so the proc-name keyed JIT
	// lookup must be disambiguated per pid — this is the multi-stack
	// wrinkle: we report each VM separately, restricting to its pid.
	rep, res, err := s.Report(s.Images(vmA, vmB), map[string]int{
		procA.Name: procA.PID,
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	foundA := false
	for _, row := range rep.Rows {
		if strings.Contains(row.Symbol, "Scanner.parseLine") {
			foundA = true
		}
	}
	if !foundA {
		t.Error("VM A's hot method missing from report")
	}
	// VM B's methods resolve through its own chain.
	repB, _, err := s.Report(s.Images(vmA, vmB), map[string]int{
		procB.Name: procB.PID,
	})
	if err != nil {
		t.Fatal(err)
	}
	foundB := false
	for _, row := range repB.Rows {
		if strings.Contains(row.Symbol, "xmlparse.Parser.scanToken") {
			foundB = true
		}
	}
	if !foundB {
		for _, r := range repB.Rows[:min(len(repB.Rows), 10)] {
			t.Logf("row: %s %s", r.Image, r.Symbol)
		}
		t.Error("VM B's hot method missing from report")
	}

	// Sample conservation: both VMs produced JIT samples.
	if agg, ok := rep.FindImage(oprofile.JITImageName); !ok || agg.Counts[0] == 0 {
		t.Error("no JIT samples aggregated")
	}
}

// buildSecondWorkload is a differently-named program so the two VMs'
// reports are distinguishable.
func buildSecondWorkload(outer, inner int32) *classes.Program {
	p := buildWorkload(outer, inner)
	for _, m := range p.Methods {
		switch {
		case strings.Contains(m.Class, "Scanner"):
			m.Class = "org.apache.xmlparse.Parser"
			m.Name = "scanToken"
		case strings.Contains(m.Class, "Main"):
			m.Class = "org.apache.xmlparse.Main"
		}
	}
	p.Name = "xmlparse"
	return p
}
