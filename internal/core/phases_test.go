package core

import (
	"bytes"
	"strings"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/hpc"
	"viprof/internal/jvm/jit"
	"viprof/internal/oprofile"
)

func TestPhaseBreakdown(t *testing.T) {
	// Synthetic counts: epoch 0 dominated by A, epoch 2 by B, epoch 1
	// silent.
	chain := NewMapChain([][]MapEntry{
		{{Start: 100, Size: 50, Sig: "A", Level: "base"}},
		nil,
		{{Start: 200, Size: 50, Sig: "B", Level: "opt"}},
	})
	res := &Resolver{
		ELF:       &oprofile.ELFResolver{},
		BootMaps:  map[string]BootMap{},
		Chains:    map[int]*MapChain{3: chain},
		PIDByProc: map[string]int{"jikesrvm": 3},
	}
	counts := map[oprofile.Key]uint64{
		{Event: hpc.GlobalPowerEvents, JIT: true, Proc: "jikesrvm", Epoch: 0, Off: 110}: 9,
		{Event: hpc.GlobalPowerEvents, JIT: true, Proc: "jikesrvm", Epoch: 0, Off: 120}: 4,
		{Event: hpc.GlobalPowerEvents, JIT: true, Proc: "jikesrvm", Epoch: 2, Off: 210}: 7,
		// Another process's samples must not leak in.
		{Event: hpc.GlobalPowerEvents, JIT: true, Proc: "other", Epoch: 0, Off: 110}: 99,
		// Non-JIT samples are out of scope for the phase view.
		{Event: hpc.GlobalPowerEvents, Image: "vmlinux", Off: 5}: 50,
	}
	rows := PhaseBreakdown(counts, res, "jikesrvm", hpc.GlobalPowerEvents)
	if len(rows) != 3 {
		t.Fatalf("%d phase rows, want 3", len(rows))
	}
	if rows[0].Counts[hpc.GlobalPowerEvents] != 13 || rows[0].TopSig != "A" {
		t.Errorf("epoch 0 = %+v", rows[0])
	}
	if rows[1].Counts[hpc.GlobalPowerEvents] != 0 {
		t.Errorf("silent epoch 1 = %+v", rows[1])
	}
	if rows[2].TopSig != "B" || rows[2].Counts[hpc.GlobalPowerEvents] != 7 {
		t.Errorf("epoch 2 = %+v", rows[2])
	}
	var buf bytes.Buffer
	if err := FormatPhases(&buf, rows, hpc.GlobalPowerEvents); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hottest method") {
		t.Errorf("format:\n%s", buf.String())
	}
}

func TestPhaseBreakdownEndToEnd(t *testing.T) {
	s, vm, proc, m := runSession(t, stdConfig(), 128<<10)
	data, err := m.Kern.Disk().Read(oprofile.SampleFile)
	if err != nil {
		t.Fatal(err)
	}
	counts, err := oprofile.ReadCounts(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewResolver(m.Kern.Disk(), s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	rows := PhaseBreakdown(counts, res, proc.Name, hpc.GlobalPowerEvents)
	if len(rows) == 0 {
		t.Fatal("no phases")
	}
	var total uint64
	resolvedTops := 0
	for _, r := range rows {
		total += r.Counts[hpc.GlobalPowerEvents]
		if r.TopSig != "" && r.TopSig != oprofile.NoSymbols {
			resolvedTops++
		}
	}
	if total == 0 {
		t.Fatal("phase rows empty")
	}
	if resolvedTops == 0 {
		t.Error("no epoch has a resolved hottest method")
	}
}

func TestDiffReports(t *testing.T) {
	mk := func(aCount, bCount uint64) *oprofile.Report {
		counts := map[oprofile.Key]uint64{
			{Event: hpc.GlobalPowerEvents, Image: "x", Off: 1}: aCount,
			{Event: hpc.GlobalPowerEvents, Image: "y", Off: 2}: bCount,
		}
		return oprofile.BuildReport(counts, &oprofile.ELFResolver{}, []hpc.Event{hpc.GlobalPowerEvents})
	}
	before := mk(90, 10) // x: 90%, y: 10%
	after := mk(50, 50)  // x: 50%, y: 50%
	rows := DiffReports(before, after, hpc.GlobalPowerEvents)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Both moved by 40 points, opposite signs.
	for _, r := range rows {
		switch r.Image {
		case "x":
			if r.Delta > -39 || r.Before < 89 {
				t.Errorf("x row = %+v", r)
			}
		case "y":
			if r.Delta < 39 {
				t.Errorf("y row = %+v", r)
			}
		}
	}
	var buf bytes.Buffer
	if err := FormatDiff(&buf, rows, 1); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Errorf("maxRows not applied:\n%s", buf.String())
	}
}

func TestDiffHandlesDisjointSymbols(t *testing.T) {
	before := oprofile.BuildReport(map[oprofile.Key]uint64{
		{Event: hpc.GlobalPowerEvents, Image: "only-before", Off: 1}: 5,
	}, &oprofile.ELFResolver{}, []hpc.Event{hpc.GlobalPowerEvents})
	after := oprofile.BuildReport(map[oprofile.Key]uint64{
		{Event: hpc.GlobalPowerEvents, Image: "only-after", Off: 1}: 5,
	}, &oprofile.ELFResolver{}, []hpc.Event{hpc.GlobalPowerEvents})
	rows := DiffReports(before, after, hpc.GlobalPowerEvents)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Image == "only-before" && (r.After != 0 || r.Delta != -100) {
			t.Errorf("vanished symbol: %+v", r)
		}
		if r.Image == "only-after" && (r.Before != 0 || r.Delta != 100) {
			t.Errorf("appeared symbol: %+v", r)
		}
	}
}

func TestAnnotateBody(t *testing.T) {
	h := newProtoHarness(t)
	body := h.compile(0, 20, jit.Baseline)
	h.heap.Collect() // move it once so the chain records two placements
	h.agent.OnExit(h.heap.Epoch())
	chain, err := ReadMapChain(h.m.Kern.Disk(), h.proc.PID)
	if err != nil {
		t.Fatal(err)
	}
	// Samples: one in epoch 0 (old address), one at the current address,
	// both inside bytecode 3's machine-code range.
	oldStart := chain.Entries(0)[0].Start
	off3 := addr.Address(body.BCOff[3])
	counts := map[oprofile.Key]uint64{
		{Event: hpc.GlobalPowerEvents, JIT: true, Proc: "jikesrvm", Epoch: 0, Off: oldStart + off3}:     2,
		{Event: hpc.GlobalPowerEvents, JIT: true, Proc: "jikesrvm", Epoch: 1, Off: body.Start() + off3}: 3,
		// A sample in another process must be ignored.
		{Event: hpc.GlobalPowerEvents, JIT: true, Proc: "other", Epoch: 1, Off: body.Start() + off3}: 9,
	}
	rows := AnnotateBody(counts, chain, body, "jikesrvm")
	if len(rows) != 20 {
		t.Fatalf("%d rows for a 20-bytecode method", len(rows))
	}
	if rows[3].Counts[hpc.GlobalPowerEvents] != 5 {
		for _, r := range rows {
			if r.Counts[hpc.GlobalPowerEvents] > 0 {
				t.Logf("bci %d: %d", r.BCI, r.Counts[hpc.GlobalPowerEvents])
			}
		}
		t.Errorf("bytecode 3 got %d samples, want 5 (old+new placements)",
			rows[3].Counts[hpc.GlobalPowerEvents])
	}
	var total uint64
	for _, r := range rows {
		total += r.Counts[hpc.GlobalPowerEvents]
	}
	if total != 5 {
		t.Errorf("total annotated %d, want 5", total)
	}
	var buf bytes.Buffer
	if err := FormatAnnotation(&buf, body.Method.Signature(), rows, []hpc.Event{hpc.GlobalPowerEvents}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "annotated") {
		t.Error("format output wrong")
	}
}
