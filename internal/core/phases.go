package core

import (
	"fmt"
	"io"

	"viprof/internal/hpc"
	"viprof/internal/oprofile"
)

// Phase analysis. The paper's motivating project (VIVA) wants profiles
// that expose "the dynamically changing characteristics of program
// behavior" (§1) — phases. VIProf's epoch tags give a free time axis:
// each JIT sample carries the GC epoch it was taken in, so grouping
// samples by epoch yields a phase timeline without any extra runtime
// machinery.

// PhaseRow is one epoch's sample distribution for one process.
type PhaseRow struct {
	Epoch  int
	Counts [hpc.NumEvents]uint64
	// TopSig is the hottest resolved method of the epoch (by the
	// primary event), with its count.
	TopSig   string
	TopCount uint64
}

// PhaseBreakdown groups a process's JIT samples by execution epoch and
// resolves each epoch's hottest method. proc is the VM process name as
// it appears in sample keys.
func PhaseBreakdown(counts map[oprofile.Key]uint64, res *Resolver, proc string,
	primary hpc.Event) []PhaseRow {
	type sigCount map[string]uint64
	perEpoch := make(map[int]*PhaseRow)
	sigs := make(map[int]sigCount)
	maxEpoch := 0
	for k, c := range counts {
		if !k.JIT || k.Proc != proc {
			continue
		}
		row, ok := perEpoch[k.Epoch]
		if !ok {
			row = &PhaseRow{Epoch: k.Epoch}
			perEpoch[k.Epoch] = row
			sigs[k.Epoch] = make(sigCount)
		}
		row.Counts[k.Event] += c
		if k.Event == primary {
			_, sym := res.Resolve(k)
			sigs[k.Epoch][sym] += c
		}
		if k.Epoch > maxEpoch {
			maxEpoch = k.Epoch
		}
	}
	out := make([]PhaseRow, 0, len(perEpoch))
	for e := 0; e <= maxEpoch; e++ {
		row, ok := perEpoch[e]
		if !ok {
			row = &PhaseRow{Epoch: e}
		}
		for sym, c := range sigs[e] {
			if c > row.TopCount || (c == row.TopCount && sym < row.TopSig) {
				row.TopSig, row.TopCount = sym, c
			}
		}
		out = append(out, *row)
	}
	return out
}

// FormatPhases renders the phase timeline.
func FormatPhases(w io.Writer, rows []PhaseRow, primary hpc.Event) error {
	if _, err := fmt.Fprintf(w, "%-7s %-9s %s\n", "epoch", "samples", "hottest method"); err != nil {
		return err
	}
	for _, r := range rows {
		top := r.TopSig
		if top == "" {
			top = "-"
		}
		if _, err := fmt.Fprintf(w, "%-7d %-9d %s\n", r.Epoch, r.Counts[primary], top); err != nil {
			return err
		}
	}
	return nil
}
