package core

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// The startup recovery pass. After a crash (or any run the supervisor
// cannot vouch for) the on-disk state can hold orphan *.tmp map files,
// a parked spill file, and commit journals that disagree with the
// directory listing. RunRecovery walks all of it through the salvage
// layer and decides, for every artifact, adopt / discard / quarantine:
//
//   - orphan temp whose final file is already durable (the commit
//     journal ratified the epoch, or the final simply exists): stale
//     debris — discard;
//   - orphan temp with a complete, intact payload and no final file:
//     the crash struck between the data write and the rename — adopt
//     it by finishing the rename;
//   - orphan temp with a torn payload: quarantine it (rename to
//     *.quarantined) as preserved evidence, never resolved through;
//   - orphan temp that cannot be read at all (EIO, or a phantom dirent
//     from directory damage): record the failure and move on;
//   - committed spill frames: merge into the sample file (spill.go).
//
// The pass is itself a process under the fault injectors: its renames
// and writes can fail or crash. The supervisor restarts a crashed or
// evidence-less attempt with a fresh process — every attempt appends a
// recovery-begin marker to the daemon journal first, so even a pass
// that dies instantly leaves durable evidence it began — and gives up
// loudly after maxRecoveryAttempts. Decisions are cumulative across
// restarts (work already done is visible on disk and not repeated);
// purely observational counts are deduplicated per artifact so a
// restarted pass does not inflate them.

// maxRecoveryAttempts bounds supervisor restarts. Every restart
// consumes at least one injected fault from some plan's MaxFaults
// budget, and composed chaos schedules sum to well under this bound,
// so a pass that cannot finish within it indicates a protocol bug,
// not bad luck.
const maxRecoveryAttempts = 32

// DiscoverMapPIDs scans the disk listing for per-VM map directories
// and returns their pids in ascending order. Startup recovery cannot
// be handed the previous run's pids — the crash took them with it —
// so it recovers whatever the on-disk layout shows. The listing is a
// fault surface (dropped dirents hide a pid, phantoms add one); a
// hidden pid's artifacts simply wait for the next pass, and a phantom
// pid's empty directory yields zero decisions.
func DiscoverMapPIDs(disk *kernel.Disk) []int {
	seen := make(map[int]bool)
	prefix := MapDir + "/"
	for _, name := range disk.List() {
		rest, ok := strings.CutPrefix(name, prefix)
		if !ok {
			continue
		}
		slash := strings.IndexByte(rest, '/')
		if slash <= 0 {
			continue
		}
		if pid, err := strconv.Atoi(rest[:slash]); err == nil && pid > 0 {
			seen[pid] = true
		}
	}
	pids := make([]int, 0, len(seen))
	for pid := range seen {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}

// RunStartupRecovery is the default boot path: RunRecovery over every
// VM map directory the disk listing shows, plus the daemon spill file.
// Session startup (core.Start) runs it before the daemon opens its own
// files, so a crashed previous run's salvageable artifacts are adopted
// before anything can resolve against a stale view.
func RunStartupRecovery(m *kernel.Machine) (*oprofile.RecoveryStats, error) {
	rec, err := RunRecovery(m, DiscoverMapPIDs(m.Kern.Disk()))
	// Housekeeping after recovery: bound the quarantined-evidence set
	// (its failures surface through Integrity, never as a boot error).
	RunRetention(m, DefaultRetentionPolicy)
	return rec, err
}

// RunRecovery runs the recovery pass over the given VM pids' map
// directories and the daemon's spill file, persists its decisions to
// oprofile.RecoveryStatsFile, and returns them. The returned error is
// non-nil only when the pass could not complete within
// maxRecoveryAttempts.
func RunRecovery(m *kernel.Machine, pids []int) (*oprofile.RecoveryStats, error) {
	kern := m.Kern
	disk := kern.Disk()
	stats := &oprofile.RecoveryStats{SpillRecovered: make(map[string]uint64)}
	// Observational events counted at most once per artifact across
	// restarted attempts.
	counted := make(map[string]bool)
	for attempt := 0; attempt < maxRecoveryAttempts; attempt++ {
		if attempt > 0 {
			stats.Restarts++
		}
		proc, err := kern.NewProcess("viprof-recover", kernel.ExecFunc(
			func(*kernel.Machine, *kernel.Process) kernel.StepResult { return kernel.StepExit }))
		if err != nil {
			return stats, err
		}
		proc.Daemon = true
		// Durable evidence first: a pass that dies after this line is
		// still visible to the offline tools as "began, never decided".
		if werr := kern.SysWrite(proc, oprofile.DaemonJournalFile, oprofile.JournalRecoveryBegin()); werr != nil {
			stats.MarkerErrors++
			continue
		}
		crashed := false
		for _, pid := range pids {
			if cerr := recoverMaps(kern, proc, pid, stats, counted); cerr != nil {
				crashed = true
				break
			}
		}
		if crashed {
			continue
		}
		if dj := oprofile.ReadDaemonJournal(disk); dj.Damaged && !counted["daemon-journal"] {
			counted["daemon-journal"] = true
			stats.JournalsDamaged++
		}
		sr, serr := oprofile.RecoverSpill(m, proc)
		stats.SpillMergeErrors += sr.MergeErrors
		if sr.MergeErrors == 0 {
			// Frame counts are final only when the attempt resolved the
			// spill file (merged or removed); a failed attempt leaves it in
			// place and the next attempt would recount.
			stats.SpillFramesMerged += sr.FramesMerged
			stats.SpillFramesDiscarded += sr.FramesDiscarded
			for ev, c := range sr.Recovered {
				stats.SpillRecovered[ev] += c
				stats.SpillRecoveredTotal += c
			}
		}
		if serr != nil {
			continue // crash mid-merge: restart
		}
		// Persist the decision record. An attempt whose stats write fails
		// is as undecided as one that crashed — restart so the last intact
		// record on disk always reflects a completed pass.
		stats.Clean = true
		if werr := kern.SysWrite(proc, oprofile.RecoveryStatsFile, record.Frame(stats.Payload())); werr != nil {
			stats.Clean = false
			stats.MarkerErrors++
			continue
		}
		return stats, nil
	}
	return stats, fmt.Errorf("core: recovery did not complete within %d attempts", maxRecoveryAttempts)
}

// recoverMaps runs the orphan-temp state machine over one VM's map
// directory. A non-nil error means the recovery process crashed.
func recoverMaps(kern *kernel.Kernel, proc *kernel.Process, pid int, stats *oprofile.RecoveryStats, counted map[string]bool) error {
	disk := kern.Disk()
	journal := ReadAgentJournal(disk, pid)
	if journal.Damaged {
		countOnce(counted, fmt.Sprintf("agent-journal:%d", pid), &stats.JournalsDamaged)
	}
	prefix := fmt.Sprintf("%s/%d/", MapDir, pid)
	// Snapshot the temp names first: the listing is a fault surface of
	// its own (dropped and phantom dirents), and we want one consistent
	// view per attempt.
	var tmps []string
	for _, name := range disk.List() {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, ".tmp") {
			tmps = append(tmps, name)
		}
	}
	for _, tmp := range tmps {
		if err := recoverOrphan(kern, proc, prefix, tmp, journal, stats, counted); err != nil {
			return err
		}
	}
	return nil
}

// recoverOrphan decides one temp file's fate. A non-nil error means
// the recovery process crashed mid-decision.
func recoverOrphan(kern *kernel.Kernel, proc *kernel.Process, prefix, tmp string, journal AgentJournal, stats *oprofile.RecoveryStats, counted map[string]bool) error {
	disk := kern.Disk()
	if !disk.Exists(tmp) {
		// The dirent exists but the file does not: a phantom from
		// directory damage. Nothing to salvage.
		countOnce(counted, "failed:"+tmp, &stats.Failed)
		return nil
	}
	final := strings.TrimSuffix(tmp, ".tmp")
	epoch := -1
	if numStr, found := strings.CutPrefix(strings.TrimPrefix(final, prefix), "map."); found {
		if n, err := strconv.Atoi(numStr); err == nil && n >= 0 {
			epoch = n
		}
	}
	if disk.Exists(final) {
		// The commit is durable (and if the journal ratified this epoch,
		// doubly so): the temp is stale debris from an earlier attempt.
		disk.Remove(tmp)
		stats.Discarded++
		return nil
	}
	data, err := disk.Read(tmp)
	if err != nil {
		countOnce(counted, "failed:"+tmp, &stats.Failed)
		return nil
	}
	entries, sal, trailerOK, perr := salvageMapData(data)
	if perr != nil || sal.Lossy() || !trailerOK || (epoch < 0 && len(entries) == 0) {
		// Damaged (or not a map payload at all): set it aside as
		// evidence. The *.quarantined suffix keeps it out of every
		// resolver path while preserving the bytes.
		if rerr := kern.SysRename(proc, tmp, tmp+".quarantined"); rerr != nil {
			if errors.Is(rerr, kernel.ErrCrashed) {
				return rerr
			}
			countOnce(counted, "failed:"+tmp, &stats.Failed)
			return nil
		}
		stats.Quarantined++
		return nil
	}
	// Complete payload, no final file: the crash struck between the data
	// write and the rename (the journal has no commit for this epoch —
	// or it does, and the listing lost the final's dirent; adopting
	// restores the committed epoch either way). Finish the rename.
	if rerr := kern.SysRename(proc, tmp, final); rerr != nil {
		if errors.Is(rerr, kernel.ErrCrashed) {
			return rerr
		}
		// Ambiguous outcomes included (fail-after: the rename is durable
		// but reported failed) — count the failure; the on-disk truth is
		// whatever the next attempt or the report phase observes.
		countOnce(counted, "failed:"+tmp, &stats.Failed)
		return nil
	}
	stats.Adopted++
	return nil
}

// countOnce increments *n the first time key is seen.
func countOnce(counted map[string]bool, key string, n *int) {
	if counted[key] {
		return
	}
	counted[key] = true
	*n++
}
