package core

import (
	"bytes"
	"strings"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
	"viprof/internal/record"
)

func TestMapFileRoundTrip(t *testing.T) {
	entries := []MapEntry{
		{Start: 0x6000_0040, Size: 512, Level: "base", Sig: "app.Main.main"},
		{Start: 0x6000_0400, Size: 128, Level: "opt", Sig: "app.Worker.run"},
	}
	var buf bytes.Buffer
	if err := WriteMapFile(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d entries", len(got))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Errorf("entry %d: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestReadMapFileErrors(t *testing.T) {
	// Unframed garbage: nothing salvages, no trailer — rejected.
	if _, err := ReadMapFile(strings.NewReader("not a map\n")); err == nil {
		t.Error("garbage accepted")
	}
	// An empty entry set with a valid trailer is a legitimate empty map.
	var empty bytes.Buffer
	if err := WriteMapFile(&empty, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapFile(&empty)
	if err != nil || len(got) != 0 {
		t.Errorf("empty map: %v, %d entries", err, len(got))
	}
	// A map missing its trailer record reads as torn.
	var noTrailer bytes.Buffer
	noTrailer.Write(record.Frame([]byte("00000010 5 0 base a.b\n")))
	if _, err := ReadMapFile(&noTrailer); err == nil {
		t.Error("map without trailer accepted (torn writes undetectable)")
	}
	// A trailer whose count disagrees with the entries reads as torn.
	var mismatch bytes.Buffer
	mismatch.Write(record.Frame([]byte("00000010 5 0 base a.b\n")))
	mismatch.Write(record.Frame([]byte("#end 2\n")))
	if _, err := ReadMapFile(&mismatch); err == nil {
		t.Error("trailer count mismatch accepted")
	}
	// A checksum-valid record with an unparseable payload is a writer
	// bug and errors hard even through the salvage path.
	var badPayload bytes.Buffer
	badPayload.Write(record.Frame([]byte("zz not numbers\n")))
	if _, _, _, err := salvageMapData(badPayload.Bytes()); err == nil {
		t.Error("unparseable checksum-valid record accepted")
	}
}

func TestMapChainBackwardSearch(t *testing.T) {
	// Epoch 0: method A at [100,200). Epoch 1: method B compiled at
	// [300,400); A unmoved (not rewritten). Epoch 2: GC moved A to
	// [500,600) and B to [100,200) — B now occupies A's old range.
	chain := NewMapChain([][]MapEntry{
		{{Start: 100, Size: 100, Sig: "A", Level: "base"}},
		{{Start: 300, Size: 100, Sig: "B", Level: "base"}},
		{
			{Start: 500, Size: 100, Sig: "A", Level: "base"},
			{Start: 100, Size: 100, Sig: "B", Level: "base"},
		},
	})
	tests := []struct {
		epoch int
		pc    addr.Address
		want  string
		found bool
	}{
		{0, 150, "A", true}, // same epoch
		{1, 150, "A", true}, // falls back to epoch 0's map
		{1, 350, "B", true}, // epoch 1's own map
		{2, 150, "B", true}, // B moved onto A's old range: epoch 2 wins
		{2, 550, "A", true}, // A's new home
		{2, 999, "", false}, // nowhere
		{0, 350, "", false}, // B doesn't exist yet in epoch 0's view
		{9, 550, "A", true}, // epoch beyond chain clamps to last map
	}
	for _, tt := range tests {
		e, _, ok := chain.Resolve(tt.epoch, tt.pc)
		if ok != tt.found || (ok && e.Sig != tt.want) {
			t.Errorf("Resolve(%d, %d) = %q,%v; want %q,%v", tt.epoch, tt.pc, e.Sig, ok, tt.want, tt.found)
		}
	}
	// Depth accounting: epoch-1 lookup of A searches 2 maps.
	_, depth, _ := chain.Resolve(1, 150)
	if depth != 2 {
		t.Errorf("search depth = %d, want 2", depth)
	}
}

func TestMapChainEmptyEpochs(t *testing.T) {
	chain := NewMapChain([][]MapEntry{
		{{Start: 100, Size: 50, Sig: "A", Level: "base"}},
		nil, // epoch with no writes
		{{Start: 100, Size: 50, Sig: "C", Level: "opt"}},
	})
	if e, _, ok := chain.Resolve(1, 120); !ok || e.Sig != "A" {
		t.Errorf("empty epoch fallthrough: %+v %v", e, ok)
	}
	if e, _, ok := chain.Resolve(2, 120); !ok || e.Sig != "C" {
		t.Errorf("latest epoch: %+v %v", e, ok)
	}
}

func TestReadMapChainFromDisk(t *testing.T) {
	disk := kernel.NewDisk()
	var b0, b2 bytes.Buffer
	WriteMapFile(&b0, []MapEntry{{Start: 10, Size: 5, Sig: "X", Level: "base"}})
	WriteMapFile(&b2, []MapEntry{{Start: 20, Size: 5, Sig: "Y", Level: "opt"}})
	disk.Append(MapPath(7, 0), b0.Bytes())
	// epoch 1 missing, epoch 2 present
	disk.Append(MapPath(7, 2), b2.Bytes())
	chain, err := ReadMapChain(disk, 7)
	if err != nil {
		t.Fatal(err)
	}
	if chain.Epochs() != 3 {
		t.Fatalf("epochs = %d, want 3", chain.Epochs())
	}
	if e, _, ok := chain.Resolve(2, 12); !ok || e.Sig != "X" {
		t.Errorf("backward search across gap: %+v %v", e, ok)
	}
	if e, _, ok := chain.Resolve(2, 22); !ok || e.Sig != "Y" {
		t.Errorf("epoch 2 entry: %+v %v", e, ok)
	}
	// Unknown pid: empty chain, no error.
	empty, err := ReadMapChain(disk, 99)
	if err != nil || empty.Epochs() != 0 {
		t.Errorf("unknown pid: %v, %d epochs", err, empty.Epochs())
	}
}

func newTestMachine() *kernel.Machine {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	return kernel.NewMachine(core, 1)
}

func TestRuntimeRegistry(t *testing.T) {
	rt := NewRuntime()
	epoch := 0
	rt.RegisterJIT(5, 0x6000_0000, 0x6800_0000, func() int { return epoch })
	if !rt.Registered(5) || rt.Registered(6) {
		t.Error("registration state wrong")
	}
	if jit, e := rt.Check(5, 0x6100_0000); !jit || e != 0 {
		t.Errorf("Check inside = %v,%d", jit, e)
	}
	epoch = 3
	if _, e := rt.Check(5, 0x6100_0000); e != 3 {
		t.Errorf("epoch not live: %d", e)
	}
	if jit, _ := rt.Check(5, 0x5000_0000); jit {
		t.Error("Check outside region matched")
	}
	if jit, _ := rt.Check(6, 0x6100_0000); jit {
		t.Error("Check wrong pid matched")
	}
	if rt.Stack(5, 4) != nil {
		t.Error("stack walker before attach")
	}
	rt.AttachStackWalker(5, func(max int) []addr.Address { return []addr.Address{1, 2} })
	if got := rt.Stack(5, 4); len(got) != 2 {
		t.Errorf("stack = %v", got)
	}
	checks, hits := rt.Stats()
	if checks < 4 || hits != 2 {
		t.Errorf("stats = %d/%d", checks, hits)
	}
	rt.UnregisterJIT(5)
	if jit, _ := rt.Check(5, 0x6100_0000); jit {
		t.Error("Check after unregister matched")
	}
}
