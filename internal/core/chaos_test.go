package core_test

// Chaos tests: full profiled sessions under seeded fault schedules
// (internal/harness/chaos.go), checked against the pipeline's
// degradation contract. The invariants, end to end:
//
//  1. Conservation at the driver: every NMI is logged or dropped.
//  2. Conservation at the daemon: every logged sample is aggregated or
//     still buffered.
//  3. Conservation on disk: persisted + spilled + unflushed equals
//     aggregated — a failed flush retries its whole delta, a torn
//     record fails its checksum, so nothing double-counts and nothing
//     vanishes unaccounted.
//  4. No silent misattribution: any JIT sample the durable resolver
//     does attribute agrees with the agent's in-memory oracle (what a
//     fault-free persistence of the same execution would have said).
//  5. Visibility: destructive faults imply a degraded Integrity
//     section; no destructive faults imply a clean one.
//
// The file lives in package core_test because the harness imports core.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"viprof/internal/core"
	"viprof/internal/harness"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// chaosSeeds is the bounded seed sweep: 25 consecutive seeds cycle all
// five scenarios five times each (daemon crash, ENOSPC, torn map, torn
// samples, VM kill).
const chaosSeeds = 25

func TestChaosSweep(t *testing.T) {
	for seed := int64(0); seed < chaosSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d/%s", seed, harness.ScenarioOf(seed)), func(t *testing.T) {
			t.Parallel()
			r, err := harness.RunChaos(seed, 0.25)
			if err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			checkChaosInvariants(t, r)
		})
	}
}

func checkChaosInvariants(t *testing.T, r *harness.ChaosResult) {
	t.Helper()
	t.Logf("scenario=%s faults=%+v vmKilled=%v daemonCrashed=%v",
		r.Scenario, r.Faults, r.VMKilled, r.Daemon.Crashed())

	// (1) Driver conservation: NMIs = logged + dropped.
	ds := r.Driver
	if ds.Logged+ds.Dropped != ds.NMIs {
		t.Errorf("driver conservation: logged %d + dropped %d != NMIs %d",
			ds.Logged, ds.Dropped, ds.NMIs)
	}

	// (2) Daemon conservation: logged = aggregated + still buffered.
	buffered := uint64(r.Session.Prof.Driver.BufferLen())
	if r.Daemon.SamplesLogged()+buffered != ds.Logged {
		t.Errorf("daemon conservation: aggregated %d + buffered %d != logged %d",
			r.Daemon.SamplesLogged(), buffered, ds.Logged)
	}

	// (3) Disk conservation: what the salvage reader recovers plus the
	// daemon's accounted losses equals what the daemon aggregated.
	disk := r.Machine.Kern.Disk()
	var persisted uint64
	if data, err := disk.Read(oprofile.SampleFile); err == nil {
		counts, _, err := oprofile.ReadCountsSalvage(data)
		if err != nil {
			t.Fatalf("salvage re-read: %v", err)
		}
		for _, c := range counts {
			persisted += c
		}
	}
	accounted := persisted + r.Daemon.Spilled() + r.Daemon.Unflushed()
	if accounted != r.Daemon.SamplesLogged() {
		t.Errorf("disk conservation: persisted %d + spilled %d + unflushed %d = %d != aggregated %d",
			persisted, r.Daemon.Spilled(), r.Daemon.Unflushed(), accounted, r.Daemon.SamplesLogged())
	}

	// Report totals can never exceed what the driver logged.
	for _, ev := range r.Report.Events {
		if r.Report.Totals[ev] > ds.Logged {
			t.Errorf("report total %d for event %v exceeds logged %d",
				r.Report.Totals[ev], ev, ds.Logged)
		}
	}

	// (4) No silent misattribution: every JIT sample the durable
	// resolver attributes must agree with the agent's in-memory oracle.
	checkNoMisattribution(t, r)

	// (5) Visibility: destructive faults are never invisible, and a
	// fault-free (or latency-only) run is never falsely degraded.
	integ := r.Report.Integrity
	if integ == nil {
		t.Fatal("report has no Integrity section")
	}
	if r.Faults.Destructive() > 0 && !integ.Degraded() {
		var buf bytes.Buffer
		_ = oprofile.FormatIntegrity(&buf, integ)
		t.Errorf("%d destructive faults injected but Integrity reads clean:\n%s",
			r.Faults.Destructive(), buf.String())
	}
	if r.Faults.Destructive() == 0 && integ.Degraded() {
		var buf bytes.Buffer
		_ = oprofile.FormatIntegrity(&buf, integ)
		t.Errorf("no destructive faults but Integrity reads degraded:\n%s", buf.String())
	}
}

// checkNoMisattribution re-reads the sample file from disk and checks
// every JIT key the durable resolver can attribute against the agent's
// oracle chain — the fault-free persistence reference for this very
// execution.
func checkNoMisattribution(t *testing.T, r *harness.ChaosResult) {
	t.Helper()
	disk := r.Machine.Kern.Disk()
	data, err := disk.Read(oprofile.SampleFile)
	if err != nil {
		return // nothing persisted, nothing to misattribute
	}
	counts, _, err := oprofile.ReadCountsSalvage(data)
	if err != nil {
		t.Fatalf("salvage re-read: %v", err)
	}
	chain, ok := r.Resolver.Chains[r.Proc.PID]
	if !ok {
		t.Fatal("resolver has no chain for the VM pid")
	}
	oracle := r.Agent.OracleChain()
	var attributed, unresolved int
	for k := range counts {
		if !k.JIT || k.Proc != r.Proc.Name {
			continue
		}
		entry, _, found := chain.ResolveDurable(k.Epoch, k.Off)
		if !found {
			unresolved++
			continue
		}
		attributed++
		oEntry, _, oFound := oracle.Resolve(k.Epoch, k.Off)
		if !oFound {
			t.Errorf("misattribution: epoch %d pc %v resolved to %q on disk but the oracle has no entry",
				k.Epoch, k.Off, entry.Sig)
			continue
		}
		if oEntry.Sig != entry.Sig {
			t.Errorf("misattribution: epoch %d pc %v resolved to %q on disk, oracle says %q",
				k.Epoch, k.Off, entry.Sig, oEntry.Sig)
		}
	}
	t.Logf("JIT keys: %d attributed, %d unresolved (degraded, not lied about)",
		attributed, unresolved)
}

// A scripted daemon crash: the second sample-file write kills the
// daemon. The stats file must be absent, the report degraded, and
// conservation must still hold.
func TestChaosScriptedDaemonCrash(t *testing.T) {
	r := runScriptedChaos(t, kernel.FaultPlan{
		Seed:       99,
		PathPrefix: oprofile.SampleFile,
		Script:     []kernel.FaultPoint{{Write: 1, Kind: kernel.FaultCrash}},
	})
	if !r.Daemon.Crashed() {
		t.Fatal("daemon survived a scripted crash point")
	}
	if r.Machine.Kern.Disk().Exists(oprofile.DaemonStatsFile) {
		t.Error("crashed daemon left a stats file")
	}
	if !r.Report.Integrity.Degraded() {
		t.Error("daemon crash not surfaced as degradation")
	}
	if r.Report.Integrity.Stats != nil {
		t.Error("integrity reports daemon stats despite the crash")
	}
	checkChaosInvariants(t, r)
}

// A latency-only schedule must not degrade anything: the writes all
// complete, just slowly.
func TestChaosLatencyOnlyIsClean(t *testing.T) {
	r := runScriptedChaos(t, kernel.FaultPlan{
		Seed:       7,
		PathPrefix: "var/",
		Script: []kernel.FaultPoint{
			{Write: 0, Kind: kernel.FaultLatency},
			{Write: 2, Kind: kernel.FaultLatency},
		},
	})
	if r.Faults.Latency == 0 {
		t.Fatal("latency schedule injected nothing")
	}
	if r.Faults.Destructive() != 0 {
		t.Fatalf("latency-only plan injected destructive faults: %+v", r.Faults)
	}
	if r.Report.Integrity.Degraded() {
		var buf bytes.Buffer
		_ = oprofile.FormatIntegrity(&buf, r.Report.Integrity)
		t.Errorf("latency-only run reads degraded:\n%s", buf.String())
	}
	checkChaosInvariants(t, r)
}

// Read-fault chaos: the session itself runs fault-free, then the
// offline report assembly reads the disk through a seeded EIO schedule
// (internal/harness.RunChaosRead). The salvage readers' contract is the
// mirror image of the write side's:
//
//   - an unreadable sample file reads as MISSING, never as empty-and-OK;
//   - an unreadable stats file reads as an unclean shutdown;
//   - an unreadable epoch map poisons the chain at its epoch, so the
//     durable resolver refuses attributions the lost entries could have
//     shadowed — degrade loudly, never misattribute;
//   - zero injected read faults must leave the report exactly clean.
func TestChaosReadFaultSweep(t *testing.T) {
	const readSeeds = 15
	for seed := int64(100); seed < 100+readSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r, err := harness.RunChaosRead(seed, 0.25)
			if err != nil {
				t.Fatalf("read-chaos run: %v", err)
			}
			t.Logf("readFaults=%+v", r.ReadFaults)
			if r.Faults.Destructive() > 0 {
				t.Fatalf("read-chaos run injected write faults: %+v", r.Faults)
			}
			// The durable resolver must never contradict the oracle, no
			// matter which artifacts the read schedule destroyed.
			checkNoMisattribution(t, r)
			integ := r.Report.Integrity
			if integ == nil {
				t.Fatal("report has no Integrity section")
			}
			if r.ReadFaults.EIO > 0 && !integ.Degraded() {
				var buf bytes.Buffer
				_ = oprofile.FormatIntegrity(&buf, integ)
				t.Errorf("%d read faults injected but Integrity reads clean:\n%s",
					r.ReadFaults.EIO, buf.String())
			}
			if r.ReadFaults.EIO == 0 && integ.Degraded() {
				var buf bytes.Buffer
				_ = oprofile.FormatIntegrity(&buf, integ)
				t.Errorf("no read faults but Integrity reads degraded:\n%s", buf.String())
			}
		})
	}
}

// A scripted EIO on the very first epoch-map read: the chain must count
// the file as unreadable and poison its epoch, and the report must read
// degraded.
func TestChaosReadFaultUnreadableMap(t *testing.T) {
	r, err := harness.RunChaosReadPlan(11, 0.25, kernel.ReadFaultPlan{
		Seed:       11,
		PathPrefix: core.MapDir,
		Script:     []int{0},
	})
	if err != nil {
		t.Fatalf("read-chaos run: %v", err)
	}
	if r.ReadFaults.EIO != 1 {
		t.Fatalf("scripted map-read fault did not fire: %+v", r.ReadFaults)
	}
	integ := r.Report.Integrity
	if len(integ.Maps) == 0 || integ.Maps[0].UnreadableFiles != 1 {
		t.Fatalf("unreadable map file not accounted: %+v", integ.Maps)
	}
	if !integ.Maps[0].Degraded() || !integ.Degraded() {
		t.Error("unreadable map file not surfaced as degradation")
	}
	checkNoMisattribution(t, r)
}

// A scripted EIO on the sample-file read: the report must degrade to
// "sample file MISSING" (loud), not to an empty-but-clean report.
func TestChaosReadFaultSampleFile(t *testing.T) {
	r, err := harness.RunChaosReadPlan(12, 0.25, kernel.ReadFaultPlan{
		Seed:       12,
		PathPrefix: oprofile.SampleFile,
		Script:     []int{0},
	})
	if err != nil {
		t.Fatalf("read-chaos run: %v", err)
	}
	if r.ReadFaults.EIO != 1 {
		t.Fatalf("scripted sample-read fault did not fire: %+v", r.ReadFaults)
	}
	integ := r.Report.Integrity
	if !integ.SampleFileMissing {
		t.Error("unreadable sample file not reported as missing")
	}
	if !integ.Degraded() {
		t.Error("unreadable sample file not surfaced as degradation")
	}
	for _, ev := range r.Report.Events {
		if r.Report.Totals[ev] != 0 {
			t.Errorf("report counts samples (%d for %v) despite unreadable sample file",
				r.Report.Totals[ev], ev)
		}
	}
}

// Two identical fault-free runs must persist byte-identical epoch code
// maps. This pins the writeMap ordering fix: the agent's moved-body set
// is a Go map, and emitting it in iteration order would leak runtime
// map randomization into the persisted bytes (and into which entries a
// torn write destroys).
func TestChaosMapBytesDeterministic(t *testing.T) {
	read := func() map[string]string {
		r, err := harness.RunChaosPlan(3, 0.25, kernel.FaultPlan{Seed: 3})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		disk := r.Machine.Kern.Disk()
		files := make(map[string]string)
		for _, name := range disk.List() {
			if !strings.HasPrefix(name, core.MapDir) {
				continue
			}
			data, err := disk.Read(name)
			if err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
			files[name] = string(data)
		}
		if len(files) == 0 {
			t.Fatal("run persisted no map files")
		}
		return files
	}
	a, b := read(), read()
	if len(a) != len(b) {
		t.Fatalf("runs persisted different file sets: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if b[name] != data {
			t.Errorf("map file %s differs between identical runs", name)
		}
	}
}

// runScriptedChaos is RunChaos with a caller-supplied plan instead of a
// seed-derived one (the plan's seed also drives workload noise).
func runScriptedChaos(t *testing.T, plan kernel.FaultPlan) *harness.ChaosResult {
	t.Helper()
	r, err := harness.RunChaosPlan(plan.Seed, 0.25, plan)
	if err != nil {
		t.Fatalf("scripted chaos run: %v", err)
	}
	return r
}
