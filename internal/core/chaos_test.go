package core_test

// Chaos tests: full profiled sessions under seeded fault schedules
// (internal/harness/chaos.go), checked against the pipeline's
// degradation contract. The invariants, end to end:
//
//  1. Conservation at the driver: every NMI is logged or dropped.
//  2. Conservation at the daemon: every logged sample is aggregated or
//     still buffered.
//  3. Conservation on disk, across daemon crashes AND the recovery
//     pass: persisted + committed-spill-still-parked + unflushed +
//     spilled-lost equals aggregated — a failed flush retries its
//     whole delta, a torn record fails its checksum, spilled samples
//     are parked under a commit journal and either merged back by
//     recovery (into persisted) or still parked, so nothing
//     double-counts and nothing vanishes unaccounted.
//  4. No silent misattribution: any JIT sample the durable resolver
//     does attribute agrees with the agent's in-memory oracle (what a
//     fault-free persistence of the same execution would have said).
//  5. Visibility: destructive faults — including rename faults,
//     consequential directory damage, and offline-read EIO — imply a
//     degraded Integrity section; a run with no faults at all implies
//     a clean one.
//
// The file lives in package core_test because the harness imports core.

import (
	"bytes"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"viprof/internal/core"
	"viprof/internal/harness"
	"viprof/internal/jvm"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// chaosSeeds is the bounded seed sweep: the first eight seeds run each
// scenario in isolation (daemon crash, ENOSPC, torn map, torn samples,
// VM kill, rename fault, dir damage, read fault); later seeds draw
// composed schedules of 1-3 scenarios.
const chaosSeeds = 25

// chaosNightlySeedsEnv, when set to a positive integer, widens the
// sweep (make chaos-nightly sets it to 500).
const chaosNightlySeedsEnv = "VIPROF_CHAOS_SEEDS"

func TestChaosSweep(t *testing.T) {
	runChaosSweep(t, 0, chaosSeeds)
}

// TestChaosNightly is the wide seed sweep, gated behind
// VIPROF_CHAOS_SEEDS so `go test ./...` stays fast; `make
// chaos-nightly` runs it at 500 seeds.
func TestChaosNightly(t *testing.T) {
	n, err := strconv.Atoi(os.Getenv(chaosNightlySeedsEnv))
	if err != nil || n <= 0 {
		t.Skipf("set %s=<seeds> to run the nightly sweep", chaosNightlySeedsEnv)
	}
	runChaosSweep(t, 0, int64(n))
}

func runChaosSweep(t *testing.T, lo, hi int64) {
	// Aggregated over the sweep so the trailing assertion can prove the
	// misattribution checks covered runs where fused trace replay (and
	// its invalidation) was live — not a sweep that silently ran with
	// the trace cache cold.
	var mu sync.Mutex
	var traces jvm.TraceStats
	t.Run("seeds", func(t *testing.T) {
		for seed := lo; seed < hi; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("seed=%d/%s", seed, harness.ScheduleOf(seed)), func(t *testing.T) {
				t.Parallel()
				r, err := harness.RunChaos(seed, 0.25)
				if err != nil {
					t.Fatalf("chaos run: %v", err)
				}
				checkChaosInvariants(t, r)
				mu.Lock()
				traces.Installed += r.TraceStats.Installed
				traces.Replays += r.TraceStats.Replays
				traces.OpsReplayed += r.TraceStats.OpsReplayed
				traces.Deopts += r.TraceStats.Deopts
				traces.Invalidations += r.TraceStats.Invalidations
				mu.Unlock()
			})
		}
	})
	// The inner group has fully drained its parallel subtests here.
	t.Logf("trace cache over sweep: %+v", traces)
	if traces.Installed == 0 || traces.Replays == 0 {
		t.Errorf("sweep never exercised fused trace replay (%+v): the no-misattribution checks proved nothing about the trace cache", traces)
	}
	if traces.Invalidations == 0 {
		t.Errorf("sweep never invalidated a trace (%+v): promotion/GC interaction with the trace cache went untested under faults", traces)
	}
}

func checkChaosInvariants(t *testing.T, r *harness.ChaosResult) {
	t.Helper()
	t.Logf("schedule=%s faults=%+v listFaults={dropped:%d phantoms:%d} readFaults=%+v vmKilled=%v daemonCrashed=%v recovery=%+v traces=%+v",
		r.Schedule, r.Faults, r.ListFaults.Dropped, r.ListFaults.Phantoms,
		r.ReadFaults, r.VMKilled, r.Daemon.Crashed(), r.Recovery, r.TraceStats)

	// (1) Driver conservation: NMIs = logged + dropped.
	ds := r.Driver
	if ds.Logged+ds.Dropped != ds.NMIs {
		t.Errorf("driver conservation: logged %d + dropped %d != NMIs %d",
			ds.Logged, ds.Dropped, ds.NMIs)
	}

	// (2) Daemon conservation: logged = aggregated + still buffered.
	buffered := uint64(r.Session.Prof.Driver.BufferLen())
	if r.Daemon.SamplesLogged()+buffered != ds.Logged {
		t.Errorf("daemon conservation: aggregated %d + buffered %d != logged %d",
			r.Daemon.SamplesLogged(), buffered, ds.Logged)
	}

	// (3) Disk conservation across crashes and recovery: what the
	// salvage reader recovers from the sample file (spill merges
	// included), plus committed spill still parked on disk, plus the
	// daemon's accounted losses, equals what the daemon aggregated. The
	// parked total comes from the offline spill state, not the daemon's
	// in-memory counter, because recovery moves parked samples into the
	// sample file after the daemon last saw them.
	disk := r.Machine.Kern.Disk()
	var persisted uint64
	persistedCPU := make(map[int]uint64)
	if data, err := disk.Read(oprofile.SampleFile); err == nil {
		counts, _, err := oprofile.ReadCountsSalvage(data)
		if err != nil {
			t.Fatalf("salvage re-read: %v", err)
		}
		for k, c := range counts {
			persisted += c
			persistedCPU[k.CPU] += c
		}
	}
	spillSt := oprofile.ReadSpillState(disk)
	accounted := persisted + spillSt.OnDiskTotal + r.Daemon.Unflushed() + r.Daemon.SpilledLost()
	if accounted != r.Daemon.SamplesLogged() {
		t.Errorf("disk conservation: persisted %d + parked %d + unflushed %d + spill-lost %d = %d != aggregated %d",
			persisted, spillSt.OnDiskTotal, r.Daemon.Unflushed(), r.Daemon.SpilledLost(),
			accounted, r.Daemon.SamplesLogged())
	}

	// (1b-3b) Per-CPU conservation: the shard split must account exactly
	// at every stage and sum back to the aggregates. The disk equation
	// closes per CPU unconditionally: parked spill frames carry the CPU
	// in every key, and the daemon attributes hard-cap losses per CPU,
	// so spill activity no longer weakens the equality to aggregate-only.
	// Persisted counts can never exceed a CPU's aggregated total — that
	// would be cross-CPU misattribution.
	drv := r.Session.Prof.Driver
	loggedCPU := r.Daemon.SamplesLoggedCPU()
	aggCPU := func(ci int) uint64 {
		if ci < len(loggedCPU) {
			return loggedCPU[ci]
		}
		return 0
	}
	unflushedCPU := r.Daemon.UnflushedCPU()
	parkedCPU := make(map[int]uint64)
	for k, c := range spillSt.OnDisk {
		parkedCPU[k.CPU] += c
	}
	lostCPU := r.Daemon.SpilledLostCPU()
	var sumNMI, sumLogged, sumDropped, sumAgg uint64
	for ci := 0; ci < drv.NumCPU(); ci++ {
		cs := drv.StatsCPU(ci)
		sumNMI += cs.NMIs
		sumLogged += cs.Logged
		sumDropped += cs.Dropped
		sumAgg += aggCPU(ci)
		if cs.Logged+cs.Dropped != cs.NMIs {
			t.Errorf("cpu%d driver conservation: logged %d + dropped %d != NMIs %d",
				ci, cs.Logged, cs.Dropped, cs.NMIs)
		}
		if aggCPU(ci)+uint64(drv.ShardLen(ci)) != cs.Logged {
			t.Errorf("cpu%d daemon conservation: aggregated %d + buffered %d != logged %d",
				ci, aggCPU(ci), drv.ShardLen(ci), cs.Logged)
		}
		if persistedCPU[ci] > aggCPU(ci) {
			t.Errorf("cpu%d misattribution: persisted %d exceeds aggregated %d",
				ci, persistedCPU[ci], aggCPU(ci))
		}
		if persistedCPU[ci]+parkedCPU[ci]+unflushedCPU[ci]+lostCPU[ci] != aggCPU(ci) {
			t.Errorf("cpu%d disk conservation: persisted %d + parked %d + unflushed %d + spill-lost %d != aggregated %d",
				ci, persistedCPU[ci], parkedCPU[ci], unflushedCPU[ci], lostCPU[ci], aggCPU(ci))
		}
	}
	if sumNMI != ds.NMIs || sumLogged != ds.Logged || sumDropped != ds.Dropped {
		t.Errorf("per-CPU driver stats (NMIs %d, logged %d, dropped %d) do not sum to aggregate (%d, %d, %d)",
			sumNMI, sumLogged, sumDropped, ds.NMIs, ds.Logged, ds.Dropped)
	}
	if sumAgg != r.Daemon.SamplesLogged() {
		t.Errorf("per-CPU aggregation %d does not sum to SamplesLogged %d",
			sumAgg, r.Daemon.SamplesLogged())
	}
	for ci := range persistedCPU {
		if ci < 0 || ci >= drv.NumCPU() {
			t.Errorf("persisted samples attributed to nonexistent cpu%d", ci)
		}
	}

	// Report totals can never exceed what the driver logged, and the
	// report's per-CPU breakdown must sum back to its totals.
	for _, ev := range r.Report.Events {
		if r.Report.Totals[ev] > ds.Logged {
			t.Errorf("report total %d for event %v exceeds logged %d",
				r.Report.Totals[ev], ev, ds.Logged)
		}
		var cpuSum uint64
		for _, ct := range r.Report.PerCPU {
			cpuSum += ct.Counts[ev]
		}
		if cpuSum != r.Report.Totals[ev] {
			t.Errorf("report per-CPU breakdown for %v sums to %d, total is %d",
				ev, cpuSum, r.Report.Totals[ev])
		}
	}

	// (4) No silent misattribution: every JIT sample the durable
	// resolver attributes must agree with the agent's in-memory oracle.
	checkNoMisattribution(t, r)

	// (5) Visibility: destructive faults are never invisible —
	// including rename faults (counted destructive) and consequential
	// directory damage — and a run with no faults at all is never
	// falsely degraded.
	integ := r.Report.Integrity
	if integ == nil {
		t.Fatal("report has no Integrity section")
	}
	mustDegrade := r.Faults.Destructive() > 0
	reason := fmt.Sprintf("%d destructive faults", r.Faults.Destructive())
	if r.ListFaults.Phantoms > 0 {
		// A phantom dirent is always consequential: either it invents an
		// orphan (recovery records the failure) or it shadows a real
		// orphan (which itself implies damage).
		mustDegrade = true
		reason += fmt.Sprintf(", %d phantom dirents", r.ListFaults.Phantoms)
	}
	// A dropped dirent is consequential when the report phase lost a
	// final map file: the journal cross-check must have poisoned it.
	for _, p := range r.ListFaults.DroppedPaths[len(r.ListFaultsRecovery.DroppedPaths):] {
		if isFinalMapPath(p) {
			mustDegrade = true
			reason += fmt.Sprintf(", report-phase dropped dirent %s", p)
			break
		}
	}
	// Every offline-read EIO strikes an artifact the Integrity section
	// accounts for: a recovery-phase read failure becomes a recorded
	// decision (failed orphan, damaged journal) and a report-phase one
	// becomes a missing/unreadable artifact.
	if r.ReadFaults.EIO > 0 {
		mustDegrade = true
		reason += fmt.Sprintf(", %d read faults", r.ReadFaults.EIO)
	}
	if mustDegrade && !integ.Degraded() {
		var buf bytes.Buffer
		_ = oprofile.FormatIntegrity(&buf, integ)
		t.Errorf("%s injected but Integrity reads clean:\n%s", reason, buf.String())
	}
	if r.Faults.Destructive() == 0 && r.ListFaults.Dropped == 0 && r.ListFaults.Phantoms == 0 &&
		r.ReadFaults.EIO == 0 && integ.Degraded() {
		var buf bytes.Buffer
		_ = oprofile.FormatIntegrity(&buf, integ)
		t.Errorf("no destructive or listing faults but Integrity reads degraded:\n%s", buf.String())
	}

	// (5b) Every recovery decision is visible: the pass's in-memory
	// outcome must round-trip through the persisted stats record into
	// the report's Integrity section.
	if r.Recovery != nil {
		switch {
		case integ.Recovery != nil:
			if !reflect.DeepEqual(integ.Recovery, r.Recovery) {
				t.Errorf("recovery record mismatch:\n  ran:      %+v\n  reported: %+v",
					r.Recovery, integ.Recovery)
			}
		case r.ReadFaults.EIO > 0 && integ.RecoveryIncomplete:
			// An injected EIO ate the report's read of the stats record;
			// the report flagged the gap loudly instead of inventing one.
		default:
			t.Errorf("recovery ran (%+v) but Integrity carries no recovery record", r.Recovery)
		}
	}
}

// isFinalMapPath reports whether p is a committed epoch map file
// ("…/map.<digits>"), the artifact whose silent disappearance from a
// listing would misattribute samples.
func isFinalMapPath(p string) bool {
	i := strings.LastIndexByte(p, '/')
	num, found := strings.CutPrefix(p[i+1:], "map.")
	if !found || num == "" {
		return false
	}
	for _, c := range num {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

// checkNoMisattribution re-reads the sample file from disk and checks
// every JIT key the durable resolver can attribute against the agent's
// oracle chain — the fault-free persistence reference for this very
// execution.
func checkNoMisattribution(t *testing.T, r *harness.ChaosResult) {
	t.Helper()
	disk := r.Machine.Kern.Disk()
	data, err := disk.Read(oprofile.SampleFile)
	if err != nil {
		return // nothing persisted, nothing to misattribute
	}
	counts, _, err := oprofile.ReadCountsSalvage(data)
	if err != nil {
		t.Fatalf("salvage re-read: %v", err)
	}
	chain, ok := r.Resolver.Chains[r.Proc.PID]
	if !ok {
		t.Fatal("resolver has no chain for the VM pid")
	}
	oracle := r.Agent.OracleChain()
	var attributed, unresolved int
	for k := range counts {
		if !k.JIT || k.Proc != r.Proc.Name {
			continue
		}
		entry, _, found := chain.ResolveDurable(k.Epoch, k.Off)
		if !found {
			unresolved++
			continue
		}
		attributed++
		oEntry, _, oFound := oracle.Resolve(k.Epoch, k.Off)
		if !oFound {
			t.Errorf("misattribution: epoch %d pc %v resolved to %q on disk but the oracle has no entry",
				k.Epoch, k.Off, entry.Sig)
			continue
		}
		if oEntry.Sig != entry.Sig {
			t.Errorf("misattribution: epoch %d pc %v resolved to %q on disk, oracle says %q",
				k.Epoch, k.Off, entry.Sig, oEntry.Sig)
		}
	}
	t.Logf("JIT keys: %d attributed, %d unresolved (degraded, not lied about)",
		attributed, unresolved)
}

// A scripted daemon crash: the second sample-file write kills the
// daemon. The stats file must be absent, the report degraded, and
// conservation must still hold.
func TestChaosScriptedDaemonCrash(t *testing.T) {
	r := runScriptedChaos(t, kernel.FaultPlan{
		Seed:       99,
		PathPrefix: oprofile.SampleFile,
		Script:     []kernel.FaultPoint{{Write: 1, Kind: kernel.FaultCrash}},
	})
	if !r.Daemon.Crashed() {
		t.Fatal("daemon survived a scripted crash point")
	}
	if r.Machine.Kern.Disk().Exists(oprofile.DaemonStatsFile) {
		t.Error("crashed daemon left a stats file")
	}
	if !r.Report.Integrity.Degraded() {
		t.Error("daemon crash not surfaced as degradation")
	}
	if r.Report.Integrity.Stats != nil {
		t.Error("integrity reports daemon stats despite the crash")
	}
	checkChaosInvariants(t, r)
}

// A scripted SMP shard crash: on a 4-core machine the daemon writes one
// framed record per CPU per flush, and the script kills it on the third
// sample-file record — so a strict subset of the per-CPU shards reached
// disk. The partial state must stay per-CPU accountable: persisted
// counts within each CPU's aggregated totals (no cross-CPU
// misattribution), the un-persisted remainder visible as unflushed, and
// the crash loud in the Integrity section.
func TestChaosScriptedShardCrash(t *testing.T) {
	sched := harness.ChaosSchedule{
		Seed:  321,
		Cores: 4,
		Plans: []kernel.FaultPlan{{
			Seed:       321,
			PathPrefix: oprofile.SampleFile,
			Script:     []kernel.FaultPoint{{Write: 2, Kind: kernel.FaultCrash}},
		}},
	}
	r, err := harness.RunChaosSchedule(321, 0.25, sched)
	if err != nil {
		t.Fatalf("shard-crash run: %v", err)
	}
	if r.Cores != 4 {
		t.Fatalf("machine has %d cores, want 4", r.Cores)
	}
	if r.Faults.Crashes != 1 {
		t.Fatalf("scripted crash did not fire: %+v", r.Faults)
	}
	if !r.Daemon.Crashed() {
		t.Fatal("daemon survived a scripted crash point")
	}
	if r.Machine.Kern.Disk().Exists(oprofile.DaemonStatsFile) {
		t.Error("crashed daemon left a stats file")
	}
	if !r.Report.Integrity.Degraded() {
		t.Error("partial shard flush not surfaced as degradation")
	}
	// Two records committed before the crash, so at least one shard's
	// data persisted; the torn record's group and everything after it
	// stayed dirty, so the loss is visible as unflushed.
	data, err := r.Machine.Kern.Disk().Read(oprofile.SampleFile)
	if err != nil {
		t.Fatalf("sample file unreadable after partial flush: %v", err)
	}
	counts, _, err := oprofile.ReadCountsSalvage(data)
	if err != nil {
		t.Fatalf("salvage re-read: %v", err)
	}
	persistedCPU := make(map[int]uint64)
	for k, c := range counts {
		persistedCPU[k.CPU] += c
	}
	if len(persistedCPU) == 0 {
		t.Error("no shard persisted despite two committed records")
	}
	if r.Daemon.Unflushed() == 0 {
		t.Error("mid-flush crash left nothing unflushed — the subset state never happened")
	}
	loggedCPU := r.Daemon.SamplesLoggedCPU()
	for ci, c := range persistedCPU {
		var agg uint64
		if ci >= 0 && ci < len(loggedCPU) {
			agg = loggedCPU[ci]
		}
		if c > agg {
			t.Errorf("cpu%d misattribution after partial flush: persisted %d > aggregated %d", ci, c, agg)
		}
	}
	t.Logf("persisted per CPU: %v; unflushed %d", persistedCPU, r.Daemon.Unflushed())
	checkChaosInvariants(t, r)
}

// A latency-only schedule must not degrade anything: the writes all
// complete, just slowly.
func TestChaosLatencyOnlyIsClean(t *testing.T) {
	r := runScriptedChaos(t, kernel.FaultPlan{
		Seed:       7,
		PathPrefix: "var/",
		Script: []kernel.FaultPoint{
			{Write: 0, Kind: kernel.FaultLatency},
			{Write: 2, Kind: kernel.FaultLatency},
		},
	})
	if r.Faults.Latency == 0 {
		t.Fatal("latency schedule injected nothing")
	}
	if r.Faults.Destructive() != 0 {
		t.Fatalf("latency-only plan injected destructive faults: %+v", r.Faults)
	}
	if r.Report.Integrity.Degraded() {
		var buf bytes.Buffer
		_ = oprofile.FormatIntegrity(&buf, r.Report.Integrity)
		t.Errorf("latency-only run reads degraded:\n%s", buf.String())
	}
	checkChaosInvariants(t, r)
}

// Read-fault chaos: the session itself runs fault-free, then the
// offline report assembly reads the disk through a seeded EIO schedule
// (internal/harness.RunChaosRead). The salvage readers' contract is the
// mirror image of the write side's:
//
//   - an unreadable sample file reads as MISSING, never as empty-and-OK;
//   - an unreadable stats file reads as an unclean shutdown;
//   - an unreadable epoch map poisons the chain at its epoch, so the
//     durable resolver refuses attributions the lost entries could have
//     shadowed — degrade loudly, never misattribute;
//   - zero injected read faults must leave the report exactly clean.
func TestChaosReadFaultSweep(t *testing.T) {
	const readSeeds = 15
	for seed := int64(100); seed < 100+readSeeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			r, err := harness.RunChaosRead(seed, 0.25)
			if err != nil {
				t.Fatalf("read-chaos run: %v", err)
			}
			t.Logf("readFaults=%+v", r.ReadFaults)
			if r.Faults.Destructive() > 0 {
				t.Fatalf("read-chaos run injected write faults: %+v", r.Faults)
			}
			// The durable resolver must never contradict the oracle, no
			// matter which artifacts the read schedule destroyed.
			checkNoMisattribution(t, r)
			integ := r.Report.Integrity
			if integ == nil {
				t.Fatal("report has no Integrity section")
			}
			if r.ReadFaults.EIO > 0 && !integ.Degraded() {
				var buf bytes.Buffer
				_ = oprofile.FormatIntegrity(&buf, integ)
				t.Errorf("%d read faults injected but Integrity reads clean:\n%s",
					r.ReadFaults.EIO, buf.String())
			}
			if r.ReadFaults.EIO == 0 && integ.Degraded() {
				var buf bytes.Buffer
				_ = oprofile.FormatIntegrity(&buf, integ)
				t.Errorf("no read faults but Integrity reads degraded:\n%s", buf.String())
			}
		})
	}
}

// A scripted EIO on the very first epoch-map read: the chain must count
// the file as unreadable and poison its epoch, and the report must read
// degraded.
func TestChaosReadFaultUnreadableMap(t *testing.T) {
	r, err := harness.RunChaosReadPlan(11, 0.25, kernel.ReadFaultPlan{
		Seed:       11,
		PathPrefix: core.MapDir,
		Script:     []int{0},
	})
	if err != nil {
		t.Fatalf("read-chaos run: %v", err)
	}
	if r.ReadFaults.EIO != 1 {
		t.Fatalf("scripted map-read fault did not fire: %+v", r.ReadFaults)
	}
	integ := r.Report.Integrity
	if len(integ.Maps) == 0 || integ.Maps[0].UnreadableFiles != 1 {
		t.Fatalf("unreadable map file not accounted: %+v", integ.Maps)
	}
	if !integ.Maps[0].Degraded() || !integ.Degraded() {
		t.Error("unreadable map file not surfaced as degradation")
	}
	checkNoMisattribution(t, r)
}

// A scripted EIO on the sample-file read: the report must degrade to
// "sample file MISSING" (loud), not to an empty-but-clean report.
func TestChaosReadFaultSampleFile(t *testing.T) {
	r, err := harness.RunChaosReadPlan(12, 0.25, kernel.ReadFaultPlan{
		Seed:       12,
		PathPrefix: oprofile.SampleFile,
		Script:     []int{0},
	})
	if err != nil {
		t.Fatalf("read-chaos run: %v", err)
	}
	if r.ReadFaults.EIO != 1 {
		t.Fatalf("scripted sample-read fault did not fire: %+v", r.ReadFaults)
	}
	integ := r.Report.Integrity
	if !integ.SampleFileMissing {
		t.Error("unreadable sample file not reported as missing")
	}
	if !integ.Degraded() {
		t.Error("unreadable sample file not surfaced as degradation")
	}
	for _, ev := range r.Report.Events {
		if r.Report.Totals[ev] != 0 {
			t.Errorf("report counts samples (%d for %v) despite unreadable sample file",
				r.Report.Totals[ev], ev)
		}
	}
}

// Two identical fault-free runs must persist byte-identical epoch code
// maps. This pins the writeMap ordering fix: the agent's moved-body set
// is a Go map, and emitting it in iteration order would leak runtime
// map randomization into the persisted bytes (and into which entries a
// torn write destroys).
func TestChaosMapBytesDeterministic(t *testing.T) {
	read := func() map[string]string {
		r, err := harness.RunChaosPlan(3, 0.25, kernel.FaultPlan{Seed: 3})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		disk := r.Machine.Kern.Disk()
		files := make(map[string]string)
		for _, name := range disk.List() {
			if !strings.HasPrefix(name, core.MapDir) {
				continue
			}
			data, err := disk.Read(name)
			if err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
			files[name] = string(data)
		}
		if len(files) == 0 {
			t.Fatal("run persisted no map files")
		}
		return files
	}
	a, b := read(), read()
	if len(a) != len(b) {
		t.Fatalf("runs persisted different file sets: %d vs %d", len(a), len(b))
	}
	for name, data := range a {
		if b[name] != data {
			t.Errorf("map file %s differs between identical runs", name)
		}
	}
}

// runScriptedChaos is RunChaos with a caller-supplied plan instead of a
// seed-derived one (the plan's seed also drives workload noise).
func runScriptedChaos(t *testing.T, plan kernel.FaultPlan) *harness.ChaosResult {
	t.Helper()
	r, err := harness.RunChaosPlan(plan.Seed, 0.25, plan)
	if err != nil {
		t.Fatalf("scripted chaos run: %v", err)
	}
	return r
}

// A scripted rename-before fault on the very first map commit: the
// destination never appears, the orphan temp survives, and the
// recovery pass must adopt it (complete payload, no final file) —
// after which the report sees no orphan, but the run is still loudly
// degraded (the agent recorded the failed commit, and recovery
// recorded the adoption).
func TestChaosScriptedRenameBeforeAdopted(t *testing.T) {
	r := runScriptedChaos(t, kernel.FaultPlan{
		Seed:         44,
		PathPrefix:   core.MapDir,
		RenameScript: []kernel.FaultPoint{{Write: 0, Kind: kernel.FaultRenameBefore}},
	})
	if r.Faults.RenameBefores != 1 {
		t.Fatalf("scripted rename-before did not fire: %+v", r.Faults)
	}
	if r.Recovery == nil || r.Recovery.Adopted != 1 {
		t.Fatalf("recovery did not adopt the orphan temp: %+v", r.Recovery)
	}
	integ := r.Report.Integrity
	if len(integ.Maps) == 0 {
		t.Fatal("no map integrity section")
	}
	if integ.Maps[0].OrphanTmp != 0 {
		t.Errorf("adopted orphan still reported as orphan: %+v", integ.Maps[0])
	}
	if integ.Maps[0].MapWriteErrors == 0 {
		t.Error("agent did not record the failed commit")
	}
	if !integ.Degraded() {
		t.Error("rename fault not surfaced as degradation")
	}
	checkChaosInvariants(t, r)
}

// A scripted rename-after fault: the commit is durable although the
// agent saw an error. Recovery finds no orphan (the rename applied);
// the run is degraded only through the agent's own accounting.
func TestChaosScriptedRenameAfter(t *testing.T) {
	r := runScriptedChaos(t, kernel.FaultPlan{
		Seed:         45,
		PathPrefix:   core.MapDir,
		RenameScript: []kernel.FaultPoint{{Write: 0, Kind: kernel.FaultRenameAfter}},
	})
	if r.Faults.RenameAfters != 1 {
		t.Fatalf("scripted rename-after did not fire: %+v", r.Faults)
	}
	if r.Recovery.Adopted != 0 || r.Recovery.Quarantined != 0 {
		t.Fatalf("rename-after left recovery work: %+v", r.Recovery)
	}
	integ := r.Report.Integrity
	if len(integ.Maps) == 0 || integ.Maps[0].MapWriteErrors == 0 {
		t.Error("ambiguous commit not recorded by the agent")
	}
	if !integ.Degraded() {
		t.Error("rename-after fault not surfaced as degradation")
	}
	checkChaosInvariants(t, r)
}

// A dropped dirent that hides a committed final map file during report
// assembly: the commit-journal cross-check must count the missing
// epoch, poison it, and degrade the report — misattribution by
// omission made loud.
func TestChaosDirDamageDropHidesCommittedMap(t *testing.T) {
	r, err := harness.RunChaosPlan(46, 0.25, kernel.FaultPlan{Seed: 46})
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	disk := r.Machine.Kern.Disk()
	prefix := fmt.Sprintf("%s/%d/", core.MapDir, r.Proc.PID)
	target := prefix + "map.0"
	idx, matched := -1, 0
	for _, name := range disk.List() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		if name == target {
			idx = matched
		}
		matched++
	}
	if idx < 0 {
		t.Fatalf("fault-free run left no %s", target)
	}
	disk.SetListFaultInjector(kernel.ListFaultPlan{
		Seed: 1, PathPrefix: prefix, DropScript: []int{idx},
	})
	rep, _, err := r.Session.Report(r.Session.Images(r.VM), map[string]int{r.Proc.Name: r.Proc.PID})
	disk.ClearListFaultInjector()
	if err != nil {
		t.Fatalf("report under listing damage: %v", err)
	}
	integ := rep.Integrity
	if len(integ.Maps) == 0 || integ.Maps[0].MissingCommitted != 1 {
		t.Fatalf("hidden committed map not counted: %+v", integ.Maps)
	}
	if !integ.Maps[0].Degraded() || !integ.Degraded() {
		t.Error("hidden committed map not surfaced as degradation")
	}
}

// A phantom dirent during report assembly reads as an orphan temp; the
// same phantom during the recovery pass reads as a failed salvage.
// Either way the damage is loud.
func TestChaosDirDamagePhantom(t *testing.T) {
	r, err := harness.RunChaosPlan(47, 0.25, kernel.FaultPlan{Seed: 47})
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	disk := r.Machine.Kern.Disk()
	prefix := fmt.Sprintf("%s/%d/", core.MapDir, r.Proc.PID)

	// Report phase: the phantom shows up as an orphan temp.
	disk.SetListFaultInjector(kernel.ListFaultPlan{
		Seed: 1, PathPrefix: prefix, PhantomScript: []int{0},
	})
	rep, _, err := r.Session.Report(r.Session.Images(r.VM), map[string]int{r.Proc.Name: r.Proc.PID})
	disk.ClearListFaultInjector()
	if err != nil {
		t.Fatalf("report under phantom damage: %v", err)
	}
	if len(rep.Integrity.Maps) == 0 || rep.Integrity.Maps[0].OrphanTmp != 1 {
		t.Fatalf("phantom dirent not read as orphan temp: %+v", rep.Integrity.Maps)
	}
	if !rep.Integrity.Degraded() {
		t.Error("phantom dirent not surfaced as degradation")
	}

	// Recovery phase: the phantom cannot be read back, so the pass
	// records a failed salvage — visible in the next report.
	disk.SetListFaultInjector(kernel.ListFaultPlan{
		Seed: 2, PathPrefix: prefix, PhantomScript: []int{0},
	})
	rec, recErr := core.RunRecovery(r.Machine, []int{r.Proc.PID})
	disk.ClearListFaultInjector()
	if recErr != nil {
		t.Fatalf("recovery under phantom damage: %v", recErr)
	}
	if rec.Failed != 1 {
		t.Fatalf("phantom not recorded as failed salvage: %+v", rec)
	}
	rep2, _, err := r.Session.Report(r.Session.Images(r.VM), map[string]int{r.Proc.Name: r.Proc.PID})
	if err != nil {
		t.Fatalf("report after phantom recovery: %v", err)
	}
	if rep2.Integrity.Recovery == nil || rep2.Integrity.Recovery.Failed != 1 {
		t.Fatalf("recovery decision not visible in the report: %+v", rep2.Integrity.Recovery)
	}
	if !rep2.Integrity.Degraded() {
		t.Error("failed recovery salvage not surfaced as degradation")
	}
}
