package core

import (
	"fmt"

	"viprof/internal/addr"
	"viprof/internal/image"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
)

// VMAgent is the paper's VM agent: "a library with several hooks in the
// VM's code" (§3). It logs every (re)compilation into a buffer, flags
// GC-moved method bodies, and at each epoch boundary — just before a
// collection — writes a *partial* code map to disk covering methods
// compiled since the last write plus methods moved by the previous
// collection.
//
// The agent is a user library (libviprof.so) loaded into the VM
// process; its hook costs execute at the library's symbols, so the
// agent's own overhead is visible in profiles and in Figure 2's
// VIProf-vs-OProfile deltas.
type VMAgent struct {
	m    *kernel.Machine
	proc *kernel.Process

	lib     *image.Image
	libBase addr.Address

	pending []*jit.CodeBody                // compiled since the last map write
	moved   map[*jit.CodeBody]addr.Address // flagged by GC since the last write

	// FullMaps, when true, writes every known body into every epoch map
	// instead of the paper's partial-write scheme. It exists for the
	// ablation benchmark quantifying why the paper chose partial maps.
	FullMaps bool
	// EagerMoveLog, when true, fully logs each code move from inside
	// the collector (record formatting + a write syscall per move)
	// instead of the paper's cheap flag — the design §3 rejects because
	// "any calls to the outside of [the GC's] code space will result in
	// a significant performance hit". Ablation only.
	EagerMoveLog bool
	known        []*jit.CodeBody // all live bodies (FullMaps mode)

	stats AgentStats
}

// AgentStats counts agent activity.
type AgentStats struct {
	Compiles    int
	Moves       int
	MapsWritten int
	Entries     int
	MapBytes    uint64
}

// AgentLibName is the agent library's image name.
const AgentLibName = "libviprof.so"

// NewVMAgent builds an agent bound to nothing; call Bind once the VM
// process exists (the jvm.Config needs the agent before Launch returns
// the process, so binding is two-phase).
func NewVMAgent(m *kernel.Machine) *VMAgent {
	return &VMAgent{m: m, moved: make(map[*jit.CodeBody]addr.Address)}
}

// Bind loads libviprof.so into the VM process and attaches the agent.
func (a *VMAgent) Bind(proc *kernel.Process) error {
	b := image.NewBuilder(AgentLibName)
	for _, s := range []struct {
		name string
		size uint64
	}{
		{"viprof_log_compile", 300},
		{"viprof_flag_move", 120},
		{"viprof_write_map", 700},
		{"viprof_notify_daemon", 200},
	} {
		b.Add(s.name, s.size)
	}
	img, err := b.Image()
	if err != nil {
		return err
	}
	base, err := a.m.Kern.LoadImage(proc, img, true)
	if err != nil {
		return fmt.Errorf("viprof agent: %v", err)
	}
	a.lib, a.libBase = img, base
	a.proc = proc
	return nil
}

// Stats returns agent activity counters.
func (a *VMAgent) Stats() AgentStats { return a.stats }

// Lib returns the agent library image (nil before Bind).
func (a *VMAgent) Lib() *image.Image { return a.lib }

// exec charges n micro-ops at an agent library symbol (user mode).
func (a *VMAgent) exec(symbol string, n int) {
	if a.lib == nil {
		return
	}
	sym, ok := a.lib.Lookup(symbol)
	if !ok {
		return
	}
	start := a.libBase + sym.Off
	end := start + addr.Address(sym.Size)
	pc := start
	for n > 0 {
		seg := int((end - pc + 3) / 4) // ops before the walk wraps
		if seg > n {
			seg = n
		}
		a.m.Core.ExecBatch(pc, seg, 4, 1)
		n -= seg
		pc += 4 * addr.Address(seg)
		if pc >= end {
			pc = start
		}
	}
}

// OnCompile implements jvm.Agent: "we add instructions in the body of
// the compile and recompile methods within the VM to log the beginning
// address, size and signature of the method that was just compiled
// into a buffer" (§3).
func (a *VMAgent) OnCompile(body *jit.CodeBody, epoch int) {
	a.exec("viprof_log_compile", 70)
	a.pending = append(a.pending, body)
	a.known = append(a.known, body)
	a.stats.Compiles++
}

// OnMove implements jvm.Agent: "we simply flag it instead of actually
// logging it in order to avoid undue overhead ... the body of the GC
// methods are highly tuned" (§3).
func (a *VMAgent) OnMove(body *jit.CodeBody, old addr.Address) {
	if a.EagerMoveLog {
		// The rejected design: format and persist a full relocation
		// record from inside the collector.
		a.exec("viprof_flag_move", 160)
		rec := fmt.Sprintf("%08x %08x %d %s\n",
			uint64(old), uint64(body.Start()), body.Size, body.Method.Signature())
		a.m.Kern.SysWrite(a.proc, MapPath(a.proc.PID, -1)+".moves", []byte(rec))
	} else {
		a.exec("viprof_flag_move", 5)
	}
	if _, dup := a.moved[body]; !dup {
		a.moved[body] = old
	}
	a.stats.Moves++
}

// PreGC implements jvm.Agent: the epoch-boundary map write, performed
// "just before the launching of the garbage collection" (§3.1).
func (a *VMAgent) PreGC(epoch int) { a.writeMap(epoch) }

// OnExit implements jvm.Agent: the final map write at VM shutdown, so
// samples from the last epoch resolve too.
func (a *VMAgent) OnExit(epoch int) { a.writeMap(epoch) }

// writeMap emits the code map for the closing epoch. In the paper's
// partial scheme it contains only methods compiled (or recompiled)
// since the previous write plus methods moved by the previous
// collection; in FullMaps ablation mode it re-lists every known body.
func (a *VMAgent) writeMap(epoch int) {
	var bodies []*jit.CodeBody
	if a.FullMaps {
		bodies = a.known
	} else {
		bodies = a.pending
		for b := range a.moved {
			bodies = append(bodies, b)
		}
	}
	entries := make([]MapEntry, 0, len(bodies))
	seen := make(map[*jit.CodeBody]bool, len(bodies))
	for _, b := range bodies {
		if seen[b] {
			continue
		}
		seen[b] = true
		entries = append(entries, MapEntry{
			Start: b.Start(),
			Size:  b.Size,
			Level: b.Level.String(),
			Sig:   b.Method.Signature(),
		})
	}
	// Serialization + write cost, charged to the VM process at the
	// agent's symbols plus the write syscall path.
	a.exec("viprof_write_map", 30+12*len(entries))
	var buf mapBuf
	if err := WriteMapFile(&buf, entries); err != nil {
		return
	}
	a.m.Kern.SysWriteSync(a.proc, MapPath(a.proc.PID, epoch), buf.b)
	// "We then notify the OProfile daemon and request that the written
	// map be associated with the logged JIT.App samples" (§3).
	a.exec("viprof_notify_daemon", 40)

	a.pending = a.pending[:0]
	a.moved = make(map[*jit.CodeBody]addr.Address)
	a.stats.MapsWritten++
	a.stats.Entries += len(entries)
	a.stats.MapBytes += uint64(len(buf.b))
}

type mapBuf struct{ b []byte }

func (w *mapBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
