package core

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/addr"
	"viprof/internal/image"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
	"viprof/internal/record"
)

// VMAgent is the paper's VM agent: "a library with several hooks in the
// VM's code" (§3). It logs every (re)compilation into a buffer, flags
// GC-moved method bodies, and at each epoch boundary — just before a
// collection — writes a *partial* code map to disk covering methods
// compiled since the last write plus methods moved by the previous
// collection.
//
// The agent is a user library (libviprof.so) loaded into the VM
// process; its hook costs execute at the library's symbols, so the
// agent's own overhead is visible in profiles and in Figure 2's
// VIProf-vs-OProfile deltas.
type VMAgent struct {
	m    *kernel.Machine
	proc *kernel.Process

	lib     *image.Image
	libBase addr.Address

	pending []*jit.CodeBody                // compiled since the last map write
	moved   map[*jit.CodeBody]addr.Address // flagged by GC since the last write

	// FullMaps, when true, writes every known body into every epoch map
	// instead of the paper's partial-write scheme. It exists for the
	// ablation benchmark quantifying why the paper chose partial maps.
	FullMaps bool
	// EagerMoveLog, when true, fully logs each code move from inside
	// the collector (record formatting + a write syscall per move)
	// instead of the paper's cheap flag — the design §3 rejects because
	// "any calls to the outside of [the GC's] code space will result in
	// a significant performance hit". Ablation only.
	EagerMoveLog bool
	known        []*jit.CodeBody // all live bodies (FullMaps mode)

	// deferred holds a failed epoch's entries: instead of vanishing,
	// they are prepended to the next map write. Their per-entry Epoch
	// tags mean the chain reader re-slots them into their true epoch,
	// so a mid-run write failure costs nothing once a later write
	// lands.
	deferred []MapEntry
	// oracle records, per epoch, exactly what the agent intended to
	// persist — captured before each write attempt, so it is the
	// fault-free persistence reference for this very execution (a
	// separate fault-free run diverges in timing, because profiling
	// overhead is endogenous). The chaos harness checks resolution
	// against it.
	oracle [][]MapEntry

	stats AgentStats
}

// AgentStats counts agent activity.
type AgentStats struct {
	Compiles    int
	Moves       int
	MapsWritten int
	Entries     int
	MapBytes    uint64
	// MapWriteErrors counts failed epoch-map writes; DeferredEntries is
	// how many entries those failures carried into later maps.
	MapWriteErrors  int
	DeferredEntries int
	// JournalErrors counts failed commit-journal appends. The committed
	// map itself is durable (the rename succeeded), so nothing defers —
	// but an incomplete journal means the chain reader can no longer
	// verify directory listings against it, and says so.
	JournalErrors int
}

// AgentLibName is the agent library's image name.
const AgentLibName = "libviprof.so"

// NewVMAgent builds an agent bound to nothing; call Bind once the VM
// process exists (the jvm.Config needs the agent before Launch returns
// the process, so binding is two-phase).
func NewVMAgent(m *kernel.Machine) *VMAgent {
	return &VMAgent{m: m, moved: make(map[*jit.CodeBody]addr.Address)}
}

// Bind loads libviprof.so into the VM process and attaches the agent.
func (a *VMAgent) Bind(proc *kernel.Process) error {
	b := image.NewBuilder(AgentLibName)
	for _, s := range []struct {
		name string
		size uint64
	}{
		{"viprof_log_compile", 300},
		{"viprof_flag_move", 120},
		{"viprof_write_map", 700},
		{"viprof_notify_daemon", 200},
	} {
		b.Add(s.name, s.size)
	}
	img, err := b.Image()
	if err != nil {
		return err
	}
	base, err := a.m.Kern.LoadImage(proc, img, true)
	if err != nil {
		return fmt.Errorf("viprof agent: %v", err)
	}
	a.lib, a.libBase = img, base
	a.proc = proc
	return nil
}

// Stats returns agent activity counters.
func (a *VMAgent) Stats() AgentStats { return a.stats }

// Lib returns the agent library image (nil before Bind).
func (a *VMAgent) Lib() *image.Image { return a.lib }

// exec charges n micro-ops at an agent library symbol (user mode).
func (a *VMAgent) exec(symbol string, n int) {
	if a.lib == nil {
		return
	}
	sym, ok := a.lib.Lookup(symbol)
	if !ok {
		return
	}
	start := a.libBase + sym.Off
	end := start + addr.Address(sym.Size)
	pc := start
	for n > 0 {
		seg := int((end - pc + 3) / 4) // ops before the walk wraps
		if seg > n {
			seg = n
		}
		a.m.CPU().ExecBatch(pc, seg, 4, 1)
		n -= seg
		pc += 4 * addr.Address(seg)
		if pc >= end {
			pc = start
		}
	}
}

// OnCompile implements jvm.Agent: "we add instructions in the body of
// the compile and recompile methods within the VM to log the beginning
// address, size and signature of the method that was just compiled
// into a buffer" (§3).
func (a *VMAgent) OnCompile(body *jit.CodeBody, epoch int) {
	a.exec("viprof_log_compile", 70)
	a.pending = append(a.pending, body)
	a.known = append(a.known, body)
	a.stats.Compiles++
}

// OnMove implements jvm.Agent: "we simply flag it instead of actually
// logging it in order to avoid undue overhead ... the body of the GC
// methods are highly tuned" (§3).
func (a *VMAgent) OnMove(body *jit.CodeBody, old addr.Address) {
	if a.EagerMoveLog {
		// The rejected design: format and persist a full relocation
		// record from inside the collector.
		a.exec("viprof_flag_move", 160)
		rec := fmt.Sprintf("%08x %08x %d %s\n",
			uint64(old), uint64(body.Start()), body.Size, body.Method.Signature())
		// The move log is ablation-only instrumentation for the rejected
		// eager design; a lost record only understates that design's cost.
		//viplint:allow syswrite-err ablation-only move log, loss is benign
		a.m.Kern.SysWrite(a.proc, MapPath(a.proc.PID, -1)+".moves", []byte(rec)) //viplint:allow record-frame ablation-only text log, nothing resolves through it
	} else {
		a.exec("viprof_flag_move", 5)
	}
	if _, dup := a.moved[body]; !dup {
		a.moved[body] = old
	}
	a.stats.Moves++
}

// PreGC implements jvm.Agent: the epoch-boundary map write, performed
// "just before the launching of the garbage collection" (§3.1).
func (a *VMAgent) PreGC(epoch int) { a.writeMap(epoch) }

// OnExit implements jvm.Agent: the final map write at VM shutdown, so
// samples from the last epoch resolve too, plus the agent's persisted
// self-counters. A killed VM never reaches this — the missing stats
// file is the durable evidence.
func (a *VMAgent) OnExit(epoch int) {
	a.writeMap(epoch)
	a.writeStats()
}

// writeMap emits the code map for the closing epoch. In the paper's
// partial scheme it contains only methods compiled (or recompiled)
// since the previous write plus methods moved by the previous
// collection; in FullMaps ablation mode it re-lists every known body.
func (a *VMAgent) writeMap(epoch int) {
	var bodies []*jit.CodeBody
	if a.FullMaps {
		bodies = a.known
	} else {
		bodies = a.pending
		// moved is a map; its iteration order would otherwise leak into
		// the persisted file bytes, making byte-identical runs impossible
		// (and torn-write salvage dependent on runtime map order). Sort
		// the moved bodies before they join the emission order.
		moved := make([]*jit.CodeBody, 0, len(a.moved))
		for b := range a.moved {
			moved = append(moved, b)
		}
		sort.Slice(moved, func(i, j int) bool {
			if moved[i].Start() != moved[j].Start() {
				return moved[i].Start() < moved[j].Start()
			}
			return moved[i].Method.Signature() < moved[j].Method.Signature()
		})
		bodies = append(bodies, moved...)
	}
	entries := make([]MapEntry, 0, len(bodies))
	seen := make(map[*jit.CodeBody]bool, len(bodies))
	for _, b := range bodies {
		if seen[b] {
			continue
		}
		seen[b] = true
		entries = append(entries, MapEntry{
			Start: b.Start(),
			Size:  b.Size,
			Epoch: epoch,
			Level: b.Level.String(),
			Sig:   b.Method.Signature(),
		})
	}
	// The oracle captures this epoch's intended entries before the
	// write can fail: it is the fault-free persistence reference the
	// chaos harness checks resolution against.
	a.recordOracle(epoch, entries)
	// A previous epoch's failed write rides along, keeping its own
	// epoch tags.
	if len(a.deferred) > 0 {
		entries = append(append([]MapEntry{}, a.deferred...), entries...)
	}
	// Serialization + write cost, charged to the VM process at the
	// agent's symbols plus the write syscall path.
	a.exec("viprof_write_map", 30+12*len(entries))
	var buf bytes.Buffer
	if err := WriteMapFile(&buf, entries); err != nil {
		return
	}
	// Temp + rename: the final map path either holds a complete write
	// or does not exist. A torn write tears the .tmp, which the chain
	// reader counts as an orphan instead of misparsing.
	path := MapPath(a.proc.PID, epoch)
	tmp := path + ".tmp"
	//viplint:allow record-frame WriteMapFile frames every record; the payload is a concatenation of frames
	err := a.m.Kern.SysWriteSync(a.proc, tmp, buf.Bytes())
	if err == nil {
		err = a.m.Kern.SysRename(a.proc, tmp, path)
	}
	if err != nil {
		// The epoch's entries defer to the next write instead of
		// vanishing; count the failure so it is visible even if a later
		// write recovers everything.
		a.stats.MapWriteErrors++
		a.stats.DeferredEntries += len(entries)
		a.deferred = entries
		a.pending = a.pending[:0]
		a.moved = make(map[*jit.CodeBody]addr.Address)
		return
	}
	// "We then notify the OProfile daemon and request that the written
	// map be associated with the logged JIT.App samples" (§3).
	a.exec("viprof_notify_daemon", 40)

	a.deferred = nil
	a.pending = a.pending[:0]
	a.moved = make(map[*jit.CodeBody]addr.Address)
	a.stats.MapsWritten++
	a.stats.Entries += len(entries)
	a.stats.MapBytes += uint64(buf.Len())

	// Ratify the commit in the agent journal. The map is already
	// durable, so a failed append loses nothing — it only weakens the
	// chain reader's listing cross-check, which is why the failure is
	// counted rather than deferred.
	commit := record.Frame([]byte(fmt.Sprintf("commit %d %d", epoch, len(entries))))
	if jerr := a.m.Kern.SysWrite(a.proc, AgentJournalPath(a.proc.PID), commit); jerr != nil {
		a.stats.JournalErrors++
	}
}

// recordOracle appends epoch's intended entries to the in-memory
// fault-free reference.
func (a *VMAgent) recordOracle(epoch int, entries []MapEntry) {
	for len(a.oracle) <= epoch {
		a.oracle = append(a.oracle, nil)
	}
	a.oracle[epoch] = append(a.oracle[epoch], entries...)
}

// OracleChain builds a MapChain from the in-memory record of every
// entry the agent intended to persist, regardless of write failures.
// It is what the persisted chain must never contradict.
func (a *VMAgent) OracleChain() *MapChain { return NewMapChain(a.oracle) }

// AgentStatsPath names the agent's persisted self-counters file.
func AgentStatsPath(pid int) string {
	return fmt.Sprintf("%s/%d/agent.stats", MapDir, pid)
}

// AgentJournalPath names the agent's commit journal: one framed
// "commit <epoch> <entries>" record per successfully renamed map file.
// The chain reader cross-checks directory listings against it (a
// committed epoch whose file a listing omits is a lost dirent, not a
// deferred write), and the recovery pass consults it to tell a stale
// orphan temp from an uncommitted one.
func AgentJournalPath(pid int) string {
	return fmt.Sprintf("%s/%d/journal", MapDir, pid)
}

// AgentJournal is the parsed commit journal for one VM.
type AgentJournal struct {
	// Committed maps ratified epochs to the entry count their commit
	// record claimed.
	Committed map[int]int
	// Damaged reports salvage loss or unparseable records.
	Damaged bool
	// Missing reports that the journal file does not exist.
	Missing bool
}

// ReadAgentJournal parses a VM's commit journal through the salvage
// layer. An unreadable journal (EIO) reads as damaged.
func ReadAgentJournal(disk *kernel.Disk, pid int) AgentJournal {
	j := AgentJournal{Committed: make(map[int]int)}
	path := AgentJournalPath(pid)
	if !disk.Exists(path) {
		j.Missing = true
		return j
	}
	data, err := disk.Read(path)
	if err != nil {
		j.Damaged = true
		return j
	}
	recs, sal := record.Scan(data)
	if sal.Lossy() {
		j.Damaged = true
	}
	for _, payload := range recs {
		var epoch, entries int
		if n, err := fmt.Sscanf(string(payload), "commit %d %d", &epoch, &entries); n != 2 || err != nil || epoch < 0 {
			j.Damaged = true
			continue
		}
		j.Committed[epoch] = entries
	}
	return j
}

// writeStats persists the agent's self-counters as one framed record at
// clean VM exit. Best-effort: a missing or torn stats file reads as
// "the VM did not shut down cleanly", which is exactly right.
func (a *VMAgent) writeStats() {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "compiles=%d\nmoves=%d\nmaps_written=%d\nentries=%d\nmap_bytes=%d\n",
		a.stats.Compiles, a.stats.Moves, a.stats.MapsWritten, a.stats.Entries, a.stats.MapBytes)
	fmt.Fprintf(&buf, "map_write_errors=%d\ndeferred=%d\njournal_errors=%d\nclean=1\n",
		a.stats.MapWriteErrors, a.stats.DeferredEntries, a.stats.JournalErrors)
	// Deliberately discarded: agent.stats is the crash-signal-by-absence
	// protocol — a failed (or torn) stats write reads back as "the VM did
	// not shut down cleanly", which is the correct degraded verdict, and
	// there is no later point in the VM's life to retry or report it.
	//viplint:allow syswrite-err stats absence IS the crash signal; no retry point exists
	_ = a.m.Kern.SysWrite(a.proc, AgentStatsPath(a.proc.PID), record.Frame(buf.Bytes()))
}

// AgentPersisted is the agent's self-reported view parsed back from
// agent.stats; nil means the file is missing or damaged (the VM died).
type AgentPersisted struct {
	Compiles, Moves, MapsWritten, Entries int
	MapBytes                              uint64
	MapWriteErrors, Deferred              int
	JournalErrors                         int
	Clean                                 bool
}

// ReadAgentStats parses the framed agent.stats record; nil if torn.
func ReadAgentStats(data []byte) *AgentPersisted {
	recs, sal := record.Scan(data)
	if sal.Lossy() || len(recs) != 1 {
		return nil
	}
	ap := &AgentPersisted{}
	for _, line := range strings.Split(string(recs[0]), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil
		}
		switch k {
		case "compiles":
			ap.Compiles = n
		case "moves":
			ap.Moves = n
		case "maps_written":
			ap.MapsWritten = n
		case "entries":
			ap.Entries = n
		case "map_bytes":
			ap.MapBytes = uint64(n)
		case "map_write_errors":
			ap.MapWriteErrors = n
		case "deferred":
			ap.Deferred = n
		case "journal_errors":
			ap.JournalErrors = n
		case "clean":
			ap.Clean = n != 0
		}
	}
	return ap
}
