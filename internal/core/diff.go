package core

import (
	"fmt"
	"io"
	"sort"

	"viprof/internal/hpc"
	"viprof/internal/oprofile"
)

// Report diffing. The VIVA agenda profiles the same application
// repeatedly to drive re-optimization (§1); comparing two vertically
// integrated reports — before/after a change, or run-to-run — shows
// which symbols gained or lost share across *all* layers at once.

// DiffRow is one symbol's share in two reports.
type DiffRow struct {
	Image  string
	Symbol string
	// Before and After are the symbol's percentage of the primary
	// event in each report.
	Before, After float64
	// Delta = After - Before, in percentage points.
	Delta float64
}

// DiffReports joins two reports on (image, symbol) and returns rows
// sorted by |Delta| descending. Symbols absent from one side count as
// 0 % there.
func DiffReports(before, after *oprofile.Report, primary hpc.Event) []DiffRow {
	type key struct{ img, sym string }
	rows := make(map[key]*DiffRow)
	add := func(r *oprofile.Report, set func(d *DiffRow, pct float64)) {
		for _, row := range r.Rows {
			k := key{row.Image, row.Symbol}
			d, ok := rows[k]
			if !ok {
				d = &DiffRow{Image: row.Image, Symbol: row.Symbol}
				rows[k] = d
			}
			set(d, r.Percent(row, primary))
		}
	}
	add(before, func(d *DiffRow, pct float64) { d.Before = pct })
	add(after, func(d *DiffRow, pct float64) { d.After = pct })
	out := make([]DiffRow, 0, len(rows))
	for _, d := range rows {
		d.Delta = d.After - d.Before
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := abs(out[i].Delta), abs(out[j].Delta)
		if ai != aj {
			return ai > aj
		}
		if out[i].Image != out[j].Image {
			return out[i].Image < out[j].Image
		}
		return out[i].Symbol < out[j].Symbol
	})
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// FormatDiff renders the top movers.
func FormatDiff(w io.Writer, rows []DiffRow, maxRows int) error {
	if _, err := fmt.Fprintf(w, "%-9s %-9s %-9s %-20s %s\n",
		"before%", "after%", "delta", "Image name", "Symbol name"); err != nil {
		return err
	}
	if maxRows > 0 && maxRows < len(rows) {
		rows = rows[:maxRows]
	}
	for _, d := range rows {
		if _, err := fmt.Fprintf(w, "%-9.4f %-9.4f %+-9.4f %-20s %s\n",
			d.Before, d.After, d.Delta, d.Image, d.Symbol); err != nil {
			return err
		}
	}
	return nil
}
