package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
)

// randomChain builds a map chain shaped like real agent output: a first
// epoch full of fresh compilations, then partial epochs mixing new
// bodies, GC moves onto previously used ranges, and the occasional
// epoch that writes nothing. A slice of the generated entry boundaries
// comes back too so queries can probe edges, not just interiors.
func randomChain(r *rand.Rand) (*MapChain, []addr.Address) {
	epochs := 1 + r.Intn(8)
	perEpoch := make([][]MapEntry, epochs)
	var edges []addr.Address
	// A small address pool forces reuse across epochs (GC motion).
	slot := func() addr.Address { return addr.Address(64 * (1 + r.Intn(40))) }
	for e := 0; e < epochs; e++ {
		if e > 0 && r.Intn(4) == 0 {
			continue // epoch wrote no map
		}
		n := r.Intn(6)
		if e == 0 {
			n = 3 + r.Intn(6)
		}
		for i := 0; i < n; i++ {
			start := slot()
			size := uint32(16 + r.Intn(112)) // spans can straddle slots: overlaps happen
			perEpoch[e] = append(perEpoch[e], MapEntry{
				Start: start,
				Size:  size,
				Level: "base",
				Sig:   "m", // identity is (Start,Size,epoch); sig is irrelevant here
			})
			edges = append(edges, start, start+addr.Address(size))
		}
	}
	return NewMapChain(perEpoch), edges
}

// Property: Resolve through the flattened index (and its front cache)
// is indistinguishable from the paper's literal backward scan — same
// entry, same search depth, same hit/miss — for arbitrary
// compile/move/sample interleavings, including boundary addresses,
// unmapped gaps, and out-of-range epochs.
func TestResolveMatchesScanQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		chain, edges := randomChain(r)
		for q := 0; q < 200; q++ {
			var pc addr.Address
			switch r.Intn(4) {
			case 0: // exact boundary or just off it
				pc = edges[r.Intn(len(edges))]
				if r.Intn(2) == 0 && pc > 0 {
					pc--
				}
			case 1: // far outside anything mapped
				pc = addr.Address(r.Uint64())
			default:
				pc = addr.Address(r.Intn(4096))
			}
			epoch := r.Intn(chain.Epochs()+3) - 1 // includes -1 and beyond-chain
			// Repeat some queries back-to-back so cache hits are exercised.
			reps := 1 + r.Intn(2)
			for ; reps > 0; reps-- {
				ge, gd, gok := chain.Resolve(epoch, pc)
				we, wd, wok := chain.ResolveScan(epoch, pc)
				if gok != wok || gd != wd || ge != we {
					t.Logf("Resolve(%d, %d) = %+v,%d,%v; scan %+v,%d,%v",
						epoch, pc, ge, gd, gok, we, wd, wok)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// The front cache must answer page-local repeats without consulting the
// index, and eviction must not change answers once entries cycle out.
func TestResolveCacheHitsAndEviction(t *testing.T) {
	perEpoch := [][]MapEntry{{
		{Start: 0x1000, Size: 0x100, Level: "base", Sig: "A"},
	}}
	chain := NewMapChain(perEpoch)
	if _, _, ok := chain.Resolve(0, 0x1080); !ok {
		t.Fatal("warm-up query failed")
	}
	h0, m0 := chain.idx.cache.hits, chain.idx.cache.misses
	for i := 0; i < 50; i++ {
		if e, d, ok := chain.Resolve(0, 0x1000+addr.Address(i)); !ok || d != 1 || e.Sig != "A" {
			t.Fatalf("repeat query %d: %+v %d %v", i, e, d, ok)
		}
	}
	if chain.idx.cache.hits != h0+50 || chain.idx.cache.misses != m0 {
		t.Errorf("page-local repeats not cached: hits %d->%d misses %d->%d",
			h0, chain.idx.cache.hits, m0, chain.idx.cache.misses)
	}
	// Thrash far past capacity; answers must survive eviction.
	for i := 0; i < 4*resolveCacheSize; i++ {
		pc := addr.Address(0x100000 + i*0x1000) // distinct pages, all unmapped
		if _, _, ok := chain.Resolve(0, pc); ok {
			t.Fatalf("unmapped pc %x resolved", pc)
		}
	}
	if e, d, ok := chain.Resolve(0, 0x10ff); !ok || d != 1 || e.Sig != "A" {
		t.Errorf("after eviction: %+v %d %v", e, d, ok)
	}
	if len(chain.idx.cache.vals) > resolveCacheSize {
		t.Errorf("cache grew past capacity: %d", len(chain.idx.cache.vals))
	}
}

// Within-epoch overlaps must shadow identically in both resolvers (the
// index probes each epoch with the same lookupEntry the scan uses).
func TestResolveOverlapShadowing(t *testing.T) {
	chain := NewMapChain([][]MapEntry{{
		{Start: 100, Size: 100, Level: "base", Sig: "wide"},
		{Start: 140, Size: 20, Level: "opt", Sig: "narrow"},
	}})
	for pc := addr.Address(90); pc < 210; pc++ {
		ge, gd, gok := chain.Resolve(0, pc)
		we, wd, wok := chain.ResolveScan(0, pc)
		if gok != wok || gd != wd || ge != we {
			t.Fatalf("pc %d: index %+v,%d,%v vs scan %+v,%d,%v", pc, ge, gd, gok, we, wd, wok)
		}
	}
}
