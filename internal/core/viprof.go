package core

import (
	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/jvm"
	"viprof/internal/jvm/classes"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// Session assembles a complete VIProf profiling session: the extended
// OProfile pipeline (driver + daemon with the JIT registry plugged in)
// plus one VM agent per profiled VM.
type Session struct {
	Prof    *oprofile.Profiler
	Runtime *Runtime
	// Agents, keyed by VM pid, are bound as VMs launch.
	Agents map[int]*VMAgent
	// Recovery holds the startup recovery pass's decisions (nil when
	// Config.NoRecovery skipped the pass).
	Recovery *oprofile.RecoveryStats

	m            *kernel.Machine
	events       []hpc.Event
	fullMaps     bool
	eagerMoveLog bool
}

// Config parameterizes a session.
type Config struct {
	Events         []oprofile.EventConfig
	BufferCap      int
	Daemon         oprofile.DaemonConfig
	CallGraphDepth int
	// FullMaps switches every agent to the full-map ablation mode.
	FullMaps bool
	// EagerMoveLog switches every agent to the log-inside-GC ablation
	// mode.
	EagerMoveLog bool
	// NoRecovery skips the startup recovery pass. Production entry
	// points leave it false; it exists for tests and harnesses that
	// stage their own var/ state and drive RunRecovery explicitly.
	NoRecovery bool
}

// Start arms the VIProf pipeline ("we start VIProf just prior to
// benchmark launch", §4.1). Launch VMs afterwards with LaunchJVM so
// they register their JIT regions and agents.
func Start(m *kernel.Machine, cfg Config) (*Session, error) {
	// Startup recovery first, as the deployed daemon would run it: any
	// orphan temp maps, parked spill frames, or damaged journals a
	// previous (crashed) run left behind are adopted, discarded, or
	// quarantined before this session opens its own files.
	var recovery *oprofile.RecoveryStats
	if !cfg.NoRecovery {
		var err error
		if recovery, err = RunStartupRecovery(m); err != nil {
			return nil, err
		}
	}
	rt := NewRuntime()
	prof, err := oprofile.Start(m, oprofile.Config{
		Events:         cfg.Events,
		BufferCap:      cfg.BufferCap,
		Daemon:         cfg.Daemon,
		Registry:       rt,
		CallGraphDepth: cfg.CallGraphDepth,
	})
	if err != nil {
		return nil, err
	}
	events := make([]hpc.Event, len(cfg.Events))
	for i, ec := range cfg.Events {
		events[i] = ec.Event
	}
	return &Session{
		Prof:         prof,
		Runtime:      rt,
		Agents:       make(map[int]*VMAgent),
		Recovery:     recovery,
		m:            m,
		events:       events,
		fullMaps:     cfg.FullMaps,
		eagerMoveLog: cfg.EagerMoveLog,
	}, nil
}

// LaunchJVM launches a program under a fresh VM wired to this session:
// agent hooks, JIT-region registration, and stack walking for the
// cross-layer call graph.
func (s *Session) LaunchJVM(prog *classes.Program, cfg jvm.Config) (*jvm.VM, *kernel.Process, error) {
	agent := NewVMAgent(s.m)
	agent.FullMaps = s.fullMaps
	agent.EagerMoveLog = s.eagerMoveLog
	cfg.Agent = agent
	cfg.Registry = s.Runtime
	vm, proc, err := jvm.Launch(s.m, prog, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := agent.Bind(proc); err != nil {
		return nil, nil, err
	}
	s.Agents[proc.PID] = agent
	s.Runtime.AttachStackWalker(proc.PID, vm.CallStackPCs)
	return vm, proc, nil
}

// Shutdown stops sampling and flushes buffered samples; call after the
// workload exits, before Report.
func (s *Session) Shutdown() { s.Prof.Shutdown(s.m) }

// Events returns the configured event column order.
func (s *Session) Events() []hpc.Event { return s.events }

// Report builds the vertically integrated report for this session.
// images maps image names to symbol tables; vmPIDs maps VM process
// names to pids.
func (s *Session) Report(images map[string]*image.Image, vmPIDs map[string]int) (*oprofile.Report, *Resolver, error) {
	return Vipreport(s.m.Kern.Disk(), images, vmPIDs, s.events)
}

// Images assembles the full symbol-table set for this session's
// machine and VMs, including each agent's own library.
func (s *Session) Images(vms ...*jvm.VM) map[string]*image.Image {
	images := StandardImages(s.m, vms...)
	for _, a := range s.Agents {
		if lib := a.Lib(); lib != nil {
			images[lib.Name] = lib
		}
	}
	return images
}
