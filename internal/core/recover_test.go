package core

import (
	"bytes"
	"fmt"
	"testing"
)

// Startup recovery is the default Start path: whatever a previous
// (crashed) run left under var/ is salvaged before the daemon opens
// its own files, without the caller naming the dead run's pids.

func TestDiscoverMapPIDs(t *testing.T) {
	m := newTestMachine()
	disk := m.Kern.Disk()
	disk.Append(MapDir+"/7/map.0", []byte("x"))
	disk.Append(MapDir+"/12/map.3.tmp", []byte("x"))
	disk.Append(MapDir+"/12/map.1", []byte("x"))
	disk.Append(MapDir+"/bogus/map.0", []byte("x"))
	disk.Append("var/lib/oprofile/samples.dat", []byte("x"))
	pids := DiscoverMapPIDs(disk)
	if len(pids) != 2 || pids[0] != 7 || pids[1] != 12 {
		t.Fatalf("DiscoverMapPIDs = %v, want [7 12]", pids)
	}
}

func TestStartRunsStartupRecovery(t *testing.T) {
	m := newTestMachine()
	disk := m.Kern.Disk()
	// An orphan temp with a complete payload and no final file: the
	// canonical crash-between-write-and-rename artifact Start must adopt.
	var buf bytes.Buffer
	if err := WriteMapFile(&buf, []MapEntry{
		{Start: 0x6000_0040, Size: 256, Level: "base", Sig: "app.Main.main"},
	}); err != nil {
		t.Fatal(err)
	}
	tmp := fmt.Sprintf("%s/42/map.0.tmp", MapDir)
	final := fmt.Sprintf("%s/42/map.0", MapDir)
	disk.Append(tmp, buf.Bytes())

	s, err := Start(m, stdConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.Recovery == nil {
		t.Fatal("Session.Recovery nil: startup pass did not run")
	}
	if s.Recovery.Adopted != 1 || !s.Recovery.Clean {
		t.Errorf("recovery stats %+v, want 1 clean adoption", s.Recovery)
	}
	if disk.Exists(tmp) || !disk.Exists(final) {
		t.Errorf("orphan not adopted: tmp exists=%v final exists=%v",
			disk.Exists(tmp), disk.Exists(final))
	}
}

func TestStartNoRecoveryLeavesDiskAlone(t *testing.T) {
	m := newTestMachine()
	disk := m.Kern.Disk()
	tmp := fmt.Sprintf("%s/42/map.0.tmp", MapDir)
	disk.Append(tmp, []byte("staged by the test"))

	cfg := stdConfig()
	cfg.NoRecovery = true
	s, err := Start(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Recovery != nil {
		t.Errorf("Recovery = %+v, want nil under NoRecovery", s.Recovery)
	}
	if !disk.Exists(tmp) {
		t.Error("NoRecovery session still touched the staged artifact")
	}
}
