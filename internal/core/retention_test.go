package core

import (
	"strings"
	"testing"

	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

func retentionMachine(seed int64) *kernel.Machine {
	return kernel.NewMachine(cpu.New(hpc.NewBank(), cache.DefaultHierarchy()), seed)
}

func quarantinePath(i byte) string {
	return "var/lib/viprof/jit-maps/9/epoch-" + string('0'+i) + ".map.tmp.quarantined"
}

func TestRetentionNoopOnCleanDisk(t *testing.T) {
	m := retentionMachine(1)
	stats := RunRetention(m, RetentionPolicy{})
	if !stats.Clean || stats.Scanned != 0 || stats.Pruned != 0 {
		t.Fatalf("clean-disk pass: %+v", stats)
	}
	if m.Kern.Disk().Exists(oprofile.RetentionStatsFile) {
		t.Fatal("clean-disk pass left a ledger file")
	}
}

func TestRetentionBoundsCountAndSize(t *testing.T) {
	m := retentionMachine(2)
	disk := m.Kern.Disk()
	for i := byte(0); i < 6; i++ {
		disk.Append(quarantinePath(i), make([]byte, 100*(int(i)+1)))
	}
	stats := RunRetention(m, RetentionPolicy{MaxQuarantineFiles: 4, MaxQuarantineBytes: 700, MaxAgePasses: -1})
	if !stats.Clean || stats.Scanned != 6 {
		t.Fatalf("pass: %+v", stats)
	}
	if stats.Kept+stats.Pruned != 6 || stats.Pruned == 0 {
		t.Fatalf("kept %d + pruned %d != scanned", stats.Kept, stats.Pruned)
	}
	if stats.Kept > 4 || stats.KeptBytes > 700 {
		t.Fatalf("bounds violated: kept=%d keptBytes=%d", stats.Kept, stats.KeptBytes)
	}
	// Pruned files are gone; kept files (the survivor ledger) remain.
	remaining := 0
	for _, p := range disk.List() {
		if strings.HasSuffix(p, QuarantineSuffix) {
			remaining++
			if _, ok := stats.Survivors[p]; !ok {
				t.Errorf("remaining file %q not in survivor ledger", p)
			}
		}
	}
	if remaining != stats.Kept {
		t.Fatalf("%d files remain, ledger says %d kept", remaining, stats.Kept)
	}
	// The ledger itself is framed and parseable.
	data, err := disk.Read(oprofile.RetentionStatsFile)
	if err != nil {
		t.Fatal(err)
	}
	persisted := oprofile.ReadRetentionStats(data)
	if persisted == nil || persisted.Pruned != stats.Pruned || len(persisted.Survivors) != stats.Kept {
		t.Fatalf("persisted ledger mismatch: %+v vs %+v", persisted, stats)
	}
}

func TestRetentionAgesAcrossPasses(t *testing.T) {
	m := retentionMachine(3)
	disk := m.Kern.Disk()
	disk.Append(quarantinePath(0), make([]byte, 64))
	pol := RetentionPolicy{MaxQuarantineFiles: -1, MaxQuarantineBytes: -1, MaxAgePasses: 3}
	for pass := 1; pass <= 3; pass++ {
		stats := RunRetention(m, pol)
		if stats.Pruned != 0 {
			t.Fatalf("pass %d pruned early: %+v", pass, stats)
		}
		if got := stats.Survivors[quarantinePath(0)]; got != pass {
			t.Fatalf("pass %d: age %d", pass, got)
		}
	}
	stats := RunRetention(m, pol)
	if stats.AgePruned != 1 || stats.Pruned != 1 {
		t.Fatalf("4th pass should age-prune: %+v", stats)
	}
	if disk.Exists(quarantinePath(0)) {
		t.Fatal("age-pruned file still on disk")
	}
}

// TestRetentionPersistBeforePrune pins the evidence-safety ordering: if
// the ledger write fails, nothing may be removed.
func TestRetentionPersistBeforePrune(t *testing.T) {
	m := retentionMachine(4)
	disk := m.Kern.Disk()
	for i := byte(0); i < 3; i++ {
		disk.Append(quarantinePath(i), make([]byte, 64))
	}
	m.Kern.SetFaultInjectors(kernel.FaultPlan{
		Seed:       4,
		PathPrefix: oprofile.RetentionStatsFile,
		PEIO:       1.0,
		MaxFaults:  1,
	})
	stats := RunRetention(m, RetentionPolicy{MaxQuarantineFiles: 1, MaxQuarantineBytes: -1, MaxAgePasses: -1})
	if stats.StatsErrors != 1 || stats.Clean {
		t.Fatalf("ledger write should have failed: %+v", stats)
	}
	for i := byte(0); i < 3; i++ {
		if !disk.Exists(quarantinePath(i)) {
			t.Fatalf("file %d pruned despite failed ledger write", i)
		}
	}
}

// TestRetentionSurfacedInIntegrity checks the report plumbing: a pass
// that pruned shows up in the Integrity section, and a damaged ledger
// degrades the run.
func TestRetentionSurfacedInIntegrity(t *testing.T) {
	m := retentionMachine(5)
	disk := m.Kern.Disk()
	for i := byte(0); i < 3; i++ {
		disk.Append(quarantinePath(i), make([]byte, 64))
	}
	stats := RunRetention(m, RetentionPolicy{MaxQuarantineFiles: 1, MaxQuarantineBytes: -1, MaxAgePasses: -1})
	if stats.Pruned != 2 {
		t.Fatalf("setup: %+v", stats)
	}
	_, _, err := Vipreport(disk, StandardImages(m), nil, []hpc.Event{hpc.GlobalPowerEvents})
	if err != nil {
		t.Fatal(err)
	}
	// Re-assemble just the integrity piece the way Vipreport does.
	data, err := disk.Read(oprofile.RetentionStatsFile)
	if err != nil {
		t.Fatal(err)
	}
	rt := oprofile.ReadRetentionStats(data)
	if rt == nil || rt.Pruned != 2 {
		t.Fatalf("persisted retention not readable: %+v", rt)
	}
	// Against a clean baseline (daemon stats present and clean), a
	// successful prune must not flip the run to degraded.
	clean := oprofile.Integrity{Stats: &oprofile.PersistedStats{Clean: true}}
	if clean.Degraded() {
		t.Fatal("baseline integrity unexpectedly degraded")
	}
	withRetention := clean
	withRetention.Retention = rt
	if withRetention.Degraded() {
		t.Fatal("successful pruning alone must not degrade the run")
	}
	// Now damage the ledger: existing but unparseable.
	disk.Remove(oprofile.RetentionStatsFile)
	disk.Append(oprofile.RetentionStatsFile, []byte("garbage, not a frame"))
	integ2 := &oprofile.Integrity{RetentionDamaged: true}
	if !integ2.Degraded() {
		t.Fatal("damaged retention ledger must degrade the run")
	}
	var sb strings.Builder
	if err := oprofile.FormatIntegrity(&sb, &oprofile.Integrity{Retention: rt, RetentionDamaged: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "retention:") || !strings.Contains(out, "DAMAGED") {
		t.Fatalf("integrity output missing retention lines:\n%s", out)
	}
}
