// Package core implements VIProf, the paper's contribution: the
// runtime-profiler extension that claims JIT-region samples, the VM
// agent that tracks compilations and GC code motion through epoch code
// maps, and the post-processing that resolves epoch-tagged samples to
// Java methods across the whole stack.
package core

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/addr"
	"viprof/internal/kernel"
	"viprof/internal/record"
)

// MapEntry is one record of a JIT code map: where a compiled method
// body lived when the map was written.
type MapEntry struct {
	Start addr.Address
	Size  uint32
	// Epoch is the epoch this entry belongs to. Map files carry it per
	// entry because a failed epoch write is deferred into the next
	// file: the tag lets recovery re-slot each entry into its true
	// epoch, so deferral is lossless for resolution.
	Epoch int
	Level string // compiler tier ("base"/"opt")
	Sig   string // fully qualified method signature
}

// End returns the exclusive end of the body.
func (e MapEntry) End() addr.Address { return e.Start + addr.Address(e.Size) }

// MapDir is the disk directory the VM agent writes code maps under.
const MapDir = "var/lib/viprof/jit-maps"

// MapPath names the map file for one (pid, epoch).
func MapPath(pid, epoch int) string {
	return fmt.Sprintf("%s/%d/map.%d", MapDir, pid, epoch)
}

// WriteMapFile serializes map entries, one framed + checksummed record
// per entry (see internal/record):
//
//	<hex start> <size> <epoch> <level> <signature>
//
// and finishes with a framed trailer recording the entry count. A write
// torn mid-file loses only the records past the tear — the salvage
// reader recovers every intact entry and the missing trailer marks the
// file as incomplete.
func WriteMapFile(w io.Writer, entries []MapEntry) error {
	for _, e := range entries {
		line := fmt.Sprintf("%08x %d %d %s %s\n",
			uint64(e.Start), e.Size, e.Epoch, e.Level, e.Sig)
		if _, err := w.Write(record.Frame([]byte(line))); err != nil {
			return err
		}
	}
	trailer := fmt.Sprintf("#end %d\n", len(entries))
	_, err := w.Write(record.Frame([]byte(trailer)))
	return err
}

// ReadMapFile parses map entries and verifies the trailer; any damage
// is a hard error here. Use salvageMapData to recover what survives a
// torn file.
func ReadMapFile(r io.Reader) ([]MapEntry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	entries, sal, trailerOK, err := salvageMapData(data)
	if err != nil {
		return nil, err
	}
	if sal.Lossy() {
		return nil, fmt.Errorf("code map corrupt: %d records dropped (%d bytes)",
			sal.DroppedRecords, sal.DroppedBytes)
	}
	if !trailerOK {
		return nil, fmt.Errorf("code map truncated: trailer missing or entry count mismatch (torn write?)")
	}
	return entries, nil
}

// salvageMapData recovers every intact entry of a possibly-damaged map
// file. trailerOK reports whether the end-trailer was found and its
// count matches the recovered entries (i.e. the file is provably
// complete). A checksum-valid record that fails to parse is a writer
// bug, not disk damage, and errors hard.
func salvageMapData(data []byte) (entries []MapEntry, sal record.Salvage, trailerOK bool, err error) {
	recs, sal := record.Scan(data)
	trailer := -1
	for _, payload := range recs {
		text := strings.TrimSpace(string(payload))
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#end ") {
			var n int
			if c, serr := fmt.Sscanf(text, "#end %d", &n); c != 1 || serr != nil {
				return nil, sal, false, fmt.Errorf("code map: bad trailer %q", text)
			}
			trailer = n
			continue
		}
		var start uint64
		var size uint32
		var epoch int
		var level, sig string
		if _, serr := fmt.Sscanf(text, "%x %d %d %s %s", &start, &size, &epoch, &level, &sig); serr != nil {
			return nil, sal, false, fmt.Errorf("code map entry %q: %v", text, serr)
		}
		entries = append(entries, MapEntry{
			Start: addr.Address(start), Size: size, Epoch: epoch, Level: level, Sig: sig,
		})
	}
	trailerOK = trailer == len(entries)
	return entries, sal, trailerOK, nil
}

// ChainIntegrity sums the damage found while loading one process's map
// chain from disk.
type ChainIntegrity struct {
	// Files is map files read; OrphanTmp counts .tmp files left by a
	// crash between the data write and the atomic rename.
	Files, OrphanTmp int
	// Entries is intact entries recovered.
	Entries int
	// Salvage accounting summed over files.
	DroppedRecords, DroppedBytes int
	// TornFiles is files with dropped records or a bad trailer.
	TornFiles int
	// UnreadableFiles is map files that exist but failed to read back
	// (EIO from a degraded disk). Every entry they held is lost, so they
	// poison the chain at their epoch like a torn file does.
	UnreadableFiles int
	// Quarantined counts .quarantined files the recovery pass set
	// aside: orphan temps too damaged to adopt, preserved as evidence.
	Quarantined int
	// MissingCommitted counts epochs the agent journal ratified whose
	// final files were nonetheless absent from the directory listing —
	// a lost dirent, not a deferred write. Each poisons the chain at
	// its epoch so hidden entries cannot shadow-resolve.
	MissingCommitted int
	// JournalDamaged is 1 when the commit journal was torn, unreadable,
	// or unparseable; the chain is conservatively poisoned whole.
	JournalDamaged int
}

// MapChain is one process's sequence of epoch code maps, supporting the
// paper's backward search: "the tools will initially search for a
// sample in the map file corresponding to the epoch during which the
// sample was recorded. If the sample is not found in the epoch's map,
// the tool will search the immediately preceding map and so on" (§3.2).
type MapChain struct {
	// maps[e] holds epoch e's entries sorted by Start; nil when the
	// epoch wrote no map.
	maps [][]MapEntry

	// idx is the flattened epoch index (built lazily on first Resolve);
	// see flatindex.go. It answers queries in one O(log segments)
	// search instead of the O(epochs × log entries) backward scan,
	// with identical results including the reported search depth.
	idx *flatIndex

	// integ is what loading from disk found; poisonCeil is the highest
	// epoch whose file was damaged (-1 = none). ResolveDurable refuses
	// to attribute through damaged epochs rather than guess.
	integ      ChainIntegrity
	poisonCeil int
}

// NewMapChain builds a chain from per-epoch entry lists (index =
// epoch).
func NewMapChain(perEpoch [][]MapEntry) *MapChain {
	c := &MapChain{maps: make([][]MapEntry, len(perEpoch)), poisonCeil: -1}
	for e, entries := range perEpoch {
		sorted := append([]MapEntry(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		c.maps[e] = sorted
	}
	return c
}

// ReadMapChain loads every map file for a pid from the simulated disk,
// salvaging what damage allows and accounting for the rest (see
// Integrity). Missing epochs (no file) are tolerated; entries land in
// the epoch their tag names, which is how deferred-then-merged entries
// find their way home.
func ReadMapChain(disk *kernel.Disk, pid int) (*MapChain, error) {
	prefix := fmt.Sprintf("%s/%d/", MapDir, pid)
	var integ ChainIntegrity
	poison := -1
	maxEpoch := -1
	type loaded struct {
		fileEpoch int
		entries   []MapEntry
	}
	var files []loaded
	present := make(map[int]bool)
	for _, name := range disk.List() {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		base := name[len(prefix):]
		if strings.HasSuffix(base, ".quarantined") {
			// The recovery pass set this damaged orphan aside; it is
			// preserved evidence, never resolved through.
			integ.Quarantined++
			continue
		}
		if strings.HasSuffix(base, ".tmp") {
			// A crash struck between the map data write and the atomic
			// rename: the final file never appeared, and this orphan is
			// the durable evidence (until recovery adopts or quarantines
			// it).
			integ.OrphanTmp++
			continue
		}
		numStr, found := strings.CutPrefix(base, "map.")
		if !found {
			continue // agent.stats, the commit journal, other non-map files
		}
		fileEpoch, err := strconv.Atoi(numStr)
		if err != nil || fileEpoch < 0 {
			continue // move logs ("map.-1.moves") etc.
		}
		present[fileEpoch] = true
		data, err := disk.Read(name)
		if err != nil {
			// The file exists but would not read back (EIO). Silently
			// skipping it would let the backward search walk past the
			// epoch and attribute samples through entries we never saw —
			// misattribution by omission. Count the loss and poison the
			// chain at this epoch instead, exactly as for a torn file.
			integ.Files++
			integ.UnreadableFiles++
			if fileEpoch > poison {
				poison = fileEpoch
			}
			if fileEpoch > maxEpoch {
				maxEpoch = fileEpoch
			}
			continue
		}
		entries, sal, trailerOK, err := salvageMapData(data)
		if err != nil {
			return nil, fmt.Errorf("map chain pid %d epoch %d: %v", pid, fileEpoch, err)
		}
		integ.Files++
		integ.Entries += len(entries)
		integ.DroppedRecords += sal.DroppedRecords
		integ.DroppedBytes += sal.DroppedBytes
		if sal.Lossy() || !trailerOK {
			integ.TornFiles++
			if fileEpoch > poison {
				poison = fileEpoch
			}
		}
		if fileEpoch > maxEpoch {
			maxEpoch = fileEpoch
		}
		files = append(files, loaded{fileEpoch, entries})
	}
	// Cross-check the listing against the agent's commit journal. A
	// directory listing is the third trusted surface after writes and
	// reads: a lost dirent silently hides a committed epoch, and the
	// backward search would then attribute samples through older,
	// staler entries — misattribution by omission. The journal (read by
	// direct path, so a damaged listing cannot hide it) says which
	// epochs were actually committed:
	//
	//   - journal intact + agent stats clean with zero journal errors:
	//     the journal is complete, so every committed epoch must have a
	//     file. A committed epoch with no file is a lost dirent —
	//     counted and poisoned at its epoch.
	//   - journal damaged, or its completeness unverifiable (agent
	//     stats absent, or they admit failed journal appends): the
	//     listing cannot be vouched for at all, so the whole chain is
	//     conservatively poisoned — ResolveDurable then only trusts
	//     hits at the newest epoch, which no hidden file can shadow.
	//   - journal missing with no files: an empty chain, nothing to
	//     guard. Journal missing with files present: same conservative
	//     poisoning (hand-assembled disks keep working through the
	//     poison-blind Resolve).
	//
	// This read happens after the map-file loop so the read-fault
	// schedule for map files is unchanged.
	journal := ReadAgentJournal(disk, pid)
	var agentStats *AgentPersisted
	if spath := AgentStatsPath(pid); disk.Exists(spath) {
		data, err := disk.Read(spath)
		if err != nil {
			// The stats exist but would not read back: the journal's
			// completeness witness is gone to an EIO, which must be as
			// loud as any other unreadable artifact.
			integ.JournalDamaged++
		} else {
			agentStats = ReadAgentStats(data)
		}
	}
	verified := !journal.Missing && !journal.Damaged &&
		agentStats != nil && agentStats.JournalErrors == 0
	if journal.Damaged {
		integ.JournalDamaged++
	}
	if !journal.Missing || len(files) > 0 || integ.UnreadableFiles > 0 {
		for e := range journal.Committed {
			if !present[e] {
				integ.MissingCommitted++
				if e > poison {
					poison = e
				}
			}
		}
		if !verified && maxEpoch > poison {
			poison = maxEpoch
		}
	}
	perEpoch := make([][]MapEntry, maxEpoch+1)
	for _, f := range files {
		for _, e := range f.entries {
			ep := e.Epoch
			// Clamp stray tags: an entry cannot belong to a later epoch
			// than the file that carries it (legacy epoch-0 tags from
			// zero values also land safely in their file's epoch).
			if ep < 0 || ep > f.fileEpoch {
				ep = f.fileEpoch
			}
			perEpoch[ep] = append(perEpoch[ep], e)
		}
	}
	c := NewMapChain(perEpoch)
	c.integ = integ
	c.poisonCeil = poison
	return c, nil
}

// Integrity returns what loading this chain from disk found.
func (c *MapChain) Integrity() ChainIntegrity { return c.integ }

// Epochs returns the number of epochs present in the chain.
func (c *MapChain) Epochs() int { return len(c.maps) }

// Entries returns epoch e's entries (nil if none).
func (c *MapChain) Entries(e int) []MapEntry {
	if e < 0 || e >= len(c.maps) {
		return nil
	}
	return c.maps[e]
}

// Resolve finds the method occupying pc as of the given epoch: the
// most recent body at or before that epoch to occupy the address,
// exactly as the paper's backward search defines it. searched reports
// how many maps the backward search would have examined (the ablation
// benchmarks measure its distribution). Resolution goes through the
// flattened epoch index — O(log segments) once, fronted by a small
// page-local cache — rather than the naive scan; ResolveScan retains
// the scan and the two are proven equivalent by property test.
func (c *MapChain) Resolve(epoch int, pc addr.Address) (entry MapEntry, searched int, ok bool) {
	if epoch >= len(c.maps) {
		epoch = len(c.maps) - 1
	}
	if epoch < 0 {
		return MapEntry{}, 0, false
	}
	if c.idx == nil {
		c.idx = buildFlatIndex(c.maps)
	}
	return c.idx.resolve(epoch, pc)
}

// ResolveDurable is Resolve hardened against a damaged chain: it
// refuses to attribute a sample when lost map entries could change the
// answer, returning not-found instead (degrade, don't lie).
//
// Two rules derive from how entries get lost:
//
//   - A sample epoch past the end of the chain is unresolved, never
//     clamped: the entries that would have covered it were lost with
//     the tail of the run (a killed VM's unwritten final map).
//   - Below a damaged ("poisoned") epoch file, a backward-search hit in
//     epoch e is trusted only when e >= the highest damaged epoch: an
//     entry lost from a damaged file has epoch <= that ceiling, and a
//     hit at or above it is newer than anything lost, so the loss
//     cannot shadow it. A hit strictly below the ceiling could have
//     been shadowed by a lost entry — unresolved.
func (c *MapChain) ResolveDurable(epoch int, pc addr.Address) (entry MapEntry, searched int, ok bool) {
	if epoch < 0 || epoch >= len(c.maps) {
		return MapEntry{}, 0, false
	}
	if c.poisonCeil < 0 {
		return c.Resolve(epoch, pc)
	}
	for e := epoch; e >= 0; e-- {
		searched++
		if entry, found := lookupEntry(c.maps[e], pc); found {
			if e >= c.poisonCeil {
				return entry, searched, true
			}
			return MapEntry{}, searched, false
		}
	}
	return MapEntry{}, searched, false
}

// ResolveScan is the paper's backward search, literally: probe the
// sample's epoch map, then each earlier map in descending order (§3.2).
// It is retained as the reference implementation — the ablation
// benchmark measures the flattened index against it, and the property
// tests assert Resolve matches it on arbitrary chains.
func (c *MapChain) ResolveScan(epoch int, pc addr.Address) (entry MapEntry, searched int, ok bool) {
	if epoch >= len(c.maps) {
		epoch = len(c.maps) - 1
	}
	for e := epoch; e >= 0; e-- {
		searched++
		if entry, found := lookupEntry(c.maps[e], pc); found {
			return entry, searched, true
		}
	}
	return MapEntry{}, searched, false
}

// lookupEntry binary-searches one epoch's sorted entries.
func lookupEntry(entries []MapEntry, pc addr.Address) (MapEntry, bool) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].End() > pc })
	if i < len(entries) && pc >= entries[i].Start {
		return entries[i], true
	}
	return MapEntry{}, false
}
