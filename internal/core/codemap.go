// Package core implements VIProf, the paper's contribution: the
// runtime-profiler extension that claims JIT-region samples, the VM
// agent that tracks compilations and GC code motion through epoch code
// maps, and the post-processing that resolves epoch-tagged samples to
// Java methods across the whole stack.
package core

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"viprof/internal/addr"
	"viprof/internal/kernel"
)

// MapEntry is one record of a JIT code map: where a compiled method
// body lived when the map was written.
type MapEntry struct {
	Start addr.Address
	Size  uint32
	Level string // compiler tier ("base"/"opt")
	Sig   string // fully qualified method signature
}

// End returns the exclusive end of the body.
func (e MapEntry) End() addr.Address { return e.Start + addr.Address(e.Size) }

// MapDir is the disk directory the VM agent writes code maps under.
const MapDir = "var/lib/viprof/jit-maps"

// MapPath names the map file for one (pid, epoch).
func MapPath(pid, epoch int) string {
	return fmt.Sprintf("%s/%d/map.%d", MapDir, pid, epoch)
}

// WriteMapFile serializes map entries, one per line:
//
//	<hex start> <size> <level> <signature>
//
// and finishes with a trailer recording the entry count, so a write
// torn mid-file (the VM crashing during the epoch write) is detectable
// rather than silently yielding a truncated-but-parseable map.
func WriteMapFile(w io.Writer, entries []MapEntry) error {
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%08x %d %s %s\n",
			uint64(e.Start), e.Size, e.Level, e.Sig); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "#end %d\n", len(entries)); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadMapFile parses map entries and verifies the trailer.
func ReadMapFile(r io.Reader) ([]MapEntry, error) {
	var out []MapEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	trailer := -1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#end ") {
			n, err := fmt.Sscanf(text, "#end %d", &trailer)
			if n != 1 || err != nil {
				return nil, fmt.Errorf("code map line %d: bad trailer %q", line, text)
			}
			continue
		}
		if trailer >= 0 {
			return nil, fmt.Errorf("code map line %d: data after trailer", line)
		}
		var start uint64
		var size uint32
		var level, sig string
		if _, err := fmt.Sscanf(text, "%x %d %s %s", &start, &size, &level, &sig); err != nil {
			return nil, fmt.Errorf("code map line %d: %v", line, err)
		}
		out = append(out, MapEntry{Start: addr.Address(start), Size: size, Level: level, Sig: sig})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if trailer < 0 {
		return nil, fmt.Errorf("code map truncated: missing trailer (torn write?)")
	}
	if trailer != len(out) {
		return nil, fmt.Errorf("code map truncated: trailer says %d entries, read %d", trailer, len(out))
	}
	return out, nil
}

// MapChain is one process's sequence of epoch code maps, supporting the
// paper's backward search: "the tools will initially search for a
// sample in the map file corresponding to the epoch during which the
// sample was recorded. If the sample is not found in the epoch's map,
// the tool will search the immediately preceding map and so on" (§3.2).
type MapChain struct {
	// maps[e] holds epoch e's entries sorted by Start; nil when the
	// epoch wrote no map.
	maps [][]MapEntry

	// idx is the flattened epoch index (built lazily on first Resolve);
	// see flatindex.go. It answers queries in one O(log segments)
	// search instead of the O(epochs × log entries) backward scan,
	// with identical results including the reported search depth.
	idx *flatIndex
}

// NewMapChain builds a chain from per-epoch entry lists (index =
// epoch).
func NewMapChain(perEpoch [][]MapEntry) *MapChain {
	c := &MapChain{maps: make([][]MapEntry, len(perEpoch))}
	for e, entries := range perEpoch {
		sorted := append([]MapEntry(nil), entries...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
		c.maps[e] = sorted
	}
	return c
}

// ReadMapChain loads every map file for a pid from the simulated disk.
// Missing epochs (no file) are tolerated.
func ReadMapChain(disk *kernel.Disk, pid int) (*MapChain, error) {
	var perEpoch [][]MapEntry
	for epoch := 0; ; epoch++ {
		data, err := disk.Read(MapPath(pid, epoch))
		if err != nil {
			// The chain ends at the first missing epoch unless a later
			// one exists (an epoch may legitimately write nothing).
			if disk.Exists(MapPath(pid, epoch+1)) {
				perEpoch = append(perEpoch, nil)
				continue
			}
			break
		}
		// Read through the disk buffer directly; a string(data) copy
		// here would duplicate every map file during post-processing.
		entries, err := ReadMapFile(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("map chain pid %d epoch %d: %v", pid, epoch, err)
		}
		perEpoch = append(perEpoch, entries)
	}
	return NewMapChain(perEpoch), nil
}

// Epochs returns the number of epochs present in the chain.
func (c *MapChain) Epochs() int { return len(c.maps) }

// Entries returns epoch e's entries (nil if none).
func (c *MapChain) Entries(e int) []MapEntry {
	if e < 0 || e >= len(c.maps) {
		return nil
	}
	return c.maps[e]
}

// Resolve finds the method occupying pc as of the given epoch: the
// most recent body at or before that epoch to occupy the address,
// exactly as the paper's backward search defines it. searched reports
// how many maps the backward search would have examined (the ablation
// benchmarks measure its distribution). Resolution goes through the
// flattened epoch index — O(log segments) once, fronted by a small
// page-local cache — rather than the naive scan; ResolveScan retains
// the scan and the two are proven equivalent by property test.
func (c *MapChain) Resolve(epoch int, pc addr.Address) (entry MapEntry, searched int, ok bool) {
	if epoch >= len(c.maps) {
		epoch = len(c.maps) - 1
	}
	if epoch < 0 {
		return MapEntry{}, 0, false
	}
	if c.idx == nil {
		c.idx = buildFlatIndex(c.maps)
	}
	return c.idx.resolve(epoch, pc)
}

// ResolveScan is the paper's backward search, literally: probe the
// sample's epoch map, then each earlier map in descending order (§3.2).
// It is retained as the reference implementation — the ablation
// benchmark measures the flattened index against it, and the property
// tests assert Resolve matches it on arbitrary chains.
func (c *MapChain) ResolveScan(epoch int, pc addr.Address) (entry MapEntry, searched int, ok bool) {
	if epoch >= len(c.maps) {
		epoch = len(c.maps) - 1
	}
	for e := epoch; e >= 0; e-- {
		searched++
		if entry, found := lookupEntry(c.maps[e], pc); found {
			return entry, searched, true
		}
	}
	return MapEntry{}, searched, false
}

// lookupEntry binary-searches one epoch's sorted entries.
func lookupEntry(entries []MapEntry, pc addr.Address) (MapEntry, bool) {
	i := sort.Search(len(entries), func(i int) bool { return entries[i].End() > pc })
	if i < len(entries) && pc >= entries[i].Start {
		return entries[i], true
	}
	return MapEntry{}, false
}
