package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/gc"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
)

// protoHarness drives the agent protocol directly — real heap, real
// compiled bodies, real epoch map writes — without a full VM, so the
// property test below can compare resolution against exact ground
// truth.
type protoHarness struct {
	t      *testing.T
	m      *kernel.Machine
	proc   *kernel.Process
	agent  *VMAgent
	heap   *gc.Heap
	bodies map[int]*jit.CodeBody // method index -> current (rooted) body
	nextID int
}

func newProtoHarness(t *testing.T) *protoHarness {
	h := &protoHarness{t: t, m: newTestMachine(), bodies: make(map[int]*jit.CodeBody)}
	proc, err := h.m.Kern.NewProcess("jikesrvm", kernel.ExecFunc(
		func(*kernel.Machine, *kernel.Process) kernel.StepResult { return kernel.StepExit }))
	if err != nil {
		t.Fatal(err)
	}
	h.proc = proc
	h.agent = NewVMAgent(h.m)
	if err := h.agent.Bind(proc); err != nil {
		t.Fatal(err)
	}
	roots := func() []*gc.Object {
		var out []*gc.Object
		for _, b := range h.bodies {
			out = append(out, b.Obj)
		}
		return out
	}
	heap, err := gc.NewHeap(0x6000_0000, 1<<20, roots, gc.Hooks{
		PreGC: h.agent.PreGC,
		Moved: func(o *gc.Object, old addr.Address) {
			if body, ok := o.Meta.(*jit.CodeBody); ok {
				h.agent.OnMove(body, old)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	h.heap = heap
	return h
}

// compile produces a fresh body for a method index (recompiling if it
// already had one) and reports it to the agent, exactly as the VM's
// compile hook does.
func (h *protoHarness) compile(idx int, codeLen int, level jit.Level) *jit.CodeBody {
	m := &classes.Method{
		Class: "app.Gen", Name: fmt.Sprintf("m%d_%d", idx, h.nextID),
		MaxLocals: 1, Index: idx,
	}
	h.nextID++
	for i := 0; i < codeLen-1; i++ {
		m.Code = append(m.Code, bytecode.Instr{Op: bytecode.Nop})
	}
	m.Code = append(m.Code, bytecode.Instr{Op: bytecode.RetVoid})
	body, err := jit.Compile(h.heap, m, level)
	if err != nil {
		h.t.Fatalf("compile: %v", err)
	}
	h.bodies[idx] = body
	h.agent.OnCompile(body, h.heap.Epoch())
	return body
}

type groundTruthSample struct {
	epoch int
	pc    addr.Address
	sig   string
}

func TestAgentWritesMapAtEachEpoch(t *testing.T) {
	h := newProtoHarness(t)
	h.compile(0, 20, jit.Baseline)
	h.heap.Collect() // map 0 written
	h.heap.Collect() // map 1 written
	h.agent.OnExit(h.heap.Epoch())
	for e := 0; e <= 2; e++ {
		if !h.m.Kern.Disk().Exists(MapPath(h.proc.PID, e)) {
			t.Errorf("map for epoch %d missing", e)
		}
	}
	st := h.agent.Stats()
	if st.MapsWritten != 3 || st.Compiles != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPartialMapContents(t *testing.T) {
	h := newProtoHarness(t)
	b0 := h.compile(0, 30, jit.Baseline)
	addr0 := b0.Start()
	h.heap.Collect() // map 0: b0 at its pre-GC address
	chain0, _ := ReadMapChain(h.m.Kern.Disk(), h.proc.PID)
	e0 := chain0.Entries(0)
	if len(e0) != 1 || e0[0].Start != addr0 || e0[0].Sig != b0.Method.Signature() {
		t.Fatalf("map 0 = %+v, want b0 at %s", e0, addr0)
	}
	// Epoch 1: nothing compiled, but b0 was moved by GC 0 -> map 1 must
	// carry its new address ("it also includes the methods that were
	// moved by the previous garbage collection", §3.1).
	newAddr := b0.Start()
	if newAddr == addr0 {
		t.Fatal("semispace GC did not move the body")
	}
	h.heap.Collect()
	chain1, _ := ReadMapChain(h.m.Kern.Disk(), h.proc.PID)
	e1 := chain1.Entries(1)
	if len(e1) != 1 || e1[0].Start != newAddr {
		t.Fatalf("map 1 = %+v, want moved b0 at %s", e1, newAddr)
	}
}

func TestAgentMoveFlagIsCheap(t *testing.T) {
	h := newProtoHarness(t)
	for i := 0; i < 20; i++ {
		h.compile(i, 20, jit.Baseline)
	}
	before := h.m.Core.Cycles()
	h.heap.Collect()
	// The move hook fires 20 times inside the collection; its cost must
	// be tiny relative to the map write (paper: flag, don't log).
	_ = before
	st := h.agent.Stats()
	if st.Moves != 20 {
		t.Fatalf("moves = %d", st.Moves)
	}
}

// The central protocol property: for any interleaving of compiles,
// recompiles and collections, a sample taken at (epoch, pc) inside a
// then-live body resolves through the written map chain to exactly
// that body's method — "the method which the sample will be associated
// with is the most recently compiled - or moved - method to occupy
// that address space" (§3.2).
func TestEpochResolutionMatchesGroundTruthQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newProtoHarness(t)
		var samples []groundTruthSample
		methods := rng.Intn(10) + 2
		for i := 0; i < methods; i++ {
			h.compile(i, rng.Intn(40)+5, jit.Baseline)
		}
		for step := 0; step < 120; step++ {
			switch rng.Intn(10) {
			case 0, 1:
				// Recompile a random method (old body dies).
				idx := rng.Intn(methods)
				lvl := jit.Baseline
				if rng.Intn(2) == 0 {
					lvl = jit.Opt
				}
				h.compile(idx, rng.Intn(40)+5, lvl)
			case 2:
				h.heap.Collect()
			default:
				// Sample a live body at a random interior offset.
				idx := rng.Intn(methods)
				b := h.bodies[idx]
				off := addr.Address(rng.Intn(int(b.Size)))
				samples = append(samples, groundTruthSample{
					epoch: h.heap.Epoch(),
					pc:    b.Start() + off,
					sig:   b.Method.Signature(),
				})
			}
		}
		h.agent.OnExit(h.heap.Epoch())
		chain, err := ReadMapChain(h.m.Kern.Disk(), h.proc.PID)
		if err != nil {
			return false
		}
		for _, s := range samples {
			e, _, ok := chain.Resolve(s.epoch, s.pc)
			if !ok || e.Sig != s.sig {
				t.Logf("seed %d: sample epoch=%d pc=%s want %q got %q (ok=%v)",
					seed, s.epoch, s.pc, s.sig, e.Sig, ok)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// FullMaps ablation mode writes strictly more bytes than the paper's
// partial scheme under the same event stream.
func TestFullMapsWriteMore(t *testing.T) {
	run := func(full bool) uint64 {
		h := newProtoHarness(t)
		h.agent.FullMaps = full
		for i := 0; i < 10; i++ {
			h.compile(i, 20, jit.Baseline)
		}
		for g := 0; g < 5; g++ {
			h.compile(g, 25, jit.Opt) // one recompile per epoch
			h.heap.Collect()
		}
		h.agent.OnExit(h.heap.Epoch())
		return h.agent.Stats().MapBytes
	}
	partial := run(false)
	full := run(true)
	if full <= partial {
		t.Errorf("full maps (%d B) not larger than partial (%d B)", full, partial)
	}
}
