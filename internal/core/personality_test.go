package core

// The paper claims its implementation is "simple and general enough to
// support a wide range of virtual execution environments (multiple Java
// virtual machines as well as Microsoft .Net common language
// runtimes)" (§2). These tests run the same VIProf pipeline against the
// CLR personality and against a mixed Jikes+CLR machine.

import (
	"strings"
	"testing"

	"viprof/internal/jvm"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
)

// buildCLRWorkload is a .NET-flavoured program.
func buildCLRWorkload(outer, inner int32) *classes.Program {
	p := classes.NewProgram("paycalc", 8)
	w := bytecode.NewAsm()
	w.Const(128).Emit(bytecode.NewArray, 8, 0).Store(2)
	w.Const(0).Store(1)
	w.Label("loop")
	w.Load(2).Load(1).Const(128).Emit(bytecode.Mod).Emit(bytecode.ALoad)
	w.Load(1).Emit(bytecode.Add).Store(3)
	w.Load(2).Load(1).Const(128).Emit(bytecode.Mod).Load(3).Emit(bytecode.AStore)
	w.Load(1).Const(6).Emit(bytecode.Mod)
	w.Branch(bytecode.JmpNZ, "noalloc")
	w.Emit(bytecode.New, 1, 3)
	w.Emit(bytecode.PutStatic, 0)
	w.Label("noalloc")
	w.Load(1).Const(1).Emit(bytecode.Add).Store(1)
	w.Load(1).Load(0).Emit(bytecode.CmpLT)
	w.Branch(bytecode.JmpNZ, "loop")
	w.Emit(bytecode.RetVoid)
	worker := p.Add(&classes.Method{
		Class: "PayCalc.Engine", Name: "ComputeRow", NArgs: 1, MaxLocals: 4,
		Code: w.MustFinish(),
	})
	mn := bytecode.NewAsm()
	mn.Const(0).Store(0)
	mn.Label("outer")
	mn.Const(inner).Call(int32(worker.Index))
	mn.Load(0).Const(1).Emit(bytecode.Add).Store(0)
	mn.Load(0).Const(outer).Emit(bytecode.CmpLT)
	mn.Branch(bytecode.JmpNZ, "outer")
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{
		Class: "PayCalc.Program", Name: "Main", MaxLocals: 1, Code: mn.MustFinish(),
	})
	p.SetMain(main)
	return p
}

func TestCLRPersonalityProfiled(t *testing.T) {
	m := newTestMachine()
	s, err := Start(m, stdConfig())
	if err != nil {
		t.Fatal(err)
	}
	vm, proc, err := s.LaunchJVM(buildCLRWorkload(300, 300), jvm.Config{
		HeapBytes: 128 << 10, AOSThreshold: 100, Personality: jvm.CLR(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if proc.Name != "clrhost" {
		t.Errorf("process name %q", proc.Name)
	}
	if err := m.Kern.Run(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("CLR VM failed: %v", vm.Err())
	}
	s.Shutdown()

	rep, _, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	// Application methods resolve under JIT.App.
	if _, ok := rep.Find("PayCalc.Engine.ComputeRow"); !ok {
		t.Error("CLR application method not in report")
	}
	// Runtime services resolve under CLR.map with mscorwks symbols.
	clrRows, ok := rep.FindImage("CLR.map")
	if !ok || clrRows.Counts[0] == 0 {
		t.Fatal("no CLR.map rows")
	}
	sawJIT := false
	for _, row := range rep.Rows {
		if row.Image == "CLR.map" && strings.Contains(row.Symbol, "CILJit::compileMethod") {
			sawJIT = true
		}
		if row.Image == "RVM.map" {
			t.Errorf("Jikes row in a CLR-only run: %+v", row)
		}
	}
	if !sawJIT {
		t.Error("CLR JIT compiler invisible in profile")
	}
	// The boot image itself must not leak through unsymbolized.
	if raw, ok := rep.FindImage("mscorwks.image"); ok && raw.Counts[0] > 0 {
		t.Error("mscorwks.image rows not symbolized via CLR.map")
	}
}

func TestMixedPersonalitiesOneMachine(t *testing.T) {
	m := newTestMachine()
	s, err := Start(m, stdConfig())
	if err != nil {
		t.Fatal(err)
	}
	jvmVM, jvmProc, err := s.LaunchJVM(buildWorkload(150, 300), jvm.Config{
		HeapBytes: 128 << 10, AOSThreshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	clrVM, clrProc, err := s.LaunchJVM(buildCLRWorkload(150, 300), jvm.Config{
		HeapBytes: 128 << 10, AOSThreshold: 100, Personality: jvm.CLR(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(40_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !jvmVM.Finished() || !clrVM.Finished() {
		t.Fatalf("VMs failed: %v / %v", jvmVM.Err(), clrVM.Err())
	}
	s.Shutdown()

	// One report spans both stacks: process names differ, so both pid
	// mappings can coexist.
	rep, _, err := s.Report(s.Images(jvmVM, clrVM), map[string]int{
		jvmProc.Name: jvmProc.PID,
		clrProc.Name: clrProc.PID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rep.Find("edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine"); !ok {
		t.Error("Jikes app method missing")
	}
	if _, ok := rep.Find("PayCalc.Engine.ComputeRow"); !ok {
		t.Error("CLR app method missing")
	}
	if _, ok := rep.FindImage("RVM.map"); !ok {
		t.Error("RVM.map rows missing")
	}
	if _, ok := rep.FindImage("CLR.map"); !ok {
		t.Error("CLR.map rows missing")
	}
}
