package core

import (
	"viprof/internal/addr"
)

// Runtime is VIProf's runtime-profiler state: the registration table
// through which "a VM [registers] the fact that it is executing
// dynamically generated code [and] the boundaries of its memory heap"
// (§3). It implements both the VM-facing registration interface
// (jvm.Registry) and the sampling-path query interface
// (oprofile.Registry).
type Runtime struct {
	regions map[int]*jitRegion
	// stats
	checks, hits uint64
}

type jitRegion struct {
	lo, hi addr.Address
	epoch  func() int
	stack  func(max int) []addr.Address
}

// NewRuntime returns an empty registration table.
func NewRuntime() *Runtime {
	return &Runtime{regions: make(map[int]*jitRegion)}
}

// RegisterJIT implements jvm.Registry.
func (r *Runtime) RegisterJIT(pid int, start, end addr.Address, epoch func() int) {
	r.regions[pid] = &jitRegion{lo: start, hi: end, epoch: epoch}
}

// UnregisterJIT implements jvm.Registry.
func (r *Runtime) UnregisterJIT(pid int) { delete(r.regions, pid) }

// AttachStackWalker lets a registered VM expose its call stack for the
// cross-layer call-graph extension.
func (r *Runtime) AttachStackWalker(pid int, walk func(max int) []addr.Address) {
	if reg, ok := r.regions[pid]; ok {
		reg.stack = walk
	}
}

// Check implements oprofile.Registry: "the logging code will consult
// this information before deciding to log a sample as being anonymous"
// (§3).
func (r *Runtime) Check(pid int, pc addr.Address) (bool, int) {
	r.checks++
	reg, ok := r.regions[pid]
	if !ok || pc < reg.lo || pc >= reg.hi {
		return false, 0
	}
	r.hits++
	return true, reg.epoch()
}

// Stack implements oprofile.Registry.
func (r *Runtime) Stack(pid int, max int) []addr.Address {
	reg, ok := r.regions[pid]
	if !ok || reg.stack == nil {
		return nil
	}
	return reg.stack(max)
}

// Epoch implements oprofile.Registry: the process's current execution
// epoch, for tagging stack samples whose leaf is outside JIT code.
func (r *Runtime) Epoch(pid int) int {
	reg, ok := r.regions[pid]
	if !ok {
		return 0
	}
	return reg.epoch()
}

// Registered reports whether a pid currently has a JIT region.
func (r *Runtime) Registered(pid int) bool {
	_, ok := r.regions[pid]
	return ok
}

// Stats returns (checks, hits) for the region lookup fast path.
func (r *Runtime) Stats() (checks, hits uint64) { return r.checks, r.hits }
