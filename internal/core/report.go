package core

import (
	"bytes"
	"fmt"

	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/jvm"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// Post-processing. "A key to our low overhead implementation ... is
// that we delay most of the work to the offline profile analysis
// stage" (§3.2). The VIProf post-processor extends opreport's reader
// with two resolvers the baseline lacks:
//
//   - JIT.App samples resolve through the epoch code-map chain
//     (backward search across epochs);
//   - boot-image samples resolve through RVM.map, displayed under the
//     "RVM.map" image name exactly as the paper's Figure 1 shows.

// RVMMapImageName is the display image for boot-image samples
// symbolized via RVM.map (Figure 1's "RVM.map" rows). Other runtime
// personalities display under their own map name (e.g. "CLR.map").
const RVMMapImageName = "RVM.map"

// BootMap is one runtime personality's parsed boot-image symbol map.
type BootMap struct {
	// Display is the image column shown for symbolized rows.
	Display string
	// Map is the parsed symbol table.
	Map *image.Image
}

// Resolver is VIProf's sample resolver: ELF symbol tables + runtime
// boot maps (RVM.map, CLR.map, ...) + epoch code maps.
type Resolver struct {
	ELF *oprofile.ELFResolver
	// BootMaps keys boot image names (e.g. "RVM.code.image") to their
	// parsed maps; missing entries degrade to baseline behaviour.
	BootMaps map[string]BootMap
	// Chains maps pid -> that VM's epoch code maps.
	Chains map[int]*MapChain
	// PIDByProc lets JIT keys (which carry process names) find their
	// chain.
	PIDByProc map[string]int

	// SearchDepths histograms how many maps the backward search
	// examined per resolved JIT sample (ablation metric).
	SearchDepths map[int]uint64
	unresolved   uint64
}

// Resolve implements oprofile.Resolver.
func (r *Resolver) Resolve(k oprofile.Key) (string, string) {
	if k.JIT {
		pid, ok := r.PIDByProc[k.Proc]
		if !ok {
			return oprofile.JITImageName, oprofile.NoSymbols
		}
		chain, ok := r.Chains[pid]
		if !ok {
			return oprofile.JITImageName, oprofile.NoSymbols
		}
		entry, depth, found := chain.Resolve(k.Epoch, k.Off)
		if r.SearchDepths != nil && found {
			r.SearchDepths[depth]++
		}
		if !found {
			r.unresolved++
			return oprofile.JITImageName, oprofile.NoSymbols
		}
		return oprofile.JITImageName, entry.Sig
	}
	if bm, ok := r.BootMaps[k.Image]; ok && bm.Map != nil {
		if s, found := bm.Map.Resolve(k.Off); found {
			return bm.Display, s.Name
		}
		return bm.Display, oprofile.NoSymbols
	}
	return r.ELF.Resolve(k)
}

// Unresolved returns how many JIT samples no code map could explain.
func (r *Resolver) Unresolved() uint64 { return r.unresolved }

// NewResolver assembles a VIProf resolver from the simulated disk: it
// parses RVM.map and every registered VM's code-map chain.
func NewResolver(disk *kernel.Disk, images map[string]*image.Image, vmPIDs map[string]int) (*Resolver, error) {
	r := &Resolver{
		ELF:          &oprofile.ELFResolver{Images: images},
		BootMaps:     make(map[string]BootMap),
		Chains:       make(map[int]*MapChain),
		PIDByProc:    vmPIDs,
		SearchDepths: make(map[int]uint64),
	}
	for _, pers := range jvm.Personalities() {
		data, err := disk.Read(pers.MapFileName)
		if err != nil {
			continue // personality not present in this run
		}
		im, err := image.ReadRVMMap(bytes.NewReader(data), pers.BootImageName)
		if err != nil {
			return nil, fmt.Errorf("viprof: parsing %s: %v", pers.MapFileName, err)
		}
		r.BootMaps[pers.BootImageName] = BootMap{Display: pers.MapDisplay, Map: im}
	}
	for _, pid := range vmPIDs {
		chain, err := ReadMapChain(disk, pid)
		if err != nil {
			return nil, err
		}
		r.Chains[pid] = chain
	}
	return r, nil
}

// StandardImages assembles the symbol-table set a report run needs:
// the kernel, every loaded module, and each VM's native images (libc,
// bootstrap loader, agent library). The boot image is deliberately
// absent — its symbols come from RVM.map, not an ELF table.
func StandardImages(m *kernel.Machine, vms ...*jvm.VM) map[string]*image.Image {
	images := map[string]*image.Image{
		"vmlinux": m.Kern.Vmlinux(),
	}
	for _, mod := range m.Kern.Modules() {
		images[mod.Image.Name] = mod.Image
	}
	for _, vm := range vms {
		for _, im := range vm.NativeImages() {
			images[im.Name] = im
		}
	}
	return images
}

// Vipreport builds the vertically integrated report — the upper half of
// the paper's Figure 1 — from the sample file, the code maps, and
// RVM.map on the simulated disk. vmPIDs maps VM process names (as they
// appear in samples) to pids.
func Vipreport(disk *kernel.Disk, images map[string]*image.Image, vmPIDs map[string]int,
	events []hpc.Event) (*oprofile.Report, *Resolver, error) {
	data, err := disk.Read(oprofile.SampleFile)
	if err != nil {
		return nil, nil, fmt.Errorf("vipreport: %v", err)
	}
	counts, err := oprofile.ReadCounts(bytes.NewReader(data))
	if err != nil {
		return nil, nil, err
	}
	res, err := NewResolver(disk, images, vmPIDs)
	if err != nil {
		return nil, nil, err
	}
	return oprofile.BuildReport(counts, res, events), res, nil
}
