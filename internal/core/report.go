package core

import (
	"bytes"
	"fmt"
	"sort"

	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/jvm"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// Post-processing. "A key to our low overhead implementation ... is
// that we delay most of the work to the offline profile analysis
// stage" (§3.2). The VIProf post-processor extends opreport's reader
// with two resolvers the baseline lacks:
//
//   - JIT.App samples resolve through the epoch code-map chain
//     (backward search across epochs);
//   - boot-image samples resolve through RVM.map, displayed under the
//     "RVM.map" image name exactly as the paper's Figure 1 shows.

// RVMMapImageName is the display image for boot-image samples
// symbolized via RVM.map (Figure 1's "RVM.map" rows). Other runtime
// personalities display under their own map name (e.g. "CLR.map").
const RVMMapImageName = "RVM.map"

// BootMap is one runtime personality's parsed boot-image symbol map.
type BootMap struct {
	// Display is the image column shown for symbolized rows.
	Display string
	// Map is the parsed symbol table.
	Map *image.Image
}

// Resolver is VIProf's sample resolver: ELF symbol tables + runtime
// boot maps (RVM.map, CLR.map, ...) + epoch code maps.
type Resolver struct {
	ELF *oprofile.ELFResolver
	// BootMaps keys boot image names (e.g. "RVM.code.image") to their
	// parsed maps; missing entries degrade to baseline behaviour.
	BootMaps map[string]BootMap
	// Chains maps pid -> that VM's epoch code maps.
	Chains map[int]*MapChain
	// PIDByProc lets JIT keys (which carry process names) find their
	// chain.
	PIDByProc map[string]int

	// SearchDepths histograms how many maps the backward search
	// examined per resolved JIT sample (ablation metric).
	SearchDepths map[int]uint64
	unresolved   uint64
}

// Resolve implements oprofile.Resolver.
func (r *Resolver) Resolve(k oprofile.Key) (string, string) {
	if k.JIT {
		pid, ok := r.PIDByProc[k.Proc]
		if !ok {
			return oprofile.JITImageName, oprofile.NoSymbols
		}
		chain, ok := r.Chains[pid]
		if !ok {
			return oprofile.JITImageName, oprofile.NoSymbols
		}
		// ResolveDurable, not Resolve: on a chain that lost entries to
		// torn files or a killed VM, samples that damage could
		// misattribute come back unresolved instead of guessed.
		entry, depth, found := chain.ResolveDurable(k.Epoch, k.Off)
		if r.SearchDepths != nil && found {
			r.SearchDepths[depth]++
		}
		if !found {
			r.unresolved++
			return oprofile.JITImageName, oprofile.NoSymbols
		}
		return oprofile.JITImageName, entry.Sig
	}
	if bm, ok := r.BootMaps[k.Image]; ok && bm.Map != nil {
		if s, found := bm.Map.Resolve(k.Off); found {
			return bm.Display, s.Name
		}
		return bm.Display, oprofile.NoSymbols
	}
	return r.ELF.Resolve(k)
}

// Unresolved returns how many JIT samples no code map could explain.
func (r *Resolver) Unresolved() uint64 { return r.unresolved }

// NewResolver assembles a VIProf resolver from the simulated disk: it
// parses RVM.map and every registered VM's code-map chain.
func NewResolver(disk *kernel.Disk, images map[string]*image.Image, vmPIDs map[string]int) (*Resolver, error) {
	r := &Resolver{
		ELF:          &oprofile.ELFResolver{Images: images},
		BootMaps:     make(map[string]BootMap),
		Chains:       make(map[int]*MapChain),
		PIDByProc:    vmPIDs,
		SearchDepths: make(map[int]uint64),
	}
	for _, pers := range jvm.Personalities() {
		//viplint:allow record-frame RVM.map is the legacy line-oriented text format; ReadRVMMap fails per-line, a torn tail loses at most trailing symbols
		data, err := disk.Read(pers.MapFileName)
		if err != nil {
			continue // personality not present in this run
		}
		im, err := image.ReadRVMMap(bytes.NewReader(data), pers.BootImageName)
		if err != nil {
			return nil, fmt.Errorf("viprof: parsing %s: %v", pers.MapFileName, err)
		}
		r.BootMaps[pers.BootImageName] = BootMap{Display: pers.MapDisplay, Map: im}
	}
	for _, pid := range vmPIDs {
		chain, err := ReadMapChain(disk, pid)
		if err != nil {
			return nil, err
		}
		r.Chains[pid] = chain
	}
	return r, nil
}

// StandardImages assembles the symbol-table set a report run needs:
// the kernel, every loaded module, and each VM's native images (libc,
// bootstrap loader, agent library). The boot image is deliberately
// absent — its symbols come from RVM.map, not an ELF table.
func StandardImages(m *kernel.Machine, vms ...*jvm.VM) map[string]*image.Image {
	images := map[string]*image.Image{
		"vmlinux": m.Kern.Vmlinux(),
	}
	for _, mod := range m.Kern.Modules() {
		images[mod.Image.Name] = mod.Image
	}
	for _, vm := range vms {
		for _, im := range vm.NativeImages() {
			images[im.Name] = im
		}
	}
	return images
}

// Vipreport builds the vertically integrated report — the upper half of
// the paper's Figure 1 — from the sample file, the code maps, and
// RVM.map on the simulated disk. vmPIDs maps VM process names (as they
// appear in samples) to pids.
//
// It is tolerant of damage: a missing sample file, torn records, or
// damaged code maps produce a report of whatever survived, with every
// loss accounted in the attached Integrity section. Only structural
// corruption (a checksum-valid record that cannot parse — a writer bug)
// still errors.
func Vipreport(disk *kernel.Disk, images map[string]*image.Image, vmPIDs map[string]int,
	events []hpc.Event) (*oprofile.Report, *Resolver, error) {
	integ := &oprofile.Integrity{}
	var counts map[oprofile.Key]uint64
	data, err := disk.Read(oprofile.SampleFile)
	if err != nil {
		integ.SampleFileMissing = true
		counts = make(map[oprofile.Key]uint64)
	} else {
		var sal record.Salvage
		counts, sal, err = oprofile.ReadCountsSalvage(data)
		if err != nil {
			return nil, nil, err
		}
		integ.SampleRecords = sal.Records
		integ.SampleDroppedRecords = sal.DroppedRecords
		integ.SampleDroppedBytes = sal.DroppedBytes
	}
	if stats, err := disk.Read(oprofile.DaemonStatsFile); err == nil {
		integ.Stats = oprofile.ReadDaemonStats(stats)
	}
	// Spill and recovery evidence. The spill state is re-read from disk
	// (not taken from the daemon's self-counters) so the report reflects
	// what recovery actually left behind.
	spillSt := oprofile.ReadSpillState(disk)
	integ.SpillOnDisk = spillSt.OnDiskTotal
	integ.SpillJournalDamaged = spillSt.Journal.Damaged
	if disk.Exists(oprofile.RecoveryStatsFile) {
		if rdata, err := disk.Read(oprofile.RecoveryStatsFile); err == nil {
			integ.Recovery = oprofile.ReadRecoveryStats(rdata)
		}
		if integ.Recovery == nil {
			// The file exists but no intact decision record survives.
			integ.RecoveryIncomplete = true
		}
	}
	if spillSt.Journal.RecoveryBegun > 0 && integ.Recovery == nil {
		// Durable begin marker(s), no decision record: a recovery pass
		// started and never finished.
		integ.RecoveryIncomplete = true
	}
	if disk.Exists(oprofile.RetentionStatsFile) {
		if rdata, err := disk.Read(oprofile.RetentionStatsFile); err == nil {
			integ.Retention = oprofile.ReadRetentionStats(rdata)
		}
		if integ.Retention == nil {
			// The ledger exists but no intact record survives (or the
			// read itself failed): age tracking is broken — loudly.
			integ.RetentionDamaged = true
		}
	}
	// Per-event spill accounting: what recovery merged back vs what the
	// daemon's hard cap dropped for good.
	spillEvents := make(map[string]*oprofile.SpillIntegrity)
	addSpill := func(ev string) *oprofile.SpillIntegrity {
		si, ok := spillEvents[ev]
		if !ok {
			si = &oprofile.SpillIntegrity{Event: ev}
			spillEvents[ev] = si
		}
		return si
	}
	if integ.Recovery != nil {
		for ev, c := range integ.Recovery.SpillRecovered {
			addSpill(ev).Recovered += c
		}
	}
	if integ.Stats != nil {
		for ev, c := range integ.Stats.SpilledLostByEvent {
			addSpill(ev).Lost += c
		}
	}
	spillNames := make([]string, 0, len(spillEvents))
	for ev := range spillEvents {
		spillNames = append(spillNames, ev)
	}
	sort.Strings(spillNames)
	for _, ev := range spillNames {
		integ.Spill = append(integ.Spill, *spillEvents[ev])
	}
	res, err := NewResolver(disk, images, vmPIDs)
	if err != nil {
		return nil, nil, err
	}
	rep := oprofile.BuildReport(counts, res, events)
	integ.UnresolvedJIT = res.Unresolved()

	procs := make([]string, 0, len(vmPIDs))
	for proc := range vmPIDs {
		procs = append(procs, proc)
	}
	sort.Strings(procs)
	for _, proc := range procs {
		pid := vmPIDs[proc]
		mi := oprofile.MapIntegrity{PID: pid, Proc: proc}
		if chain, ok := res.Chains[pid]; ok {
			ci := chain.Integrity()
			mi.Files, mi.OrphanTmp, mi.Entries = ci.Files, ci.OrphanTmp, ci.Entries
			mi.DroppedRecords, mi.DroppedBytes, mi.TornFiles = ci.DroppedRecords, ci.DroppedBytes, ci.TornFiles
			mi.UnreadableFiles = ci.UnreadableFiles
			mi.Quarantined = ci.Quarantined
			mi.MissingCommitted = ci.MissingCommitted
			mi.JournalDamaged = ci.JournalDamaged
		}
		if data, err := disk.Read(AgentStatsPath(pid)); err == nil {
			if ap := ReadAgentStats(data); ap != nil {
				mi.AgentStatsPresent = true
				mi.AgentClean = ap.Clean
				mi.MapWriteErrors = ap.MapWriteErrors
				mi.DeferredEntries = ap.Deferred
				mi.JournalErrors = ap.JournalErrors
			}
		}
		integ.Maps = append(integ.Maps, mi)
	}
	rep.Integrity = integ
	return rep, res, nil
}
