package core

import (
	"sort"

	"viprof/internal/addr"
)

// The flattened epoch index. The paper's backward search (§3.2) probes
// epoch maps newest-first per sample: O(epochs × log entries) per
// resolution, paid again for every one of the millions of samples a
// full-length run produces. Post-processing is offline, so we can
// afford one precomputation pass instead: flatten the whole chain into
// a single merged interval index keyed by address, where each interval
// segment lists the epochs that map it (most recent first). A
// resolution is then one O(log segments) binary search plus a scan of
// the (almost always length-1) per-segment epoch list — and the depth
// the naive search *would* have reported is recoverable from the index
// metadata (query epoch minus winning epoch), so the paper's
// SearchDepths ablation histogram is unchanged.
//
// A small per-(epoch, pc-page) LRU sits in front of the index: profile
// samples are heavily page-local (hot methods), so consecutive samples
// usually resolve through the same segment; the cache remembers the
// segment span and answers repeats without touching the index at all.

// flatOcc records that one epoch's map covers a segment.
type flatOcc struct {
	epoch int
	entry MapEntry
}

// flatIndex is the merged interval index over a whole MapChain.
type flatIndex struct {
	// bounds are the sorted distinct entry boundaries; segment i spans
	// [bounds[i], bounds[i+1]) and is described by occ[i], the covering
	// epochs in descending order. len(occ) == len(bounds)-1.
	bounds []addr.Address
	occ    [][]flatOcc

	cache resolveCache
}

// buildFlatIndex flattens per-epoch sorted entry lists into the merged
// index. Segment boundaries are every entry Start/End across every
// epoch, so within one segment each epoch's lookup result is constant;
// the per-segment occupant list is computed with the exact same
// lookupEntry the backward search uses, which makes the index
// equivalent by construction (including any within-epoch overlap
// shadowing).
func buildFlatIndex(maps [][]MapEntry) *flatIndex {
	var points []addr.Address
	for _, entries := range maps {
		for _, e := range entries {
			points = append(points, e.Start, e.End())
		}
	}
	idx := &flatIndex{}
	idx.cache.init(resolveCacheSize)
	if len(points) == 0 {
		return idx
	}
	sort.Slice(points, func(i, j int) bool { return points[i] < points[j] })
	idx.bounds = points[:1]
	for _, p := range points[1:] {
		if p != idx.bounds[len(idx.bounds)-1] {
			idx.bounds = append(idx.bounds, p)
		}
	}
	idx.occ = make([][]flatOcc, len(idx.bounds)-1)
	for i := range idx.occ {
		probe := idx.bounds[i] // any pc in the segment resolves alike
		for e := len(maps) - 1; e >= 0; e-- {
			if entry, found := lookupEntry(maps[e], probe); found {
				idx.occ[i] = append(idx.occ[i], flatOcc{epoch: e, entry: entry})
			}
		}
	}
	return idx
}

// segment returns the index i with bounds[i] <= pc < bounds[i+1], or -1
// when pc falls outside every mapped interval boundary.
func (x *flatIndex) segment(pc addr.Address) int {
	i := sort.Search(len(x.bounds), func(i int) bool { return x.bounds[i] > pc }) - 1
	if i < 0 || i >= len(x.occ) {
		return -1
	}
	return i
}

// resolve answers one query against the index. epoch must already be
// clamped into [0, epochs). The returned depth matches the naive
// backward search exactly: maps examined from `epoch` down to the
// winning epoch inclusive, or epoch+1 (every map) when unresolved.
func (x *flatIndex) resolve(epoch int, pc addr.Address) (MapEntry, int, bool) {
	if hit, e, depth, ok := x.cache.get(epoch, pc); hit {
		return e, depth, ok
	}
	entry, depth, ok, lo, hi := x.resolveSeg(epoch, pc)
	x.cache.put(epoch, pc, lo, hi, entry, depth, ok)
	return entry, depth, ok
}

// resolveSeg is resolve without the cache; it also reports the address
// span [lo, hi) over which the answer is constant for this epoch, which
// is what the cache stores.
func (x *flatIndex) resolveSeg(epoch int, pc addr.Address) (entry MapEntry, depth int, ok bool, lo, hi addr.Address) {
	i := x.segment(pc)
	if i < 0 {
		// Outside all boundaries: constant over the gap.
		lo, hi = x.gap(pc)
		return MapEntry{}, epoch + 1, false, lo, hi
	}
	lo, hi = x.bounds[i], x.bounds[i+1]
	for _, o := range x.occ[i] {
		if o.epoch <= epoch {
			return o.entry, epoch - o.epoch + 1, true, lo, hi
		}
	}
	return MapEntry{}, epoch + 1, false, lo, hi
}

// gap returns the unmapped span containing pc (clamped to the address
// extremes when pc lies before the first or after the last boundary).
func (x *flatIndex) gap(pc addr.Address) (lo, hi addr.Address) {
	if len(x.bounds) == 0 || pc < x.bounds[0] {
		hi = ^addr.Address(0)
		if len(x.bounds) > 0 {
			hi = x.bounds[0]
		}
		return 0, hi
	}
	return x.bounds[len(x.bounds)-1], ^addr.Address(0)
}

// resolveCacheSize bounds the per-(epoch, page) front cache. Reports
// touch a handful of hot code pages per epoch; 128 slots covers them
// with room to spare while keeping eviction scans trivial.
const resolveCacheSize = 128

type cacheKey struct {
	epoch int
	page  uint64
}

type cacheVal struct {
	lo, hi addr.Address // span over which the answer holds
	entry  MapEntry
	depth  int
	ok     bool
}

// resolveCache is a fixed-capacity map with FIFO replacement (a ring of
// keys tracks insertion order — deterministic, unlike map iteration).
type resolveCache struct {
	vals map[cacheKey]cacheVal
	ring []cacheKey
	next int

	hits, misses uint64
}

func (c *resolveCache) init(capacity int) {
	c.vals = make(map[cacheKey]cacheVal, capacity)
	c.ring = make([]cacheKey, 0, capacity)
}

func (c *resolveCache) get(epoch int, pc addr.Address) (hit bool, e MapEntry, depth int, ok bool) {
	v, found := c.vals[cacheKey{epoch: epoch, page: uint64(pc) >> 12}]
	if !found || pc < v.lo || pc >= v.hi {
		c.misses++
		return false, MapEntry{}, 0, false
	}
	c.hits++
	return true, v.entry, v.depth, v.ok
}

func (c *resolveCache) put(epoch int, pc addr.Address, lo, hi addr.Address, e MapEntry, depth int, ok bool) {
	k := cacheKey{epoch: epoch, page: uint64(pc) >> 12}
	if _, exists := c.vals[k]; !exists {
		if len(c.ring) < cap(c.ring) {
			c.ring = append(c.ring, k)
		} else {
			delete(c.vals, c.ring[c.next])
			c.ring[c.next] = k
			c.next = (c.next + 1) % len(c.ring)
		}
	}
	c.vals[k] = cacheVal{lo: lo, hi: hi, entry: e, depth: depth, ok: ok}
}
