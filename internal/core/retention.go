package core

import (
	"sort"
	"strings"

	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/record"
)

// The retention pass: quarantined evidence files (*.quarantined, parked
// by the recovery pass's damaged-artifact path) are kept for inspection
// but must not accumulate forever. This pass bounds them by count, by
// total size, and by age — where "age" is the number of retention
// passes that have seen the file, tracked in the persisted survivor
// ledger, because the simulated disk has no timestamps. Decisions are
// persisted framed BEFORE any file is removed: if the ledger write
// fails, nothing is pruned, so evidence never disappears untracked.

// RetentionPolicy bounds the quarantine evidence set.
type RetentionPolicy struct {
	// MaxQuarantineFiles bounds how many quarantined files are kept
	// (default 8; 0 means default, negative means unlimited).
	MaxQuarantineFiles int
	// MaxQuarantineBytes bounds their total size (default 64 KiB;
	// 0 means default, negative means unlimited).
	MaxQuarantineBytes int
	// MaxAgePasses bounds how many retention passes a file may survive
	// (default 4; 0 means default, negative means unlimited).
	MaxAgePasses int
}

func (p *RetentionPolicy) fill() {
	if p.MaxQuarantineFiles == 0 {
		p.MaxQuarantineFiles = 8
	}
	if p.MaxQuarantineBytes == 0 {
		p.MaxQuarantineBytes = 64 << 10
	}
	if p.MaxAgePasses == 0 {
		p.MaxAgePasses = 4
	}
}

// QuarantineSuffix marks evidence files the recovery pass set aside.
const QuarantineSuffix = ".quarantined"

// RunRetention scans var/ for quarantined evidence files, ages them
// through the persisted survivor ledger, prunes past the policy bounds
// (oldest first, deterministically), and persists the decision record.
// The pass never errors the caller: every failure is counted in the
// returned stats and surfaced through Integrity.
func RunRetention(m *kernel.Machine, pol RetentionPolicy) *oprofile.RetentionStats {
	pol.fill()
	kern := m.Kern
	disk := kern.Disk()
	stats := &oprofile.RetentionStats{Survivors: make(map[string]int)}

	// Prior ledger: ages carry across passes. A torn or unreadable
	// ledger restarts every age from zero — loudly.
	prior := make(map[string]int)
	if disk.Exists(oprofile.RetentionStatsFile) {
		if data, err := disk.Read(oprofile.RetentionStatsFile); err != nil {
			stats.PriorDamaged = true
		} else if rs := oprofile.ReadRetentionStats(data); rs == nil {
			stats.PriorDamaged = true
		} else {
			prior = rs.Survivors
		}
	}

	type entry struct {
		path string
		size int
		age  int
	}
	var entries []entry
	for _, path := range disk.List() {
		if !strings.HasPrefix(path, "var/") || !strings.HasSuffix(path, QuarantineSuffix) {
			continue
		}
		size, ok := disk.Size(path)
		if !ok {
			continue // phantom dirent — the listing-damage checks own it
		}
		entries = append(entries, entry{path: path, size: size, age: prior[path] + 1})
	}
	stats.Scanned = len(entries)

	// Prune order: oldest first, then largest, then path — fully
	// deterministic for a given disk state and ledger.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].age != entries[j].age {
			return entries[i].age > entries[j].age
		}
		if entries[i].size != entries[j].size {
			return entries[i].size > entries[j].size
		}
		return entries[i].path < entries[j].path
	})

	prune := make(map[string]bool)
	reason := make(map[string]*int)
	kept := 0
	keptBytes := 0
	for _, e := range entries {
		switch {
		case pol.MaxAgePasses > 0 && e.age > pol.MaxAgePasses:
			prune[e.path] = true
			reason[e.path] = &stats.AgePruned
		case pol.MaxQuarantineFiles > 0 && kept >= pol.MaxQuarantineFiles:
			prune[e.path] = true
			reason[e.path] = &stats.CountPruned
		case pol.MaxQuarantineBytes > 0 && keptBytes+e.size > pol.MaxQuarantineBytes:
			prune[e.path] = true
			reason[e.path] = &stats.SizePruned
		default:
			kept++
			keptBytes += e.size
			stats.Survivors[e.path] = e.age
		}
	}
	stats.Kept = kept
	stats.KeptBytes = uint64(keptBytes)
	for _, e := range entries {
		if prune[e.path] {
			stats.Pruned++
			stats.PrunedBytes += uint64(e.size)
			*reason[e.path]++
		}
	}

	if stats.Pruned == 0 && stats.Scanned == 0 && !stats.PriorDamaged && !disk.Exists(oprofile.RetentionStatsFile) {
		// Nothing to track and nothing ever tracked: leave no artifacts
		// (clean runs stay byte-identical to pre-retention builds).
		stats.Clean = true
		return stats
	}

	// Persist the decision record BEFORE removing anything.
	proc, err := kern.NewProcess("viprof-retention", kernel.ExecFunc(
		func(*kernel.Machine, *kernel.Process) kernel.StepResult { return kernel.StepExit }))
	if err != nil {
		stats.StatsErrors++
		return stats
	}
	proc.Daemon = true
	stats.Clean = true
	if werr := kern.SysWriteSync(proc, oprofile.RetentionStatsFile, record.Frame(stats.Payload())); werr != nil {
		// Ledger write failed: abort the prune. The files stay, the
		// failure is surfaced, and the next pass retries.
		stats.StatsErrors++
		stats.Clean = false
		return stats
	}
	for _, e := range entries {
		if prune[e.path] {
			disk.Remove(e.path)
		}
	}
	return stats
}

// DefaultRetentionPolicy is the startup policy.
var DefaultRetentionPolicy = RetentionPolicy{}
