package core

import (
	"fmt"
	"io"

	"viprof/internal/hpc"
	"viprof/internal/jvm/jit"
	"viprof/internal/oprofile"
)

// Method annotation — the opannotate analogue. A compiled body's layout
// maps every machine-code offset back to the bytecode it implements, so
// JIT samples can be charged to individual bytecodes: one level finer
// than Figure 1's method rows, and the granularity an optimizer
// actually wants ("identifying common bottlenecks", §1).
//
// Annotation needs the live body layout (code maps persist only
// start/size/signature), so it runs against a session's VM rather than
// an archive.

// AnnotatedInstr is one bytecode's sample counts.
type AnnotatedInstr struct {
	BCI    int    // bytecode index
	Instr  string // disassembled instruction
	Offset uint32 // machine-code offset within the body
	Counts [hpc.NumEvents]uint64
}

// AnnotateBody charges a process's JIT samples that fall inside any
// address range the body occupied (current address plus every address
// recorded for its method in the map chain) to bytecode indexes.
func AnnotateBody(counts map[oprofile.Key]uint64, chain *MapChain, body *jit.CodeBody,
	proc string) []AnnotatedInstr {
	meth := body.Method
	out := make([]AnnotatedInstr, len(meth.Code))
	for i, in := range meth.Code {
		out[i] = AnnotatedInstr{BCI: i, Instr: in.String(), Offset: body.BCOff[i]}
	}
	// Collect every historical placement of this method from the chain
	// (start addresses across epochs) plus the current one.
	starts := map[uint64]bool{uint64(body.Start()): true}
	for e := 0; e < chain.Epochs(); e++ {
		for _, entry := range chain.Entries(e) {
			if entry.Sig == meth.Signature() && entry.Size == body.Size {
				starts[uint64(entry.Start)] = true
			}
		}
	}
	for k, c := range counts {
		if !k.JIT || k.Proc != proc {
			continue
		}
		for s := range starts {
			off := uint64(k.Off) - s
			if uint64(k.Off) < s || off >= uint64(body.Size) {
				continue
			}
			// Find the bytecode whose [BCOff[i], BCOff[i+1]) range holds
			// the offset.
			idx := -1
			for i := range body.BCOff {
				if uint64(body.BCOff[i]) <= off {
					idx = i
				} else {
					break
				}
			}
			if idx >= 0 {
				out[idx].Counts[k.Event] += c
			}
			break
		}
	}
	return out
}

// FormatAnnotation renders the annotated listing; rows with no samples
// print without counts, as opannotate does.
func FormatAnnotation(w io.Writer, sig string, rows []AnnotatedInstr, events []hpc.Event) error {
	if _, err := fmt.Fprintf(w, "annotated %s:\n", sig); err != nil {
		return err
	}
	for _, r := range rows {
		line := fmt.Sprintf("%4d  %-16s", r.BCI, r.Instr)
		var any bool
		for _, ev := range events {
			if r.Counts[ev] > 0 {
				any = true
			}
		}
		if any {
			for _, ev := range events {
				line += fmt.Sprintf(" %6d", r.Counts[ev])
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
