package core

import (
	"fmt"
	"io"
	"sort"

	"viprof/internal/addr"
	"viprof/internal/oprofile"
)

// Cross-layer call graphs. "VIProf also extends the call graph
// functionality of Oprofile to include call sequence profiles across
// layers" (§4.2): sampled call chains whose frames may live in JIT
// code, the boot image, native libraries, or the kernel, resolved
// per-frame with the full VIProf resolver.

// Arc is one caller→callee edge between resolved symbols.
type Arc struct {
	Caller, Callee string
}

// CallGraph aggregates sampled arcs.
type CallGraph struct {
	Arcs map[Arc]uint64
	// Samples is the number of stack samples folded in.
	Samples int
}

// FrameResolver resolves an absolute PC observed in a process at an
// epoch to a display symbol. BuildFrameResolver supplies the standard
// implementation.
type FrameResolver func(pid int, pc addr.Address, epoch int) string

// BuildCallGraph folds stack samples into arcs: PC←caller0,
// caller0←caller1, and so on.
func BuildCallGraph(stacks []oprofile.StackSample, resolve FrameResolver) *CallGraph {
	g := &CallGraph{Arcs: make(map[Arc]uint64)}
	for _, s := range stacks {
		g.Samples++
		prev := resolve(s.PID, s.PC, s.Epoch)
		for _, c := range s.Callers {
			caller := resolve(s.PID, c, s.Epoch)
			g.Arcs[Arc{Caller: caller, Callee: prev}]++
			prev = caller
		}
	}
	return g
}

// Top returns the n most frequent arcs.
func (g *CallGraph) Top(n int) []Arc {
	arcs := make([]Arc, 0, len(g.Arcs))
	for a := range g.Arcs {
		arcs = append(arcs, a)
	}
	sort.Slice(arcs, func(i, j int) bool {
		if g.Arcs[arcs[i]] != g.Arcs[arcs[j]] {
			return g.Arcs[arcs[i]] > g.Arcs[arcs[j]]
		}
		if arcs[i].Caller != arcs[j].Caller {
			return arcs[i].Caller < arcs[j].Caller
		}
		return arcs[i].Callee < arcs[j].Callee
	})
	if n > 0 && n < len(arcs) {
		arcs = arcs[:n]
	}
	return arcs
}

// FormatCallGraph renders the top arcs.
func FormatCallGraph(w io.Writer, g *CallGraph, n int) error {
	if _, err := fmt.Fprintf(w, "%-9s %-50s %s\n", "Samples", "Caller", "Callee"); err != nil {
		return err
	}
	for _, a := range g.Top(n) {
		if _, err := fmt.Fprintf(w, "%-9d %-50s %s\n", g.Arcs[a], a.Caller, a.Callee); err != nil {
			return err
		}
	}
	return nil
}

// ResolvePC resolves one absolute user-space PC through a space lookup
// plus the VIProf resolver — the shared helper FrameResolvers build on.
func (r *Resolver) ResolvePC(lookup func(pid int, pc addr.Address) (img string, off addr.Address, jit bool),
	pid int, pc addr.Address, epoch int) string {
	img, off, jit := lookup(pid, pc)
	var k oprofile.Key
	switch {
	case jit:
		k = oprofile.Key{JIT: true, Epoch: epoch, Off: pc, Proc: r.procOf(pid)}
	default:
		k = oprofile.Key{Image: img, Off: off}
	}
	image, sym := r.Resolve(k)
	if sym == oprofile.NoSymbols {
		return image
	}
	return sym
}

func (r *Resolver) procOf(pid int) string {
	for name, p := range r.PIDByProc {
		if p == pid {
			return name
		}
	}
	return ""
}
