package core

import (
	"bytes"

	"strings"
	"testing"
	"viprof/internal/addr"

	"viprof/internal/hpc"
	"viprof/internal/jvm"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// buildWorkload is a small DaCapo-ish program: a hot scanner method
// over an array, steady allocation with survivors, libc and kernel
// activity.
func buildWorkload(outer, inner int32) *classes.Program {
	p := classes.NewProgram("dacapo.ps", 8)

	w := bytecode.NewAsm()
	// locals: 0=iters 1=i 2=arr 3=tmp
	w.Const(256).Emit(bytecode.NewArray, 8, 0).Store(2)
	w.Const(0).Store(1)
	w.Label("loop")
	w.Load(2).Load(1).Const(256).Emit(bytecode.Mod).Emit(bytecode.ALoad)
	w.Load(1).Emit(bytecode.Add).Store(3)
	w.Load(2).Load(1).Const(256).Emit(bytecode.Mod).Load(3).Emit(bytecode.AStore)
	w.Load(1).Const(8).Emit(bytecode.Mod)
	w.Branch(bytecode.JmpNZ, "noalloc")
	w.Emit(bytecode.New, 1, 3)
	w.Emit(bytecode.PutStatic, 0)
	w.Label("noalloc")
	w.Load(1).Const(1).Emit(bytecode.Add).Store(1)
	w.Load(1).Load(0).Emit(bytecode.CmpLT)
	w.Branch(bytecode.JmpNZ, "loop")
	w.Const(1024).Emit(bytecode.Intrinsic, int32(bytecode.IntrMemset), 1)
	w.Const(32).Emit(bytecode.Intrinsic, int32(bytecode.IntrWrite), 1)
	w.Emit(bytecode.RetVoid)
	scanner := p.Add(&classes.Method{
		Class: "edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner",
		Name:  "parseLine", NArgs: 1, MaxLocals: 4, Code: w.MustFinish(),
	})

	mn := bytecode.NewAsm()
	mn.Const(0).Store(0)
	mn.Label("loop")
	mn.Const(inner).Call(int32(scanner.Index))
	mn.Load(0).Const(1).Emit(bytecode.Add).Store(0)
	mn.Load(0).Const(outer).Emit(bytecode.CmpLT)
	mn.Branch(bytecode.JmpNZ, "loop")
	mn.Emit(bytecode.RetVoid)
	main := p.Add(&classes.Method{
		Class: "dacapo.ps.Main", Name: "main", MaxLocals: 1, Code: mn.MustFinish(),
	})
	p.SetMain(main)
	return p
}

// runSession executes the workload under a full VIProf session and
// returns everything needed for assertions.
func runSession(t *testing.T, cfg Config, heapBytes uint64) (*Session, *jvm.VM, *kernel.Process, *kernel.Machine) {
	t.Helper()
	m := newTestMachine()
	s, err := Start(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := buildWorkload(400, 300)
	vm, proc, err := s.LaunchJVM(prog, jvm.Config{HeapBytes: heapBytes, AOSThreshold: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(20_000_000_000); err != nil {
		t.Fatal(err)
	}
	if !vm.Finished() {
		t.Fatalf("VM failed: %v", vm.Err())
	}
	s.Shutdown()
	return s, vm, proc, m
}

func stdConfig() Config {
	return Config{
		Events: []oprofile.EventConfig{
			{Event: hpc.GlobalPowerEvents, Period: 45_000},
			{Event: hpc.BSQCacheReference, Period: 10_000},
		},
	}
}

func TestSessionEndToEnd(t *testing.T) {
	s, vm, proc, _ := runSession(t, stdConfig(), 128<<10)

	if vm.Stats().Collections == 0 {
		t.Fatal("workload produced no GCs; epoch machinery untested")
	}
	agent := s.Agents[proc.PID]
	if agent.Stats().MapsWritten < vm.Stats().Collections {
		t.Errorf("maps written %d < collections %d", agent.Stats().MapsWritten, vm.Stats().Collections)
	}

	rep, res, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}

	// The hot application method must appear, fully qualified, under
	// JIT.App (Figure 1 upper half).
	row, ok := rep.Find("edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine")
	if !ok {
		for _, r := range rep.Rows[:min(len(rep.Rows), 15)] {
			t.Logf("row: %-14s %-50s %d", r.Image, r.Symbol, r.Counts[hpc.GlobalPowerEvents])
		}
		t.Fatal("hot JIT method not in VIProf report")
	}
	if row.Image != oprofile.JITImageName {
		t.Errorf("hot method under image %q, want %q", row.Image, oprofile.JITImageName)
	}
	if pct := rep.Percent(row, hpc.GlobalPowerEvents); pct < 20 {
		t.Errorf("hot method only %.1f%% of time", pct)
	}

	// VM-internal work must resolve through RVM.map.
	if _, ok := rep.FindImage(RVMMapImageName); !ok {
		t.Error("no RVM.map rows: VM services invisible")
	}
	// Kernel rows.
	if _, ok := rep.FindImage("vmlinux"); !ok {
		t.Error("no kernel rows")
	}

	// Nearly all JIT samples must resolve (the paper's whole point).
	if res.Unresolved() > 0 {
		totalJIT := uint64(0)
		for d, n := range res.SearchDepths {
			_ = d
			totalJIT += n
		}
		if res.Unresolved()*10 > totalJIT {
			t.Errorf("%d of %d JIT samples unresolved", res.Unresolved(), totalJIT)
		}
	}

	// No anonymous rows for the VM's heap: VIProf claimed them.
	for _, r := range rep.Rows {
		if strings.HasPrefix(r.Image, "anon (") && strings.Contains(r.Image, "jikesrvm") {
			lo, hi := vm.Heap().Bounds()
			if strings.Contains(r.Image, lo.String()) && strings.Contains(r.Image, hi.String()) {
				t.Errorf("heap still reported anonymous: %s", r.Image)
			}
		}
	}
}

func TestBaselineVsVIProfReports(t *testing.T) {
	// Same sample data, two post-processors: the baseline (opreport)
	// sees black boxes, VIProf sees methods — Figure 1's two halves.
	s, vm, proc, m := runSession(t, stdConfig(), 128<<10)
	images := s.Images(vm)

	base, err := oprofile.Opreport(m.Kern.Disk(), images, s.Events())
	if err != nil {
		t.Fatal(err)
	}
	jitRow, ok := base.FindImage(oprofile.JITImageName)
	if !ok {
		t.Fatal("baseline report has no JIT.App aggregate")
	}
	baseRow, found := base.Find("edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine")
	if found && baseRow.Counts[hpc.GlobalPowerEvents] > 0 {
		t.Error("baseline resolver should not see Java method names")
	}
	// Boot image is symbol-less for the baseline.
	bootRow, ok := base.FindImage(jvm.BootImageName)
	if !ok || bootRow.Counts[hpc.GlobalPowerEvents] == 0 {
		t.Error("baseline should show RVM.code.image (no symbols) rows")
	}

	vip, _, err := s.Report(images, map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	vipJIT, ok := vip.FindImage(oprofile.JITImageName)
	if !ok {
		t.Fatal("viprof report lost JIT samples")
	}
	if vipJIT.Counts[hpc.GlobalPowerEvents] != jitRow.Counts[hpc.GlobalPowerEvents] {
		t.Errorf("sample conservation violated: baseline %d vs viprof %d JIT counts",
			jitRow.Counts[hpc.GlobalPowerEvents], vipJIT.Counts[hpc.GlobalPowerEvents])
	}

	var buf bytes.Buffer
	if err := oprofile.Format(&buf, vip, 12); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Time %", "Dmiss %", "JIT.App"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted report missing %q:\n%s", want, out)
		}
	}
}

func TestCallGraphAcrossLayers(t *testing.T) {
	cfg := stdConfig()
	cfg.CallGraphDepth = 4
	s, vm, proc, m := runSession(t, cfg, 256<<10)
	stacks := s.Prof.Driver.DrainStacks()
	if len(stacks) == 0 {
		t.Fatal("no stack samples collected")
	}
	_, res, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(pid int, pc addr.Address) (string, addr.Address, bool) {
		lo, hi := vm.Heap().Bounds()
		if pc >= lo && pc < hi {
			return "", pc, true
		}
		if p, ok := m.Kern.Process(pid); ok {
			if v, found := p.Space.Lookup(pc); found {
				return v.Image, v.ImageOffset(pc), false
			}
		}
		return "", 0, false
	}
	g := BuildCallGraph(stacks, func(pid int, pc addr.Address, epoch int) string {
		return res.ResolvePC(lookup, pid, pc, epoch)
	})
	if g.Samples != len(stacks) {
		t.Errorf("folded %d of %d stacks", g.Samples, len(stacks))
	}
	// main -> parseLine must be the dominant arc.
	want := Arc{
		Caller: "dacapo.ps.Main.main",
		Callee: "edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine",
	}
	if g.Arcs[want] == 0 {
		var buf bytes.Buffer
		FormatCallGraph(&buf, g, 10)
		t.Errorf("expected arc missing; top arcs:\n%s", buf.String())
	}
}
