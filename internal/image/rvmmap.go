package image

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"viprof/internal/addr"
)

// The RVM.map format. Jikes RVM's build produces a static boot image in
// an internal format together with a map file listing, for each method
// compiled into the image, its offset, size and fully qualified
// signature. VIProf's post-processing tools read this map to resolve
// samples landing in the boot image (paper §3.2). We serialize the same
// information as one record per line:
//
//	<hex offset> <size> <signature>
//
// Lines beginning with '#' are comments.

// WriteRVMMap writes the image's symbol table in RVM.map format.
func WriteRVMMap(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# RVM.map for %s (size %d)\n", im.Name, im.Size)
	for _, s := range im.symbols {
		if _, err := fmt.Fprintf(bw, "%08x %d %s\n", uint64(s.Off), s.Size, s.Name); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRVMMap parses an RVM.map stream into an image with the given name.
// The image size is the end of the last symbol.
func ReadRVMMap(r io.Reader, name string) (*Image, error) {
	im := New(name, 0)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var off, size uint64
		var sig string
		if _, err := fmt.Sscanf(text, "%x %d %s", &off, &size, &sig); err != nil {
			return nil, fmt.Errorf("rvmmap %s line %d: %v", name, line, err)
		}
		if off+size > im.Size {
			im.Size = off + size
		}
		if err := im.AddSymbol(Symbol{Name: sig, Off: addr.Address(off), Size: size}); err != nil {
			return nil, fmt.Errorf("rvmmap %s line %d: %v", name, line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return im, nil
}
