package image

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
)

func TestAddAndResolve(t *testing.T) {
	im := New("libc.so", 0x10000)
	syms := []Symbol{
		{Name: "memset", Off: 0x100, Size: 0x80},
		{Name: "memcpy", Off: 0x200, Size: 0x100},
		{Name: "malloc", Off: 0x1000, Size: 0x400},
	}
	for _, s := range syms {
		if err := im.AddSymbol(s); err != nil {
			t.Fatalf("AddSymbol(%q): %v", s.Name, err)
		}
	}
	tests := []struct {
		off  addr.Address
		want string
		ok   bool
	}{
		{0x100, "memset", true},
		{0x17F, "memset", true},
		{0x180, "", false}, // gap between memset and memcpy
		{0x2FF, "memcpy", true},
		{0x13FF, "malloc", true},
		{0x1400, "", false},
		{0x0, "", false},
	}
	for _, tt := range tests {
		s, ok := im.Resolve(tt.off)
		if ok != tt.ok || (ok && s.Name != tt.want) {
			t.Errorf("Resolve(%s) = %q,%v; want %q,%v", tt.off, s.Name, ok, tt.want, tt.ok)
		}
	}
	if s, ok := im.Lookup("memcpy"); !ok || s.Off != 0x200 {
		t.Errorf("Lookup(memcpy) = %+v,%v", s, ok)
	}
	if _, ok := im.Lookup("free"); ok {
		t.Error("Lookup of missing symbol succeeded")
	}
}

func TestAddSymbolErrors(t *testing.T) {
	im := New("app", 0x1000)
	if err := im.AddSymbol(Symbol{Name: "empty", Off: 0, Size: 0}); err == nil {
		t.Error("empty symbol accepted")
	}
	if err := im.AddSymbol(Symbol{Name: "big", Off: 0xF00, Size: 0x200}); err == nil {
		t.Error("out-of-image symbol accepted")
	}
	if err := im.AddSymbol(Symbol{Name: "a", Off: 0x100, Size: 0x100}); err != nil {
		t.Fatal(err)
	}
	for _, s := range []Symbol{
		{Name: "o1", Off: 0x80, Size: 0x100},
		{Name: "o2", Off: 0x1FF, Size: 0x10},
		{Name: "o3", Off: 0x100, Size: 0x100},
		{Name: "o4", Off: 0x140, Size: 0x10},
	} {
		if err := im.AddSymbol(s); err == nil {
			t.Errorf("overlapping symbol %q accepted", s.Name)
		}
	}
	// Adjacent is fine.
	if err := im.AddSymbol(Symbol{Name: "adj", Off: 0x200, Size: 0x10}); err != nil {
		t.Errorf("adjacent symbol rejected: %v", err)
	}
}

// Property: every offset within an accepted symbol resolves to it, and
// the table remains sorted and non-overlapping.
func TestResolveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		im := New("x", 1<<20)
		var accepted []Symbol
		for i := 0; i < 30; i++ {
			s := Symbol{
				Name: "f" + string(rune('a'+i)),
				Off:  addr.Address(rng.Intn(1 << 18)),
				Size: uint64(rng.Intn(256) + 1),
			}
			if err := im.AddSymbol(s); err == nil {
				accepted = append(accepted, s)
			}
		}
		all := im.Symbols()
		for i := 1; i < len(all); i++ {
			if all[i-1].End() > all[i].Off {
				return false
			}
		}
		for _, s := range accepted {
			for _, off := range []addr.Address{s.Off, s.End() - 1} {
				got, ok := im.Resolve(off)
				if !ok || got.Name != s.Name {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder("RVM.code.image")
	off1 := b.Add("com.ibm.jikesrvm.VM_Scheduler.run", 300)
	off2 := b.Add("com.ibm.jikesrvm.VM_Compiler.compile", 1000)
	im, err := b.Image()
	if err != nil {
		t.Fatal(err)
	}
	if off1 != 0 {
		t.Errorf("first symbol at %s, want 0", off1)
	}
	if off2%16 != 0 || off2 < 300 {
		t.Errorf("second symbol at %s: want 16-aligned after first", off2)
	}
	if im.Size != uint64(off2)+1000 {
		t.Errorf("image size %d", im.Size)
	}
	if s, ok := im.Resolve(off2 + 500); !ok || !strings.Contains(s.Name, "compile") {
		t.Errorf("Resolve mid-symbol: %+v %v", s, ok)
	}
}

func TestRVMMapRoundTrip(t *testing.T) {
	b := NewBuilder("RVM.code.image")
	names := []string{
		"com.ibm.jikesrvm.classloader.VM_NormalMethod.getOsrPrologueLength",
		"com.ibm.jikesrvm.opt.VM_OptCompiledMethod.createCodePatchMaps",
		"com.ibm.jikesrvm.MainThread.run",
	}
	for i, n := range names {
		b.Add(n, uint64(100*(i+1)))
	}
	im, err := b.Image()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteRVMMap(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRVMMap(&buf, "RVM.code.image")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSymbols() != len(names) {
		t.Fatalf("round trip lost symbols: %d vs %d", got.NumSymbols(), len(names))
	}
	for _, want := range im.Symbols() {
		s, ok := got.Lookup(want.Name)
		if !ok || s.Off != want.Off || s.Size != want.Size {
			t.Errorf("symbol %q round trip = %+v,%v; want %+v", want.Name, s, ok, want)
		}
	}
}

func TestRVMMapErrors(t *testing.T) {
	if _, err := ReadRVMMap(strings.NewReader("zz nonsense line\n"), "x"); err == nil {
		t.Error("malformed map accepted")
	}
	// Comments and blank lines are fine.
	im, err := ReadRVMMap(strings.NewReader("# header\n\n0010 32 a.b.c\n"), "x")
	if err != nil || im.NumSymbols() != 1 {
		t.Errorf("comment handling: %v, %d symbols", err, im.NumSymbols())
	}
	// Overlapping entries rejected.
	if _, err := ReadRVMMap(strings.NewReader("0010 32 a\n0020 32 b\n"), "x"); err == nil {
		t.Error("overlapping map entries accepted")
	}
}
