// Package image models object-file images (binaries, shared libraries,
// boot images) and their symbol tables. A profiler resolves a sample's
// (image, offset) pair to a function name through these tables, the same
// way OProfile resolves offsets against ELF symbol tables and VIProf
// resolves Jikes RVM boot-image offsets against RVM.map.
package image

import (
	"fmt"
	"sort"

	"viprof/internal/addr"
)

// Symbol is a named code range inside an image, expressed as an offset
// from the image start.
type Symbol struct {
	Name string
	Off  addr.Address // offset of the first byte within the image
	Size uint64       // extent in bytes
}

// End returns the exclusive end offset of the symbol.
func (s Symbol) End() addr.Address { return s.Off + addr.Address(s.Size) }

// Image is an object file with a symbol table. Symbols are kept sorted
// by offset; gaps between symbols resolve to no symbol (reported as
// "(no symbols)" by the report layer, as OProfile does for stripped
// binaries).
type Image struct {
	Name    string
	Size    uint64
	symbols []Symbol // sorted by Off, non-overlapping
}

// New returns an empty image of the given size.
func New(name string, size uint64) *Image {
	return &Image{Name: name, Size: size}
}

// AddSymbol inserts a symbol. It fails if the symbol is empty, escapes
// the image, or overlaps an existing symbol.
func (im *Image) AddSymbol(s Symbol) error {
	if s.Size == 0 {
		return fmt.Errorf("image %s: empty symbol %q", im.Name, s.Name)
	}
	if uint64(s.Off)+s.Size > im.Size {
		return fmt.Errorf("image %s: symbol %q [%s,%s) beyond image size %d",
			im.Name, s.Name, s.Off, s.End(), im.Size)
	}
	i := sort.Search(len(im.symbols), func(i int) bool { return im.symbols[i].Off >= s.Off })
	if i > 0 && im.symbols[i-1].End() > s.Off {
		return fmt.Errorf("image %s: symbol %q overlaps %q", im.Name, s.Name, im.symbols[i-1].Name)
	}
	if i < len(im.symbols) && im.symbols[i].Off < s.End() {
		return fmt.Errorf("image %s: symbol %q overlaps %q", im.Name, s.Name, im.symbols[i].Name)
	}
	im.symbols = append(im.symbols, Symbol{})
	copy(im.symbols[i+1:], im.symbols[i:])
	im.symbols[i] = s
	return nil
}

// Resolve returns the symbol containing the given image offset.
func (im *Image) Resolve(off addr.Address) (Symbol, bool) {
	i := sort.Search(len(im.symbols), func(i int) bool { return im.symbols[i].End() > off })
	if i < len(im.symbols) && off >= im.symbols[i].Off {
		return im.symbols[i], true
	}
	return Symbol{}, false
}

// Lookup returns the symbol with the given name.
func (im *Image) Lookup(name string) (Symbol, bool) {
	for _, s := range im.symbols {
		if s.Name == name {
			return s, true
		}
	}
	return Symbol{}, false
}

// Symbols returns a copy of the symbol table in offset order.
func (im *Image) Symbols() []Symbol {
	out := make([]Symbol, len(im.symbols))
	copy(out, im.symbols)
	return out
}

// NumSymbols returns the number of symbols in the table.
func (im *Image) NumSymbols() int { return len(im.symbols) }

// Builder appends symbols back-to-back, growing the image as needed; it
// is a convenience for constructing synthetic binaries and boot images.
type Builder struct {
	im   *Image
	next addr.Address
	err  error
}

// NewBuilder starts building an image with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{im: New(name, 0)}
}

// Add appends a symbol of the given size after the previous one, aligned
// to 16 bytes, and returns its offset.
func (b *Builder) Add(name string, size uint64) addr.Address {
	off := addr.Address((uint64(b.next) + 15) &^ 15)
	b.im.Size = uint64(off) + size
	if err := b.im.AddSymbol(Symbol{Name: name, Off: off, Size: size}); err != nil && b.err == nil {
		b.err = err
	}
	b.next = off + addr.Address(size)
	return off
}

// Image finalizes and returns the built image.
func (b *Builder) Image() (*Image, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.im.Size == 0 {
		b.im.Size = 1
	}
	return b.im, nil
}
